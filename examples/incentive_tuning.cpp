/// \file incentive_tuning.cpp
/// \brief The Section-VI incentive extension in action.
///
/// A reluctant human crowd (strongly negative response logit) is asked for
/// a human-sensed attribute at a rate the default budget cannot satisfy.
/// The budget tuner climbs to its ceiling, the infeasibility events fire,
/// and — with the incentive controller enabled — the offered incentive
/// rises until the crowd starts answering, recovering the requested rate.
/// A control run with incentives disabled shows the rate staying starved.
///
///   $ ./example_incentive_tuning

#include <cstdio>

#include "common/rng.h"
#include "core/engine.h"

namespace {

using namespace craqr;  // NOLINT

std::unique_ptr<engine::CraqrEngine> BuildEngine(bool enable_incentives,
                                                 std::uint64_t seed) {
  sensing::PopulationConfig crowd;
  crowd.region = geom::Rect(0, 0, 4, 4);
  crowd.num_sensors = 600;
  Rng rng(seed);
  auto population = sensing::SensorPopulation::Make(crowd, &rng).MoveValue();
  auto world =
      sensing::CrowdWorld::Make(std::move(population), rng.Fork()).MoveValue();

  // A very reluctant crowd: ~5% respond unincentivised, but money talks.
  sensing::ResponseBehavior reluctant;
  reluctant.base_logit = -3.0;
  reluctant.incentive_weight = 1.2;
  reluctant.delay_mu = -0.5;
  reluctant.delay_sigma = 0.5;
  sensing::RainCell drizzle;
  drizzle.x0 = 2.0;
  drizzle.y0 = 2.0;
  drizzle.radius = 1.0;
  (void)world.RegisterAttribute(
      "rain", true, sensing::RainField::Make({drizzle}).MoveValue(),
      reluctant);

  engine::EngineConfig config;
  config.grid_h = 4;
  config.budget.initial = 16.0;
  config.budget.delta = 8.0;
  config.budget.max = 96.0;  // a ceiling the reluctant crowd defeats
  config.enable_incentives = enable_incentives;
  config.incentive.initial = 0.0;
  config.incentive.raise_step = 0.5;
  config.incentive.max = 6.0;
  return engine::CraqrEngine::Make(std::move(world), config).MoveValue();
}

void Run(const char* label, bool enable_incentives, std::uint64_t seed) {
  auto engine = BuildEngine(enable_incentives, seed);
  const auto stream =
      engine
          ->SubmitText(
              "ACQUIRE rain FROM REGION(0, 0, 4, 4) RATE 0.5 PER KM2 PER MIN")
          .MoveValue();
  const auto rain_id = engine->world().AttributeIdByName("rain").MoveValue();

  std::printf("--- %s ---\n", label);
  std::printf("%-8s %-12s %-12s %-12s %-12s\n", "t(min)", "delivered",
              "incentive", "responses", "infeasible");
  std::uint64_t last = 0;
  double last_t = 0.0;
  for (int checkpoint = 1; checkpoint <= 8; ++checkpoint) {
    (void)engine->RunFor(15.0);
    const std::uint64_t total = stream.sink->total_received();
    const double rate = static_cast<double>(total - last) /
                        (stream.region.Area() * (engine->now() - last_t));
    last = total;
    last_t = engine->now();
    std::printf("%-8.0f %-12.3f %-12.2f %-12llu %-12zu\n", engine->now(),
                rate, engine->handler().GetIncentive(rain_id),
                static_cast<unsigned long long>(
                    engine->world().total_responses()),
                engine->infeasible_log().size());
  }
  std::printf("requested 0.5 /km2/min; incentive raises applied: %llu\n\n",
              static_cast<unsigned long long>(engine->incentives().raises()));
}

}  // namespace

int main() {
  std::printf("=== incentive extension (paper Section VI, bullet 1) ===\n\n");
  Run("control: budget tuning only", /*enable_incentives=*/false, 31);
  Run("with incentive controller", /*enable_incentives=*/true, 31);
  std::printf("with incentives enabled the engine escapes the starved\n"
              "regime: once budgets saturate, money replaces volume.\n");
  return 0;
}
