/// \file quickstart.cpp
/// \brief Five-minute tour of the CrAQR public API.
///
/// Builds a small simulated crowd, registers one attribute, submits one
/// declarative acquisitional query, runs the engine for half an hour of
/// simulated time and inspects the fabricated crowdsensed data stream.
///
///   $ ./example_quickstart

#include <cstdio>

#include "common/rng.h"
#include "core/engine.h"

int main() {
  using namespace craqr;  // NOLINT

  // 1. A region R (km) and a crowd of 300 mobile sensors random-walking
  //    through it.
  const geom::Rect region(0, 0, 4, 4);
  sensing::PopulationConfig crowd;
  crowd.region = region;
  crowd.num_sensors = 300;
  const auto mobility = sensing::GaussianWalkMobility::Make(0.2).MoveValue();
  crowd.mobility_prototype = mobility.get();
  Rng rng(2026);
  auto population = sensing::SensorPopulation::Make(crowd, &rng).MoveValue();
  auto world =
      sensing::CrowdWorld::Make(std::move(population), rng.Fork()).MoveValue();

  // 2. Register an attribute: device-sensed ambient temperature.
  sensing::TemperatureField::Params field;
  const auto temp_id =
      world
          .RegisterAttribute("temp", /*human_sensed=*/false,
                             sensing::TemperatureField::Make(field).MoveValue(),
                             sensing::ResponseModel::DeviceBehavior())
          .MoveValue();
  std::printf("registered attribute 'temp' (id %u)\n", temp_id);

  // 3. Build the engine: 4x4-cell grid, default budget tuning.
  engine::EngineConfig config;
  config.grid_h = 16;
  auto engine = engine::CraqrEngine::Make(std::move(world), config).MoveValue();

  // 4. Submit the paper-style declarative query.
  const auto stream =
      engine
          ->SubmitText(
              "ACQUIRE temp FROM REGION(0, 0, 4, 4) RATE 0.5 PER KM2 PER MIN")
          .MoveValue();
  std::printf("query Q%llu live: rate %.2f /km2/min over %s\n",
              static_cast<unsigned long long>(stream.id), stream.rate,
              stream.region.ToString().c_str());

  // 5. Run 30 simulated minutes.
  if (const Status status = engine->RunFor(30.0); !status.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  // 6. Consume the fabricated crowdsensed data stream.
  const auto& tuples = stream.sink->tuples();
  std::printf("\nreceived %llu tuples; the first few:\n",
              static_cast<unsigned long long>(stream.sink->total_received()));
  for (std::size_t i = 0; i < tuples.size() && i < 5; ++i) {
    const auto& t = tuples[i];
    std::printf("  (t=%6.2f min, x=%5.2f, y=%5.2f) temp=%s from sensor %llu\n",
                t.point.t, t.point.x, t.point.y,
                ops::PayloadToString(t.value).c_str(),
                static_cast<unsigned long long>(t.sensor_id));
  }
  const double delivered =
      static_cast<double>(stream.sink->total_received()) /
      (stream.region.Area() * engine->now());
  std::printf("\ndelivered rate: %.3f /km2/min (requested %.2f)\n", delivered,
              stream.rate);
  std::printf("mean windowed rate from the stream monitor: %.3f /km2/min\n",
              stream.monitor->MeanRate());
  return 0;
}
