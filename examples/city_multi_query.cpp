/// \file city_multi_query.cpp
/// \brief Many simultaneous acquisitional queries sharing one topology.
///
/// A city operations centre runs a mixed dashboard: city-wide temperature,
/// a downtown high-resolution temperature pane, an air-quality pane near
/// the industrial district, and a rain pane. Queries come and go at run
/// time; the fabricator shares F operators, keeps T chains sorted and
/// merged, and evicts cell topologies when the last query leaves — the
/// full Section-V life cycle.
///
///   $ ./example_city_multi_query

#include <cstdio>

#include "common/rng.h"
#include "core/cost.h"
#include "core/engine.h"

int main() {
  using namespace craqr;  // NOLINT

  const geom::Rect city(0, 0, 8, 8);
  sensing::PopulationConfig crowd;
  crowd.region = city;
  crowd.num_sensors = 1500;
  const auto mobility =
      sensing::LevyFlightMobility::Make(0.02, 1.4, 0.6).MoveValue();
  crowd.mobility_prototype = mobility.get();
  Rng rng(4242);
  auto population = sensing::SensorPopulation::Make(crowd, &rng).MoveValue();
  auto world =
      sensing::CrowdWorld::Make(std::move(population), rng.Fork()).MoveValue();

  // Three attributes.
  sensing::TemperatureField::Params temperature;
  temperature.grad_x = 0.15;
  (void)world.RegisterAttribute(
      "temp", false, sensing::TemperatureField::Make(temperature).MoveValue(),
      sensing::ResponseModel::DeviceBehavior());
  sensing::AirQualityField::Source factory;
  factory.x = 6.5;
  factory.y = 1.5;
  factory.strength = 120.0;
  factory.spread = 1.0;
  (void)world.RegisterAttribute(
      "aqi", false,
      sensing::AirQualityField::Make(25.0, {factory}).MoveValue(),
      sensing::ResponseModel::DeviceBehavior());
  sensing::RainCell shower;
  shower.x0 = 4.0;
  shower.y0 = 6.0;
  shower.radius = 1.2;
  (void)world.RegisterAttribute(
      "rain", true, sensing::RainField::Make({shower}).MoveValue(),
      sensing::ResponseModel::HumanBehavior());

  engine::EngineConfig config;
  config.grid_h = 16;  // 2x2 km cells
  config.budget.initial = 24.0;
  auto engine = engine::CraqrEngine::Make(std::move(world), config).MoveValue();

  const auto show = [&engine]() {
    std::printf("  live queries=%zu, materialized cells=%zu/%u, operators=%zu, "
                "subscriptions=%zu\n",
                engine->fabricator().NumQueries(),
                engine->fabricator().NumMaterializedCells(),
                engine->grid().NumCells(),
                engine->fabricator().TotalOperators(),
                engine->handler().NumSubscriptions());
  };

  std::printf("t=0: dashboard starts with three panes\n");
  auto city_temp =
      engine
          ->SubmitText(
              "ACQUIRE temp FROM REGION(0, 0, 8, 8) RATE 0.2 PER KM2 PER MIN")
          .MoveValue();
  auto aqi_pane =
      engine
          ->SubmitText(
              "ACQUIRE aqi FROM REGION(4, 0, 8, 4) RATE 0.4 PER KM2 PER MIN")
          .MoveValue();
  auto rain_pane =
      engine
          ->SubmitText(
              "ACQUIRE rain FROM REGION(2, 4, 8, 8) RATE 0.15 PER KM2 PER MIN")
          .MoveValue();
  show();

  (void)engine->RunFor(20.0);

  std::printf("t=20: analyst zooms into downtown -> high-rate temp pane "
              "(shares the city-wide F/T chains)\n");
  auto downtown_temp =
      engine
          ->SubmitText(
              "ACQUIRE temp FROM REGION(2, 2, 6, 6) RATE 0.8 PER KM2 PER MIN")
          .MoveValue();
  show();

  (void)engine->RunFor(20.0);

  std::printf("t=40: downtown pane closed -> its T taps unwind "
              "right-to-left\n");
  // Capture totals before cancelling: a query's sink dies with the query.
  const std::uint64_t downtown_total = downtown_temp.sink->total_received();
  (void)engine->Cancel(downtown_temp.id);
  show();

  (void)engine->RunFor(20.0);

  std::printf("t=60: all panes closed -> every cell topology evicted\n");
  const std::uint64_t city_total = city_temp.sink->total_received();
  const std::uint64_t aqi_total = aqi_pane.sink->total_received();
  const std::uint64_t rain_total = rain_pane.sink->total_received();
  (void)engine->Cancel(city_temp.id);
  (void)engine->Cancel(aqi_pane.id);
  (void)engine->Cancel(rain_pane.id);
  show();

  std::printf("\n--- delivered totals ---\n");
  std::printf("%-14s %-10s %-16s\n", "pane", "tuples", "mean rate(/km2/min)");
  const struct {
    const char* name;
    std::uint64_t tuples;
    double area;
    double lifetime;
  } rows[] = {{"city temp", city_total, city_temp.region.Area(), 60.0},
              {"aqi", aqi_total, aqi_pane.region.Area(), 60.0},
              {"rain", rain_total, rain_pane.region.Area(), 60.0},
              {"downtown temp", downtown_total, downtown_temp.region.Area(),
               20.0}};
  for (const auto& row : rows) {
    std::printf("%-14s %-10llu %-16.3f\n", row.name,
                static_cast<unsigned long long>(row.tuples),
                static_cast<double>(row.tuples) / (row.area * row.lifetime));
  }
  return 0;
}
