/// \file rain_monitoring.cpp
/// \brief The paper's running example: crowdsensed rain monitoring.
///
/// `rain` is a human-sensed boolean attribute — people answer "is it
/// raining around you?" on their phones, with delays and non-response.
/// A storm cell drifts across the city; a rain-acquisition query at a
/// fixed spatio-temporal rate feeds a tiny detector that estimates the
/// wet fraction of the query region over time, demonstrating downstream
/// inference on a fabricated MCDS.
///
///   $ ./example_rain_monitoring

#include <cstdio>

#include "common/rng.h"
#include "core/engine.h"

int main() {
  using namespace craqr;  // NOLINT

  const geom::Rect city(0, 0, 6, 6);

  // A crowd concentrated downtown, walking randomly.
  sensing::PopulationConfig crowd;
  crowd.region = city;
  crowd.num_sensors = 900;
  crowd.placement = sensing::PlacementKind::kIntensity;
  pp::GaussianBump downtown;
  downtown.amplitude = 12.0;
  downtown.x0 = 3.0;
  downtown.y0 = 3.0;
  downtown.sigma = 1.5;
  crowd.placement_intensity =
      pp::GaussianBumpIntensity::Make(1.0, {downtown}).MoveValue();
  const auto mobility =
      sensing::RandomWaypointMobility::Make(0.05, 0.3).MoveValue();
  crowd.mobility_prototype = mobility.get();
  Rng rng(99);
  auto population = sensing::SensorPopulation::Make(crowd, &rng).MoveValue();
  auto world =
      sensing::CrowdWorld::Make(std::move(population), rng.Fork()).MoveValue();

  // A storm enters from the west at t=20 and drifts east at 0.05 km/min.
  sensing::RainCell storm;
  storm.x0 = -1.0;
  storm.y0 = 3.0;
  storm.radius = 2.0;
  storm.vx = 0.05;
  storm.t_start = 20.0;
  storm.t_end = 160.0;
  const auto rain_field =
      sensing::RainField::Make({storm}, /*misreport_prob=*/0.03).MoveValue();

  // Humans respond sluggishly and only somewhat reliably.
  sensing::ResponseBehavior human = sensing::ResponseModel::HumanBehavior();
  human.base_logit = 1.0;
  const auto rain_id =
      world.RegisterAttribute("rain", true, rain_field, human).MoveValue();
  (void)rain_id;

  engine::EngineConfig config;
  config.grid_h = 9;
  config.budget.initial = 32.0;
  config.budget.max = 256.0;
  auto engine = engine::CraqrEngine::Make(std::move(world), config).MoveValue();

  // The paper's Q<1>: acquire rain at a fixed spatio-temporal rate.
  const auto stream =
      engine
          ->SubmitText(
              "ACQUIRE rain FROM REGION(0, 0, 6, 6) RATE 0.3 PER KM2 PER MIN")
          .MoveValue();

  std::printf("rain monitoring: storm crosses the city t=20..160 min\n\n");
  std::printf("%-8s %-14s %-14s %-12s\n", "t(min)", "wet fraction",
              "truth@centre", "tuples/10min");

  std::uint64_t seen = 0;
  for (int checkpoint = 1; checkpoint <= 18; ++checkpoint) {
    (void)engine->RunFor(10.0);
    // Downstream inference: fraction of "yes, raining" answers in the last
    // window of the fabricated stream.
    std::size_t wet = 0;
    std::size_t total = 0;
    for (const auto& tuple : stream.sink->tuples()) {
      if (tuple.point.t > engine->now() - 10.0) {
        ++total;
        if (tuple.value.kind() == ops::PayloadKind::kBool &&
            tuple.value.AsBool()) {
          ++wet;
        }
      }
    }
    const bool truth_centre = std::get<bool>(
        rain_field->GroundTruth({engine->now(), 3.0, 3.0}));
    const std::uint64_t window_tuples = stream.sink->total_received() - seen;
    seen = stream.sink->total_received();
    std::printf("%-8.0f %-14.3f %-14s %-12llu\n", engine->now(),
                total > 0 ? static_cast<double>(wet) /
                                static_cast<double>(total)
                          : 0.0,
                truth_centre ? "raining" : "dry",
                static_cast<unsigned long long>(window_tuples));
  }

  std::printf("\nthe wet fraction rises as the storm enters, peaks while it\n"
              "covers the city centre and falls as it exits — inferred\n"
              "entirely from a rate-controlled crowdsensed stream.\n");
  return 0;
}
