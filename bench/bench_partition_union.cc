/// \file bench_partition_union.cc
/// \brief Experiment E8 — Partition and Union preserve the process rate.
///
/// Paper Section IV-B-1: Partition splits P(lambda, R*) into processes
/// "of the same rate lambda but on different regions"; Union merges
/// adjacent equal-rate processes into P(lambda, R*1 u R*2).  We push large
/// homogeneous streams through random k-way partitions and a union tree
/// and verify each output's empirical rate with exact Poisson tests.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/math.h"
#include "common/rng.h"
#include "ops/extras.h"
#include "ops/partition.h"
#include "ops/union_op.h"
#include "pointprocess/gof.h"
#include "pointprocess/simulate.h"

int main() {
  using namespace craqr;  // NOLINT

  std::printf("=== E8: Partition / Union rate preservation ===\n\n");
  const double rate = 12.0;
  const double duration = 120.0;

  std::printf("--- k-way partition of P(%.0f, [0,4)x[0,4)) ---\n", rate);
  std::printf("%-6s %-12s %-12s %-12s %-10s\n", "k", "branch", "expected",
              "observed", "p-value");
  for (const int k : {2, 4, 8}) {
    const geom::Rect region(0, 0, 4, 4);
    const pp::SpaceTimeWindow window{0.0, duration, region};
    Rng rng(800 + static_cast<std::uint64_t>(k));
    const auto points =
        pp::SimulateHomogeneous(&rng, rate, window).MoveValue();
    // Vertical strips.
    std::vector<geom::Rect> strips;
    const double width = region.Width() / k;
    for (int i = 0; i < k; ++i) {
      strips.emplace_back(i * width, 0.0, (i + 1) * width, 4.0);
    }
    auto partition =
        ops::PartitionOperator::Make("p", strips).MoveValue();
    std::vector<std::unique_ptr<ops::SinkOperator>> sinks;
    for (int i = 0; i < k; ++i) {
      sinks.push_back(
          ops::SinkOperator::Make("s" + std::to_string(i), 1 << 24)
              .MoveValue());
      partition->AddOutput(sinks.back().get());
    }
    for (const auto& p : points) {
      ops::Tuple tuple;
      tuple.point = p;
      (void)partition->Push(tuple);
    }
    for (int i = 0; i < k; ++i) {
      const double expected = rate * strips[i].Area() * duration;
      const double observed =
          static_cast<double>(sinks[i]->tuples().size());
      std::printf("%-6d %-12d %-12.0f %-12.0f %-10.3f\n", k, i, expected,
                  observed, PoissonTwoSidedPValue(expected, observed));
    }
  }

  std::printf("\n--- union tree over a row of adjacent cells ---\n");
  std::printf("%-8s %-14s %-12s %-12s %-10s\n", "cells", "union area",
              "expected", "observed", "p-value");
  for (const int cells : {2, 3, 6}) {
    std::vector<geom::Rect> pieces;
    for (int i = 0; i < cells; ++i) {
      pieces.emplace_back(i, 0.0, i + 1.0, 1.0);
    }
    auto union_op = ops::UnionOperator::Make("u", pieces).MoveValue();
    auto sink = ops::SinkOperator::Make("sink", 1 << 24).MoveValue();
    union_op->AddOutput(sink.get());
    Rng rng(900 + static_cast<std::uint64_t>(cells));
    for (const auto& piece : pieces) {
      const auto points = pp::SimulateHomogeneous(
                              &rng, rate, pp::SpaceTimeWindow{0, duration, piece})
                              .MoveValue();
      for (const auto& p : points) {
        ops::Tuple tuple;
        tuple.point = p;
        (void)union_op->Push(tuple);
      }
    }
    const double expected =
        rate * union_op->output_region().Area() * duration;
    const double observed = static_cast<double>(sink->tuples().size());
    std::printf("%-8d %-14.1f %-12.0f %-12.0f %-10.3f\n", cells,
                union_op->output_region().Area(), expected, observed,
                PoissonTwoSidedPValue(expected, observed));
  }

  std::printf("\n--- partition then union round-trip is lossless ---\n");
  {
    const geom::Rect region(0, 0, 4, 4);
    const pp::SpaceTimeWindow window{0.0, duration, region};
    Rng rng(1000);
    const auto points =
        pp::SimulateHomogeneous(&rng, rate, window).MoveValue();
    const std::vector<geom::Rect> halves = {geom::Rect(0, 0, 2, 4),
                                            geom::Rect(2, 0, 4, 4)};
    auto partition = ops::PartitionOperator::Make("p", halves).MoveValue();
    auto union_op = ops::UnionOperator::Make("u", halves).MoveValue();
    auto sink = ops::SinkOperator::Make("sink", 1 << 24).MoveValue();
    partition->AddOutput(union_op.get());
    partition->AddOutput(union_op.get());
    union_op->AddOutput(sink.get());
    for (const auto& p : points) {
      ops::Tuple tuple;
      tuple.point = p;
      (void)partition->Push(tuple);
    }
    std::printf("input %zu tuples -> output %zu tuples (unrouted %llu)\n",
                points.size(), sink->tuples().size(),
                static_cast<unsigned long long>(partition->unrouted()));
  }
  return 0;
}
