/// \file bench_flatten.cc
/// \brief Experiment E4 — the Flatten operator's homogenisation claim and
/// the behaviour of the percent rate violation N_v.
///
/// Paper Section IV-B-1: flatten "produces an approximately homogeneous
/// point process" and reports N_v, which grows when "sufficient tuples are
/// not present in the batch to create a point process with rate
/// lambda-bar".  Two sweeps:
///   (a) inhomogeneity strength: CV and chi-square p-value before vs after
///       flattening at a safe target rate;
///   (b) target rate: N_v as the requested rate approaches and exceeds the
///       supply.

#include <cstdio>

#include "common/rng.h"
#include "ops/extras.h"
#include "ops/flatten.h"
#include "pointprocess/gof.h"
#include "pointprocess/simulate.h"

namespace {

using namespace craqr;  // NOLINT

struct FlattenOutcome {
  double cv_before = 0.0;
  double cv_after = 0.0;
  double p_before = 0.0;
  double p_after = 0.0;
  double mean_violation = 0.0;
  double delivered = 0.0;
  std::size_t n_in = 0;
  std::size_t n_out = 0;
};

FlattenOutcome RunFlatten(double slope, double target_rate,
                          std::uint64_t seed) {
  const geom::Rect region(0, 0, 4, 4);
  const pp::SpaceTimeWindow window{0.0, 150.0, region};
  const auto model =
      pp::LinearIntensity::Make({1.0, 0.0, slope, slope / 2.0}).MoveValue();
  Rng source_rng(seed);
  const auto points =
      pp::SimulateInhomogeneous(&source_rng, *model, window).MoveValue();

  ops::FlattenConfig config;
  config.region = region;
  config.target_rate = target_rate;
  config.batch_size = 256;
  auto flatten =
      ops::FlattenOperator::Make("f", config, Rng(seed + 1)).MoveValue();
  auto sink = ops::SinkOperator::Make("sink", 1 << 24).MoveValue();
  flatten->AddOutput(sink.get());
  for (const auto& p : points) {
    ops::Tuple tuple;
    tuple.point = p;
    (void)flatten->Push(tuple);
  }
  (void)flatten->Flush();

  std::vector<geom::SpaceTimePoint> retained;
  for (const auto& t : sink->tuples()) {
    retained.push_back(t.point);
  }
  FlattenOutcome outcome;
  const auto before =
      pp::TestSpatialHomogeneity(points, window, 4, 4).MoveValue();
  const auto after =
      pp::TestSpatialHomogeneity(retained, window, 4, 4).MoveValue();
  outcome.cv_before = before.count_cv;
  outcome.cv_after = after.count_cv;
  outcome.p_before = before.p_value;
  outcome.p_after = after.p_value;
  outcome.mean_violation = flatten->violation_history().Mean();
  outcome.delivered = pp::EmpiricalRate(retained, window);
  outcome.n_in = points.size();
  outcome.n_out = retained.size();
  return outcome;
}

}  // namespace

int main() {
  std::printf("=== E4: Flatten homogenisation and rate violations ===\n\n");

  std::printf("--- sweep (a): inhomogeneity strength (target 0.5 /km2/min) "
              "---\n");
  std::printf("%-8s %-10s %-10s %-12s %-12s %-8s %-8s\n", "slope",
              "CV before", "CV after", "p before", "p after", "N_v(%)",
              "out/in");
  for (const double slope : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const auto o = RunFlatten(slope, 0.5, 300);
    std::printf("%-8.1f %-10.3f %-10.3f %-12.2e %-12.3f %-8.2f %zu/%zu\n",
                slope, o.cv_before, o.cv_after, o.p_before, o.p_after,
                o.mean_violation, o.n_out, o.n_in);
  }
  std::printf("\nflattening pushes the chi-square p-value from ~0 back to "
              "non-rejection\nand collapses the cell-count CV, at any "
              "skew.\n\n");

  std::printf("--- sweep (b): target rate vs supply (slope 2.0; supply ~ "
              "6 /km2/min mean) ---\n");
  std::printf("%-12s %-12s %-10s %-10s\n", "target", "delivered", "N_v(%)",
              "p after");
  for (const double target : {0.25, 0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 12.0}) {
    const auto o = RunFlatten(2.0, target, 400);
    std::printf("%-12.2f %-12.3f %-10.2f %-10.3f\n", target, o.delivered,
                o.mean_violation, o.p_after);
  }
  std::printf("\nN_v stays near zero while the target is well under the\n"
              "supply and climbs steeply once the batch cannot support\n"
              "lambda-bar — exactly the signal the budget tuner consumes\n"
              "(paper Section V).\n");
  return 0;
}
