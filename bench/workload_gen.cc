#include "workload_gen.h"

#include <algorithm>
#include <cmath>

namespace craqr {
namespace bench {

WorkloadGenerator::WorkloadGenerator(const WorkloadConfig& config)
    : config_(config) {
  Rng rng(config_.seed);

  // ------------------------------------------------ hot-spot template pool
  std::size_t pool = config_.num_templates;
  if (pool == 0) {
    pool = std::max<std::size_t>(4, config_.num_queries / 64);
  }
  templates_.reserve(pool);
  for (std::size_t k = 0; k < pool; ++k) {
    templates_.push_back(FreshSpec(&rng));
  }
  // Popularity CDF: weight (k+1)^-alpha, so a handful of templates absorb
  // most of the reuse (and most of the skewed traffic below).
  template_cdf_.resize(pool);
  double total = 0.0;
  for (std::size_t k = 0; k < pool; ++k) {
    total += std::pow(static_cast<double>(k + 1), -config_.template_alpha);
    template_cdf_[k] = total;
  }
  for (double& c : template_cdf_) {
    c /= total;
  }

  // --------------------------------------------------- bursty churn schedule
  // Arrivals come in bursts at random batch indices; each burst lands a
  // Poisson-ish clump of queries. churn_fraction of arrivals schedule a
  // cancellation of a random still-live slot at a later burst.
  std::vector<std::size_t> live;  // slots alive as of the schedule cursor
  std::size_t next_slot = 0;
  std::size_t batch = 0;
  const std::size_t span = std::max<std::size_t>(config_.num_batches, 2);
  while (next_slot < config_.num_queries) {
    // Burst position: advance by a random gap, wrapping is not allowed —
    // late arrivals pile into the final batches instead.
    batch = std::min<std::size_t>(batch + 1 + rng.UniformInt(4), span - 1);
    std::size_t burst =
        1 + static_cast<std::size_t>(rng.Poisson(config_.burst_mean));
    burst = std::min(burst, config_.num_queries - next_slot);
    for (std::size_t b = 0; b < burst; ++b) {
      QueryEvent ev;
      ev.kind = QueryEvent::Kind::kInsert;
      ev.slot = next_slot++;
      ev.at_batch = batch;
      if (rng.Bernoulli(config_.overlap_fraction)) {
        ev.spec = templates_[PickTemplate(&rng)];
      } else {
        ev.spec = FreshSpec(&rng);
      }
      schedule_.push_back(ev);
      live.push_back(ev.slot);
      if (rng.Bernoulli(config_.churn_fraction) && live.size() > 1) {
        // Cancel a random live victim a few batches later. Biased toward
        // older slots so long-lived shared stages see churn too.
        const std::size_t victim_at =
            std::min<std::size_t>(batch + 1 + rng.UniformInt(8), span - 1);
        const std::size_t pick = rng.UniformInt(live.size());
        QueryEvent cancel;
        cancel.kind = QueryEvent::Kind::kCancel;
        cancel.slot = live[pick];
        cancel.at_batch = victim_at;
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        schedule_.push_back(cancel);
      }
    }
  }
  std::stable_sort(schedule_.begin(), schedule_.end(),
                   [](const QueryEvent& a, const QueryEvent& b) {
                     return a.at_batch < b.at_batch;
                   });
}

QuerySpec WorkloadGenerator::FreshSpec(Rng* rng) const {
  QuerySpec spec;
  spec.attribute = static_cast<ops::AttributeId>(
      rng->UniformInt(std::max<std::size_t>(config_.num_attributes, 1)));
  double w = 0.0;
  double h = 0.0;
  if (rng->Bernoulli(config_.corridor_fraction)) {
    // Corridor: long axis over several cells, short axis sized so total
    // area lands a little above the grid's one-cell minimum.
    const double length = rng->Uniform(config_.corridor_length_min,
                                       config_.corridor_length_max);
    const double area = config_.min_extent * config_.min_extent *
                        rng->Uniform(1.0, 1.08);
    const double width = area / length;
    const bool horizontal = rng->Bernoulli(0.5);
    w = horizontal ? length : width;
    h = horizontal ? width : length;
  } else {
    w = rng->Uniform(config_.min_extent, config_.max_extent);
    h = rng->Uniform(config_.min_extent, config_.max_extent);
  }
  const double x0 = rng->Uniform(config_.region.x_min(),
                                 config_.region.x_max() - w);
  const double y0 = rng->Uniform(config_.region.y_min(),
                                 config_.region.y_max() - h);
  spec.region = geom::Rect(x0, y0, x0 + w, y0 + h);
  spec.rate = rng->Uniform(config_.min_rate, config_.max_rate);
  return spec;
}

std::size_t WorkloadGenerator::PickTemplate(Rng* rng) const {
  const double u = rng->Uniform();
  const auto it =
      std::lower_bound(template_cdf_.begin(), template_cdf_.end(), u);
  return std::min<std::size_t>(
      static_cast<std::size_t>(it - template_cdf_.begin()),
      templates_.size() - 1);
}

std::vector<std::size_t> WorkloadGenerator::SurvivorSlots() const {
  std::vector<bool> alive(config_.num_queries, false);
  for (const QueryEvent& ev : schedule_) {
    alive[ev.slot] = ev.kind == QueryEvent::Kind::kInsert;
  }
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < alive.size(); ++s) {
    if (alive[s]) {
      out.push_back(s);
    }
  }
  return out;
}

std::vector<std::vector<ops::Tuple>> WorkloadGenerator::MakeBatches() const {
  // An independent stream from the same master seed: the tuple stream
  // must not shift when schedule knobs (overlap, churn) change.
  Rng rng(SplitMix64(config_.seed ^ 0x7D5F1E5ull));
  ops::ValuePool& pool = config_.value_pool != nullptr
                             ? *config_.value_pool
                             : ops::ValuePool::Global();
  double t = 0.0;
  std::uint64_t id = 1;
  std::vector<std::vector<ops::Tuple>> out;
  out.reserve(config_.num_batches);
  for (std::size_t b = 0; b < config_.num_batches; ++b) {
    std::vector<ops::Tuple> batch;
    batch.reserve(config_.batch_size);
    for (std::size_t i = 0; i < config_.batch_size; ++i) {
      ops::Tuple tuple;
      tuple.id = id++;
      tuple.attribute = static_cast<ops::AttributeId>(
          rng.UniformInt(std::max<std::size_t>(config_.num_attributes, 1)));
      t += config_.dt;
      geom::Rect target = config_.region;
      if (rng.Bernoulli(config_.traffic_skew)) {
        const geom::Rect& hot = templates_[PickTemplate(&rng)].region;
        target = geom::Rect(
            std::max(config_.region.x_min(), hot.x_min() - config_.hot_halo),
            std::max(config_.region.y_min(), hot.y_min() - config_.hot_halo),
            std::min(config_.region.x_max(), hot.x_max() + config_.hot_halo),
            std::min(config_.region.y_max(), hot.y_max() + config_.hot_halo));
      }
      tuple.point = geom::SpaceTimePoint{
          t, rng.Uniform(target.x_min(), target.x_max()),
          rng.Uniform(target.y_min(), target.y_max())};
      if (config_.unique_string_fraction > 0.0 &&
          rng.Bernoulli(config_.unique_string_fraction)) {
        // Globally unique: seed-qualified (ids restart at 1 per generator,
        // so two generators must never collide) and padded so each entry
        // costs real pool bytes.
        tuple.value = ops::PayloadRef::String(
            "flood-" + std::to_string(config_.seed) + "-" +
                std::to_string(tuple.id) + "-payload-xxxxxxxxxxxxxxxx",
            pool);
      }
      batch.push_back(tuple);
    }
    out.push_back(std::move(batch));
  }
  return out;
}

}  // namespace bench
}  // namespace craqr
