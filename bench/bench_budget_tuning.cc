/// \file bench_budget_tuning.cc
/// \brief Experiment E6 — the N_v-driven budget-tuning loop (paper
/// Section V "Budget Tuning").
///
/// Two scenarios over the full engine:
///  (a) feasible target: the delivered rate converges to the requested
///      rate while the budget settles;
///  (b) infeasible target (sparse crowd, low budget ceiling): the budget
///      saturates and the engine logs the paper's "accept the feasible
///      rate or pay more" event.

#include <cstdio>

#include "common/rng.h"
#include "core/engine.h"

namespace {

using namespace craqr;  // NOLINT

std::unique_ptr<engine::CraqrEngine> MakeEngine(std::size_t sensors,
                                                double budget_max,
                                                std::uint64_t seed) {
  sensing::PopulationConfig pc;
  pc.region = geom::Rect(0, 0, 6, 6);
  pc.num_sensors = sensors;
  Rng rng(seed);
  auto population = sensing::SensorPopulation::Make(pc, &rng).MoveValue();
  auto world =
      sensing::CrowdWorld::Make(std::move(population), rng.Fork()).MoveValue();
  sensing::TemperatureField::Params tp;
  (void)world.RegisterAttribute("temp", false,
                                sensing::TemperatureField::Make(tp).MoveValue(),
                                sensing::ResponseModel::DeviceBehavior());
  engine::EngineConfig config;
  config.grid_h = 9;
  config.fabric.flatten_batch_size = 48;
  config.budget.initial = 8.0;
  config.budget.delta = 4.0;
  config.budget.max = budget_max;
  return engine::CraqrEngine::Make(std::move(world), config).MoveValue();
}

void RunScenario(const char* name, std::size_t sensors, double budget_max,
                 double rate, std::uint64_t seed) {
  auto craqr_engine = MakeEngine(sensors, budget_max, seed);
  char text[160];
  std::snprintf(text, sizeof(text),
                "ACQUIRE temp FROM REGION(0, 0, 6, 6) RATE %.2f PER KM2 PER "
                "MIN",
                rate);
  const auto stream = craqr_engine->SubmitText(text).MoveValue();
  std::printf("--- %s: %zu sensors, budget ceiling %.0f, requested %.2f "
              "/km2/min ---\n",
              name, sensors, budget_max, rate);
  std::printf("%-8s %-12s %-12s %-14s %-12s %-12s\n", "t(min)", "delivered",
              "budget(0,0)", "increases", "decreases", "infeasible");
  const server::BudgetKey probe{0, geom::CellIndex{0, 0}};
  std::uint64_t last_count = 0;
  double last_time = 0.0;
  for (int checkpoint = 1; checkpoint <= 8; ++checkpoint) {
    (void)craqr_engine->RunFor(10.0);
    const std::uint64_t count = stream.sink->total_received();
    const double window_rate =
        static_cast<double>(count - last_count) /
        (stream.region.Area() * (craqr_engine->now() - last_time));
    last_count = count;
    last_time = craqr_engine->now();
    std::printf("%-8.0f %-12.3f %-12.1f %-14llu %-12llu %-12zu\n",
                craqr_engine->now(), window_rate,
                craqr_engine->budgets().GetBudget(probe),
                static_cast<unsigned long long>(
                    craqr_engine->budgets().increases()),
                static_cast<unsigned long long>(
                    craqr_engine->budgets().decreases()),
                craqr_engine->infeasible_log().size());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== E6: budget tuning via percent rate violation N_v ===\n\n");
  RunScenario("feasible", 700, 256.0, 0.5, 11);
  RunScenario("infeasible", 80, 24.0, 8.0, 12);
  std::printf("in the feasible run the delivered rate locks onto the\n"
              "request while the budget breathes with Delta-beta; in the\n"
              "infeasible run the budget pins at its ceiling and the\n"
              "infeasibility log grows — the user must accept the feasible\n"
              "rate or pay more (paper Section V).\n");
  return 0;
}
