#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

/// \file bench_json.h
/// \brief The shared `--json <path>` emitter of the throughput benches.
///
/// One row per benchmark result, in the repo-level BENCH_*.json
/// perf-trajectory format: `{name, iters, ns_per_op, tuples_per_sec}`
/// (rate-style benches put their primary rate — steps/sec for the
/// engine-step rows — in the rate column). Both emitting benches and the
/// release-bench CI merge step consume this one schema, so a format
/// change lands everywhere at once.

namespace craqr {
namespace benchjson {

struct Entry {
  std::string name;
  std::uint64_t iters = 0;
  double ns_per_op = 0.0;
  double tuples_per_sec = 0.0;
};

/// \brief Extracts `--<flag> <value>` or `--<flag>=<value>` from anywhere
/// in the argument list, removing the consumed arguments in place
/// (argv[0] untouched) — the one flag parser the benches share, so their
/// CLIs cannot drift. `flag` includes the dashes ("--json"). Returns the
/// value, or "" when the flag is absent.
inline std::string ExtractFlagValue(int* argc, char** argv,
                                    const std::string& flag) {
  const std::string prefix = flag + "=";
  std::string value;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg == flag && i + 1 < *argc) {
      value = argv[++i];
      continue;
    }
    if (arg.rfind(prefix, 0) == 0) {
      value = arg.substr(prefix.size());
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return value;
}

/// The original `--json <path>` spelling, kept as a named wrapper.
inline std::string ExtractJsonPath(int* argc, char** argv) {
  return ExtractFlagValue(argc, argv, "--json");
}

/// Writes `entries` as a JSON array to `path` (exits on I/O failure —
/// a bench with an unwritable output path has nothing useful to do).
/// Benchmark names in this repo need no escaping.
inline void WriteEntries(const std::string& path,
                         const std::vector<Entry>& entries) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::fprintf(f,
                 "  {\"name\": \"%s\", \"iters\": %llu, \"ns_per_op\": %.3f, "
                 "\"tuples_per_sec\": %.1f}%s\n",
                 e.name.c_str(), static_cast<unsigned long long>(e.iters),
                 e.ns_per_op, e.tuples_per_sec,
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

}  // namespace benchjson
}  // namespace craqr
