/// \file bench_thin_rate.cc
/// \brief Experiment E3 — the Thin operator's rate claim.
///
/// Paper Section IV-B-1: "It can be shown that this simple procedure
/// produces a point process with the desired rate lambda2."  We sweep the
/// thinning ratio lambda2/lambda1 and report the delivered rate, its
/// relative error, and the exact two-sided Poisson p-value of the observed
/// count under the claimed output law.

#include <cstdio>

#include "common/math.h"
#include "common/rng.h"
#include "ops/extras.h"
#include "ops/thin.h"
#include "pointprocess/gof.h"
#include "pointprocess/simulate.h"

int main() {
  using namespace craqr;  // NOLINT

  std::printf("=== E3: Thin operator output rate ===\n\n");
  const pp::SpaceTimeWindow window{0.0, 200.0, geom::Rect(0, 0, 5, 5)};
  const double lambda1 = 20.0;

  std::printf("input: homogeneous MDPP, lambda1 = %.1f /km2/min over %s, "
              "%.0f min\n\n",
              lambda1, window.space.ToString().c_str(), window.Duration());
  std::printf("%-10s %-12s %-12s %-12s %-10s %-12s %-12s\n", "ratio",
              "lambda2", "delivered", "rel.err(%)", "p-value", "KS-p(time)",
              "chi2-p(space)");

  Rng source_rng(101);
  const auto input =
      pp::SimulateHomogeneous(&source_rng, lambda1, window).MoveValue();

  for (const double ratio :
       {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    const double lambda2 = ratio * lambda1;
    auto thin =
        ops::ThinOperator::Make("thin", lambda1, lambda2,
                                Rng(200 + static_cast<std::uint64_t>(ratio * 100)))
            .MoveValue();
    auto sink = ops::SinkOperator::Make("sink", 1 << 24).MoveValue();
    thin->AddOutput(sink.get());
    for (const auto& p : input) {
      ops::Tuple tuple;
      tuple.point = p;
      (void)thin->Push(tuple);
    }
    std::vector<geom::SpaceTimePoint> retained;
    retained.reserve(sink->tuples().size());
    for (const auto& t : sink->tuples()) {
      retained.push_back(t.point);
    }
    const double delivered = pp::EmpiricalRate(retained, window);
    const double expected = lambda2 * window.Volume();
    const double p_value = PoissonTwoSidedPValue(
        expected, static_cast<double>(retained.size()));
    const auto temporal =
        pp::TestTemporalUniformity(retained, window).MoveValue();
    const auto spatial =
        pp::TestSpatialHomogeneity(retained, window, 5, 5).MoveValue();
    std::printf("%-10.2f %-12.2f %-12.3f %-12.2f %-10.3f %-12.3f %-12.3f\n",
                ratio, lambda2, delivered,
                100.0 * (delivered - lambda2) / lambda2, p_value,
                temporal.p_value, spatial.p_value);
  }
  std::printf("\nclaim holds when every p-value column stays comfortably\n"
              "above rejection thresholds (no systematic rate bias and the\n"
              "output remains a homogeneous MDPP).\n");
  return 0;
}
