/// \file bench_ablation.cc
/// \brief Ablation of the engineering refinements documented in
/// EXPERIMENTS.md ("Known deviations"): each refinement is toggled off in
/// turn and the end-to-end delivered/requested ratio re-measured, showing
/// why the paper-literal control loop under-delivers and which mechanism
/// buys the recovery.
///
/// Configurations:
///   paper-literal : symmetric +/-Delta-beta rule, no supply gate, no
///                   patience, MLE on every batch
///   +hysteresis   : decrease only when N_v < 1%
///   +supply gate  : decrease also requires batch n >= 2x target
///   +patience     : decreases need a 6-batch healthy streak (full default)
///   -small-batch guard : full defaults but MLE even on tiny batches

#include <cstdio>

#include "common/rng.h"
#include "core/engine.h"

namespace {

using namespace craqr;  // NOLINT

engine::EngineConfig BaseConfig() {
  engine::EngineConfig config;
  config.grid_h = 9;
  config.fabric.flatten_batch_size = 64;
  config.budget.initial = 32.0;
  config.budget.delta = 8.0;
  config.budget.max = 256.0;
  return config;
}

double MeasureDelivered(const engine::EngineConfig& config,
                        std::uint64_t seed) {
  sensing::PopulationConfig pc;
  pc.region = geom::Rect(0, 0, 6, 6);
  pc.num_sensors = 700;
  Rng rng(seed);
  auto population = sensing::SensorPopulation::Make(pc, &rng).MoveValue();
  auto world =
      sensing::CrowdWorld::Make(std::move(population), rng.Fork()).MoveValue();
  sensing::TemperatureField::Params tp;
  (void)world.RegisterAttribute("temp", false,
                                sensing::TemperatureField::Make(tp).MoveValue(),
                                sensing::ResponseModel::DeviceBehavior());
  auto craqr_engine =
      engine::CraqrEngine::Make(std::move(world), config).MoveValue();
  const auto stream =
      craqr_engine
          ->SubmitText(
              "ACQUIRE temp FROM REGION(0, 0, 6, 6) RATE 0.5 PER KM2 PER MIN")
          .MoveValue();
  (void)craqr_engine->RunFor(90.0);
  // Steady-state window: the last 60 of 90 minutes.
  std::uint64_t steady = 0;
  for (const auto& tuple : stream.sink->tuples()) {
    if (tuple.point.t > 30.0) {
      ++steady;
    }
  }
  return static_cast<double>(steady) / (36.0 * 60.0) / 0.5;
}

}  // namespace

int main() {
  std::printf("=== ablation: budget-rule refinements and the small-batch "
              "guard ===\n\n");
  std::printf("scenario: 700 sensors, requested 0.5 /km2/min over 36 km2, "
              "steady state = minutes 30..90, mean of 3 seeds\n\n");
  std::printf("%-28s %-22s\n", "configuration", "delivered/requested");

  struct Row {
    const char* name;
    engine::EngineConfig config;
  };
  std::vector<Row> rows;

  {
    Row row{"paper-literal", BaseConfig()};
    row.config.budget.decrease_threshold =
        row.config.budget.violation_threshold;
    row.config.budget.decrease_supply_ratio = 0.0;
    row.config.budget.decrease_patience = 1;
    row.config.fabric.flatten_min_batch_for_estimation = 0;
    rows.push_back(row);
  }
  {
    Row row{"+hysteresis", BaseConfig()};
    row.config.budget.decrease_supply_ratio = 0.0;
    row.config.budget.decrease_patience = 1;
    row.config.fabric.flatten_min_batch_for_estimation = 0;
    rows.push_back(row);
  }
  {
    Row row{"+supply gate", BaseConfig()};
    row.config.budget.decrease_patience = 1;
    row.config.fabric.flatten_min_batch_for_estimation = 0;
    rows.push_back(row);
  }
  {
    Row row{"+patience (full rule)", BaseConfig()};
    row.config.fabric.flatten_min_batch_for_estimation = 0;
    rows.push_back(row);
  }
  {
    rows.push_back(Row{"full + small-batch guard", BaseConfig()});
  }

  for (const auto& row : rows) {
    double sum = 0.0;
    for (std::uint64_t seed : {11u, 22u, 33u}) {
      sum += MeasureDelivered(row.config, seed);
    }
    std::printf("%-28s %-22.3f\n", row.name, sum / 3.0);
  }

  std::printf("\neach refinement moves the steady-state delivery closer to\n"
              "the request; the paper-literal symmetric rule oscillates at\n"
              "the violation threshold and pays the violation mass.\n");
  return 0;
}
