/// \file bench_operator_throughput.cc
/// \brief Experiment E9 — raw PMAT operator throughput (google-benchmark).
///
/// The paper claims PMAT operators "can be implemented using only a few
/// lines of code"; this micro-bench quantifies the flip side — their
/// per-tuple cost — for every operator kind and for chains of increasing
/// depth (the shape query insertion produces).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "ops/extras.h"
#include "ops/flatten.h"
#include "ops/partition.h"
#include "ops/pipeline.h"
#include "ops/thin.h"
#include "ops/union_op.h"

namespace {

using namespace craqr;  // NOLINT

std::vector<ops::Tuple> MakeTuples(std::size_t n) {
  Rng rng(77);
  std::vector<ops::Tuple> tuples;
  tuples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ops::Tuple t;
    t.id = i;
    t.point = geom::SpaceTimePoint{static_cast<double>(i) * 0.01,
                                   rng.Uniform(0.0, 4.0),
                                   rng.Uniform(0.0, 4.0)};
    tuples.push_back(t);
  }
  return tuples;
}

void BM_PassThrough(benchmark::State& state) {
  auto op = ops::PassThroughOperator::Make("id").MoveValue();
  const auto tuples = MakeTuples(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(op->Push(tuples[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PassThrough);

void BM_Thin(benchmark::State& state) {
  auto op = ops::ThinOperator::Make("t", 10.0, 5.0, Rng(1)).MoveValue();
  const auto tuples = MakeTuples(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(op->Push(tuples[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Thin);

void BM_Partition(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  std::vector<geom::Rect> regions;
  std::vector<std::unique_ptr<ops::SinkOperator>> sinks;
  const double width = 4.0 / static_cast<double>(k);
  auto op_result = ops::PartitionOperator::Make("p", [&] {
    for (std::size_t i = 0; i < k; ++i) {
      regions.emplace_back(static_cast<double>(i) * width, 0.0,
                           static_cast<double>(i + 1) * width, 4.0);
    }
    return regions;
  }());
  auto op = op_result.MoveValue();
  for (std::size_t i = 0; i < k; ++i) {
    sinks.push_back(ops::SinkOperator::Make("s", 1024).MoveValue());
    op->AddOutput(sinks.back().get());
  }
  const auto tuples = MakeTuples(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(op->Push(tuples[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Partition)->Arg(2)->Arg(4)->Arg(16);

void BM_Union(benchmark::State& state) {
  auto op = ops::UnionOperator::Make(
                "u", {geom::Rect(0, 0, 2, 4), geom::Rect(2, 0, 4, 4)})
                .MoveValue();
  const auto tuples = MakeTuples(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(op->Push(tuples[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Union);

void BM_FlattenBatch(benchmark::State& state) {
  ops::FlattenConfig config;
  config.region = geom::Rect(0, 0, 4, 4);
  config.target_rate = 1.0;
  config.batch_size = static_cast<std::size_t>(state.range(0));
  auto op = ops::FlattenOperator::Make("f", config, Rng(2)).MoveValue();
  const auto tuples = MakeTuples(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(op->Push(tuples[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlattenBatch)->Arg(64)->Arg(256)->Arg(1024);

void BM_FlattenOnline(benchmark::State& state) {
  ops::FlattenConfig config;
  config.region = geom::Rect(0, 0, 4, 4);
  config.target_rate = 1.0;
  config.mode = ops::FlattenMode::kOnline;
  auto op = ops::FlattenOperator::Make("f", config, Rng(3)).MoveValue();
  // Monotone time required by the online estimator.
  Rng rng(4);
  double t = 0.0;
  ops::Tuple tuple;
  for (auto _ : state) {
    t += 0.001;
    tuple.point = geom::SpaceTimePoint{t, rng.Uniform(0.0, 4.0),
                                       rng.Uniform(0.0, 4.0)};
    benchmark::DoNotOptimize(op->Push(tuple));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlattenOnline);

void BM_ThinChainDepth(benchmark::State& state) {
  // A descending T chain of the given depth, as built by query insertion.
  const auto depth = static_cast<std::size_t>(state.range(0));
  ops::Pipeline pipeline;
  std::vector<ops::ThinOperator*> chain;
  double rate = 1024.0;
  for (std::size_t i = 0; i < depth; ++i) {
    auto thin = ops::ThinOperator::Make("t" + std::to_string(i), rate,
                                        rate / 2.0, Rng(10 + i))
                    .MoveValue();
    rate /= 2.0;
    chain.push_back(pipeline.Add(std::move(thin)));
    if (i > 0) {
      chain[i - 1]->AddOutput(chain[i]);
    }
  }
  const auto tuples = MakeTuples(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.front()->Push(tuples[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThinChainDepth)->Arg(1)->Arg(4)->Arg(8);

}  // namespace
