/// \file bench_operator_throughput.cc
/// \brief Experiment E9 — raw PMAT operator throughput (google-benchmark).
///
/// The paper claims PMAT operators "can be implemented using only a few
/// lines of code"; this micro-bench quantifies the flip side — their
/// per-tuple cost — for every operator kind and for chains of increasing
/// depth (the shape query insertion produces).
///
/// The `...PerTuple` / `...Batch` benchmark pairs print the
/// tuple-at-a-time `Push` path and the batch-native `PushBatch` path side
/// by side (same topology, same seeds, identical delivered tuple sets —
/// the U below both Partition branches sees them batch-grouped rather
/// than per-tuple-interleaved), so CI logs record the vectorized-executor
/// speedup: compare the items_per_second columns of
/// BM_Fig2TopologyPerTuple vs BM_Fig2TopologyBatch, and
/// BM_ThinChainDepthBatch vs BM_ThinChainDepth.
///
/// The `...SweepScalar` / `...SweepMask` pairs isolate the PR-5 selection
/// kernels: the per-row branchy RNG / containment sweeps (the pre-PR
/// implementations, inlined here as references) against the branch-free
/// mask + compact kernels the operators now run. BM_RouteHistogram logs
/// the fabricator's histogram routing pass end to end.
///
/// `--json <path>` additionally writes every result as
/// `{name, iters, ns_per_op, tuples_per_sec}` — the format of the
/// repo-level BENCH_*.json perf trajectory the release-bench CI job
/// uploads.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "common/simd.h"
#include "fabric/fabricator.h"
#include "obs/metrics.h"
#include "ops/extras.h"
#include "ops/flatten.h"
#include "ops/partition.h"
#include "ops/pipeline.h"
#include "ops/thin.h"
#include "ops/union_op.h"

namespace {

using namespace craqr;  // NOLINT

std::vector<ops::Tuple> MakeTuples(std::size_t n) {
  Rng rng(77);
  std::vector<ops::Tuple> tuples;
  tuples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ops::Tuple t;
    t.id = i;
    t.point = geom::SpaceTimePoint{static_cast<double>(i) * 0.01,
                                   rng.Uniform(0.0, 4.0),
                                   rng.Uniform(0.0, 4.0)};
    tuples.push_back(t);
  }
  return tuples;
}

void BM_PassThrough(benchmark::State& state) {
  auto op = ops::PassThroughOperator::Make("id").MoveValue();
  const auto tuples = MakeTuples(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(op->Push(tuples[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PassThrough);

void BM_Thin(benchmark::State& state) {
  auto op = ops::ThinOperator::Make("t", 10.0, 5.0, Rng(1)).MoveValue();
  const auto tuples = MakeTuples(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(op->Push(tuples[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Thin);

void BM_Partition(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  std::vector<geom::Rect> regions;
  std::vector<std::unique_ptr<ops::SinkOperator>> sinks;
  const double width = 4.0 / static_cast<double>(k);
  auto op_result = ops::PartitionOperator::Make("p", [&] {
    for (std::size_t i = 0; i < k; ++i) {
      regions.emplace_back(static_cast<double>(i) * width, 0.0,
                           static_cast<double>(i + 1) * width, 4.0);
    }
    return regions;
  }());
  auto op = op_result.MoveValue();
  for (std::size_t i = 0; i < k; ++i) {
    sinks.push_back(ops::SinkOperator::Make("s", 1024).MoveValue());
    op->AddOutput(sinks.back().get());
  }
  const auto tuples = MakeTuples(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(op->Push(tuples[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Partition)->Arg(2)->Arg(4)->Arg(16);

void BM_Union(benchmark::State& state) {
  auto op = ops::UnionOperator::Make(
                "u", {geom::Rect(0, 0, 2, 4), geom::Rect(2, 0, 4, 4)})
                .MoveValue();
  const auto tuples = MakeTuples(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(op->Push(tuples[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Union);

void BM_FlattenBatch(benchmark::State& state) {
  ops::FlattenConfig config;
  config.region = geom::Rect(0, 0, 4, 4);
  config.target_rate = 1.0;
  config.batch_size = static_cast<std::size_t>(state.range(0));
  auto op = ops::FlattenOperator::Make("f", config, Rng(2)).MoveValue();
  const auto tuples = MakeTuples(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(op->Push(tuples[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlattenBatch)->Arg(64)->Arg(256)->Arg(1024);

void BM_FlattenOnline(benchmark::State& state) {
  ops::FlattenConfig config;
  config.region = geom::Rect(0, 0, 4, 4);
  config.target_rate = 1.0;
  config.mode = ops::FlattenMode::kOnline;
  auto op = ops::FlattenOperator::Make("f", config, Rng(3)).MoveValue();
  // Monotone time required by the online estimator.
  Rng rng(4);
  double t = 0.0;
  ops::Tuple tuple;
  for (auto _ : state) {
    t += 0.001;
    tuple.point = geom::SpaceTimePoint{t, rng.Uniform(0.0, 4.0),
                                       rng.Uniform(0.0, 4.0)};
    benchmark::DoNotOptimize(op->Push(tuple));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlattenOnline);

// ---------------------------------------------------------------------------
// Per-tuple vs batch, side by side

/// The Fig-2 cell-chain shape: a 3-deep descending T chain into P (two
/// branches) into U, delivered through a rate monitor into a sink — the
/// stages whose execution model actually differs between tuple-at-a-time
/// and batch. The F head is deliberately omitted: in the paper's primary
/// kBatch formulation F buffers and re-batches the stream identically
/// under both execution models, so including it would only add a large
/// identical constant to both sides of the comparison.
struct Fig2Topology {
  ops::Pipeline pipeline;
  ops::ThinOperator* head = nullptr;
  ops::SinkOperator* sink = nullptr;
};

Fig2Topology MakeFig2Topology() {
  Fig2Topology topo;
  // Realistic post-F retention ratios: consecutive query rates are close,
  // so most tuples survive deep into the chain (the expensive case for
  // per-tuple dispatch).
  topo.head = topo.pipeline.Add(
      ops::ThinOperator::Make("t1", 20.0, 17.0, Rng(22)).MoveValue());
  auto* t2 = topo.pipeline.Add(
      ops::ThinOperator::Make("t2", 17.0, 14.0, Rng(23)).MoveValue());
  auto* t3 = topo.pipeline.Add(
      ops::ThinOperator::Make("t3", 14.0, 11.0, Rng(24)).MoveValue());
  auto* p = topo.pipeline.Add(
      ops::PartitionOperator::Make(
          "p", {geom::Rect(0, 0, 2, 4), geom::Rect(2, 0, 4, 4)})
          .MoveValue());
  auto* u = topo.pipeline.Add(
      ops::UnionOperator::Make(
          "u", {geom::Rect(0, 0, 2, 4), geom::Rect(2, 0, 4, 4)})
          .MoveValue());
  auto* mon = topo.pipeline.Add(
      ops::RateMonitorOperator::Make("mon", 1.0, 16.0).MoveValue());
  topo.sink = topo.pipeline.Add(ops::SinkOperator::Make("sink").MoveValue());
  topo.head->AddOutput(t2);
  t2->AddOutput(t3);
  t3->AddOutput(p);
  p->AddOutput(u);
  p->AddOutput(u);
  u->AddOutput(mon);
  mon->AddOutput(topo.sink);
  return topo;
}

constexpr std::size_t kFig2BatchSize = 256;

void BM_Fig2TopologyPerTuple(benchmark::State& state) {
  Fig2Topology topo = MakeFig2Topology();
  const auto tuples = MakeTuples(kFig2BatchSize);
  for (auto _ : state) {
    for (const ops::Tuple& tuple : tuples) {
      benchmark::DoNotOptimize(topo.head->Push(tuple));
    }
    topo.sink->Clear();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kFig2BatchSize));
}
BENCHMARK(BM_Fig2TopologyPerTuple);

void BM_Fig2TopologyBatch(benchmark::State& state) {
  Fig2Topology topo = MakeFig2Topology();
  const auto tuples = MakeTuples(kFig2BatchSize);
  ops::TupleBatch batch;
  for (auto _ : state) {
    // The refill copy is part of the measured cost — the fabricator's
    // routing pass pays the same copy when it builds per-chain batches.
    batch.Assign(tuples);
    benchmark::DoNotOptimize(topo.head->PushBatch(batch));
    topo.sink->Clear();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kFig2BatchSize));
}
BENCHMARK(BM_Fig2TopologyBatch);

void BM_ThinChainDepthBatch(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  ops::Pipeline pipeline;
  std::vector<ops::ThinOperator*> chain;
  double rate = 1024.0;
  for (std::size_t i = 0; i < depth; ++i) {
    auto thin = ops::ThinOperator::Make("t" + std::to_string(i), rate,
                                        rate / 2.0, Rng(10 + i))
                    .MoveValue();
    rate /= 2.0;
    chain.push_back(pipeline.Add(std::move(thin)));
    if (i > 0) {
      chain[i - 1]->AddOutput(chain[i]);
    }
  }
  const auto tuples = MakeTuples(kFig2BatchSize);
  ops::TupleBatch batch;
  for (auto _ : state) {
    batch.Assign(tuples);
    benchmark::DoNotOptimize(chain.front()->PushBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kFig2BatchSize));
}
BENCHMARK(BM_ThinChainDepthBatch)->Arg(1)->Arg(4)->Arg(8);

// ---------------------------------------------------------------------------
// String-carrying Flatten chain: the columnar-payload case
//
// Every tuple carries a categorical string value. Before the columnar
// refactor each hop moved a ~90-byte tuple with a std::string inside its
// variant; now values are 12-byte interned PayloadRef handles, so the
// Flatten buffer append, the retain sweep and the sink store never touch
// string bytes. The PerTuple/Batch pair records the batch-execution win on
// this chain in the release-bench CI logs.

std::vector<ops::Tuple> MakeStringTuples(std::size_t n) {
  static const char* kCategories[7] = {"clear", "drizzle", "rain", "downpour",
                                       "hail",  "sleet",   "fog"};
  Rng rng(78);
  std::vector<ops::Tuple> tuples;
  tuples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ops::Tuple t;
    t.id = i;
    t.sensor_id = 100 + (i % 17);
    t.point = geom::SpaceTimePoint{static_cast<double>(i) * 0.01,
                                   rng.Uniform(0.0, 4.0),
                                   rng.Uniform(0.0, 4.0)};
    t.value = ops::PayloadRef::String(kCategories[i % 7]);
    tuples.push_back(t);
  }
  return tuples;
}

/// The string-carrying Fig-2/Flatten chain: an online F head into the
/// Fig-2 cell-chain shape (descending T chain -> P -> U -> Mon -> sink),
/// every tuple carrying a categorical string payload. F runs in kOnline
/// mode because that is where the two execution models actually diverge:
/// the batch path does one estimator/RNG sweep that deselects drops in
/// place, the per-tuple path pays a full per-tuple emit cascade. (A kBatch
/// F buffers and re-batches the stream identically under both models, so
/// it would only add an identical constant to both sides — the reason the
/// plain Fig-2 pair omits the F head entirely.)
struct StringFlattenChain {
  ops::Pipeline pipeline;
  ops::FlattenOperator* head = nullptr;
  ops::SinkOperator* sink = nullptr;
};

StringFlattenChain MakeStringFlattenChain() {
  StringFlattenChain topo;
  ops::FlattenConfig config;
  config.region = geom::Rect(0, 0, 4, 4);
  config.mode = ops::FlattenMode::kOnline;
  config.target_rate = 1000.0;  // retain ~everything: worst case for moves
  config.target_mode = ops::FlattenTargetMode::kRatePerVolume;
  topo.head = topo.pipeline.Add(
      ops::FlattenOperator::Make("f", config, Rng(31)).MoveValue());
  // A 6-deep descending T chain with close consecutive rates — the shape
  // six near-rate queries on one cell produce, and the expensive case for
  // per-tuple dispatch (most tuples survive to the bottom).
  std::vector<ops::ThinOperator*> thins;
  double rate = 20.0;
  for (int i = 0; i < 6; ++i) {
    auto thin = ops::ThinOperator::Make("t" + std::to_string(i + 1), rate,
                                        rate - 1.0, Rng(32 + i))
                    .MoveValue();
    rate -= 1.0;
    thins.push_back(topo.pipeline.Add(std::move(thin)));
    if (i > 0) {
      thins[i - 1]->AddOutput(thins[i]);
    }
  }
  auto* p = topo.pipeline.Add(
      ops::PartitionOperator::Make(
          "p", {geom::Rect(0, 0, 2, 4), geom::Rect(2, 0, 4, 4)})
          .MoveValue());
  auto* u = topo.pipeline.Add(
      ops::UnionOperator::Make(
          "u", {geom::Rect(0, 0, 2, 4), geom::Rect(2, 0, 4, 4)})
          .MoveValue());
  auto* mon = topo.pipeline.Add(
      ops::RateMonitorOperator::Make("mon", 1.0, 16.0).MoveValue());
  topo.sink = topo.pipeline.Add(ops::SinkOperator::Make("sink").MoveValue());
  topo.head->AddOutput(thins.front());
  thins.back()->AddOutput(p);
  p->AddOutput(u);
  p->AddOutput(u);
  u->AddOutput(mon);
  mon->AddOutput(topo.sink);
  return topo;
}

void BM_StringFlattenChainPerTuple(benchmark::State& state) {
  StringFlattenChain topo = MakeStringFlattenChain();
  const auto tuples = MakeStringTuples(kFig2BatchSize);
  for (auto _ : state) {
    for (const ops::Tuple& tuple : tuples) {
      benchmark::DoNotOptimize(topo.head->Push(tuple));
    }
    topo.sink->Clear();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kFig2BatchSize));
}
BENCHMARK(BM_StringFlattenChainPerTuple);

void BM_StringFlattenChainBatch(benchmark::State& state) {
  StringFlattenChain topo = MakeStringFlattenChain();
  const auto tuples = MakeStringTuples(kFig2BatchSize);
  ops::TupleBatch batch;
  for (auto _ : state) {
    batch.Assign(tuples);
    benchmark::DoNotOptimize(topo.head->PushBatch(batch));
    topo.sink->Clear();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kFig2BatchSize));
}
BENCHMARK(BM_StringFlattenChainBatch);

void BM_ThinChainDepth(benchmark::State& state) {
  // A descending T chain of the given depth, as built by query insertion.
  const auto depth = static_cast<std::size_t>(state.range(0));
  ops::Pipeline pipeline;
  std::vector<ops::ThinOperator*> chain;
  double rate = 1024.0;
  for (std::size_t i = 0; i < depth; ++i) {
    auto thin = ops::ThinOperator::Make("t" + std::to_string(i), rate,
                                        rate / 2.0, Rng(10 + i))
                    .MoveValue();
    rate /= 2.0;
    chain.push_back(pipeline.Add(std::move(thin)));
    if (i > 0) {
      chain[i - 1]->AddOutput(chain[i]);
    }
  }
  const auto tuples = MakeTuples(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.front()->Push(tuples[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ThinChainDepth)->Arg(1)->Arg(4)->Arg(8);

// ---------------------------------------------------------------------------
// PR-5 selection kernels: branchy scalar sweep vs branch-free mask sweep
//
// Each pair runs the identical decision over the identical batch; only
// the kernel differs. Scalar = the pre-vectorization per-row
// implementation (branch per tuple, per-row RNG call / region loop),
// Mask = the batch mask fill + compact the operators now run.

constexpr std::size_t kSweepBatchSize = 4096;

void BM_ThinSweepScalar(benchmark::State& state) {
  const auto tuples = MakeTuples(kSweepBatchSize);
  const double p = 0.7;
  Rng rng(91);
  ops::TupleBatch batch;
  for (auto _ : state) {
    batch.Assign(tuples);
    // The pre-PR sweep: per-row RNG call, double conversion + compare,
    // branch per tuple.
    batch.RetainRaw([&rng, p](std::uint32_t) { return rng.Uniform() < p; });
    benchmark::DoNotOptimize(batch.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kSweepBatchSize));
}
BENCHMARK(BM_ThinSweepScalar);

void BM_ThinSweepMask(benchmark::State& state) {
  const auto tuples = MakeTuples(kSweepBatchSize);
  const double p = 0.7;
  Rng rng(91);
  ops::TupleBatch batch;
  std::vector<std::uint8_t> mask(kSweepBatchSize);
  for (auto _ : state) {
    batch.Assign(tuples);
    rng.FillBernoulliMask(p, {mask.data(), kSweepBatchSize});
    batch.RetainFromMask({mask.data(), kSweepBatchSize});
    benchmark::DoNotOptimize(batch.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kSweepBatchSize));
}
BENCHMARK(BM_ThinSweepMask);

// Metrics-overhead probe: the identical 4-deep Thin chain per-batch push
// with the obs registry runtime-enabled (Arg 1) vs runtime-disabled
// (Arg 0). Every PushBatch crosses CountIn -> RecordDispatch (counter
// adds + one histogram Record per operator), so the delta between the
// two rows is the whole per-dispatch observability cost. Target: < 3%.
void BM_MetricsOverhead(benchmark::State& state) {
  const bool was_enabled = obs::IsEnabled();
  obs::SetEnabled(state.range(0) != 0);
  ops::Pipeline pipeline;
  std::vector<ops::ThinOperator*> chain;
  double rate = 1024.0;
  for (std::size_t i = 0; i < 4; ++i) {
    auto thin = ops::ThinOperator::Make("t" + std::to_string(i), rate,
                                        rate / 2.0, Rng(10 + i))
                    .MoveValue();
    rate /= 2.0;
    chain.push_back(pipeline.Add(std::move(thin)));
    if (i > 0) {
      chain[i - 1]->AddOutput(chain[i]);
    }
  }
  const auto tuples = MakeTuples(kSweepBatchSize);
  ops::TupleBatch batch;
  for (auto _ : state) {
    batch.Assign(tuples);
    benchmark::DoNotOptimize(chain.front()->PushBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kSweepBatchSize));
  obs::SetEnabled(was_enabled);
}
BENCHMARK(BM_MetricsOverhead)->Arg(0)->Arg(1);

std::vector<geom::Rect> SweepStrips() {
  std::vector<geom::Rect> strips;
  for (int k = 0; k < 4; ++k) {
    strips.emplace_back(k * 1.0, 0.0, (k + 1) * 1.0, 4.0);
  }
  return strips;
}

/// The benchmark argument is the number of connected output ports. 1 is
/// the shape query insertion actually builds (a P carving one overlap
/// region out of a cell, complement ports unconnected); 4 is the full
/// fan-out worst case for the mask kernels (every region needs a mask +
/// compact, where the scalar loop early-exits).
void BM_PartitionSweepScalar(benchmark::State& state) {
  const auto connected = static_cast<std::size_t>(state.range(0));
  const auto tuples = MakeTuples(kSweepBatchSize);
  const auto strips = SweepStrips();
  const ops::TupleBatch batch(tuples);
  std::vector<std::vector<std::uint32_t>> ports(strips.size());
  std::uint64_t unrouted = 0;
  for (auto _ : state) {
    // The pre-PR routing pass: per-row region loop with early exit and a
    // branch per region test.
    batch.ForEachRaw([&](std::uint32_t idx) {
      const geom::SpaceTimePoint& p = batch.point_at(idx);
      for (std::size_t k = 0; k < strips.size(); ++k) {
        if (strips[k].Contains(p.x, p.y)) {
          if (k >= connected) {
            ++unrouted;
          } else {
            ports[k].push_back(idx);
          }
          return;
        }
      }
      ++unrouted;
    });
    for (auto& port : ports) {
      benchmark::DoNotOptimize(port.size());
      port.clear();
    }
  }
  benchmark::DoNotOptimize(unrouted);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kSweepBatchSize));
}
BENCHMARK(BM_PartitionSweepScalar)->Arg(1)->Arg(4);

void BM_PartitionSweepMask(benchmark::State& state) {
  const auto connected = static_cast<std::size_t>(state.range(0));
  const auto tuples = MakeTuples(kSweepBatchSize);
  const auto strips = SweepStrips();
  const ops::TupleBatch batch(tuples);
  std::vector<std::vector<std::uint32_t>> ports(strips.size());
  std::vector<std::uint8_t> mask(kSweepBatchSize);
  std::uint64_t unrouted = 0;
  for (auto _ : state) {
    // The PR-5 routing pass: one branch-free containment mask + compact
    // per *connected* region; everything unclaimed is unrouted by
    // subtraction (regions are disjoint).
    std::size_t routed = 0;
    for (std::size_t k = 0; k < connected; ++k) {
      strips[k].ContainsMask(batch.RawPoints(), mask.data());
      batch.GatherActiveWhere({mask.data(), kSweepBatchSize}, &ports[k]);
      routed += ports[k].size();
    }
    unrouted += kSweepBatchSize - routed;
    for (auto& port : ports) {
      benchmark::DoNotOptimize(port.size());
      port.clear();
    }
  }
  benchmark::DoNotOptimize(unrouted);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kSweepBatchSize));
}
BENCHMARK(BM_PartitionSweepMask)->Arg(1)->Arg(4);

// ---------------------------------------------------------------------------
// Histogram routing: the fabricator's single-pass
// count -> prefix-sum -> scatter map phase, end to end (routing + grouped
// inbox copies + chain processing), on a multi-cell multi-attribute
// topology. Logged by release-bench as the routing-throughput trajectory.

void BM_RouteHistogram(benchmark::State& state) {
  const auto grid =
      geom::Grid::Make(geom::Rect(0, 0, 8, 8), 16).MoveValue();
  fabric::FabricConfig config;
  config.flatten_batch_size = 64;
  config.seed = 0xBE7CB;
  auto fab = fabric::StreamFabricator::Make(grid, config).MoveValue();
  for (int a = 0; a < 2; ++a) {
    if (!fab->InsertQuery(a, geom::Rect(0, 0, 8, 8), 2.0 + a).ok() ||
        !fab->InsertQuery(a, geom::Rect(0, 0, 4, 8), 1.0 + a).ok()) {
      state.SkipWithError("query insertion failed");
      return;
    }
  }
  Rng rng(7);
  std::vector<ops::Tuple> tuples;
  tuples.reserve(kSweepBatchSize);
  double t = 0.0;
  for (std::size_t i = 0; i < kSweepBatchSize; ++i) {
    ops::Tuple tuple;
    tuple.id = i + 1;
    tuple.attribute = i % 2;
    t += 0.001;
    tuple.point = geom::SpaceTimePoint{t, rng.Uniform(0.0, 8.5),
                                       rng.Uniform(0.0, 8.5)};
    tuples.push_back(tuple);
  }
  ops::TupleBatch batch;
  for (auto _ : state) {
    batch.Assign(tuples);
    if (!fab->ProcessBatch(batch).ok()) {
      state.SkipWithError("ProcessBatch failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kSweepBatchSize));
}
BENCHMARK(BM_RouteHistogram);

// ---------------------------------------------------------------------------
// Custom main: console output as usual, plus `--json <path>` emitting the
// BENCH_*.json perf-trajectory format (bench_json.h).

/// Console reporter that additionally captures per-run entries for the
/// JSON emitter (aggregate rows are skipped).
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) {
        continue;
      }
      benchjson::Entry e;
      e.name = run.benchmark_name();
      e.iters = static_cast<std::uint64_t>(run.iterations);
      e.ns_per_op = run.iterations > 0
                        ? run.real_accumulated_time /
                              static_cast<double>(run.iterations) * 1e9
                        : 0.0;
      const auto it = run.counters.find("items_per_second");
      e.tuples_per_sec =
          it != run.counters.end() ? static_cast<double>(it->second) : 0.0;
      entries.push_back(std::move(e));
    }
  }
  std::vector<benchjson::Entry> entries;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = craqr::benchjson::ExtractJsonPath(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) {
    craqr::benchjson::WriteEntries(json_path, reporter.entries);
  }
  return 0;
}
