/// \file bench_memory_soak.cc
/// \brief Bounded-memory endurance soak: a governed sharded runtime under
/// seeded query churn plus an adversarial unique-string flood (every
/// tuple carries a never-repeating string payload — the input an
/// ungoverned interning pool can never forget) for many rounds, asserting
/// that the governed footprint (pool + arenas + queues) plateaus under
/// `memory_budget_bytes` while a twin ungoverned pool fed the identical
/// strings grows linearly.
///
/// The schedule is fully determined by --seed: the CI job logs the seed
/// it drew, so any failure replays exactly with
/// `bench_memory_soak --seed <logged>`. Governance runs the
/// value-preserving soft path (generation retirement + re-intern + arena
/// trim); digest equivalence governance on vs off is pinned by
/// memory_governance_test — this soak's subject is the *plateau*.
///
/// Usage: bench_memory_soak [--seed N] [--json <path>]
///                          [--metrics-json <path>] [rounds] [shards]
/// Prints one `SOAK PASS`/`SOAK FAIL` line (the CI soak step greps it)
/// and exits non-zero when the plateau or retirement assertions fail.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "obs/exporter.h"
#include "runtime/sharded_fabricator.h"
#include "workload_gen.h"

namespace {

using namespace craqr;  // NOLINT

constexpr ops::AttributeId kRain = 0;
constexpr ops::AttributeId kTemp = 1;

/// Budget sized so the flood crosses the soft watermark every handful of
/// rounds (several reclamation cycles per soak) while post-retirement
/// usage stays under the hard watermark — the steady governed regime is
/// a sawtooth bounded by the soft watermark, never degradation.
constexpr std::size_t kBudgetBytes = std::size_t(3) << 19;  // 1.5 MiB

struct SoakRuntime {
  std::unique_ptr<runtime::ShardedFabricator> fab;
  std::vector<query::QueryId> stable_ids;
  query::QueryId churn_id = 0;
};

bool BuildRuntime(ops::ValuePool* pool, std::size_t shards,
                  SoakRuntime* out) {
  runtime::ShardedConfig config;
  config.num_shards = shards;
  config.fabric.flatten_batch_size = 32;
  config.fabric.seed = 0xC0FFEE;
  config.fabric.sink_capacity = 64;  // bounded live-string holders
  config.fabric.value_pool = pool;
  config.enable_stealing = shards > 1;
  config.memory.budget_bytes = kBudgetBytes;
  auto made = runtime::ShardedFabricator::Make(
      geom::Grid::Make(geom::Rect(0, 0, 4, 4), 16).MoveValue(), config);
  if (!made.ok()) {
    std::fprintf(stderr, "Make failed: %s\n",
                 made.status().ToString().c_str());
    return false;
  }
  out->fab = made.MoveValue();
  const struct {
    ops::AttributeId attribute;
    geom::Rect region;
    double rate;
  } specs[] = {
      {kRain, geom::Rect(0, 0, 4, 4), 6.0},
      {kRain, geom::Rect(1, 1, 3, 3), 3.0},
      {kTemp, geom::Rect(0, 0, 2, 4), 4.0},
  };
  for (const auto& spec : specs) {
    auto q = out->fab->InsertQuery(spec.attribute, spec.region, spec.rate);
    if (!q.ok()) {
      std::fprintf(stderr, "InsertQuery failed: %s\n",
                   q.status().ToString().c_str());
      return false;
    }
    out->stable_ids.push_back(q->id);
  }
  return true;
}

/// One round's topology churn (deterministic from the round index).
bool Churn(SoakRuntime* rt, std::size_t round) {
  if (round % 7 == 5) {
    if (rt->churn_id != 0 && !rt->fab->RemoveQuery(rt->churn_id).ok()) {
      return false;
    }
    auto q = rt->fab->InsertQuery(kRain, geom::Rect(0, 0, 2, 2), 5.0);
    if (!q.ok()) {
      return false;
    }
    rt->churn_id = q->id;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = benchjson::ExtractJsonPath(&argc, argv);
  const std::string metrics_path =
      benchjson::ExtractFlagValue(&argc, argv, "--metrics-json");
  std::uint64_t seed = 0x10DEAD;
  std::size_t rounds = 60;
  std::size_t shards = 2;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  if (!positional.empty()) {
    rounds = std::strtoull(positional[0].c_str(), nullptr, 0);
  }
  if (positional.size() > 1) {
    shards = std::strtoull(positional[1].c_str(), nullptr, 0);
  }
  std::printf("memory-soak seed=%llu rounds=%zu shards=%zu budget=%zu\n",
              static_cast<unsigned long long>(seed), rounds, shards,
              kBudgetBytes);

  ops::ValuePool governed_pool;
  ops::ValuePool ungoverned_pool;
  SoakRuntime rt;
  if (!BuildRuntime(&governed_pool, shards, &rt)) {
    return 1;
  }

  // Plateau windows: after warmup the governed footprint is a sawtooth
  // (grow to the soft watermark, reclaim, repeat), so the plateau check
  // compares the high water of the first post-warmup half-window against
  // the second — linear growth fails it, a bounded sawtooth passes.
  const std::size_t warmup = std::max<std::size_t>(rounds / 4, 6);
  const std::size_t mid = warmup + (rounds - warmup) / 2;
  std::size_t high_water_first = 0;
  std::size_t high_water_second = 0;
  std::size_t pumped = 0;
  double pump_seconds = 0.0;
  for (std::size_t round = 0; round < rounds; ++round) {
    if (!Churn(&rt, round)) {
      std::fprintf(stderr, "churn failed at round %zu\n", round);
      return 1;
    }
    // Fresh generator per round (the flood must be interned *after* prior
    // retirements — pre-generating every batch would pin every handle
    // live and make the plateau vacuous). Seed-qualified flood strings
    // keep rounds globally unique.
    bench::WorkloadConfig wc;
    wc.region = geom::Rect(0, 0, 4, 4);
    wc.num_batches = 2;
    wc.batch_size = 256;
    wc.num_attributes = 2;
    wc.unique_string_fraction = 1.0;
    wc.seed = seed * 1000003 + round;
    wc.value_pool = &governed_pool;
    const bench::WorkloadGenerator gen(wc);
    // Twin: the identical strings into an ungoverned pool — the linear
    // baseline the plateau is measured against.
    bench::WorkloadConfig twin = wc;
    twin.value_pool = &ungoverned_pool;
    (void)bench::WorkloadGenerator(twin).MakeBatches();

    const auto start = std::chrono::steady_clock::now();
    for (const auto& batch : gen.MakeBatches()) {
      if (!rt.fab->ProcessBatch(batch).ok()) {
        std::fprintf(stderr, "ProcessBatch failed at round %zu\n", round);
        return 1;
      }
      pumped += batch.size();
    }
    if (!rt.fab->GovernMemory().ok()) {
      std::fprintf(stderr, "GovernMemory failed at round %zu\n", round);
      return 1;
    }
    const auto end = std::chrono::steady_clock::now();
    pump_seconds +=
        std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
            .count();

    const runtime::ShardedStats stats = rt.fab->Snapshot();
    // Snapshot barriers first, so shard queues are drained: the governed
    // footprint at a round boundary is pool + parked arena storage.
    const std::size_t governed_bytes =
        stats.value_pool_bytes + stats.arena_free_bytes;
    if (round >= warmup && round < mid) {
      high_water_first = std::max(high_water_first, governed_bytes);
    } else if (round >= mid) {
      high_water_second = std::max(high_water_second, governed_bytes);
    }
    if (round % 10 == 9) {
      std::printf(
          "round %3zu: governed=%8zu ungoverned=%8zu retired=%llu "
          "pressure=%d\n",
          round, governed_bytes, ungoverned_pool.ApproxBytes(),
          static_cast<unsigned long long>(stats.pool_generations_retired),
          stats.memory_pressure);
    }
  }
  if (!rt.fab->Drain().ok() || !rt.fab->ValidateInvariants().ok()) {
    std::fprintf(stderr, "final drain / invariants failed\n");
    return 1;
  }

  const runtime::ShardedStats stats = rt.fab->Snapshot();
  const std::size_t governed_final =
      stats.value_pool_bytes + stats.arena_free_bytes;
  const std::size_t ungoverned_final = ungoverned_pool.ApproxBytes();
  const double rate =
      pump_seconds > 0.0 ? static_cast<double>(pumped) / pump_seconds : 0.0;
  const std::size_t high_water =
      std::max(high_water_first, high_water_second);
  std::printf("pumped %zu tuples at %.0f tuples/sec\n", pumped, rate);
  std::printf("governed high-water: rounds [%zu,%zu)=%zu  [%zu,%zu)=%zu\n",
              warmup, mid, high_water_first, mid, rounds,
              high_water_second);
  std::printf("governed final: %zu vs ungoverned %zu (%.1fx)\n",
              governed_final, ungoverned_final,
              governed_final > 0
                  ? static_cast<double>(ungoverned_final) / governed_final
                  : 0.0);

  bool pass = true;
  if (stats.pool_generations_retired < 2) {
    std::fprintf(stderr,
                 "FAIL: governance retired %llu generations (need >= 2 "
                 "reclamation cycles)\n",
                 static_cast<unsigned long long>(
                     stats.pool_generations_retired));
    pass = false;
  }
  // Plateau: the second half-window's high water must not exceed the
  // first's by more than 25% (linear growth roughly doubles it), and the
  // whole sawtooth stays under the budget.
  if (high_water_second * 4 > high_water_first * 5) {
    std::fprintf(stderr,
                 "FAIL: footprint still growing after warmup (%zu -> %zu)\n",
                 high_water_first, high_water_second);
    pass = false;
  }
  if (high_water > kBudgetBytes) {
    std::fprintf(stderr, "FAIL: high water %zu exceeds budget %zu\n",
                 high_water, kBudgetBytes);
    pass = false;
  }
  // Linear contrast: the ungoverned pool holding every flood string must
  // dwarf the governed steady state.
  if (governed_final * 3 > ungoverned_final) {
    std::fprintf(stderr,
                 "FAIL: governed %zu not clearly bounded vs ungoverned %zu\n",
                 governed_final, ungoverned_final);
    pass = false;
  }
  // Graceful: steady-state governance must not leave the runtime degraded
  // (hard pressure is the overload escape hatch, not the operating mode).
  if (rt.fab->degraded()) {
    std::fprintf(stderr, "FAIL: runtime still degraded after final drain\n");
    pass = false;
  }
  for (const query::QueryId id : rt.stable_ids) {
    const auto stream = rt.fab->GetStream(id);
    if (!stream.ok() || stream->sink->tuples().empty()) {
      std::fprintf(stderr, "FAIL: query %llu delivered nothing\n",
                   static_cast<unsigned long long>(id));
      pass = false;
    }
  }

  if (!json_path.empty()) {
    std::vector<benchjson::Entry> entries;
    auto add = [&entries](const std::string& name, std::uint64_t iters,
                          double value, bool is_rate) {
      benchjson::Entry e;
      e.name = name;
      e.iters = iters;
      e.ns_per_op = is_rate && value > 0.0 ? 1e9 / value : 0.0;
      e.tuples_per_sec = value;
      entries.push_back(std::move(e));
    };
    // Byte telemetry rides the rate column (the benches' primary-value
    // convention, see bench_json.h); ns_per_op is only meaningful for
    // the throughput row.
    add("BM_MemorySoakThroughput", pumped, rate, true);
    add("BM_MemorySoakGovernedHighWaterBytes", rounds,
        static_cast<double>(high_water), false);
    add("BM_MemorySoakGovernedFinalBytes", rounds,
        static_cast<double>(governed_final), false);
    add("BM_MemorySoakUngovernedPoolBytes", rounds,
        static_cast<double>(ungoverned_final), false);
    add("BM_MemorySoakGenerationsRetired", rounds,
        static_cast<double>(stats.pool_generations_retired), false);
    benchjson::WriteEntries(json_path, entries);
  }
  if (!metrics_path.empty()) {
    const Status status =
        obs::MetricsExporter::WriteJsonSnapshot(metrics_path);
    if (!status.ok()) {
      std::fprintf(stderr, "cannot write metrics snapshot: %s\n",
                   status.ToString().c_str());
      pass = false;
    }
  }

  std::printf("SOAK %s seed=%llu\n", pass ? "PASS" : "FAIL",
              static_cast<unsigned long long>(seed));
  return pass ? 0 : 1;
}
