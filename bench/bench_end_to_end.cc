/// \file bench_end_to_end.cc
/// \brief Experiment E2 — the paper's Figure 1 architecture, end to end.
///
/// A skewed mobile crowd (hotspot placement, random-waypoint mobility)
/// observes `rain` (human-sensed, incentive-sensitive) and `temp`
/// (device-sensed). Three acquisitional queries run simultaneously through
/// the full CrAQR stack — request/response handler with budget tuning,
/// per-cell PMAT topologies, merge stage — and the bench reports requested
/// vs delivered spatio-temporal rates over a two-hour simulation.
///
/// Telemetry flags (all optional, accepted anywhere on the command line):
///   --metrics-json <path>  periodic + final obs registry snapshot (JSON)
///   --metrics-prom <path>  same, Prometheus text exposition format
///   --trace <path>         enable span tracing (4096-event rings) and dump
///                          a Chrome/Perfetto trace at exit

#include <cstdio>

#include "bench_json.h"
#include "common/rng.h"
#include "core/engine.h"
#include "obs/exporter.h"
#include "obs/trace.h"

int main(int argc, char** argv) {
  using namespace craqr;  // NOLINT

  const std::string metrics_json =
      benchjson::ExtractFlagValue(&argc, argv, "--metrics-json");
  const std::string metrics_prom =
      benchjson::ExtractFlagValue(&argc, argv, "--metrics-prom");
  const std::string trace_path =
      benchjson::ExtractFlagValue(&argc, argv, "--trace");

  // Periodic sampler: exercises the exporter thread during the run and
  // leaves a final snapshot behind at Stop() (CI smoke-checks both files).
  std::unique_ptr<obs::MetricsExporter> exporter;
  if (!metrics_json.empty() || !metrics_prom.empty()) {
    obs::ExporterOptions options;
    options.json_path = metrics_json;
    options.prometheus_path = metrics_prom;
    options.interval_seconds = 0.5;
    auto started = obs::MetricsExporter::Start(options);
    if (!started.ok()) {
      std::fprintf(stderr, "cannot start metrics exporter: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    exporter = started.MoveValue();
  }

  std::printf("=== E2: end-to-end CrAQR (Figure 1) ===\n\n");

  // --- the crowd ---------------------------------------------------------
  const geom::Rect region(0, 0, 6, 6);
  sensing::PopulationConfig pc;
  pc.region = region;
  pc.num_sensors = 800;
  pc.placement = sensing::PlacementKind::kIntensity;
  pp::GaussianBump downtown;
  downtown.amplitude = 20.0;
  downtown.x0 = 2.0;
  downtown.y0 = 2.0;
  downtown.sigma = 1.0;
  pc.placement_intensity =
      pp::GaussianBumpIntensity::Make(1.0, {downtown}).MoveValue();
  const auto mobility =
      sensing::RandomWaypointMobility::Make(0.05, 0.4).MoveValue();
  pc.mobility_prototype = mobility.get();
  Rng rng(7);
  auto population = sensing::SensorPopulation::Make(pc, &rng).MoveValue();
  auto world =
      sensing::CrowdWorld::Make(std::move(population), rng.Fork()).MoveValue();

  // --- attributes ---------------------------------------------------------
  sensing::RainCell storm;
  storm.x0 = 1.0;
  storm.y0 = 4.0;
  storm.radius = 1.5;
  storm.vx = 0.02;
  (void)world.RegisterAttribute("rain", true,
                                sensing::RainField::Make({storm}).MoveValue(),
                                sensing::ResponseModel::HumanBehavior());
  sensing::TemperatureField::Params tp;
  (void)world.RegisterAttribute("temp", false,
                                sensing::TemperatureField::Make(tp).MoveValue(),
                                sensing::ResponseModel::DeviceBehavior());

  // --- the engine ---------------------------------------------------------
  engine::EngineConfig config;
  config.grid_h = 9;
  config.step_dt = 1.0;
  // Sharded + pipelined so the exported telemetry covers the whole
  // runtime: per-shard queue/process counters, router timing, and worker
  // "process" spans in the trace. Delivered streams are shard-count
  // invariant, so the printed rates are unchanged.
  config.num_shards = 2;
  config.pipeline_depth = 2;
  config.fabric.flatten_batch_size = 64;
  config.budget.initial = 32.0;
  config.budget.delta = 8.0;
  config.budget.max = 256.0;
  config.enable_incentives = true;
  if (!trace_path.empty()) {
    config.trace_capacity = 4096;
  }
  auto craqr_engine =
      engine::CraqrEngine::Make(std::move(world), config).MoveValue();

  const char* queries[] = {
      "ACQUIRE temp FROM REGION(0, 0, 6, 6) RATE 0.5 PER KM2 PER MIN",
      "ACQUIRE temp FROM REGION(0, 0, 4, 4) RATE 0.25 PER KM2 PER MIN",
      "ACQUIRE rain FROM REGION(0, 2, 4, 6) RATE 0.2 PER KM2 PER MIN",
  };
  std::vector<fabric::QueryStream> streams;
  for (const char* text : queries) {
    std::printf("submit: %s\n", text);
    streams.push_back(craqr_engine->SubmitText(text).MoveValue());
  }
  std::printf("\n%-8s", "t(min)");
  for (std::size_t i = 0; i < streams.size(); ++i) {
    std::printf(" Q%zu(del/req)   ", i + 1);
  }
  std::printf("\n");

  const double horizon = 120.0;
  for (int checkpoint = 1; checkpoint <= 6; ++checkpoint) {
    (void)craqr_engine->RunFor(horizon / 6.0);
    std::printf("%-8.0f", craqr_engine->now());
    for (const auto& stream : streams) {
      const double delivered =
          static_cast<double>(stream.sink->total_received()) /
          (stream.region.Area() * craqr_engine->now());
      std::printf(" %.3f/%.3f    ", delivered, stream.rate);
    }
    std::printf("\n");
  }

  std::printf("\n--- system counters after %.0f min ---\n",
              craqr_engine->now());
  std::printf("acquisition requests sent : %llu\n",
              static_cast<unsigned long long>(
                  craqr_engine->handler().requests_sent()));
  std::printf("crowd responses           : %llu\n",
              static_cast<unsigned long long>(
                  craqr_engine->world().total_responses()));
  const runtime::ShardedStats stats = craqr_engine->Stats();
  std::printf("tuples routed / unrouted  : %llu / %llu\n",
              static_cast<unsigned long long>(stats.tuples_routed),
              static_cast<unsigned long long>(stats.tuples_unrouted));
  std::printf("materialized cells        : %zu of %u\n",
              stats.materialized_cells, craqr_engine->grid().NumCells());
  std::printf("budget increases/decreases: %llu / %llu\n",
              static_cast<unsigned long long>(
                  craqr_engine->budgets().increases()),
              static_cast<unsigned long long>(
                  craqr_engine->budgets().decreases()));
  std::printf("incentive raises          : %llu\n",
              static_cast<unsigned long long>(
                  craqr_engine->incentives().raises()));
  for (std::size_t i = 0; i < stats.per_shard.size(); ++i) {
    const auto& load = stats.per_shard[i];
    std::printf("shard %zu load             : %llu tuples, busy %.1f ms\n", i,
                static_cast<unsigned long long>(load.tuples_processed),
                static_cast<double>(load.busy_ns) / 1e6);
  }
  std::printf("\ndelivered rates converge to the requested rates as budget\n"
              "tuning adapts; the human-sensed rain query leans on the\n"
              "incentive controller (Section VI extension).\n");

  if (exporter != nullptr) {
    exporter->Stop();
    std::printf("\nmetrics snapshots written: %llu\n",
                static_cast<unsigned long long>(exporter->snapshots_written()));
  }
  if (!trace_path.empty()) {
    const Status dumped =
        obs::Tracer::Global().DumpChromeTrace(trace_path);
    if (!dumped.ok()) {
      std::fprintf(stderr, "cannot write trace: %s\n",
                   dumped.ToString().c_str());
      return 1;
    }
    std::printf("chrome trace written to %s\n", trace_path.c_str());
  }
  return 0;
}
