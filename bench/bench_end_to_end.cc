/// \file bench_end_to_end.cc
/// \brief Experiment E2 — the paper's Figure 1 architecture, end to end.
///
/// A skewed mobile crowd (hotspot placement, random-waypoint mobility)
/// observes `rain` (human-sensed, incentive-sensitive) and `temp`
/// (device-sensed). Three acquisitional queries run simultaneously through
/// the full CrAQR stack — request/response handler with budget tuning,
/// per-cell PMAT topologies, merge stage — and the bench reports requested
/// vs delivered spatio-temporal rates over a two-hour simulation.

#include <cstdio>

#include "common/rng.h"
#include "core/cost.h"
#include "core/engine.h"

int main() {
  using namespace craqr;  // NOLINT

  std::printf("=== E2: end-to-end CrAQR (Figure 1) ===\n\n");

  // --- the crowd ---------------------------------------------------------
  const geom::Rect region(0, 0, 6, 6);
  sensing::PopulationConfig pc;
  pc.region = region;
  pc.num_sensors = 800;
  pc.placement = sensing::PlacementKind::kIntensity;
  pp::GaussianBump downtown;
  downtown.amplitude = 20.0;
  downtown.x0 = 2.0;
  downtown.y0 = 2.0;
  downtown.sigma = 1.0;
  pc.placement_intensity =
      pp::GaussianBumpIntensity::Make(1.0, {downtown}).MoveValue();
  const auto mobility =
      sensing::RandomWaypointMobility::Make(0.05, 0.4).MoveValue();
  pc.mobility_prototype = mobility.get();
  Rng rng(7);
  auto population = sensing::SensorPopulation::Make(pc, &rng).MoveValue();
  auto world =
      sensing::CrowdWorld::Make(std::move(population), rng.Fork()).MoveValue();

  // --- attributes ---------------------------------------------------------
  sensing::RainCell storm;
  storm.x0 = 1.0;
  storm.y0 = 4.0;
  storm.radius = 1.5;
  storm.vx = 0.02;
  (void)world.RegisterAttribute("rain", true,
                                sensing::RainField::Make({storm}).MoveValue(),
                                sensing::ResponseModel::HumanBehavior());
  sensing::TemperatureField::Params tp;
  (void)world.RegisterAttribute("temp", false,
                                sensing::TemperatureField::Make(tp).MoveValue(),
                                sensing::ResponseModel::DeviceBehavior());

  // --- the engine ---------------------------------------------------------
  engine::EngineConfig config;
  config.grid_h = 9;
  config.step_dt = 1.0;
  config.fabric.flatten_batch_size = 64;
  config.budget.initial = 32.0;
  config.budget.delta = 8.0;
  config.budget.max = 256.0;
  config.enable_incentives = true;
  auto craqr_engine =
      engine::CraqrEngine::Make(std::move(world), config).MoveValue();

  const char* queries[] = {
      "ACQUIRE temp FROM REGION(0, 0, 6, 6) RATE 0.5 PER KM2 PER MIN",
      "ACQUIRE temp FROM REGION(0, 0, 4, 4) RATE 0.25 PER KM2 PER MIN",
      "ACQUIRE rain FROM REGION(0, 2, 4, 6) RATE 0.2 PER KM2 PER MIN",
  };
  std::vector<fabric::QueryStream> streams;
  for (const char* text : queries) {
    std::printf("submit: %s\n", text);
    streams.push_back(craqr_engine->SubmitText(text).MoveValue());
  }
  std::printf("\n%-8s", "t(min)");
  for (std::size_t i = 0; i < streams.size(); ++i) {
    std::printf(" Q%zu(del/req)   ", i + 1);
  }
  std::printf("\n");

  const double horizon = 120.0;
  for (int checkpoint = 1; checkpoint <= 6; ++checkpoint) {
    (void)craqr_engine->RunFor(horizon / 6.0);
    std::printf("%-8.0f", craqr_engine->now());
    for (const auto& stream : streams) {
      const double delivered =
          static_cast<double>(stream.sink->total_received()) /
          (stream.region.Area() * craqr_engine->now());
      std::printf(" %.3f/%.3f    ", delivered, stream.rate);
    }
    std::printf("\n");
  }

  std::printf("\n--- system counters after %.0f min ---\n",
              craqr_engine->now());
  std::printf("acquisition requests sent : %llu\n",
              static_cast<unsigned long long>(
                  craqr_engine->handler().requests_sent()));
  std::printf("crowd responses           : %llu\n",
              static_cast<unsigned long long>(
                  craqr_engine->world().total_responses()));
  std::printf("tuples routed / unrouted  : %llu / %llu\n",
              static_cast<unsigned long long>(
                  craqr_engine->fabricator().tuples_routed()),
              static_cast<unsigned long long>(
                  craqr_engine->fabricator().tuples_unrouted()));
  std::printf("materialized cells        : %zu of %u\n",
              craqr_engine->fabricator().NumMaterializedCells(),
              craqr_engine->grid().NumCells());
  std::printf("budget increases/decreases: %llu / %llu\n",
              static_cast<unsigned long long>(
                  craqr_engine->budgets().increases()),
              static_cast<unsigned long long>(
                  craqr_engine->budgets().decreases()));
  std::printf("incentive raises          : %llu\n",
              static_cast<unsigned long long>(
                  craqr_engine->incentives().raises()));
  const auto cost = engine::EstimateCost(craqr_engine->fabricator());
  std::printf("topology cost             : %s\n", cost.ToString().c_str());
  std::printf("\ndelivered rates converge to the requested rates as budget\n"
              "tuning adapts; the human-sensed rain query leans on the\n"
              "incentive controller (Section VI extension).\n");
  return 0;
}
