/// \file bench_estimation.cc
/// \brief Experiment E5 — conditional-rate estimation quality and cost.
///
/// Paper Section III-A: theta of Eq. (1) is estimated "using techniques
/// like maximum-likelihood estimation [12]" and, over sliding windows,
/// "online parameter estimation algorithms like stochastic gradient
/// descent [13]".  We sweep the sample size and report estimation error
/// (RMS relative intensity error over probe points), log-likelihood,
/// Newton iterations and wall time for the batch MLE, then compare the
/// online SGD estimator's tracking error and throughput.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "pointprocess/estimate.h"
#include "pointprocess/simulate.h"

namespace {

using namespace craqr;  // NOLINT

double SurfaceRmsError(const pp::LinearIntensity::Theta& truth,
                       const pp::LinearIntensity::Theta& fitted,
                       const pp::SpaceTimeWindow& window) {
  double sum = 0.0;
  int count = 0;
  for (double ft = 0.1; ft < 1.0; ft += 0.2) {
    for (double fx = 0.1; fx < 1.0; fx += 0.2) {
      for (double fy = 0.1; fy < 1.0; fy += 0.2) {
        const geom::SpaceTimePoint p{
            window.t_begin + ft * window.Duration(),
            window.space.x_min() + fx * window.space.Width(),
            window.space.y_min() + fy * window.space.Height()};
        const double t = truth[0] + truth[1] * p.t + truth[2] * p.x +
                         truth[3] * p.y;
        const double f = fitted[0] + fitted[1] * p.t + fitted[2] * p.x +
                         fitted[3] * p.y;
        const double rel = (f - t) / t;
        sum += rel * rel;
        ++count;
      }
    }
  }
  return std::sqrt(sum / count);
}

}  // namespace

int main() {
  std::printf("=== E5: theta estimation (batch MLE vs online SGD) ===\n\n");
  const geom::Rect space(0, 0, 5, 5);
  const pp::LinearIntensity::Theta truth{1.0, 0.01, 0.5, 0.3};
  const auto model = pp::LinearIntensity::Make(truth).MoveValue();

  std::printf("ground truth theta = [%.2f, %.3f, %.2f, %.2f]\n\n", truth[0],
              truth[1], truth[2], truth[3]);
  std::printf("--- batch MLE: error vs sample size ---\n");
  std::printf("%-10s %-10s %-14s %-10s %-10s %-12s\n", "target n",
              "actual n", "rms rel err", "iters", "conv", "time (us)");

  for (const double duration : {1.0, 3.0, 10.0, 30.0, 100.0, 300.0}) {
    const pp::SpaceTimeWindow window{0.0, duration, space};
    Rng rng(500 + static_cast<std::uint64_t>(duration));
    const auto points =
        pp::SimulateInhomogeneous(&rng, *model, window).MoveValue();
    if (points.empty()) {
      continue;
    }
    const auto start = std::chrono::steady_clock::now();
    const auto fit = pp::FitLinearMle(points, window).MoveValue();
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    std::printf("%-10.0f %-10zu %-14.4f %-10d %-10s %-12lld\n",
                (*model).Integral(window), points.size(),
                SurfaceRmsError(truth, fit.theta, window), fit.iterations,
                fit.converged ? "yes" : "no",
                static_cast<long long>(elapsed));
  }

  std::printf("\n--- online SGD: tracking error vs stream length ---\n");
  std::printf("%-10s %-14s %-14s %-12s\n", "n", "rms rel err",
              "tuples/sec", "time (us)");
  for (const double duration : {10.0, 30.0, 100.0, 300.0, 1000.0}) {
    const pp::SpaceTimeWindow window{0.0, duration, space};
    Rng rng(900 + static_cast<std::uint64_t>(duration));
    const auto points =
        pp::SimulateInhomogeneous(&rng, *model, window).MoveValue();
    auto estimator = pp::SgdEstimator::Make(window).MoveValue();
    const auto start = std::chrono::steady_clock::now();
    for (const auto& p : points) {
      estimator.Update(p);
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    const double seconds = static_cast<double>(elapsed) / 1e6;
    std::printf("%-10zu %-14.4f %-14.0f %-12lld\n", points.size(),
                SurfaceRmsError(truth, estimator.theta(), window),
                seconds > 0 ? static_cast<double>(points.size()) / seconds
                            : 0.0,
                static_cast<long long>(elapsed));
  }
  std::printf("\nMLE error shrinks roughly as 1/sqrt(n) and converges in a\n"
              "handful of Newton steps; SGD is one pass, rate-limited only\n"
              "by memory bandwidth, and converges to the same surface —\n"
              "which is what makes the sliding-window Flatten mode viable.\n");
  return 0;
}
