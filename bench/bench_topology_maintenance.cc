/// \file bench_topology_maintenance.cc
/// \brief Experiment E10 — query insertion/deletion cost in the
/// fabricator's hashmap of cell topologies (paper Section V).
///
/// Measures (a) insert+delete round-trip latency as a function of the
/// number of resident queries, (b) insertion cost vs grid granularity h,
/// and (c) the map-phase routing cost of ProcessTuple.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "fabric/fabricator.h"

namespace {

using namespace craqr;  // NOLINT

geom::Grid MakeGrid(std::uint32_t h) {
  return geom::Grid::Make(geom::Rect(0, 0, 12, 12), h).MoveValue();
}

query::AcquisitionQuery RandomishQuery(int i) {
  query::AcquisitionQuery q;
  const double x = static_cast<double>(i % 8);
  const double y = static_cast<double>((i / 8) % 8);
  q.attribute = "temp";
  q.region = geom::Rect(x, y, x + 4.0, y + 4.0);
  q.rate = 0.5 + 0.25 * static_cast<double>(i % 7);
  return q;
}

void BM_InsertDeleteRoundTrip(benchmark::State& state) {
  const auto resident = static_cast<int>(state.range(0));
  auto fabricator = fabric::StreamFabricator::Make(MakeGrid(36)).MoveValue();
  for (int i = 0; i < resident; ++i) {
    const auto q = RandomishQuery(i);
    benchmark::DoNotOptimize(fabricator->InsertQuery(0, q.region, q.rate));
  }
  int i = resident;
  for (auto _ : state) {
    const auto q = RandomishQuery(i++);
    auto stream = fabricator->InsertQuery(0, q.region, q.rate).MoveValue();
    benchmark::DoNotOptimize(fabricator->RemoveQuery(stream.id));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InsertDeleteRoundTrip)->Arg(0)->Arg(16)->Arg(128)->Arg(512);

void BM_InsertVsGridGranularity(benchmark::State& state) {
  const auto h = static_cast<std::uint32_t>(state.range(0));
  auto fabricator = fabric::StreamFabricator::Make(MakeGrid(h)).MoveValue();
  int i = 0;
  for (auto _ : state) {
    const auto q = RandomishQuery(i++);
    auto stream = fabricator->InsertQuery(0, q.region, q.rate).MoveValue();
    benchmark::DoNotOptimize(stream);
    state.PauseTiming();
    (void)fabricator->RemoveQuery(stream.id);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InsertVsGridGranularity)->Arg(9)->Arg(36)->Arg(144)->Arg(576);

void BM_MapPhaseRouting(benchmark::State& state) {
  const auto resident = static_cast<int>(state.range(0));
  auto fabricator = fabric::StreamFabricator::Make(MakeGrid(144)).MoveValue();
  for (int i = 0; i < resident; ++i) {
    const auto q = RandomishQuery(i);
    benchmark::DoNotOptimize(fabricator->InsertQuery(0, q.region, q.rate));
  }
  Rng rng(5);
  ops::Tuple tuple;
  for (auto _ : state) {
    tuple.point = geom::SpaceTimePoint{0.0, rng.Uniform(0.0, 12.0),
                                       rng.Uniform(0.0, 12.0)};
    benchmark::DoNotOptimize(fabricator->ProcessTuple(tuple));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MapPhaseRouting)->Arg(1)->Arg(32)->Arg(256);

}  // namespace
