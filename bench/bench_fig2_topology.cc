/// \file bench_fig2_topology.cc
/// \brief Experiment E1 — reproduces the paper's Figure 2 worked example.
///
/// A 3x3 grid with three simultaneous queries: Q1<rain> on R1, Q2<temp> on
/// R2, Q3<temp> on R3 with requested rates lambda1 > lambda2 > lambda3.
/// R1 and R2 perfectly overlap grid cells; R3 overlaps partially, so only
/// Q3 needs P operators (paper Section V). The bench prints the resulting
/// execution topology (the executable Figure 2(b)/(c)) and then drives a
/// synthetic crowdsensed supply through it, reporting requested vs
/// delivered rates per query.

#include <cstdio>

#include "common/rng.h"
#include "fabric/fabricator.h"
#include "pointprocess/simulate.h"

namespace {

using craqr::Rng;
using craqr::fabric::FabricConfig;
using craqr::fabric::StreamFabricator;

constexpr craqr::ops::AttributeId kRain = 0;
constexpr craqr::ops::AttributeId kTemp = 1;

}  // namespace

int main() {
  std::printf("=== E1: Figure 2 query-processing example ===\n\n");
  auto grid =
      craqr::geom::Grid::Make(craqr::geom::Rect(0, 0, 3, 3), 9).MoveValue();
  FabricConfig config;
  config.flatten_batch_size = 64;
  config.seed = 1337;
  auto fabricator = StreamFabricator::Make(grid, config).MoveValue();

  // The paper's example: lambda1 > lambda2 > lambda3.
  const craqr::geom::Rect r1(1, 1, 3, 3);      // 4 full cells   (rain)
  const craqr::geom::Rect r2(0, 0, 2, 1);      // 2 full cells   (temp)
  const craqr::geom::Rect r3(0, 1, 1.5, 2.5);  // partial cells  (temp)
  const auto q1 = fabricator->InsertQuery(kRain, r1, 12.0).MoveValue();
  const auto q2 = fabricator->InsertQuery(kTemp, r2, 8.0).MoveValue();
  const auto q3 = fabricator->InsertQuery(kTemp, r3, 4.0).MoveValue();

  std::printf("inserted queries:\n");
  std::printf("  Q1<rain> on %s rate 12 /km2/min\n", r1.ToString().c_str());
  std::printf("  Q2<temp> on %s rate  8 /km2/min\n", r2.ToString().c_str());
  std::printf("  Q3<temp> on %s rate  4 /km2/min\n\n", r3.ToString().c_str());

  std::printf("--- execution topology (map -> process -> merge) ---\n%s\n",
              fabricator->DescribeTopology().c_str());

  std::size_t flattens = 0;
  std::size_t thins = 0;
  std::size_t partitions = 0;
  std::size_t unions = 0;
  fabricator->VisitOperators([&](const craqr::ops::Operator& op) {
    using craqr::ops::OperatorKind;
    switch (op.kind()) {
      case OperatorKind::kFlatten: ++flattens; break;
      case OperatorKind::kThin: ++thins; break;
      case OperatorKind::kPartition: ++partitions; break;
      case OperatorKind::kUnion: ++unions; break;
      default: break;
    }
  });
  std::printf("operator census: F=%zu T=%zu P=%zu U=%zu (cells=%zu)\n",
              flattens, thins, partitions, unions,
              fabricator->NumMaterializedCells());
  std::printf("paper shape: P only for Q3 (partial overlap) -> P=%zu; one F "
              "per (cell,attr) chain -> F=%zu\n\n",
              partitions, flattens);

  // Drive a skewed synthetic supply through the topology for 60 minutes.
  const craqr::pp::SpaceTimeWindow window{0.0, 60.0,
                                          craqr::geom::Rect(0, 0, 3, 3)};
  const auto supply_model =
      craqr::pp::LinearIntensity::Make({10.0, 0.0, 8.0, 6.0}).MoveValue();
  Rng rng(2024);
  const auto rain_supply =
      craqr::pp::SimulateInhomogeneous(&rng, *supply_model, window)
          .MoveValue();
  const auto temp_supply =
      craqr::pp::SimulateInhomogeneous(&rng, *supply_model, window)
          .MoveValue();
  std::vector<craqr::ops::Tuple> batch;
  for (const auto& p : rain_supply) {
    craqr::ops::Tuple t;
    t.point = p;
    t.attribute = kRain;
    batch.push_back(t);
  }
  for (const auto& p : temp_supply) {
    craqr::ops::Tuple t;
    t.point = p;
    t.attribute = kTemp;
    batch.push_back(t);
  }
  (void)fabricator->ProcessBatch(batch);

  std::printf("--- delivered rates after 60 simulated minutes ---\n");
  std::printf("%-6s %-12s %-12s %-12s %-10s\n", "query", "requested",
              "delivered", "area(km2)", "tuples");
  const struct {
    const char* name;
    const craqr::fabric::QueryStream* stream;
  } rows[] = {{"Q1", &q1}, {"Q2", &q2}, {"Q3", &q3}};
  for (const auto& row : rows) {
    const double area = row.stream->region.Area();
    const double delivered =
        static_cast<double>(row.stream->sink->total_received()) /
        (area * window.Duration());
    std::printf("%-6s %-12.3f %-12.3f %-12.3f %-10llu\n", row.name,
                row.stream->rate, delivered, area,
                static_cast<unsigned long long>(
                    row.stream->sink->total_received()));
  }
  std::printf("\nsupply was strongly inhomogeneous (theta=[10,0,8,6]); the\n"
              "F operators flattened it and the T chains delivered the\n"
              "sorted rates 12 > 8 > 4, matching the paper's construction.\n");
  return 0;
}
