/// \file bench_fault_soak.cc
/// \brief Crash-recovery soak: hammer a checkpointed sharded runtime with
/// randomized shard crashes, checkpoint cadence and query churn for many
/// epochs, and verify after every round-trip that its delivered streams
/// stay byte-identical (FNV digest over content AND order) to a twin
/// runtime that never crashed.
///
/// The schedule is fully determined by --seed: the CI job logs the seed it
/// drew, so any failure replays exactly with
/// `bench_fault_soak --seed <logged>`. Crashes are injected through
/// ShardedFabricator::InjectShardCrash (not the global fault registry —
/// the registry is process-wide and would fail the twin, which has no
/// checkpoint to recover from).
///
/// Usage: bench_fault_soak [--seed N] [rounds] [shards]
/// Prints one `SOAK PASS`/`SOAK FAIL` line (the CI soak step greps it)
/// and exits non-zero on any divergence.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "runtime/sharded_fabricator.h"

namespace {

using namespace craqr;  // NOLINT

constexpr ops::AttributeId kRain = 0;
constexpr ops::AttributeId kTemp = 1;

std::vector<ops::Tuple> MakeBatch(Rng* rng, double* t, std::size_t n,
                                  std::uint64_t* next_id) {
  std::vector<ops::Tuple> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ops::Tuple tuple;
    tuple.id = (*next_id)++;
    tuple.attribute = (i % 3 == 0) ? kTemp : kRain;
    *t += 0.002;
    tuple.point = geom::SpaceTimePoint{*t, rng->Uniform(0.0, 4.0),
                                       rng->Uniform(0.0, 4.0)};
    batch.push_back(tuple);
  }
  return batch;
}

std::uint64_t StreamDigest(runtime::ShardedFabricator* fab,
                           query::QueryId id) {
  std::uint64_t h = 14695981039346656037ULL;
  auto fold = [&h](const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  };
  const auto stream = fab->GetStream(id);
  if (!stream.ok()) {
    return 0;
  }
  for (const auto& tuple : stream->sink->tuples()) {
    fold(&tuple.id, sizeof(tuple.id));
    fold(&tuple.attribute, sizeof(tuple.attribute));
    fold(&tuple.point.t, sizeof(tuple.point.t));
    fold(&tuple.point.x, sizeof(tuple.point.x));
    fold(&tuple.point.y, sizeof(tuple.point.y));
  }
  return h;
}

struct SoakRuntime {
  std::unique_ptr<runtime::ShardedFabricator> fab;
  std::vector<query::QueryId> stable_ids;
  query::QueryId churn_id = 0;
};

bool BuildRuntime(std::size_t shards, bool checkpointed, SoakRuntime* out) {
  runtime::ShardedConfig config;
  config.num_shards = shards;
  config.fabric.flatten_batch_size = 32;
  config.fabric.seed = 0xC0FFEE;
  config.enable_stealing = shards > 1;
  config.checkpoint.enabled = checkpointed;
  auto made = runtime::ShardedFabricator::Make(
      geom::Grid::Make(geom::Rect(0, 0, 4, 4), 16).MoveValue(), config);
  if (!made.ok()) {
    std::fprintf(stderr, "Make failed: %s\n",
                 made.status().ToString().c_str());
    return false;
  }
  out->fab = made.MoveValue();
  const struct {
    ops::AttributeId attribute;
    geom::Rect region;
    double rate;
  } specs[] = {
      {kRain, geom::Rect(0, 0, 4, 4), 6.0},
      {kRain, geom::Rect(1, 1, 3, 3), 3.0},
      {kTemp, geom::Rect(0, 0, 2, 4), 4.0},
  };
  for (const auto& spec : specs) {
    auto q = out->fab->InsertQuery(spec.attribute, spec.region, spec.rate);
    if (!q.ok()) {
      std::fprintf(stderr, "InsertQuery failed: %s\n",
                   q.status().ToString().c_str());
      return false;
    }
    out->stable_ids.push_back(q->id);
  }
  return true;
}

/// Applies one round's identical topology churn to a runtime.
bool Churn(SoakRuntime* rt, std::size_t round) {
  if (round % 11 == 5) {
    if (rt->churn_id != 0 && !rt->fab->RemoveQuery(rt->churn_id).ok()) {
      return false;
    }
    auto q = rt->fab->InsertQuery(kRain, geom::Rect(0, 0, 2, 2), 5.0);
    if (!q.ok()) {
      return false;
    }
    rt->churn_id = q->id;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 0xF417;
  std::size_t rounds = 200;
  std::size_t shards = 3;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  if (!positional.empty()) {
    rounds = std::strtoull(positional[0].c_str(), nullptr, 0);
  }
  if (positional.size() > 1) {
    shards = std::strtoull(positional[1].c_str(), nullptr, 0);
  }
  std::printf("fault-soak seed=%llu rounds=%zu shards=%zu\n",
              static_cast<unsigned long long>(seed), rounds, shards);

  SoakRuntime crashy, twin;
  if (!BuildRuntime(shards, /*checkpointed=*/true, &crashy) ||
      !BuildRuntime(shards, /*checkpointed=*/false, &twin)) {
    return 1;
  }

  // Two identical tuple tapes (one Rng each so crash handling can never
  // skew the other's sequence) and one schedule Rng for the fault plan.
  Rng tape_a(424242), tape_b(424242), schedule(seed);
  double t_a = 0.0, t_b = 0.0;
  std::uint64_t id_a = 1, id_b = 1;
  std::uint64_t crashes = 0, checkpoints = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    if (!Churn(&crashy, round) || !Churn(&twin, round)) {
      std::fprintf(stderr, "churn failed at round %zu\n", round);
      return 1;
    }
    auto a = MakeBatch(&tape_a, &t_a, 96, &id_a);
    auto b = MakeBatch(&tape_b, &t_b, 96, &id_b);
    if (!crashy.fab->ProcessBatch(a).ok() ||
        !twin.fab->ProcessBatch(b).ok()) {
      std::fprintf(stderr, "ProcessBatch failed at round %zu\n", round);
      return 1;
    }
    if (schedule.Uniform(0.0, 1.0) < 0.15) {
      const auto victim =
          static_cast<std::size_t>(schedule.Uniform(0.0, 1.0) * shards) %
          shards;
      const Status crash = crashy.fab->InjectShardCrash(victim);
      if (!crash.ok()) {
        std::fprintf(stderr, "crash of shard %zu at round %zu failed: %s\n",
                     victim, round, crash.ToString().c_str());
        return 1;
      }
      ++crashes;
    }
    if (round % 17 == 16) {
      if (!crashy.fab->Checkpoint().ok()) {
        std::fprintf(stderr, "checkpoint failed at round %zu\n", round);
        return 1;
      }
      ++checkpoints;
    }
  }
  if (!crashy.fab->Drain().ok() || !twin.fab->Drain().ok()) {
    std::fprintf(stderr, "final drain failed\n");
    return 1;
  }
  if (!crashy.fab->ValidateInvariants().ok()) {
    std::fprintf(stderr, "invariants violated after soak\n");
    return 1;
  }

  bool pass = true;
  std::vector<query::QueryId> ids_a = crashy.stable_ids;
  std::vector<query::QueryId> ids_b = twin.stable_ids;
  if (crashy.churn_id != 0) {
    ids_a.push_back(crashy.churn_id);
    ids_b.push_back(twin.churn_id);
  }
  for (std::size_t i = 0; i < ids_a.size(); ++i) {
    const std::uint64_t da = StreamDigest(crashy.fab.get(), ids_a[i]);
    const std::uint64_t db = StreamDigest(twin.fab.get(), ids_b[i]);
    std::printf("query[%zu] digest crashed=%016llx twin=%016llx %s\n", i,
                static_cast<unsigned long long>(da),
                static_cast<unsigned long long>(db),
                da == db ? "ok" : "MISMATCH");
    pass = pass && da == db && da != 0;
  }
  std::printf("crashes=%llu checkpoints=%llu\n",
              static_cast<unsigned long long>(crashes),
              static_cast<unsigned long long>(checkpoints));
  if (crashes == 0) {
    std::fprintf(stderr, "schedule injected no crashes; soak is vacuous\n");
    pass = false;
  }
  std::printf("SOAK %s seed=%llu\n", pass ? "PASS" : "FAIL",
              static_cast<unsigned long long>(seed));
  return pass ? 0 : 1;
}
