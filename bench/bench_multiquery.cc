/// \file bench_multiquery.cc
/// \brief Experiment E7 — shared topologies vs the naive per-query
/// strategy.
///
/// Paper Section III: "The naive strategy of processing each query from
/// scratch (i.e., individually), is not cost effective ... the data
/// acquired for a particular attribute will not be re-used across
/// queries. Instead, multiple query optimization principles need to be
/// employed."  We sweep the number of simultaneous overlapping queries and
/// compare acquisition requests, operator counts, operator evaluations and
/// modelled topology cost between CrAQR (shared) and the naive baseline.

#include <cstdio>

#include "common/rng.h"
#include "core/cost.h"
#include "core/engine.h"
#include "core/naive.h"

namespace {

using namespace craqr;  // NOLINT

sensing::CrowdWorld MakeWorld(std::uint64_t seed) {
  sensing::PopulationConfig pc;
  pc.region = geom::Rect(0, 0, 6, 6);
  pc.num_sensors = 500;
  Rng rng(seed);
  auto population = sensing::SensorPopulation::Make(pc, &rng).MoveValue();
  auto world =
      sensing::CrowdWorld::Make(std::move(population), rng.Fork()).MoveValue();
  sensing::TemperatureField::Params tp;
  (void)world.RegisterAttribute("temp", false,
                                sensing::TemperatureField::Make(tp).MoveValue(),
                                sensing::ResponseModel::DeviceBehavior());
  return world;
}

engine::EngineConfig Config() {
  engine::EngineConfig config;
  config.grid_h = 9;
  config.fabric.flatten_batch_size = 48;
  config.budget.initial = 16.0;
  return config;
}

query::AcquisitionQuery QueryNumber(int i) {
  // Overlapping 4x4 regions with varied rates: realistic shared demand.
  query::AcquisitionQuery q;
  q.attribute = "temp";
  const double offset = static_cast<double>(i % 3);
  q.region = geom::Rect(offset, offset, offset + 4.0, offset + 4.0);
  q.rate = 0.2 + 0.1 * static_cast<double>(i % 5);
  return q;
}

}  // namespace

int main() {
  std::printf("=== E7: multi-query sharing vs naive per-query processing "
              "===\n\n");
  std::printf("%-8s | %-12s %-12s %-10s | %-12s %-12s %-10s | %-8s\n",
              "queries", "shared req", "shared eval", "shared ops",
              "naive req", "naive eval", "naive ops", "req ratio");

  const double horizon = 15.0;
  for (const int n : {1, 2, 4, 8, 16, 32, 64}) {
    auto shared = engine::CraqrEngine::Make(MakeWorld(21), Config()).MoveValue();
    for (int i = 0; i < n; ++i) {
      (void)shared->Submit(QueryNumber(i)).MoveValue();
    }
    (void)shared->RunFor(horizon);
    const auto shared_requests = shared->world().total_requests_sent();
    const auto shared_evals =
        shared->fabricator().TotalOperatorEvaluations();
    const auto shared_ops = shared->fabricator().TotalOperators();

    auto naive = engine::NaiveEngine::Make(MakeWorld(21), Config()).MoveValue();
    for (int i = 0; i < n; ++i) {
      (void)naive->Submit(QueryNumber(i)).MoveValue();
    }
    (void)naive->RunFor(horizon);
    const auto naive_requests = naive->world().total_requests_sent();
    const auto naive_evals = naive->TotalOperatorEvaluations();
    const auto naive_ops = naive->TotalOperators();

    std::printf("%-8d | %-12llu %-12llu %-10zu | %-12llu %-12llu %-10zu | "
                "%-8.2f\n",
                n, static_cast<unsigned long long>(shared_requests),
                static_cast<unsigned long long>(shared_evals), shared_ops,
                static_cast<unsigned long long>(naive_requests),
                static_cast<unsigned long long>(naive_evals), naive_ops,
                static_cast<double>(naive_requests) /
                    static_cast<double>(std::max<std::uint64_t>(
                        shared_requests, 1)));
  }
  std::printf("\nshared acquisition requests saturate once every touched\n"
              "(attribute, cell) is subscribed — adding overlapping queries\n"
              "is nearly free — while the naive baseline's request volume\n"
              "grows linearly in the number of queries. The crossover the\n"
              "paper motivates appears from the second query onward.\n");
  return 0;
}
