/// \file bench_multiquery.cc
/// \brief City-scale multi-query sharing sweep — the marginal-cost curve.
///
/// Paper Section III: "The naive strategy of processing each query from
/// scratch (i.e., individually), is not cost effective ... multiple query
/// optimization principles need to be employed." This bench measures that
/// economy end to end: a workload-generator schedule (bursty arrivals,
/// skewed hot-spot templates, heavy churn — bench/workload_gen.h) drives
/// the sharded runtime at queries {16, 64, 256} x region-overlap fraction
/// {0.1, 0.5, 0.9} x sharing on/off x shards {1, 2, 4}. The headline is
/// the sharing-on vs sharing-off throughput ratio as overlap and query
/// count grow — the per-workload marginal cost the fabric's ref-counted
/// subplan dedup buys. Delivered-stream digests are asserted byte-exact
/// sharing on vs off in every configuration (sharing must never change a
/// delivered byte, only the work to produce it).
///
/// `--churn` instead runs the route-LUT maintenance regression: one
/// fabricator under a cancel-heavy schedule, reporting tuples/sec plus
/// the incremental-patch vs full-rebuild counters
/// (fabric::StreamFabricator::route_patches/route_rebuilds) — the guard
/// against regressing InsertQuery/CancelQuery back to a full rows x cols
/// LUT sweep per churn event.
///
/// Usage: bench_multiquery [--json <path>] [--metrics-json <path>]
///                         [batches] [batch_size]
///        bench_multiquery --churn [--json <path>] [batches] [batch_size]
///
/// `--json <path>` writes every configuration as
/// `{name, iters, ns_per_op, tuples_per_sec}` rows (ratio rows report the
/// on/off speedup in the rate column) — the BENCH_*.json trajectory format.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "workload_gen.h"
#include "fabric/fabricator.h"
#include "geometry/grid.h"
#include "obs/exporter.h"
#include "runtime/sharded_fabricator.h"

namespace {

using namespace craqr;  // NOLINT

std::vector<benchjson::Entry> g_json_entries;

void AddJsonEntry(const std::string& name, std::uint64_t iters, double rate) {
  benchjson::Entry e;
  e.name = name;
  e.iters = iters;
  e.ns_per_op = rate > 0.0 ? 1e9 / rate : 0.0;
  e.tuples_per_sec = rate;
  g_json_entries.push_back(std::move(e));
}

constexpr double kWorldSize = 8.0;
/// 32x32 cells of edge 0.25 against thin corridor queries (see
/// bench::WorkloadConfig): every query needs carve-outs (P stages) in
/// dozens of cells and each carve-out keeps only a sliver of its cell's
/// stream, so rescanning per query — the work sharing dedups — carries
/// the multi-query cost.
constexpr std::uint32_t kGridH = 1024;
/// Per-configuration repetitions; throughput is the best rep (workload
/// replay is deterministic, so reps differ only by scheduler noise) and
/// digests are asserted identical across reps.
constexpr int kReps = 3;

geom::Grid BenchGrid() {
  return geom::Grid::Make(geom::Rect(0, 0, kWorldSize, kWorldSize), kGridH)
      .MoveValue();
}

fabric::FabricConfig BenchFabricConfig(bool sharing) {
  fabric::FabricConfig config;
  config.flatten_batch_size = 64;
  config.seed = 0xBE7CB;
  config.enable_sharing = sharing;
  return config;
}

bench::WorkloadConfig SweepWorkload(std::size_t queries, double overlap,
                                    std::size_t batches,
                                    std::size_t batch_size) {
  bench::WorkloadConfig wc;
  wc.region = geom::Rect(0, 0, kWorldSize, kWorldSize);
  wc.num_queries = queries;
  wc.overlap_fraction = overlap;
  wc.num_batches = batches;
  wc.batch_size = batch_size;
  wc.churn_fraction = 0.2;
  return wc;
}

/// Order-sensitive FNV-1a fold over one delivered stream's identity
/// columns (same fold as the test suite's digest pins).
std::uint64_t StreamDigest(std::uint64_t h,
                           const std::vector<ops::Tuple>& tuples) {
  auto fold = [&h](const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  };
  for (const auto& tuple : tuples) {
    fold(&tuple.id, sizeof(tuple.id));
    fold(&tuple.attribute, sizeof(tuple.attribute));
    fold(&tuple.point.t, sizeof(tuple.point.t));
    fold(&tuple.point.x, sizeof(tuple.point.x));
    fold(&tuple.point.y, sizeof(tuple.point.y));
  }
  return h;
}

struct SweepResult {
  double tuples_per_sec = 0.0;
  std::uint64_t routed = 0;
  /// Fold of every surviving query's delivered stream, in slot order.
  std::uint64_t digest = 0;
  std::uint64_t shared_prefix_hits = 0;
  std::size_t stages_shared = 0;
};

/// Replays the generator's schedule against a sharded runtime: before
/// feeding batch b, every arrival/cancel stamped `at_batch <= b` fires.
/// Only the batch pumping is timed — insertion cost is the --churn
/// bench's subject, throughput under live queries is this one's.
SweepResult RunSweepConfig(const bench::WorkloadGenerator& gen,
                           const std::vector<std::vector<ops::Tuple>>& batches,
                           bool sharing, std::size_t num_shards) {
  runtime::ShardedConfig config;
  config.num_shards = num_shards;
  config.fabric = BenchFabricConfig(sharing);
  auto made = runtime::ShardedFabricator::Make(BenchGrid(), config);
  if (!made.ok()) {
    std::fprintf(stderr, "ShardedFabricator::Make failed: %s\n",
                 made.status().ToString().c_str());
    std::exit(1);
  }
  auto fab = made.MoveValue();

  std::map<std::size_t, fabric::QueryStream> streams;  // slot -> handle
  const auto& schedule = gen.schedule();
  std::size_t cursor = 0;
  const auto apply_until = [&](std::size_t batch) {
    for (; cursor < schedule.size() && schedule[cursor].at_batch <= batch;
         ++cursor) {
      const bench::QueryEvent& ev = schedule[cursor];
      if (ev.kind == bench::QueryEvent::Kind::kInsert) {
        auto stream = fab->InsertQuery(ev.spec.attribute, ev.spec.region,
                                       ev.spec.rate);
        if (!stream.ok()) {
          std::fprintf(stderr, "InsertQuery failed: %s\n",
                       stream.status().ToString().c_str());
          std::exit(1);
        }
        streams.emplace(ev.slot, stream.MoveValue());
      } else {
        const auto it = streams.find(ev.slot);
        if (it == streams.end() ||
            !fab->RemoveQuery(it->second.id).ok()) {
          std::fprintf(stderr, "RemoveQuery failed (slot %zu)\n", ev.slot);
          std::exit(1);
        }
        streams.erase(it);
      }
    }
  };

  // Pipelined pump: batches are enqueued without a per-batch barrier so
  // router-side handoff overlaps shard-side processing (the runtime's
  // steady operating mode). Query events still land between the right
  // batches — InsertQuery/RemoveQuery synchronize with in-flight work
  // internally — and the final Drain settles every delivery before the
  // digest fold.
  double pump_seconds = 0.0;
  std::size_t pumped = 0;
  for (std::size_t b = 0; b < batches.size(); ++b) {
    apply_until(b);
    const auto start = std::chrono::steady_clock::now();
    if (!fab->EnqueueBatch(batches[b]).ok()) {
      std::fprintf(stderr, "EnqueueBatch failed\n");
      std::exit(1);
    }
    const auto end = std::chrono::steady_clock::now();
    pump_seconds +=
        std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
            .count();
    pumped += batches[b].size();
  }
  {
    const auto start = std::chrono::steady_clock::now();
    if (!fab->Drain().ok()) {
      std::fprintf(stderr, "Drain failed\n");
      std::exit(1);
    }
    const auto end = std::chrono::steady_clock::now();
    pump_seconds +=
        std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
            .count();
  }
  apply_until(batches.size());  // trailing cancels

  SweepResult result;
  result.tuples_per_sec =
      pump_seconds > 0.0 ? static_cast<double>(pumped) / pump_seconds : 0.0;
  const auto stats = fab->TrySnapshot();
  if (!stats.ok()) {
    std::fprintf(stderr, "TrySnapshot failed: %s\n",
                 stats.status().ToString().c_str());
    std::exit(1);
  }
  result.routed = stats->tuples_routed;
  result.shared_prefix_hits = stats->shared_prefix_hits;
  result.stages_shared = stats->stages_shared;
  std::uint64_t digest = 14695981039346656037ULL;
  for (const auto& [slot, stream] : streams) {  // std::map: slot order
    digest = StreamDigest(digest ^ slot, stream.sink->tuples());
  }
  result.digest = digest;
  return result;
}

bool RunSharingSweep(std::size_t batches, std::size_t batch_size) {
  std::printf("multi-query sharing sweep (workload generator)\n");
  std::printf("  %zu batches x %zu tuples; hardware threads: %u\n\n", batches,
              batch_size, std::thread::hardware_concurrency());
  std::printf("%-44s %14s %12s %10s %8s\n", "configuration", "tuples/sec",
              "routed", "hits", "shared");

  bool ok = true;
  for (const std::size_t queries : {16u, 64u, 256u}) {
    for (const double overlap : {0.1, 0.5, 0.9}) {
      const bench::WorkloadGenerator gen(
          SweepWorkload(queries, overlap, batches, batch_size));
      const auto tuple_batches = gen.MakeBatches();
      for (const std::size_t shards : {1u, 2u, 4u}) {
        SweepResult on;
        SweepResult off;
        for (const bool sharing : {false, true}) {
          SweepResult r = RunSweepConfig(gen, tuple_batches, sharing, shards);
          for (int rep = 1; rep < kReps; ++rep) {
            const SweepResult again =
                RunSweepConfig(gen, tuple_batches, sharing, shards);
            if (again.digest != r.digest || again.routed != r.routed) {
              std::fprintf(stderr,
                           "FAIL: nondeterministic replay at q=%zu ov=%.1f "
                           "share=%d shards=%zu\n",
                           queries, overlap, sharing ? 1 : 0, shards);
              ok = false;
            }
            r.tuples_per_sec = std::max(r.tuples_per_sec, again.tuples_per_sec);
          }
          (sharing ? on : off) = r;
          char label[128];
          std::snprintf(label, sizeof(label),
                        "BM_MultiQuery/q:%zu/ov:%.1f/share:%s/shards:%zu",
                        queries, overlap, sharing ? "on" : "off", shards);
          std::printf("%-44s %14.0f %12llu %10llu %8zu\n", label,
                      r.tuples_per_sec,
                      static_cast<unsigned long long>(r.routed),
                      static_cast<unsigned long long>(r.shared_prefix_hits),
                      r.stages_shared);
          AddJsonEntry(label, batches, r.tuples_per_sec);
        }
        if (on.digest != off.digest || on.routed != off.routed) {
          std::fprintf(stderr,
                       "FAIL: sharing changed delivery at q=%zu ov=%.1f "
                       "shards=%zu (digest %llx vs %llx, routed %llu vs "
                       "%llu)\n",
                       queries, overlap, shards,
                       static_cast<unsigned long long>(on.digest),
                       static_cast<unsigned long long>(off.digest),
                       static_cast<unsigned long long>(on.routed),
                       static_cast<unsigned long long>(off.routed));
          ok = false;
        }
        const double ratio = off.tuples_per_sec > 0.0
                                 ? on.tuples_per_sec / off.tuples_per_sec
                                 : 0.0;
        char ratio_label[128];
        std::snprintf(ratio_label, sizeof(ratio_label),
                      "BM_MultiQueryShareRatio/q:%zu/ov:%.1f/shards:%zu",
                      queries, overlap, shards);
        std::printf("%-44s %13.2fx\n", ratio_label, ratio);
        AddJsonEntry(ratio_label, batches, ratio);
      }
      std::printf("\n");
    }
  }
  if (ok) {
    std::printf("delivered-stream digests byte-exact sharing on vs off in "
                "every configuration\n");
    AddJsonEntry("BM_MultiQueryDigestMatch", 27, 1.0);
  }
  return ok;
}

// ------------------------------------------------------ route-LUT churn bench

/// Cancel-heavy single-fabricator regression: under the incremental LUT
/// maintenance, per-churn-event cost is one slot patch, and full rebuilds
/// stay rare (hole compaction / attribute-set changes only). A regression
/// back to rebuild-per-churn-event shows up as a rebuild count near the
/// churn-event count and a throughput collapse.
bool RunChurnBench(std::size_t batches, std::size_t batch_size) {
  bench::WorkloadConfig wc =
      SweepWorkload(/*queries=*/192, /*overlap=*/0.5, batches, batch_size);
  wc.churn_fraction = 0.9;  // nearly every arrival is paired with a cancel
  const bench::WorkloadGenerator gen(wc);
  const auto tuple_batches = gen.MakeBatches();

  auto fab = fabric::StreamFabricator::Make(BenchGrid(),
                                            BenchFabricConfig(true))
                 .MoveValue();
  std::map<std::size_t, fabric::QueryStream> streams;
  const auto& schedule = gen.schedule();
  std::size_t cursor = 0;
  std::size_t churn_events = 0;

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t b = 0; b < tuple_batches.size(); ++b) {
    for (; cursor < schedule.size() && schedule[cursor].at_batch <= b;
         ++cursor) {
      const bench::QueryEvent& ev = schedule[cursor];
      ++churn_events;
      if (ev.kind == bench::QueryEvent::Kind::kInsert) {
        auto stream = fab->InsertQuery(ev.spec.attribute, ev.spec.region,
                                       ev.spec.rate);
        if (!stream.ok()) {
          std::fprintf(stderr, "InsertQuery failed\n");
          return false;
        }
        streams.emplace(ev.slot, stream.MoveValue());
      } else {
        const auto it = streams.find(ev.slot);
        if (it == streams.end() || !fab->RemoveQuery(it->second.id).ok()) {
          std::fprintf(stderr, "RemoveQuery failed\n");
          return false;
        }
        streams.erase(it);
      }
    }
    if (!fab->ProcessBatch(tuple_batches[b]).ok()) {
      std::fprintf(stderr, "ProcessBatch failed\n");
      return false;
    }
  }
  const auto end = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  const double tuples_per_sec =
      seconds > 0.0
          ? static_cast<double>(batches * batch_size) / seconds
          : 0.0;

  std::printf("route-LUT churn regression (1 fabricator, churn 0.9)\n");
  std::printf("  %zu churn events over %zu batches x %zu tuples\n",
              churn_events, batches, batch_size);
  std::printf("  tuples/sec:     %14.0f\n", tuples_per_sec);
  std::printf("  route patches:  %14llu (incremental slot writes)\n",
              static_cast<unsigned long long>(fab->route_patches()));
  std::printf("  route rebuilds: %14llu (full rows x cols sweeps)\n",
              static_cast<unsigned long long>(fab->route_rebuilds()));
  AddJsonEntry("BM_ChurnRouteMaintenance", churn_events, tuples_per_sec);
  // Trajectory guard: rebuilds per churn event (was ~1.0 before the
  // incremental path; the rate column carries the ratio).
  AddJsonEntry("BM_ChurnRouteRebuildsPerEvent", fab->route_rebuilds(),
               churn_events > 0
                   ? static_cast<double>(fab->route_rebuilds()) /
                         static_cast<double>(churn_events)
                   : 0.0);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = benchjson::ExtractJsonPath(&argc, argv);
  const std::string metrics_path =
      benchjson::ExtractFlagValue(&argc, argv, "--metrics-json");
  bool churn_only = false;
  if (argc > 1 && std::string(argv[1]) == "--churn") {
    churn_only = true;
    --argc;
    ++argv;
  }
  constexpr std::size_t kMaxArg = 1u << 24;
  const auto parse_arg = [&](int index, std::size_t fallback) {
    if (argc <= index) {
      return fallback;
    }
    const std::string text = argv[index];
    std::size_t value = 0;
    try {
      if (text.empty() ||
          text.find_first_not_of("0123456789") != std::string::npos) {
        throw std::invalid_argument(text);
      }
      value = static_cast<std::size_t>(std::stoul(text));
    } catch (const std::exception&) {
      std::fprintf(stderr,
                   "invalid argument '%s' (expected 0..%zu)\n"
                   "usage: %s [--churn] [--json <path>] [batches] "
                   "[batch_size]\n",
                   argv[index], kMaxArg, argv[0]);
      std::exit(2);
    }
    return std::min(value, kMaxArg);
  };
  const std::size_t batches = parse_arg(1, churn_only ? 96u : 256u);
  const std::size_t batch_size = parse_arg(2, churn_only ? 512u : 256u);

  const bool ok = churn_only ? RunChurnBench(batches, batch_size)
                             : RunSharingSweep(batches, batch_size);
  if (ok && !json_path.empty()) {
    benchjson::WriteEntries(json_path, g_json_entries);
  }
  if (ok && !metrics_path.empty()) {
    const craqr::Status status =
        craqr::obs::MetricsExporter::WriteJsonSnapshot(metrics_path);
    if (!status.ok()) {
      std::fprintf(stderr, "cannot write metrics snapshot: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  return ok ? 0 : 1;
}
