/// \file bench_sharded_throughput.cc
/// \brief Sharded-runtime scaling sweep: tuples/sec for shards ∈ {1,2,4,8},
/// plus the engine-loop overlap benchmark BM_EngineStepSync vs
/// BM_EngineStepPipelined.
///
/// Drives the multi-query operator-throughput workload (many overlapping
/// acquisitional queries over an 8x8-cell grid, dense monotone-time tuple
/// batches) through the single-threaded StreamFabricator and through the
/// runtime::ShardedFabricator at increasing shard counts, using the
/// pipelined EnqueueBatch path so shard workers overlap with routing.
/// Prints tuples/sec per configuration and the speedup over one shard.
///
/// The engine-step section then measures the full CraqrEngine loop (world
/// advance + handler dispatch + shard processing) at the same shard count
/// with pipeline_depth 1 (BM_EngineStepSync: drain every step) vs
/// pipeline_depth 2 (BM_EngineStepPipelined: world simulation and handler
/// dispatch of tick t+1 overlap the shards chewing tick t) and logs the
/// steps/sec ratio — the CI release-bench job greps this.
///
/// Scaling is bounded by std::thread::hardware_concurrency(): on a
/// single-core container every configuration serializes onto one CPU and
/// speedups hover near (or slightly below) 1x; the >= 2x target at four
/// shards needs >= 4 physical cores. The same bound applies to the
/// engine-step overlap.
///
/// `--skew <frac>` switches to the load-imbalance sweep: `frac` of the
/// traffic (e.g. 0.9) lands in a hot corner covering ~5% of the grid's
/// cells, and each shard count runs three ways — static hash partition,
/// with epoch-barrier cell rebalancing, and with rebalancing plus work
/// stealing — against a balanced-traffic control. Routed counts must be
/// identical across all of them (rebalancing/stealing never change what is
/// delivered, only where it executes).
///
/// Usage: bench_sharded_throughput [--json <path>] [--metrics-json <path>]
///                                 [batches] [batch_size] [queries]
///        bench_sharded_throughput [--json <path>] [--metrics-json <path>]
///                                 --skew <frac> [batches] [batch_size] [queries]
///        bench_sharded_throughput [--json <path>] [--metrics-json <path>]
///                                 --engine-step [steps] [sensors]
///
/// `--json <path>` writes every configuration's result as
/// `{name, iters, ns_per_op, tuples_per_sec}` (engine-step rows report
/// steps/sec in the rate column) — the format of the repo-level
/// BENCH_*.json perf trajectory the release-bench CI job uploads.
/// `--metrics-json <path>` additionally dumps the final obs registry
/// snapshot (per-operator-kind counters, per-shard latency histograms,
/// per-cell routing bank) as obs::SnapshotJson output.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/rng.h"
#include "core/engine.h"
#include "obs/exporter.h"
#include "fabric/fabricator.h"
#include "runtime/sharded_fabricator.h"
#include "sensing/world.h"

namespace {

using namespace craqr;  // NOLINT

std::vector<benchjson::Entry> g_json_entries;

/// Records one --json row; `rate` is the bench's primary rate
/// (tuples/sec for the sweep, steps/sec for the engine-step rows).
void AddJsonEntry(const std::string& name, std::uint64_t iters, double rate) {
  benchjson::Entry e;
  e.name = name;
  e.iters = iters;
  e.ns_per_op = rate > 0.0 ? 1e9 / rate : 0.0;
  e.tuples_per_sec = rate;
  g_json_entries.push_back(std::move(e));
}

constexpr double kWorldSize = 8.0;

geom::Grid BenchGrid() {
  return geom::Grid::Make(geom::Rect(0, 0, kWorldSize, kWorldSize), 64)
      .MoveValue();
}

fabric::FabricConfig BenchFabricConfig() {
  fabric::FabricConfig config;
  config.flatten_batch_size = 64;
  config.seed = 0xBE7CB;
  return config;
}

/// Overlapping multi-query mix: full-region monitors, quadrant queries and
/// small roaming rectangles across two attributes.
template <typename Fab>
bool InsertQueries(Fab* fab, std::size_t queries) {
  Rng rng(17);
  for (std::size_t i = 0; i < queries; ++i) {
    const ops::AttributeId attribute = i % 3 == 0 ? 1 : 0;
    geom::Rect region(0, 0, kWorldSize, kWorldSize);
    if (i % 4 == 1) {
      region = geom::Rect(0, 0, kWorldSize / 2, kWorldSize);
    } else if (i % 4 == 2) {
      const double x0 = rng.Uniform(0.0, kWorldSize - 2.0);
      const double y0 = rng.Uniform(0.0, kWorldSize - 2.0);
      region = geom::Rect(x0, y0, x0 + 2.0, y0 + 2.0);
    }
    const double rate = 0.5 + static_cast<double>(i % 6);
    if (!fab->InsertQuery(attribute, region, rate).ok()) {
      return false;
    }
  }
  return true;
}

/// `skew_frac` of the tuples land in the hot corner — 1.75x1.75 of an
/// 8x8 world is 14x14 of the 64x64 grid's cells, ~4.8% of them; the rest
/// stay uniform. skew_frac 0 is the balanced workload.
std::vector<std::vector<ops::Tuple>> MakeBatches(std::size_t batches,
                                                 std::size_t batch_size,
                                                 double skew_frac = 0.0) {
  constexpr double kHotSize = 1.75;
  Rng rng(23);
  double t = 0.0;
  std::uint64_t id = 1;
  std::vector<std::vector<ops::Tuple>> out;
  out.reserve(batches);
  for (std::size_t b = 0; b < batches; ++b) {
    std::vector<ops::Tuple> batch;
    batch.reserve(batch_size);
    for (std::size_t i = 0; i < batch_size; ++i) {
      ops::Tuple tuple;
      tuple.id = id++;
      tuple.attribute = i % 3 == 0 ? 1 : 0;
      t += 0.0005;
      const double extent =
          rng.Uniform(0.0, 1.0) < skew_frac ? kHotSize : kWorldSize;
      tuple.point = geom::SpaceTimePoint{t, rng.Uniform(0.0, extent),
                                         rng.Uniform(0.0, extent)};
      batch.push_back(tuple);
    }
    out.push_back(std::move(batch));
  }
  return out;
}

struct RunResult {
  double tuples_per_sec = 0.0;
  std::uint64_t routed = 0;
  std::uint64_t migrated = 0;
  std::uint64_t steals = 0;
};

/// Pumps every batch and reports end-to-end tuples/sec (routing + shard
/// processing + merge). `pump` owns the per-path batch submission.
template <typename PumpFn>
RunResult TimedRun(const std::vector<std::vector<ops::Tuple>>& batches,
                   PumpFn&& pump) {
  const auto start = std::chrono::steady_clock::now();
  pump();
  const auto end = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  std::size_t total = 0;
  for (const auto& batch : batches) {
    total += batch.size();
  }
  RunResult result;
  result.tuples_per_sec =
      seconds > 0.0 ? static_cast<double>(total) / seconds : 0.0;
  return result;
}

RunResult RunSingleThreaded(const std::vector<std::vector<ops::Tuple>>& batches,
                            std::size_t queries) {
  auto fab =
      fabric::StreamFabricator::Make(BenchGrid(), BenchFabricConfig())
          .MoveValue();
  if (!InsertQueries(fab.get(), queries)) {
    std::fprintf(stderr, "query insertion failed\n");
    std::exit(1);
  }
  auto result = TimedRun(batches, [&] {
    for (const auto& batch : batches) {
      if (!fab->ProcessBatch(batch).ok()) {
        std::fprintf(stderr, "ProcessBatch failed\n");
        std::exit(1);
      }
    }
  });
  result.routed = fab->tuples_routed();
  return result;
}

/// Knobs for the skew sweep: the static baseline leaves both off; the
/// rebalanced configurations call Rebalance() every `rebalance_every`
/// batches, mimicking the engine's rebalance_every_steps cadence.
struct ShardedRunOptions {
  bool rebalancing = false;
  bool stealing = false;
  std::size_t rebalance_every = 16;
};

RunResult RunSharded(const std::vector<std::vector<ops::Tuple>>& batches,
                     std::size_t queries, std::size_t num_shards,
                     const ShardedRunOptions& opts = {}) {
  runtime::ShardedConfig config;
  config.num_shards = num_shards;
  config.fabric = BenchFabricConfig();
  config.enable_stealing = opts.stealing;
  config.enable_rebalancing = opts.rebalancing;
  config.rebalance.imbalance_trigger = 1.1;
  config.rebalance.max_moves_per_event = 32;
  auto fab = runtime::ShardedFabricator::Make(BenchGrid(), config).MoveValue();
  if (!InsertQueries(fab.get(), queries)) {
    std::fprintf(stderr, "query insertion failed\n");
    std::exit(1);
  }
  auto result = TimedRun(batches, [&] {
    std::size_t since_rebalance = 0;
    for (const auto& batch : batches) {
      if (!fab->EnqueueBatch(batch).ok()) {
        std::fprintf(stderr, "EnqueueBatch failed\n");
        std::exit(1);
      }
      if (opts.rebalancing && ++since_rebalance >= opts.rebalance_every) {
        since_rebalance = 0;
        if (!fab->Rebalance().ok()) {
          std::fprintf(stderr, "Rebalance failed\n");
          std::exit(1);
        }
      }
    }
    if (!fab->Drain().ok()) {
      std::fprintf(stderr, "Drain failed\n");
      std::exit(1);
    }
  });
  const auto stats = fab->TrySnapshot();
  if (!stats.ok()) {
    std::fprintf(stderr, "TrySnapshot failed: %s\n",
                 stats.status().ToString().c_str());
    std::exit(1);
  }
  result.routed = stats->tuples_routed;
  result.migrated = stats->cells_migrated;
  for (const auto& shard : stats->per_shard) {
    result.steals += shard.steals;
  }
  return result;
}

// ----------------------------------------------------------------- skew sweep

/// Load-imbalance sweep: a balanced control plus three treatments of the
/// skewed workload per shard count. Routed counts are pinned within each
/// batch set — migrating cells or stealing jobs must never change what is
/// delivered. Returns false on a routed-count mismatch.
bool RunSkewSweep(double skew_frac, std::size_t batches,
                  std::size_t batch_size, std::size_t queries) {
  std::printf("skewed-load rebalancing sweep\n");
  std::printf(
      "  workload: %zu queries, %zu batches x %zu tuples, skew %.2f into "
      "~5%% of cells\n",
      queries, batches, batch_size, skew_frac);
  std::printf("  hardware threads: %u\n\n",
              std::thread::hardware_concurrency());
  std::printf("%-40s %14s %12s %9s %8s\n", "configuration", "tuples/sec",
              "routed", "migrated", "steals");

  const auto balanced = MakeBatches(batches, batch_size, 0.0);
  const auto skewed = MakeBatches(batches, batch_size, skew_frac);

  ShardedRunOptions kStatic;
  ShardedRunOptions rebalance;
  rebalance.rebalancing = true;
  ShardedRunOptions rebalance_steal = rebalance;
  rebalance_steal.stealing = true;

  struct Treatment {
    const char* label;
    const std::vector<std::vector<ops::Tuple>>* input;
    const ShardedRunOptions* opts;
  };
  const Treatment treatments[] = {
      {"balanced_static", &balanced, &kStatic},
      {"skewed_static", &skewed, &kStatic},
      {"skewed_rebalance", &skewed, &rebalance},
      {"skewed_rebalance_steal", &skewed, &rebalance_steal},
  };

  for (const std::size_t shards : {2u, 4u}) {
    // Per batch set, every configuration must route the same tuple count.
    std::uint64_t balanced_routed = 0;
    std::uint64_t skewed_routed = 0;
    for (const Treatment& t : treatments) {
      const RunResult r = RunSharded(*t.input, queries, shards, *t.opts);
      const std::string label = "BM_SkewedSweep/shards:" +
                                std::to_string(shards) + "/" + t.label;
      std::printf("%-40s %14.0f %12llu %9llu %8llu\n", label.c_str(),
                  r.tuples_per_sec, static_cast<unsigned long long>(r.routed),
                  static_cast<unsigned long long>(r.migrated),
                  static_cast<unsigned long long>(r.steals));
      AddJsonEntry(label, batches, r.tuples_per_sec);
      std::uint64_t& expected =
          t.input == &balanced ? balanced_routed : skewed_routed;
      if (expected == 0) {
        expected = r.routed;
      } else if (r.routed != expected) {
        std::fprintf(stderr,
                     "FAIL: %s routed %llu tuples, expected %llu (rebalancing "
                     "or stealing changed the delivered stream)\n",
                     label.c_str(), static_cast<unsigned long long>(r.routed),
                     static_cast<unsigned long long>(expected));
        return false;
      }
    }
    std::printf("\n");
  }
  return true;
}

// ---------------------------------------------------------------- engine step

/// Deterministic crowd world for the engine-loop benchmark (mirrors the
/// engine tests' two-attribute setup at benchmark scale).
sensing::CrowdWorld MakeEngineWorld(std::size_t sensors) {
  sensing::PopulationConfig pc;
  pc.region = geom::Rect(0, 0, 6, 6);
  pc.num_sensors = sensors;
  pc.responsiveness_sigma = 0.2;
  Rng rng(5);
  auto population = sensing::SensorPopulation::Make(pc, &rng).MoveValue();
  auto world =
      sensing::CrowdWorld::Make(std::move(population), rng.Fork()).MoveValue();
  sensing::TemperatureField::Params tp;
  const sensing::ResponseBehavior device =
      sensing::ResponseModel::DeviceBehavior();
  if (!world
           .RegisterAttribute("temp", false,
                              sensing::TemperatureField::Make(tp).MoveValue(),
                              device)
           .ok()) {
    std::fprintf(stderr, "RegisterAttribute failed\n");
    std::exit(1);
  }
  sensing::RainCell cell;
  cell.x0 = 3.0;
  cell.y0 = 3.0;
  cell.radius = 2.0;
  sensing::ResponseBehavior human = sensing::ResponseModel::HumanBehavior();
  human.base_logit = 2.0;
  human.delay_mu = -1.0;
  if (!world
           .RegisterAttribute("rain", true,
                              sensing::RainField::Make({cell}).MoveValue(),
                              human)
           .ok()) {
    std::fprintf(stderr, "RegisterAttribute failed\n");
    std::exit(1);
  }
  return world;
}

struct EngineRunResult {
  double steps_per_sec = 0.0;
  std::uint64_t routed = 0;
};

/// Full engine loop at `num_shards` shards and the given pipeline depth:
/// warms up, times `steps` Step() calls plus the final drain, and reports
/// steps/sec and routed tuples (the latter must be depth-independent).
EngineRunResult RunEngineSteps(std::size_t num_shards,
                               std::size_t pipeline_depth, std::size_t steps,
                               std::size_t sensors) {
  craqr::engine::EngineConfig config;
  config.grid_h = 9;
  config.step_dt = 1.0;
  config.fabric.flatten_batch_size = 64;
  config.budget.initial = 24.0;
  config.budget.delta = 8.0;
  config.budget.max = 256.0;
  config.num_shards = num_shards;
  config.pipeline_depth = pipeline_depth;
  auto engine =
      craqr::engine::CraqrEngine::Make(MakeEngineWorld(sensors), config)
          .MoveValue();
  const char* queries[] = {
      "ACQUIRE temp FROM REGION(0, 0, 6, 6) RATE 1.5 PER KM2 PER MIN",
      "ACQUIRE temp FROM REGION(0, 0, 4, 4) RATE 0.5 PER KM2 PER MIN",
      "ACQUIRE rain FROM REGION(1, 1, 6, 6) RATE 2 PER KM2 PER MIN",
      "ACQUIRE rain FROM REGION(0, 0, 3, 3) RATE 0.75 PER KM2 PER MIN",
  };
  for (const char* q : queries) {
    if (!engine->SubmitText(q).ok()) {
      std::fprintf(stderr, "SubmitText failed\n");
      std::exit(1);
    }
  }
  if (!engine->RunFor(10.0).ok()) {  // warm-up: budgets settle, F buffers fill
    std::fprintf(stderr, "warm-up RunFor failed\n");
    std::exit(1);
  }
  const auto start = std::chrono::steady_clock::now();
  if (!engine->RunFor(static_cast<double>(steps)).ok()) {
    std::fprintf(stderr, "timed RunFor failed\n");
    std::exit(1);
  }
  const auto end = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  EngineRunResult result;
  result.steps_per_sec =
      seconds > 0.0 ? static_cast<double>(steps) / seconds : 0.0;
  result.routed = engine->TuplesRouted();
  return result;
}

/// Prints BM_EngineStepSync / BM_EngineStepPipelined and their ratio.
/// The two depths follow different feedback contracts (depth 2 applies
/// budget feedback one step later), so routed counts are close but not
/// identical; a gross mismatch still indicates a routing bug.
bool RunEngineStepBench(std::size_t steps, std::size_t sensors) {
  const std::size_t shards = 4;
  std::printf("\nengine step loop (%zu shards, %zu sensors, %zu steps)\n",
              shards, sensors, steps);
  std::printf("%-28s %14s %12s %10s\n", "benchmark", "steps/sec", "routed",
              "ratio");
  const EngineRunResult sync = RunEngineSteps(shards, 1, steps, sensors);
  std::printf("%-28s %14.1f %12llu %9s\n", "BM_EngineStepSync",
              sync.steps_per_sec, static_cast<unsigned long long>(sync.routed),
              "-");
  AddJsonEntry("BM_EngineStepSync", steps, sync.steps_per_sec);
  const EngineRunResult pipelined = RunEngineSteps(shards, 2, steps, sensors);
  AddJsonEntry("BM_EngineStepPipelined", steps, pipelined.steps_per_sec);
  const double ratio = sync.steps_per_sec > 0.0
                           ? pipelined.steps_per_sec / sync.steps_per_sec
                           : 0.0;
  std::printf("%-28s %14.1f %12llu %9.2fx\n", "BM_EngineStepPipelined",
              pipelined.steps_per_sec,
              static_cast<unsigned long long>(pipelined.routed), ratio);
  const double low = static_cast<double>(sync.routed) * 0.5;
  const double high = static_cast<double>(sync.routed) * 2.0;
  if (static_cast<double>(pipelined.routed) < low ||
      static_cast<double>(pipelined.routed) > high) {
    std::fprintf(stderr,
                 "FAIL: pipelined engine routed %llu tuples, sync routed "
                 "%llu (beyond contract-lag tolerance)\n",
                 static_cast<unsigned long long>(pipelined.routed),
                 static_cast<unsigned long long>(sync.routed));
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // --json <path>: additionally emit the results in the BENCH_*.json
  // perf-trajectory format (shared parser: flag accepted anywhere).
  const std::string json_path = benchjson::ExtractJsonPath(&argc, argv);
  // --metrics-json <path>: dump the obs registry as JSON on success.
  const std::string metrics_path =
      benchjson::ExtractFlagValue(&argc, argv, "--metrics-json");
  const auto dump_metrics = [&metrics_path]() {
    if (metrics_path.empty()) {
      return true;
    }
    const craqr::Status status =
        craqr::obs::MetricsExporter::WriteJsonSnapshot(metrics_path);
    if (!status.ok()) {
      std::fprintf(stderr, "cannot write metrics snapshot: %s\n",
                   status.ToString().c_str());
      return false;
    }
    return true;
  };
  // --skew <frac>: run the load-imbalance sweep instead of the scaling
  // sweep (frac in (0,1]: share of traffic aimed at the hot corner).
  const std::string skew_text =
      benchjson::ExtractFlagValue(&argc, argv, "--skew");
  double skew_frac = 0.0;
  if (!skew_text.empty()) {
    try {
      skew_frac = std::stod(skew_text);
    } catch (const std::exception&) {
      skew_frac = -1.0;
    }
    if (skew_frac <= 0.0 || skew_frac > 1.0) {
      std::fprintf(stderr, "invalid --skew '%s' (expected 0 < frac <= 1)\n",
                   skew_text.c_str());
      return 2;
    }
  }
  // --engine-step: run only the engine-loop overlap benchmark (the CI
  // release-bench filter for BM_EngineStepSync/Pipelined).
  bool engine_step_only = false;
  if (argc > 1 && std::string(argv[1]) == "--engine-step") {
    engine_step_only = true;
    --argc;
    ++argv;
  }
  // std::stoul alone accepts "-5" (wrapping to a huge unsigned), so args
  // must be all-digits, and are capped to keep allocations sane.
  constexpr std::size_t kMaxArg = 1u << 24;
  const auto parse_arg = [&](int index, std::size_t fallback) {
    if (argc <= index) {
      return fallback;
    }
    const std::string text = argv[index];
    std::size_t value = 0;
    try {
      if (text.empty() ||
          text.find_first_not_of("0123456789") != std::string::npos) {
        throw std::invalid_argument(text);
      }
      value = static_cast<std::size_t>(std::stoul(text));
    } catch (const std::exception&) {
      std::fprintf(stderr,
                   "invalid argument '%s' (expected 0..%zu)\n"
                   "usage: %s [batches] [batch_size] [queries]\n",
                   argv[index], kMaxArg, argv[0]);
      std::exit(2);
    }
    return std::min(value, kMaxArg);
  };
  if (engine_step_only) {
    const std::size_t steps = parse_arg(1, 120);
    const std::size_t sensors = parse_arg(2, 1200);
    std::printf("engine-step overlap benchmark\n");
    std::printf("  hardware threads: %u\n",
                std::thread::hardware_concurrency());
    const bool ok = RunEngineStepBench(steps, sensors);
    if (ok && !json_path.empty()) {
      benchjson::WriteEntries(json_path, g_json_entries);
    }
    if (ok && !dump_metrics()) {
      return 1;
    }
    return ok ? 0 : 1;
  }

  const std::size_t batches = parse_arg(1, 150);
  const std::size_t batch_size = parse_arg(2, 512);
  const std::size_t queries = parse_arg(3, 24);

  if (skew_frac > 0.0) {
    const bool ok = RunSkewSweep(skew_frac, batches, batch_size, queries);
    if (ok && !json_path.empty()) {
      benchjson::WriteEntries(json_path, g_json_entries);
    }
    if (ok && !dump_metrics()) {
      return 1;
    }
    return ok ? 0 : 1;
  }

  std::printf("sharded-runtime throughput sweep\n");
  std::printf("  workload: %zu queries, %zu batches x %zu tuples\n", queries,
              batches, batch_size);
  std::printf("  hardware threads: %u\n\n",
              std::thread::hardware_concurrency());
  std::printf("%-28s %14s %12s %10s\n", "configuration", "tuples/sec",
              "routed", "speedup");

  const auto all_batches = MakeBatches(batches, batch_size);

  const RunResult base = RunSingleThreaded(all_batches, queries);
  std::printf("%-28s %14.0f %12llu %9s\n", "fabricator (in-process)",
              base.tuples_per_sec,
              static_cast<unsigned long long>(base.routed), "-");
  AddJsonEntry("BM_FabricatorInProcess", batches, base.tuples_per_sec);

  double one_shard = 0.0;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    const RunResult r = RunSharded(all_batches, queries, shards);
    if (shards == 1) {
      one_shard = r.tuples_per_sec;
    }
    const std::string label = "sharded, " + std::to_string(shards) +
                              (shards == 1 ? " shard" : " shards");
    std::printf("%-28s %14.0f %12llu %9.2fx\n", label.c_str(),
                r.tuples_per_sec, static_cast<unsigned long long>(r.routed),
                one_shard > 0.0 ? r.tuples_per_sec / one_shard : 0.0);
    AddJsonEntry("BM_ShardedSweep/shards:" + std::to_string(shards), batches,
                 r.tuples_per_sec);
    if (r.routed != base.routed) {
      std::fprintf(stderr,
                   "FAIL: sharded routed %llu tuples, baseline routed %llu\n",
                   static_cast<unsigned long long>(r.routed),
                   static_cast<unsigned long long>(base.routed));
      return 1;
    }
  }

  const bool ok = RunEngineStepBench(60, 800);
  if (ok && !json_path.empty()) {
    benchjson::WriteEntries(json_path, g_json_entries);
  }
  if (ok && !dump_metrics()) {
    return 1;
  }
  return ok ? 0 : 1;
}
