/// \file bench_sharded_throughput.cc
/// \brief Sharded-runtime scaling sweep: tuples/sec for shards ∈ {1,2,4,8}.
///
/// Drives the multi-query operator-throughput workload (many overlapping
/// acquisitional queries over an 8x8-cell grid, dense monotone-time tuple
/// batches) through the single-threaded StreamFabricator and through the
/// runtime::ShardedFabricator at increasing shard counts, using the
/// pipelined EnqueueBatch path so shard workers overlap with routing.
/// Prints tuples/sec per configuration and the speedup over one shard.
///
/// Scaling is bounded by std::thread::hardware_concurrency(): on a
/// single-core container every configuration serializes onto one CPU and
/// speedups hover near (or slightly below) 1x; the >= 2x target at four
/// shards needs >= 4 physical cores.
///
/// Usage: bench_sharded_throughput [batches] [batch_size] [queries]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "fabric/fabricator.h"
#include "runtime/sharded_fabricator.h"

namespace {

using namespace craqr;  // NOLINT

constexpr double kWorldSize = 8.0;

geom::Grid BenchGrid() {
  return geom::Grid::Make(geom::Rect(0, 0, kWorldSize, kWorldSize), 64)
      .MoveValue();
}

fabric::FabricConfig BenchFabricConfig() {
  fabric::FabricConfig config;
  config.flatten_batch_size = 64;
  config.seed = 0xBE7CB;
  return config;
}

/// Overlapping multi-query mix: full-region monitors, quadrant queries and
/// small roaming rectangles across two attributes.
template <typename Fab>
bool InsertQueries(Fab* fab, std::size_t queries) {
  Rng rng(17);
  for (std::size_t i = 0; i < queries; ++i) {
    const ops::AttributeId attribute = i % 3 == 0 ? 1 : 0;
    geom::Rect region(0, 0, kWorldSize, kWorldSize);
    if (i % 4 == 1) {
      region = geom::Rect(0, 0, kWorldSize / 2, kWorldSize);
    } else if (i % 4 == 2) {
      const double x0 = rng.Uniform(0.0, kWorldSize - 2.0);
      const double y0 = rng.Uniform(0.0, kWorldSize - 2.0);
      region = geom::Rect(x0, y0, x0 + 2.0, y0 + 2.0);
    }
    const double rate = 0.5 + static_cast<double>(i % 6);
    if (!fab->InsertQuery(attribute, region, rate).ok()) {
      return false;
    }
  }
  return true;
}

std::vector<std::vector<ops::Tuple>> MakeBatches(std::size_t batches,
                                                 std::size_t batch_size) {
  Rng rng(23);
  double t = 0.0;
  std::uint64_t id = 1;
  std::vector<std::vector<ops::Tuple>> out;
  out.reserve(batches);
  for (std::size_t b = 0; b < batches; ++b) {
    std::vector<ops::Tuple> batch;
    batch.reserve(batch_size);
    for (std::size_t i = 0; i < batch_size; ++i) {
      ops::Tuple tuple;
      tuple.id = id++;
      tuple.attribute = i % 3 == 0 ? 1 : 0;
      t += 0.0005;
      tuple.point = geom::SpaceTimePoint{t, rng.Uniform(0.0, kWorldSize),
                                         rng.Uniform(0.0, kWorldSize)};
      batch.push_back(tuple);
    }
    out.push_back(std::move(batch));
  }
  return out;
}

struct RunResult {
  double tuples_per_sec = 0.0;
  std::uint64_t routed = 0;
};

/// Pumps every batch and reports end-to-end tuples/sec (routing + shard
/// processing + merge). `pump` owns the per-path batch submission.
template <typename PumpFn>
RunResult TimedRun(const std::vector<std::vector<ops::Tuple>>& batches,
                   PumpFn&& pump) {
  const auto start = std::chrono::steady_clock::now();
  pump();
  const auto end = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  std::size_t total = 0;
  for (const auto& batch : batches) {
    total += batch.size();
  }
  RunResult result;
  result.tuples_per_sec =
      seconds > 0.0 ? static_cast<double>(total) / seconds : 0.0;
  return result;
}

RunResult RunSingleThreaded(const std::vector<std::vector<ops::Tuple>>& batches,
                            std::size_t queries) {
  auto fab =
      fabric::StreamFabricator::Make(BenchGrid(), BenchFabricConfig())
          .MoveValue();
  if (!InsertQueries(fab.get(), queries)) {
    std::fprintf(stderr, "query insertion failed\n");
    std::exit(1);
  }
  auto result = TimedRun(batches, [&] {
    for (const auto& batch : batches) {
      if (!fab->ProcessBatch(batch).ok()) {
        std::fprintf(stderr, "ProcessBatch failed\n");
        std::exit(1);
      }
    }
  });
  result.routed = fab->tuples_routed();
  return result;
}

RunResult RunSharded(const std::vector<std::vector<ops::Tuple>>& batches,
                     std::size_t queries, std::size_t num_shards) {
  runtime::ShardedConfig config;
  config.num_shards = num_shards;
  config.fabric = BenchFabricConfig();
  auto fab = runtime::ShardedFabricator::Make(BenchGrid(), config).MoveValue();
  if (!InsertQueries(fab.get(), queries)) {
    std::fprintf(stderr, "query insertion failed\n");
    std::exit(1);
  }
  auto result = TimedRun(batches, [&] {
    for (const auto& batch : batches) {
      if (!fab->EnqueueBatch(batch).ok()) {
        std::fprintf(stderr, "EnqueueBatch failed\n");
        std::exit(1);
      }
    }
    if (!fab->Drain().ok()) {
      std::fprintf(stderr, "Drain failed\n");
      std::exit(1);
    }
  });
  const auto stats = fab->TrySnapshot();
  if (!stats.ok()) {
    std::fprintf(stderr, "TrySnapshot failed: %s\n",
                 stats.status().ToString().c_str());
    std::exit(1);
  }
  result.routed = stats->tuples_routed;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  // std::stoul alone accepts "-5" (wrapping to a huge unsigned), so args
  // must be all-digits, and are capped to keep allocations sane.
  constexpr std::size_t kMaxArg = 1u << 24;
  const auto parse_arg = [&](int index, std::size_t fallback) {
    if (argc <= index) {
      return fallback;
    }
    const std::string text = argv[index];
    std::size_t value = 0;
    try {
      if (text.empty() ||
          text.find_first_not_of("0123456789") != std::string::npos) {
        throw std::invalid_argument(text);
      }
      value = static_cast<std::size_t>(std::stoul(text));
    } catch (const std::exception&) {
      std::fprintf(stderr,
                   "invalid argument '%s' (expected 0..%zu)\n"
                   "usage: %s [batches] [batch_size] [queries]\n",
                   argv[index], kMaxArg, argv[0]);
      std::exit(2);
    }
    return std::min(value, kMaxArg);
  };
  const std::size_t batches = parse_arg(1, 150);
  const std::size_t batch_size = parse_arg(2, 512);
  const std::size_t queries = parse_arg(3, 24);

  std::printf("sharded-runtime throughput sweep\n");
  std::printf("  workload: %zu queries, %zu batches x %zu tuples\n", queries,
              batches, batch_size);
  std::printf("  hardware threads: %u\n\n",
              std::thread::hardware_concurrency());
  std::printf("%-28s %14s %12s %10s\n", "configuration", "tuples/sec",
              "routed", "speedup");

  const auto all_batches = MakeBatches(batches, batch_size);

  const RunResult base = RunSingleThreaded(all_batches, queries);
  std::printf("%-28s %14.0f %12llu %9s\n", "fabricator (in-process)",
              base.tuples_per_sec,
              static_cast<unsigned long long>(base.routed), "-");

  double one_shard = 0.0;
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    const RunResult r = RunSharded(all_batches, queries, shards);
    if (shards == 1) {
      one_shard = r.tuples_per_sec;
    }
    const std::string label = "sharded, " + std::to_string(shards) +
                              (shards == 1 ? " shard" : " shards");
    std::printf("%-28s %14.0f %12llu %9.2fx\n", label.c_str(),
                r.tuples_per_sec, static_cast<unsigned long long>(r.routed),
                one_shard > 0.0 ? r.tuples_per_sec / one_shard : 0.0);
    if (r.routed != base.routed) {
      std::fprintf(stderr,
                   "FAIL: sharded routed %llu tuples, baseline routed %llu\n",
                   static_cast<unsigned long long>(r.routed),
                   static_cast<unsigned long long>(base.routed));
      return 1;
    }
  }
  return 0;
}
