#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geometry/rect.h"
#include "ops/tuple.h"

/// \file workload_gen.h
/// \brief City-scale multi-query workload generator.
///
/// Produces the two halves of a realistic crowdsensing workload over one
/// tuple stream:
///
///  - a **query schedule**: bursty arrivals of overlapping regional
///    queries drawn from a skewed pool of hot-spot templates, interleaved
///    with heavy churn (cancellations of still-live queries), each event
///    stamped with the batch index it fires before;
///  - the **tuple batches** themselves, with a configurable fraction of
///    the traffic aimed at the same hot spots the queries watch.
///
/// The `overlap_fraction` knob is the probability that an arriving query
/// reuses a live template verbatim (identical region, rate and attribute
/// — the maximal sharing opportunity the fabric's subplan dedup exists
/// for); the remainder get fresh uniformly-placed regions and jittered
/// rates. Everything is deterministic from `seed`, so two runs of the
/// same config (e.g. sharing on vs off) replay byte-identical schedules
/// and streams.

namespace craqr {
namespace bench {

struct WorkloadConfig {
  /// System region; queries and traffic stay inside it.
  geom::Rect region = geom::Rect(0, 0, 8, 8);
  /// Query arrivals over the whole run (live count is lower under churn).
  std::size_t num_queries = 64;
  /// Probability an arrival reuses a hot-spot template verbatim.
  double overlap_fraction = 0.5;
  /// Hot-spot template pool size (0 = derived from num_queries). Kept
  /// small so popular templates accumulate many concurrent subscribers.
  std::size_t num_templates = 0;
  /// Zipf-ish skew of template popularity: template k is picked with
  /// weight (k+1)^-alpha. 0 = uniform.
  double template_alpha = 1.4;
  /// Attributes the queries and tuples spread over.
  std::size_t num_attributes = 2;
  /// Fraction of arrivals that also schedule a cancellation of a live
  /// query later in the run (heavy churn when high).
  double churn_fraction = 0.25;
  /// Batches the schedule spreads its bursts over.
  std::size_t num_batches = 128;
  /// Mean arrivals per burst (arrivals cluster instead of trickling).
  double burst_mean = 8.0;
  /// Edge length range of the compact hot-spot / fresh query regions.
  /// Sized just above one grid cell (the grid's minimum query area) so
  /// most taps are partial-cell carve-outs (P stages).
  double min_extent = 0.28;
  double max_extent = 0.48;
  /// Fraction of regions shaped as thin "corridors": road-segment queries
  /// whose long axis spans several cells while total area stays just above
  /// one cell. Their per-cell selectivity is low, so every tap rescans a
  /// whole cell's thinned stream to deliver a sliver — the regime where a
  /// shared carve-out saves the most work.
  double corridor_fraction = 0.9;
  /// Long-axis length range of corridor regions (random orientation).
  double corridor_length_min = 6.0;
  double corridor_length_max = 7.5;
  /// Query rate range (templates pick one rate and keep it). High rates
  /// relative to the arrival stream keep the F/T prefix nearly
  /// transparent, so the multi-query cost sits in the per-query carve-out
  /// and merge stages — the regime the paper's sharing targets.
  double min_rate = 60.0;
  double max_rate = 240.0;
  /// Fraction of tuple traffic aimed at the hot-spot templates.
  double traffic_skew = 0.85;
  /// Hot traffic samples uniformly from the template region expanded by
  /// this margin on every side (clamped to the system region): sensors
  /// report from the *neighborhood* of a watched corridor, so each tap
  /// rescans a dense cell stream to deliver only the in-region sliver.
  double hot_halo = 0.25;
  /// Tuples per batch.
  std::size_t batch_size = 512;
  /// Simulation-time advance per tuple.
  double dt = 0.0005;
  /// \name Unique-string flood (bounded-memory endurance workloads)
  ///@{
  /// Fraction of tuples carrying a *globally unique* string payload
  /// (sensor free-text: device ids, firmware notes). 0 (the default)
  /// keeps payloads numeric — the pre-governance workload. A flood of
  /// never-repeating strings is what an ungoverned interning pool can
  /// never forget, so this is the adversarial input for the memory
  /// governor's tests and soaks.
  double unique_string_fraction = 0.0;
  /// Pool the flood interns into (null = the process Global() pool).
  /// Point it at the engine's instance pool so the flood and the
  /// governance accounting meet in the same pool.
  ops::ValuePool* value_pool = nullptr;
  ///@}
  /// Master seed; equal seeds replay identical workloads.
  std::uint64_t seed = 0xC17BEA7;
};

/// One query template: the unit of deliberate overlap.
struct QuerySpec {
  ops::AttributeId attribute = 0;
  geom::Rect region;
  double rate = 1.0;
};

/// One schedule event, applied before feeding batch `at_batch`.
struct QueryEvent {
  enum class Kind { kInsert, kCancel };
  Kind kind = Kind::kInsert;
  /// Workload-local slot of the query this event inserts or cancels
  /// (dense 0..num_queries-1 in arrival order; the driver maps slots to
  /// engine query ids).
  std::size_t slot = 0;
  /// kInsert only: what to insert.
  QuerySpec spec;
  std::size_t at_batch = 0;
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(const WorkloadConfig& config);

  const WorkloadConfig& config() const { return config_; }
  /// The hot-spot template pool the schedule draws from.
  const std::vector<QuerySpec>& templates() const { return templates_; }
  /// Arrival/cancel schedule, sorted by at_batch (stable within a batch).
  const std::vector<QueryEvent>& schedule() const { return schedule_; }
  /// Slots still live after the last event (the digest-comparison set).
  std::vector<std::size_t> SurvivorSlots() const;

  /// Generates `num_batches` tuple batches: monotone time, ids dense from
  /// 1, `traffic_skew` of the rows uniform inside a (popularity-weighted)
  /// hot-spot template, the rest uniform over the whole region.
  std::vector<std::vector<ops::Tuple>> MakeBatches() const;

 private:
  QuerySpec FreshSpec(Rng* rng) const;
  std::size_t PickTemplate(Rng* rng) const;

  WorkloadConfig config_;
  std::vector<QuerySpec> templates_;
  std::vector<double> template_cdf_;
  std::vector<QueryEvent> schedule_;
};

}  // namespace bench
}  // namespace craqr
