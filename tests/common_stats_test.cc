#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace craqr {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  const RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Variance(), 0.0);
}

TEST(RunningStatsTest, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 4.0, 4.0, 9.0, -2.0, 7.5};
  RunningStats stats;
  double sum = 0.0;
  for (double x : xs) {
    stats.Add(x);
    sum += x;
  }
  const double mean = sum / xs.size();
  double ss = 0.0;
  for (double x : xs) {
    ss += (x - mean) * (x - mean);
  }
  EXPECT_EQ(stats.count(), xs.size());
  EXPECT_NEAR(stats.Mean(), mean, 1e-12);
  EXPECT_NEAR(stats.Variance(), ss / (xs.size() - 1), 1e-12);
  EXPECT_DOUBLE_EQ(stats.Min(), -2.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 9.0);
  EXPECT_NEAR(stats.Sum(), sum, 1e-12);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  Rng rng(5);
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(2.0, 3.0);
    all.Add(x);
    (i < 400 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.Mean(), all.Mean(), 1e-10);
  EXPECT_NEAR(left.Variance(), all.Variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.Min(), all.Min());
  EXPECT_DOUBLE_EQ(left.Max(), all.Max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_NEAR(b.Mean(), 2.0, 1e-12);
}

TEST(RunningStatsTest, CoefficientOfVariation) {
  RunningStats stats;
  stats.Add(10.0);
  stats.Add(10.0);
  EXPECT_DOUBLE_EQ(stats.CoefficientOfVariation(), 0.0);
  stats.Add(40.0);
  EXPECT_GT(stats.CoefficientOfVariation(), 0.0);
}

TEST(SlidingWindowTest, EvictsOldest) {
  SlidingWindow window(3);
  window.Push(1.0);
  window.Push(2.0);
  window.Push(3.0);
  EXPECT_DOUBLE_EQ(window.Mean(), 2.0);
  window.Push(10.0);  // evicts 1.0
  EXPECT_EQ(window.size(), 3u);
  EXPECT_DOUBLE_EQ(window.Mean(), 5.0);
}

TEST(SlidingWindowTest, FractionAbove) {
  SlidingWindow window(4);
  window.Push(0.0);
  window.Push(1.0);
  window.Push(1.0);
  window.Push(0.0);
  EXPECT_DOUBLE_EQ(window.FractionAbove(0.5), 0.5);
  EXPECT_DOUBLE_EQ(window.FractionAbove(2.0), 0.0);
}

TEST(SlidingWindowTest, ClearResets) {
  SlidingWindow window(2);
  window.Push(5.0);
  window.Clear();
  EXPECT_TRUE(window.empty());
  EXPECT_DOUBLE_EQ(window.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(window.Sum(), 0.0);
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);    // bin 0
  h.Add(9.99);   // bin 4
  h.Add(-5.0);   // clamped to bin 0
  h.Add(100.0);  // clamped to bin 4
  h.Add(4.0);    // bin 2
  EXPECT_EQ(h.BinCount(0), 2u);
  EXPECT_EQ(h.BinCount(2), 1u);
  EXPECT_EQ(h.BinCount(4), 2u);
  EXPECT_EQ(h.TotalCount(), 5u);
  EXPECT_DOUBLE_EQ(h.BinWidth(), 2.0);
  EXPECT_DOUBLE_EQ(h.BinLeft(3), 6.0);
}

TEST(KsUniformTest, UniformSamplesPass) {
  Rng rng(77);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    samples.push_back(rng.Uniform());
  }
  std::sort(samples.begin(), samples.end());
  double p = 0.0;
  const double d = KsTestUniform(samples, &p);
  EXPECT_LT(d, 0.03);
  EXPECT_GT(p, 0.01);
}

TEST(KsUniformTest, SkewedSamplesFail) {
  Rng rng(78);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    const double u = rng.Uniform();
    samples.push_back(u * u);  // heavily skewed toward 0
  }
  std::sort(samples.begin(), samples.end());
  double p = 1.0;
  const double d = KsTestUniform(samples, &p);
  EXPECT_GT(d, 0.1);
  EXPECT_LT(p, 1e-6);
}

TEST(KsUniformTest, EmptySampleIsPValueOne) {
  double p = 0.0;
  EXPECT_DOUBLE_EQ(KsTestUniform({}, &p), 0.0);
  EXPECT_DOUBLE_EQ(p, 1.0);
}

}  // namespace
}  // namespace craqr
