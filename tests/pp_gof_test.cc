#include <gtest/gtest.h>

#include "common/rng.h"
#include "pointprocess/gof.h"
#include "pointprocess/simulate.h"

namespace craqr {
namespace pp {
namespace {

SpaceTimeWindow GofWindow() {
  return SpaceTimeWindow{0.0, 40.0, geom::Rect(0, 0, 4, 4)};
}

TEST(SpatialHomogeneityTest, ValidatesInputs) {
  EXPECT_FALSE(TestSpatialHomogeneity(
                   {}, SpaceTimeWindow{0.0, 0.0, geom::Rect(0, 0, 1, 1)}, 2, 2)
                   .ok());
  EXPECT_FALSE(TestSpatialHomogeneity({}, GofWindow(), 1, 1).ok());
}

TEST(SpatialHomogeneityTest, EmptyPatternPasses) {
  const auto report = TestSpatialHomogeneity({}, GofWindow(), 4, 4);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->n, 0u);
  EXPECT_DOUBLE_EQ(report->p_value, 1.0);
}

TEST(SpatialHomogeneityTest, HomogeneousPatternPasses) {
  Rng rng(21);
  const SpaceTimeWindow w = GofWindow();
  const auto points = SimulateHomogeneous(&rng, 10.0, w);
  ASSERT_TRUE(points.ok());
  const auto report = TestSpatialHomogeneity(*points, w, 4, 4);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->p_value, 1e-3);
  EXPECT_NEAR(report->empirical_rate, 10.0, 1.0);
  EXPECT_GT(report->expected_per_cell, 5.0);
}

TEST(SpatialHomogeneityTest, StronglySkewedPatternFails) {
  Rng rng(22);
  const SpaceTimeWindow w = GofWindow();
  const auto model = LinearIntensity::Make({0.2, 0.0, 3.0, 0.0});
  ASSERT_TRUE(model.ok());
  const auto points = SimulateInhomogeneous(&rng, **model, w);
  ASSERT_TRUE(points.ok());
  const auto report = TestSpatialHomogeneity(*points, w, 4, 4);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->p_value, 1e-8);
  // CV of counts should be far above the homogeneous expectation.
  EXPECT_GT(report->count_cv, 0.3);
}

TEST(SpatialHomogeneityTest, IgnoresPointsOutsideWindow) {
  const SpaceTimeWindow w = GofWindow();
  std::vector<geom::SpaceTimePoint> points = {{5.0, 1.0, 1.0},
                                              {500.0, 1.0, 1.0},
                                              {5.0, 100.0, 1.0}};
  const auto report = TestSpatialHomogeneity(points, w, 2, 2);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->n, 1u);
}

TEST(TemporalUniformityTest, HomogeneousPasses) {
  Rng rng(23);
  const SpaceTimeWindow w = GofWindow();
  const auto points = SimulateHomogeneous(&rng, 5.0, w);
  ASSERT_TRUE(points.ok());
  const auto report = TestTemporalUniformity(*points, w);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->p_value, 1e-3);
  EXPECT_EQ(report->n, points->size());
}

TEST(TemporalUniformityTest, TimeRampFails) {
  Rng rng(24);
  const SpaceTimeWindow w = GofWindow();
  // Strong intensification over time.
  const auto model = LinearIntensity::Make({0.1, 0.5, 0.0, 0.0});
  ASSERT_TRUE(model.ok());
  const auto points = SimulateInhomogeneous(&rng, **model, w);
  ASSERT_TRUE(points.ok());
  const auto report = TestTemporalUniformity(*points, w);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->p_value, 1e-8);
}

TEST(TemporalUniformityTest, EmptyPatternPasses) {
  const auto report = TestTemporalUniformity({}, GofWindow());
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->p_value, 1.0);
}

TEST(EmpiricalRateTest, CountsInsideOnly) {
  const SpaceTimeWindow w{0.0, 10.0, geom::Rect(0, 0, 2, 5)};  // volume 100
  std::vector<geom::SpaceTimePoint> points = {
      {1.0, 1.0, 1.0}, {2.0, 1.0, 1.0}, {11.0, 1.0, 1.0}, {1.0, 3.0, 1.0}};
  EXPECT_NEAR(EmpiricalRate(points, w), 2.0 / 100.0, 1e-12);
  EXPECT_DOUBLE_EQ(
      EmpiricalRate(points, SpaceTimeWindow{0.0, 0.0, geom::Rect()}), 0.0);
}

TEST(EmpiricalRateTest, MatchesSimulatedRate) {
  Rng rng(25);
  const SpaceTimeWindow w = GofWindow();
  const auto points = SimulateHomogeneous(&rng, 7.0, w);
  ASSERT_TRUE(points.ok());
  EXPECT_NEAR(EmpiricalRate(*points, w), 7.0, 0.8);
}

}  // namespace
}  // namespace pp
}  // namespace craqr
