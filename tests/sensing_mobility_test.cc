#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "sensing/mobility.h"

namespace craqr {
namespace sensing {
namespace {

const geom::Rect kRegion(0, 0, 5, 5);

TEST(ReflectTest, InsideIsUnchanged) {
  const auto p = ReflectIntoRect({2.0, 3.0}, kRegion);
  EXPECT_DOUBLE_EQ(p.x, 2.0);
  EXPECT_DOUBLE_EQ(p.y, 3.0);
}

TEST(ReflectTest, MirrorsAcrossBoundaries) {
  const auto p = ReflectIntoRect({-1.0, 6.0}, kRegion);
  EXPECT_DOUBLE_EQ(p.x, 1.0);
  EXPECT_DOUBLE_EQ(p.y, 4.0);
}

TEST(ReflectTest, HandlesLargeExcursions) {
  // Multiple folds still land inside.
  const auto p = ReflectIntoRect({23.7, -18.2}, kRegion);
  EXPECT_TRUE(kRegion.Contains(p));
}

TEST(StaticMobilityTest, NeverMoves) {
  StaticMobility model;
  Rng rng(1);
  geom::SpacePoint p{1.0, 2.0};
  for (int i = 0; i < 10; ++i) {
    p = model.Step(&rng, p, 1.0, kRegion);
  }
  EXPECT_DOUBLE_EQ(p.x, 1.0);
  EXPECT_DOUBLE_EQ(p.y, 2.0);
}

TEST(GaussianWalkTest, Validation) {
  EXPECT_FALSE(GaussianWalkMobility::Make(-1.0).ok());
  EXPECT_TRUE(GaussianWalkMobility::Make(0.0).ok());
}

TEST(GaussianWalkTest, StaysInRegionOverManySteps) {
  auto model = GaussianWalkMobility::Make(0.8).MoveValue();
  Rng rng(2);
  geom::SpacePoint p{2.5, 2.5};
  for (int i = 0; i < 2000; ++i) {
    p = model->Step(&rng, p, 1.0, kRegion);
    ASSERT_TRUE(kRegion.Contains(p)) << "step " << i;
  }
}

TEST(GaussianWalkTest, DisplacementScalesWithSigma) {
  Rng rng_small(3);
  Rng rng_large(3);
  auto small = GaussianWalkMobility::Make(0.01).MoveValue();
  auto large = GaussianWalkMobility::Make(0.5).MoveValue();
  double small_total = 0.0;
  double large_total = 0.0;
  geom::SpacePoint ps{2.5, 2.5};
  geom::SpacePoint pl{2.5, 2.5};
  for (int i = 0; i < 200; ++i) {
    const auto ns = small->Step(&rng_small, ps, 1.0, kRegion);
    const auto nl = large->Step(&rng_large, pl, 1.0, kRegion);
    small_total += std::hypot(ns.x - ps.x, ns.y - ps.y);
    large_total += std::hypot(nl.x - pl.x, nl.y - pl.y);
    ps = ns;
    pl = nl;
  }
  EXPECT_GT(large_total, 10.0 * small_total);
}

TEST(RandomWaypointTest, Validation) {
  EXPECT_FALSE(RandomWaypointMobility::Make(0.0, 1.0).ok());
  EXPECT_FALSE(RandomWaypointMobility::Make(2.0, 1.0).ok());
  EXPECT_TRUE(RandomWaypointMobility::Make(0.5, 1.5).ok());
}

TEST(RandomWaypointTest, SpeedBoundsDisplacement) {
  auto model = RandomWaypointMobility::Make(0.1, 0.3).MoveValue();
  Rng rng(4);
  geom::SpacePoint p{2.5, 2.5};
  for (int i = 0; i < 500; ++i) {
    const auto next = model->Step(&rng, p, 1.0, kRegion);
    const double moved = std::hypot(next.x - p.x, next.y - p.y);
    // One minute at <= 0.3 km/min; allow epsilon for waypoint turns.
    EXPECT_LE(moved, 0.3 + 1e-9);
    ASSERT_TRUE(kRegion.Contains(next));
    p = next;
  }
}

TEST(RandomWaypointTest, EventuallyTraversesTheRegion) {
  auto model = RandomWaypointMobility::Make(0.5, 1.0).MoveValue();
  Rng rng(5);
  geom::SpacePoint p{0.1, 0.1};
  bool visited_far_half = false;
  for (int i = 0; i < 2000 && !visited_far_half; ++i) {
    p = model->Step(&rng, p, 1.0, kRegion);
    visited_far_half = p.x > 2.5 && p.y > 2.5;
  }
  EXPECT_TRUE(visited_far_half);
}

TEST(RandomWaypointTest, CloneStartsFresh) {
  auto model = RandomWaypointMobility::Make(0.5, 1.0).MoveValue();
  Rng rng(6);
  geom::SpacePoint p{2.5, 2.5};
  p = model->Step(&rng, p, 1.0, kRegion);
  auto clone = model->Clone();
  // Independent state: stepping the clone never dereferences the parent's
  // waypoint; both stay in-region.
  Rng rng2(7);
  geom::SpacePoint q{1.0, 1.0};
  for (int i = 0; i < 100; ++i) {
    q = clone->Step(&rng2, q, 1.0, kRegion);
    ASSERT_TRUE(kRegion.Contains(q));
  }
}

TEST(LevyFlightTest, Validation) {
  EXPECT_FALSE(LevyFlightMobility::Make(0.0, 1.0, 1.0).ok());
  EXPECT_FALSE(LevyFlightMobility::Make(1.0, 0.0, 1.0).ok());
  EXPECT_FALSE(LevyFlightMobility::Make(1.0, 1.0, 0.5).ok());
  EXPECT_TRUE(LevyFlightMobility::Make(0.05, 1.5, 2.0).ok());
}

TEST(LevyFlightTest, StaysInRegionAndStepsAreTruncated) {
  auto model = LevyFlightMobility::Make(0.05, 1.2, 1.0).MoveValue();
  Rng rng(8);
  geom::SpacePoint p{2.5, 2.5};
  for (int i = 0; i < 2000; ++i) {
    const auto next = model->Step(&rng, p, 1.0, kRegion);
    ASSERT_TRUE(kRegion.Contains(next));
    p = next;
  }
}

TEST(LevyFlightTest, HasHeavyTailRelativeToMedian) {
  auto model = LevyFlightMobility::Make(0.05, 1.2, 10.0).MoveValue();
  Rng rng(9);
  std::vector<double> steps;
  geom::SpacePoint p{2.5, 2.5};
  const geom::Rect huge(-1000, -1000, 1000, 1000);
  for (int i = 0; i < 5000; ++i) {
    const auto next = model->Step(&rng, p, 1.0, huge);
    steps.push_back(std::hypot(next.x - p.x, next.y - p.y));
    p = next;
  }
  std::sort(steps.begin(), steps.end());
  const double median = steps[steps.size() / 2];
  const double p99 = steps[steps.size() * 99 / 100];
  // Heavy tail: the 99th percentile dwarfs the median.
  EXPECT_GT(p99, 10.0 * median);
}

TEST(MobilityTest, ToStringIsDescriptive) {
  EXPECT_EQ(StaticMobility().ToString(), "Static");
  EXPECT_NE(GaussianWalkMobility::Make(0.1)
                .MoveValue()
                ->ToString()
                .find("GaussianWalk"),
            std::string::npos);
  EXPECT_NE(RandomWaypointMobility::Make(0.1, 0.2)
                .MoveValue()
                ->ToString()
                .find("RandomWaypoint"),
            std::string::npos);
  EXPECT_NE(LevyFlightMobility::Make(0.1, 1.0, 1.0)
                .MoveValue()
                ->ToString()
                .find("LevyFlight"),
            std::string::npos);
}

}  // namespace
}  // namespace sensing
}  // namespace craqr
