#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "fabric/fabricator.h"
#include "runtime/faultpoint.h"
#include "runtime/sharded_fabricator.h"

namespace craqr {
namespace runtime {
namespace {

constexpr ops::AttributeId kRain = 0;
constexpr ops::AttributeId kTemp = 1;

geom::Grid TestGrid() {
  return geom::Grid::Make(geom::Rect(0, 0, 4, 4), 16).MoveValue();
}

fabric::FabricConfig TestFabricConfig() {
  fabric::FabricConfig config;
  config.flatten_batch_size = 32;
  config.seed = 0xC0FFEE;
  return config;
}

/// Deterministic batch of `n` tuples spread over the grid, with times
/// advancing from *t (monotone across batches, as the handler produces).
std::vector<ops::Tuple> MakeBatch(Rng* rng, double* t, std::size_t n,
                                  std::uint64_t first_id) {
  std::vector<ops::Tuple> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ops::Tuple tuple;
    tuple.id = first_id + i;
    tuple.attribute = (i % 3 == 0) ? kTemp : kRain;
    *t += 0.002;
    tuple.point = geom::SpaceTimePoint{*t, rng->Uniform(0.0, 4.0),
                                       rng->Uniform(0.0, 4.0)};
    batch.push_back(tuple);
  }
  return batch;
}

/// Order-sensitive FNV-1a fold over delivered tuples' identity fields —
/// the pin used by every byte-exactness test in this file.
std::uint64_t TupleDigest(const std::vector<ops::Tuple>& tuples) {
  std::uint64_t h = 14695981039346656037ULL;
  auto fold = [&h](const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  };
  for (const auto& tuple : tuples) {
    fold(&tuple.id, sizeof(tuple.id));
    fold(&tuple.attribute, sizeof(tuple.attribute));
    fold(&tuple.point.t, sizeof(tuple.point.t));
    fold(&tuple.point.x, sizeof(tuple.point.x));
    fold(&tuple.point.y, sizeof(tuple.point.y));
  }
  return h;
}

std::vector<std::uint64_t> DeliveredIds(ShardedFabricator* fab,
                                        query::QueryId id) {
  std::vector<std::uint64_t> ids;
  const auto stream = fab->GetStream(id);
  EXPECT_TRUE(stream.ok());
  if (stream.ok()) {
    for (const auto& tuple : stream->sink->tuples()) {
      ids.push_back(tuple.id);
    }
  }
  return ids;
}

// ---------------------------------------------------------------------------
// Direct fabricator SaveState/RestoreState round trip. Three partial
// queries cover the operator-kind zoo: a full-region rain query (U over
// every cell, T chains, F estimators), a nested rain query (shared-prefix
// carve-out when sharing is on), and a temp query (independent attribute
// chains). The pin: after restoring onto a fresh fabricator, feeding both
// the identical remaining workload produces byte-identical deliveries —
// i.e. the snapshot captured every RNG phase and partial F buffer.

struct RoundTripVariant {
  const char* name;
  ops::FlattenMode mode;
  bool sharing;
};

void RunFabricatorRoundTrip(const RoundTripVariant& variant) {
  SCOPED_TRACE(variant.name);
  const geom::Grid grid = TestGrid();
  fabric::FabricConfig config = TestFabricConfig();
  config.flatten_mode = variant.mode;
  config.enable_sharing = variant.sharing;

  auto original = fabric::StreamFabricator::Make(grid, config).MoveValue();

  // slot -> tuples delivered since the last Clear (keyed by insertion
  // order, not query id, so the two fabricators compare by position).
  std::vector<std::vector<ops::Tuple>> delivered(3);
  std::vector<query::QueryId> snapshot_ids;
  const struct {
    ops::AttributeId attribute;
    geom::Rect region;
    double rate;
  } specs[] = {
      {kRain, geom::Rect(0, 0, 4, 4), 6.0},
      {kRain, geom::Rect(1, 1, 3, 3), 3.0},
      {kTemp, geom::Rect(0, 0, 2, 4), 4.0},
  };
  for (std::size_t slot = 0; slot < 3; ++slot) {
    const auto overlaps = grid.Overlaps(specs[slot].region);
    ASSERT_TRUE(overlaps.ok());
    auto* out = &delivered[slot];
    const auto q = original->InsertQueryPartial(
        specs[slot].attribute, specs[slot].region, specs[slot].rate,
        *overlaps, [out](const ops::TupleBatch& batch) {
          for (const auto& tuple : batch.ToTuples()) {
            out->push_back(tuple);
          }
        });
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    snapshot_ids.push_back(q->id);
  }

  // One deterministic tuple tape; the prefix warms the original (partial
  // F batches mid-fill, RNG phases advanced), the suffix is the
  // post-restore comparison workload.
  Rng rng(424242);
  double t = 0.0;
  std::uint64_t next_id = 1;
  std::vector<std::vector<ops::Tuple>> tape;
  for (std::size_t b = 0; b < 11; ++b) {
    tape.push_back(MakeBatch(&rng, &t, 96, next_id));
    next_id += tape.back().size();
  }
  for (std::size_t b = 0; b < 6; ++b) {
    ASSERT_TRUE(original->ProcessBatch(tape[b]).ok());
  }

  std::string blob;
  ASSERT_TRUE(original->SaveState(&blob).ok());
  ASSERT_FALSE(blob.empty());

  // Restore onto a fresh fabricator; the factory wires each snapshot
  // query to the slot its original occupied.
  auto restored = fabric::StreamFabricator::Make(grid, config).MoveValue();
  std::vector<std::vector<ops::Tuple>> redelivered(3);
  std::unordered_map<query::QueryId, query::QueryId> id_map;
  const Status restore = restored->RestoreState(
      blob,
      [&snapshot_ids, &redelivered](query::QueryId snapshot_local_id)
          -> ops::SinkOperator::BatchCallback {
        for (std::size_t slot = 0; slot < snapshot_ids.size(); ++slot) {
          if (snapshot_ids[slot] == snapshot_local_id) {
            auto* out = &redelivered[slot];
            return [out](const ops::TupleBatch& batch) {
              for (const auto& tuple : batch.ToTuples()) {
                out->push_back(tuple);
              }
            };
          }
        }
        return nullptr;
      },
      &id_map);
  ASSERT_TRUE(restore.ok()) << restore.ToString();
  EXPECT_EQ(id_map.size(), 3u);
  ASSERT_TRUE(restored->ValidateInvariants().ok());

  // Same suffix through both; only post-snapshot deliveries compare.
  for (auto& slot : delivered) {
    slot.clear();
  }
  for (std::size_t b = 6; b < tape.size(); ++b) {
    ASSERT_TRUE(original->ProcessBatch(tape[b]).ok());
    ASSERT_TRUE(restored->ProcessBatch(tape[b]).ok());
  }
  std::uint64_t total = 0;
  for (std::size_t slot = 0; slot < 3; ++slot) {
    SCOPED_TRACE("slot=" + std::to_string(slot));
    EXPECT_EQ(TupleDigest(delivered[slot]), TupleDigest(redelivered[slot]));
    EXPECT_EQ(delivered[slot].size(), redelivered[slot].size());
    total += delivered[slot].size();
  }
  EXPECT_GT(total, 0u) << "suffix delivered nothing; round trip is vacuous";
}

TEST(FabricatorCheckpointTest, RoundTripIsByteExactPerOperatorKind) {
  const RoundTripVariant variants[] = {
      {"batch_mle_shared", ops::FlattenMode::kBatch, true},
      {"batch_mle_unshared", ops::FlattenMode::kBatch, false},
      {"online_sgd_shared", ops::FlattenMode::kOnline, true},
  };
  for (const auto& variant : variants) {
    RunFabricatorRoundTrip(variant);
  }
}

// ---------------------------------------------------------------------------
// Runtime-level crash recovery: kill every shard in turn mid-workload and
// pin the delivered streams (content AND order) against a twin that never
// crashed.

ShardedConfig CheckpointedConfig(std::size_t num_shards) {
  ShardedConfig config;
  config.num_shards = num_shards;
  config.fabric = TestFabricConfig();
  config.checkpoint.enabled = true;
  return config;
}

/// Inserts the standard three-query topology into `fab`.
void InsertQueries(ShardedFabricator* fab,
                   std::vector<query::QueryId>* ids) {
  const auto q1 = fab->InsertQuery(kRain, geom::Rect(0, 0, 4, 4), 6.0);
  const auto q2 = fab->InsertQuery(kRain, geom::Rect(1, 1, 3, 3), 3.0);
  const auto q3 = fab->InsertQuery(kTemp, geom::Rect(0, 0, 2, 4), 4.0);
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  ASSERT_TRUE(q3.ok());
  ids->assign({q1->id, q2->id, q3->id});
}

TEST(RuntimeCheckpointTest, CrashingEveryShardInTurnIsByteExact) {
  const std::uint64_t crashes_before =
      obs::GetCounter("craqr.fault.shard_crashes")->value();
  std::uint64_t crashes_injected = 0;
  for (const std::size_t shards : {2u, 4u}) {
    SCOPED_TRACE("num_shards=" + std::to_string(shards));
    const geom::Grid grid = TestGrid();
    auto crashy =
        ShardedFabricator::Make(grid, CheckpointedConfig(shards)).MoveValue();
    ShardedConfig plain = CheckpointedConfig(shards);
    plain.checkpoint.enabled = false;
    auto twin = ShardedFabricator::Make(grid, plain).MoveValue();
    EXPECT_TRUE(crashy->HasCheckpoint());
    EXPECT_FALSE(twin->HasCheckpoint());

    std::vector<query::QueryId> crashy_ids, twin_ids;
    InsertQueries(crashy.get(), &crashy_ids);
    InsertQueries(twin.get(), &twin_ids);

    Rng rng_a(7), rng_b(7);
    double t_a = 0.0, t_b = 0.0;
    std::uint64_t id_a = 1, id_b = 1;
    auto pump = [&](std::size_t batches) {
      for (std::size_t b = 0; b < batches; ++b) {
        auto a = MakeBatch(&rng_a, &t_a, 96, id_a);
        auto c = MakeBatch(&rng_b, &t_b, 96, id_b);
        id_a += a.size();
        id_b += c.size();
        ASSERT_TRUE(crashy->ProcessBatch(a).ok());
        ASSERT_TRUE(twin->ProcessBatch(c).ok());
      }
    };

    pump(4);
    // Kill each shard in turn, with live traffic between the failures —
    // every crash restores from the checkpoint and replays the epochs
    // enqueued since it.
    for (std::size_t victim = 0; victim < shards; ++victim) {
      const Status crash = crashy->InjectShardCrash(victim);
      ASSERT_TRUE(crash.ok()) << crash.ToString();
      ++crashes_injected;
      pump(2);
    }
    ASSERT_TRUE(crashy->ValidateInvariants().ok());
    ASSERT_TRUE(crashy->Drain().ok());
    ASSERT_TRUE(twin->Drain().ok());
    for (std::size_t i = 0; i < crashy_ids.size(); ++i) {
      SCOPED_TRACE("query_slot=" + std::to_string(i));
      const auto ids = DeliveredIds(crashy.get(), crashy_ids[i]);
      EXPECT_FALSE(ids.empty());
      EXPECT_EQ(ids, DeliveredIds(twin.get(), twin_ids[i]));
    }
  }
  EXPECT_EQ(obs::GetCounter("craqr.fault.shard_crashes")->value(),
            crashes_before + crashes_injected);
}

TEST(RuntimeCheckpointTest, RepeatedCrashOfTheSameShardStaysExact) {
  // The replay log survives a restore, so a shard may fail repeatedly
  // between two checkpoints and still recover byte-exactly each time.
  // Query churn first (remove + re-insert) leaves gaps in the shard-local
  // id space, so the snapshot -> restored id translation is NOT the
  // identity — the regression the fault soak first caught: a second crash
  // must resolve attachments through the checkpoint's snapshot ids, not
  // through the previous restore's.
  const geom::Grid grid = TestGrid();
  auto crashy =
      ShardedFabricator::Make(grid, CheckpointedConfig(2)).MoveValue();
  ShardedConfig plain = CheckpointedConfig(2);
  plain.checkpoint.enabled = false;
  auto twin = ShardedFabricator::Make(grid, plain).MoveValue();
  std::vector<query::QueryId> crashy_ids, twin_ids;
  InsertQueries(crashy.get(), &crashy_ids);
  InsertQueries(twin.get(), &twin_ids);
  ASSERT_TRUE(crashy->RemoveQuery(crashy_ids[1]).ok());
  ASSERT_TRUE(twin->RemoveQuery(twin_ids[1]).ok());
  const auto q4 = crashy->InsertQuery(kRain, geom::Rect(0, 0, 2, 2), 5.0);
  const auto p4 = twin->InsertQuery(kRain, geom::Rect(0, 0, 2, 2), 5.0);
  ASSERT_TRUE(q4.ok());
  ASSERT_TRUE(p4.ok());
  crashy_ids[1] = q4->id;
  twin_ids[1] = p4->id;

  Rng rng_a(11), rng_b(11);
  double t_a = 0.0, t_b = 0.0;
  std::uint64_t id_a = 1, id_b = 1;
  for (std::size_t round = 0; round < 6; ++round) {
    auto a = MakeBatch(&rng_a, &t_a, 64, id_a);
    auto b = MakeBatch(&rng_b, &t_b, 64, id_b);
    id_a += a.size();
    id_b += b.size();
    ASSERT_TRUE(crashy->ProcessBatch(a).ok());
    ASSERT_TRUE(twin->ProcessBatch(b).ok());
    ASSERT_TRUE(crashy->InjectShardCrash(0).ok());
    if (round == 3) {
      ASSERT_TRUE(crashy->Checkpoint().ok());  // resets the replay logs
    }
  }
  ASSERT_TRUE(crashy->Drain().ok());
  ASSERT_TRUE(twin->Drain().ok());
  for (std::size_t i = 0; i < crashy_ids.size(); ++i) {
    EXPECT_EQ(DeliveredIds(crashy.get(), crashy_ids[i]),
              DeliveredIds(twin.get(), twin_ids[i]));
  }
}

TEST(RuntimeCheckpointTest, FileRoundTripThenCrashRecovers) {
  const geom::Grid grid = TestGrid();
  auto crashy =
      ShardedFabricator::Make(grid, CheckpointedConfig(2)).MoveValue();
  ShardedConfig plain = CheckpointedConfig(2);
  plain.checkpoint.enabled = false;
  auto twin = ShardedFabricator::Make(grid, plain).MoveValue();
  std::vector<query::QueryId> crashy_ids, twin_ids;
  InsertQueries(crashy.get(), &crashy_ids);
  InsertQueries(twin.get(), &twin_ids);

  Rng rng_a(23), rng_b(23);
  double t_a = 0.0, t_b = 0.0;
  std::uint64_t id_a = 1, id_b = 1;
  auto pump = [&](std::size_t batches) {
    for (std::size_t b = 0; b < batches; ++b) {
      auto a = MakeBatch(&rng_a, &t_a, 96, id_a);
      auto c = MakeBatch(&rng_b, &t_b, 96, id_b);
      id_a += a.size();
      id_b += c.size();
      ASSERT_TRUE(crashy->ProcessBatch(a).ok());
      ASSERT_TRUE(twin->ProcessBatch(c).ok());
    }
  };

  pump(3);
  ASSERT_TRUE(crashy->Checkpoint().ok());
  const std::string path = ::testing::TempDir() + "craqr_checkpoint.bin";
  ASSERT_TRUE(crashy->SaveCheckpointToFile(path).ok());
  const std::uint64_t saved_epoch = crashy->CheckpointEpoch();

  // Reload the file over the in-memory snapshot (same epoch, so the
  // replay-log reset loses nothing), keep pumping, then crash both
  // shards: recovery must restore from the *loaded* state.
  ASSERT_TRUE(crashy->LoadCheckpointFromFile(path).ok());
  EXPECT_EQ(crashy->CheckpointEpoch(), saved_epoch);
  pump(3);
  ASSERT_TRUE(crashy->InjectShardCrash(0).ok());
  ASSERT_TRUE(crashy->InjectShardCrash(1).ok());
  pump(2);
  ASSERT_TRUE(crashy->Drain().ok());
  ASSERT_TRUE(twin->Drain().ok());
  for (std::size_t i = 0; i < crashy_ids.size(); ++i) {
    EXPECT_EQ(DeliveredIds(crashy.get(), crashy_ids[i]),
              DeliveredIds(twin.get(), twin_ids[i]));
  }
  std::remove(path.c_str());
  EXPECT_EQ(crashy->LoadCheckpointFromFile(path).code(),
            StatusCode::kNotFound);
}

TEST(RuntimeCheckpointTest, RequiresEnableFlag) {
  ShardedConfig config;
  config.num_shards = 2;
  config.fabric = TestFabricConfig();
  auto fab = ShardedFabricator::Make(TestGrid(), config).MoveValue();
  EXPECT_FALSE(fab->HasCheckpoint());
  EXPECT_EQ(fab->Checkpoint().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(fab->InjectShardCrash(0).code(),
            StatusCode::kFailedPrecondition);
}

TEST(RuntimeCheckpointTest, TruncatedReplayLogBlocksRecovery) {
  ShardedConfig config = CheckpointedConfig(2);
  config.checkpoint.replay_limit_epochs = 2;
  auto fab = ShardedFabricator::Make(TestGrid(), config).MoveValue();
  std::vector<query::QueryId> ids;
  InsertQueries(fab.get(), &ids);
  EXPECT_EQ(fab->InjectShardCrash(99).code(), StatusCode::kInvalidArgument);

  const std::uint64_t truncated_before =
      obs::GetCounter("craqr.fault.replaylog_truncated")->value();
  Rng rng(31);
  double t = 0.0;
  std::uint64_t next_id = 1;
  for (std::size_t b = 0; b < 6; ++b) {
    auto batch = MakeBatch(&rng, &t, 96, next_id);
    next_id += batch.size();
    ASSERT_TRUE(fab->ProcessBatch(batch).ok());
  }
  // 6 epochs through a 2-epoch replay log: the oldest entries dropped, so
  // byte-exact recovery is refused...
  EXPECT_GT(obs::GetCounter("craqr.fault.replaylog_truncated")->value(),
            truncated_before);
  EXPECT_EQ(fab->InjectShardCrash(0).code(),
            StatusCode::kFailedPrecondition);
  // ...until a fresh checkpoint re-anchors the log.
  ASSERT_TRUE(fab->Checkpoint().ok());
  EXPECT_TRUE(fab->InjectShardCrash(0).ok());
}

// ---------------------------------------------------------------------------
// Engine-level pin: the full closed-loop engine (incentives, budget tuner,
// aggressive rebalancing + work stealing, multi-query sharing) with shard
// crashes injected at epoch boundaries mid-churn must deliver the exact
// byte streams of the unsharded, never-crashed engine.

sensing::CrowdWorld MakeEngineWorld(std::size_t sensors) {
  sensing::PopulationConfig pc;
  pc.region = geom::Rect(0, 0, 6, 6);
  pc.num_sensors = sensors;
  pc.responsiveness_sigma = 0.2;
  Rng rng(5);
  auto population = sensing::SensorPopulation::Make(pc, &rng);
  EXPECT_TRUE(population.ok());
  auto world =
      sensing::CrowdWorld::Make(population.MoveValue(), rng.Fork()).MoveValue();
  sensing::TemperatureField::Params tp;
  sensing::ResponseBehavior device = sensing::ResponseModel::DeviceBehavior();
  EXPECT_TRUE(world
                  .RegisterAttribute(
                      "temp", false,
                      sensing::TemperatureField::Make(tp).MoveValue(), device)
                  .ok());
  sensing::RainCell cell;
  cell.x0 = 0.0;
  cell.y0 = 0.0;
  cell.radius = 3.0;
  sensing::ResponseBehavior human = sensing::ResponseModel::HumanBehavior();
  human.base_logit = 2.0;
  human.delay_mu = -1.0;
  EXPECT_TRUE(world
                  .RegisterAttribute(
                      "rain", true,
                      sensing::RainField::Make({cell}).MoveValue(), human)
                  .ok());
  return world;
}

struct EngineRunResult {
  std::uint64_t rain_digest = 0;
  std::uint64_t temp_digest = 0;
  std::uint64_t tuples_routed = 0;
  std::uint64_t incentive_raises = 0;

  bool SameStreams(const EngineRunResult& o) const {
    return rain_digest == o.rain_digest && temp_digest == o.temp_digest &&
           tuples_routed == o.tuples_routed &&
           incentive_raises == o.incentive_raises;
  }
};

/// The rebalance suite's churn workload (hot-corner rain query, temp query
/// cancelled and replaced mid-run, incentive loop live throughout), with
/// periodic checkpoints and — when `crashes` — the "runtime.shard_crash"
/// fault point armed on an explicit epoch schedule.
void RunCrashChurnEngine(std::size_t num_shards, std::size_t pipeline_depth,
                         bool crashes, EngineRunResult* out) {
  engine::EngineConfig config;
  config.grid_h = 9;
  config.step_dt = 1.0;
  config.fabric.flatten_batch_size = 32;
  config.budget.initial = 24.0;
  config.budget.delta = 8.0;
  config.budget.max = 32.0;
  config.enable_incentives = true;
  config.incentive.max = 8.0;
  config.num_shards = num_shards;
  config.pipeline_depth = pipeline_depth;
  if (num_shards > 1) {
    config.rebalance_every_steps = 1;
    config.rebalance.imbalance_trigger = 1.0;
    config.rebalance.min_cell_tuples = 1;
    config.rebalance.cooldown_events = 1;
    config.enable_work_stealing = true;
    config.checkpoint_every_steps = 3;
  }
  if (crashes) {
    FaultSpec spec;
    spec.at_hits = {7, 19, 26};  // epoch-boundary hits, spread over the run
    spec.param = 1;              // victim = 1 % num_shards
    FaultRegistry::Global().Arm("runtime.shard_crash", spec);
  }
  auto made = engine::CraqrEngine::Make(MakeEngineWorld(80), config);
  ASSERT_TRUE(made.ok());
  auto engine = made.MoveValue();
  const auto rain = engine->SubmitText(
      "ACQUIRE rain FROM REGION(0, 0, 2, 2) RATE 20 PER KM2 PER MIN");
  const auto temp1 = engine->SubmitText(
      "ACQUIRE temp FROM REGION(0, 0, 6, 6) RATE 0.5 PER KM2 PER MIN");
  ASSERT_TRUE(rain.ok());
  ASSERT_TRUE(temp1.ok());
  ASSERT_TRUE(engine->RunFor(12.0).ok());
  ASSERT_TRUE(engine->Cancel(temp1->id).ok());
  ASSERT_TRUE(engine->RunFor(8.0).ok());
  const auto temp2 = engine->SubmitText(
      "ACQUIRE temp FROM REGION(1, 1, 5, 5) RATE 0.4 PER KM2 PER MIN");
  ASSERT_TRUE(temp2.ok());
  ASSERT_TRUE(engine->RunFor(12.0).ok());
  if (crashes) {
    EXPECT_GT(FaultRegistry::Global().fires("runtime.shard_crash"), 0u)
        << "crash schedule never fired; the recovery pin is vacuous";
    FaultRegistry::Global().Reset();
  }

  const ShardedStats stats = engine->Stats();
  out->rain_digest = TupleDigest(rain->sink->tuples());
  out->temp_digest = TupleDigest(temp2->sink->tuples());
  out->tuples_routed = stats.tuples_routed;
  out->incentive_raises = engine->incentives().raises();
}

TEST(EngineCrashRecoveryTest, KillShardMidChurnStaysByteExact) {
  const std::uint64_t crashes_before =
      obs::GetCounter("craqr.fault.shard_crashes")->value();
  for (const std::size_t depth : {1u, 2u}) {
    SCOPED_TRACE("pipeline_depth=" + std::to_string(depth));
    EngineRunResult reference;
    RunCrashChurnEngine(1, depth, /*crashes=*/false, &reference);
    ASSERT_NE(reference.rain_digest, 0u);
    ASSERT_GT(reference.incentive_raises, 0u) << "incentives never engaged";
    for (const std::size_t shards : {2u, 4u}) {
      SCOPED_TRACE("num_shards=" + std::to_string(shards));
      EngineRunResult crashed;
      RunCrashChurnEngine(shards, depth, /*crashes=*/true, &crashed);
      EXPECT_TRUE(reference.SameStreams(crashed));
    }
  }
  EXPECT_GT(obs::GetCounter("craqr.fault.shard_crashes")->value(),
            crashes_before);
}

}  // namespace
}  // namespace runtime
}  // namespace craqr
