#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "sensing/trace.h"

namespace craqr {
namespace sensing {
namespace {

ops::Tuple MakeTuple(std::uint64_t id, double t, double x, double y,
                     ops::AttributeValue value, ops::AttributeId attr = 0) {
  ops::Tuple tuple;
  tuple.id = id;
  tuple.attribute = attr;
  tuple.point = geom::SpaceTimePoint{t, x, y};
  tuple.value = std::move(value);
  tuple.sensor_id = id * 10;
  return tuple;
}

TEST(TraceIoTest, RoundTripsAllValueTypes) {
  std::vector<ops::Tuple> tuples;
  tuples.push_back(MakeTuple(1, 0.5, 1.25, 2.5, ops::AttributeValue{}));
  tuples.push_back(MakeTuple(2, 1.5, 0.0, 0.0, ops::AttributeValue{true}));
  tuples.push_back(MakeTuple(3, 2.5, -1.0, 3.0, ops::AttributeValue{false}));
  tuples.push_back(
      MakeTuple(4, 3.5, 4.0, 5.0, ops::AttributeValue{std::int64_t{-42}}));
  tuples.push_back(
      MakeTuple(5, 4.5, 6.0, 7.0, ops::AttributeValue{19.8125}));
  tuples.push_back(
      MakeTuple(6, 5.5, 8.0, 9.0, ops::AttributeValue{std::string("wet")}));

  std::ostringstream out;
  ASSERT_TRUE(WriteTrace(tuples, &out).ok());
  std::istringstream in(out.str());
  const auto parsed = ReadTrace(&in);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), tuples.size());
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    EXPECT_EQ((*parsed)[i].id, tuples[i].id);
    EXPECT_EQ((*parsed)[i].attribute, tuples[i].attribute);
    EXPECT_EQ((*parsed)[i].point, tuples[i].point);
    EXPECT_EQ((*parsed)[i].sensor_id, tuples[i].sensor_id);
    EXPECT_EQ((*parsed)[i].value, tuples[i].value) << i;
  }
}

TEST(TraceIoTest, PreservesDoublePrecision) {
  std::vector<ops::Tuple> tuples;
  tuples.push_back(MakeTuple(1, 0.1 + 0.2, 1.0 / 3.0, 2.0 / 7.0,
                             ops::AttributeValue{1.0 / 9973.0}));
  std::ostringstream out;
  ASSERT_TRUE(WriteTrace(tuples, &out).ok());
  std::istringstream in(out.str());
  const auto parsed = ReadTrace(&in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ((*parsed)[0].point.t, 0.1 + 0.2);
  EXPECT_DOUBLE_EQ((*parsed)[0].value.AsDouble(), 1.0 / 9973.0);
}

TEST(TraceIoTest, RejectsMalformedLines) {
  for (const char* bad :
       {"1,0,0,0,0,0,b",            // missing field
        "1,0,0,0,0,0,b,2",          // bad bool
        "1,0,0,0,0,0,z,1",          // unknown tag
        "x,0,0,0,0,0,n,",           // bad id
        "1,0,abc,0,0,0,n,"}) {      // bad time
    std::istringstream in(bad);
    EXPECT_FALSE(ReadTrace(&in).ok()) << bad;
  }
}

TEST(TraceIoTest, RejectsCommasInStringValues) {
  std::vector<ops::Tuple> tuples;
  tuples.push_back(
      MakeTuple(1, 0, 0, 0, ops::AttributeValue{std::string("a,b")}));
  std::ostringstream out;
  EXPECT_FALSE(WriteTrace(tuples, &out).ok());
}

TEST(TraceIoTest, SkipsHeaderAndBlankLines) {
  std::istringstream in(
      "id,attribute,t,x,y,sensor_id,type,value\n\n1,0,2.5,1,1,7,d,3.5\n");
  const auto parsed = ReadTrace(&in);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_DOUBLE_EQ((*parsed)[0].value.AsDouble(), 3.5);
}

TEST(TraceIoTest, FileRoundTrip) {
  std::vector<ops::Tuple> tuples;
  for (int i = 0; i < 20; ++i) {
    tuples.push_back(MakeTuple(i, i * 0.5, i * 0.1, i * 0.2,
                               ops::AttributeValue{static_cast<double>(i)}));
  }
  const std::string path = ::testing::TempDir() + "/craqr_trace_test.csv";
  ASSERT_TRUE(WriteTraceFile(tuples, path).ok());
  const auto parsed = ReadTraceFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), tuples.size());
  EXPECT_FALSE(ReadTraceFile(path + ".does-not-exist").ok());
}

std::vector<ops::Tuple> SyntheticTrace(std::size_t n) {
  Rng rng(33);
  std::vector<ops::Tuple> trace;
  for (std::size_t i = 0; i < n; ++i) {
    trace.push_back(MakeTuple(i, rng.Uniform(0.0, 100.0),
                              rng.Uniform(0.0, 4.0), rng.Uniform(0.0, 4.0),
                              ops::AttributeValue{rng.Normal(20.0, 1.0)}));
    trace.back().sensor_id = i % 37;
  }
  return trace;
}

TEST(TraceReplayTest, Validation) {
  EXPECT_FALSE(TraceReplayNetwork::Make({}, geom::Rect()).ok());
  TraceReplayNetwork::Options bad;
  bad.horizon = -1.0;
  EXPECT_FALSE(
      TraceReplayNetwork::Make({}, geom::Rect(0, 0, 1, 1), bad).ok());
}

TEST(TraceReplayTest, ServesMatchingTuplesOnce) {
  auto network =
      TraceReplayNetwork::Make(SyntheticTrace(500), geom::Rect(0, 0, 4, 4))
          .MoveValue();
  AcquisitionRequest request;
  request.attribute = 0;
  request.region = geom::Rect(0, 0, 4, 4);
  request.count = 1000;
  request.now = 10.0;
  request.response_spread = 5.0;
  const auto first = network.SendRequests(request).MoveValue();
  EXPECT_GT(first.size(), 0u);
  for (const auto& tuple : first) {
    EXPECT_GT(tuple.point.t, 10.0);
    EXPECT_LE(tuple.point.t, 16.0);  // spread 5 + horizon 1
  }
  // Re-asking the same window returns nothing: tuples are consumed.
  const auto second = network.SendRequests(request).MoveValue();
  EXPECT_TRUE(second.empty());
  EXPECT_EQ(network.served(), first.size());
  EXPECT_EQ(network.remaining(), 500u - first.size());
}

TEST(TraceReplayTest, FiltersByRegionAndAttribute) {
  auto trace = SyntheticTrace(400);
  // Half the tuples carry a different attribute.
  for (std::size_t i = 0; i < trace.size(); i += 2) {
    trace[i].attribute = 1;
  }
  auto network =
      TraceReplayNetwork::Make(std::move(trace), geom::Rect(0, 0, 4, 4))
          .MoveValue();
  AcquisitionRequest request;
  request.attribute = 1;
  request.region = geom::Rect(0, 0, 2, 4);  // left half only
  request.count = 1000;
  request.now = 0.0;
  request.response_spread = 100.0;
  const auto responses = network.SendRequests(request).MoveValue();
  EXPECT_GT(responses.size(), 0u);
  for (const auto& tuple : responses) {
    EXPECT_EQ(tuple.attribute, 1u);
    EXPECT_LT(tuple.point.x, 2.0);
  }
}

TEST(TraceReplayTest, RespectsCountLimit) {
  auto network =
      TraceReplayNetwork::Make(SyntheticTrace(500), geom::Rect(0, 0, 4, 4))
          .MoveValue();
  AcquisitionRequest request;
  request.attribute = 0;
  request.region = geom::Rect(0, 0, 4, 4);
  request.count = 7;
  request.now = 0.0;
  request.response_spread = 100.0;
  const auto responses = network.SendRequests(request).MoveValue();
  EXPECT_EQ(responses.size(), 7u);
}

TEST(TraceReplayTest, AvailableSensorsCountsDistinctUnconsumed) {
  auto network =
      TraceReplayNetwork::Make(SyntheticTrace(500), geom::Rect(0, 0, 4, 4))
          .MoveValue();
  // 37 distinct sensor ids in the synthetic trace.
  EXPECT_EQ(network.AvailableSensors(geom::Rect(0, 0, 4, 4)), 37u);
  EXPECT_EQ(network.AvailableSensors(geom::Rect(10, 10, 11, 11)), 0u);
}

TEST(TraceReplayTest, RecordThenReplayIsDeterministic) {
  // Capture a live crowd's responses, then replay them: the replayed
  // network serves exactly the recorded tuples.
  PopulationConfig pc;
  pc.region = geom::Rect(0, 0, 4, 4);
  pc.num_sensors = 100;
  Rng rng(88);
  auto population = SensorPopulation::Make(pc, &rng).MoveValue();
  auto world =
      CrowdWorld::Make(std::move(population), rng.Fork()).MoveValue();
  TemperatureField::Params tp;
  ResponseBehavior device = ResponseModel::DeviceBehavior();
  const auto attr =
      world
          .RegisterAttribute("temp", false,
                             TemperatureField::Make(tp).MoveValue(), device)
          .MoveValue();

  AcquisitionRequest request;
  request.attribute = attr;
  request.region = geom::Rect(0, 0, 4, 4);
  request.count = 50;
  request.now = 1.0;
  request.response_spread = 1.0;
  const auto recorded = world.SendRequests(request).MoveValue();
  ASSERT_GT(recorded.size(), 20u);

  // Round-trip through CSV, then replay.
  std::ostringstream out;
  ASSERT_TRUE(WriteTrace(recorded, &out).ok());
  std::istringstream in(out.str());
  auto replayed_trace = ReadTrace(&in).MoveValue();
  auto replay = TraceReplayNetwork::Make(std::move(replayed_trace),
                                         geom::Rect(0, 0, 4, 4))
                    .MoveValue();
  const auto replay_responses = replay.SendRequests(request).MoveValue();
  EXPECT_EQ(replay_responses.size(), recorded.size());
}

}  // namespace
}  // namespace sensing
}  // namespace craqr
