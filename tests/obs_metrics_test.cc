#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/engine.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ops/tuple.h"
#include "sensing/world.h"

/// \file obs_metrics_test.cc
/// \brief Observability subsystem: registry primitives (counters, gauges,
/// log histograms, banks), concurrent-writer exactness, snapshot export
/// (JSON + Prometheus), trace-ring semantics and Chrome export, the
/// CRAQR_LOG_EVERY_N counter, the metrics exporter thread — and the one
/// property everything else rests on: toggling observability does not
/// change a single delivered byte.

namespace craqr {
namespace {

/// Restores the runtime observability switch on scope exit, so a failing
/// test cannot leak a disabled registry into later tests.
class ScopedObsEnabled {
 public:
  explicit ScopedObsEnabled(bool enabled) : saved_(obs::IsEnabled()) {
    obs::SetEnabled(enabled);
  }
  ~ScopedObsEnabled() { obs::SetEnabled(saved_); }

 private:
  bool saved_;
};

// ---------------------------------------------------------------------------
// LogHistogram bucket geometry

TEST(LogHistogramTest, BucketBoundaries) {
  using H = obs::LogHistogram;
  EXPECT_EQ(H::BucketFor(0), 0u);
  EXPECT_EQ(H::BucketFor(1), 1u);
  EXPECT_EQ(H::BucketFor(2), 2u);
  EXPECT_EQ(H::BucketFor(3), 2u);
  EXPECT_EQ(H::BucketFor(4), 3u);
  EXPECT_EQ(H::BucketFor(7), 3u);
  EXPECT_EQ(H::BucketFor(8), 4u);
  // 2^k lands in bucket k+1 (the bucket holding [2^k, 2^(k+1))).
  for (std::size_t k = 0; k < 63; ++k) {
    EXPECT_EQ(H::BucketFor(static_cast<std::uint64_t>(1) << k), k + 1);
    EXPECT_EQ(H::BucketFor((static_cast<std::uint64_t>(1) << (k + 1)) - 1),
              k + 1);
  }
  EXPECT_EQ(H::BucketFor(~static_cast<std::uint64_t>(0)), 64u);

  EXPECT_EQ(H::BucketUpperBound(0), 0u);
  EXPECT_EQ(H::BucketUpperBound(1), 1u);
  EXPECT_EQ(H::BucketUpperBound(4), 15u);
  EXPECT_EQ(H::BucketUpperBound(64), ~static_cast<std::uint64_t>(0));
  // Every value sits inside its own bucket's range.
  for (const std::uint64_t v : {0ull, 1ull, 2ull, 100ull, 65536ull,
                                (1ull << 40) + 17, ~0ull}) {
    const std::size_t b = H::BucketFor(v);
    EXPECT_LE(v, H::BucketUpperBound(b));
    if (b > 0) {
      EXPECT_GT(v, H::BucketUpperBound(b - 1));
    }
  }
}

TEST(LogHistogramTest, SnapshotStatistics) {
  obs::LogHistogram h;
  // 10 values of 100 (bucket 7: [64,128)), 5 of 1000, 1 of 100000.
  for (int i = 0; i < 10; ++i) h.Record(100);
  for (int i = 0; i < 5; ++i) h.Record(1000);
  h.Record(100000);
  const obs::HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 16u);
  EXPECT_EQ(snap.sum, 10u * 100 + 5u * 1000 + 100000u);
  EXPECT_EQ(snap.max, 100000u);
  EXPECT_DOUBLE_EQ(snap.Mean(), static_cast<double>(snap.sum) / 16.0);
  EXPECT_EQ(snap.buckets[obs::LogHistogram::BucketFor(100)], 10u);
  EXPECT_EQ(snap.buckets[obs::LogHistogram::BucketFor(1000)], 5u);
  EXPECT_EQ(snap.buckets[obs::LogHistogram::BucketFor(100000)], 1u);
  // p50's rank-8 falls in the 100s bucket: upper bound 127.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 127.0);
  // p99 and p100 clamp to the exact max, not the rank bucket's 2^k bound.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.99), 100000.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 100000.0);
  // Empty histogram: everything zero.
  const obs::HistogramSnapshot empty = obs::LogHistogram().Snapshot();
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);

  const RunningStats rs = snap.ToRunningStats();
  EXPECT_EQ(rs.count(), 16u);
  // Bucket-midpoint approximation: mean within a factor of 2.
  EXPECT_GT(rs.Mean(), snap.Mean() / 2.0);
  EXPECT_LT(rs.Mean(), snap.Mean() * 2.0);
}

TEST(RunningStatsTest, AddWeightedMatchesRepeatedAdd) {
  RunningStats repeated;
  RunningStats weighted;
  repeated.Add(3.0);
  repeated.Add(3.0);
  repeated.Add(3.0);
  repeated.Add(10.0);
  weighted.AddWeighted(3.0, 3);
  weighted.AddWeighted(10.0, 1);
  weighted.AddWeighted(42.0, 0);  // no-op
  EXPECT_EQ(weighted.count(), repeated.count());
  EXPECT_DOUBLE_EQ(weighted.Mean(), repeated.Mean());
  EXPECT_NEAR(weighted.Variance(), repeated.Variance(), 1e-12);
  EXPECT_DOUBLE_EQ(weighted.Min(), repeated.Min());
  EXPECT_DOUBLE_EQ(weighted.Max(), repeated.Max());
}

// ---------------------------------------------------------------------------
// Registry

TEST(RegistryTest, GetOrCreateReturnsStablePointers) {
  obs::Counter* c1 = obs::GetCounter("test.registry.counter");
  obs::Counter* c2 = obs::GetCounter("test.registry.counter");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, obs::GetCounter("test.registry.counter2"));
  c1->Increment();
  c1->Add(4);
  EXPECT_EQ(c2->value(), 5u);

  obs::Gauge* g = obs::GetGauge("test.registry.gauge");
  g->Set(-7);
  g->Add(3);
  EXPECT_EQ(obs::GetGauge("test.registry.gauge")->value(), -4);

  EXPECT_EQ(obs::GetHistogram("test.registry.hist"),
            obs::GetHistogram("test.registry.hist"));
}

TEST(RegistryTest, CounterBankBoundsAndTopK) {
  obs::CounterBank* bank = obs::GetCounterBank("test.registry.bank", 8);
  ASSERT_NE(bank, nullptr);
  EXPECT_EQ(bank->size(), 8u);
  bank->Add(0, 5);
  bank->Add(3, 20);
  bank->Add(7, 20);
  bank->Add(8, 99);    // out of range: ignored (the router's sentinel)
  bank->Add(100, 99);  // far out of range: ignored
  EXPECT_EQ(bank->Total(), 45u);
  EXPECT_EQ(bank->value(3), 20u);
  EXPECT_EQ(bank->value(8), 0u);
  const auto top = bank->TopK(2);
  ASSERT_EQ(top.size(), 2u);
  // Ties break toward the lower index.
  EXPECT_EQ(top[0].first, 3u);
  EXPECT_EQ(top[0].second, 20u);
  EXPECT_EQ(top[1].first, 7u);
  // Same name, same size: same bank. Larger size: replaced.
  EXPECT_EQ(obs::GetCounterBank("test.registry.bank", 8), bank);
  obs::CounterBank* grown = obs::GetCounterBank("test.registry.bank", 16);
  EXPECT_NE(grown, bank);
  EXPECT_EQ(grown->size(), 16u);
  // The old bank's storage stays valid (cached pointers keep writing).
  bank->Add(0, 1);
  EXPECT_EQ(bank->value(0), 6u);
}

TEST(RegistryTest, ConcurrentWritersAreExact) {
  obs::Counter* counter = obs::GetCounter("test.concurrent.counter");
  obs::LogHistogram* hist = obs::GetHistogram("test.concurrent.hist");
  obs::CounterBank* bank = obs::GetCounterBank("test.concurrent.bank", 4);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  const std::uint64_t base_count = counter->value();
  const std::uint64_t base_hist = hist->Snapshot().count;
  const std::uint64_t base_bank = bank->Total();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([=]() {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter->Increment();
        hist->Record(i & 1023);
        bank->Add(i & 3, 1);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const std::uint64_t expected = kThreads * kPerThread;
  EXPECT_EQ(counter->value() - base_count, expected);
  EXPECT_EQ(hist->Snapshot().count - base_hist, expected);
  EXPECT_EQ(bank->Total() - base_bank, expected);
}

// ---------------------------------------------------------------------------
// Export formats

TEST(SnapshotTest, JsonContainsRegisteredMetrics) {
  obs::GetCounter("test.snapshot.counter")->Add(42);
  obs::GetGauge("test.snapshot.gauge")->Set(-3);
  obs::GetHistogram("test.snapshot.hist")->Record(1000);
  obs::GetCounterBank("test.snapshot.bank", 4)->Add(2, 9);
  const std::string json = obs::SnapshotJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.snapshot.counter\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"test.snapshot.gauge\": -3"), std::string::npos);
  EXPECT_NE(json.find("\"test.snapshot.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"test.snapshot.bank\""), std::string::npos);
  EXPECT_NE(json.find("[2, 9]"), std::string::npos);
  // Structurally sane: balanced braces/brackets, object first and last.
  std::int64_t braces = 0;
  std::int64_t brackets = 0;
  for (const char c : json) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    EXPECT_GE(braces, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(json.front(), '{');
}

TEST(SnapshotTest, PrometheusTextFormat) {
  obs::GetCounter("test.prom.counter")->Add(7);
  obs::GetHistogram("test.prom.hist")->Record(100);
  const std::string text = obs::SnapshotPrometheus();
  EXPECT_NE(text.find("# TYPE test_prom_counter counter"), std::string::npos);
  EXPECT_NE(text.find("test_prom_counter 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_hist histogram"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_count"), std::string::npos);
  EXPECT_NE(text.find("test_prom_hist_sum"), std::string::npos);
}

TEST(ExporterTest, PeriodicSnapshotsAndFinalFlush) {
  const std::string json_path = testing::TempDir() + "/obs_exporter.json";
  const std::string prom_path = testing::TempDir() + "/obs_exporter.prom";
  obs::GetCounter("test.exporter.counter")->Add(11);
  obs::ExporterOptions options;
  options.json_path = json_path;
  options.prometheus_path = prom_path;
  options.interval_seconds = 0.01;
  auto exporter = obs::MetricsExporter::Start(options);
  ASSERT_TRUE(exporter.ok()) << exporter.status().ToString();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  (*exporter)->Stop();
  (*exporter)->Stop();  // idempotent
  EXPECT_GE((*exporter)->snapshots_written(), 1u);
  std::ifstream json_in(json_path);
  ASSERT_TRUE(json_in.good());
  std::stringstream json_body;
  json_body << json_in.rdbuf();
  EXPECT_NE(json_body.str().find("\"test.exporter.counter\": 11"),
            std::string::npos);
  std::ifstream prom_in(prom_path);
  ASSERT_TRUE(prom_in.good());
  std::stringstream prom_body;
  prom_body << prom_in.rdbuf();
  EXPECT_NE(prom_body.str().find("test_exporter_counter 11"),
            std::string::npos);
  std::remove(json_path.c_str());
  std::remove(prom_path.c_str());

  // No output path at all is a configuration error.
  EXPECT_FALSE(obs::MetricsExporter::Start(obs::ExporterOptions()).ok());
}

// ---------------------------------------------------------------------------
// Trace rings

TEST(TraceRingTest, WraparoundKeepsNewestOldestFirst) {
  ScopedObsEnabled on(true);
  obs::TraceRing ring("test.ring", 4);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    ring.Record("span", i, i * 100, i * 100 + 50, i);
  }
  EXPECT_EQ(ring.recorded(), 6u);
  const auto events = ring.SnapshotOrdered();
  ASSERT_EQ(events.size(), 4u);
  // Events 1 and 2 were overwritten; 3..6 remain, oldest first.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].epoch, i + 3);
    EXPECT_EQ(events[i].start_ns, (i + 3) * 100);
  }
}

TEST(TraceRingTest, DisabledSwitchAndZeroCapacity) {
  {
    ScopedObsEnabled off(false);
    obs::TraceRing ring("test.ring.off", 4);
    ring.Record("span", 1, 0, 1, 0);
    EXPECT_EQ(ring.recorded(), 0u);
  }
  EXPECT_EQ(obs::Tracer::Global().CreateRing("test.ring.zero", 0), nullptr);
}

TEST(TracerTest, ChromeTraceJsonShape) {
  ScopedObsEnabled on(true);
  obs::TraceRing* ring =
      obs::Tracer::Global().CreateRing("test.tracer.ring", 8);
  ASSERT_NE(ring, nullptr);
  ring->Record("phasename", 3, 2000, 5000, 17);
  const std::string json = obs::Tracer::Global().ChromeTraceJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("test.tracer.ring"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"phasename\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 3"), std::string::npos);  // (5000-2000)/1000us

  const std::string path = testing::TempDir() + "/obs_trace.json";
  ASSERT_TRUE(obs::Tracer::Global().DumpChromeTrace(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// CRAQR_LOG_EVERY_N

TEST(LogEveryNTest, CounterGating) {
  std::atomic<std::uint64_t> counter{0};
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (internal::ShouldLogEveryN(counter, 3)) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 4);  // i = 0, 3, 6, 9
  std::atomic<std::uint64_t> always{0};
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(internal::ShouldLogEveryN(always, 1));
    EXPECT_TRUE(internal::ShouldLogEveryN(always, 0));
  }
}

// ---------------------------------------------------------------------------
// The determinism pin: observability must not change delivered bytes

std::uint64_t FnvFold(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t StreamDigest(const std::vector<ops::Tuple>& tuples) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const auto& tuple : tuples) {
    h = FnvFold(h, &tuple.id, sizeof(tuple.id));
    h = FnvFold(h, &tuple.sensor_id, sizeof(tuple.sensor_id));
    h = FnvFold(h, &tuple.attribute, sizeof(tuple.attribute));
    h = FnvFold(h, &tuple.point.t, sizeof(tuple.point.t));
    h = FnvFold(h, &tuple.point.x, sizeof(tuple.point.x));
    h = FnvFold(h, &tuple.point.y, sizeof(tuple.point.y));
    const auto kind = static_cast<unsigned char>(tuple.value.kind());
    h = FnvFold(h, &kind, sizeof(kind));
    const std::string rendered = ops::PayloadToString(tuple.value);
    h = FnvFold(h, rendered.data(), rendered.size());
  }
  return h;
}

sensing::CrowdWorld MakeObsWorld(std::size_t sensors) {
  sensing::PopulationConfig pc;
  pc.region = geom::Rect(0, 0, 6, 6);
  pc.num_sensors = sensors;
  pc.responsiveness_sigma = 0.2;
  Rng rng(5);
  auto population = sensing::SensorPopulation::Make(pc, &rng).MoveValue();
  auto world =
      sensing::CrowdWorld::Make(std::move(population), rng.Fork()).MoveValue();
  sensing::TemperatureField::Params tp;
  EXPECT_TRUE(world
                  .RegisterAttribute(
                      "temp", false,
                      sensing::TemperatureField::Make(tp).MoveValue(),
                      sensing::ResponseModel::DeviceBehavior())
                  .ok());
  sensing::RainCell cell;
  cell.x0 = 3.0;
  cell.y0 = 3.0;
  cell.radius = 2.0;
  sensing::ResponseBehavior human = sensing::ResponseModel::HumanBehavior();
  human.base_logit = 2.0;
  human.delay_mu = -1.0;
  EXPECT_TRUE(world
                  .RegisterAttribute(
                      "rain", true,
                      sensing::RainField::Make({cell}).MoveValue(), human)
                  .ok());
  return world;
}

/// One short closed-loop run (budget feedback engaged, tracing on);
/// returns the rain stream digest.
std::uint64_t RunObsWorkload(std::size_t num_shards,
                             std::size_t pipeline_depth) {
  engine::EngineConfig config;
  config.grid_h = 9;
  config.step_dt = 1.0;
  config.fabric.flatten_batch_size = 32;
  config.budget.initial = 24.0;
  config.budget.delta = 8.0;
  config.budget.max = 32.0;
  config.enable_incentives = true;
  config.incentive.max = 8.0;
  config.num_shards = num_shards;
  config.pipeline_depth = pipeline_depth;
  config.trace_capacity = 64;  // tracing on: must also be byte-neutral
  auto engine =
      engine::CraqrEngine::Make(MakeObsWorld(60), config).MoveValue();
  const auto rain = engine->SubmitText(
      "ACQUIRE rain FROM REGION(0, 0, 6, 6) RATE 10 PER KM2 PER MIN");
  EXPECT_TRUE(rain.ok());
  EXPECT_TRUE(engine->RunFor(10.0).ok());
  EXPECT_GT(rain->sink->total_received(), 0u);
  return StreamDigest(rain->sink->tuples());
}

TEST(ObsDeterminismTest, DigestUnchangedByObservabilityToggle) {
  for (const std::size_t depth : {1u, 2u}) {
    SCOPED_TRACE("depth=" + std::to_string(depth));
    std::uint64_t on_digest[2];
    std::uint64_t off_digest[2];
    int i = 0;
    for (const std::size_t shards : {1u, 4u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      {
        ScopedObsEnabled on(true);
        on_digest[i] = RunObsWorkload(shards, depth);
      }
      {
        ScopedObsEnabled off(false);
        off_digest[i] = RunObsWorkload(shards, depth);
      }
      EXPECT_EQ(on_digest[i], off_digest[i])
          << "observability toggle changed the delivered stream";
      ++i;
    }
    // And the usual cross-shard pin still holds with tracing enabled.
    EXPECT_EQ(on_digest[0], on_digest[1]);
  }
}

TEST(ObsInstrumentationTest, EngineRunPopulatesRegistryAndTrace) {
  ScopedObsEnabled on(true);
  const std::uint64_t steps_before =
      obs::GetCounter("craqr.engine.steps")->value();
  const std::uint64_t thin_before =
      obs::GetCounter("craqr.ops.T.evaluations")->value();
  (void)RunObsWorkload(2, 2);
  EXPECT_GT(obs::GetCounter("craqr.engine.steps")->value(), steps_before);
  // Thin operators sit in every PMAT chain; the run must have counted them.
  EXPECT_GT(obs::GetCounter("craqr.ops.T.evaluations")->value(), thin_before);
  // Engine phase histograms collected per step.
  EXPECT_GT(obs::GetHistogram("craqr.engine.phase.world_ns")
                ->Snapshot()
                .count,
            0u);
  // The per-cell routing bank exists for the 9-cell grid and saw tuples.
  obs::CounterBank* bank =
      obs::GetCounterBank("craqr.fabric.cell_routed.h9", 9);
  EXPECT_GT(bank->Total(), 0u);
  // The trace captured engine spans.
  const std::string trace = obs::Tracer::Global().ChromeTraceJson();
  EXPECT_NE(trace.find("\"name\": \"world\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\": \"process\""), std::string::npos);
}

}  // namespace
}  // namespace craqr
