#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "ops/value_pool.h"
#include "runtime/faultpoint.h"
#include "runtime/memory_governor.h"
#include "runtime/sharded_fabricator.h"
#include "workload_gen.h"

/// \file memory_governance_test.cc
/// \brief Bounded-memory endurance pins: generational ValuePool semantics,
/// ApproxBytes accounting, the workload-gen unique-string flood bounded
/// under governance vs linear without, checkpoint/restore spanning a
/// generation retirement, digest equivalence governance on vs off, and
/// graceful degradation under forced hard pressure.

namespace craqr {
namespace runtime {
namespace {

constexpr ops::AttributeId kRain = 0;
constexpr ops::AttributeId kTemp = 1;

geom::Grid TestGrid() {
  return geom::Grid::Make(geom::Rect(0, 0, 4, 4), 16).MoveValue();
}

/// A 48-byte-ish unique string: long enough to defeat SSO so every flood
/// entry costs real heap bytes.
std::string UniqueString(std::uint64_t n) {
  return "flood-" + std::to_string(n) + "-payload-xxxxxxxxxxxxxxxxxxxxxxxx";
}

/// Order-sensitive FNV-1a digest over a delivered stream, folding string
/// payloads *by value* through `pool` so two runtimes with different
/// handle layouts (e.g. governance on vs off) compare content-equal.
std::uint64_t ValueDigest(const std::vector<ops::Tuple>& tuples,
                          const ops::ValuePool& pool) {
  std::uint64_t h = 14695981039346656037ULL;
  auto fold = [&h](const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  };
  for (const auto& tuple : tuples) {
    fold(&tuple.id, sizeof(tuple.id));
    fold(&tuple.attribute, sizeof(tuple.attribute));
    fold(&tuple.point.t, sizeof(tuple.point.t));
    fold(&tuple.point.x, sizeof(tuple.point.x));
    fold(&tuple.point.y, sizeof(tuple.point.y));
    if (tuple.value.kind() == ops::PayloadKind::kString) {
      const std::string& s = tuple.value.AsString(pool);  // throws if the
      fold(s.data(), s.size());  // handle's generation was retired unsafely
    }
  }
  return h;
}

// ---------------------------------------------------------------------------
// Satellite (a): ApproxBytes must charge the dedup index's node and bucket
// overhead and the deque block overhead, not just string payload bytes.

TEST(ValuePoolApproxBytesTest, TracksIndexAndContainerOverhead) {
  ops::ValuePool pool;
  const std::size_t n = 1000;
  std::size_t payload = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string s = UniqueString(i);
    ASSERT_GT(s.size(), sizeof(std::string));  // heap-allocated, not SSO
    payload += s.size();
    pool.Intern(s);
  }
  const std::size_t bytes = pool.ApproxBytes();
  // Lower bound: payload + per-entry string control block + per-entry
  // index node (bucket pointer + cached hash + key/value pair). The old
  // accounting (payload + control block only) sits below this band.
  const std::size_t per_entry_overhead =
      sizeof(std::string) + sizeof(void*) + sizeof(std::size_t) +
      sizeof(std::pair<std::string_view, ops::ValueId>);
  EXPECT_GE(bytes, payload + n * per_entry_overhead);
  // Generous upper bound: the estimate must stay the same order of
  // magnitude as the real footprint, not balloon.
  EXPECT_LE(bytes, 2 * payload + n * 256);
}

// ---------------------------------------------------------------------------
// Generational semantics: promotion on second sight, wholesale reclamation
// of one-shot strings, retired handles fail loudly.

TEST(ValuePoolGenerationsTest, PromotionSurvivesRetirementOneShotsDie) {
  ops::ValuePool pool;
  EXPECT_FALSE(pool.generations_enabled());
  pool.EnableGenerations();
  EXPECT_TRUE(pool.generations_enabled());
  EXPECT_EQ(pool.current_generation(), 1u);

  const ops::StringHandle first = pool.InternHandle("hot-categorical");
  EXPECT_EQ(first.generation, 1u);
  // Second sight within the generation promotes to the persistent tier.
  const ops::StringHandle promoted = pool.InternHandle("hot-categorical");
  EXPECT_EQ(promoted.generation, 0u);

  const ops::StringHandle one_shot = pool.InternHandle("one-shot-device-id");
  EXPECT_EQ(one_shot.generation, 1u);

  EXPECT_EQ(pool.RotateGeneration(), 2u);
  EXPECT_GT(pool.RetireGenerationsBelow(pool.current_generation()), 0u);
  EXPECT_EQ(pool.generations_retired(), 1u);
  EXPECT_GT(pool.retired_bytes(), 0u);

  // The promoted copy survives; the retired handles fail loudly.
  EXPECT_EQ(pool.Get(promoted.id, promoted.generation), "hot-categorical");
  EXPECT_THROW(pool.Get(one_shot.id, one_shot.generation), std::out_of_range);

  // Re-interning after retirement lands in the current generation and is
  // readable again.
  const ops::StringHandle again = pool.InternHandle("one-shot-device-id");
  EXPECT_EQ(again.generation, 2u);
  EXPECT_EQ(pool.Get(again.id, again.generation), "one-shot-device-id");
}

TEST(ValuePoolGenerationsTest, UniqueFloodPlateausWithRetirement) {
  ops::ValuePool governed;
  ops::ValuePool ungoverned;
  governed.EnableGenerations();
  const std::size_t rounds = 12;
  const std::size_t per_round = 500;
  std::size_t governed_mid = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < per_round; ++i) {
      const std::string s = UniqueString(r * per_round + i);
      governed.InternHandle(s);
      ungoverned.InternHandle(s);
    }
    governed.RotateGeneration();
    governed.RetireGenerationsBelow(governed.current_generation());
    if (r == 1) {
      governed_mid = governed.ApproxBytes();
    }
  }
  EXPECT_EQ(governed.generations_retired(), rounds);
  // Bounded vs linear: the governed pool holds only the (empty) current
  // generation while the ungoverned one holds every flood string.
  EXPECT_LT(governed.ApproxBytes(), ungoverned.ApproxBytes() / 4);
  // Plateau: the governed footprint after 12 rounds is no worse than
  // double its footprint after 2.
  EXPECT_LE(governed.ApproxBytes(), 2 * governed_mid + 1024);
  EXPECT_EQ(ungoverned.size(), rounds * per_round);
}

// ---------------------------------------------------------------------------
// Satellite (c): the workload generator's unique-string flood through a
// real sharded runtime — governed pool bytes stay bounded, ungoverned grow
// linearly, and the delivered streams stay value-identical.

struct SoakRuntime {
  std::unique_ptr<ShardedFabricator> fab;
  std::vector<query::QueryId> ids;
};

SoakRuntime BuildRuntime(ops::ValuePool* pool, bool governed,
                         std::size_t shards, bool checkpointed) {
  ShardedConfig config;
  config.num_shards = shards;
  config.fabric.flatten_batch_size = 32;
  config.fabric.seed = 0xC0FFEE;
  config.fabric.sink_capacity = 64;  // bounded live-string holders
  config.fabric.value_pool = pool;
  config.checkpoint.enabled = checkpointed;
  if (governed) {
    // Always-soft governance: every poll runs value-preserving
    // reclamation, never the hard degradation path (digest-safe).
    config.memory.budget_bytes = std::size_t(1) << 40;
    config.memory.soft_watermark = 0.0;
    config.memory.hard_watermark = 2.0;
  }
  SoakRuntime rt;
  rt.fab = ShardedFabricator::Make(TestGrid(), config).MoveValue();
  const struct {
    ops::AttributeId attribute;
    geom::Rect region;
    double rate;
  } specs[] = {
      {kRain, geom::Rect(0, 0, 4, 4), 6.0},
      {kRain, geom::Rect(1, 1, 3, 3), 3.0},
      {kTemp, geom::Rect(0, 0, 2, 4), 4.0},
  };
  for (const auto& spec : specs) {
    auto q = rt.fab->InsertQuery(spec.attribute, spec.region, spec.rate);
    EXPECT_TRUE(q.ok());
    rt.ids.push_back(q->id);
  }
  return rt;
}

TEST(MemoryGovernanceTest, WorkloadFloodBoundedOnVsLinearOff) {
  ops::ValuePool pool_on;
  ops::ValuePool pool_off;
  SoakRuntime on = BuildRuntime(&pool_on, /*governed=*/true, 2, false);
  SoakRuntime off = BuildRuntime(&pool_off, /*governed=*/false, 2, false);

  const std::size_t rounds = 16;
  std::size_t on_mid = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    bench::WorkloadConfig wc;
    wc.region = geom::Rect(0, 0, 4, 4);
    wc.num_batches = 2;
    wc.batch_size = 256;
    wc.num_attributes = 2;
    wc.unique_string_fraction = 1.0;
    wc.seed = 0x5EED0 + r;
    // Same logical stream into each runtime, interned in its own pool.
    for (auto* target : {&on, &off}) {
      bench::WorkloadConfig per = wc;
      per.value_pool = target == &on ? &pool_on : &pool_off;
      bench::WorkloadGenerator gen(per);
      for (const auto& batch : gen.MakeBatches()) {
        ASSERT_TRUE(target->fab->ProcessBatch(batch).ok());
      }
    }
    ASSERT_TRUE(on.fab->GovernMemory().ok());
    if (r == 5) {
      // Plateau reference: by round 5 the bounded sinks are mostly warm;
      // from here the governed footprint must stop growing (within noise)
      // while the ungoverned pool keeps accreting every flood string.
      on_mid = pool_on.ApproxBytes();
    }
  }

  // Bounded vs linear growth.
  EXPECT_GT(pool_on.generations_retired(), 0u);
  EXPECT_LT(pool_on.ApproxBytes(), pool_off.ApproxBytes() / 3);
  EXPECT_LE(pool_on.ApproxBytes(), 2 * on_mid);

  // Snapshot plumbs the *actual* pool and governance telemetry (satellite
  // b: no ValuePool::Global() hardcode).
  const ShardedStats stats = on.fab->Snapshot();
  EXPECT_EQ(stats.value_pool_bytes, pool_on.ApproxBytes());
  EXPECT_EQ(stats.pool_generations_retired, pool_on.generations_retired());
  EXPECT_EQ(stats.memory_pressure, 1);  // always-soft watermarks
  EXPECT_FALSE(on.fab->degraded());
  const ShardedStats off_stats = off.fab->Snapshot();
  EXPECT_EQ(off_stats.value_pool_bytes, pool_off.ApproxBytes());
  EXPECT_EQ(off_stats.memory_pressure, 0);

  // Soft governance is value-preserving: delivered streams stay
  // content-identical with governance on vs off.
  for (std::size_t i = 0; i < on.ids.size(); ++i) {
    const auto sa = on.fab->GetStream(on.ids[i]);
    const auto sb = off.fab->GetStream(off.ids[i]);
    ASSERT_TRUE(sa.ok() && sb.ok());
    const std::uint64_t da = ValueDigest(sa->sink->tuples(), pool_on);
    const std::uint64_t db = ValueDigest(sb->sink->tuples(), pool_off);
    EXPECT_EQ(da, db) << "query slot " << i;
    EXPECT_NE(da, 0u);
  }
}

// ---------------------------------------------------------------------------
// Satellite (c): checkpoint -> generation retirement -> crash -> restore.
// The checkpoint serializes strings by value and re-interns on restore, so
// a snapshot taken *before* a retirement must restore cleanly *after* it.

TEST(MemoryGovernanceTest, CheckpointRestoreSpansGenerationRetirement) {
  ops::ValuePool pool;
  ops::ValuePool twin_pool;
  SoakRuntime governed =
      BuildRuntime(&pool, /*governed=*/true, 2, /*checkpointed=*/true);
  SoakRuntime twin =
      BuildRuntime(&twin_pool, /*governed=*/false, 2, /*checkpointed=*/false);

  Rng rng_a(424242), rng_b(424242);
  double t_a = 0.0, t_b = 0.0;
  std::uint64_t next = 1;
  auto make_batch = [](Rng* rng, double* t, std::uint64_t first,
                       ops::ValuePool* p) {
    std::vector<ops::Tuple> batch;
    for (std::size_t i = 0; i < 96; ++i) {
      ops::Tuple tuple;
      tuple.id = first + i;
      tuple.attribute = (i % 3 == 0) ? kTemp : kRain;
      *t += 0.002;
      tuple.point = geom::SpaceTimePoint{*t, rng->Uniform(0.0, 4.0),
                                         rng->Uniform(0.0, 4.0)};
      tuple.value = ops::PayloadRef::String(UniqueString(first + i), *p);
      batch.push_back(tuple);
    }
    return batch;
  };

  for (std::size_t round = 0; round < 12; ++round) {
    ASSERT_TRUE(
        governed.fab->ProcessBatch(make_batch(&rng_a, &t_a, next, &pool))
            .ok());
    ASSERT_TRUE(
        twin.fab->ProcessBatch(make_batch(&rng_b, &t_b, next, &twin_pool))
            .ok());
    next += 96;
    if (round == 3) {
      ASSERT_TRUE(governed.fab->Checkpoint().ok());
    }
    // Governance retires a generation *after* the checkpoint was taken:
    // the serialized strings must not dangle on restore.
    ASSERT_TRUE(governed.fab->GovernMemory().ok());
    if (round == 6) {
      ASSERT_TRUE(governed.fab->InjectShardCrash(0).ok());
    }
    if (round == 9) {
      ASSERT_TRUE(governed.fab->InjectShardCrash(1).ok());
    }
  }
  ASSERT_TRUE(governed.fab->Drain().ok());
  ASSERT_TRUE(twin.fab->Drain().ok());
  ASSERT_TRUE(governed.fab->ValidateInvariants().ok());
  EXPECT_GT(pool.generations_retired(), 0u);

  for (std::size_t i = 0; i < governed.ids.size(); ++i) {
    const auto sa = governed.fab->GetStream(governed.ids[i]);
    const auto sb = twin.fab->GetStream(twin.ids[i]);
    ASSERT_TRUE(sa.ok() && sb.ok());
    const std::uint64_t da = ValueDigest(sa->sink->tuples(), pool);
    const std::uint64_t db = ValueDigest(sb->sink->tuples(), twin_pool);
    EXPECT_EQ(da, db) << "query slot " << i;
    EXPECT_NE(da, 0u);
  }
}

// ---------------------------------------------------------------------------
// Acceptance pin: delivered-stream digests are byte-exact governance on vs
// off across shard counts and emulated pipeline depths, under query churn
// plus crash/restore on the governed runtime.

TEST(MemoryGovernanceTest, DigestEquivalenceAcrossShardsAndDepths) {
  for (const std::size_t shards : {1u, 2u, 4u}) {
    for (const std::size_t depth : {1u, 2u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " depth=" + std::to_string(depth));
      ops::ValuePool pool_on;
      ops::ValuePool pool_off;
      SoakRuntime on =
          BuildRuntime(&pool_on, /*governed=*/true, shards, true);
      SoakRuntime off =
          BuildRuntime(&pool_off, /*governed=*/false, shards, false);

      Rng rng_a(7777), rng_b(7777);
      double t_a = 0.0, t_b = 0.0;
      std::uint64_t next = 1;
      query::QueryId churn_on = 0, churn_off = 0;
      const std::size_t rounds = 30;
      for (std::size_t r = 0; r < rounds; ++r) {
        // Identical topology churn on both runtimes.
        if (r % 7 == 5) {
          if (churn_on != 0) {
            ASSERT_TRUE(on.fab->RemoveQuery(churn_on).ok());
            ASSERT_TRUE(off.fab->RemoveQuery(churn_off).ok());
          }
          auto qa = on.fab->InsertQuery(kRain, geom::Rect(0, 0, 2, 2), 5.0);
          auto qb = off.fab->InsertQuery(kRain, geom::Rect(0, 0, 2, 2), 5.0);
          ASSERT_TRUE(qa.ok() && qb.ok());
          churn_on = qa->id;
          churn_off = qb->id;
        }
        auto build = [&](Rng* rng, double* t, ops::ValuePool* p) {
          std::vector<ops::Tuple> tuples;
          for (std::size_t i = 0; i < 64; ++i) {
            ops::Tuple tuple;
            tuple.id = next + i;
            tuple.attribute = (i % 3 == 0) ? kTemp : kRain;
            *t += 0.002;
            tuple.point = geom::SpaceTimePoint{*t, rng->Uniform(0.0, 4.0),
                                               rng->Uniform(0.0, 4.0)};
            if (i % 2 == 0) {
              tuple.value =
                  ops::PayloadRef::String(UniqueString(next + i), *p);
            }
            tuples.push_back(tuple);
          }
          ops::TupleBatch batch;
          batch.Assign(tuples);
          return batch;
        };
        ops::TupleBatch a = build(&rng_a, &t_a, &pool_on);
        ops::TupleBatch b = build(&rng_b, &t_b, &pool_off);
        next += 64;
        const std::uint64_t epoch = r + 1;
        ASSERT_TRUE(on.fab->EnqueueBatch(a, epoch).ok());
        ASSERT_TRUE(off.fab->EnqueueBatch(b, epoch).ok());
        // Emulated pipeline depth: drain `depth` epochs behind the head.
        if (epoch > depth) {
          ASSERT_TRUE(on.fab->DrainThrough(epoch - depth).ok());
          ASSERT_TRUE(off.fab->DrainThrough(epoch - depth).ok());
        }
        if (r % 3 == 2) {
          ASSERT_TRUE(on.fab->GovernMemory().ok());
        }
        if (r == 8 || r == 16) {
          ASSERT_TRUE(on.fab->Checkpoint().ok());
        }
        if (r == 10 || r == 20) {
          ASSERT_TRUE(on.fab->InjectShardCrash(r % shards).ok());
        }
      }
      ASSERT_TRUE(on.fab->Drain().ok());
      ASSERT_TRUE(off.fab->Drain().ok());
      EXPECT_GT(pool_on.generations_retired(), 0u);

      std::vector<query::QueryId> ids_on = on.ids;
      std::vector<query::QueryId> ids_off = off.ids;
      if (churn_on != 0) {
        ids_on.push_back(churn_on);
        ids_off.push_back(churn_off);
      }
      for (std::size_t i = 0; i < ids_on.size(); ++i) {
        const auto sa = on.fab->GetStream(ids_on[i]);
        const auto sb = off.fab->GetStream(ids_off[i]);
        ASSERT_TRUE(sa.ok() && sb.ok());
        const std::uint64_t da = ValueDigest(sa->sink->tuples(), pool_on);
        const std::uint64_t db = ValueDigest(sb->sink->tuples(), pool_off);
        EXPECT_EQ(da, db) << "query slot " << i;
        EXPECT_NE(da, 0u);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Hard pressure: forced through the "runtime.mem_pressure" fault site —
// deliveries shed instead of the process growing without bound, degraded()
// reports true, and everything recovers once pressure recedes.

TEST(MemoryGovernanceTest, HardPressureDegradesAndRecovers) {
  FaultRegistry::Global().Reset();
  ops::ValuePool pool;
  // Real watermarks never trip (tiny usage vs 1 TiB budget); the fault
  // site forces the level deterministically.
  ShardedConfig config;
  config.num_shards = 2;
  config.fabric.flatten_batch_size = 32;
  config.fabric.seed = 0xC0FFEE;
  config.fabric.value_pool = &pool;
  config.memory.budget_bytes = std::size_t(1) << 40;
  auto fab = ShardedFabricator::Make(TestGrid(), config).MoveValue();
  auto q = fab->InsertQuery(kRain, geom::Rect(0, 0, 4, 4), 50.0);
  ASSERT_TRUE(q.ok());

  Rng rng(31337);
  double t = 0.0;
  std::uint64_t next = 1;
  auto feed = [&]() {
    std::vector<ops::Tuple> batch;
    for (std::size_t i = 0; i < 64; ++i) {
      ops::Tuple tuple;
      tuple.id = next++;
      tuple.attribute = kRain;
      t += 0.002;
      tuple.point = geom::SpaceTimePoint{t, rng.Uniform(0.0, 4.0),
                                         rng.Uniform(0.0, 4.0)};
      batch.push_back(tuple);
    }
    ASSERT_TRUE(fab->ProcessBatch(batch).ok());
  };

  feed();
  ASSERT_TRUE(fab->GovernMemory().ok());
  EXPECT_FALSE(fab->degraded());
  EXPECT_EQ(fab->memory_pressure(), MemoryPressure::kNone);
  const std::size_t before = q->sink->tuples().size();
  EXPECT_GT(before, 0u);

  // Force hard pressure (param 2 = hard).
  FaultSpec spec;
  spec.probability = 1.0;
  spec.param = 2;
  FaultRegistry::Global().Arm("runtime.mem_pressure", spec);
  ASSERT_TRUE(fab->GovernMemory().ok());
  EXPECT_TRUE(fab->degraded());
  EXPECT_EQ(fab->memory_pressure(), MemoryPressure::kHard);
  EXPECT_EQ(fab->Snapshot().memory_pressure, 2);

  // Under hard pressure deliveries shed (spool/drop) instead of reaching
  // the sink; the runtime keeps accepting input and survives.
  feed();
  feed();
  EXPECT_EQ(q->sink->tuples().size(), before);

  // Pressure recedes: the next poll clears degradation and deliveries
  // flow again.
  FaultRegistry::Global().Reset();
  ASSERT_TRUE(fab->GovernMemory().ok());
  EXPECT_FALSE(fab->degraded());
  EXPECT_EQ(fab->memory_pressure(), MemoryPressure::kNone);
  feed();
  EXPECT_GT(q->sink->tuples().size(), before);
}

}  // namespace
}  // namespace runtime
}  // namespace craqr
