#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geometry/rect.h"

namespace craqr {
namespace geom {
namespace {

TEST(RectTest, MakeValidatesCorners) {
  EXPECT_TRUE(Rect::Make(0, 0, 1, 1).ok());
  EXPECT_FALSE(Rect::Make(1, 0, 0, 1).ok());
  EXPECT_FALSE(Rect::Make(0, 1, 1, 1).ok());
  EXPECT_FALSE(Rect::Make(0, 0, 0, 1).ok());
}

TEST(RectTest, AreaWidthHeight) {
  const Rect r(1, 2, 4, 8);
  EXPECT_DOUBLE_EQ(r.Width(), 3.0);
  EXPECT_DOUBLE_EQ(r.Height(), 6.0);
  EXPECT_DOUBLE_EQ(r.Area(), 18.0);
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_TRUE(Rect().IsEmpty());
}

TEST(RectTest, HalfOpenContainment) {
  const Rect r(0, 0, 2, 2);
  EXPECT_TRUE(r.Contains(0.0, 0.0));
  EXPECT_TRUE(r.Contains(1.999, 1.999));
  EXPECT_FALSE(r.Contains(2.0, 1.0));
  EXPECT_FALSE(r.Contains(1.0, 2.0));
  EXPECT_FALSE(r.Contains(-0.001, 1.0));
}

TEST(RectTest, ContainsRect) {
  const Rect outer(0, 0, 10, 10);
  EXPECT_TRUE(outer.ContainsRect(Rect(1, 1, 9, 9)));
  EXPECT_TRUE(outer.ContainsRect(outer));
  EXPECT_FALSE(outer.ContainsRect(Rect(5, 5, 11, 9)));
}

TEST(RectTest, Center) {
  const Rect r(0, 2, 4, 10);
  EXPECT_DOUBLE_EQ(r.Center().x, 2.0);
  EXPECT_DOUBLE_EQ(r.Center().y, 6.0);
}

TEST(RectTest, Intersection) {
  const Rect a(0, 0, 4, 4);
  const Rect b(2, 2, 6, 6);
  const auto overlap = a.Intersection(b);
  ASSERT_TRUE(overlap.has_value());
  EXPECT_EQ(*overlap, Rect(2, 2, 4, 4));
  EXPECT_DOUBLE_EQ(a.OverlapArea(b), 4.0);
}

TEST(RectTest, DisjointIntersectionIsEmpty) {
  const Rect a(0, 0, 1, 1);
  const Rect b(2, 2, 3, 3);
  EXPECT_FALSE(a.Intersection(b).has_value());
  EXPECT_TRUE(a.IsDisjoint(b));
  // Touching edges have zero overlap area -> disjoint.
  EXPECT_TRUE(a.IsDisjoint(Rect(1, 0, 2, 1)));
}

TEST(RectTest, UnionCompatibilityRequiresFullCommonSide) {
  const Rect a(0, 0, 2, 2);
  // Right neighbour with equal vertical extent: compatible.
  EXPECT_TRUE(a.IsUnionCompatible(Rect(2, 0, 5, 2)));
  // Above with equal horizontal extent: compatible.
  EXPECT_TRUE(a.IsUnionCompatible(Rect(0, 2, 2, 3)));
  // Adjacent but with a shorter common side: not compatible.
  EXPECT_FALSE(a.IsUnionCompatible(Rect(2, 0, 4, 1)));
  // Diagonal: not compatible.
  EXPECT_FALSE(a.IsUnionCompatible(Rect(2, 2, 4, 4)));
  // Overlapping: not compatible.
  EXPECT_FALSE(a.IsUnionCompatible(Rect(1, 0, 3, 2)));
}

TEST(RectTest, UnionWithProducesBoundingRect) {
  const Rect a(0, 0, 2, 2);
  const auto merged = a.UnionWith(Rect(2, 0, 5, 2));
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(*merged, Rect(0, 0, 5, 2));
  EXPECT_EQ(a.UnionWith(Rect(3, 0, 5, 2)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(RectTest, SubtractFullCoverIsEmpty) {
  const Rect outer(0, 0, 4, 4);
  EXPECT_TRUE(Rect::Subtract(outer, outer).empty());
  EXPECT_TRUE(Rect::Subtract(outer, Rect(-1, -1, 5, 5)).empty());
}

TEST(RectTest, SubtractDisjointReturnsOuter) {
  const Rect outer(0, 0, 4, 4);
  const auto pieces = Rect::Subtract(outer, Rect(5, 5, 6, 6));
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], outer);
}

TEST(RectTest, SubtractCenterHoleGivesFourPieces) {
  const Rect outer(0, 0, 4, 4);
  const Rect hole(1, 1, 3, 3);
  const auto pieces = Rect::Subtract(outer, hole);
  EXPECT_EQ(pieces.size(), 4u);
  double total = 0.0;
  for (const auto& piece : pieces) {
    total += piece.Area();
    EXPECT_TRUE(piece.IsDisjoint(hole));
    EXPECT_TRUE(outer.ContainsRect(piece));
  }
  EXPECT_NEAR(total, outer.Area() - hole.Area(), 1e-12);
}

/// Property sweep: random inner rectangles; pieces must be pairwise
/// disjoint, disjoint from the hole, and cover exactly outer \ inner.
class SubtractPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SubtractPropertyTest, PiecesTileTheDifference) {
  Rng rng(GetParam());
  const Rect outer(0, 0, 10, 10);
  for (int iter = 0; iter < 50; ++iter) {
    const double x0 = rng.Uniform(-2.0, 11.0);
    const double y0 = rng.Uniform(-2.0, 11.0);
    const double x1 = x0 + rng.Uniform(0.1, 8.0);
    const double y1 = y0 + rng.Uniform(0.1, 8.0);
    const Rect inner(x0, y0, x1, y1);
    const auto pieces = Rect::Subtract(outer, inner);
    double total = 0.0;
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      total += pieces[i].Area();
      EXPECT_TRUE(outer.ContainsRect(pieces[i]));
      EXPECT_DOUBLE_EQ(pieces[i].OverlapArea(inner), 0.0);
      for (std::size_t j = i + 1; j < pieces.size(); ++j) {
        EXPECT_TRUE(pieces[i].IsDisjoint(pieces[j]));
      }
    }
    EXPECT_NEAR(total, outer.Area() - outer.OverlapArea(inner), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubtractPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(RectTest, ToStringFormat) {
  EXPECT_EQ(Rect(0, 0, 2, 3).ToString(), "[0,0;2,3)");
}

}  // namespace
}  // namespace geom
}  // namespace craqr
