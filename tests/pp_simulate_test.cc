#include <gtest/gtest.h>

#include <cmath>

#include "common/math.h"
#include "common/rng.h"
#include "pointprocess/gof.h"
#include "pointprocess/simulate.h"

namespace craqr {
namespace pp {
namespace {

SpaceTimeWindow TestWindow() {
  return SpaceTimeWindow{0.0, 20.0, geom::Rect(0, 0, 4, 5)};
}

TEST(SimulateHomogeneousTest, ValidatesArguments) {
  Rng rng(1);
  EXPECT_FALSE(SimulateHomogeneous(nullptr, 1.0, TestWindow()).ok());
  EXPECT_FALSE(SimulateHomogeneous(&rng, -1.0, TestWindow()).ok());
  EXPECT_FALSE(
      SimulateHomogeneous(&rng, 1.0,
                          SpaceTimeWindow{5.0, 5.0, geom::Rect(0, 0, 1, 1)})
          .ok());
}

TEST(SimulateHomogeneousTest, CountMatchesPoissonLaw) {
  Rng rng(2);
  const SpaceTimeWindow w = TestWindow();
  const double rate = 2.5;
  const auto points = SimulateHomogeneous(&rng, rate, w);
  ASSERT_TRUE(points.ok());
  const double expected = rate * w.Volume();  // 1000
  // Exact two-sided Poisson test at alpha = 1e-6 (seeded, deterministic).
  EXPECT_GT(PoissonTwoSidedPValue(expected,
                                  static_cast<double>(points->size())),
            1e-6);
}

TEST(SimulateHomogeneousTest, AllPointsInsideWindowAndTimeSorted) {
  Rng rng(3);
  const SpaceTimeWindow w = TestWindow();
  const auto points = SimulateHomogeneous(&rng, 1.0, w);
  ASSERT_TRUE(points.ok());
  double last_t = -1.0;
  for (const auto& p : *points) {
    EXPECT_TRUE(w.Contains(p));
    EXPECT_GE(p.t, last_t);
    last_t = p.t;
  }
}

TEST(SimulateHomogeneousTest, ZeroRateIsEmpty) {
  Rng rng(4);
  const auto points = SimulateHomogeneous(&rng, 0.0, TestWindow());
  ASSERT_TRUE(points.ok());
  EXPECT_TRUE(points->empty());
}

TEST(SimulateHomogeneousTest, DeterministicBySeed) {
  Rng a(42);
  Rng b(42);
  const auto pa = SimulateHomogeneous(&a, 1.5, TestWindow());
  const auto pb = SimulateHomogeneous(&b, 1.5, TestWindow());
  ASSERT_TRUE(pa.ok() && pb.ok());
  ASSERT_EQ(pa->size(), pb->size());
  for (std::size_t i = 0; i < pa->size(); ++i) {
    EXPECT_EQ((*pa)[i], (*pb)[i]);
  }
}

TEST(SimulateHomogeneousTest, OutputPassesHomogeneityTests) {
  Rng rng(5);
  const SpaceTimeWindow w = TestWindow();
  const auto points = SimulateHomogeneous(&rng, 5.0, w);
  ASSERT_TRUE(points.ok());
  const auto spatial = TestSpatialHomogeneity(*points, w, 4, 4);
  ASSERT_TRUE(spatial.ok());
  EXPECT_GT(spatial->p_value, 1e-4);
  const auto temporal = TestTemporalUniformity(*points, w);
  ASSERT_TRUE(temporal.ok());
  EXPECT_GT(temporal->p_value, 1e-4);
}

TEST(SimulateInhomogeneousTest, EmptyForZeroIntensity) {
  Rng rng(6);
  const auto model = ConstantIntensity::Make(0.0);
  ASSERT_TRUE(model.ok());
  const auto points = SimulateInhomogeneous(&rng, **model, TestWindow());
  ASSERT_TRUE(points.ok());
  EXPECT_TRUE(points->empty());
}

TEST(SimulateInhomogeneousTest, CountMatchesIntegral) {
  Rng rng(7);
  const SpaceTimeWindow w = TestWindow();
  const auto model = LinearIntensity::Make({1.0, 0.05, 0.5, 0.2});
  ASSERT_TRUE(model.ok());
  const auto points = SimulateInhomogeneous(&rng, **model, w);
  ASSERT_TRUE(points.ok());
  const double expected = (*model)->Integral(w);
  EXPECT_GT(PoissonTwoSidedPValue(expected,
                                  static_cast<double>(points->size())),
            1e-6);
}

TEST(SimulateInhomogeneousTest, DensityFollowsIntensityShape) {
  Rng rng(8);
  const SpaceTimeWindow w{0.0, 50.0, geom::Rect(0, 0, 4, 4)};
  // Strong x-gradient: lambda = 0.2 + 2x.
  const auto model = LinearIntensity::Make({0.2, 0.0, 2.0, 0.0});
  ASSERT_TRUE(model.ok());
  const auto points = SimulateInhomogeneous(&rng, **model, w);
  ASSERT_TRUE(points.ok());
  std::size_t low = 0;
  std::size_t high = 0;
  for (const auto& p : *points) {
    (p.x < 2.0 ? low : high) += 1;
  }
  // Expected ratio: integral over [0,2] (0.2+2x)dx = 4.4 vs [2,4] = 12.4.
  const double ratio = static_cast<double>(high) / static_cast<double>(low);
  EXPECT_NEAR(ratio, 12.4 / 4.4, 0.35);
}

TEST(SimulateInhomogeneousTest, MatchesHomogeneousWhenConstant) {
  const SpaceTimeWindow w = TestWindow();
  const auto model = ConstantIntensity::Make(3.0);
  ASSERT_TRUE(model.ok());
  Rng rng(9);
  const auto points = SimulateInhomogeneous(&rng, **model, w);
  ASSERT_TRUE(points.ok());
  EXPECT_GT(PoissonTwoSidedPValue(3.0 * w.Volume(),
                                  static_cast<double>(points->size())),
            1e-6);
  const auto spatial = TestSpatialHomogeneity(*points, w, 4, 4);
  ASSERT_TRUE(spatial.ok());
  EXPECT_GT(spatial->p_value, 1e-4);
}

TEST(SimulateInhomogeneousTest, UnsortedOptionKeepsAllPoints) {
  Rng rng(10);
  SimulateOptions options;
  options.sort_by_time = false;
  const auto model = ConstantIntensity::Make(2.0);
  ASSERT_TRUE(model.ok());
  const auto points =
      SimulateInhomogeneous(&rng, **model, TestWindow(), options);
  ASSERT_TRUE(points.ok());
  EXPECT_GT(points->size(), 0u);
  for (const auto& p : *points) {
    EXPECT_TRUE(TestWindow().Contains(p));
  }
}

}  // namespace
}  // namespace pp
}  // namespace craqr
