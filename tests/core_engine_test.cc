#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "ops/value_pool.h"

namespace craqr {
namespace engine {
namespace {

const geom::Rect kRegion(0, 0, 6, 6);

sensing::CrowdWorld MakeWorld(std::size_t sensors, std::uint64_t seed = 5) {
  sensing::PopulationConfig pc;
  pc.region = kRegion;
  pc.num_sensors = sensors;
  pc.responsiveness_sigma = 0.2;
  Rng rng(seed);
  auto population = sensing::SensorPopulation::Make(pc, &rng);
  EXPECT_TRUE(population.ok());
  auto world =
      sensing::CrowdWorld::Make(population.MoveValue(), rng.Fork()).MoveValue();

  sensing::TemperatureField::Params tp;
  sensing::ResponseBehavior device = sensing::ResponseModel::DeviceBehavior();
  EXPECT_TRUE(world
                  .RegisterAttribute(
                      "temp", false,
                      sensing::TemperatureField::Make(tp).MoveValue(), device)
                  .ok());
  sensing::RainCell cell;
  cell.x0 = 3.0;
  cell.y0 = 3.0;
  cell.radius = 2.0;
  sensing::ResponseBehavior human = sensing::ResponseModel::HumanBehavior();
  human.base_logit = 2.0;  // co-operative crowd for tests
  human.delay_mu = -1.0;
  EXPECT_TRUE(world
                  .RegisterAttribute(
                      "rain", true,
                      sensing::RainField::Make({cell}).MoveValue(), human)
                  .ok());
  return world;
}

EngineConfig TestConfig() {
  EngineConfig config;
  config.grid_h = 9;  // 2x2 km cells
  config.step_dt = 1.0;
  config.fabric.flatten_batch_size = 32;
  config.budget.initial = 24.0;
  config.budget.delta = 8.0;
  config.budget.max = 256.0;
  return config;
}

TEST(EngineTest, MakeValidatesConfig) {
  EngineConfig bad = TestConfig();
  bad.step_dt = 0.0;
  EXPECT_FALSE(CraqrEngine::Make(MakeWorld(50), bad).ok());
  bad = TestConfig();
  bad.grid_h = 7;  // not a perfect square
  EXPECT_FALSE(CraqrEngine::Make(MakeWorld(50), bad).ok());
}

TEST(EngineTest, SubmitResolvesAttributeAndSubscribes) {
  auto engine = CraqrEngine::Make(MakeWorld(200), TestConfig()).MoveValue();
  query::AcquisitionQuery q;
  q.attribute = "temp";
  q.region = geom::Rect(0, 0, 4, 4);
  q.rate = 0.5;
  const auto stream = engine->Submit(q);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(engine->handler().NumSubscriptions(), 4u);  // 4 cells of 2x2 km
  EXPECT_EQ(engine->fabricator().NumQueries(), 1u);
  // Unknown attribute rejected.
  q.attribute = "humidity";
  EXPECT_EQ(engine->Submit(q).status().code(), StatusCode::kNotFound);
}

TEST(EngineTest, SubmitTextParsesDeclarativeSyntax) {
  auto engine = CraqrEngine::Make(MakeWorld(200), TestConfig()).MoveValue();
  const auto stream = engine->SubmitText(
      "ACQUIRE rain FROM REGION(0, 0, 4, 4) RATE 30 PER KM2 PER HR");
  ASSERT_TRUE(stream.ok());
  EXPECT_DOUBLE_EQ(stream->rate, 0.5);
  EXPECT_FALSE(engine->SubmitText("DROP TABLE queries").ok());
}

TEST(EngineTest, EndToEndDeliversTuplesNearRequestedRate) {
  auto engine = CraqrEngine::Make(MakeWorld(600, 6), TestConfig()).MoveValue();
  const auto stream = engine->SubmitText(
      "ACQUIRE temp FROM REGION(0, 0, 6, 6) RATE 0.4 PER KM2 PER MIN");
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(engine->RunFor(60.0).ok());
  EXPECT_GT(engine->now(), 59.0);

  // The sink received a stream; its empirical rate approximates the
  // requested one (area 36 km^2, ~60 min -> expect ~860 tuples).
  const double delivered =
      static_cast<double>(stream->sink->total_received()) / (36.0 * 60.0);
  EXPECT_GT(delivered, 0.2);
  EXPECT_LT(delivered, 0.7);
  // The monitor saw windows too.
  EXPECT_GT(stream->monitor->window_rates().count(), 0u);
  // Requests went out and were answered.
  EXPECT_GT(engine->handler().requests_sent(), 0u);
  EXPECT_GT(engine->world().total_responses(), 0u);
}

TEST(EngineTest, ValuesCarryPhenomenonObservations) {
  auto engine = CraqrEngine::Make(MakeWorld(400), TestConfig()).MoveValue();
  const auto stream = engine->SubmitText(
      "ACQUIRE temp FROM REGION(0, 0, 6, 6) RATE 0.3 PER KM2 PER MIN");
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(engine->RunFor(30.0).ok());
  ASSERT_GT(stream->sink->tuples().size(), 0u);
  for (const auto& tuple : stream->sink->tuples()) {
    ASSERT_TRUE(tuple.value.kind() == ops::PayloadKind::kDouble);
    // Plausible temperature (base 20, diurnal 5, small noise).
    EXPECT_GT(tuple.value.AsDouble(), 0.0);
    EXPECT_LT(tuple.value.AsDouble(), 40.0);
  }
}

TEST(EngineTest, CancelRemovesTopologyAndSubscriptions) {
  auto engine = CraqrEngine::Make(MakeWorld(200), TestConfig()).MoveValue();
  const auto stream = engine->SubmitText(
      "ACQUIRE temp FROM REGION(0, 0, 4, 4) RATE 0.5 PER KM2 PER MIN");
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(engine->RunFor(5.0).ok());
  ASSERT_TRUE(engine->Cancel(stream->id).ok());
  EXPECT_EQ(engine->handler().NumSubscriptions(), 0u);
  EXPECT_EQ(engine->fabricator().NumQueries(), 0u);
  EXPECT_EQ(engine->fabricator().NumMaterializedCells(), 0u);
  // Cancelling twice fails cleanly.
  EXPECT_EQ(engine->Cancel(stream->id).code(), StatusCode::kNotFound);
  // The engine keeps running fine afterwards.
  EXPECT_TRUE(engine->RunFor(3.0).ok());
}

TEST(EngineTest, BudgetTuningRaisesBudgetUnderViolations) {
  // A sparse crowd cannot satisfy an aggressive rate: budgets must climb.
  auto engine = CraqrEngine::Make(MakeWorld(60), TestConfig()).MoveValue();
  const auto stream = engine->SubmitText(
      "ACQUIRE temp FROM REGION(0, 0, 6, 6) RATE 5 PER KM2 PER MIN");
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(engine->RunFor(40.0).ok());
  EXPECT_GT(engine->budgets().increases(), 0u);
}

TEST(EngineTest, InfeasibleRateIsLogged) {
  EngineConfig config = TestConfig();
  config.budget.max = 32.0;  // low ceiling so saturation happens fast
  auto engine = CraqrEngine::Make(MakeWorld(60), config).MoveValue();
  const auto stream = engine->SubmitText(
      "ACQUIRE temp FROM REGION(0, 0, 6, 6) RATE 50 PER KM2 PER MIN");
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(engine->RunFor(60.0).ok());
  // "the user is requested to either accept the feasible rate or pay more".
  EXPECT_FALSE(engine->infeasible_log().empty());
}

TEST(EngineTest, IncentiveExtensionRaisesIncentives) {
  EngineConfig config = TestConfig();
  config.budget.max = 32.0;
  config.enable_incentives = true;
  config.incentive.max = 8.0;
  auto engine = CraqrEngine::Make(MakeWorld(80), config).MoveValue();
  const auto stream = engine->SubmitText(
      "ACQUIRE rain FROM REGION(0, 0, 6, 6) RATE 20 PER KM2 PER MIN");
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(engine->RunFor(80.0).ok());
  EXPECT_GT(engine->incentives().raises(), 0u);
  const auto rain_id = engine->world().AttributeIdByName("rain");
  ASSERT_TRUE(rain_id.ok());
  EXPECT_GT(engine->handler().GetIncentive(*rain_id), 1.0);
}

TEST(EngineTest, MultipleConcurrentQueriesAllDeliver) {
  auto engine = CraqrEngine::Make(MakeWorld(600, 8), TestConfig()).MoveValue();
  const auto s1 = engine->SubmitText(
      "ACQUIRE temp FROM REGION(0, 0, 4, 4) RATE 0.5 PER KM2 PER MIN");
  const auto s2 = engine->SubmitText(
      "ACQUIRE temp FROM REGION(2, 2, 6, 6) RATE 0.25 PER KM2 PER MIN");
  const auto s3 = engine->SubmitText(
      "ACQUIRE rain FROM REGION(0, 0, 6, 6) RATE 0.2 PER KM2 PER MIN");
  ASSERT_TRUE(s1.ok() && s2.ok() && s3.ok());
  ASSERT_TRUE(engine->RunFor(50.0).ok());
  EXPECT_GT(s1->sink->total_received(), 0u);
  EXPECT_GT(s2->sink->total_received(), 0u);
  EXPECT_GT(s3->sink->total_received(), 0u);
  // Rain tuples are boolean.
  ASSERT_GT(s3->sink->tuples().size(), 0u);
  EXPECT_TRUE(s3->sink->tuples()[0].value.kind() == ops::PayloadKind::kBool);
}

TEST(EngineTest, ShardedEngineMatchesSingleThreadedEngine) {
  // The same deterministic world driven through the in-process fabricator
  // and through the 4-shard runtime must route and deliver identically.
  auto run = [](std::size_t num_shards) {
    EngineConfig config = TestConfig();
    config.num_shards = num_shards;
    auto engine = CraqrEngine::Make(MakeWorld(400, 11), config).MoveValue();
    EXPECT_EQ(engine->IsSharded(), num_shards > 1);
    const auto s1 = engine->SubmitText(
        "ACQUIRE temp FROM REGION(0, 0, 4, 4) RATE 0.5 PER KM2 PER MIN");
    const auto s2 = engine->SubmitText(
        "ACQUIRE rain FROM REGION(1, 1, 6, 6) RATE 0.25 PER KM2 PER MIN");
    EXPECT_TRUE(s1.ok() && s2.ok());
    EXPECT_TRUE(engine->RunFor(20.0).ok());
    EXPECT_TRUE(engine->Cancel(s1->id).ok());
    EXPECT_TRUE(engine->RunFor(10.0).ok());
    EXPECT_TRUE(engine->ValidateTopology().ok());
    const runtime::ShardedStats stats = engine->Stats();
    return std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                      std::size_t>{stats.tuples_routed, stats.tuples_unrouted,
                                   s2->sink->total_received(),
                                   stats.live_queries};
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(EngineTest, ShardedEngineMatchesSingleThreadedWithIncentives) {
  // The historically excluded case: enable_incentives makes the feedback
  // loop order-sensitive across cells. Violation reports now replay in
  // completion-time order on both execution paths, so even this closed
  // loop must evolve identically for any shard count.
  auto run = [](std::size_t num_shards) {
    EngineConfig config = TestConfig();
    config.num_shards = num_shards;
    config.budget.max = 32.0;  // saturate fast so incentives engage
    config.enable_incentives = true;
    config.incentive.max = 8.0;
    auto engine = CraqrEngine::Make(MakeWorld(80), config).MoveValue();
    const auto stream = engine->SubmitText(
        "ACQUIRE rain FROM REGION(0, 0, 6, 6) RATE 20 PER KM2 PER MIN");
    EXPECT_TRUE(stream.ok());
    EXPECT_TRUE(engine->RunFor(40.0).ok());
    const auto rain_id = engine->world().AttributeIdByName("rain");
    EXPECT_TRUE(rain_id.ok());
    return std::tuple<std::uint64_t, std::uint64_t, double, std::uint64_t>{
        engine->TuplesRouted(), stream->sink->total_received(),
        engine->handler().GetIncentive(*rain_id),
        engine->incentives().raises()};
  };
  const auto reference = run(1);
  EXPECT_GT(std::get<3>(reference), 0u) << "incentives never engaged";
  EXPECT_EQ(reference, run(2));
  EXPECT_EQ(reference, run(4));
}

// ---------------------------------------------------------------------------
// Pipelined execution (EngineConfig::pipeline_depth)

/// Order-sensitive FNV-1a fold over raw bytes.
std::uint64_t FnvFold(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// Byte-exact signature of a delivered stream: every field of every tuple,
/// in delivery order (payload rendered through the pool so the digest is
/// handle-independent).
std::uint64_t StreamDigest(const std::vector<ops::Tuple>& tuples) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const auto& tuple : tuples) {
    h = FnvFold(h, &tuple.id, sizeof(tuple.id));
    h = FnvFold(h, &tuple.sensor_id, sizeof(tuple.sensor_id));
    h = FnvFold(h, &tuple.attribute, sizeof(tuple.attribute));
    h = FnvFold(h, &tuple.point.t, sizeof(tuple.point.t));
    h = FnvFold(h, &tuple.point.x, sizeof(tuple.point.x));
    h = FnvFold(h, &tuple.point.y, sizeof(tuple.point.y));
    const auto kind = static_cast<unsigned char>(tuple.value.kind());
    h = FnvFold(h, &kind, sizeof(kind));
    const std::string rendered = ops::PayloadToString(tuple.value);
    h = FnvFold(h, rendered.data(), rendered.size());
  }
  return h;
}

/// Everything a pipelined-equivalence run observes. Byte-exact delivered
/// streams (order included), the order-sensitive incentive/budget feedback
/// trajectory, and the routing aggregates.
struct PipelineRunResult {
  std::uint64_t rain_digest = 0;
  std::uint64_t temp_digest = 0;
  std::uint64_t rain_delivered = 0;
  std::uint64_t temp_delivered = 0;
  std::uint64_t tuples_routed = 0;
  std::uint64_t tuples_unrouted = 0;
  double incentive = 0.0;
  std::uint64_t incentive_raises = 0;
  std::uint64_t budget_increases = 0;

  bool operator==(const PipelineRunResult& o) const {
    return rain_digest == o.rain_digest && temp_digest == o.temp_digest &&
           rain_delivered == o.rain_delivered &&
           temp_delivered == o.temp_delivered &&
           tuples_routed == o.tuples_routed &&
           tuples_unrouted == o.tuples_unrouted && incentive == o.incentive &&
           incentive_raises == o.incentive_raises &&
           budget_increases == o.budget_increases;
  }
};

/// The valued churn workload: an aggressive rain query that saturates
/// budgets and engages incentives (the order-sensitive feedback loop), a
/// temp query cancelled mid-run and a replacement submitted — all under a
/// sparse crowd, so violations fire continuously.
void RunPipelineWorkload(std::size_t num_shards, std::size_t pipeline_depth,
                         PipelineRunResult* out) {
  EngineConfig config = TestConfig();
  config.num_shards = num_shards;
  config.pipeline_depth = pipeline_depth;
  config.budget.max = 32.0;  // saturate fast so incentives engage
  config.enable_incentives = true;
  config.incentive.max = 8.0;
  auto engine = CraqrEngine::Make(MakeWorld(80), config).MoveValue();
  const auto rain = engine->SubmitText(
      "ACQUIRE rain FROM REGION(0, 0, 6, 6) RATE 20 PER KM2 PER MIN");
  const auto temp1 = engine->SubmitText(
      "ACQUIRE temp FROM REGION(0, 0, 4, 4) RATE 0.5 PER KM2 PER MIN");
  ASSERT_TRUE(rain.ok());
  ASSERT_TRUE(temp1.ok());
  ASSERT_TRUE(engine->RunFor(15.0).ok());
  ASSERT_TRUE(engine->Cancel(temp1->id).ok());
  ASSERT_TRUE(engine->RunFor(10.0).ok());
  const auto temp2 = engine->SubmitText(
      "ACQUIRE temp FROM REGION(1, 1, 5, 5) RATE 0.4 PER KM2 PER MIN");
  ASSERT_TRUE(temp2.ok());
  ASSERT_TRUE(engine->RunFor(15.0).ok());

  const runtime::ShardedStats stats = engine->Stats();
  const auto rain_id = engine->world().AttributeIdByName("rain");
  ASSERT_TRUE(rain_id.ok());
  out->rain_digest = StreamDigest(rain->sink->tuples());
  out->temp_digest = StreamDigest(temp2->sink->tuples());
  out->rain_delivered = rain->sink->total_received();
  out->temp_delivered = temp2->sink->total_received();
  out->tuples_routed = stats.tuples_routed;
  out->tuples_unrouted = stats.tuples_unrouted;
  out->incentive = engine->handler().GetIncentive(*rain_id);
  out->incentive_raises = engine->incentives().raises();
  out->budget_increases = engine->budgets().increases();
}

TEST(EnginePipelineTest, PipelinedMatchesSynchronousByteExact) {
  // The core pipelining guarantee: for the default pipeline_depth, the
  // delivered streams (bytes AND order), the routing aggregates and the
  // order-sensitive incentive/budget trajectory are identical whether the
  // engine runs single-threaded (with the engine-side feedback lag) or
  // pipelined over 2 or 4 shards (with the runtime's epoch horizon).
  PipelineRunResult reference;
  RunPipelineWorkload(1, 2, &reference);
  ASSERT_GT(reference.rain_delivered, 0u);
  ASSERT_GT(reference.temp_delivered, 0u);
  ASSERT_GT(reference.incentive_raises, 0u) << "incentives never engaged";
  for (const std::size_t shards : {2u, 4u}) {
    SCOPED_TRACE("num_shards=" + std::to_string(shards));
    PipelineRunResult pipelined;
    RunPipelineWorkload(shards, 2, &pipelined);
    EXPECT_TRUE(reference == pipelined);
  }
}

TEST(EnginePipelineTest, DeeperPipelineStaysConsistentAcrossShardCounts) {
  // pipeline_depth 3 changes the feedback contract (2-step lag) — the
  // trajectory may differ from depth 2, but it must still be byte-exact
  // across shard counts, since the synchronous engine emulates the same
  // deeper lag.
  PipelineRunResult reference;
  RunPipelineWorkload(1, 3, &reference);
  ASSERT_GT(reference.rain_delivered, 0u);
  PipelineRunResult pipelined;
  RunPipelineWorkload(4, 3, &pipelined);
  EXPECT_TRUE(reference == pipelined);
}

TEST(EnginePipelineTest, DepthOneKeepsClassicSynchronousSemantics) {
  // pipeline_depth 1 = the pre-pipelining contract (feedback within its
  // own step) on every path; sharded execution stays synchronous.
  PipelineRunResult reference;
  RunPipelineWorkload(1, 1, &reference);
  ASSERT_GT(reference.rain_delivered, 0u);
  PipelineRunResult sharded;
  RunPipelineWorkload(4, 1, &sharded);
  EXPECT_TRUE(reference == sharded);
}

TEST(EnginePipelineTest, MidRunStatsIsADrainBarrierAndDoesNotPerturb) {
  // Stats() mid-run must flush in-flight pipelined work (so counters are
  // consistent with every step taken) without disturbing the stream or
  // the feedback trajectory relative to a run that never observed.
  auto make = [](std::size_t num_shards) {
    EngineConfig config = TestConfig();
    config.num_shards = num_shards;
    config.pipeline_depth = 2;
    return CraqrEngine::Make(MakeWorld(200, 11), config).MoveValue();
  };
  auto pipelined = make(4);
  auto sync = make(1);
  auto observed = make(4);  // pipelined twin that gets observed mid-run
  const char* q = "ACQUIRE temp FROM REGION(0, 0, 6, 6) RATE 0.5 PER KM2 PER MIN";
  const auto sp = pipelined->SubmitText(q);
  const auto ss = sync->SubmitText(q);
  const auto so = observed->SubmitText(q);
  ASSERT_TRUE(sp.ok() && ss.ok() && so.ok());

  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(pipelined->Step().ok());
    ASSERT_TRUE(sync->Step().ok());
    ASSERT_TRUE(observed->Step().ok());
  }
  // Mid-run observation: the drain barrier makes the pipelined counters
  // equal the synchronous engine's at the same step.
  const runtime::ShardedStats mid_obs = observed->Stats();
  const runtime::ShardedStats mid_sync = sync->Stats();
  EXPECT_EQ(mid_obs.tuples_routed, mid_sync.tuples_routed);
  EXPECT_EQ(mid_obs.tuples_unrouted, mid_sync.tuples_unrouted);
  EXPECT_EQ(mid_obs.live_queries, mid_sync.live_queries);
  // After the drain the sink already holds every delivered tuple.
  EXPECT_EQ(so->sink->total_received(), ss->sink->total_received());

  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pipelined->Step().ok());
    ASSERT_TRUE(sync->Step().ok());
    ASSERT_TRUE(observed->Step().ok());
  }
  ASSERT_TRUE(pipelined->DrainPipeline().ok());
  ASSERT_TRUE(observed->DrainPipeline().ok());
  // The mid-run observation changed nothing: all three streams agree.
  const std::uint64_t d_sync = StreamDigest(ss->sink->tuples());
  EXPECT_EQ(StreamDigest(sp->sink->tuples()), d_sync);
  EXPECT_EQ(StreamDigest(so->sink->tuples()), d_sync);
}

TEST(EnginePipelineTest, StatsExposesGlobalValuePoolBytes) {
  // The ROADMAP monitoring hook: pool growth is observable through the
  // engine's stats on both execution paths.
  ops::ValuePool::Global().Intern("engine-pipeline-test-sentinel-payload");
  for (const std::size_t shards : {1u, 2u}) {
    SCOPED_TRACE("num_shards=" + std::to_string(shards));
    EngineConfig config = TestConfig();
    config.num_shards = shards;
    auto engine = CraqrEngine::Make(MakeWorld(50), config).MoveValue();
    const runtime::ShardedStats stats = engine->Stats();
    EXPECT_EQ(stats.value_pool_bytes, ops::ValuePool::Global().ApproxBytes());
    EXPECT_GT(stats.value_pool_bytes, 0u);
    EXPECT_EQ(stats.per_shard.size(), shards == 1 ? 0u : shards);
  }
}

}  // namespace
}  // namespace engine
}  // namespace craqr
