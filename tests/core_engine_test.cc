#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine.h"

namespace craqr {
namespace engine {
namespace {

const geom::Rect kRegion(0, 0, 6, 6);

sensing::CrowdWorld MakeWorld(std::size_t sensors, std::uint64_t seed = 5) {
  sensing::PopulationConfig pc;
  pc.region = kRegion;
  pc.num_sensors = sensors;
  pc.responsiveness_sigma = 0.2;
  Rng rng(seed);
  auto population = sensing::SensorPopulation::Make(pc, &rng);
  EXPECT_TRUE(population.ok());
  auto world =
      sensing::CrowdWorld::Make(population.MoveValue(), rng.Fork()).MoveValue();

  sensing::TemperatureField::Params tp;
  sensing::ResponseBehavior device = sensing::ResponseModel::DeviceBehavior();
  EXPECT_TRUE(world
                  .RegisterAttribute(
                      "temp", false,
                      sensing::TemperatureField::Make(tp).MoveValue(), device)
                  .ok());
  sensing::RainCell cell;
  cell.x0 = 3.0;
  cell.y0 = 3.0;
  cell.radius = 2.0;
  sensing::ResponseBehavior human = sensing::ResponseModel::HumanBehavior();
  human.base_logit = 2.0;  // co-operative crowd for tests
  human.delay_mu = -1.0;
  EXPECT_TRUE(world
                  .RegisterAttribute(
                      "rain", true,
                      sensing::RainField::Make({cell}).MoveValue(), human)
                  .ok());
  return world;
}

EngineConfig TestConfig() {
  EngineConfig config;
  config.grid_h = 9;  // 2x2 km cells
  config.step_dt = 1.0;
  config.fabric.flatten_batch_size = 32;
  config.budget.initial = 24.0;
  config.budget.delta = 8.0;
  config.budget.max = 256.0;
  return config;
}

TEST(EngineTest, MakeValidatesConfig) {
  EngineConfig bad = TestConfig();
  bad.step_dt = 0.0;
  EXPECT_FALSE(CraqrEngine::Make(MakeWorld(50), bad).ok());
  bad = TestConfig();
  bad.grid_h = 7;  // not a perfect square
  EXPECT_FALSE(CraqrEngine::Make(MakeWorld(50), bad).ok());
}

TEST(EngineTest, SubmitResolvesAttributeAndSubscribes) {
  auto engine = CraqrEngine::Make(MakeWorld(200), TestConfig()).MoveValue();
  query::AcquisitionQuery q;
  q.attribute = "temp";
  q.region = geom::Rect(0, 0, 4, 4);
  q.rate = 0.5;
  const auto stream = engine->Submit(q);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(engine->handler().NumSubscriptions(), 4u);  // 4 cells of 2x2 km
  EXPECT_EQ(engine->fabricator().NumQueries(), 1u);
  // Unknown attribute rejected.
  q.attribute = "humidity";
  EXPECT_EQ(engine->Submit(q).status().code(), StatusCode::kNotFound);
}

TEST(EngineTest, SubmitTextParsesDeclarativeSyntax) {
  auto engine = CraqrEngine::Make(MakeWorld(200), TestConfig()).MoveValue();
  const auto stream = engine->SubmitText(
      "ACQUIRE rain FROM REGION(0, 0, 4, 4) RATE 30 PER KM2 PER HR");
  ASSERT_TRUE(stream.ok());
  EXPECT_DOUBLE_EQ(stream->rate, 0.5);
  EXPECT_FALSE(engine->SubmitText("DROP TABLE queries").ok());
}

TEST(EngineTest, EndToEndDeliversTuplesNearRequestedRate) {
  auto engine = CraqrEngine::Make(MakeWorld(600, 6), TestConfig()).MoveValue();
  const auto stream = engine->SubmitText(
      "ACQUIRE temp FROM REGION(0, 0, 6, 6) RATE 0.4 PER KM2 PER MIN");
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(engine->RunFor(60.0).ok());
  EXPECT_GT(engine->now(), 59.0);

  // The sink received a stream; its empirical rate approximates the
  // requested one (area 36 km^2, ~60 min -> expect ~860 tuples).
  const double delivered =
      static_cast<double>(stream->sink->total_received()) / (36.0 * 60.0);
  EXPECT_GT(delivered, 0.2);
  EXPECT_LT(delivered, 0.7);
  // The monitor saw windows too.
  EXPECT_GT(stream->monitor->window_rates().count(), 0u);
  // Requests went out and were answered.
  EXPECT_GT(engine->handler().requests_sent(), 0u);
  EXPECT_GT(engine->world().total_responses(), 0u);
}

TEST(EngineTest, ValuesCarryPhenomenonObservations) {
  auto engine = CraqrEngine::Make(MakeWorld(400), TestConfig()).MoveValue();
  const auto stream = engine->SubmitText(
      "ACQUIRE temp FROM REGION(0, 0, 6, 6) RATE 0.3 PER KM2 PER MIN");
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(engine->RunFor(30.0).ok());
  ASSERT_GT(stream->sink->tuples().size(), 0u);
  for (const auto& tuple : stream->sink->tuples()) {
    ASSERT_TRUE(tuple.value.kind() == ops::PayloadKind::kDouble);
    // Plausible temperature (base 20, diurnal 5, small noise).
    EXPECT_GT(tuple.value.AsDouble(), 0.0);
    EXPECT_LT(tuple.value.AsDouble(), 40.0);
  }
}

TEST(EngineTest, CancelRemovesTopologyAndSubscriptions) {
  auto engine = CraqrEngine::Make(MakeWorld(200), TestConfig()).MoveValue();
  const auto stream = engine->SubmitText(
      "ACQUIRE temp FROM REGION(0, 0, 4, 4) RATE 0.5 PER KM2 PER MIN");
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(engine->RunFor(5.0).ok());
  ASSERT_TRUE(engine->Cancel(stream->id).ok());
  EXPECT_EQ(engine->handler().NumSubscriptions(), 0u);
  EXPECT_EQ(engine->fabricator().NumQueries(), 0u);
  EXPECT_EQ(engine->fabricator().NumMaterializedCells(), 0u);
  // Cancelling twice fails cleanly.
  EXPECT_EQ(engine->Cancel(stream->id).code(), StatusCode::kNotFound);
  // The engine keeps running fine afterwards.
  EXPECT_TRUE(engine->RunFor(3.0).ok());
}

TEST(EngineTest, BudgetTuningRaisesBudgetUnderViolations) {
  // A sparse crowd cannot satisfy an aggressive rate: budgets must climb.
  auto engine = CraqrEngine::Make(MakeWorld(60), TestConfig()).MoveValue();
  const auto stream = engine->SubmitText(
      "ACQUIRE temp FROM REGION(0, 0, 6, 6) RATE 5 PER KM2 PER MIN");
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(engine->RunFor(40.0).ok());
  EXPECT_GT(engine->budgets().increases(), 0u);
}

TEST(EngineTest, InfeasibleRateIsLogged) {
  EngineConfig config = TestConfig();
  config.budget.max = 32.0;  // low ceiling so saturation happens fast
  auto engine = CraqrEngine::Make(MakeWorld(60), config).MoveValue();
  const auto stream = engine->SubmitText(
      "ACQUIRE temp FROM REGION(0, 0, 6, 6) RATE 50 PER KM2 PER MIN");
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(engine->RunFor(60.0).ok());
  // "the user is requested to either accept the feasible rate or pay more".
  EXPECT_FALSE(engine->infeasible_log().empty());
}

TEST(EngineTest, IncentiveExtensionRaisesIncentives) {
  EngineConfig config = TestConfig();
  config.budget.max = 32.0;
  config.enable_incentives = true;
  config.incentive.max = 8.0;
  auto engine = CraqrEngine::Make(MakeWorld(80), config).MoveValue();
  const auto stream = engine->SubmitText(
      "ACQUIRE rain FROM REGION(0, 0, 6, 6) RATE 20 PER KM2 PER MIN");
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(engine->RunFor(80.0).ok());
  EXPECT_GT(engine->incentives().raises(), 0u);
  const auto rain_id = engine->world().AttributeIdByName("rain");
  ASSERT_TRUE(rain_id.ok());
  EXPECT_GT(engine->handler().GetIncentive(*rain_id), 1.0);
}

TEST(EngineTest, MultipleConcurrentQueriesAllDeliver) {
  auto engine = CraqrEngine::Make(MakeWorld(600, 8), TestConfig()).MoveValue();
  const auto s1 = engine->SubmitText(
      "ACQUIRE temp FROM REGION(0, 0, 4, 4) RATE 0.5 PER KM2 PER MIN");
  const auto s2 = engine->SubmitText(
      "ACQUIRE temp FROM REGION(2, 2, 6, 6) RATE 0.25 PER KM2 PER MIN");
  const auto s3 = engine->SubmitText(
      "ACQUIRE rain FROM REGION(0, 0, 6, 6) RATE 0.2 PER KM2 PER MIN");
  ASSERT_TRUE(s1.ok() && s2.ok() && s3.ok());
  ASSERT_TRUE(engine->RunFor(50.0).ok());
  EXPECT_GT(s1->sink->total_received(), 0u);
  EXPECT_GT(s2->sink->total_received(), 0u);
  EXPECT_GT(s3->sink->total_received(), 0u);
  // Rain tuples are boolean.
  ASSERT_GT(s3->sink->tuples().size(), 0u);
  EXPECT_TRUE(s3->sink->tuples()[0].value.kind() == ops::PayloadKind::kBool);
}

TEST(EngineTest, ShardedEngineMatchesSingleThreadedEngine) {
  // The same deterministic world driven through the in-process fabricator
  // and through the 4-shard runtime must route and deliver identically.
  auto run = [](std::size_t num_shards) {
    EngineConfig config = TestConfig();
    config.num_shards = num_shards;
    auto engine = CraqrEngine::Make(MakeWorld(400, 11), config).MoveValue();
    EXPECT_EQ(engine->IsSharded(), num_shards > 1);
    const auto s1 = engine->SubmitText(
        "ACQUIRE temp FROM REGION(0, 0, 4, 4) RATE 0.5 PER KM2 PER MIN");
    const auto s2 = engine->SubmitText(
        "ACQUIRE rain FROM REGION(1, 1, 6, 6) RATE 0.25 PER KM2 PER MIN");
    EXPECT_TRUE(s1.ok() && s2.ok());
    EXPECT_TRUE(engine->RunFor(20.0).ok());
    EXPECT_TRUE(engine->Cancel(s1->id).ok());
    EXPECT_TRUE(engine->RunFor(10.0).ok());
    EXPECT_TRUE(engine->ValidateTopology().ok());
    const runtime::ShardedStats stats = engine->Stats();
    return std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                      std::size_t>{stats.tuples_routed, stats.tuples_unrouted,
                                   s2->sink->total_received(),
                                   stats.live_queries};
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(EngineTest, ShardedEngineMatchesSingleThreadedWithIncentives) {
  // The historically excluded case: enable_incentives makes the feedback
  // loop order-sensitive across cells. Violation reports now replay in
  // completion-time order on both execution paths, so even this closed
  // loop must evolve identically for any shard count.
  auto run = [](std::size_t num_shards) {
    EngineConfig config = TestConfig();
    config.num_shards = num_shards;
    config.budget.max = 32.0;  // saturate fast so incentives engage
    config.enable_incentives = true;
    config.incentive.max = 8.0;
    auto engine = CraqrEngine::Make(MakeWorld(80), config).MoveValue();
    const auto stream = engine->SubmitText(
        "ACQUIRE rain FROM REGION(0, 0, 6, 6) RATE 20 PER KM2 PER MIN");
    EXPECT_TRUE(stream.ok());
    EXPECT_TRUE(engine->RunFor(40.0).ok());
    const auto rain_id = engine->world().AttributeIdByName("rain");
    EXPECT_TRUE(rain_id.ok());
    return std::tuple<std::uint64_t, std::uint64_t, double, std::uint64_t>{
        engine->TuplesRouted(), stream->sink->total_received(),
        engine->handler().GetIncentive(*rain_id),
        engine->incentives().raises()};
  };
  const auto reference = run(1);
  EXPECT_GT(std::get<3>(reference), 0u) << "incentives never engaged";
  EXPECT_EQ(reference, run(2));
  EXPECT_EQ(reference, run(4));
}

}  // namespace
}  // namespace engine
}  // namespace craqr
