#include <gtest/gtest.h>

#include <cmath>

#include "geometry/grid.h"

namespace craqr {
namespace geom {
namespace {

Grid MakeGrid(double size, std::uint32_t h) {
  auto grid = Grid::Make(Rect(0, 0, size, size), h);
  EXPECT_TRUE(grid.ok());
  return grid.MoveValue();
}

TEST(GridTest, MakeValidatesInputs) {
  EXPECT_FALSE(Grid::Make(Rect(), 9).ok());
  EXPECT_FALSE(Grid::Make(Rect(0, 0, 3, 3), 0).ok());
  // Not a perfect square.
  EXPECT_FALSE(Grid::Make(Rect(0, 0, 3, 3), 8).ok());
  EXPECT_TRUE(Grid::Make(Rect(0, 0, 3, 3), 9).ok());
  EXPECT_TRUE(Grid::Make(Rect(0, 0, 3, 3), 1).ok());
}

TEST(GridTest, DimensionsAndCellArea) {
  const Grid grid = MakeGrid(3.0, 9);
  EXPECT_EQ(grid.CellsPerSide(), 3u);
  EXPECT_EQ(grid.NumCells(), 9u);
  EXPECT_DOUBLE_EQ(grid.CellArea(), 1.0);
}

TEST(GridTest, CellRectsTileTheRegion) {
  const Grid grid = MakeGrid(6.0, 16);
  double total = 0.0;
  for (std::uint32_t q = 0; q < grid.CellsPerSide(); ++q) {
    for (std::uint32_t r = 0; r < grid.CellsPerSide(); ++r) {
      const Rect cell = grid.CellRect(CellIndex{q, r});
      total += cell.Area();
      EXPECT_TRUE(grid.region().ContainsRect(cell));
    }
  }
  // Paper Eq. (2): area(R) = sum of cell areas.
  EXPECT_NEAR(total, grid.region().Area(), 1e-9);
}

TEST(GridTest, CellContainingRoundTrips) {
  const Grid grid = MakeGrid(3.0, 9);
  const auto cell = grid.CellContaining(1.5, 2.5);
  ASSERT_TRUE(cell.has_value());
  EXPECT_EQ(*cell, (CellIndex{1u, 2u}));
  EXPECT_TRUE(grid.CellRect(*cell).Contains(1.5, 2.5));
  EXPECT_FALSE(grid.CellContaining(3.5, 1.0).has_value());
  EXPECT_FALSE(grid.CellContaining(-0.1, 1.0).has_value());
}

TEST(GridTest, CellContainingOnBoundaries) {
  const Grid grid = MakeGrid(3.0, 9);
  // Interior cell boundary belongs to the upper cell (half-open).
  const auto cell = grid.CellContaining(1.0, 0.0);
  ASSERT_TRUE(cell.has_value());
  EXPECT_EQ(cell->q, 1u);
  EXPECT_EQ(cell->r, 0u);
}

TEST(GridTest, OverlapsSingleInteriorCell) {
  const Grid grid = MakeGrid(3.0, 9);
  const auto overlaps = grid.Overlaps(Rect(1.0, 1.0, 2.0, 2.0));
  ASSERT_TRUE(overlaps.ok());
  ASSERT_EQ(overlaps->size(), 1u);
  EXPECT_EQ(overlaps->front().cell, (CellIndex{1u, 1u}));
  EXPECT_TRUE(overlaps->front().covers_cell);
  EXPECT_NEAR(overlaps->front().fraction, 1.0, 1e-12);
}

TEST(GridTest, OverlapsPartialRegion) {
  const Grid grid = MakeGrid(3.0, 9);
  // Covers cell (0,0) fully and half of (1,0).
  const auto overlaps = grid.Overlaps(Rect(0.0, 0.0, 1.5, 1.0));
  ASSERT_TRUE(overlaps.ok());
  ASSERT_EQ(overlaps->size(), 2u);
  double fractions[2] = {0.0, 0.0};
  for (const auto& overlap : *overlaps) {
    fractions[overlap.cell.q] = overlap.fraction;
    if (overlap.cell.q == 0) {
      EXPECT_TRUE(overlap.covers_cell);
    } else {
      EXPECT_FALSE(overlap.covers_cell);
    }
  }
  EXPECT_NEAR(fractions[0], 1.0, 1e-12);
  EXPECT_NEAR(fractions[1], 0.5, 1e-12);
}

TEST(GridTest, OverlapsClipsToRegion) {
  const Grid grid = MakeGrid(3.0, 9);
  const auto overlaps = grid.Overlaps(Rect(-5.0, -5.0, 0.5, 0.5));
  ASSERT_TRUE(overlaps.ok());
  ASSERT_EQ(overlaps->size(), 1u);
  EXPECT_EQ(overlaps->front().cell, (CellIndex{0u, 0u}));
  EXPECT_NEAR(overlaps->front().fraction, 0.25, 1e-12);
}

TEST(GridTest, OverlapsErrorsOutsideRegion) {
  const Grid grid = MakeGrid(3.0, 9);
  EXPECT_FALSE(grid.Overlaps(Rect(10.0, 10.0, 12.0, 12.0)).ok());
}

TEST(GridTest, OverlapAreasSumToClippedQueryArea) {
  const Grid grid = MakeGrid(4.0, 16);
  const Rect query(0.3, 0.7, 3.9, 2.2);
  const auto overlaps = grid.Overlaps(query);
  ASSERT_TRUE(overlaps.ok());
  double total = 0.0;
  for (const auto& overlap : *overlaps) {
    total += overlap.region.Area();
  }
  EXPECT_NEAR(total, query.Area(), 1e-9);
}

TEST(GridTest, ValidateQueryRegionEnforcesMinimumArea) {
  const Grid grid = MakeGrid(3.0, 9);  // cell area 1 km^2
  EXPECT_TRUE(grid.ValidateQueryRegion(Rect(0, 0, 1, 1)).ok());
  EXPECT_TRUE(grid.ValidateQueryRegion(Rect(0, 0, 2, 2)).ok());
  // Area below one cell: rejected (paper Section IV).
  EXPECT_EQ(grid.ValidateQueryRegion(Rect(0, 0, 0.5, 0.5)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(grid.ValidateQueryRegion(Rect()).ok());
}

/// Parameterized sweep over grid granularities.
class GridGranularityTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(GridGranularityTest, EveryPointMapsToExactlyOneCell) {
  const std::uint32_t h = GetParam();
  const Grid grid = MakeGrid(5.0, h);
  for (double x = 0.05; x < 5.0; x += 0.52) {
    for (double y = 0.05; y < 5.0; y += 0.52) {
      const auto cell = grid.CellContaining(x, y);
      ASSERT_TRUE(cell.has_value());
      int containing = 0;
      for (std::uint32_t q = 0; q < grid.CellsPerSide(); ++q) {
        for (std::uint32_t r = 0; r < grid.CellsPerSide(); ++r) {
          if (grid.CellRect(CellIndex{q, r}).Contains(x, y)) {
            ++containing;
          }
        }
      }
      EXPECT_EQ(containing, 1);
      EXPECT_TRUE(grid.CellRect(*cell).Contains(x, y));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Granularities, GridGranularityTest,
                         ::testing::Values(1u, 4u, 9u, 25u, 64u));

}  // namespace
}  // namespace geom
}  // namespace craqr
