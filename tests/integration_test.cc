/// \file integration_test.cc
/// \brief Cross-module integration tests: parser -> engine -> fabricated
/// streams, query churn under load, trace-driven engines, determinism, and
/// statistical verification of the end-to-end rate guarantee.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine.h"
#include "core/naive.h"
#include "pointprocess/gof.h"
#include "sensing/trace.h"

namespace craqr {
namespace {

const geom::Rect kRegion(0, 0, 6, 6);

sensing::CrowdWorld BuildWorld(std::uint64_t seed, std::size_t sensors = 500) {
  sensing::PopulationConfig pc;
  pc.region = kRegion;
  pc.num_sensors = sensors;
  Rng rng(seed);
  auto population = sensing::SensorPopulation::Make(pc, &rng).MoveValue();
  auto world =
      sensing::CrowdWorld::Make(std::move(population), rng.Fork()).MoveValue();
  sensing::TemperatureField::Params tp;
  EXPECT_TRUE(world
                  .RegisterAttribute(
                      "temp", false,
                      sensing::TemperatureField::Make(tp).MoveValue(),
                      sensing::ResponseModel::DeviceBehavior())
                  .ok());
  sensing::RainCell cell;
  cell.x0 = 3.0;
  cell.y0 = 3.0;
  cell.radius = 2.0;
  sensing::ResponseBehavior human = sensing::ResponseModel::HumanBehavior();
  human.base_logit = 2.0;
  human.delay_mu = -1.0;
  EXPECT_TRUE(world
                  .RegisterAttribute(
                      "rain", true,
                      sensing::RainField::Make({cell}).MoveValue(), human)
                  .ok());
  return world;
}

engine::EngineConfig BuildConfig() {
  engine::EngineConfig config;
  config.grid_h = 9;
  config.fabric.flatten_batch_size = 48;
  config.budget.initial = 24.0;
  config.budget.delta = 8.0;
  config.budget.max = 256.0;
  return config;
}

TEST(IntegrationTest, FabricatedStreamIsApproximatelyHomogeneous) {
  // The headline end-to-end property: whatever the crowd's skew, the
  // fabricated stream passes spatial and temporal homogeneity tests at the
  // requested rate.
  auto world = BuildWorld(101, 700);
  auto craqr_engine =
      engine::CraqrEngine::Make(std::move(world), BuildConfig()).MoveValue();
  const auto stream =
      craqr_engine
          ->SubmitText(
              "ACQUIRE temp FROM REGION(0, 0, 6, 6) RATE 0.4 PER KM2 PER MIN")
          .MoveValue();
  ASSERT_TRUE(craqr_engine->RunFor(90.0).ok());

  // Evaluate the steady-state half of the stream.
  std::vector<geom::SpaceTimePoint> points;
  for (const auto& tuple : stream.sink->tuples()) {
    if (tuple.point.t > 45.0 && tuple.point.t <= 90.0) {
      points.push_back(tuple.point);
    }
  }
  ASSERT_GT(points.size(), 200u);
  const pp::SpaceTimeWindow window{45.0, 90.0, kRegion};
  const auto spatial =
      pp::TestSpatialHomogeneity(points, window, 3, 3).MoveValue();
  EXPECT_GT(spatial.p_value, 1e-3)
      << "fabricated stream should be approximately homogeneous";
  const auto temporal = pp::TestTemporalUniformity(points, window).MoveValue();
  EXPECT_GT(temporal.p_value, 1e-3);
  // Rate within 25% of the request at steady state.
  EXPECT_NEAR(spatial.empirical_rate, 0.4, 0.1);
}

TEST(IntegrationTest, QueryChurnUnderLoad) {
  // Insert and cancel queries while the engine runs; topology surgery must
  // never wedge the pipeline or leak cells.
  auto world = BuildWorld(102);
  auto craqr_engine =
      engine::CraqrEngine::Make(std::move(world), BuildConfig()).MoveValue();
  Rng rng(103);
  std::vector<query::QueryId> live;
  for (int round = 0; round < 30; ++round) {
    if (live.size() < 5 || rng.Bernoulli(0.5)) {
      const double x = rng.Uniform(0.0, 3.9);
      const double y = rng.Uniform(0.0, 3.9);
      query::AcquisitionQuery q;
      q.attribute = rng.Bernoulli(0.3) ? "rain" : "temp";
      q.region = geom::Rect(x, y, x + 2.0, y + 2.0);
      q.rate = rng.Uniform(0.1, 1.0);
      const auto stream = craqr_engine->Submit(q);
      ASSERT_TRUE(stream.ok()) << stream.status().ToString();
      live.push_back(stream->id);
    } else {
      const std::size_t victim = rng.UniformInt(live.size());
      ASSERT_TRUE(craqr_engine->Cancel(live[victim]).ok());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    ASSERT_TRUE(craqr_engine->RunFor(2.0).ok());
  }
  // Drain everything: all state unwinds.
  for (const auto id : live) {
    ASSERT_TRUE(craqr_engine->Cancel(id).ok());
  }
  EXPECT_EQ(craqr_engine->fabricator().NumQueries(), 0u);
  EXPECT_EQ(craqr_engine->fabricator().NumMaterializedCells(), 0u);
  EXPECT_EQ(craqr_engine->fabricator().TotalOperators(), 0u);
  EXPECT_EQ(craqr_engine->handler().NumSubscriptions(), 0u);
  EXPECT_TRUE(craqr_engine->RunFor(2.0).ok());
}

TEST(IntegrationTest, IdenticalSeedsGiveIdenticalRuns) {
  auto run = []() {
    auto world = BuildWorld(104);
    auto craqr_engine =
        engine::CraqrEngine::Make(std::move(world), BuildConfig()).MoveValue();
    const auto stream =
        craqr_engine
            ->SubmitText(
                "ACQUIRE temp FROM REGION(0, 0, 4, 4) RATE 0.5 PER KM2 PER "
                "MIN")
            .MoveValue();
    EXPECT_TRUE(craqr_engine->RunFor(20.0).ok());
    return std::make_pair(stream.sink->total_received(),
                          craqr_engine->handler().requests_sent());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(IntegrationTest, EngineOverTraceReplay) {
  // Record a live run's crowd responses, then drive a full engine from the
  // replayed trace through a handler.
  auto world = BuildWorld(105);
  sensing::AcquisitionRequest probe;
  probe.attribute = 0;
  probe.region = kRegion;
  probe.count = 200;
  probe.response_spread = 1.0;
  std::vector<ops::Tuple> trace;
  for (int minute = 0; minute < 40; ++minute) {
    probe.now = minute;
    auto responses = world.SendRequests(probe).MoveValue();
    trace.insert(trace.end(), responses.begin(), responses.end());
    world.Advance(1.0);
  }
  ASSERT_GT(trace.size(), 2000u);

  auto replay =
      sensing::TraceReplayNetwork::Make(trace, kRegion).MoveValue();
  auto budgets = server::BudgetManager::Make(BuildConfig().budget).MoveValue();
  auto grid = geom::Grid::Make(kRegion, 9).MoveValue();
  auto handler =
      server::RequestResponseHandler::Make(&replay, &budgets, grid)
          .MoveValue();
  auto fabricator = fabric::StreamFabricator::Make(grid).MoveValue();
  const auto stream =
      fabricator->InsertQuery(0, kRegion, 0.3).MoveValue();
  for (const auto& cell : fabricator->QueryCells(stream.id).MoveValue()) {
    ASSERT_TRUE(handler.Subscribe(0, cell).ok());
  }
  for (int minute = 1; minute <= 40; ++minute) {
    const auto batch = handler.Step(minute).MoveValue();
    ASSERT_TRUE(fabricator->ProcessBatch(batch).ok());
  }
  EXPECT_GT(stream.sink->total_received(), 100u);
  EXPECT_GT(replay.served(), 0u);
}

TEST(IntegrationTest, SharedAndNaiveDeliverSimilarRates) {
  // The naive baseline is costlier but must deliver comparable per-query
  // rates — sharing trades cost, not quality.
  query::AcquisitionQuery q;
  q.attribute = "temp";
  q.region = geom::Rect(0, 0, 6, 6);
  q.rate = 0.3;

  auto shared_engine =
      engine::CraqrEngine::Make(BuildWorld(106), BuildConfig()).MoveValue();
  auto naive_engine =
      engine::NaiveEngine::Make(BuildWorld(106), BuildConfig()).MoveValue();
  const auto shared_stream = shared_engine->Submit(q).MoveValue();
  const auto naive_stream = naive_engine->Submit(q).MoveValue();
  ASSERT_TRUE(shared_engine->RunFor(40.0).ok());
  ASSERT_TRUE(naive_engine->RunFor(40.0).ok());
  const double shared_rate =
      static_cast<double>(shared_stream.sink->total_received()) /
      (36.0 * 40.0);
  const double naive_rate =
      static_cast<double>(naive_stream.sink->total_received()) /
      (36.0 * 40.0);
  EXPECT_NEAR(shared_rate, naive_rate, 0.1);
  EXPECT_GT(shared_rate, 0.15);
}

TEST(IntegrationTest, ParserErrorsSurfaceThroughSubmitText) {
  auto craqr_engine =
      engine::CraqrEngine::Make(BuildWorld(107), BuildConfig()).MoveValue();
  EXPECT_EQ(craqr_engine->SubmitText("ACQUIRE").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(craqr_engine
                ->SubmitText("ACQUIRE humidity FROM REGION(0,0,4,4) RATE 1 "
                             "PER KM2 PER MIN")
                .status()
                .code(),
            StatusCode::kNotFound);
  // Region entirely outside R.
  EXPECT_FALSE(craqr_engine
                   ->SubmitText("ACQUIRE temp FROM REGION(50,50,54,54) RATE "
                                "1 PER KM2 PER MIN")
                   .ok());
  // The engine is still healthy after rejected submissions.
  EXPECT_TRUE(craqr_engine
                  ->SubmitText("ACQUIRE temp FROM REGION(0,0,4,4) RATE 1 PER "
                               "KM2 PER MIN")
                  .ok());
  EXPECT_TRUE(craqr_engine->RunFor(2.0).ok());
}

TEST(IntegrationTest, HumanAttributeRespectsResponseDelays) {
  // Rain tuples (human-sensed, median delay ~0.4 min) must arrive with
  // positive latency relative to the dispatch rounds.
  auto craqr_engine =
      engine::CraqrEngine::Make(BuildWorld(108), BuildConfig()).MoveValue();
  const auto stream =
      craqr_engine
          ->SubmitText(
              "ACQUIRE rain FROM REGION(0, 0, 6, 6) RATE 0.2 PER KM2 PER MIN")
          .MoveValue();
  ASSERT_TRUE(craqr_engine->RunFor(30.0).ok());
  ASSERT_GT(stream.sink->tuples().size(), 20u);
  for (const auto& tuple : stream.sink->tuples()) {
    EXPECT_TRUE(tuple.value.kind() == ops::PayloadKind::kBool);
    EXPECT_LE(tuple.point.t, craqr_engine->now());
  }
}

}  // namespace
}  // namespace craqr
