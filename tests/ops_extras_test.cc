#include <gtest/gtest.h>

#include "ops/extras.h"

namespace craqr {
namespace ops {
namespace {

Tuple TupleAt(double t, double x, double y, double value = 0.0) {
  Tuple tuple;
  tuple.point = geom::SpaceTimePoint{t, x, y};
  tuple.value = PayloadRef::Double(value);
  return tuple;
}

TEST(SuperposeTest, MergesMultipleUpstreams) {
  auto superpose = SuperposeOperator::Make("s").MoveValue();
  auto sink = SinkOperator::Make("sink").MoveValue();
  superpose->AddOutput(sink.get());
  // Two upstream operators both push into the same superpose.
  auto up1 = PassThroughOperator::Make("u1").MoveValue();
  auto up2 = PassThroughOperator::Make("u2").MoveValue();
  up1->AddOutput(superpose.get());
  up2->AddOutput(superpose.get());
  ASSERT_TRUE(up1->Push(TupleAt(1, 0, 0)).ok());
  ASSERT_TRUE(up2->Push(TupleAt(2, 0, 0)).ok());
  EXPECT_EQ(sink->tuples().size(), 2u);
  EXPECT_EQ(superpose->kind(), OperatorKind::kSuperpose);
}

TEST(FilterTest, RequiresPredicate) {
  EXPECT_FALSE(FilterOperator::Make("f", nullptr).ok());
}

TEST(FilterTest, DropsNonMatchingTuples) {
  auto filter = FilterOperator::Make("f", [](const Tuple& t) {
                  return t.value.AsDouble() > 10.0;
                }).MoveValue();
  auto sink = SinkOperator::Make("sink").MoveValue();
  filter->AddOutput(sink.get());
  ASSERT_TRUE(filter->Push(TupleAt(0, 0, 0, 5.0)).ok());
  ASSERT_TRUE(filter->Push(TupleAt(1, 0, 0, 15.0)).ok());
  ASSERT_TRUE(filter->Push(TupleAt(2, 0, 0, 25.0)).ok());
  ASSERT_EQ(sink->tuples().size(), 2u);
  EXPECT_EQ(filter->stats().tuples_in, 3u);
  EXPECT_EQ(filter->stats().tuples_out, 2u);
}

TEST(MapTest, RequiresTransform) {
  EXPECT_FALSE(MapOperator::Make("m", nullptr).ok());
}

TEST(MapTest, TransformsValues) {
  auto map = MapOperator::Make("m", [](const Tuple& t) {
               Tuple out = t;
               out.value = PayloadRef::Double(t.value.AsDouble() * 2.0);
               return out;
             }).MoveValue();
  auto sink = SinkOperator::Make("sink").MoveValue();
  map->AddOutput(sink.get());
  ASSERT_TRUE(map->Push(TupleAt(0, 0, 0, 21.0)).ok());
  ASSERT_EQ(sink->tuples().size(), 1u);
  EXPECT_DOUBLE_EQ(sink->tuples()[0].value.AsDouble(), 42.0);
}

TEST(RateMonitorTest, ValidatesParameters) {
  EXPECT_FALSE(RateMonitorOperator::Make("m", 0.0, 1.0).ok());
  EXPECT_FALSE(RateMonitorOperator::Make("m", 1.0, 0.0).ok());
  EXPECT_FALSE(RateMonitorOperator::Make("m", -1.0, 1.0).ok());
}

TEST(RateMonitorTest, MeasuresWindowedRate) {
  // 2-minute windows over a 4 km^2 stream: 8 tuples per window = 1 /km2/min.
  auto monitor = RateMonitorOperator::Make("m", 2.0, 4.0).MoveValue();
  for (int window = 0; window < 5; ++window) {
    for (int i = 0; i < 8; ++i) {
      const double t = window * 2.0 + i * 0.25;
      ASSERT_TRUE(monitor->Push(TupleAt(t, 0, 0)).ok());
    }
  }
  monitor->CloseCurrentWindow();
  EXPECT_EQ(monitor->window_rates().count(), 5u);
  EXPECT_NEAR(monitor->MeanRate(), 1.0, 1e-9);
}

TEST(RateMonitorTest, ForwardsTuplesUnchanged) {
  auto monitor = RateMonitorOperator::Make("m", 1.0, 1.0).MoveValue();
  auto sink = SinkOperator::Make("sink").MoveValue();
  monitor->AddOutput(sink.get());
  ASSERT_TRUE(monitor->Push(TupleAt(0.5, 1, 2, 3.0)).ok());
  ASSERT_EQ(sink->tuples().size(), 1u);
  EXPECT_DOUBLE_EQ(sink->tuples()[0].point.x, 1.0);
}

TEST(RateMonitorTest, HandlesQuietGaps) {
  auto monitor = RateMonitorOperator::Make("m", 1.0, 1.0).MoveValue();
  ASSERT_TRUE(monitor->Push(TupleAt(0.5, 0, 0)).ok());
  // Long silence: intermediate empty windows are closed at zero count.
  ASSERT_TRUE(monitor->Push(TupleAt(5.5, 0, 0)).ok());
  monitor->CloseCurrentWindow();
  EXPECT_GE(monitor->window_rates().count(), 5u);
  EXPECT_DOUBLE_EQ(monitor->window_rates().Min(), 0.0);

  // Batch-boundary flushes never close event-time windows.
  auto monitor2 = RateMonitorOperator::Make("m2", 10.0, 1.0).MoveValue();
  ASSERT_TRUE(monitor2->Push(TupleAt(0.5, 0, 0)).ok());
  ASSERT_TRUE(monitor2->Flush().ok());
  ASSERT_TRUE(monitor2->Flush().ok());
  EXPECT_EQ(monitor2->window_rates().count(), 0u);
}

TEST(SinkTest, ValidatesCapacity) {
  EXPECT_FALSE(SinkOperator::Make("s", 0).ok());
}

TEST(SinkTest, CallbackSeesEveryTuple) {
  int count = 0;
  auto sink = SinkOperator::Make("s", 16, [&count](const Tuple&) {
                ++count;
              }).MoveValue();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sink->Push(TupleAt(i, 0, 0)).ok());
  }
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sink->total_received(), 10u);
}

TEST(SinkTest, EvictsOldestWhenFull) {
  auto sink = SinkOperator::Make("s", 8).MoveValue();
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(sink->Push(TupleAt(i, 0, 0)).ok());
  }
  EXPECT_LE(sink->tuples().size(), 8u);
  EXPECT_EQ(sink->total_received(), 40u);
  // The newest tuple is retained.
  EXPECT_DOUBLE_EQ(sink->tuples().back().point.t, 39.0);
}

TEST(SinkTest, ClearKeepsCounters) {
  auto sink = SinkOperator::Make("s").MoveValue();
  ASSERT_TRUE(sink->Push(TupleAt(0, 0, 0)).ok());
  sink->Clear();
  EXPECT_TRUE(sink->tuples().empty());
  EXPECT_EQ(sink->total_received(), 1u);
}

TEST(PassThroughTest, ForwardsEverything) {
  auto pass = PassThroughOperator::Make("id").MoveValue();
  auto sink = SinkOperator::Make("sink").MoveValue();
  pass->AddOutput(sink.get());
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(pass->Push(TupleAt(i, 0, 0)).ok());
  }
  EXPECT_EQ(sink->tuples().size(), 7u);
  EXPECT_EQ(pass->kind(), OperatorKind::kPassThrough);
}

}  // namespace
}  // namespace ops
}  // namespace craqr
