#include <gtest/gtest.h>

#include <cmath>

#include "common/math.h"

namespace craqr {
namespace {

TEST(GammaTest, PPlusQIsOne) {
  for (double a : {0.5, 1.0, 2.5, 10.0, 50.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0, 100.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-10)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(GammaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(2.0, 0.0), 1.0);
  // P(a, x) -> 1 as x -> inf.
  EXPECT_NEAR(RegularizedGammaP(3.0, 1000.0), 1.0, 1e-12);
}

TEST(GammaTest, ExponentialSpecialCase) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 0.7, 2.0, 6.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(GammaTest, HalfIntegerMatchesErf) {
  // P(1/2, x) = erf(sqrt(x)).
  for (double x : {0.2, 1.0, 3.0}) {
    EXPECT_NEAR(RegularizedGammaP(0.5, x), std::erf(std::sqrt(x)), 1e-10);
  }
}

TEST(ChiSquareTest, KnownQuantiles) {
  // Chi-square with 1 dof: P[X > 3.841] ~ 0.05.
  EXPECT_NEAR(ChiSquareSurvival(3.841, 1.0), 0.05, 0.001);
  // 5 dof: P[X > 11.070] ~ 0.05.
  EXPECT_NEAR(ChiSquareSurvival(11.070, 5.0), 0.05, 0.001);
  // 10 dof: P[X > 18.307] ~ 0.05.
  EXPECT_NEAR(ChiSquareSurvival(18.307, 10.0), 0.05, 0.001);
}

TEST(ChiSquareTest, ZeroStatisticIsPValueOne) {
  EXPECT_DOUBLE_EQ(ChiSquareSurvival(0.0, 4.0), 1.0);
  EXPECT_DOUBLE_EQ(ChiSquareSurvival(-1.0, 4.0), 1.0);
}

TEST(ChiSquareTest, MonotoneDecreasingInStatistic) {
  double last = 1.0;
  for (double x = 0.5; x < 40.0; x += 0.5) {
    const double p = ChiSquareSurvival(x, 8.0);
    EXPECT_LE(p, last + 1e-12);
    last = p;
  }
}

TEST(KolmogorovTest, KnownValues) {
  // Q_KS(1.36) ~ 0.049 (the classic 5% critical value).
  EXPECT_NEAR(KolmogorovSurvival(1.36), 0.049, 0.002);
  EXPECT_DOUBLE_EQ(KolmogorovSurvival(0.0), 1.0);
  EXPECT_NEAR(KolmogorovSurvival(10.0), 0.0, 1e-12);
}

TEST(NormalCdfTest, SymmetryAndKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 0.0005);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 0.0005);
  EXPECT_NEAR(NormalCdf(3.0) + NormalCdf(-3.0), 1.0, 1e-12);
}

TEST(PoissonSurvivalTest, MatchesDirectSum) {
  // P[X >= 3] for mean 2: 1 - e^-2 (1 + 2 + 2) = 1 - 5 e^-2.
  EXPECT_NEAR(PoissonSurvival(2.0, 3.0), 1.0 - 5.0 * std::exp(-2.0), 1e-10);
  EXPECT_DOUBLE_EQ(PoissonSurvival(2.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(PoissonSurvival(0.0, 1.0), 0.0);
}

TEST(LogFactorialTest, SmallValues) {
  EXPECT_NEAR(LogFactorial(0.0), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(1.0), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(5.0), std::log(120.0), 1e-10);
}

TEST(PoissonTwoSidedTest, CenterHasHighPValue) {
  EXPECT_GT(PoissonTwoSidedPValue(100.0, 100.0), 0.5);
}

TEST(PoissonTwoSidedTest, TailsHaveLowPValue) {
  EXPECT_LT(PoissonTwoSidedPValue(100.0, 150.0), 1e-4);
  EXPECT_LT(PoissonTwoSidedPValue(100.0, 60.0), 1e-4);
}

TEST(PoissonTwoSidedTest, DegenerateMean) {
  EXPECT_DOUBLE_EQ(PoissonTwoSidedPValue(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(PoissonTwoSidedPValue(0.0, 3.0), 0.0);
}

}  // namespace
}  // namespace craqr
