/// \file fabric_property_test.cc
/// \brief Randomized property tests of the fabricator's topology surgery.
///
/// The Section-V insertion/deletion rules are easy to get subtly wrong
/// (dangling edges, unsorted chains, stale rates after splices). These
/// tests run long randomized insert/delete/process sequences and check
/// StreamFabricator::ValidateInvariants() after every mutation, plus
/// conservation and determinism properties.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fabric/fabricator.h"
#include "pointprocess/simulate.h"

namespace craqr {
namespace fabric {
namespace {

constexpr ops::AttributeId kAttrA = 0;
constexpr ops::AttributeId kAttrB = 1;

geom::Grid PropertyGrid() {
  return geom::Grid::Make(geom::Rect(0, 0, 6, 6), 9).MoveValue();
}

query::AcquisitionQuery RandomQuery(Rng* rng) {
  query::AcquisitionQuery q;
  const double x = rng->Uniform(0.0, 3.0);
  const double y = rng->Uniform(0.0, 3.0);
  // Keep the area at or above one 2x2 km grid cell (paper Section IV).
  const double w = rng->Uniform(2.0, 3.0);
  q.region = geom::Rect(x, y, x + w, y + w);
  // A small set of discrete rates maximises tap sharing and T-merge
  // exercise.
  const double rates[] = {1.0, 2.0, 4.0, 4.0, 8.0};
  q.rate = rates[rng->UniformInt(5)];
  return q;
}

class FabricChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FabricChurnTest, InvariantsHoldUnderRandomChurn) {
  Rng rng(GetParam());
  FabricConfig config;
  config.flatten_batch_size = 32;
  config.seed = GetParam() * 7919;
  auto fabricator = StreamFabricator::Make(PropertyGrid(), config).MoveValue();

  std::vector<query::QueryId> live;
  for (int step = 0; step < 120; ++step) {
    const bool insert = live.size() < 3 || rng.Bernoulli(0.55);
    if (insert) {
      const auto q = RandomQuery(&rng);
      const ops::AttributeId attribute =
          rng.Bernoulli(0.5) ? kAttrA : kAttrB;
      const auto stream = fabricator->InsertQuery(attribute, q.region, q.rate);
      ASSERT_TRUE(stream.ok()) << stream.status().ToString();
      live.push_back(stream->id);
    } else {
      const std::size_t victim = rng.UniformInt(live.size());
      ASSERT_TRUE(fabricator->RemoveQuery(live[victim]).ok());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    const Status invariants = fabricator->ValidateInvariants();
    ASSERT_TRUE(invariants.ok())
        << "after step " << step << ": " << invariants.ToString() << "\n"
        << fabricator->DescribeTopology();

    // Periodically push a batch through whatever topology exists.
    if (step % 10 == 9) {
      const pp::SpaceTimeWindow window{static_cast<double>(step),
                                       static_cast<double>(step) + 1.0,
                                       geom::Rect(0, 0, 6, 6)};
      const auto points =
          pp::SimulateHomogeneous(&rng, 20.0, window).MoveValue();
      std::vector<ops::Tuple> batch;
      for (const auto& p : points) {
        ops::Tuple tuple;
        tuple.point = p;
        tuple.attribute = rng.Bernoulli(0.5) ? kAttrA : kAttrB;
        batch.push_back(tuple);
      }
      ASSERT_TRUE(fabricator->ProcessBatch(batch).ok());
      ASSERT_TRUE(fabricator->ValidateInvariants().ok());
    }
  }

  // Full teardown leaves nothing behind.
  for (const auto id : live) {
    ASSERT_TRUE(fabricator->RemoveQuery(id).ok());
    ASSERT_TRUE(fabricator->ValidateInvariants().ok());
  }
  EXPECT_EQ(fabricator->NumMaterializedCells(), 0u);
  EXPECT_EQ(fabricator->TotalOperators(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabricChurnTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(FabricPropertyTest, InsertionOrderDoesNotChangeTopologyShape) {
  // Inserting the same query set in different orders must converge to the
  // same chain structure (rates sorted, same operator census).
  const struct {
    ops::AttributeId attribute;
    geom::Rect region;
    double rate;
  } queries[] = {
      {kAttrA, geom::Rect(0, 0, 2, 2), 8.0},
      {kAttrA, geom::Rect(0, 0, 2, 2), 2.0},
      {kAttrA, geom::Rect(0, 0, 2, 2), 4.0},
      {kAttrB, geom::Rect(0, 0, 4, 2), 3.0},
  };
  const std::size_t orders[][4] = {
      {0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}};

  std::string reference;
  for (const auto& order : orders) {
    auto fabricator = StreamFabricator::Make(PropertyGrid()).MoveValue();
    for (const std::size_t i : order) {
      ASSERT_TRUE(fabricator
                      ->InsertQuery(queries[i].attribute, queries[i].region,
                                    queries[i].rate)
                      .ok());
    }
    ASSERT_TRUE(fabricator->ValidateInvariants().ok());
    std::size_t f = 0;
    std::size_t t = 0;
    fabricator->VisitOperators([&](const ops::Operator& op) {
      f += op.kind() == ops::OperatorKind::kFlatten ? 1 : 0;
      t += op.kind() == ops::OperatorKind::kThin ? 1 : 0;
    });
    std::ostringstream census;
    census << "F=" << f << " T=" << t
           << " cells=" << fabricator->NumMaterializedCells();
    if (reference.empty()) {
      reference = census.str();
    } else {
      EXPECT_EQ(census.str(), reference);
    }
  }
}

TEST(FabricPropertyTest, TupleConservationThroughSharedChain) {
  // Every tuple pushed into a cell either reaches some query tap or is
  // dropped by exactly one probabilistic operator; two full-cell queries
  // at the F headroom boundary must jointly see at most the F output.
  auto fabricator = StreamFabricator::Make(PropertyGrid()).MoveValue();
  const auto fast =
      fabricator->InsertQuery(kAttrA, geom::Rect(0, 0, 2, 2), 8.0).MoveValue();
  const auto slow =
      fabricator->InsertQuery(kAttrA, geom::Rect(0, 0, 2, 2), 2.0).MoveValue();
  Rng rng(99);
  const pp::SpaceTimeWindow window{0.0, 60.0, geom::Rect(0, 0, 2, 2)};
  const auto points = pp::SimulateHomogeneous(&rng, 30.0, window).MoveValue();
  std::vector<ops::Tuple> batch;
  for (const auto& p : points) {
    ops::Tuple tuple;
    tuple.point = p;
    tuple.attribute = kAttrA;
    batch.push_back(tuple);
  }
  ASSERT_TRUE(fabricator->ProcessBatch(batch).ok());

  std::uint64_t f_out = 0;
  fabricator->VisitOperators([&](const ops::Operator& op) {
    if (op.kind() == ops::OperatorKind::kFlatten) {
      f_out = op.stats().tuples_out;
    }
  });
  // The fast tap hangs off the first T, the slow off the second: the fast
  // stream dominates the slow and neither exceeds the F output.
  EXPECT_LE(fast.sink->total_received(), f_out);
  EXPECT_LE(slow.sink->total_received(), fast.sink->total_received());
  EXPECT_GT(slow.sink->total_received(), 0u);
}

TEST(FabricPropertyTest, ValidateCatchesForeignDamage) {
  // The validator is not a tautology: externally mutating the topology
  // must trip it.
  auto fabricator = StreamFabricator::Make(PropertyGrid()).MoveValue();
  const auto stream =
      fabricator->InsertQuery(kAttrA, geom::Rect(0, 0, 2, 2), 4.0).MoveValue();
  ASSERT_TRUE(fabricator->ValidateInvariants().ok());
  // Sever the tap edge behind the fabricator's back.
  ops::Operator* thin = nullptr;
  fabricator->VisitOperators([&](const ops::Operator& op) {
    if (op.kind() == ops::OperatorKind::kThin) {
      thin = const_cast<ops::Operator*>(&op);
    }
  });
  ASSERT_NE(thin, nullptr);
  ASSERT_TRUE(thin->RemoveOutput(stream.sink) || !thin->outputs().empty());
  while (!thin->outputs().empty()) {
    thin->RemoveOutput(thin->outputs().front());
  }
  EXPECT_FALSE(fabricator->ValidateInvariants().ok());
}

}  // namespace
}  // namespace fabric
}  // namespace craqr
