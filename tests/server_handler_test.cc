#include <gtest/gtest.h>

#include "common/rng.h"
#include "sensing/world.h"
#include "server/handler.h"

namespace craqr {
namespace server {
namespace {

const geom::Rect kRegion(0, 0, 6, 6);

struct TestRig {
  sensing::CrowdWorld world;
  BudgetManager budgets;
  geom::Grid grid;
  ops::AttributeId attribute = 0;

  static TestRig Make(std::size_t sensors, double base_logit = 50.0) {
    sensing::PopulationConfig pc;
    pc.region = kRegion;
    pc.num_sensors = sensors;
    pc.responsiveness_sigma = 0.0;
    Rng rng(99);
    auto population = sensing::SensorPopulation::Make(pc, &rng);
    EXPECT_TRUE(population.ok());
    auto world =
        sensing::CrowdWorld::Make(population.MoveValue(), rng.Fork())
            .MoveValue();
    sensing::TemperatureField::Params tp;
    tp.noise_sigma = 0.0;
    sensing::ResponseBehavior behavior;
    behavior.base_logit = base_logit;
    behavior.delay_mu = -3.0;
    behavior.delay_sigma = 0.1;
    const auto id = world.RegisterAttribute(
        "temp", false, sensing::TemperatureField::Make(tp).MoveValue(),
        behavior);
    EXPECT_TRUE(id.ok());

    BudgetConfig bc;
    bc.initial = 8.0;
    bc.delta = 2.0;
    bc.min = 1.0;
    bc.max = 64.0;
    auto budgets = BudgetManager::Make(bc).MoveValue();
    auto grid = geom::Grid::Make(kRegion, 9).MoveValue();
    return TestRig{std::move(world), std::move(budgets), grid, *id};
  }
};

TEST(HandlerTest, Validation) {
  TestRig rig = TestRig::Make(50);
  EXPECT_FALSE(
      RequestResponseHandler::Make(nullptr, &rig.budgets, rig.grid).ok());
  EXPECT_FALSE(
      RequestResponseHandler::Make(&rig.world, nullptr, rig.grid).ok());
  HandlerConfig bad;
  bad.dispatch_interval = 0.0;
  EXPECT_FALSE(
      RequestResponseHandler::Make(&rig.world, &rig.budgets, rig.grid, bad)
          .ok());
}

TEST(HandlerTest, SubscriptionRefCounting) {
  TestRig rig = TestRig::Make(50);
  auto handler =
      RequestResponseHandler::Make(&rig.world, &rig.budgets, rig.grid)
          .MoveValue();
  const geom::CellIndex cell{1, 1};
  ASSERT_TRUE(handler.Subscribe(rig.attribute, cell).ok());
  ASSERT_TRUE(handler.Subscribe(rig.attribute, cell).ok());
  EXPECT_EQ(handler.NumSubscriptions(), 1u);  // shared
  ASSERT_TRUE(handler.Unsubscribe(rig.attribute, cell).ok());
  EXPECT_EQ(handler.NumSubscriptions(), 1u);  // one reference left
  ASSERT_TRUE(handler.Unsubscribe(rig.attribute, cell).ok());
  EXPECT_EQ(handler.NumSubscriptions(), 0u);
  EXPECT_EQ(handler.Unsubscribe(rig.attribute, cell).code(),
            StatusCode::kNotFound);
}

TEST(HandlerTest, SubscribeValidatesCell) {
  TestRig rig = TestRig::Make(10);
  auto handler =
      RequestResponseHandler::Make(&rig.world, &rig.budgets, rig.grid)
          .MoveValue();
  EXPECT_EQ(handler.Subscribe(rig.attribute, geom::CellIndex{9, 0}).code(),
            StatusCode::kOutOfRange);
}

TEST(HandlerTest, StepDeliversArrivedResponsesInTimeOrder) {
  TestRig rig = TestRig::Make(400);
  auto handler =
      RequestResponseHandler::Make(&rig.world, &rig.budgets, rig.grid)
          .MoveValue();
  ASSERT_TRUE(handler.Subscribe(rig.attribute, geom::CellIndex{0, 0}).ok());
  ASSERT_TRUE(handler.Subscribe(rig.attribute, geom::CellIndex{1, 1}).ok());

  std::vector<ops::Tuple> all;
  for (double now = 1.0; now <= 10.0; now += 1.0) {
    const auto batch = handler.Step(now);
    ASSERT_TRUE(batch.ok());
    for (const auto& tuple : *batch) {
      EXPECT_LE(tuple.point.t, now);
      all.push_back(tuple);
    }
  }
  ASSERT_GT(all.size(), 50u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].point.t, all[i].point.t);
  }
  EXPECT_EQ(handler.tuples_delivered(), all.size());
  EXPECT_GT(handler.requests_sent(), 0u);
}

TEST(HandlerTest, BudgetControlsRequestVolume) {
  TestRig rig = TestRig::Make(400);
  auto handler =
      RequestResponseHandler::Make(&rig.world, &rig.budgets, rig.grid)
          .MoveValue();
  ASSERT_TRUE(handler.Subscribe(rig.attribute, geom::CellIndex{0, 0}).ok());
  ASSERT_TRUE(handler.Step(1.0).ok());
  // One subscription, two dispatch rounds (t=0-ish baseline + t=1), budget 8.
  const auto after_one = handler.requests_sent();
  EXPECT_GT(after_one, 0u);
  // Raise the budget: next rounds send more.
  for (int i = 0; i < 10; ++i) {
    rig.budgets.ReportViolation(BudgetKey{rig.attribute, {0, 0}}, 50.0);
  }
  ASSERT_TRUE(handler.Step(2.0).ok());
  const auto delta = handler.requests_sent() - after_one;
  EXPECT_GT(delta, 8u);
}

TEST(HandlerTest, PendingResponsesAgeOut) {
  // Slow humans: responses arrive minutes later.
  TestRig rig = TestRig::Make(300);
  sensing::ResponseBehavior slow;
  slow.base_logit = 50.0;
  slow.delay_mu = 1.5;  // median ~4.5 min
  slow.delay_sigma = 0.2;
  const auto rain_id = rig.world.RegisterAttribute(
      "rain", true,
      sensing::RainField::Make({}, 0.0).MoveValue(), slow);
  ASSERT_TRUE(rain_id.ok());
  auto handler =
      RequestResponseHandler::Make(&rig.world, &rig.budgets, rig.grid)
          .MoveValue();
  ASSERT_TRUE(handler.Subscribe(*rain_id, geom::CellIndex{1, 1}).ok());
  const auto first = handler.Step(1.0);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(handler.pending_responses(), 0u);
  // Stop asking; by t=60 every in-flight response has arrived and drained.
  ASSERT_TRUE(handler.Unsubscribe(*rain_id, geom::CellIndex{1, 1}).ok());
  const auto later = handler.Step(60.0);
  ASSERT_TRUE(later.ok());
  EXPECT_EQ(handler.pending_responses(), 0u);
  EXPECT_GT(later->size(), 0u);
}

TEST(HandlerTest, IncentiveAccessors) {
  TestRig rig = TestRig::Make(10);
  HandlerConfig config;
  config.default_incentive = 0.7;
  auto handler =
      RequestResponseHandler::Make(&rig.world, &rig.budgets, rig.grid, config)
          .MoveValue();
  EXPECT_DOUBLE_EQ(handler.GetIncentive(rig.attribute), 0.7);
  handler.SetIncentive(rig.attribute, 2.5);
  EXPECT_DOUBLE_EQ(handler.GetIncentive(rig.attribute), 2.5);
}

TEST(HandlerTest, NoSubscriptionsNoRequests) {
  TestRig rig = TestRig::Make(100);
  auto handler =
      RequestResponseHandler::Make(&rig.world, &rig.budgets, rig.grid)
          .MoveValue();
  const auto batch = handler.Step(5.0);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->empty());
  EXPECT_EQ(handler.requests_sent(), 0u);
}

}  // namespace
}  // namespace server
}  // namespace craqr
