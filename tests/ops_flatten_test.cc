#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ops/extras.h"
#include "ops/flatten.h"
#include "pointprocess/gof.h"
#include "pointprocess/simulate.h"

namespace craqr {
namespace ops {
namespace {

Tuple TupleAt(const geom::SpaceTimePoint& p) {
  Tuple tuple;
  tuple.point = p;
  return tuple;
}

FlattenConfig BaseConfig(const geom::Rect& region, double target) {
  FlattenConfig config;
  config.region = region;
  config.target_rate = target;
  config.target_mode = FlattenTargetMode::kRatePerVolume;
  config.mode = FlattenMode::kBatch;
  config.batch_size = 256;
  return config;
}

TEST(FlattenTest, ValidatesConfig) {
  FlattenConfig config = BaseConfig(geom::Rect(0, 0, 1, 1), 1.0);
  config.region = geom::Rect();
  EXPECT_FALSE(FlattenOperator::Make("f", config, Rng(1)).ok());

  config = BaseConfig(geom::Rect(0, 0, 1, 1), 0.0);
  EXPECT_FALSE(FlattenOperator::Make("f", config, Rng(1)).ok());

  config = BaseConfig(geom::Rect(0, 0, 1, 1), 1.0);
  config.batch_size = 1;
  EXPECT_FALSE(FlattenOperator::Make("f", config, Rng(1)).ok());

  config = BaseConfig(geom::Rect(0, 0, 1, 1), 1.0);
  config.mode = FlattenMode::kOnline;
  config.target_mode = FlattenTargetMode::kCountPerBatch;
  EXPECT_FALSE(FlattenOperator::Make("f", config, Rng(1)).ok());
}

TEST(FlattenTest, EqThreeRetainedCountMatchesTarget) {
  // With target mode kCountPerBatch, Eq. (3)'s retaining probabilities sum
  // to lambda-bar: the expected retained count per batch is the target.
  const geom::Rect region(0, 0, 4, 4);
  const pp::SpaceTimeWindow w{0.0, 30.0, region};
  const auto model = pp::LinearIntensity::Make({1.0, 0.0, 1.0, 0.5});
  ASSERT_TRUE(model.ok());

  FlattenConfig config = BaseConfig(region, 64.0);
  config.target_mode = FlattenTargetMode::kCountPerBatch;
  config.batch_size = 512;

  Rng source_rng(41);
  std::size_t total_retained = 0;
  std::size_t batches = 0;
  for (int rep = 0; rep < 30; ++rep) {
    const auto points = pp::SimulateInhomogeneous(&source_rng, **model, w);
    ASSERT_TRUE(points.ok());
    if (points->size() < config.batch_size) {
      continue;
    }
    auto flatten = FlattenOperator::Make(
                       "f", config, Rng(100 + static_cast<std::uint64_t>(rep)))
                       .MoveValue();
    auto sink = SinkOperator::Make("sink", 1 << 22).MoveValue();
    flatten->AddOutput(sink.get());
    // Feed exactly one batch.
    for (std::size_t i = 0; i < config.batch_size; ++i) {
      ASSERT_TRUE(flatten->Push(TupleAt((*points)[i])).ok());
    }
    total_retained += sink->tuples().size();
    ++batches;
  }
  ASSERT_GT(batches, 20u);
  const double mean_retained =
      static_cast<double>(total_retained) / static_cast<double>(batches);
  // Standard error ~ sqrt(64/batches) ~ 1.5; allow 5 sigma.
  EXPECT_NEAR(mean_retained, 64.0, 7.5);
}

TEST(FlattenTest, OutputIsApproximatelyHomogeneous) {
  // The headline claim: a strongly skewed inhomogeneous MDPP comes out
  // approximately homogeneous.
  const geom::Rect region(0, 0, 4, 4);
  const pp::SpaceTimeWindow w{0.0, 120.0, region};
  const auto model = pp::LinearIntensity::Make({0.5, 0.0, 2.0, 1.0});
  ASSERT_TRUE(model.ok());
  Rng source_rng(42);
  const auto points = pp::SimulateInhomogeneous(&source_rng, **model, w);
  ASSERT_TRUE(points.ok());

  // Input must be visibly inhomogeneous for the test to mean anything.
  const auto before = pp::TestSpatialHomogeneity(*points, w, 4, 4);
  ASSERT_TRUE(before.ok());
  ASSERT_LT(before->p_value, 1e-6);

  FlattenConfig config = BaseConfig(region, 1.0);  // well under the minimum
  auto flatten = FlattenOperator::Make("f", config, Rng(43)).MoveValue();
  auto sink = SinkOperator::Make("sink", 1 << 22).MoveValue();
  flatten->AddOutput(sink.get());
  for (const auto& p : *points) {
    ASSERT_TRUE(flatten->Push(TupleAt(p)).ok());
  }
  ASSERT_TRUE(flatten->Flush().ok());

  std::vector<geom::SpaceTimePoint> retained;
  for (const auto& t : sink->tuples()) {
    retained.push_back(t.point);
  }
  ASSERT_GT(retained.size(), 100u);
  const auto after = pp::TestSpatialHomogeneity(retained, w, 4, 4);
  ASSERT_TRUE(after.ok());
  // Flattening must improve homogeneity dramatically.
  EXPECT_GT(after->p_value, 1e-3);
  EXPECT_LT(after->count_cv, before->count_cv);
}

TEST(FlattenTest, ReportsViolationsWhenTargetTooHigh) {
  const geom::Rect region(0, 0, 2, 2);
  const pp::SpaceTimeWindow w{0.0, 30.0, region};
  Rng source_rng(44);
  const auto points = pp::SimulateHomogeneous(&source_rng, 2.0, w);
  ASSERT_TRUE(points.ok());

  // Ask for far more than the stream carries.
  FlattenConfig config = BaseConfig(region, 50.0);
  auto flatten = FlattenOperator::Make("f", config, Rng(45)).MoveValue();
  int callbacks = 0;
  flatten->SetReportCallback([&callbacks](const FlattenBatchReport& report) {
    ++callbacks;
    EXPECT_GT(report.violation_percent, 50.0);
  });
  for (const auto& p : *points) {
    ASSERT_TRUE(flatten->Push(TupleAt(p)).ok());
  }
  ASSERT_TRUE(flatten->Flush().ok());
  EXPECT_GT(callbacks, 0);
  EXPECT_GT(flatten->last_violation_percent(), 50.0);
  EXPECT_GT(flatten->violation_history().count(), 0u);
}

TEST(FlattenTest, NoViolationsWhenTargetLow) {
  const geom::Rect region(0, 0, 2, 2);
  const pp::SpaceTimeWindow w{0.0, 60.0, region};
  Rng source_rng(46);
  const auto points = pp::SimulateHomogeneous(&source_rng, 20.0, w);
  ASSERT_TRUE(points.ok());
  FlattenConfig config = BaseConfig(region, 0.5);
  auto flatten = FlattenOperator::Make("f", config, Rng(47)).MoveValue();
  for (const auto& p : *points) {
    ASSERT_TRUE(flatten->Push(TupleAt(p)).ok());
  }
  ASSERT_TRUE(flatten->Flush().ok());
  EXPECT_LT(flatten->last_violation_percent(), 5.0);
}

TEST(FlattenTest, DiscardedTuplesGoToSideOutput) {
  const geom::Rect region(0, 0, 2, 2);
  const pp::SpaceTimeWindow w{0.0, 40.0, region};
  Rng source_rng(48);
  const auto points = pp::SimulateHomogeneous(&source_rng, 10.0, w);
  ASSERT_TRUE(points.ok());
  FlattenConfig config = BaseConfig(region, 1.0);
  auto flatten = FlattenOperator::Make("f", config, Rng(49)).MoveValue();
  auto kept = SinkOperator::Make("kept", 1 << 22).MoveValue();
  auto discarded = SinkOperator::Make("discarded", 1 << 22).MoveValue();
  flatten->AddOutput(kept.get());
  flatten->SetDiscardedOutput(discarded.get());
  for (const auto& p : *points) {
    ASSERT_TRUE(flatten->Push(TupleAt(p)).ok());
  }
  ASSERT_TRUE(flatten->Flush().ok());
  // Conservation: kept + discarded = input.
  EXPECT_EQ(kept->tuples().size() + discarded->tuples().size(),
            points->size());
  EXPECT_GT(discarded->tuples().size(), 0u);
}

TEST(FlattenTest, FlushProcessesPartialBatch) {
  const geom::Rect region(0, 0, 1, 1);
  FlattenConfig config = BaseConfig(region, 100.0);
  config.batch_size = 1000;
  auto flatten = FlattenOperator::Make("f", config, Rng(50)).MoveValue();
  auto sink = SinkOperator::Make("sink", 1 << 20).MoveValue();
  flatten->AddOutput(sink.get());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        flatten->Push(TupleAt({0.1 * i, 0.5, 0.5})).ok());
  }
  EXPECT_EQ(sink->tuples().size(), 0u);  // still buffered
  ASSERT_TRUE(flatten->Flush().ok());
  // Target far above supply: everything retained as violations.
  EXPECT_EQ(sink->tuples().size(), 20u);
  EXPECT_EQ(flatten->last_report().n, 20u);
}

TEST(FlattenTest, SetTargetRateValidatesAndApplies) {
  FlattenConfig config = BaseConfig(geom::Rect(0, 0, 1, 1), 1.0);
  auto flatten = FlattenOperator::Make("f", config, Rng(51)).MoveValue();
  EXPECT_TRUE(flatten->SetTargetRate(3.0).ok());
  EXPECT_DOUBLE_EQ(flatten->target_rate(), 3.0);
  EXPECT_FALSE(flatten->SetTargetRate(0.0).ok());
  EXPECT_FALSE(flatten->SetTargetRate(-1.0).ok());
}

TEST(FlattenOnlineTest, HomogenizesStream) {
  const geom::Rect region(0, 0, 4, 4);
  const pp::SpaceTimeWindow w{0.0, 150.0, region};
  const auto model = pp::LinearIntensity::Make({0.5, 0.0, 1.5, 0.0});
  ASSERT_TRUE(model.ok());
  Rng source_rng(52);
  const auto points = pp::SimulateInhomogeneous(&source_rng, **model, w);
  ASSERT_TRUE(points.ok());

  FlattenConfig config = BaseConfig(region, 0.5);
  config.mode = FlattenMode::kOnline;
  config.online_warmup = 200;
  auto flatten = FlattenOperator::Make("f", config, Rng(53)).MoveValue();
  auto sink = SinkOperator::Make("sink", 1 << 22).MoveValue();
  flatten->AddOutput(sink.get());
  for (const auto& p : *points) {
    ASSERT_TRUE(flatten->Push(TupleAt(p)).ok());
  }
  // Evaluate homogeneity on the post-warm-up half of the stream.
  std::vector<geom::SpaceTimePoint> retained;
  for (const auto& t : sink->tuples()) {
    if (t.point.t > 75.0) {
      retained.push_back(t.point);
    }
  }
  ASSERT_GT(retained.size(), 50u);
  const pp::SpaceTimeWindow half{75.0, 150.0, region};
  const auto after = pp::TestSpatialHomogeneity(retained, half, 3, 3);
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after->p_value, 1e-3);
}

TEST(FlattenOnlineTest, WarmupForwardsEverything) {
  const geom::Rect region(0, 0, 1, 1);
  FlattenConfig config = BaseConfig(region, 0.001);
  config.mode = FlattenMode::kOnline;
  config.online_warmup = 50;
  auto flatten = FlattenOperator::Make("f", config, Rng(54)).MoveValue();
  auto sink = SinkOperator::Make("sink").MoveValue();
  flatten->AddOutput(sink.get());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(flatten->Push(TupleAt({i * 0.1, 0.5, 0.5})).ok());
  }
  EXPECT_EQ(sink->tuples().size(), 50u);
}

}  // namespace
}  // namespace ops
}  // namespace craqr
