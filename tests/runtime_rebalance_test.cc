#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "runtime/rebalancer.h"
#include "runtime/sharded_fabricator.h"

namespace craqr {
namespace runtime {
namespace {

// ---------------------------------------------------------------------------
// Rebalancer planner unit tests (pure, deterministic)

TEST(RebalancerTest, NoPlanWhenBalancedOrBelowTrigger) {
  RebalanceConfig config;
  config.imbalance_trigger = 1.25;
  config.min_cell_tuples = 1;
  Rebalancer balanced(config, 2);
  const auto plan =
      balanced.Plan({100, 100, 100, 100}, {0, 1, 0, 1}, {});
  EXPECT_TRUE(plan.moves.empty());
  EXPECT_EQ(plan.shard_load, (std::vector<std::uint64_t>{200, 200}));

  // Imbalanced, but under the 1.25x trigger: hysteresis holds the plan.
  Rebalancer below(config, 2);
  EXPECT_TRUE(below.Plan({110, 90}, {0, 1}, {}).moves.empty());
}

TEST(RebalancerTest, GreedyMovesNarrowTheGap) {
  RebalanceConfig config;
  config.imbalance_trigger = 1.25;
  config.min_cell_tuples = 1;
  config.max_moves_per_event = 8;
  Rebalancer rb(config, 2);
  // Shard 0 carries 1000 of 1100 total. The heaviest movable cell goes
  // first; every move must be lighter than the hot/cold gap.
  const auto plan =
      rb.Plan({300, 300, 300, 100, 50, 50}, {0, 0, 0, 0, 1, 1}, {});
  ASSERT_EQ(plan.moves.size(), 2u);
  EXPECT_EQ(plan.moves[0].flat_cell, 0u);
  EXPECT_EQ(plan.moves[0].from, 0u);
  EXPECT_EQ(plan.moves[0].to, 1u);
  EXPECT_EQ(plan.moves[0].weight, 300u);
  EXPECT_EQ(plan.moves[1].flat_cell, 3u);
  EXPECT_EQ(plan.moves[1].weight, 100u);
}

TEST(RebalancerTest, MinCellTuplesExcludesLightCells) {
  RebalanceConfig config;
  config.imbalance_trigger = 1.0;
  config.min_cell_tuples = 1000;
  Rebalancer rb(config, 2);
  // Armed (all the load on shard 0) but every cell is too light to be
  // worth its migration cost.
  EXPECT_TRUE(rb.Plan({100, 80}, {0, 0}, {}).moves.empty());
}

TEST(RebalancerTest, CooldownPinsMigratedCells) {
  RebalanceConfig config;
  config.imbalance_trigger = 1.0;
  config.min_cell_tuples = 1;
  config.cooldown_events = 2;
  Rebalancer rb(config, 2);
  // Round 1: cell 0 migrates 0 -> 1.
  const auto round1 = rb.Plan({60, 40}, {0, 0}, {});
  ASSERT_EQ(round1.moves.size(), 1u);
  EXPECT_EQ(round1.moves[0].flat_cell, 0u);
  EXPECT_EQ(rb.cooling_cells(), 1u);

  // Round 2: cell 0 (now on shard 1) would be the heaviest candidate, but
  // the cooldown pins it — the planner falls through to cell 2. A fresh
  // planner on identical inputs picks cell 0 first.
  const auto cooled = rb.Plan({100, 10, 40}, {1, 0, 1}, {});
  ASSERT_FALSE(cooled.moves.empty());
  EXPECT_EQ(cooled.moves[0].flat_cell, 2u);
  for (const CellMove& move : cooled.moves) {
    EXPECT_NE(move.flat_cell, 0u);
  }
  Rebalancer fresh(config, 2);
  const auto uncooled = fresh.Plan({100, 10, 40}, {1, 0, 1}, {});
  ASSERT_FALSE(uncooled.moves.empty());
  EXPECT_EQ(uncooled.moves[0].flat_cell, 0u);

  // Cooldowns age at the top of each planning round (zero-load rounds
  // included) and expire after cooldown_events further rounds.
  EXPECT_GT(rb.cooling_cells(), 0u);
  while (rb.cooling_cells() > 0) {
    (void)rb.Plan({0, 0}, {0, 1}, {});
  }
  EXPECT_EQ(rb.cooling_cells(), 0u);
}

TEST(RebalancerTest, BusyImbalanceAloneArmsThePlanner) {
  RebalanceConfig config;
  config.imbalance_trigger = 1.6;
  config.min_cell_tuples = 1;
  // Tuple loads per shard: {30, 20, 20, 10} — max 30 < 1.6 * mean 20, so
  // the tuple signal alone stays quiet...
  const std::vector<std::uint64_t> load = {18, 12, 20, 20, 10};
  const std::vector<std::uint32_t> owner = {0, 0, 1, 2, 3};
  Rebalancer quiet(config, 4);
  EXPECT_TRUE(quiet.Plan(load, owner, {10, 10, 10, 10}).moves.empty());
  // ...but a shard burning far more wall time than its siblings (expensive
  // chains, not just many tuples) arms the same greedy pass.
  Rebalancer armed(config, 4);
  const auto plan = armed.Plan(load, owner, {1000, 10, 10, 10});
  ASSERT_FALSE(plan.moves.empty());
  EXPECT_EQ(plan.moves[0].flat_cell, 0u);
  EXPECT_EQ(plan.moves[0].from, 0u);
  EXPECT_EQ(plan.moves[0].to, 3u);
}

// ---------------------------------------------------------------------------
// Live-runtime migration tests

constexpr ops::AttributeId kRain = 0;

geom::Grid TestGrid() {
  return geom::Grid::Make(geom::Rect(0, 0, 4, 4), 16).MoveValue();
}

fabric::FabricConfig TestFabricConfig() {
  fabric::FabricConfig config;
  config.flatten_batch_size = 32;
  config.seed = 0xC0FFEE;
  return config;
}

/// Batch aimed at specific cells (their centers), times monotone.
std::vector<ops::Tuple> MakeCellBatch(const geom::Grid& grid,
                                      const std::vector<geom::CellIndex>& cells,
                                      std::size_t n, double* t,
                                      std::uint64_t* next_id) {
  std::vector<ops::Tuple> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const geom::Rect r = grid.CellRect(cells[i % cells.size()]);
    ops::Tuple tuple;
    tuple.id = (*next_id)++;
    tuple.attribute = kRain;
    *t += 0.001;
    tuple.point = geom::SpaceTimePoint{*t, r.x_min() + r.Width() / 2.0,
                                       r.y_min() + r.Height() / 2.0};
    batch.push_back(tuple);
  }
  return batch;
}

/// Delivered ids of one query, in delivery order (order matters: the
/// merge-stage reorder buffer makes it canonical).
std::vector<std::uint64_t> DeliveredIds(ShardedFabricator* fab,
                                        query::QueryId id) {
  std::vector<std::uint64_t> ids;
  const auto stream = fab->GetStream(id);
  EXPECT_TRUE(stream.ok());
  if (stream.ok()) {
    for (const auto& tuple : stream->sink->tuples()) {
      ids.push_back(tuple.id);
    }
  }
  return ids;
}

TEST(RebalanceRuntimeTest, RequiresEnableFlag) {
  ShardedConfig config;
  config.num_shards = 2;
  config.fabric = TestFabricConfig();
  auto fab = ShardedFabricator::Make(TestGrid(), config).MoveValue();
  EXPECT_EQ(fab->Rebalance().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(RebalanceRuntimeTest, MigratesHotCellsByteExactly) {
  const geom::Grid grid = TestGrid();
  ShardedConfig config;
  config.num_shards = 2;
  config.fabric = TestFabricConfig();
  config.enable_rebalancing = true;
  config.rebalance.imbalance_trigger = 1.0;
  config.rebalance.min_cell_tuples = 1;
  config.rebalance.max_moves_per_event = 16;
  config.rebalance.cooldown_events = 1;

  auto hot = ShardedFabricator::Make(grid, config).MoveValue();
  ShardedConfig off = config;
  off.enable_rebalancing = false;
  auto cold = ShardedFabricator::Make(grid, off).MoveValue();

  // Two cells owned by the same shard carry all the traffic, so the greedy
  // planner is guaranteed a gap-narrowing move (one cell's weight is about
  // half the hot/cold gap).
  std::vector<geom::CellIndex> hot_cells;
  const std::size_t shard0 = hot->ShardForCell({0, 0});
  hot_cells.push_back({0, 0});
  for (std::uint32_t q = 0; q < 4 && hot_cells.size() < 2; ++q) {
    for (std::uint32_t r = 0; r < 4 && hot_cells.size() < 2; ++r) {
      const geom::CellIndex index{q, r};
      if (!(index == geom::CellIndex{0, 0}) &&
          hot->ShardForCell(index) == shard0) {
        hot_cells.push_back(index);
      }
    }
  }
  ASSERT_EQ(hot_cells.size(), 2u) << "hash put every other cell elsewhere";

  const auto q_hot = hot->InsertQuery(kRain, geom::Rect(0, 0, 4, 4), 6.0);
  const auto q_cold = cold->InsertQuery(kRain, geom::Rect(0, 0, 4, 4), 6.0);
  ASSERT_TRUE(q_hot.ok());
  ASSERT_TRUE(q_cold.ok());

  double t_hot = 0.0, t_cold = 0.0;
  std::uint64_t id_hot = 1, id_cold = 1;
  std::uint64_t pumped = 0;
  auto pump = [&](std::size_t batches) {
    for (std::size_t b = 0; b < batches; ++b) {
      auto a = MakeCellBatch(grid, hot_cells, 64, &t_hot, &id_hot);
      auto c = MakeCellBatch(grid, hot_cells, 64, &t_cold, &id_cold);
      pumped += a.size();
      ASSERT_TRUE(hot->ProcessBatch(a).ok());
      ASSERT_TRUE(cold->ProcessBatch(c).ok());
    }
  };

  pump(4);
  const auto moved = hot->Rebalance();
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  EXPECT_GE(*moved, 1u) << "hot shard never shed a cell";
  // The routing table now disagrees with the static hash for the moved
  // cells; both hot cells still resolve to exactly one live shard.
  std::size_t moved_owners = 0;
  for (const geom::CellIndex& cell : hot_cells) {
    const std::size_t owner = hot->ShardForCell(cell);
    EXPECT_LT(owner, 2u);
    if (owner != shard0) {
      ++moved_owners;
    }
  }
  EXPECT_GE(moved_owners, 1u);

  // Keep pumping across the migration: the adopted chains continue the
  // exact RNG sequence, so the delivered stream (content AND order) stays
  // identical to the never-rebalanced twin.
  pump(4);
  (void)hot->Rebalance();  // second round exercises cooldown + reverse flow
  pump(3);
  ASSERT_TRUE(hot->ValidateInvariants().ok());
  ASSERT_TRUE(cold->ValidateInvariants().ok());

  ASSERT_TRUE(hot->Drain().ok());
  ASSERT_TRUE(cold->Drain().ok());
  EXPECT_EQ(DeliveredIds(hot.get(), q_hot->id),
            DeliveredIds(cold.get(), q_cold->id));

  // Load-counter conservation across migrations: nothing double-counted,
  // nothing lost, and the routing table still covers every cell.
  const auto stats = hot->TrySnapshot();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->tuples_routed + stats->tuples_unrouted, pumped);
  EXPECT_GE(stats->rebalance_events, 1u);
  EXPECT_GE(stats->cells_migrated, 1u);
  EXPECT_GE(stats->routing_version, 1u);
  std::uint64_t enqueued = 0, processed = 0;
  std::size_t owned = 0;
  for (const ShardLoadStats& shard : stats->per_shard) {
    enqueued += shard.tuples_enqueued;
    processed += shard.tuples_processed;
    owned += shard.cells_owned;
  }
  EXPECT_EQ(enqueued, processed);
  EXPECT_EQ(owned, static_cast<std::size_t>(grid.NumCells()));
}

TEST(RebalanceRuntimeTest, StealingPreservesDeliveryByteExactly) {
  const geom::Grid grid = TestGrid();
  ShardedConfig config;
  config.num_shards = 2;
  config.fabric = TestFabricConfig();
  config.enable_stealing = true;
  auto stealing = ShardedFabricator::Make(grid, config).MoveValue();
  config.enable_stealing = false;
  auto fixed = ShardedFabricator::Make(grid, config).MoveValue();

  // Disjoint single-cell queries: each is its own chain group, so every
  // batch publishes several independently claimable jobs.
  std::vector<query::QueryId> steal_ids, fixed_ids;
  for (std::uint32_t q = 0; q < 4; ++q) {
    const auto a =
        stealing->InsertQuery(kRain, geom::Rect(q, q, q + 1, q + 1), 5.0);
    const auto b =
        fixed->InsertQuery(kRain, geom::Rect(q, q, q + 1, q + 1), 5.0);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    steal_ids.push_back(a->id);
    fixed_ids.push_back(b->id);
  }

  std::vector<geom::CellIndex> diagonal = {{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  double t_a = 0.0, t_b = 0.0;
  std::uint64_t id_a = 1, id_b = 1;
  for (std::size_t b = 0; b < 30; ++b) {
    auto batch_a = MakeCellBatch(grid, diagonal, 96, &t_a, &id_a);
    auto batch_b = MakeCellBatch(grid, diagonal, 96, &t_b, &id_b);
    ASSERT_TRUE(stealing->EnqueueBatch(batch_a).ok());
    ASSERT_TRUE(fixed->EnqueueBatch(batch_b).ok());
  }
  ASSERT_TRUE(stealing->Drain().ok());
  ASSERT_TRUE(fixed->Drain().ok());
  ASSERT_TRUE(stealing->ValidateInvariants().ok());

  std::uint64_t delivered = 0;
  for (std::size_t i = 0; i < steal_ids.size(); ++i) {
    const auto ids = DeliveredIds(stealing.get(), steal_ids[i]);
    delivered += ids.size();
    EXPECT_EQ(ids, DeliveredIds(fixed.get(), fixed_ids[i]));
  }
  EXPECT_GT(delivered, 0u) << "workload delivered nothing; test is vacuous";
}

TEST(RebalanceRuntimeTest, StressChurnMigrationAndStealing) {
  // TSan target (named in CI): concurrent enqueue from two producer
  // threads, query churn, periodic migration barriers, snapshots and a
  // steal-enabled worker pool all interleave. Correctness here is "no
  // race, no deadlock, invariants hold" — the byte-exactness tests above
  // pin the content.
  const geom::Grid grid = TestGrid();
  ShardedConfig config;
  config.num_shards = 3;
  config.queue_capacity = 8;
  config.fabric = TestFabricConfig();
  config.enable_stealing = true;
  config.enable_rebalancing = true;
  config.rebalance.imbalance_trigger = 1.0;
  config.rebalance.min_cell_tuples = 1;
  config.rebalance.cooldown_events = 1;
  auto fab = ShardedFabricator::Make(grid, config).MoveValue();

  const auto base = fab->InsertQuery(kRain, geom::Rect(0, 0, 4, 4), 8.0);
  ASSERT_TRUE(base.ok());

  std::vector<geom::CellIndex> corner = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  std::thread producer([&fab, &grid, corner] {
    double t = 1e6;  // disjoint time range from the main thread's tuples
    std::uint64_t next_id = 1u << 20;
    for (std::size_t b = 0; b < 40; ++b) {
      auto batch = MakeCellBatch(grid, corner, 48, &t, &next_id);
      if (!fab->EnqueueBatch(batch).ok()) {
        return;
      }
    }
  });

  double t = 0.0;
  std::uint64_t next_id = 1;
  query::QueryId churn_id = 0;
  for (std::size_t round = 0; round < 30; ++round) {
    auto batch = MakeCellBatch(grid, corner, 64, &t, &next_id);
    ASSERT_TRUE(fab->EnqueueBatch(batch).ok());
    if (round % 5 == 0) {
      if (churn_id != 0) {
        ASSERT_TRUE(fab->RemoveQuery(churn_id).ok());
      }
      const auto q = fab->InsertQuery(kRain, geom::Rect(0, 0, 2, 2), 3.0);
      ASSERT_TRUE(q.ok());
      churn_id = q->id;
    }
    if (round % 3 == 0) {
      ASSERT_TRUE(fab->Rebalance().ok());
    }
    if (round % 7 == 0) {
      ASSERT_TRUE(fab->TrySnapshot().ok());
    }
  }
  producer.join();
  ASSERT_TRUE(fab->Drain().ok());
  ASSERT_TRUE(fab->ValidateInvariants().ok());
}

// ---------------------------------------------------------------------------
// Engine-level byte-exactness pins: rebalancing + stealing forced on, at an
// aggressive cadence, must not change a single delivered byte relative to
// the plain engine — for every shard count and pipeline depth.

sensing::CrowdWorld MakeEngineWorld(std::size_t sensors) {
  sensing::PopulationConfig pc;
  pc.region = geom::Rect(0, 0, 6, 6);
  pc.num_sensors = sensors;
  pc.responsiveness_sigma = 0.2;
  Rng rng(5);
  auto population = sensing::SensorPopulation::Make(pc, &rng);
  EXPECT_TRUE(population.ok());
  auto world =
      sensing::CrowdWorld::Make(population.MoveValue(), rng.Fork()).MoveValue();
  sensing::TemperatureField::Params tp;
  sensing::ResponseBehavior device = sensing::ResponseModel::DeviceBehavior();
  EXPECT_TRUE(world
                  .RegisterAttribute(
                      "temp", false,
                      sensing::TemperatureField::Make(tp).MoveValue(), device)
                  .ok());
  sensing::RainCell cell;
  cell.x0 = 0.0;
  cell.y0 = 0.0;
  cell.radius = 3.0;
  sensing::ResponseBehavior human = sensing::ResponseModel::HumanBehavior();
  human.base_logit = 2.0;
  human.delay_mu = -1.0;
  EXPECT_TRUE(world
                  .RegisterAttribute(
                      "rain", true,
                      sensing::RainField::Make({cell}).MoveValue(), human)
                  .ok());
  return world;
}

/// Order-sensitive FNV-1a fold over the delivered tuples' identity fields.
std::uint64_t StreamDigest(const std::vector<ops::Tuple>& tuples) {
  std::uint64_t h = 14695981039346656037ULL;
  auto fold = [&h](const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  };
  for (const auto& tuple : tuples) {
    fold(&tuple.id, sizeof(tuple.id));
    fold(&tuple.attribute, sizeof(tuple.attribute));
    fold(&tuple.point.t, sizeof(tuple.point.t));
    fold(&tuple.point.x, sizeof(tuple.point.x));
    fold(&tuple.point.y, sizeof(tuple.point.y));
  }
  return h;
}

struct EngineRunResult {
  std::uint64_t rain_digest = 0;
  std::uint64_t temp_digest = 0;
  std::uint64_t tuples_routed = 0;
  std::uint64_t incentive_raises = 0;
  std::uint64_t cells_migrated = 0;

  bool SameStreams(const EngineRunResult& o) const {
    return rain_digest == o.rain_digest && temp_digest == o.temp_digest &&
           tuples_routed == o.tuples_routed &&
           incentive_raises == o.incentive_raises;
  }
};

/// The skewed churn workload: a hot-corner rain query (90%+ of traffic in a
/// few cells), a full-region temp query cancelled and replaced mid-run, the
/// order-sensitive incentive loop engaged throughout.
void RunRebalancingEngine(std::size_t num_shards, std::size_t pipeline_depth,
                          bool rebalance, EngineRunResult* out) {
  engine::EngineConfig config;
  config.grid_h = 9;
  config.step_dt = 1.0;
  config.fabric.flatten_batch_size = 32;
  config.budget.initial = 24.0;
  config.budget.delta = 8.0;
  config.budget.max = 32.0;
  config.enable_incentives = true;
  config.incentive.max = 8.0;
  config.num_shards = num_shards;
  config.pipeline_depth = pipeline_depth;
  if (rebalance) {
    config.rebalance_every_steps = 1;  // every epoch boundary (aggressive)
    config.rebalance.imbalance_trigger = 1.0;
    config.rebalance.min_cell_tuples = 1;
    config.rebalance.cooldown_events = 1;
    config.enable_work_stealing = true;
  }
  auto made = engine::CraqrEngine::Make(MakeEngineWorld(80), config);
  ASSERT_TRUE(made.ok());
  auto engine = made.MoveValue();
  const auto rain = engine->SubmitText(
      "ACQUIRE rain FROM REGION(0, 0, 2, 2) RATE 20 PER KM2 PER MIN");
  const auto temp1 = engine->SubmitText(
      "ACQUIRE temp FROM REGION(0, 0, 6, 6) RATE 0.5 PER KM2 PER MIN");
  ASSERT_TRUE(rain.ok());
  ASSERT_TRUE(temp1.ok());
  ASSERT_TRUE(engine->RunFor(12.0).ok());
  ASSERT_TRUE(engine->Cancel(temp1->id).ok());
  ASSERT_TRUE(engine->RunFor(8.0).ok());
  const auto temp2 = engine->SubmitText(
      "ACQUIRE temp FROM REGION(1, 1, 5, 5) RATE 0.4 PER KM2 PER MIN");
  ASSERT_TRUE(temp2.ok());
  ASSERT_TRUE(engine->RunFor(12.0).ok());

  const ShardedStats stats = engine->Stats();
  out->rain_digest = StreamDigest(rain->sink->tuples());
  out->temp_digest = StreamDigest(temp2->sink->tuples());
  out->tuples_routed = stats.tuples_routed;
  out->incentive_raises = engine->incentives().raises();
  out->cells_migrated = stats.cells_migrated;
}

TEST(RebalanceEngineTest, ByteExactAcrossShardCountsAndDepths) {
  for (const std::size_t depth : {1u, 2u}) {
    SCOPED_TRACE("pipeline_depth=" + std::to_string(depth));
    EngineRunResult reference;
    RunRebalancingEngine(1, depth, /*rebalance=*/false, &reference);
    ASSERT_NE(reference.rain_digest, 0u);
    ASSERT_GT(reference.incentive_raises, 0u) << "incentives never engaged";
    std::uint64_t migrations_seen = 0;
    for (const std::size_t shards : {2u, 4u}) {
      SCOPED_TRACE("num_shards=" + std::to_string(shards));
      EngineRunResult rebalanced;
      RunRebalancingEngine(shards, depth, /*rebalance=*/true, &rebalanced);
      EXPECT_TRUE(reference.SameStreams(rebalanced));
      migrations_seen += rebalanced.cells_migrated;
    }
    // The pin is only meaningful if migrations actually happened.
    EXPECT_GT(migrations_seen, 0u) << "rebalancer never migrated a cell";
  }
}

}  // namespace
}  // namespace runtime
}  // namespace craqr
