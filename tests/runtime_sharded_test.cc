#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "fabric/fabricator.h"
#include "ops/value_pool.h"
#include "runtime/sharded_fabricator.h"

namespace craqr {
namespace runtime {
namespace {

constexpr ops::AttributeId kRain = 0;
constexpr ops::AttributeId kTemp = 1;

geom::Grid TestGrid() {
  return geom::Grid::Make(geom::Rect(0, 0, 4, 4), 16).MoveValue();
}

fabric::FabricConfig TestFabricConfig() {
  fabric::FabricConfig config;
  config.flatten_batch_size = 32;
  config.seed = 0xC0FFEE;
  return config;
}

/// Deterministic batch of `n` tuples spread over the grid, with times
/// advancing from *t (monotone across batches, as the handler produces).
std::vector<ops::Tuple> MakeBatch(Rng* rng, double* t, std::size_t n,
                                  std::uint64_t first_id) {
  std::vector<ops::Tuple> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ops::Tuple tuple;
    tuple.id = first_id + i;
    tuple.attribute = (i % 3 == 0) ? kTemp : kRain;
    *t += 0.002;
    tuple.point = geom::SpaceTimePoint{*t, rng->Uniform(0.0, 4.0),
                                       rng->Uniform(0.0, 4.0)};
    batch.push_back(tuple);
  }
  return batch;
}

/// What one workload run delivered, independent of execution order: per
/// query the count and the sorted ids of delivered tuples, plus the
/// router-level aggregates.
struct WorkloadResult {
  std::uint64_t tuples_routed = 0;
  std::uint64_t tuples_unrouted = 0;
  std::map<query::QueryId, std::uint64_t> delivered_counts;
  std::map<query::QueryId, std::vector<std::uint64_t>> delivered_ids;
};

/// Drives the same churn workload against either a StreamFabricator or a
/// ShardedFabricator (identical public verbs) and snapshots what each
/// live query's sink received. Invariants are validated mid-churn.
/// (Out-parameter because ASSERT_* requires a void-returning function.)
template <typename Fab>
void RunChurnWorkload(Fab* fab, WorkloadResult* result) {
  Rng rng(99);
  double t = 0.0;
  std::uint64_t next_id = 1;
  auto pump = [&](std::size_t batches) {
    for (std::size_t b = 0; b < batches; ++b) {
      auto batch = MakeBatch(&rng, &t, 96, next_id);
      next_id += batch.size();
      ASSERT_TRUE(fab->ProcessBatch(batch).ok());
    }
  };

  const auto q1 = fab->InsertQuery(kRain, geom::Rect(0, 0, 4, 4), 6.0);
  ASSERT_TRUE(q1.ok());
  const auto q2 = fab->InsertQuery(kRain, geom::Rect(1, 1, 3, 3), 3.0);
  ASSERT_TRUE(q2.ok());
  const auto q3 = fab->InsertQuery(kTemp, geom::Rect(0, 0, 2, 4), 4.0);
  ASSERT_TRUE(q3.ok());
  pump(5);
  ASSERT_TRUE(fab->ValidateInvariants().ok());

  // Churn: drop the nested query (exercises T-chain re-merge on every
  // overlapped cell), keep pumping, add a fresh overlapping query.
  ASSERT_TRUE(fab->RemoveQuery(q2->id).ok());
  pump(3);
  const auto q4 = fab->InsertQuery(kRain, geom::Rect(2, 0, 4, 3), 2.0);
  ASSERT_TRUE(q4.ok());
  pump(4);
  ASSERT_TRUE(fab->ValidateInvariants().ok());

  result->tuples_routed = fab->tuples_routed();
  result->tuples_unrouted = fab->tuples_unrouted();
  for (const auto id : {q1->id, q3->id, q4->id}) {
    const auto stream = fab->GetStream(id);
    ASSERT_TRUE(stream.ok());
    result->delivered_counts[id] = stream->sink->total_received();
    std::vector<std::uint64_t> ids;
    for (const auto& tuple : stream->sink->tuples()) {
      ids.push_back(tuple.id);
    }
    std::sort(ids.begin(), ids.end());
    result->delivered_ids[id] = std::move(ids);
  }
}

WorkloadResult RunSharded(std::size_t num_shards) {
  ShardedConfig config;
  config.num_shards = num_shards;
  config.fabric = TestFabricConfig();
  auto fab = ShardedFabricator::Make(TestGrid(), config).MoveValue();
  WorkloadResult result;
  RunChurnWorkload(fab.get(), &result);
  return result;
}

WorkloadResult RunSingleThreaded() {
  auto fab =
      fabric::StreamFabricator::Make(TestGrid(), TestFabricConfig())
          .MoveValue();
  WorkloadResult result;
  RunChurnWorkload(fab.get(), &result);
  return result;
}

void ExpectSameDelivery(const WorkloadResult& a, const WorkloadResult& b) {
  EXPECT_EQ(a.tuples_routed, b.tuples_routed);
  EXPECT_EQ(a.tuples_unrouted, b.tuples_unrouted);
  EXPECT_EQ(a.delivered_counts, b.delivered_counts);
  EXPECT_EQ(a.delivered_ids, b.delivered_ids);
}

TEST(ShardedEquivalenceTest, MatchesSingleThreadedFabricatorUnderChurn) {
  const WorkloadResult reference = RunSingleThreaded();
  ASSERT_FALSE(reference.delivered_counts.empty());
  std::uint64_t total = 0;
  for (const auto& [id, count] : reference.delivered_counts) {
    (void)id;
    total += count;
  }
  ASSERT_GT(total, 0u) << "workload delivered nothing; test is vacuous";
  for (const std::size_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE("num_shards=" + std::to_string(shards));
    ExpectSameDelivery(reference, RunSharded(shards));
  }
}

TEST(ShardedEquivalenceTest, FixedShardCountIsDeterministic) {
  ExpectSameDelivery(RunSharded(3), RunSharded(3));
}

TEST(ShardedEquivalenceTest, CellsPartitionAcrossShards) {
  ShardedConfig config;
  config.num_shards = 4;
  config.fabric = TestFabricConfig();
  auto fab = ShardedFabricator::Make(TestGrid(), config).MoveValue();
  EXPECT_EQ(fab->num_shards(), 4u);
  // Every cell maps to exactly one shard, stably.
  for (std::uint32_t r = 0; r < 4; ++r) {
    for (std::uint32_t c = 0; c < 4; ++c) {
      const geom::CellIndex index{r, c};
      const std::size_t shard = fab->ShardForCell(index);
      EXPECT_LT(shard, 4u);
      EXPECT_EQ(shard, fab->ShardForCell(index));
    }
  }
}

TEST(ShardedEquivalenceTest, PipelinedEnqueueMatchesSynchronousBatches) {
  ShardedConfig config;
  config.num_shards = 4;
  config.queue_capacity = 4;  // exercise back-pressure
  config.fabric = TestFabricConfig();
  auto sync_fab = ShardedFabricator::Make(TestGrid(), config).MoveValue();
  auto async_fab = ShardedFabricator::Make(TestGrid(), config).MoveValue();
  const auto qs = sync_fab->InsertQuery(kRain, geom::Rect(0, 0, 4, 4), 5.0);
  const auto qa = async_fab->InsertQuery(kRain, geom::Rect(0, 0, 4, 4), 5.0);
  ASSERT_TRUE(qs.ok());
  ASSERT_TRUE(qa.ok());

  Rng rng_s(7), rng_a(7);
  double t_s = 0.0, t_a = 0.0;
  std::uint64_t id_s = 1, id_a = 1;
  for (int b = 0; b < 12; ++b) {
    auto batch = MakeBatch(&rng_s, &t_s, 64, id_s);
    id_s += batch.size();
    ASSERT_TRUE(sync_fab->ProcessBatch(batch).ok());
    batch = MakeBatch(&rng_a, &t_a, 64, id_a);
    id_a += batch.size();
    ASSERT_TRUE(async_fab->EnqueueBatch(batch).ok());
  }
  ASSERT_TRUE(async_fab->Drain().ok());
  EXPECT_EQ(sync_fab->tuples_routed(), async_fab->tuples_routed());
  EXPECT_EQ(sync_fab->GetStream(qs->id)->sink->total_received(),
            async_fab->GetStream(qa->id)->sink->total_received());
  EXPECT_TRUE(async_fab->ValidateInvariants().ok());
}

TEST(ShardedStressTest, ConcurrentQueryChurnWhileBatchesFlow) {
  ShardedConfig config;
  config.num_shards = 4;
  config.queue_capacity = 2;  // small queues so back-pressure engages
  config.fabric = TestFabricConfig();
  auto fab = ShardedFabricator::Make(TestGrid(), config).MoveValue();

  // One long-lived query so tuples always have somewhere to land.
  const auto anchor = fab->InsertQuery(kRain, geom::Rect(0, 0, 4, 4), 8.0);
  ASSERT_TRUE(anchor.ok());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> batches_pumped{0};
  std::atomic<std::uint64_t> churn_cycles{0};

  std::thread pump([&] {
    Rng rng(41);
    double t = 0.0;
    std::uint64_t next_id = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      auto batch = MakeBatch(&rng, &t, 48, next_id);
      next_id += batch.size();
      ASSERT_TRUE(fab->EnqueueBatch(batch).ok());
      batches_pumped.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::thread churn([&] {
    Rng rng(43);
    for (int i = 0; i < 60; ++i) {
      const double x0 = rng.Uniform(0.0, 2.0);
      const double y0 = rng.Uniform(0.0, 2.0);
      const auto q = fab->InsertQuery(
          (i % 2 == 0) ? kRain : kTemp,
          geom::Rect(x0, y0, x0 + 2.0, y0 + 2.0), 1.0 + (i % 5));
      ASSERT_TRUE(q.ok());
      if (i % 3 != 0) {
        ASSERT_TRUE(fab->RemoveQuery(q->id).ok());
      }
      churn_cycles.fetch_add(1, std::memory_order_relaxed);
    }
  });

  churn.join();
  stop = true;
  pump.join();

  ASSERT_TRUE(fab->Drain().ok());
  EXPECT_TRUE(fab->ValidateInvariants().ok());
  EXPECT_EQ(churn_cycles.load(), 60u);
  EXPECT_GT(batches_pumped.load(), 0u);

  const ShardedStats stats = fab->Snapshot();
  // Every pumped tuple was either routed into some shard topology or
  // counted as unrouted; none vanish.
  EXPECT_EQ(stats.tuples_routed + stats.tuples_unrouted,
            batches_pumped.load() * 48u);
  // 60 churn queries, 1/3 kept (i % 3 == 0), plus the anchor.
  EXPECT_EQ(stats.live_queries, 21u);
  EXPECT_GT(stats.tuples_routed, 0u);
  EXPECT_GT(fab->GetStream(anchor->id)->sink->total_received(), 0u);
}

TEST(ShardedEquivalenceTest, ViolationCallbackMayReenterTheRuntime) {
  // The callback is user code (budget tuning); it must be able to call
  // back into the runtime without deadlocking on the router mutex.
  ShardedConfig config;
  config.num_shards = 2;
  config.fabric = TestFabricConfig();
  config.fabric.flatten_batch_size = 16;  // frequent F reports
  auto fab = ShardedFabricator::Make(TestGrid(), config).MoveValue();
  const auto q = fab->InsertQuery(kRain, geom::Rect(0, 0, 4, 4), 6.0);
  ASSERT_TRUE(q.ok());

  std::uint64_t reports = 0;
  fab->SetViolationCallback(
      [&](ops::AttributeId, const geom::CellIndex&,
          const ops::FlattenBatchReport&) {
        ++reports;
        EXPECT_TRUE(fab->GetStream(q->id).ok());   // re-entrant read
        EXPECT_EQ(fab->NumQueries(), 1u);          // re-entrant read
      });

  Rng rng(3);
  double t = 0.0;
  std::uint64_t next_id = 1;
  for (int b = 0; b < 10; ++b) {
    auto batch = MakeBatch(&rng, &t, 96, next_id);
    next_id += batch.size();
    ASSERT_TRUE(fab->ProcessBatch(batch).ok());
  }
  EXPECT_GT(reports, 0u) << "no F reports fired; callback path untested";
}

/// One violation replay observation: enough fields to pin identity AND
/// order across execution modes.
struct ReplayRecord {
  ops::AttributeId attribute = 0;
  std::uint32_t q = 0;
  std::uint32_t r = 0;
  double completed_at = 0.0;
  double violation_percent = 0.0;

  bool operator==(const ReplayRecord& o) const {
    return attribute == o.attribute && q == o.q && r == o.r &&
           completed_at == o.completed_at &&
           violation_percent == o.violation_percent;
  }
};

TEST(ShardedEpochTest, DrainThroughReleasesFeedbackExactlyPerEpoch) {
  // The pipelined engine's contract rests on this: enqueue a window of
  // epoch-stamped batches up front (shards may race arbitrarily far
  // ahead), then drain epoch by epoch — the violation callback must fire
  // exactly the reports of each epoch at each drain, in exactly the order
  // the synchronous per-batch runtime fires them.
  ShardedConfig config;
  config.num_shards = 2;
  config.fabric = TestFabricConfig();
  config.fabric.flatten_batch_size = 16;  // frequent F reports

  constexpr std::size_t kBatches = 8;
  std::vector<std::vector<ops::Tuple>> batches;
  {
    Rng rng(77);
    double t = 0.0;
    std::uint64_t next_id = 1;
    for (std::size_t b = 0; b < kBatches; ++b) {
      batches.push_back(MakeBatch(&rng, &t, 96, next_id));
      next_id += batches.back().size();
    }
  }

  // Reference: synchronous ProcessBatch, recording the replay sequence
  // and the report count after every batch boundary.
  std::vector<ReplayRecord> ref_records;
  std::vector<std::size_t> ref_boundary_counts;
  {
    auto fab = ShardedFabricator::Make(TestGrid(), config).MoveValue();
    ASSERT_TRUE(fab->InsertQuery(kRain, geom::Rect(0, 0, 4, 4), 6.0).ok());
    fab->SetViolationCallback([&](ops::AttributeId attribute,
                                  const geom::CellIndex& cell,
                                  const ops::FlattenBatchReport& report) {
      ref_records.push_back({attribute, cell.q, cell.r, report.completed_at,
                             report.violation_percent});
    });
    for (const auto& batch : batches) {
      ASSERT_TRUE(fab->ProcessBatch(batch).ok());
      ref_boundary_counts.push_back(ref_records.size());
    }
  }
  ASSERT_GT(ref_records.size(), 0u) << "no F reports fired; test is vacuous";

  // Pipelined: everything enqueued first, horizon engaged at 0 so nothing
  // may replay early, then drained one epoch at a time.
  std::vector<ReplayRecord> records;
  std::vector<std::size_t> boundary_counts;
  {
    auto fab = ShardedFabricator::Make(TestGrid(), config).MoveValue();
    ASSERT_TRUE(fab->InsertQuery(kRain, geom::Rect(0, 0, 4, 4), 6.0).ok());
    fab->SetReplayHorizon(0);
    fab->SetViolationCallback([&](ops::AttributeId attribute,
                                  const geom::CellIndex& cell,
                                  const ops::FlattenBatchReport& report) {
      records.push_back({attribute, cell.q, cell.r, report.completed_at,
                         report.violation_percent});
    });
    for (std::size_t b = 0; b < kBatches; ++b) {
      ops::TupleBatch columns(batches[b]);
      ASSERT_TRUE(
          fab->EnqueueBatch(columns, static_cast<std::uint64_t>(b + 1)).ok());
    }
    // A full Drain() may only flush deliveries — the horizon still holds
    // every report.
    ASSERT_TRUE(fab->Drain().ok());
    EXPECT_EQ(records.size(), 0u);
    for (std::size_t e = 1; e <= kBatches; ++e) {
      ASSERT_TRUE(fab->DrainThrough(e).ok());
      boundary_counts.push_back(records.size());
    }
    EXPECT_TRUE(fab->ValidateInvariants().ok());
  }

  // Same reports, same order, released at the same epoch boundaries.
  EXPECT_EQ(boundary_counts, ref_boundary_counts);
  ASSERT_EQ(records.size(), ref_records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_TRUE(records[i] == ref_records[i]);
  }
}

TEST(ShardedEpochTest, EpochsMustBeMonotone) {
  ShardedConfig config;
  config.num_shards = 2;
  config.fabric = TestFabricConfig();
  auto fab = ShardedFabricator::Make(TestGrid(), config).MoveValue();
  Rng rng(9);
  double t = 0.0;
  auto batch = MakeBatch(&rng, &t, 8, 1);
  ops::TupleBatch columns(batch);
  ASSERT_TRUE(fab->EnqueueBatch(columns, 5).ok());
  columns = ops::TupleBatch(batch);
  EXPECT_EQ(fab->EnqueueBatch(columns, 3).code(),
            StatusCode::kInvalidArgument);
  columns = ops::TupleBatch(batch);
  EXPECT_EQ(fab->EnqueueBatch(columns, 0).code(),
            StatusCode::kInvalidArgument);
  // Equal epochs are rejected too: a split epoch could split its delivery
  // group across two merge-stage flushes (strictly increasing required).
  columns = ops::TupleBatch(batch);
  EXPECT_EQ(fab->EnqueueBatch(columns, 5).code(),
            StatusCode::kInvalidArgument);
  columns = ops::TupleBatch(batch);
  EXPECT_TRUE(fab->EnqueueBatch(columns, 6).ok());
  EXPECT_TRUE(fab->Drain().ok());
}

TEST(ShardedLoadTest, PerShardLoadCountersAccountForRoutedWork) {
  ShardedConfig config;
  config.num_shards = 4;
  config.fabric = TestFabricConfig();
  auto fab = ShardedFabricator::Make(TestGrid(), config).MoveValue();
  ASSERT_TRUE(fab->InsertQuery(kRain, geom::Rect(0, 0, 4, 4), 6.0).ok());
  ASSERT_TRUE(fab->InsertQuery(kTemp, geom::Rect(0, 0, 2, 4), 4.0).ok());

  Rng rng(55);
  double t = 0.0;
  std::uint64_t next_id = 1;
  std::uint64_t pumped = 0;
  for (int b = 0; b < 10; ++b) {
    auto batch = MakeBatch(&rng, &t, 96, next_id);
    next_id += batch.size();
    pumped += batch.size();
    ASSERT_TRUE(fab->EnqueueBatch(batch).ok());
  }
  ASSERT_TRUE(fab->Drain().ok());

  const auto stats = fab->TrySnapshot();
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->per_shard.size(), 4u);
  std::uint64_t enqueued = 0, processed = 0, batches_enq = 0, batches_done = 0;
  std::uint64_t busy = 0;
  for (const auto& load : stats->per_shard) {
    enqueued += load.tuples_enqueued;
    processed += load.tuples_processed;
    batches_enq += load.batches_enqueued;
    batches_done += load.batches_processed;
    busy += load.busy_ns;
    EXPECT_EQ(load.queue_depth, 0u);  // post-barrier snapshot
  }
  // The router partitions every in-grid tuple to exactly one shard; the
  // workers have processed everything after the drain.
  EXPECT_EQ(processed, enqueued);
  EXPECT_EQ(batches_done, batches_enq);
  EXPECT_LE(enqueued, pumped);
  EXPECT_EQ(stats->tuples_routed + stats->tuples_unrouted, pumped);
  EXPECT_LE(stats->tuples_routed, enqueued);
  EXPECT_GT(busy, 0u);
  EXPECT_EQ(stats->value_pool_bytes, ops::ValuePool::Global().ApproxBytes());
}

TEST(ShardedStressTest, DestructorJoinsWorkersWithQueuedWork) {
  ShardedConfig config;
  config.num_shards = 4;
  config.fabric = TestFabricConfig();
  auto fab = ShardedFabricator::Make(TestGrid(), config).MoveValue();
  ASSERT_TRUE(fab->InsertQuery(kRain, geom::Rect(0, 0, 4, 4), 4.0).ok());
  Rng rng(5);
  double t = 0.0;
  for (int b = 0; b < 8; ++b) {
    ASSERT_TRUE(
        fab->EnqueueBatch(MakeBatch(&rng, &t, 32, 1 + 32 * b)).ok());
  }
  // Destruction with work still queued must not hang or crash.
  fab.reset();
}

}  // namespace
}  // namespace runtime
}  // namespace craqr
