#include <gtest/gtest.h>

#include <cmath>

#include "geometry/point.h"
#include "pointprocess/intensity.h"

namespace craqr {
namespace pp {
namespace {

SpaceTimeWindow UnitWindow() {
  return SpaceTimeWindow{0.0, 10.0, geom::Rect(0, 0, 2, 3)};
}

TEST(ConstantIntensityTest, RateAndIntegral) {
  const auto model = ConstantIntensity::Make(4.0);
  ASSERT_TRUE(model.ok());
  const SpaceTimeWindow w = UnitWindow();
  EXPECT_DOUBLE_EQ((*model)->Rate({1.0, 1.0, 1.0}), 4.0);
  EXPECT_DOUBLE_EQ((*model)->UpperBound(w), 4.0);
  // Volume = 10 * 6 = 60.
  EXPECT_DOUBLE_EQ((*model)->Integral(w), 240.0);
}

TEST(ConstantIntensityTest, RejectsNegativeRate) {
  EXPECT_FALSE(ConstantIntensity::Make(-1.0).ok());
  EXPECT_FALSE(ConstantIntensity::Make(std::nan("")).ok());
}

TEST(LinearIntensityTest, MatchesEquationOne) {
  const auto model = LinearIntensity::Make({1.0, 0.5, -0.25, 2.0});
  ASSERT_TRUE(model.ok());
  // theta0 + theta1*t + theta2*x + theta3*y
  EXPECT_DOUBLE_EQ((*model)->Rate({2.0, 4.0, 1.0}),
                   1.0 + 0.5 * 2.0 + (-0.25) * 4.0 + 2.0 * 1.0);
}

TEST(LinearIntensityTest, ClampsBelowMinRate) {
  const auto model = LinearIntensity::Make({-10.0, 0.0, 0.0, 0.0}, 0.5);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ((*model)->Rate({0.0, 0.0, 0.0}), 0.5);
}

TEST(LinearIntensityTest, UpperBoundIsCornerMax) {
  const auto model = LinearIntensity::Make({1.0, 1.0, 2.0, 3.0});
  ASSERT_TRUE(model.ok());
  const SpaceTimeWindow w = UnitWindow();
  // Max at (t=10, x=2, y=3): 1 + 10 + 4 + 9 = 24.
  EXPECT_DOUBLE_EQ((*model)->UpperBound(w), 24.0);
}

TEST(LinearIntensityTest, AnalyticIntegralMatchesCentroid) {
  const auto model = LinearIntensity::Make({5.0, 0.2, -0.1, 0.3});
  ASSERT_TRUE(model.ok());
  const SpaceTimeWindow w = UnitWindow();
  // All-positive over the window -> integral = V * lambda(centroid).
  const double expected =
      w.Volume() * (5.0 + 0.2 * 5.0 + (-0.1) * 1.0 + 0.3 * 1.5);
  EXPECT_NEAR((*model)->Integral(w), expected, 1e-9);
}

TEST(LinearIntensityTest, ClampedIntegralFallsBackToQuadrature) {
  // Goes negative over part of the window: integral must exceed the naive
  // centroid formula's value because of the clamp at zero.
  const auto model = LinearIntensity::Make({0.0, 0.0, 1.0, 0.0}, 0.0);
  ASSERT_TRUE(model.ok());
  const SpaceTimeWindow w{0.0, 1.0, geom::Rect(-1, 0, 1, 1)};
  // True integral of max(x, 0) over x in [-1, 1], y in [0,1], t in [0,1]
  // is 1/2.
  EXPECT_NEAR((*model)->Integral(w), 0.5, 0.01);
}

TEST(LogLinearIntensityTest, RateAndClosedFormIntegral) {
  const auto model = LogLinearIntensity::Make({0.1, 0.02, -0.3, 0.15});
  ASSERT_TRUE(model.ok());
  const SpaceTimeWindow w = UnitWindow();
  EXPECT_NEAR((*model)->Rate({1.0, 1.0, 1.0}),
              std::exp(0.1 + 0.02 - 0.3 + 0.15), 1e-12);
  // Closed form vs the base-class quadrature.
  const double quadrature = (*model)->IntensityModel::Integral(w);
  EXPECT_NEAR((*model)->Integral(w) / quadrature, 1.0, 1e-3);
}

TEST(LogLinearIntensityTest, ZeroSlopesReduceToConstant) {
  const auto model = LogLinearIntensity::Make({std::log(7.0), 0.0, 0.0, 0.0});
  ASSERT_TRUE(model.ok());
  const SpaceTimeWindow w = UnitWindow();
  EXPECT_NEAR((*model)->Integral(w), 7.0 * w.Volume(), 1e-9);
}

TEST(GaussianBumpIntensityTest, PeakAndBaseline) {
  GaussianBump bump;
  bump.amplitude = 10.0;
  bump.x0 = 1.0;
  bump.y0 = 1.0;
  bump.sigma = 0.5;
  const auto model = GaussianBumpIntensity::Make(2.0, {bump});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR((*model)->Rate({0.0, 1.0, 1.0}), 12.0, 1e-12);
  // Far away the bump vanishes.
  EXPECT_NEAR((*model)->Rate({0.0, 100.0, 100.0}), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ((*model)->UpperBound(UnitWindow()), 12.0);
}

TEST(GaussianBumpIntensityTest, MovingBumpTracksCentre) {
  GaussianBump bump;
  bump.amplitude = 5.0;
  bump.x0 = 0.0;
  bump.y0 = 0.0;
  bump.sigma = 0.3;
  bump.vx = 1.0;  // km/min
  const auto model = GaussianBumpIntensity::Make(0.0, {bump});
  ASSERT_TRUE(model.ok());
  // At t=2 the centre is at x=2.
  EXPECT_NEAR((*model)->Rate({2.0, 2.0, 0.0}), 5.0, 1e-12);
  EXPECT_LT((*model)->Rate({2.0, 0.0, 0.0}), 0.01);
}

TEST(GaussianBumpIntensityTest, Validation) {
  GaussianBump bad;
  bad.sigma = 0.0;
  EXPECT_FALSE(GaussianBumpIntensity::Make(1.0, {bad}).ok());
  EXPECT_FALSE(GaussianBumpIntensity::Make(-1.0, {}).ok());
}

TEST(PiecewiseConstantIntensityTest, LookupAndIntegral) {
  // 2x2 grid over [0,2)^2; rates row-major (row = y).
  const auto model = PiecewiseConstantIntensity::Make(
      geom::Rect(0, 0, 2, 2), 2, 2, {1.0, 2.0, 3.0, 4.0});
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ((*model)->Rate({0.0, 0.5, 0.5}), 1.0);
  EXPECT_DOUBLE_EQ((*model)->Rate({0.0, 1.5, 0.5}), 2.0);
  EXPECT_DOUBLE_EQ((*model)->Rate({0.0, 0.5, 1.5}), 3.0);
  EXPECT_DOUBLE_EQ((*model)->Rate({0.0, 1.5, 1.5}), 4.0);
  EXPECT_DOUBLE_EQ((*model)->Rate({0.0, 5.0, 5.0}), 0.0);  // outside
  EXPECT_DOUBLE_EQ((*model)->UpperBound(UnitWindow()), 4.0);
  const SpaceTimeWindow w{0.0, 1.0, geom::Rect(0, 0, 2, 2)};
  EXPECT_NEAR((*model)->Integral(w), 1.0 + 2.0 + 3.0 + 4.0, 1e-12);
}

TEST(PiecewiseConstantIntensityTest, PartialWindowIntegral) {
  const auto model = PiecewiseConstantIntensity::Make(
      geom::Rect(0, 0, 2, 2), 2, 2, {1.0, 2.0, 3.0, 4.0});
  ASSERT_TRUE(model.ok());
  // Window covering only the left column for 2 minutes.
  const SpaceTimeWindow w{0.0, 2.0, geom::Rect(0, 0, 1, 2)};
  EXPECT_NEAR((*model)->Integral(w), 2.0 * (1.0 + 3.0), 1e-12);
}

TEST(PiecewiseConstantIntensityTest, Validation) {
  EXPECT_FALSE(
      PiecewiseConstantIntensity::Make(geom::Rect(), 1, 1, {1.0}).ok());
  EXPECT_FALSE(PiecewiseConstantIntensity::Make(geom::Rect(0, 0, 1, 1), 2, 2,
                                                {1.0, 2.0})
                   .ok());
  EXPECT_FALSE(PiecewiseConstantIntensity::Make(geom::Rect(0, 0, 1, 1), 1, 1,
                                                {-1.0})
                   .ok());
}

TEST(CombinatorTest, ScaledIntensity) {
  const auto base = ConstantIntensity::Make(3.0);
  ASSERT_TRUE(base.ok());
  const auto scaled = ScaledIntensity::Make(*base, 2.5);
  ASSERT_TRUE(scaled.ok());
  EXPECT_DOUBLE_EQ((*scaled)->Rate({0, 0, 0}), 7.5);
  EXPECT_DOUBLE_EQ((*scaled)->Integral(UnitWindow()),
                   2.5 * (*base)->Integral(UnitWindow()));
  EXPECT_FALSE(ScaledIntensity::Make(nullptr, 1.0).ok());
  EXPECT_FALSE(ScaledIntensity::Make(*base, -1.0).ok());
}

TEST(CombinatorTest, SumIntensity) {
  const auto a = ConstantIntensity::Make(3.0);
  const auto b = ConstantIntensity::Make(4.0);
  ASSERT_TRUE(a.ok() && b.ok());
  const auto sum = SumIntensity::Make(*a, *b);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ((*sum)->Rate({0, 0, 0}), 7.0);
  EXPECT_DOUBLE_EQ((*sum)->UpperBound(UnitWindow()), 7.0);
  EXPECT_FALSE(SumIntensity::Make(*a, nullptr).ok());
}

TEST(WindowTest, VolumeAndContainment) {
  const SpaceTimeWindow w = UnitWindow();
  EXPECT_DOUBLE_EQ(w.Duration(), 10.0);
  EXPECT_DOUBLE_EQ(w.Volume(), 60.0);
  EXPECT_TRUE(w.Contains({5.0, 1.0, 1.0}));
  EXPECT_FALSE(w.Contains({10.0, 1.0, 1.0}));  // half-open in time
  EXPECT_FALSE(w.Contains({5.0, 2.5, 1.0}));
  EXPECT_TRUE(w.IsValid());
  EXPECT_FALSE((SpaceTimeWindow{1.0, 1.0, geom::Rect(0, 0, 1, 1)}).IsValid());
  const auto c = w.Centroid();
  EXPECT_DOUBLE_EQ(c.t, 5.0);
  EXPECT_DOUBLE_EQ(c.x, 1.0);
  EXPECT_DOUBLE_EQ(c.y, 1.5);
}

}  // namespace
}  // namespace pp
}  // namespace craqr
