#include <gtest/gtest.h>

#include <cmath>

#include "common/math.h"
#include "common/rng.h"
#include "ops/extras.h"
#include "ops/thin.h"
#include "pointprocess/gof.h"
#include "pointprocess/simulate.h"

namespace craqr {
namespace ops {
namespace {

Tuple TupleAt(const geom::SpaceTimePoint& p) {
  Tuple tuple;
  tuple.point = p;
  return tuple;
}

TEST(ThinTest, ValidatesRates) {
  EXPECT_FALSE(ThinOperator::Make("t", 0.0, 1.0, Rng(1)).ok());
  EXPECT_FALSE(ThinOperator::Make("t", 2.0, 0.0, Rng(1)).ok());
  EXPECT_FALSE(ThinOperator::Make("t", 2.0, 2.0, Rng(1)).ok());
  // The paper requires lambda2 strictly less than lambda1.
  EXPECT_FALSE(ThinOperator::Make("t", 2.0, 3.0, Rng(1)).ok());
  EXPECT_TRUE(ThinOperator::Make("t", 3.0, 2.0, Rng(1)).ok());
}

TEST(ThinTest, RetainProbability) {
  auto thin = ThinOperator::Make("t", 8.0, 2.0, Rng(1)).MoveValue();
  EXPECT_DOUBLE_EQ(thin->retain_probability(), 0.25);
  EXPECT_DOUBLE_EQ(thin->input_rate(), 8.0);
  EXPECT_DOUBLE_EQ(thin->output_rate(), 2.0);
  EXPECT_EQ(thin->kind(), OperatorKind::kThin);
}

TEST(ThinTest, UpdateRatesValidates) {
  auto thin = ThinOperator::Make("t", 8.0, 2.0, Rng(1)).MoveValue();
  EXPECT_TRUE(thin->UpdateRates(10.0, 5.0).ok());
  EXPECT_DOUBLE_EQ(thin->retain_probability(), 0.5);
  EXPECT_FALSE(thin->UpdateRates(5.0, 5.0).ok());
  // Failed update leaves the old rates intact.
  EXPECT_DOUBLE_EQ(thin->input_rate(), 10.0);
}

/// The paper's claim: thinning a Poisson process with p = lambda2/lambda1
/// yields a Poisson process with rate lambda2.
class ThinRateTest : public ::testing::TestWithParam<double> {};

TEST_P(ThinRateTest, OutputRateMatchesTarget) {
  const double ratio = GetParam();
  const double lambda1 = 20.0;
  const double lambda2 = ratio * lambda1;
  const pp::SpaceTimeWindow w{0.0, 50.0, geom::Rect(0, 0, 3, 3)};
  Rng source_rng(31);
  const auto input = pp::SimulateHomogeneous(&source_rng, lambda1, w);
  ASSERT_TRUE(input.ok());

  auto thin = ThinOperator::Make("t", lambda1, lambda2, Rng(32)).MoveValue();
  auto sink = SinkOperator::Make("sink", 1 << 22).MoveValue();
  thin->AddOutput(sink.get());
  for (const auto& p : *input) {
    ASSERT_TRUE(thin->Push(TupleAt(p)).ok());
  }
  const double expected = lambda2 * w.Volume();
  EXPECT_GT(PoissonTwoSidedPValue(
                expected, static_cast<double>(sink->tuples().size())),
            1e-6)
      << "ratio=" << ratio << " retained=" << sink->tuples().size()
      << " expected=" << expected;
}

INSTANTIATE_TEST_SUITE_P(Ratios, ThinRateTest,
                         ::testing::Values(0.05, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           0.95));

TEST(ThinTest, OutputRemainsHomogeneous) {
  const pp::SpaceTimeWindow w{0.0, 60.0, geom::Rect(0, 0, 4, 4)};
  Rng source_rng(33);
  const auto input = pp::SimulateHomogeneous(&source_rng, 15.0, w);
  ASSERT_TRUE(input.ok());
  auto thin = ThinOperator::Make("t", 15.0, 5.0, Rng(34)).MoveValue();
  auto sink = SinkOperator::Make("sink", 1 << 22).MoveValue();
  thin->AddOutput(sink.get());
  for (const auto& p : *input) {
    ASSERT_TRUE(thin->Push(TupleAt(p)).ok());
  }
  std::vector<geom::SpaceTimePoint> retained;
  for (const auto& t : sink->tuples()) {
    retained.push_back(t.point);
  }
  const auto spatial = pp::TestSpatialHomogeneity(retained, w, 4, 4);
  ASSERT_TRUE(spatial.ok());
  EXPECT_GT(spatial->p_value, 1e-4);
  const auto temporal = pp::TestTemporalUniformity(retained, w);
  ASSERT_TRUE(temporal.ok());
  EXPECT_GT(temporal->p_value, 1e-4);
}

TEST(ThinTest, ThinningIsIndependentOfPosition) {
  // Retained fraction must be the same in every sub-region.
  const pp::SpaceTimeWindow w{0.0, 80.0, geom::Rect(0, 0, 2, 2)};
  Rng source_rng(35);
  const auto input = pp::SimulateHomogeneous(&source_rng, 25.0, w);
  ASSERT_TRUE(input.ok());
  auto thin = ThinOperator::Make("t", 25.0, 10.0, Rng(36)).MoveValue();
  auto sink = SinkOperator::Make("sink", 1 << 22).MoveValue();
  thin->AddOutput(sink.get());
  for (const auto& p : *input) {
    ASSERT_TRUE(thin->Push(TupleAt(p)).ok());
  }
  std::size_t left_in = 0;
  std::size_t left_out = 0;
  for (const auto& p : *input) {
    left_in += p.x < 1.0 ? 1 : 0;
  }
  for (const auto& t : sink->tuples()) {
    left_out += t.point.x < 1.0 ? 1 : 0;
  }
  const double frac_left_in =
      static_cast<double>(left_in) / static_cast<double>(input->size());
  const double frac_left_out = static_cast<double>(left_out) /
                               static_cast<double>(sink->tuples().size());
  EXPECT_NEAR(frac_left_in, frac_left_out, 0.03);
}

TEST(ThinTest, ChainedThinsComposeRates) {
  // T(20->10) then T(10->2): end-to-end retention 0.1.
  const pp::SpaceTimeWindow w{0.0, 100.0, geom::Rect(0, 0, 3, 3)};
  Rng source_rng(37);
  const auto input = pp::SimulateHomogeneous(&source_rng, 20.0, w);
  ASSERT_TRUE(input.ok());
  auto t1 = ThinOperator::Make("t1", 20.0, 10.0, Rng(38)).MoveValue();
  auto t2 = ThinOperator::Make("t2", 10.0, 2.0, Rng(39)).MoveValue();
  auto sink = SinkOperator::Make("sink", 1 << 22).MoveValue();
  t1->AddOutput(t2.get());
  t2->AddOutput(sink.get());
  for (const auto& p : *input) {
    ASSERT_TRUE(t1->Push(TupleAt(p)).ok());
  }
  const double expected = 2.0 * w.Volume();
  EXPECT_GT(PoissonTwoSidedPValue(
                expected, static_cast<double>(sink->tuples().size())),
            1e-6);
}

}  // namespace
}  // namespace ops
}  // namespace craqr
