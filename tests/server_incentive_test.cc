#include <gtest/gtest.h>

#include "server/incentive.h"

namespace craqr {
namespace server {
namespace {

IncentiveConfig SmallConfig() {
  IncentiveConfig config;
  config.initial = 1.0;
  config.raise_step = 0.5;
  config.decay_factor = 0.9;
  config.max = 3.0;
  config.min = 0.1;
  config.violation_threshold = 5.0;
  return config;
}

TEST(IncentiveTest, Validation) {
  IncentiveConfig bad = SmallConfig();
  bad.initial = 10.0;  // above max
  EXPECT_FALSE(IncentiveController::Make(bad).ok());
  bad = SmallConfig();
  bad.raise_step = 0.0;
  EXPECT_FALSE(IncentiveController::Make(bad).ok());
  bad = SmallConfig();
  bad.decay_factor = 1.5;
  EXPECT_FALSE(IncentiveController::Make(bad).ok());
  bad = SmallConfig();
  bad.violation_threshold = -1.0;
  EXPECT_FALSE(IncentiveController::Make(bad).ok());
  EXPECT_TRUE(IncentiveController::Make(SmallConfig()).ok());
}

TEST(IncentiveTest, StartsAtInitial) {
  auto controller = IncentiveController::Make(SmallConfig()).MoveValue();
  EXPECT_DOUBLE_EQ(controller.GetIncentive(0), 1.0);
}

TEST(IncentiveTest, RaisesOnlyWhenBudgetSaturated) {
  auto controller = IncentiveController::Make(SmallConfig()).MoveValue();
  // High violation, budget NOT saturated: budget tuning should act first,
  // incentive unchanged.
  EXPECT_DOUBLE_EQ(controller.Update(0, 50.0, /*budget_saturated=*/false),
                   1.0);
  // Saturated: raise.
  EXPECT_DOUBLE_EQ(controller.Update(0, 50.0, /*budget_saturated=*/true),
                   1.5);
  EXPECT_EQ(controller.raises(), 1u);
}

TEST(IncentiveTest, ClampsAtMax) {
  auto controller = IncentiveController::Make(SmallConfig()).MoveValue();
  for (int i = 0; i < 20; ++i) {
    controller.Update(0, 50.0, true);
  }
  EXPECT_DOUBLE_EQ(controller.GetIncentive(0), 3.0);
}

TEST(IncentiveTest, DecaysWhenViolationsLow) {
  auto controller = IncentiveController::Make(SmallConfig()).MoveValue();
  controller.Update(0, 50.0, true);  // 1.5
  EXPECT_NEAR(controller.Update(0, 1.0, false), 1.35, 1e-12);
  EXPECT_NEAR(controller.Update(0, 0.0, true), 1.215, 1e-12);
}

TEST(IncentiveTest, DecayStopsAtFloor) {
  auto controller = IncentiveController::Make(SmallConfig()).MoveValue();
  for (int i = 0; i < 200; ++i) {
    controller.Update(0, 0.0, false);
  }
  EXPECT_DOUBLE_EQ(controller.GetIncentive(0), 0.1);
}

TEST(IncentiveTest, AttributesAreIndependent) {
  auto controller = IncentiveController::Make(SmallConfig()).MoveValue();
  controller.Update(0, 50.0, true);
  EXPECT_DOUBLE_EQ(controller.GetIncentive(0), 1.5);
  EXPECT_DOUBLE_EQ(controller.GetIncentive(1), 1.0);
}

}  // namespace
}  // namespace server
}  // namespace craqr
