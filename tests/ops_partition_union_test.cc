#include <gtest/gtest.h>

#include "common/math.h"
#include "common/rng.h"
#include "ops/extras.h"
#include "ops/partition.h"
#include "ops/union_op.h"
#include "pointprocess/gof.h"
#include "pointprocess/simulate.h"

namespace craqr {
namespace ops {
namespace {

Tuple TupleAt(const geom::SpaceTimePoint& p) {
  Tuple tuple;
  tuple.point = p;
  return tuple;
}

TEST(PartitionTest, ValidatesRegions) {
  EXPECT_FALSE(PartitionOperator::Make("p", {geom::Rect(0, 0, 1, 1)}).ok());
  // Overlapping regions rejected.
  EXPECT_FALSE(PartitionOperator::Make(
                   "p", {geom::Rect(0, 0, 2, 2), geom::Rect(1, 1, 3, 3)})
                   .ok());
  EXPECT_FALSE(
      PartitionOperator::Make("p", {geom::Rect(0, 0, 1, 1), geom::Rect()})
          .ok());
  EXPECT_TRUE(PartitionOperator::Make(
                  "p", {geom::Rect(0, 0, 1, 1), geom::Rect(1, 0, 2, 1)})
                  .ok());
}

TEST(PartitionTest, RoutesByRegion) {
  auto partition =
      PartitionOperator::Make("p", {geom::Rect(0, 0, 1, 2), geom::Rect(1, 0, 2, 2)})
          .MoveValue();
  auto left = SinkOperator::Make("left").MoveValue();
  auto right = SinkOperator::Make("right").MoveValue();
  partition->AddOutput(left.get());
  partition->AddOutput(right.get());
  ASSERT_TRUE(partition->Push(TupleAt({0.0, 0.5, 1.0})).ok());
  ASSERT_TRUE(partition->Push(TupleAt({0.0, 1.5, 1.0})).ok());
  ASSERT_TRUE(partition->Push(TupleAt({0.0, 0.2, 0.2})).ok());
  EXPECT_EQ(left->tuples().size(), 2u);
  EXPECT_EQ(right->tuples().size(), 1u);
  EXPECT_EQ(partition->unrouted(), 0u);
}

TEST(PartitionTest, CountsUnroutedTuples) {
  auto partition =
      PartitionOperator::Make("p", {geom::Rect(0, 0, 1, 1), geom::Rect(1, 0, 2, 1)})
          .MoveValue();
  auto sink = SinkOperator::Make("s").MoveValue();
  partition->AddOutput(sink.get());
  // Outside both regions.
  ASSERT_TRUE(partition->Push(TupleAt({0.0, 5.0, 5.0})).ok());
  EXPECT_EQ(partition->unrouted(), 1u);
  // In region 1 but branch 1 not connected: counted, not an error.
  ASSERT_TRUE(partition->Push(TupleAt({0.0, 1.5, 0.5})).ok());
  EXPECT_EQ(partition->unrouted(), 2u);
  EXPECT_EQ(sink->tuples().size(), 0u);
}

TEST(PartitionTest, PreservesRatePerRegion) {
  // Partitioning P(lambda, R) yields P(lambda, R_k) on each piece.
  const geom::Rect region(0, 0, 4, 2);
  const pp::SpaceTimeWindow w{0.0, 60.0, region};
  Rng rng(61);
  const auto points = pp::SimulateHomogeneous(&rng, 8.0, w);
  ASSERT_TRUE(points.ok());
  auto partition =
      PartitionOperator::Make("p", {geom::Rect(0, 0, 1, 2),   // quarter
                                    geom::Rect(1, 0, 4, 2)})  // rest
          .MoveValue();
  auto a = SinkOperator::Make("a", 1 << 22).MoveValue();
  auto b = SinkOperator::Make("b", 1 << 22).MoveValue();
  partition->AddOutput(a.get());
  partition->AddOutput(b.get());
  for (const auto& p : *points) {
    ASSERT_TRUE(partition->Push(TupleAt(p)).ok());
  }
  // Expected counts: 8 * area * 60.
  EXPECT_GT(PoissonTwoSidedPValue(8.0 * 2.0 * 60.0,
                                  static_cast<double>(a->tuples().size())),
            1e-6);
  EXPECT_GT(PoissonTwoSidedPValue(8.0 * 6.0 * 60.0,
                                  static_cast<double>(b->tuples().size())),
            1e-6);
  // Conservation.
  EXPECT_EQ(a->tuples().size() + b->tuples().size(), points->size());
}

TEST(PartitionTest, KWayRouting) {
  std::vector<geom::Rect> regions;
  for (int i = 0; i < 4; ++i) {
    regions.emplace_back(i, 0.0, i + 1.0, 1.0);
  }
  auto partition = PartitionOperator::Make("p", regions).MoveValue();
  std::vector<std::unique_ptr<SinkOperator>> sinks;
  for (int i = 0; i < 4; ++i) {
    sinks.push_back(SinkOperator::Make("s" + std::to_string(i)).MoveValue());
    partition->AddOutput(sinks.back().get());
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(partition->Push(TupleAt({0.0, i + 0.5, 0.5})).ok());
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sinks[i]->tuples().size(), 1u) << i;
  }
}

TEST(UnionTest, ValidatesAdjacency) {
  // Two adjacent cells sharing a full side: OK.
  EXPECT_TRUE(UnionOperator::Make(
                  "u", {geom::Rect(0, 0, 1, 1), geom::Rect(1, 0, 2, 1)})
                  .ok());
  // Disjoint but not tiling a rectangle: rejected.
  EXPECT_EQ(UnionOperator::Make(
                "u", {geom::Rect(0, 0, 1, 1), geom::Rect(2, 0, 3, 1)})
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  // Overlapping: rejected.
  EXPECT_FALSE(UnionOperator::Make(
                   "u", {geom::Rect(0, 0, 2, 1), geom::Rect(1, 0, 3, 1)})
                   .ok());
  // Fewer than two regions: rejected.
  EXPECT_FALSE(UnionOperator::Make("u", {geom::Rect(0, 0, 1, 1)}).ok());
  // L-shaped (diagonal gap): rejected.
  EXPECT_FALSE(UnionOperator::Make("u", {geom::Rect(0, 0, 1, 1),
                                         geom::Rect(1, 0, 2, 1),
                                         geom::Rect(0, 1, 1, 2)})
                   .ok());
}

TEST(UnionTest, OutputRegionIsBoundingRect) {
  auto u = UnionOperator::Make("u", {geom::Rect(0, 0, 1, 2),
                                     geom::Rect(1, 0, 3, 2)})
               .MoveValue();
  EXPECT_EQ(u->output_region(), geom::Rect(0, 0, 3, 2));
}

TEST(UnionTest, FourCellsTileASquare) {
  EXPECT_TRUE(UnionOperator::Make(
                  "u", {geom::Rect(0, 0, 1, 1), geom::Rect(1, 0, 2, 1),
                        geom::Rect(0, 1, 1, 2), geom::Rect(1, 1, 2, 2)})
                  .ok());
}

TEST(UnionTest, MergesStreamsAndPreservesRate) {
  // Two equal-rate processes on adjacent regions union to one process on
  // the combined region at the same rate.
  const geom::Rect left(0, 0, 2, 2);
  const geom::Rect right(2, 0, 4, 2);
  const double rate = 6.0;
  Rng rng_l(62);
  Rng rng_r(63);
  const auto pl =
      pp::SimulateHomogeneous(&rng_l, rate, pp::SpaceTimeWindow{0, 50, left});
  const auto pr =
      pp::SimulateHomogeneous(&rng_r, rate, pp::SpaceTimeWindow{0, 50, right});
  ASSERT_TRUE(pl.ok() && pr.ok());
  auto u = UnionOperator::Make("u", {left, right}).MoveValue();
  auto sink = SinkOperator::Make("s", 1 << 22).MoveValue();
  u->AddOutput(sink.get());
  for (const auto& p : *pl) {
    ASSERT_TRUE(u->Push(TupleAt(p)).ok());
  }
  for (const auto& p : *pr) {
    ASSERT_TRUE(u->Push(TupleAt(p)).ok());
  }
  EXPECT_EQ(sink->tuples().size(), pl->size() + pr->size());
  EXPECT_EQ(u->out_of_region(), 0u);
  // Combined region volume = 8 km^2 * 50 min.
  EXPECT_GT(PoissonTwoSidedPValue(rate * 8.0 * 50.0,
                                  static_cast<double>(sink->tuples().size())),
            1e-6);
}

TEST(UnionTest, CountsOutOfRegionTuples) {
  auto u = UnionOperator::Make("u", {geom::Rect(0, 0, 1, 1),
                                     geom::Rect(1, 0, 2, 1)})
               .MoveValue();
  auto sink = SinkOperator::Make("s").MoveValue();
  u->AddOutput(sink.get());
  ASSERT_TRUE(u->Push(TupleAt({0.0, 9.0, 9.0})).ok());
  EXPECT_EQ(u->out_of_region(), 1u);
  // Still forwarded (diagnostic, not a filter).
  EXPECT_EQ(sink->tuples().size(), 1u);
}

}  // namespace
}  // namespace ops
}  // namespace craqr
