#include <gtest/gtest.h>

#include "common/rng.h"
#include "pointprocess/intensity.h"
#include "sensing/population.h"

namespace craqr {
namespace sensing {
namespace {

const geom::Rect kRegion(0, 0, 10, 10);

PopulationConfig BaseConfig(std::size_t n) {
  PopulationConfig config;
  config.region = kRegion;
  config.num_sensors = n;
  return config;
}

TEST(PopulationTest, Validation) {
  Rng rng(1);
  EXPECT_FALSE(SensorPopulation::Make(BaseConfig(0), &rng).ok());
  EXPECT_FALSE(SensorPopulation::Make(BaseConfig(10), nullptr).ok());
  PopulationConfig bad = BaseConfig(10);
  bad.region = geom::Rect();
  EXPECT_FALSE(SensorPopulation::Make(bad, &rng).ok());
  bad = BaseConfig(10);
  bad.placement = PlacementKind::kIntensity;  // missing intensity
  EXPECT_FALSE(SensorPopulation::Make(bad, &rng).ok());
  bad = BaseConfig(10);
  bad.responsiveness_sigma = -1.0;
  EXPECT_FALSE(SensorPopulation::Make(bad, &rng).ok());
}

TEST(PopulationTest, UniformPlacementInsideRegion) {
  Rng rng(2);
  const auto population = SensorPopulation::Make(BaseConfig(500), &rng);
  ASSERT_TRUE(population.ok());
  EXPECT_EQ(population->size(), 500u);
  for (std::size_t i = 0; i < population->size(); ++i) {
    EXPECT_TRUE(kRegion.Contains(population->sensor(i).position));
    EXPECT_EQ(population->sensor(i).id, i);
  }
}

TEST(PopulationTest, HotspotPlacementConcentratesSensors) {
  Rng rng(3);
  pp::GaussianBump hotspot;
  hotspot.amplitude = 50.0;
  hotspot.x0 = 2.0;
  hotspot.y0 = 2.0;
  hotspot.sigma = 1.0;
  PopulationConfig config = BaseConfig(1000);
  config.placement = PlacementKind::kIntensity;
  config.placement_intensity =
      pp::GaussianBumpIntensity::Make(1.0, {hotspot}).MoveValue();
  const auto population = SensorPopulation::Make(config, &rng);
  ASSERT_TRUE(population.ok());
  // The 4x4 box around the hotspot holds 16% of the area; with the bump it
  // must hold far more than 16% of the crowd.
  const std::size_t near_hotspot =
      population->CountIn(geom::Rect(0, 0, 4, 4));
  EXPECT_GT(near_hotspot, 400u);
}

TEST(PopulationTest, ResponsivenessBiasHasSpread) {
  Rng rng(4);
  PopulationConfig config = BaseConfig(300);
  config.responsiveness_sigma = 1.0;
  const auto population = SensorPopulation::Make(config, &rng);
  ASSERT_TRUE(population.ok());
  double min_bias = 1e9;
  double max_bias = -1e9;
  for (std::size_t i = 0; i < population->size(); ++i) {
    min_bias = std::min(min_bias, population->sensor(i).responsiveness_bias);
    max_bias = std::max(max_bias, population->sensor(i).responsiveness_bias);
  }
  EXPECT_LT(min_bias, -0.5);
  EXPECT_GT(max_bias, 0.5);
}

TEST(PopulationTest, AdvanceMovesMobileSensors) {
  Rng rng(5);
  PopulationConfig config = BaseConfig(50);
  const auto mobility = GaussianWalkMobility::Make(0.5).MoveValue();
  config.mobility_prototype = mobility.get();
  auto population = SensorPopulation::Make(config, &rng);
  ASSERT_TRUE(population.ok());
  std::vector<geom::SpacePoint> before;
  for (std::size_t i = 0; i < population->size(); ++i) {
    before.push_back(population->sensor(i).position);
  }
  population->Advance(&rng, 1.0);
  int moved = 0;
  for (std::size_t i = 0; i < population->size(); ++i) {
    const auto& now = population->sensor(i).position;
    if (now.x != before[i].x || now.y != before[i].y) {
      ++moved;
    }
    EXPECT_TRUE(kRegion.Contains(now));
  }
  EXPECT_EQ(moved, 50);
}

TEST(PopulationTest, StaticWithoutMobilityPrototype) {
  Rng rng(6);
  auto population = SensorPopulation::Make(BaseConfig(20), &rng);
  ASSERT_TRUE(population.ok());
  const auto before = population->sensor(7).position;
  population->Advance(&rng, 10.0);
  EXPECT_EQ(population->sensor(7).position, before);
}

TEST(PopulationTest, SensorsInFindsOnlyContained) {
  Rng rng(7);
  auto population = SensorPopulation::Make(BaseConfig(200), &rng);
  ASSERT_TRUE(population.ok());
  const geom::Rect box(0, 0, 5, 5);
  const auto inside = population->SensorsIn(box);
  EXPECT_EQ(inside.size(), population->CountIn(box));
  for (const auto index : inside) {
    EXPECT_TRUE(box.Contains(population->sensor(index).position));
  }
  // Complement check.
  std::size_t outside = 0;
  for (std::size_t i = 0; i < population->size(); ++i) {
    if (!box.Contains(population->sensor(i).position)) {
      ++outside;
    }
  }
  EXPECT_EQ(inside.size() + outside, population->size());
}

}  // namespace
}  // namespace sensing
}  // namespace craqr
