#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/stats.h"

namespace craqr {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LE(equal, 1);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    stats.Add(u);
  }
  EXPECT_NEAR(stats.Mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.Variance(), 1.0 / 12.0, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform(-3.0, 5.5);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.5);
  }
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng rng(9);
  constexpr std::uint64_t n = 10;
  std::vector<int> counts(n, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.UniformInt(n)];
  }
  for (std::uint64_t v = 0; v < n; ++v) {
    EXPECT_NEAR(counts[v], kDraws / static_cast<double>(n),
                5.0 * std::sqrt(kDraws / static_cast<double>(n)));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(10);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

class PoissonMeanTest : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMeanTest, MeanAndVarianceMatch) {
  const double mean = GetParam();
  Rng rng(static_cast<std::uint64_t>(mean * 1000) + 3);
  RunningStats stats;
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) {
    stats.Add(static_cast<double>(rng.Poisson(mean)));
  }
  // Sample mean of Poisson(mean): stderr = sqrt(mean / draws).
  const double stderr_mean = std::sqrt(mean / draws);
  EXPECT_NEAR(stats.Mean(), mean, 6.0 * stderr_mean + 1e-9);
  // Variance should be close to the mean (within 10%).
  if (mean >= 1.0) {
    EXPECT_NEAR(stats.Variance() / mean, 1.0, 0.1);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallAndLargeMeans, PoissonMeanTest,
                         ::testing::Values(0.1, 0.5, 2.0, 10.0, 29.9, 30.1,
                                           100.0, 1000.0));

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Poisson(0.0), 0u);
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(rng.Exponential(2.0));
  }
  EXPECT_NEAR(stats.Mean(), 0.5, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(14);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(rng.Normal(3.0, 2.0));
  }
  EXPECT_NEAR(stats.Mean(), 3.0, 0.05);
  EXPECT_NEAR(stats.Stddev(), 2.0, 0.05);
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(15);
  std::vector<double> draws;
  for (int i = 0; i < 20001; ++i) {
    draws.push_back(rng.LogNormal(1.0, 0.5));
  }
  std::nth_element(draws.begin(), draws.begin() + 10000, draws.end());
  EXPECT_NEAR(draws[10000], std::exp(1.0), 0.1);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng(16);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.Pareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(17);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto v : sample) {
    EXPECT_LT(v, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(18);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleWithReplacementSizeAndRange) {
  Rng rng(19);
  const auto sample = rng.SampleWithReplacement(5, 100);
  EXPECT_EQ(sample.size(), 100u);
  for (const auto v : sample) {
    EXPECT_LT(v, 5u);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(20);
  Rng child = parent.Fork();
  // The child must differ from a freshly re-seeded parent continuation.
  int equal = 0;
  Rng parent_copy(20);
  (void)parent_copy.NextU64();  // consume the fork draw
  for (int i = 0; i < 64; ++i) {
    if (child.NextU64() == parent_copy.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LE(equal, 1);
}

}  // namespace
}  // namespace craqr
