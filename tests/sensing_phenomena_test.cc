#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "sensing/phenomena.h"

namespace craqr {
namespace sensing {
namespace {

TEST(RainFieldTest, Validation) {
  RainCell bad;
  bad.radius = 0.0;
  EXPECT_FALSE(RainField::Make({bad}).ok());
  RainCell inverted;
  inverted.radius = 1.0;
  inverted.t_start = 5.0;
  inverted.t_end = 1.0;
  EXPECT_FALSE(RainField::Make({inverted}).ok());
  EXPECT_FALSE(RainField::Make({}, 1.0).ok());
  EXPECT_TRUE(RainField::Make({}, 0.0).ok());
}

TEST(RainFieldTest, RainsInsideActiveCellOnly) {
  RainCell cell;
  cell.x0 = 2.0;
  cell.y0 = 2.0;
  cell.radius = 1.0;
  cell.t_start = 10.0;
  cell.t_end = 20.0;
  const auto field = RainField::Make({cell}, 0.0);
  ASSERT_TRUE(field.ok());
  const auto* rain = static_cast<const RainField*>(field->get());
  EXPECT_TRUE(rain->IsRaining({15.0, 2.0, 2.0}));
  EXPECT_TRUE(rain->IsRaining({15.0, 2.9, 2.0}));
  EXPECT_FALSE(rain->IsRaining({15.0, 3.5, 2.0}));  // outside radius
  EXPECT_FALSE(rain->IsRaining({5.0, 2.0, 2.0}));   // before start
  EXPECT_FALSE(rain->IsRaining({25.0, 2.0, 2.0}));  // after end
}

TEST(RainFieldTest, CellDriftsWithVelocity) {
  RainCell cell;
  cell.x0 = 0.0;
  cell.y0 = 0.0;
  cell.radius = 0.5;
  cell.vx = 0.1;  // km/min
  const auto field = RainField::Make({cell}, 0.0);
  ASSERT_TRUE(field.ok());
  const auto* rain = static_cast<const RainField*>(field->get());
  EXPECT_TRUE(rain->IsRaining({0.0, 0.0, 0.0}));
  EXPECT_FALSE(rain->IsRaining({0.0, 2.0, 0.0}));
  // After 20 minutes the centre is at x = 2.
  EXPECT_TRUE(rain->IsRaining({20.0, 2.0, 0.0}));
  EXPECT_FALSE(rain->IsRaining({20.0, 0.0, 0.0}));
}

TEST(RainFieldTest, MisreportRateMatchesConfiguration) {
  const auto field = RainField::Make({}, 0.2);  // never rains, 20% flips
  ASSERT_TRUE(field.ok());
  Rng rng(11);
  int wrong = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (std::get<bool>((*field)->Observe(&rng, {0.0, 1.0, 1.0}))) {
      ++wrong;
    }
  }
  EXPECT_NEAR(wrong / static_cast<double>(kSamples), 0.2, 0.02);
}

TEST(TemperatureFieldTest, Validation) {
  TemperatureField::Params params;
  params.diurnal_period = 0.0;
  EXPECT_FALSE(TemperatureField::Make(params).ok());
  params = TemperatureField::Params{};
  params.noise_sigma = -1.0;
  EXPECT_FALSE(TemperatureField::Make(params).ok());
}

TEST(TemperatureFieldTest, SpatialGradientAndDiurnalCycle) {
  TemperatureField::Params params;
  params.base = 20.0;
  params.grad_x = 1.0;
  params.grad_y = 0.0;
  params.diurnal_amplitude = 5.0;
  params.diurnal_period = 1440.0;
  params.noise_sigma = 0.0;
  const auto field = TemperatureField::Make(params);
  ASSERT_TRUE(field.ok());
  const auto* temp = static_cast<const TemperatureField*>(field->get());
  // Gradient: +1 degC per km of x.
  EXPECT_NEAR(temp->TemperatureAt({0.0, 3.0, 0.0}) -
                  temp->TemperatureAt({0.0, 0.0, 0.0}),
              3.0, 1e-12);
  // Diurnal peak at a quarter period.
  EXPECT_NEAR(temp->TemperatureAt({360.0, 0.0, 0.0}), 25.0, 1e-9);
  // Trough at three quarters.
  EXPECT_NEAR(temp->TemperatureAt({1080.0, 0.0, 0.0}), 15.0, 1e-9);
}

TEST(TemperatureFieldTest, ObservationNoiseHasConfiguredSpread) {
  TemperatureField::Params params;
  params.noise_sigma = 0.5;
  params.diurnal_amplitude = 0.0;
  params.grad_x = 0.0;
  params.grad_y = 0.0;
  const auto field = TemperatureField::Make(params);
  ASSERT_TRUE(field.ok());
  Rng rng(12);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = std::get<double>((*field)->Observe(&rng, {0, 0, 0}));
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, params.base, 0.02);
  EXPECT_NEAR(std::sqrt(var), 0.5, 0.02);
}

TEST(AirQualityFieldTest, Validation) {
  EXPECT_FALSE(AirQualityField::Make(-1.0, {}).ok());
  AirQualityField::Source bad;
  bad.spread = 0.0;
  EXPECT_FALSE(AirQualityField::Make(10.0, {bad}).ok());
  EXPECT_FALSE(AirQualityField::Make(10.0, {}, -0.1).ok());
}

TEST(AirQualityFieldTest, PlumePeaksAtSourceAndDecays) {
  AirQualityField::Source source;
  source.x = 1.0;
  source.y = 1.0;
  source.strength = 80.0;
  source.spread = 0.5;
  const auto field = AirQualityField::Make(20.0, {source}, 0.0);
  ASSERT_TRUE(field.ok());
  const auto* aqi = static_cast<const AirQualityField*>(field->get());
  EXPECT_NEAR(aqi->AqiAt({0.0, 1.0, 1.0}), 100.0, 1e-9);
  EXPECT_NEAR(aqi->AqiAt({0.0, 10.0, 10.0}), 20.0, 1e-6);
  EXPECT_GT(aqi->AqiAt({0.0, 1.2, 1.0}), aqi->AqiAt({0.0, 2.0, 1.0}));
}

TEST(AirQualityFieldTest, GroundTruthIsNoiseless) {
  const auto field = AirQualityField::Make(30.0, {}, 0.3);
  ASSERT_TRUE(field.ok());
  EXPECT_DOUBLE_EQ(std::get<double>((*field)->GroundTruth({0, 0, 0})), 30.0);
}

TEST(PhenomenaTest, ToStringDescribes) {
  EXPECT_NE(RainField::Make({})->get()->ToString().find("RainField"),
            std::string::npos);
  EXPECT_NE(TemperatureField::Make({})->get()->ToString().find(
                "TemperatureField"),
            std::string::npos);
  EXPECT_NE(
      AirQualityField::Make(1.0, {})->get()->ToString().find("AirQuality"),
      std::string::npos);
}

}  // namespace
}  // namespace sensing
}  // namespace craqr
