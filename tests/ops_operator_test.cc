#include <gtest/gtest.h>

#include "ops/extras.h"
#include "ops/operator.h"
#include "ops/pipeline.h"
#include "ops/tuple.h"

namespace craqr {
namespace ops {
namespace {

Tuple MakeTuple(double t, double x, double y, AttributeId attribute = 0) {
  Tuple tuple;
  tuple.point = geom::SpaceTimePoint{t, x, y};
  tuple.attribute = attribute;
  return tuple;
}

TEST(OperatorTest, KindLabels) {
  EXPECT_STREQ(OperatorKindLabel(OperatorKind::kFlatten), "F");
  EXPECT_STREQ(OperatorKindLabel(OperatorKind::kThin), "T");
  EXPECT_STREQ(OperatorKindLabel(OperatorKind::kPartition), "P");
  EXPECT_STREQ(OperatorKindLabel(OperatorKind::kUnion), "U");
}

TEST(OperatorTest, AddAndRemoveOutputs) {
  auto a = PassThroughOperator::Make("a").MoveValue();
  auto b = PassThroughOperator::Make("b").MoveValue();
  auto c = PassThroughOperator::Make("c").MoveValue();
  EXPECT_EQ(a->AddOutput(b.get()), 0u);
  EXPECT_EQ(a->AddOutput(c.get()), 1u);
  EXPECT_TRUE(a->IsBranchingPoint());
  EXPECT_TRUE(a->RemoveOutput(b.get()));
  EXPECT_FALSE(a->RemoveOutput(b.get()));
  ASSERT_EQ(a->outputs().size(), 1u);
  EXPECT_EQ(a->outputs()[0], c.get());
  EXPECT_FALSE(a->IsBranchingPoint());
}

TEST(OperatorTest, EmitBroadcastsToAllOutputs) {
  auto src = PassThroughOperator::Make("src").MoveValue();
  auto sink1 = SinkOperator::Make("s1").MoveValue();
  auto sink2 = SinkOperator::Make("s2").MoveValue();
  src->AddOutput(sink1.get());
  src->AddOutput(sink2.get());
  ASSERT_TRUE(src->Push(MakeTuple(1.0, 0.0, 0.0)).ok());
  EXPECT_EQ(sink1->tuples().size(), 1u);
  EXPECT_EQ(sink2->tuples().size(), 1u);
  EXPECT_EQ(src->stats().tuples_in, 1u);
  EXPECT_EQ(src->stats().tuples_out, 1u);
}

TEST(OperatorTest, StatsResetClearsCounters) {
  auto src = PassThroughOperator::Make("src").MoveValue();
  ASSERT_TRUE(src->Push(MakeTuple(1.0, 0.0, 0.0)).ok());
  EXPECT_EQ(src->stats().tuples_in, 1u);
  src->ResetStats();
  EXPECT_EQ(src->stats().tuples_in, 0u);
  EXPECT_EQ(src->stats().tuples_out, 0u);
}

TEST(TupleTest, AttributeValueToString) {
  EXPECT_EQ(AttributeValueToString(AttributeValue{}), "null");
  EXPECT_EQ(AttributeValueToString(AttributeValue{true}), "true");
  EXPECT_EQ(AttributeValueToString(AttributeValue{false}), "false");
  EXPECT_EQ(AttributeValueToString(AttributeValue{std::int64_t{42}}), "42");
  EXPECT_EQ(AttributeValueToString(AttributeValue{std::string("wet")}),
            "\"wet\"");
}

TEST(PipelineTest, OwnsOperatorsAndCountsEvaluations) {
  Pipeline pipeline;
  auto* a = pipeline.Add(PassThroughOperator::Make("a").MoveValue());
  auto* b = pipeline.Add(SinkOperator::Make("b").MoveValue());
  Pipeline::Connect(a, b);
  EXPECT_EQ(pipeline.size(), 2u);
  ASSERT_TRUE(a->Push(MakeTuple(0.0, 0.0, 0.0)).ok());
  ASSERT_TRUE(a->Push(MakeTuple(1.0, 0.0, 0.0)).ok());
  // a sees 2, b sees 2 -> 4 evaluations.
  EXPECT_EQ(pipeline.TotalOperatorEvaluations(), 4u);
}

TEST(PipelineTest, RemoveDestroysOwnedOperator) {
  Pipeline pipeline;
  auto* a = pipeline.Add(PassThroughOperator::Make("a").MoveValue());
  EXPECT_TRUE(pipeline.Remove(a));
  EXPECT_EQ(pipeline.size(), 0u);
  auto other = PassThroughOperator::Make("other").MoveValue();
  EXPECT_FALSE(pipeline.Remove(other.get()));
}

TEST(PipelineTest, ToDotListsOperatorsAndEdges) {
  Pipeline pipeline;
  auto* a = pipeline.Add(PassThroughOperator::Make("alpha").MoveValue());
  auto* b = pipeline.Add(SinkOperator::Make("omega").MoveValue());
  Pipeline::Connect(a, b);
  const std::string dot = pipeline.ToDot();
  EXPECT_NE(dot.find("alpha"), std::string::npos);
  EXPECT_NE(dot.find("omega"), std::string::npos);
  EXPECT_NE(dot.find("\"alpha\" -> \"omega\""), std::string::npos);
}

TEST(PipelineTest, FlushAllReachesEveryOperator) {
  // A buffering operator (sink behind a pass-through) must see its tuples
  // after FlushAll; use a monitor to verify Flush is invoked but windows
  // stay open (event-time semantics).
  Pipeline pipeline;
  auto* monitor = pipeline.Add(
      RateMonitorOperator::Make("mon", 1.0, 1.0).MoveValue());
  ASSERT_TRUE(monitor->Push(MakeTuple(0.5, 0.0, 0.0)).ok());
  ASSERT_TRUE(pipeline.FlushAll().ok());
  EXPECT_EQ(monitor->window_rates().count(), 0u);
  monitor->CloseCurrentWindow();
  EXPECT_EQ(monitor->window_rates().count(), 1u);
}

}  // namespace
}  // namespace ops
}  // namespace craqr
