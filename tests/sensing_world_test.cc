#include <gtest/gtest.h>

#include "common/rng.h"
#include "sensing/world.h"

namespace craqr {
namespace sensing {
namespace {

const geom::Rect kRegion(0, 0, 6, 6);

CrowdWorld MakeWorld(std::size_t sensors, std::uint64_t seed = 10) {
  PopulationConfig config;
  config.region = kRegion;
  config.num_sensors = sensors;
  config.responsiveness_sigma = 0.0;
  Rng rng(seed);
  auto population = SensorPopulation::Make(config, &rng);
  EXPECT_TRUE(population.ok());
  return CrowdWorld::Make(population.MoveValue(), rng.Fork()).MoveValue();
}

FieldPtr ConstantTempField() {
  TemperatureField::Params params;
  params.noise_sigma = 0.0;
  params.grad_x = 0.0;
  params.grad_y = 0.0;
  params.diurnal_amplitude = 0.0;
  return TemperatureField::Make(params).MoveValue();
}

ResponseBehavior AlwaysRespond() {
  ResponseBehavior behavior;
  behavior.base_logit = 50.0;  // p ~ 1
  behavior.delay_mu = -3.0;
  behavior.delay_sigma = 0.1;
  return behavior;
}

ResponseBehavior NeverRespond() {
  ResponseBehavior behavior;
  behavior.base_logit = -50.0;  // p ~ 0
  return behavior;
}

TEST(CrowdWorldTest, AttributeRegistration) {
  CrowdWorld world = MakeWorld(10);
  const auto id =
      world.RegisterAttribute("temp", false, ConstantTempField(),
                              ResponseModel::DeviceBehavior());
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0u);
  EXPECT_EQ(world.NumAttributes(), 1u);
  // Duplicate name rejected.
  EXPECT_EQ(world
                .RegisterAttribute("temp", false, ConstantTempField(),
                                   ResponseModel::DeviceBehavior())
                .status()
                .code(),
            StatusCode::kAlreadyExists);
  // Lookup by name.
  EXPECT_EQ(*world.AttributeIdByName("temp"), 0u);
  EXPECT_FALSE(world.AttributeIdByName("rain").ok());
  // Metadata round-trip.
  const auto spec = world.GetAttribute(*id);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->name, "temp");
  EXPECT_FALSE(spec->human_sensed);
  EXPECT_FALSE(world.GetAttribute(99).ok());
}

TEST(CrowdWorldTest, RegistrationValidation) {
  CrowdWorld world = MakeWorld(10);
  EXPECT_FALSE(world
                   .RegisterAttribute("", false, ConstantTempField(),
                                      ResponseModel::DeviceBehavior())
                   .ok());
  EXPECT_FALSE(world
                   .RegisterAttribute("x", false, nullptr,
                                      ResponseModel::DeviceBehavior())
                   .ok());
  ResponseBehavior bad;
  bad.delay_sigma = -1.0;
  EXPECT_FALSE(
      world.RegisterAttribute("x", false, ConstantTempField(), bad).ok());
}

TEST(CrowdWorldTest, SendRequestsRespectsCount) {
  CrowdWorld world = MakeWorld(200);
  const auto id = world.RegisterAttribute("temp", false, ConstantTempField(),
                                          AlwaysRespond());
  ASSERT_TRUE(id.ok());
  AcquisitionRequest request;
  request.attribute = *id;
  request.region = kRegion;
  request.count = 50;
  request.now = 10.0;
  const auto responses = world.SendRequests(request);
  ASSERT_TRUE(responses.ok());
  // Everyone responds: exactly `count` tuples.
  EXPECT_EQ(responses->size(), 50u);
  EXPECT_EQ(world.total_requests_sent(), 50u);
  EXPECT_EQ(world.total_responses(), 50u);
  for (const auto& tuple : *responses) {
    EXPECT_EQ(tuple.attribute, *id);
    EXPECT_GT(tuple.point.t, request.now);  // delayed arrival
    EXPECT_TRUE(kRegion.Contains(tuple.point.x, tuple.point.y));
    EXPECT_TRUE(tuple.value.kind() == ops::PayloadKind::kDouble);
  }
}

TEST(CrowdWorldTest, TupleIdsAreUnique) {
  CrowdWorld world = MakeWorld(100);
  const auto id = world.RegisterAttribute("temp", false, ConstantTempField(),
                                          AlwaysRespond());
  ASSERT_TRUE(id.ok());
  AcquisitionRequest request;
  request.attribute = *id;
  request.region = kRegion;
  request.count = 30;
  std::set<std::uint64_t> seen;
  for (int round = 0; round < 5; ++round) {
    request.now = round;
    const auto responses = world.SendRequests(request);
    ASSERT_TRUE(responses.ok());
    for (const auto& tuple : *responses) {
      EXPECT_TRUE(seen.insert(tuple.id).second);
    }
  }
}

TEST(CrowdWorldTest, NoRespondersMeansNoTuples) {
  CrowdWorld world = MakeWorld(100);
  const auto id = world.RegisterAttribute("rain", true, ConstantTempField(),
                                          NeverRespond());
  ASSERT_TRUE(id.ok());
  AcquisitionRequest request;
  request.attribute = *id;
  request.region = kRegion;
  request.count = 50;
  const auto responses = world.SendRequests(request);
  ASSERT_TRUE(responses.ok());
  EXPECT_TRUE(responses->empty());
}

TEST(CrowdWorldTest, IncentiveRaisesResponseRate) {
  ResponseBehavior human;
  human.base_logit = -2.0;      // ~12% baseline
  human.incentive_weight = 2.0; // strong incentive effect
  CrowdWorld world = MakeWorld(300);
  const auto id =
      world.RegisterAttribute("rain", true, ConstantTempField(), human);
  ASSERT_TRUE(id.ok());
  AcquisitionRequest request;
  request.attribute = *id;
  request.region = kRegion;
  request.count = 300;
  request.incentive = 0.0;
  const auto low = world.SendRequests(request);
  ASSERT_TRUE(low.ok());
  request.incentive = 3.0;  // logit -2 + 6 = 4 -> ~98%
  const auto high = world.SendRequests(request);
  ASSERT_TRUE(high.ok());
  EXPECT_GT(high->size(), 3 * std::max<std::size_t>(low->size(), 1));
}

TEST(CrowdWorldTest, RequestsOutsideRegionFindNoSensors) {
  CrowdWorld world = MakeWorld(100);
  const auto id = world.RegisterAttribute("temp", false, ConstantTempField(),
                                          AlwaysRespond());
  ASSERT_TRUE(id.ok());
  AcquisitionRequest request;
  request.attribute = *id;
  request.region = geom::Rect(100, 100, 101, 101);
  request.count = 10;
  const auto responses = world.SendRequests(request);
  ASSERT_TRUE(responses.ok());
  EXPECT_TRUE(responses->empty());
  EXPECT_EQ(world.AvailableSensors(request.region), 0u);
}

TEST(CrowdWorldTest, UnknownAttributeRejected) {
  CrowdWorld world = MakeWorld(10);
  AcquisitionRequest request;
  request.attribute = 7;
  request.region = kRegion;
  request.count = 1;
  EXPECT_EQ(world.SendRequests(request).status().code(),
            StatusCode::kNotFound);
}

TEST(CrowdWorldTest, OversubscribedCellSamplesWithReplacement) {
  // Ask for more responses than sensors exist: sampling proceeds with
  // replacement, so we still get ~count responses.
  CrowdWorld world = MakeWorld(20);
  const auto id = world.RegisterAttribute("temp", false, ConstantTempField(),
                                          AlwaysRespond());
  ASSERT_TRUE(id.ok());
  AcquisitionRequest request;
  request.attribute = *id;
  request.region = kRegion;
  request.count = 100;
  const auto responses = world.SendRequests(request);
  ASSERT_TRUE(responses.ok());
  EXPECT_EQ(responses->size(), 100u);
  // Sensors must repeat.
  std::set<std::uint64_t> sensors;
  for (const auto& tuple : *responses) {
    sensors.insert(tuple.sensor_id);
  }
  EXPECT_LE(sensors.size(), 20u);
}

TEST(CrowdWorldTest, AdvanceMovesTime) {
  CrowdWorld world = MakeWorld(10);
  world.Advance(5.0);  // must not crash with static sensors
  EXPECT_EQ(world.population().size(), 10u);
}

}  // namespace
}  // namespace sensing
}  // namespace craqr
