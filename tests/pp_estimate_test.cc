#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "common/rng.h"
#include "pointprocess/estimate.h"
#include "pointprocess/simulate.h"

namespace craqr {
namespace pp {
namespace {

SpaceTimeWindow FitWindow() {
  return SpaceTimeWindow{0.0, 30.0, geom::Rect(0, 0, 5, 5)};
}

TEST(LinearMleTest, ValidatesInputs) {
  const SpaceTimeWindow w = FitWindow();
  EXPECT_FALSE(FitLinearMle(std::vector<geom::SpaceTimePoint>{}, w).ok());
  EXPECT_FALSE(FitLinearMle({{1.0, 1.0, 1.0}},
                            SpaceTimeWindow{0.0, 0.0, geom::Rect(0, 0, 1, 1)})
                   .ok());
  LinearMleOptions bad;
  bad.max_iterations = 0;
  EXPECT_FALSE(FitLinearMle({{1.0, 1.0, 1.0}}, w, bad).ok());
}

TEST(LinearMleTest, HomogeneousDataRecoversConstantRate) {
  Rng rng(11);
  const SpaceTimeWindow w = FitWindow();
  const auto points = SimulateHomogeneous(&rng, 4.0, w);
  ASSERT_TRUE(points.ok());
  const auto fit = FitLinearMle(*points, w);
  ASSERT_TRUE(fit.ok());
  EXPECT_TRUE(fit->converged);
  // Rate at the centroid should be close to the true rate; slope terms
  // should be small relative to the base rate.
  const auto c = w.Centroid();
  const double rate_at_centroid = fit->theta[0] + fit->theta[1] * c.t +
                                  fit->theta[2] * c.x + fit->theta[3] * c.y;
  EXPECT_NEAR(rate_at_centroid, 4.0, 0.4);
}

/// Parameter-recovery sweep over distinct ground-truth thetas.
struct MleCase {
  std::array<double, 4> theta;
  const char* name;
};

class LinearMleRecoveryTest : public ::testing::TestWithParam<MleCase> {};

TEST_P(LinearMleRecoveryTest, RecoversGroundTruth) {
  const MleCase test_case = GetParam();
  const SpaceTimeWindow w = FitWindow();
  const auto model = LinearIntensity::Make(test_case.theta);
  ASSERT_TRUE(model.ok());
  Rng rng(12);
  // Pool several replicates for a tight estimate.
  std::vector<geom::SpaceTimePoint> points;
  for (int rep = 0; rep < 5; ++rep) {
    const auto sample = SimulateInhomogeneous(&rng, **model, w);
    ASSERT_TRUE(sample.ok());
    points.insert(points.end(), sample->begin(), sample->end());
  }
  const auto fit = FitLinearMle(points, w);
  ASSERT_TRUE(fit.ok());
  EXPECT_TRUE(fit->converged) << test_case.name;
  // Compare intensity surfaces (scaled by the replicate count) at probe
  // points rather than raw parameters: the surface is what matters.
  const auto truth = [&](const geom::SpaceTimePoint& p) {
    return 5.0 * (test_case.theta[0] + test_case.theta[1] * p.t +
                  test_case.theta[2] * p.x + test_case.theta[3] * p.y);
  };
  const auto fitted = [&](const geom::SpaceTimePoint& p) {
    return fit->theta[0] + fit->theta[1] * p.t + fit->theta[2] * p.x +
           fit->theta[3] * p.y;
  };
  for (const auto& probe :
       {geom::SpaceTimePoint{5.0, 1.0, 1.0}, geom::SpaceTimePoint{15.0, 2.5, 2.5},
        geom::SpaceTimePoint{25.0, 4.0, 4.0}}) {
    const double t = truth(probe);
    EXPECT_NEAR(fitted(probe) / t, 1.0, 0.15)
        << test_case.name << " at t=" << probe.t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    GroundTruths, LinearMleRecoveryTest,
    ::testing::Values(MleCase{{2.0, 0.0, 0.0, 0.0}, "flat"},
                      MleCase{{1.0, 0.05, 0.0, 0.0}, "time_ramp"},
                      MleCase{{1.0, 0.0, 0.6, 0.0}, "x_gradient"},
                      MleCase{{1.0, 0.0, 0.0, 0.6}, "y_gradient"},
                      MleCase{{0.5, 0.03, 0.4, 0.3}, "all_slopes"}));

TEST(LinearMleTest, LogLikelihoodImprovesOverHomogeneousInit) {
  Rng rng(13);
  const SpaceTimeWindow w = FitWindow();
  const auto model = LinearIntensity::Make({0.5, 0.0, 1.0, 0.0});
  ASSERT_TRUE(model.ok());
  const auto points = SimulateInhomogeneous(&rng, **model, w);
  ASSERT_TRUE(points.ok());
  ASSERT_GT(points->size(), 10u);
  const auto fit = FitLinearMle(*points, w);
  ASSERT_TRUE(fit.ok());
  // The homogeneous LL with rate n/V.
  const double n = static_cast<double>(points->size());
  const double homogeneous_ll = n * std::log(n / w.Volume()) - n;
  EXPECT_GT(fit->log_likelihood, homogeneous_ll);
}

TEST(LinearMleTest, ToIntensityBuildsModel) {
  Rng rng(14);
  const SpaceTimeWindow w = FitWindow();
  const auto points = SimulateHomogeneous(&rng, 2.0, w);
  ASSERT_TRUE(points.ok());
  const auto fit = FitLinearMle(*points, w);
  ASSERT_TRUE(fit.ok());
  const auto intensity = fit->ToIntensity();
  ASSERT_TRUE(intensity.ok());
  EXPECT_GT((*intensity)->Rate(w.Centroid()), 0.0);
}

TEST(SgdEstimatorTest, ValidatesOptions) {
  SgdOptions bad;
  bad.eta0 = 0.0;
  EXPECT_FALSE(SgdEstimator::Make(FitWindow(), bad).ok());
  EXPECT_FALSE(
      SgdEstimator::Make(SpaceTimeWindow{0.0, 0.0, geom::Rect(0, 0, 1, 1)})
          .ok());
}

TEST(SgdEstimatorTest, ConvergesToHomogeneousRate) {
  Rng rng(15);
  const SpaceTimeWindow w{0.0, 200.0, geom::Rect(0, 0, 5, 5)};
  const auto points = SimulateHomogeneous(&rng, 3.0, w);
  ASSERT_TRUE(points.ok());
  auto estimator = SgdEstimator::Make(w);
  ASSERT_TRUE(estimator.ok());
  for (const auto& p : *points) {
    estimator->Update(p);
  }
  EXPECT_EQ(estimator->num_updates(), points->size());
  EXPECT_NEAR(estimator->RateAt(w.Centroid()), 3.0, 0.75);
}

TEST(SgdEstimatorTest, TracksSpatialGradientDirection) {
  Rng rng(16);
  const SpaceTimeWindow w{0.0, 300.0, geom::Rect(0, 0, 4, 4)};
  const auto model = LinearIntensity::Make({0.5, 0.0, 1.5, 0.0});
  ASSERT_TRUE(model.ok());
  const auto points = SimulateInhomogeneous(&rng, **model, w);
  ASSERT_TRUE(points.ok());
  auto estimator = SgdEstimator::Make(w);
  ASSERT_TRUE(estimator.ok());
  for (const auto& p : *points) {
    estimator->Update(p);
  }
  // The x-slope must come out positive and dominate the y-slope.
  const auto theta = estimator->theta();
  EXPECT_GT(theta[2], 0.0);
  EXPECT_GT(theta[2], std::fabs(theta[3]));
  // The estimated surface must be higher at large x.
  EXPECT_GT(estimator->RateAt({150.0, 3.5, 2.0}),
            estimator->RateAt({150.0, 0.5, 2.0}));
}

TEST(SgdEstimatorTest, RateStaysPositive) {
  const SpaceTimeWindow w = FitWindow();
  auto estimator = SgdEstimator::Make(w);
  ASSERT_TRUE(estimator.ok());
  // Feed adversarial corner-only points.
  for (int i = 0; i < 100; ++i) {
    estimator->Update({static_cast<double>(i) * 0.01, 0.0, 0.0});
  }
  EXPECT_GT(estimator->RateAt({0.5, 4.9, 4.9}), 0.0);
}

TEST(PiecewiseConstantEstimatorTest, RecoversCellRates) {
  Rng rng(17);
  const SpaceTimeWindow w{0.0, 100.0, geom::Rect(0, 0, 2, 2)};
  // Left half rate 1, right half rate 5.
  const auto model = PiecewiseConstantIntensity::Make(
      geom::Rect(0, 0, 2, 2), 1, 2, {1.0, 5.0});
  ASSERT_TRUE(model.ok());
  const auto points = SimulateInhomogeneous(&rng, **model, w);
  ASSERT_TRUE(points.ok());
  const auto fitted = FitPiecewiseConstant(*points, w, 1, 2);
  ASSERT_TRUE(fitted.ok());
  EXPECT_NEAR((*fitted)->Rate({50.0, 0.5, 1.0}), 1.0, 0.25);
  EXPECT_NEAR((*fitted)->Rate({50.0, 1.5, 1.0}), 5.0, 0.5);
}

TEST(PiecewiseConstantEstimatorTest, ValidatesInputs) {
  EXPECT_FALSE(FitPiecewiseConstant(
                   {}, SpaceTimeWindow{0.0, 0.0, geom::Rect(0, 0, 1, 1)}, 2, 2)
                   .ok());
  EXPECT_FALSE(FitPiecewiseConstant({}, FitWindow(), 0, 2).ok());
}

TEST(PiecewiseConstantEstimatorTest, IgnoresPointsOutsideWindow) {
  const SpaceTimeWindow w{0.0, 10.0, geom::Rect(0, 0, 2, 2)};
  const std::vector<geom::SpaceTimePoint> points = {
      {5.0, 1.0, 1.0}, {50.0, 1.0, 1.0}, {5.0, 10.0, 1.0}};
  const auto fitted = FitPiecewiseConstant(points, w, 1, 1);
  ASSERT_TRUE(fitted.ok());
  // Only the first point is inside: rate = 1 / (4 km^2 * 10 min).
  EXPECT_NEAR((*fitted)->Rate({5.0, 1.0, 1.0}), 1.0 / 40.0, 1e-9);
}

}  // namespace
}  // namespace pp
}  // namespace craqr
