/// \file fabric_sharing_test.cc
/// \brief Multi-query subplan sharing: byte-exactness, ref-count
/// conservation, and route-LUT maintenance.
///
/// Sharing (FabricConfig::enable_sharing) is a pure execution-plan
/// optimization: it dedups identical partial-cell carve-outs behind one
/// ref-counted P stage and must never change a delivered byte. These
/// tests pin that contract at every layer — engine digests sharing on vs
/// off across shard counts and pipeline depths (with churn and the
/// incentive loop engaged), carve-out ref counts through cancellation,
/// survivor streams through a mid-run cancel of a shared query, and a
/// share+migrate+steal run that the TSan CI job exercises for data races.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"
#include "core/engine.h"
#include "fabric/fabricator.h"
#include "geometry/grid.h"
#include "runtime/sharded_fabricator.h"
#include "sensing/phenomena.h"
#include "sensing/population.h"
#include "sensing/world.h"

namespace craqr {
namespace fabric {
namespace {

constexpr ops::AttributeId kAttr = 0;

geom::Grid SharingGrid() {
  // 3x3 cells of edge 2 over a 6x6 region: partial-cell regions are easy
  // to place while staying above the one-cell minimum query area.
  return geom::Grid::Make(geom::Rect(0, 0, 6, 6), 9).MoveValue();
}

FabricConfig SharingConfig(bool sharing) {
  FabricConfig config;
  config.flatten_batch_size = 32;
  config.seed = 0x5A4E;
  config.enable_sharing = sharing;
  return config;
}

/// Deterministic synthetic batches, dense ids, monotone time.
std::vector<std::vector<ops::Tuple>> MakeBatches(std::size_t num_batches,
                                                 std::size_t batch_size,
                                                 std::uint64_t seed) {
  Rng rng(seed);
  double t = 0.0;
  std::uint64_t id = 1;
  std::vector<std::vector<ops::Tuple>> out;
  for (std::size_t b = 0; b < num_batches; ++b) {
    std::vector<ops::Tuple> batch;
    for (std::size_t i = 0; i < batch_size; ++i) {
      ops::Tuple tuple;
      tuple.id = id++;
      tuple.attribute = kAttr;
      t += 0.002;
      tuple.point = geom::SpaceTimePoint{t, rng.Uniform(0.0, 6.0),
                                         rng.Uniform(0.0, 6.0)};
      batch.push_back(tuple);
    }
    out.push_back(std::move(batch));
  }
  return out;
}

/// Order-sensitive FNV-1a fold over the delivered tuples' identity fields
/// (same fold as runtime_rebalance_test.cc).
std::uint64_t StreamDigest(const std::vector<ops::Tuple>& tuples) {
  std::uint64_t h = 14695981039346656037ULL;
  auto fold = [&h](const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  };
  for (const auto& tuple : tuples) {
    fold(&tuple.id, sizeof(tuple.id));
    fold(&tuple.attribute, sizeof(tuple.attribute));
    fold(&tuple.point.t, sizeof(tuple.point.t));
    fold(&tuple.point.x, sizeof(tuple.point.x));
    fold(&tuple.point.y, sizeof(tuple.point.y));
  }
  return h;
}

// ---------------------------------------------------------------------------
// Ref-count conservation: N sharers tap one carve-out; each cancel detaches
// only that query's suffix, and the stage itself dies with its last sharer.

TEST(FabricSharingTest, RefCountConservationOnCancel) {
  auto fab = StreamFabricator::Make(SharingGrid(), SharingConfig(true))
                 .MoveValue();
  // Identical partial-cell region and rate: the maximal sharing shape.
  const geom::Rect region(0.5, 0.5, 3.0, 2.2);
  std::vector<query::QueryId> sharers;
  for (int i = 0; i < 4; ++i) {
    auto stream = fab->InsertQuery(kAttr, region, 4.0);
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();
    sharers.push_back(stream->id);
    ASSERT_TRUE(fab->ValidateInvariants().ok());
  }
  EXPECT_GT(fab->shared_prefix_hits(), 0u);
  const std::size_t shared_at_peak = fab->SharedStagesLive();
  EXPECT_GT(shared_at_peak, 0u);

  // The census attributes every shared stage to a flat cell.
  std::size_t census_total = 0;
  for (const auto& [cell, count] : fab->SharedStageCensus()) {
    (void)cell;
    census_total += count;
  }
  EXPECT_EQ(census_total, shared_at_peak);

  const auto batches = MakeBatches(8, 64, 0x10DE);
  ASSERT_TRUE(fab->ProcessBatch(batches[0]).ok());

  // Cancel sharers one at a time: invariants (including splitter fan-out
  // == ref count) hold at every intermediate population, detach events
  // are counted, and the stage survives until its last sharer leaves.
  std::uint64_t detached_before = fab->taps_detached();
  for (std::size_t i = 0; i < sharers.size(); ++i) {
    ASSERT_TRUE(fab->RemoveQuery(sharers[i]).ok());
    ASSERT_TRUE(fab->ValidateInvariants().ok());
    EXPECT_GT(fab->taps_detached(), detached_before);
    detached_before = fab->taps_detached();
    if (i + 1 < sharers.size()) {
      ASSERT_TRUE(fab->ProcessBatch(batches[i + 1]).ok());
    }
  }
  EXPECT_EQ(fab->SharedStagesLive(), 0u);
  EXPECT_TRUE(fab->SharedStageCensus().empty());
}

// ---------------------------------------------------------------------------
// Mid-run cancel of a shared query: the survivors' streams must match the
// sharing-off execution byte for byte, before and after the detach.

TEST(FabricSharingTest, CancelSharedMidRunKeepsSurvivorsByteExact) {
  const auto batches = MakeBatches(24, 96, 0xFEED);
  const geom::Rect shared_region(0.5, 0.5, 3.0, 2.2);
  const geom::Rect lone_region(2.5, 3.0, 5.5, 5.0);

  auto run = [&](bool sharing) {
    auto fab = StreamFabricator::Make(SharingGrid(), SharingConfig(sharing))
                   .MoveValue();
    std::vector<QueryStream> shared_streams;
    for (int i = 0; i < 3; ++i) {
      shared_streams.push_back(
          fab->InsertQuery(kAttr, shared_region, 4.0).MoveValue());
    }
    QueryStream lone = fab->InsertQuery(kAttr, lone_region, 2.0).MoveValue();
    for (std::size_t b = 0; b < batches.size(); ++b) {
      if (b == batches.size() / 2) {
        // Cancel one sharer mid-run; the remaining two keep the stage.
        EXPECT_TRUE(fab->RemoveQuery(shared_streams[1].id).ok());
        EXPECT_TRUE(fab->ValidateInvariants().ok());
      }
      EXPECT_TRUE(fab->ProcessBatch(batches[b]).ok());
    }
    std::vector<std::uint64_t> digests;
    digests.push_back(StreamDigest(shared_streams[0].sink->tuples()));
    digests.push_back(StreamDigest(shared_streams[2].sink->tuples()));
    digests.push_back(StreamDigest(lone.sink->tuples()));
    digests.push_back(fab->tuples_routed());
    return digests;
  };

  const auto with_sharing = run(true);
  const auto without_sharing = run(false);
  EXPECT_EQ(with_sharing, without_sharing);
  EXPECT_NE(with_sharing[0], StreamDigest({}));  // streams are non-empty
}

// ---------------------------------------------------------------------------
// Route-LUT maintenance: churn patches touched slots instead of rebuilding
// the whole rows x cols table; a new attribute slot forces the full
// fallback.

TEST(FabricSharingTest, RouteLutChurnPatchesInsteadOfRebuilding) {
  auto fab = StreamFabricator::Make(SharingGrid(), SharingConfig(true))
                 .MoveValue();
  const auto batches = MakeBatches(64, 32, 0x10DE);
  std::size_t next_batch = 0;
  auto pump = [&] {
    ASSERT_TRUE(fab->ProcessBatch(batches[next_batch]).ok());
    next_batch = (next_batch + 1) % batches.size();
  };
  ASSERT_TRUE(
      fab->InsertQuery(kAttr, geom::Rect(0.0, 0.0, 2.0, 2.0), 2.0).ok());
  pump();  // the lazy rebuild materializes the LUT at the next batch
  const std::uint64_t rebuilds_after_first = fab->route_rebuilds();
  ASSERT_GT(rebuilds_after_first, 0u);

  std::vector<query::QueryId> live;
  Rng rng(77);
  for (int step = 0; step < 40; ++step) {
    if (live.size() < 2 || rng.Bernoulli(0.5)) {
      const double x = rng.Uniform(0.0, 3.0);
      const double y = rng.Uniform(0.0, 3.0);
      auto stream = fab->InsertQuery(
          kAttr, geom::Rect(x, y, x + 2.2, y + 2.2), 2.0);
      ASSERT_TRUE(stream.ok());
      live.push_back(stream->id);
    } else {
      const std::size_t pick = rng.UniformInt(live.size());
      ASSERT_TRUE(fab->RemoveQuery(live[pick]).ok());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_TRUE(fab->ValidateInvariants().ok());
    pump();  // keep the table live between churn events
  }
  // Same-attribute churn runs on one-slot patches; full sweeps stay rare
  // (hole compaction only), far below one per churn event.
  EXPECT_GT(fab->route_patches(), 0u);
  EXPECT_LT(fab->route_rebuilds() - rebuilds_after_first, 10u);

  // A query on a never-seen attribute changes the attribute-slot set:
  // that is the documented full-rebuild fallback (applied at the next
  // batch, since the dirty table can't be patched).
  const std::uint64_t rebuilds_before_new_attr = fab->route_rebuilds();
  ASSERT_TRUE(
      fab->InsertQuery(kAttr + 1, geom::Rect(0.0, 0.0, 2.5, 2.5), 2.0).ok());
  pump();
  EXPECT_GT(fab->route_rebuilds(), rebuilds_before_new_attr);
  ASSERT_TRUE(fab->ValidateInvariants().ok());
}

// ---------------------------------------------------------------------------
// Engine-level pin: with churn and the order-sensitive incentive loop
// engaged, sharing on vs off delivers identical bytes at every shard
// count and pipeline depth.

sensing::CrowdWorld MakeEngineWorld(std::size_t sensors) {
  sensing::PopulationConfig pc;
  pc.region = geom::Rect(0, 0, 6, 6);
  pc.num_sensors = sensors;
  pc.responsiveness_sigma = 0.2;
  Rng rng(5);
  auto population = sensing::SensorPopulation::Make(pc, &rng);
  EXPECT_TRUE(population.ok());
  auto world =
      sensing::CrowdWorld::Make(population.MoveValue(), rng.Fork()).MoveValue();
  sensing::TemperatureField::Params tp;
  sensing::ResponseBehavior device = sensing::ResponseModel::DeviceBehavior();
  EXPECT_TRUE(world
                  .RegisterAttribute(
                      "temp", false,
                      sensing::TemperatureField::Make(tp).MoveValue(), device)
                  .ok());
  sensing::RainCell cell;
  cell.x0 = 0.0;
  cell.y0 = 0.0;
  cell.radius = 3.0;
  sensing::ResponseBehavior human = sensing::ResponseModel::HumanBehavior();
  human.base_logit = 2.0;
  human.delay_mu = -1.0;
  EXPECT_TRUE(world
                  .RegisterAttribute(
                      "rain", true,
                      sensing::RainField::Make({cell}).MoveValue(), human)
                  .ok());
  return world;
}

struct EngineRunResult {
  std::uint64_t rain_digest = 0;
  std::uint64_t rain2_digest = 0;
  std::uint64_t temp_digest = 0;
  std::uint64_t tuples_routed = 0;
  std::uint64_t incentive_raises = 0;
  std::uint64_t shared_prefix_hits = 0;

  bool SameStreams(const EngineRunResult& o) const {
    return rain_digest == o.rain_digest && rain2_digest == o.rain2_digest &&
           temp_digest == o.temp_digest && tuples_routed == o.tuples_routed &&
           incentive_raises == o.incentive_raises;
  }
};

/// Churny sharing workload: two identical partial-cell rain queries (the
/// shared carve-out), a third sharer submitted and cancelled mid-run, and
/// a full-region temp query replaced mid-run. `stress` additionally turns
/// on aggressive rebalancing and work stealing — the share+migrate+steal
/// combination the TSan job races.
void RunSharingEngine(std::size_t num_shards, std::size_t pipeline_depth,
                      bool sharing, bool stress, EngineRunResult* out) {
  engine::EngineConfig config;
  config.grid_h = 9;
  config.step_dt = 1.0;
  config.fabric.flatten_batch_size = 32;
  config.fabric.enable_sharing = sharing;
  config.budget.initial = 24.0;
  config.budget.delta = 8.0;
  config.budget.max = 32.0;
  config.enable_incentives = true;
  config.incentive.max = 8.0;
  config.num_shards = num_shards;
  config.pipeline_depth = pipeline_depth;
  if (stress) {
    config.rebalance_every_steps = 1;
    config.rebalance.imbalance_trigger = 1.0;
    config.rebalance.min_cell_tuples = 1;
    config.rebalance.cooldown_events = 1;
    config.enable_work_stealing = true;
  }
  auto made = engine::CraqrEngine::Make(MakeEngineWorld(80), config);
  ASSERT_TRUE(made.ok());
  auto engine = made.MoveValue();
  // Identical region+rate+attribute: shared carve-outs in the boundary
  // cells (the 2.5-wide region is partial in its rightmost cells).
  const char* kSharedRain =
      "ACQUIRE rain FROM REGION(0, 0, 2.5, 2) RATE 20 PER KM2 PER MIN";
  const auto rain1 = engine->SubmitText(kSharedRain);
  const auto rain2 = engine->SubmitText(kSharedRain);
  const auto temp1 = engine->SubmitText(
      "ACQUIRE temp FROM REGION(0, 0, 6, 6) RATE 0.5 PER KM2 PER MIN");
  ASSERT_TRUE(rain1.ok());
  ASSERT_TRUE(rain2.ok());
  ASSERT_TRUE(temp1.ok());
  ASSERT_TRUE(engine->RunFor(10.0).ok());
  const auto rain3 = engine->SubmitText(kSharedRain);  // third sharer
  ASSERT_TRUE(rain3.ok());
  ASSERT_TRUE(engine->Cancel(temp1->id).ok());
  ASSERT_TRUE(engine->RunFor(8.0).ok());
  ASSERT_TRUE(engine->Cancel(rain3->id).ok());  // detach mid-run
  const auto temp2 = engine->SubmitText(
      "ACQUIRE temp FROM REGION(1, 1, 5, 5) RATE 0.4 PER KM2 PER MIN");
  ASSERT_TRUE(temp2.ok());
  ASSERT_TRUE(engine->RunFor(10.0).ok());

  const runtime::ShardedStats stats = engine->Stats();
  out->rain_digest = StreamDigest(rain1->sink->tuples());
  out->rain2_digest = StreamDigest(rain2->sink->tuples());
  out->temp_digest = StreamDigest(temp2->sink->tuples());
  out->tuples_routed = stats.tuples_routed;
  out->incentive_raises = engine->incentives().raises();
  out->shared_prefix_hits = stats.shared_prefix_hits;
}

TEST(FabricSharingEngineTest, ByteExactSharingOnVsOffAcrossShardsAndDepths) {
  for (const std::size_t depth : {1u, 2u}) {
    SCOPED_TRACE("pipeline_depth=" + std::to_string(depth));
    for (const std::size_t shards : {1u, 2u, 4u}) {
      SCOPED_TRACE("num_shards=" + std::to_string(shards));
      EngineRunResult off;
      RunSharingEngine(shards, depth, /*sharing=*/false, /*stress=*/false,
                       &off);
      ASSERT_NE(off.rain_digest, 0u);
      ASSERT_GT(off.incentive_raises, 0u) << "incentives never engaged";
      EngineRunResult on;
      RunSharingEngine(shards, depth, /*sharing=*/true, /*stress=*/false, &on);
      EXPECT_TRUE(off.SameStreams(on));
      // The pin is vacuous unless sharing actually engaged.
      EXPECT_GT(on.shared_prefix_hits, off.shared_prefix_hits);
    }
  }
}

// The TSan CI job races this: shared carve-outs built and torn down while
// cells migrate between shards and idle shards steal queued work.
TEST(FabricSharingEngineTest, ShareMigrateStealStress) {
  EngineRunResult baseline;
  RunSharingEngine(1, 2, /*sharing=*/true, /*stress=*/false, &baseline);
  ASSERT_NE(baseline.rain_digest, 0u);
  for (const std::size_t shards : {2u, 4u}) {
    SCOPED_TRACE("num_shards=" + std::to_string(shards));
    EngineRunResult stressed;
    RunSharingEngine(shards, 2, /*sharing=*/true, /*stress=*/true, &stressed);
    // Migration and stealing must not change delivery either.
    EXPECT_TRUE(baseline.SameStreams(stressed));
  }
}

// ---------------------------------------------------------------------------
// Sharded runtime surfaces the sharing census.

TEST(FabricSharingTest, ShardedStatsCarrySharingCensus) {
  runtime::ShardedConfig config;
  config.num_shards = 2;
  config.fabric = SharingConfig(true);
  auto fab =
      runtime::ShardedFabricator::Make(SharingGrid(), config).MoveValue();
  const geom::Rect region(0.5, 0.5, 3.0, 2.2);
  std::vector<QueryStream> streams;
  for (int i = 0; i < 3; ++i) {
    streams.push_back(fab->InsertQuery(kAttr, region, 4.0).MoveValue());
  }
  const auto batches = MakeBatches(4, 64, 0xCAFE);
  for (const auto& batch : batches) {
    ASSERT_TRUE(fab->ProcessBatch(batch).ok());
  }
  const auto stats = fab->TrySnapshot();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->shared_prefix_hits, 0u);
  EXPECT_GT(stats->stages_shared, 0u);
  std::size_t census_total = 0;
  for (const auto& [cell, count] : stats->shared_stage_census) {
    (void)cell;
    census_total += count;
  }
  EXPECT_EQ(census_total, stats->stages_shared);
  for (auto& stream : streams) {
    EXPECT_TRUE(fab->RemoveQuery(stream.id).ok());
  }
  const auto after = fab->TrySnapshot();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->stages_shared, 0u);
  EXPECT_GT(after->taps_detached, 0u);
}

}  // namespace
}  // namespace fabric
}  // namespace craqr
