#include <gtest/gtest.h>

#include <cmath>

#include "query/query.h"
#include "query/units.h"

namespace craqr {
namespace query {
namespace {

TEST(UnitsTest, AreaParsing) {
  EXPECT_EQ(*ParseAreaUnit("km2"), AreaUnit::kSquareKilometre);
  EXPECT_EQ(*ParseAreaUnit("KM2"), AreaUnit::kSquareKilometre);
  EXPECT_EQ(*ParseAreaUnit("m2"), AreaUnit::kSquareMetre);
  EXPECT_EQ(*ParseAreaUnit("HA"), AreaUnit::kHectare);
  EXPECT_EQ(*ParseAreaUnit("hectare"), AreaUnit::kHectare);
  EXPECT_FALSE(ParseAreaUnit("acre").ok());
}

TEST(UnitsTest, TimeParsing) {
  EXPECT_EQ(*ParseTimeUnit("min"), TimeUnit::kMinute);
  EXPECT_EQ(*ParseTimeUnit("MINUTE"), TimeUnit::kMinute);
  EXPECT_EQ(*ParseTimeUnit("sec"), TimeUnit::kSecond);
  EXPECT_EQ(*ParseTimeUnit("hr"), TimeUnit::kHour);
  EXPECT_EQ(*ParseTimeUnit("HOUR"), TimeUnit::kHour);
  EXPECT_EQ(*ParseTimeUnit("day"), TimeUnit::kDay);
  EXPECT_FALSE(ParseTimeUnit("fortnight").ok());
}

TEST(UnitsTest, CanonicalConversion) {
  // 10 /km2/min is already canonical.
  EXPECT_DOUBLE_EQ(
      ToPerKm2PerMinute(10.0, AreaUnit::kSquareKilometre, TimeUnit::kMinute),
      10.0);
  // 60 /km2/hr = 1 /km2/min.
  EXPECT_DOUBLE_EQ(
      ToPerKm2PerMinute(60.0, AreaUnit::kSquareKilometre, TimeUnit::kHour),
      1.0);
  // 1 /m2/min = 1e6 /km2/min.
  EXPECT_DOUBLE_EQ(
      ToPerKm2PerMinute(1.0, AreaUnit::kSquareMetre, TimeUnit::kMinute), 1e6);
  // 1 /ha/day = 100 /km2 / 1440 min.
  EXPECT_NEAR(ToPerKm2PerMinute(1.0, AreaUnit::kHectare, TimeUnit::kDay),
              100.0 / 1440.0, 1e-12);
}

TEST(UnitsTest, Names) {
  EXPECT_EQ(AreaUnitName(AreaUnit::kSquareKilometre), "KM2");
  EXPECT_EQ(TimeUnitName(TimeUnit::kMinute), "MIN");
}

TEST(ParserTest, ParsesThePaperExampleQuery) {
  // Q<1>: acquire rain from R' at 10 /km2/min.
  const auto q =
      ParseQuery("ACQUIRE rain FROM REGION(0, 0, 2, 3) RATE 10 PER KM2 PER MIN");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->attribute, "rain");
  EXPECT_EQ(q->region, geom::Rect(0, 0, 2, 3));
  EXPECT_DOUBLE_EQ(q->rate, 10.0);
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  const auto q =
      ParseQuery("acquire Temp from region(1,1,4,4) rate 2.5 per km2 per hr");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->attribute, "Temp");  // attribute case preserved
  EXPECT_NEAR(q->rate, 2.5 / 60.0, 1e-12);
}

TEST(ParserTest, NegativeCoordinatesAndScientificNumbers) {
  const auto q = ParseQuery(
      "ACQUIRE aqi FROM REGION(-2.5, -1, 3.5, 4) RATE 1e2 PER KM2 PER MIN");
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->region.x_min(), -2.5);
  EXPECT_DOUBLE_EQ(q->rate, 100.0);
}

class ParserRejectionTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserRejectionTest, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseQuery(GetParam()).ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    BadQueries, ParserRejectionTest,
    ::testing::Values(
        "",                                                        // empty
        "SELECT rain",                                             // wrong verb
        "ACQUIRE FROM REGION(0,0,1,1) RATE 1 PER KM2 PER MIN",     // no attr
        "ACQUIRE rain FROM REGION(0,0,1,1)",                       // no rate
        "ACQUIRE rain FROM REGION(0,0,1,1) RATE PER KM2 PER MIN",  // no value
        "ACQUIRE rain FROM REGION(1,1,0,0) RATE 1 PER KM2 PER MIN",  // bad rect
        "ACQUIRE rain FROM REGION(0,0,1,1) RATE -5 PER KM2 PER MIN",  // bad rate
        "ACQUIRE rain FROM REGION(0,0,1,1) RATE 0 PER KM2 PER MIN",   // zero
        "ACQUIRE rain FROM REGION(0,0,1,1) RATE 1 PER ACRE PER MIN",  // unit
        "ACQUIRE rain FROM REGION(0,0,1,1) RATE 1 PER KM2 PER EON",   // unit
        "ACQUIRE rain FROM REGION(0,0,1) RATE 1 PER KM2 PER MIN",  // 3 coords
        "ACQUIRE rain FROM REGION(0,0,1,1) RATE 1 PER KM2 PER MIN extra",
        "ACQUIRE rain FROM REGION 0,0,1,1 RATE 1 PER KM2 PER MIN",  // parens
        "ACQUIRE rain REGION(0,0,1,1) RATE 1 PER KM2 PER MIN"));    // no FROM

TEST(ParserTest, RoundTripsThroughToString) {
  const auto original = ParseQuery(
      "ACQUIRE temp FROM REGION(0.5, 1.5, 4.5, 6) RATE 3 PER KM2 PER MIN");
  ASSERT_TRUE(original.ok());
  const auto reparsed = ParseQuery(original->ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->attribute, original->attribute);
  EXPECT_EQ(reparsed->region, original->region);
  EXPECT_DOUBLE_EQ(reparsed->rate, original->rate);
}

TEST(QueryValidateTest, ChecksAllFields) {
  AcquisitionQuery q;
  q.attribute = "rain";
  q.region = geom::Rect(0, 0, 1, 1);
  q.rate = 1.0;
  EXPECT_TRUE(q.Validate().ok());
  q.attribute = "";
  EXPECT_FALSE(q.Validate().ok());
  q.attribute = "rain";
  q.region = geom::Rect();
  EXPECT_FALSE(q.Validate().ok());
  q.region = geom::Rect(0, 0, 1, 1);
  q.rate = 0.0;
  EXPECT_FALSE(q.Validate().ok());
  q.rate = std::nan("");
  EXPECT_FALSE(q.Validate().ok());
}

}  // namespace
}  // namespace query
}  // namespace craqr
