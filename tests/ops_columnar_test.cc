#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "fabric/fabricator.h"
#include "ops/extras.h"
#include "ops/reorder.h"
#include "ops/tuple.h"
#include "ops/tuple_batch.h"
#include "ops/value_pool.h"
#include "runtime/sharded_fabricator.h"

/// \file ops_columnar_test.cc
/// \brief The columnar tuple layout: ValuePool interning, PayloadRef tag
/// round-trips, SoA TupleBatch behavior, byte-exact old-vs-new delivered
/// streams (digests captured from the pre-refactor variant/AoS build), and
/// canonical delivery *order* across shard counts.

namespace craqr {
namespace ops {
namespace {

constexpr AttributeId kRain = 0;
constexpr AttributeId kTemp = 1;

// ---------------------------------------------------------------------------
// ValuePool

TEST(ValuePoolTest, InternsDedupsAndRoundTrips) {
  ValuePool pool;
  const ValueId a = pool.Intern("wet");
  const ValueId b = pool.Intern("dry");
  const ValueId a2 = pool.Intern("wet");
  EXPECT_EQ(a, a2) << "interning must deduplicate";
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.Get(a), "wet");
  EXPECT_EQ(pool.Get(b), "dry");
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_GT(pool.ApproxBytes(), 0u);
  // References are stable across growth (append-only storage).
  const std::string* wet = &pool.Get(a);
  for (int i = 0; i < 1000; ++i) {
    pool.Intern("grow-" + std::to_string(i));
  }
  EXPECT_EQ(&pool.Get(a), wet);
  EXPECT_EQ(pool.Get(a), "wet");
  EXPECT_EQ(pool.size(), 1002u);
}

TEST(ValuePoolTest, EmptyStringAndConcurrentIntern) {
  ValuePool pool;
  const ValueId empty = pool.Intern("");
  EXPECT_EQ(pool.Get(empty), "");
  // Hammer the pool from several threads with overlapping vocabularies;
  // afterwards every id must resolve to its string (sanitizer fodder).
  std::vector<std::thread> threads;
  std::vector<std::vector<ValueId>> ids(4);
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&pool, &ids, w] {
      for (int i = 0; i < 500; ++i) {
        ids[w].push_back(pool.Intern("shared-" + std::to_string(i % 97)));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (int w = 0; w < 4; ++w) {
    for (std::size_t i = 0; i < ids[w].size(); ++i) {
      EXPECT_EQ(pool.Get(ids[w][i]), "shared-" + std::to_string(i % 97));
    }
  }
  EXPECT_EQ(pool.size(), 98u);  // 97 shared + the empty string
}

// ---------------------------------------------------------------------------
// PayloadRef

TEST(PayloadRefTest, TagRoundTripAllFiveKinds) {
  const PayloadRef null = PayloadRef::Null();
  EXPECT_EQ(null.kind(), PayloadKind::kNull);
  EXPECT_TRUE(null.is_null());

  const PayloadRef yes = PayloadRef::Bool(true);
  const PayloadRef no = PayloadRef::Bool(false);
  EXPECT_EQ(yes.kind(), PayloadKind::kBool);
  EXPECT_TRUE(yes.AsBool());
  EXPECT_FALSE(no.AsBool());

  const PayloadRef big = PayloadRef::Int64(-0x123456789abcdef0);
  EXPECT_EQ(big.kind(), PayloadKind::kInt64);
  EXPECT_EQ(big.AsInt64(), -0x123456789abcdef0);

  const double tricky = -0.0;
  const PayloadRef d = PayloadRef::Double(1.0 / 9973.0);
  const PayloadRef neg_zero = PayloadRef::Double(tricky);
  EXPECT_EQ(d.kind(), PayloadKind::kDouble);
  EXPECT_DOUBLE_EQ(d.AsDouble(), 1.0 / 9973.0);
  EXPECT_TRUE(std::signbit(neg_zero.AsDouble()));

  ValuePool pool;
  const PayloadRef s = PayloadRef::String("downpour", pool);
  EXPECT_EQ(s.kind(), PayloadKind::kString);
  EXPECT_EQ(s.AsString(pool), "downpour");
  EXPECT_EQ(PayloadRef::InternedString(s.string_id()), s);
}

TEST(PayloadRefTest, EqualityAndInterningMakeStringsComparable) {
  EXPECT_EQ(PayloadRef::Double(2.5), PayloadRef::Double(2.5));
  EXPECT_NE(PayloadRef::Double(2.5), PayloadRef::Int64(2));
  EXPECT_NE(PayloadRef::Null(), PayloadRef::Bool(false));
  ValuePool pool;
  // Same pool + dedup: id equality == string equality.
  EXPECT_EQ(PayloadRef::String("wet", pool), PayloadRef::String("wet", pool));
  EXPECT_NE(PayloadRef::String("wet", pool), PayloadRef::String("dry", pool));
}

TEST(PayloadRefTest, VariantBridgesRoundTrip) {
  ValuePool pool;
  const AttributeValue cases[] = {
      AttributeValue{}, AttributeValue{true},
      AttributeValue{std::int64_t{-42}}, AttributeValue{19.8125},
      AttributeValue{std::string("wet")}};
  for (const auto& value : cases) {
    const PayloadRef payload = MakePayload(value, pool);
    EXPECT_EQ(static_cast<std::size_t>(payload.kind()), value.index());
    EXPECT_TRUE(ToAttributeValue(payload, pool) == value)
        << AttributeValueToString(value);
  }
  // The implicit constructor bridges through the global pool.
  Tuple tuple;
  tuple.value = AttributeValue{std::string("drizzle")};
  EXPECT_EQ(tuple.value.AsString(), "drizzle");
  EXPECT_EQ(PayloadToString(tuple.value), "\"drizzle\"");
  EXPECT_EQ(PayloadToString(PayloadRef::Null()), "null");
}

// ---------------------------------------------------------------------------
// SoA TupleBatch mechanics the batch test does not already cover

TEST(TupleBatchTest, SortByTimeThenIdIsCanonicalAndCompacts) {
  TupleBatch batch;
  const double times[] = {3.0, 1.0, 2.0, 1.0, 0.5};
  for (std::size_t i = 0; i < 5; ++i) {
    Tuple t;
    t.id = i + 1;
    t.point = geom::SpaceTimePoint{times[i], 0, 0};
    batch.Append(t);
  }
  // Deselect id 3 (t=2.0); the sort must drop the husk and order the rest
  // by (t, id): id5(0.5), id2(1.0), id4(1.0), id1(3.0).
  batch.RetainRaw([](std::uint32_t raw) { return raw != 2; });
  batch.SortByTimeThenId();
  EXPECT_FALSE(batch.has_selection());
  ASSERT_EQ(batch.size(), 4u);
  const std::uint64_t expected[] = {5, 2, 4, 1};
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(batch.Ids()[i], expected[i]) << i;
  }
}

TEST(TupleBatchTest, AppendActiveFromHonorsSelections) {
  TupleBatch src;
  for (std::size_t i = 0; i < 10; ++i) {
    Tuple t;
    t.id = i;
    src.Append(t);
  }
  src.RetainRaw([](std::uint32_t raw) { return raw % 2 == 0; });
  TupleBatch dst;
  Tuple seed;
  seed.id = 99;
  dst.Append(seed);
  dst.AppendActiveFrom(src);
  ASSERT_EQ(dst.size(), 6u);
  const std::uint64_t expected[] = {99, 0, 2, 4, 6, 8};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(dst.Ids()[i], expected[i]) << i;
  }
}

TEST(ReorderOperatorTest, FlushEmitsCanonicalOrder) {
  auto reorder = ReorderOperator::Make("ord").MoveValue();
  auto sink = SinkOperator::Make("sink").MoveValue();
  reorder->AddOutput(sink.get());
  // Two pushes with interleaved times (two upstream chains' worth).
  TupleBatch first, second;
  const double chain_a[] = {1.0, 3.0, 5.0};
  const double chain_b[] = {2.0, 4.0, 4.0};
  for (int i = 0; i < 3; ++i) {
    Tuple t;
    t.id = static_cast<std::uint64_t>(i) + 1;
    t.point = geom::SpaceTimePoint{chain_a[i], 0, 0};
    first.Append(t);
    t.id = static_cast<std::uint64_t>(i) + 4;
    t.point = geom::SpaceTimePoint{chain_b[i], 0, 0};
    second.Append(t);
  }
  ASSERT_TRUE(reorder->PushBatch(first).ok());
  ASSERT_TRUE(reorder->PushBatch(second).ok());
  EXPECT_EQ(sink->total_received(), 0u) << "Ord buffers until Flush";
  EXPECT_EQ(reorder->buffered(), 6u);
  ASSERT_TRUE(reorder->Flush().ok());
  EXPECT_EQ(reorder->buffered(), 0u);
  ASSERT_EQ(sink->tuples().size(), 6u);
  const std::uint64_t expected[] = {1, 4, 2, 5, 6, 3};  // (t, id) order
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(sink->tuples()[i].id, expected[i]) << i;
  }
  EXPECT_EQ(reorder->stats().tuples_in, reorder->stats().tuples_out);
}

// ---------------------------------------------------------------------------
// Byte-exact old-vs-new delivered streams under churn
//
// The digests below were captured by running this exact workload against
// the pre-refactor build (AoS TupleBatch, variant-valued ~90-byte Tuple)
// at commit f7c3d49: every query's delivered stream, sorted by (t, id),
// rendered field-by-field (double bits in hex, values tagged) and FNV-1a
// hashed. The columnar layout must reproduce them bit for bit on every
// execution path.

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t Fnv1a(const std::string& s, std::uint64_t h) {
  for (const unsigned char c : s) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t Bits(double d) {
  std::uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

std::string RenderValue(const PayloadRef& v) {
  std::ostringstream os;
  switch (v.kind()) {
    case PayloadKind::kNull:
      os << "n";
      break;
    case PayloadKind::kBool:
      os << "b" << (v.AsBool() ? 1 : 0);
      break;
    case PayloadKind::kInt64:
      os << "i" << v.AsInt64();
      break;
    case PayloadKind::kDouble:
      os << "d" << std::hex << Bits(v.AsDouble());
      break;
    case PayloadKind::kString:
      os << "s" << v.AsString();
      break;
  }
  return os.str();
}

const char* kCategories[7] = {"clear", "drizzle", "rain",   "downpour",
                              "hail",  "sleet",   "fog"};

/// The pre-refactor driver's batch shape: monotone times, mixed
/// attributes, and values cycling through all five payload kinds.
std::vector<Tuple> MakeValuedBatch(Rng* rng, double* t, std::size_t n,
                                   std::uint64_t first_id) {
  std::vector<Tuple> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Tuple tuple;
    tuple.id = first_id + i;
    tuple.attribute = (i % 3 == 0) ? kTemp : kRain;
    tuple.sensor_id = 100 + (i % 17);
    *t += 0.002;
    tuple.point = geom::SpaceTimePoint{*t, rng->Uniform(0.0, 4.0),
                                       rng->Uniform(0.0, 4.0)};
    switch (i % 5) {
      case 0:
        break;  // null
      case 1:
        tuple.value = PayloadRef::Bool(i % 2 == 1);
        break;
      case 2:
        tuple.value = PayloadRef::Int64(static_cast<std::int64_t>(i) * 7 - 3);
        break;
      case 3:
        tuple.value = PayloadRef::Double(static_cast<double>(i) * 0.25);
        break;
      case 4:
        tuple.value = PayloadRef::String(kCategories[i % 7]);
        break;
    }
    batch.push_back(tuple);
  }
  return batch;
}

struct StreamTrace {
  std::size_t count = 0;
  std::uint64_t digest = kFnvOffset;        // canonical (t, id) order
  std::vector<std::uint64_t> delivery_ids;  // raw delivery order
};

/// Runs the golden churn workload (identical to the pre-refactor capture
/// driver) and returns, per query slot, the canonical content digest plus
/// the raw delivery-order id sequence.
template <typename Fab>
void RunGoldenWorkload(Fab* fab, std::vector<StreamTrace>* out) {
  Rng rng(99);
  double t = 0.0;
  std::uint64_t next_id = 1;
  auto pump = [&](std::size_t batches) {
    for (std::size_t b = 0; b < batches; ++b) {
      auto batch = MakeValuedBatch(&rng, &t, 96, next_id);
      next_id += batch.size();
      ASSERT_TRUE(fab->ProcessBatch(batch).ok());
    }
  };
  const auto q1 = fab->InsertQuery(kRain, geom::Rect(0, 0, 4, 4), 6.0);
  ASSERT_TRUE(q1.ok());
  const auto q2 = fab->InsertQuery(kRain, geom::Rect(1, 1, 3, 3), 3.0);
  ASSERT_TRUE(q2.ok());
  const auto q3 = fab->InsertQuery(kTemp, geom::Rect(0, 0, 2, 4), 4.0);
  ASSERT_TRUE(q3.ok());
  pump(5);
  ASSERT_TRUE(fab->RemoveQuery(q2->id).ok());
  pump(3);
  const auto q4 = fab->InsertQuery(kRain, geom::Rect(2, 0, 4, 3), 2.0);
  ASSERT_TRUE(q4.ok());
  pump(4);
  ASSERT_TRUE(fab->ValidateInvariants().ok());

  for (const auto id : {q1->id, q3->id, q4->id}) {
    const auto stream = fab->GetStream(id);
    ASSERT_TRUE(stream.ok());
    StreamTrace trace;
    std::vector<Tuple> tuples = stream->sink->tuples();
    trace.count = tuples.size();
    for (const Tuple& tuple : tuples) {
      trace.delivery_ids.push_back(tuple.id);
    }
    std::sort(tuples.begin(), tuples.end(), [](const Tuple& a,
                                               const Tuple& b) {
      return std::make_pair(a.point.t, a.id) < std::make_pair(b.point.t, b.id);
    });
    for (const Tuple& tuple : tuples) {
      std::ostringstream line;
      line << tuple.id << '|' << tuple.attribute << '|' << std::hex
           << Bits(tuple.point.t) << '|' << Bits(tuple.point.x) << '|'
           << Bits(tuple.point.y) << '|' << std::dec << tuple.sensor_id << '|'
           << RenderValue(tuple.value) << '\n';
      trace.digest = Fnv1a(line.str(), trace.digest);
    }
    out->push_back(std::move(trace));
  }
}

geom::Grid GoldenGrid() {
  return geom::Grid::Make(geom::Rect(0, 0, 4, 4), 16).MoveValue();
}

fabric::FabricConfig GoldenFabricConfig() {
  fabric::FabricConfig config;
  config.flatten_batch_size = 32;
  config.seed = 0xBA7C4;
  return config;
}

std::vector<StreamTrace> RunGoldenSingle() {
  auto fab = fabric::StreamFabricator::Make(GoldenGrid(), GoldenFabricConfig())
                 .MoveValue();
  std::vector<StreamTrace> traces;
  RunGoldenWorkload(fab.get(), &traces);
  return traces;
}

std::vector<StreamTrace> RunGoldenSharded(std::size_t num_shards) {
  runtime::ShardedConfig config;
  config.num_shards = num_shards;
  config.fabric = GoldenFabricConfig();
  auto fab =
      runtime::ShardedFabricator::Make(GoldenGrid(), config).MoveValue();
  std::vector<StreamTrace> traces;
  RunGoldenWorkload(fab.get(), &traces);
  return traces;
}

/// Captured from the pre-refactor build (see the block comment above).
struct GoldenDigest {
  std::size_t count;
  std::uint64_t digest;
};
constexpr GoldenDigest kGolden[3] = {
    {196, 0x5138c158969b9d1eull},  // Q1: rain over the full region
    {77, 0x587325b8f0884519ull},   // Q3: temp over the left half
    {3, 0xbd3a8a72fb58eeeeull},    // Q4: rain, late insert
};

TEST(ColumnarEquivalenceTest, DeliveredStreamsMatchPreRefactorDigests) {
  const std::vector<StreamTrace> single = RunGoldenSingle();
  ASSERT_EQ(single.size(), 3u);
  for (std::size_t q = 0; q < 3; ++q) {
    EXPECT_EQ(single[q].count, kGolden[q].count) << "query slot " << q;
    EXPECT_EQ(single[q].digest, kGolden[q].digest)
        << "query slot " << q
        << ": delivered stream content diverged from the variant/AoS layout";
  }
  for (const std::size_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE("num_shards=" + std::to_string(shards));
    const std::vector<StreamTrace> sharded = RunGoldenSharded(shards);
    ASSERT_EQ(sharded.size(), 3u);
    for (std::size_t q = 0; q < 3; ++q) {
      EXPECT_EQ(sharded[q].count, kGolden[q].count) << "query slot " << q;
      EXPECT_EQ(sharded[q].digest, kGolden[q].digest) << "query slot " << q;
    }
  }
}

// ---------------------------------------------------------------------------
// Canonical delivery ORDER across shard counts (not just content): the
// merge stages' reorder buffers flush every processing step in (t, id)
// order on both execution paths, so the raw sink sequences must be
// identical for the in-process fabricator and shards {1, 2, 4}.

TEST(ColumnarEquivalenceTest, DeliveryOrderIsShardCountIndependent) {
  const std::vector<StreamTrace> reference = RunGoldenSingle();
  ASSERT_EQ(reference.size(), 3u);
  ASSERT_GT(reference[0].delivery_ids.size(), 0u);
  for (const std::size_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE("num_shards=" + std::to_string(shards));
    const std::vector<StreamTrace> sharded = RunGoldenSharded(shards);
    ASSERT_EQ(sharded.size(), 3u);
    for (std::size_t q = 0; q < 3; ++q) {
      EXPECT_EQ(sharded[q].delivery_ids, reference[q].delivery_ids)
          << "query slot " << q << ": delivery order diverged";
    }
  }
}

}  // namespace
}  // namespace ops
}  // namespace craqr
