#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "core/engine.h"
#include "geometry/grid.h"
#include "ops/extras.h"
#include "ops/flatten.h"
#include "ops/partition.h"
#include "ops/pipeline.h"
#include "ops/thin.h"
#include "ops/union_op.h"
#include "ops/value_pool.h"

/// \file ops_vectorized_test.cc
/// \brief Byte-exact guarantees of the vectorized column sweeps.
///
/// The branch-free selection kernels (Rng::FillBernoulliMask +
/// TupleBatch::RetainFromMask, Rect::ContainsMask + SelectFromMask, and
/// the histogram routers) must deliver exactly the streams the per-tuple
/// scalar path delivers — and exactly the streams the pre-vectorization
/// build delivered. Two layers of pinning:
///
///  - every sweep is run through the per-tuple `Push` reference path and
///    the batch `PushBatch` path on identical topologies and seeds, and
///    the delivered streams must match byte for byte;
///  - the delivered streams are additionally pinned to FNV-1a digests
///    captured from the pre-vectorization scalar build (same workloads,
///    same seeds), so a change that altered BOTH paths in lockstep —
///    e.g. a draw-order slip in the shared Bernoulli threshold — still
///    fails loudly.
///
/// The engine-level churn workload repeats the pinning through the full
/// stack at shards {1,2,4} x pipeline depths {1,2}.

namespace craqr {
namespace {

// ---------------------------------------------------------------------------
// FNV-1a stream digests (same fold core_engine_test pins with)

std::uint64_t FnvFold(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t StreamDigest(const std::vector<ops::Tuple>& tuples) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const auto& tuple : tuples) {
    h = FnvFold(h, &tuple.id, sizeof(tuple.id));
    h = FnvFold(h, &tuple.sensor_id, sizeof(tuple.sensor_id));
    h = FnvFold(h, &tuple.attribute, sizeof(tuple.attribute));
    h = FnvFold(h, &tuple.point.t, sizeof(tuple.point.t));
    h = FnvFold(h, &tuple.point.x, sizeof(tuple.point.x));
    h = FnvFold(h, &tuple.point.y, sizeof(tuple.point.y));
    const auto kind = static_cast<unsigned char>(tuple.value.kind());
    h = FnvFold(h, &kind, sizeof(kind));
    const std::string rendered = ops::PayloadToString(tuple.value);
    h = FnvFold(h, rendered.data(), rendered.size());
  }
  return h;
}

/// Deterministic workload stream: monotone time, positions across (and
/// slightly beyond) the [0,4) x [0,4) operator regions so containment
/// sweeps see out-of-region tuples too.
std::vector<ops::Tuple> MakeWorkloadTuples(std::size_t n,
                                           std::uint64_t seed = 91) {
  Rng rng(seed);
  std::vector<ops::Tuple> tuples;
  tuples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ops::Tuple t;
    t.id = i + 1;
    t.sensor_id = 1000 + (i % 37);
    t.attribute = i % 3 == 0 ? 1 : 0;
    t.point = geom::SpaceTimePoint{static_cast<double>(i) * 0.01,
                                   rng.Uniform(0.0, 4.5),
                                   rng.Uniform(0.0, 4.5)};
    t.value = ops::PayloadRef::Double(rng.Uniform(-5.0, 35.0));
    tuples.push_back(t);
  }
  return tuples;
}

constexpr std::size_t kWorkloadTuples = 2048;
constexpr std::size_t kDriveBatch = 192;  // not a divisor: ragged tail batch

/// Drives `head` with the workload per-tuple (reference scalar path).
void DrivePerTuple(ops::Operator* head, const std::vector<ops::Tuple>& tuples) {
  for (const ops::Tuple& tuple : tuples) {
    ASSERT_TRUE(head->Push(tuple).ok());
  }
}

/// Drives `head` with the workload in batches (vectorized path).
void DriveBatched(ops::Operator* head, const std::vector<ops::Tuple>& tuples) {
  ops::TupleBatch batch;
  std::size_t i = 0;
  while (i < tuples.size()) {
    const std::size_t end = std::min(i + kDriveBatch, tuples.size());
    batch.Clear();
    for (; i < end; ++i) {
      batch.Append(tuples[i]);
    }
    ASSERT_TRUE(head->PushBatch(batch).ok());
  }
}

// ---------------------------------------------------------------------------
// Kernel unit tests: RNG threshold + fills

TEST(VectorizedKernelTest, BernoulliThresholdMatchesUniformCompare) {
  // The raw-word threshold compare must decide exactly like the
  // historical `Uniform() < p` for every word and probability.
  const double probs[] = {0x1p-53,
                          1e-300,
                          1e-9,
                          0.1,
                          0.25,
                          0.5,
                          0.75,
                          0.9999999,
                          1.0 - 0x1p-53,
                          std::nextafter(1.0, 0.0),
                          std::nextafter(0.0, 1.0)};
  Rng words(123);
  std::vector<std::uint64_t> raw;
  for (int i = 0; i < 4096; ++i) {
    raw.push_back(words.NextU64());
  }
  // Boundary words for each p: the exact acceptance bound +/- 1.
  for (const double p : probs) {
    const std::uint64_t threshold = Rng::BernoulliThreshold(p);
    std::vector<std::uint64_t> cases = raw;
    if (threshold > 0) {
      cases.push_back(threshold - 1);
    }
    cases.push_back(threshold);
    cases.push_back(threshold + 2047);  // same high 53 bits as `threshold`
    for (const std::uint64_t v : cases) {
      const double uniform = static_cast<double>(v >> 11) * 0x1.0p-53;
      EXPECT_EQ(v < threshold, uniform < p)
          << "p=" << p << " v=" << v << " threshold=" << threshold;
    }
  }
}

TEST(VectorizedKernelTest, BernoulliNanRejectsAndConsumesOneDraw) {
  // NaN slips past both degenerate guards; the historical `Uniform() < p`
  // consumed a draw and rejected, and the threshold path must too.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(Rng::BernoulliThreshold(nan), 0u);
  Rng with_nan(3);
  Rng reference(3);
  EXPECT_FALSE(with_nan.Bernoulli(nan));
  (void)reference.NextU64();  // the draw the NaN row consumed
  EXPECT_EQ(with_nan.NextU64(), reference.NextU64());
}

TEST(VectorizedKernelTest, FillBernoulliMaskDrawOrderParity) {
  // Same seed: the batch fill must produce the scalar loop's decisions
  // AND leave the generator at the same stream position.
  for (const double p : {0.2, 0.5, 0.93}) {
    Rng scalar(77);
    Rng batch(77);
    std::vector<std::uint8_t> mask(513);
    batch.FillBernoulliMask(p, {mask.data(), mask.size()});
    for (std::size_t i = 0; i < mask.size(); ++i) {
      EXPECT_EQ(mask[i] != 0, scalar.Bernoulli(p)) << "p=" << p << " i=" << i;
    }
    EXPECT_EQ(batch.NextU64(), scalar.NextU64()) << "stream diverged, p=" << p;
  }
  // Degenerate probabilities consume no draw, exactly like the scalar
  // fast paths.
  Rng scalar(9);
  Rng batch(9);
  std::vector<std::uint8_t> mask(64);
  batch.FillBernoulliMask(0.0, {mask.data(), mask.size()});
  EXPECT_EQ(simd::MaskCount({mask.data(), mask.size()}), 0u);
  batch.FillBernoulliMask(1.0, {mask.data(), mask.size()});
  EXPECT_EQ(simd::MaskCount({mask.data(), mask.size()}), mask.size());
  EXPECT_EQ(batch.NextU64(), scalar.NextU64());
}

TEST(VectorizedKernelTest, FillBernoulliMaskPerRowProbsParity) {
  // Mixed degenerate and fractional rows: draw consumption must match a
  // scalar Bernoulli loop row for row (clamped p == 1 rows draw nothing).
  Rng gen(31);
  std::vector<double> probs;
  for (int i = 0; i < 301; ++i) {
    const int kind = i % 4;
    probs.push_back(kind == 0 ? 1.0 : (kind == 1 ? 0.0 : gen.Uniform()));
  }
  Rng scalar(55);
  Rng batch(55);
  std::vector<std::uint8_t> mask(probs.size());
  batch.FillBernoulliMask({probs.data(), probs.size()},
                          {mask.data(), mask.size()});
  for (std::size_t i = 0; i < probs.size(); ++i) {
    EXPECT_EQ(mask[i] != 0, scalar.Bernoulli(probs[i])) << "i=" << i;
  }
  EXPECT_EQ(batch.NextU64(), scalar.NextU64());
}

TEST(VectorizedKernelTest, FillUniformMatchesScalarDraws) {
  Rng scalar(4242);
  Rng batch(4242);
  std::vector<double> out(97);
  batch.FillUniform({out.data(), out.size()});
  for (const double v : out) {
    EXPECT_EQ(v, scalar.Uniform());
  }
  EXPECT_EQ(batch.NextU64(), scalar.NextU64());
}

// ---------------------------------------------------------------------------
// Kernel unit tests: containment masks

TEST(VectorizedKernelTest, ContainsMaskMatchesContainsIncludingEdges) {
  const geom::Rect rect(1.0, 2.0, 3.0, 5.0);
  std::vector<geom::SpaceTimePoint> points;
  // Every corner/edge combination of {min, interior, just-below-max, max,
  // beyond} per axis — the half-open boundary cases.
  const double xs[] = {0.5, 1.0, 2.0, std::nextafter(3.0, 0.0), 3.0, 3.5};
  const double ys[] = {1.5, 2.0, 3.0, std::nextafter(5.0, 0.0), 5.0, 6.0};
  for (const double x : xs) {
    for (const double y : ys) {
      points.push_back(geom::SpaceTimePoint{0.0, x, y});
    }
  }
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    points.push_back(geom::SpaceTimePoint{0.0, rng.Uniform(0.0, 4.0),
                                          rng.Uniform(0.0, 6.0)});
  }
  std::vector<std::uint8_t> mask(points.size());
  rect.ContainsMask({points.data(), points.size()}, mask.data());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(mask[i] != 0, rect.Contains(points[i].x, points[i].y))
        << "x=" << points[i].x << " y=" << points[i].y;
  }
  // The OR variant accumulates without clearing.
  const geom::Rect other(0.0, 0.0, 1.0, 2.0);
  std::vector<std::uint8_t> ored(points.size(), 0);
  rect.ContainsMaskOr({points.data(), points.size()}, ored.data());
  other.ContainsMaskOr({points.data(), points.size()}, ored.data());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(ored[i] != 0, rect.Contains(points[i].x, points[i].y) ||
                                other.Contains(points[i].x, points[i].y));
  }
}

TEST(VectorizedKernelTest, FillFlatCellsMatchesCellContaining) {
  const auto grid =
      geom::Grid::Make(geom::Rect(0, 0, 6, 6), 9).MoveValue();
  std::vector<geom::SpaceTimePoint> points;
  Rng rng(12);
  for (int i = 0; i < 500; ++i) {
    points.push_back(geom::SpaceTimePoint{0.0, rng.Uniform(-1.0, 7.0),
                                          rng.Uniform(-1.0, 7.0)});
  }
  // Cell-boundary and region-boundary coordinates.
  for (const double v : {0.0, 2.0, 4.0, std::nextafter(6.0, 0.0), 6.0}) {
    points.push_back(geom::SpaceTimePoint{0.0, v, 3.0});
    points.push_back(geom::SpaceTimePoint{0.0, 3.0, v});
  }
  std::vector<std::uint32_t> flats(points.size());
  const std::uint32_t invalid = grid.NumCells();
  grid.FillFlatCells({points.data(), points.size()}, flats.data(), invalid);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto cell = grid.CellContaining(points[i].x, points[i].y);
    if (cell.has_value()) {
      EXPECT_EQ(flats[i], grid.FlatIndex(*cell)) << "i=" << i;
    } else {
      EXPECT_EQ(flats[i], invalid) << "i=" << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Kernel unit tests: compaction + histogram grouping

TEST(VectorizedKernelTest, MaskCompactAndHistogramGroup) {
  const std::uint8_t mask[] = {1, 0, 0, 1, 1, 0, 1};
  std::uint32_t out[7];
  ASSERT_EQ(simd::MaskCompact({mask, 7}, out), 4u);
  EXPECT_EQ(out[0], 0u);
  EXPECT_EQ(out[1], 3u);
  EXPECT_EQ(out[2], 4u);
  EXPECT_EQ(out[3], 6u);
  const std::uint32_t values[] = {10, 20, 30, 40, 50, 60, 70};
  std::uint32_t gathered[7];
  ASSERT_EQ(simd::MaskCompactGather({mask, 7}, values, gathered), 4u);
  EXPECT_EQ(gathered[0], 10u);
  EXPECT_EQ(gathered[3], 70u);
  EXPECT_EQ(simd::MaskCount({mask, 7}), 4u);

  // Histogram grouping: stable within buckets, end offsets on return.
  const std::uint32_t keys[] = {2, 0, 2, 1, 0, 2};
  std::vector<std::uint32_t> counts(3, 0);
  std::uint32_t grouped[6];
  simd::HistogramGroup({keys, 6}, {counts.data(), counts.size()}, grouped);
  EXPECT_EQ(counts[0], 2u);  // end of bucket 0
  EXPECT_EQ(counts[1], 3u);
  EXPECT_EQ(counts[2], 6u);
  const std::uint32_t expect[] = {1, 4, 3, 0, 2, 5};
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(grouped[i], expect[i]) << "i=" << i;
  }
}

TEST(VectorizedKernelTest, TupleBatchMaskSelection) {
  const auto tuples = MakeWorkloadTuples(10);
  // RetainFromMask on a plain batch (mask indexed by active position).
  ops::TupleBatch batch(tuples);
  const std::uint8_t keep_even[] = {1, 0, 1, 0, 1, 0, 1, 0, 1, 0};
  batch.RetainFromMask({keep_even, 10});
  ASSERT_EQ(batch.size(), 5u);
  EXPECT_EQ(batch.ToTuples()[1].id, tuples[2].id);
  // Second application: mask now indexed by the 5 remaining actives.
  const std::uint8_t keep_last[] = {0, 0, 0, 0, 1};
  batch.RetainFromMask({keep_last, 5});
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.ToTuples()[0].id, tuples[8].id);

  // SelectFromMask intersects with the raw-indexed mask.
  ops::TupleBatch raw_sel(tuples);
  raw_sel.RetainFromMask({keep_even, 10});
  std::uint8_t raw_mask[10] = {};
  raw_mask[2] = 1;
  raw_mask[3] = 1;  // deselected husk: must stay deselected
  raw_mask[6] = 1;
  raw_sel.SelectFromMask({raw_mask, 10});
  const auto selected = raw_sel.ToTuples();
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0].id, tuples[2].id);
  EXPECT_EQ(selected[1].id, tuples[6].id);

  // GatherActiveWhere / CountActiveWhere agree with the selection.
  std::vector<std::uint32_t> gathered;
  raw_sel.GatherActiveWhere({raw_mask, 10}, &gathered);
  ASSERT_EQ(gathered.size(), 2u);
  EXPECT_EQ(gathered[0], 2u);
  EXPECT_EQ(gathered[1], 6u);
  EXPECT_EQ(raw_sel.CountActiveWhere({raw_mask, 10}), 2u);

  // RetainFromMask routes drops into the side batch, in order.
  ops::TupleBatch with_drops(tuples);
  ops::TupleBatch dropped;
  with_drops.RetainFromMask({keep_even, 10}, &dropped);
  ASSERT_EQ(dropped.size(), 5u);
  EXPECT_EQ(dropped.ToTuples()[0].id, tuples[1].id);
}

TEST(VectorizedKernelTest, AppendRowsCopiesGroupedColumns) {
  const auto tuples = MakeWorkloadTuples(8);
  const ops::TupleBatch src(tuples);
  ops::TupleBatch dst;
  const std::uint32_t raws[] = {6, 1, 3};
  dst.AppendRows(src, {raws, 3});
  const auto out = dst.ToTuples();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].id, tuples[6].id);
  EXPECT_EQ(out[1].id, tuples[1].id);
  EXPECT_EQ(out[2].id, tuples[3].id);
  EXPECT_EQ(out[2].sensor_id, tuples[3].sensor_id);
  EXPECT_EQ(out[2].point, tuples[3].point);
}

// ---------------------------------------------------------------------------
// Thin chain: the Bernoulli mask sweep

struct ThinChain {
  ops::Pipeline pipeline;
  ops::ThinOperator* head = nullptr;
  ops::SinkOperator* sink = nullptr;
};

ThinChain MakeThinChain(std::size_t depth) {
  ThinChain topo;
  std::vector<ops::ThinOperator*> thins;
  double rate = 64.0;
  for (std::size_t i = 0; i < depth; ++i) {
    auto thin = ops::ThinOperator::Make("t" + std::to_string(i), rate,
                                        rate * 0.75, Rng(400 + i))
                    .MoveValue();
    rate *= 0.75;
    thins.push_back(topo.pipeline.Add(std::move(thin)));
    if (i > 0) {
      thins[i - 1]->AddOutput(thins[i]);
    }
  }
  topo.head = thins.front();
  topo.sink = topo.pipeline.Add(ops::SinkOperator::Make("sink").MoveValue());
  thins.back()->AddOutput(topo.sink);
  return topo;
}

// Digests pinned from the pre-vectorization scalar build (same seeds).
constexpr std::uint64_t kThinChainDigest[2] = {
    7534638035245917704ULL, 5103047306804485740ULL};  // depths {1, 3}

TEST(VectorizedSweepTest, ThinChainMatchesScalarAndPinnedDigest) {
  const auto tuples = MakeWorkloadTuples(kWorkloadTuples);
  const std::size_t depths[2] = {1, 3};
  for (int d = 0; d < 2; ++d) {
    SCOPED_TRACE("depth=" + std::to_string(depths[d]));
    ThinChain scalar = MakeThinChain(depths[d]);
    DrivePerTuple(scalar.head, tuples);
    ThinChain vectorized = MakeThinChain(depths[d]);
    DriveBatched(vectorized.head, tuples);
    const std::uint64_t digest = StreamDigest(vectorized.sink->tuples());
    EXPECT_EQ(digest, StreamDigest(scalar.sink->tuples()));
    EXPECT_EQ(digest, kThinChainDigest[d]);
  }
}

// ---------------------------------------------------------------------------
// Partition fan-out: the containment mask sweep

struct PartitionFanout {
  ops::Pipeline pipeline;
  ops::PartitionOperator* head = nullptr;
  std::vector<ops::SinkOperator*> sinks;
};

PartitionFanout MakePartitionFanout(std::size_t connected) {
  PartitionFanout topo;
  // Four vertical strips tiling [0,4) x [0,4); workload x extends to 4.5,
  // so some tuples are unrouted. With connected < 4 the trailing strips
  // have no consumer and count unrouted as well.
  std::vector<geom::Rect> strips;
  for (int k = 0; k < 4; ++k) {
    strips.emplace_back(k * 1.0, 0.0, (k + 1) * 1.0, 4.0);
  }
  topo.head = topo.pipeline.Add(
      ops::PartitionOperator::Make("p", std::move(strips)).MoveValue());
  for (std::size_t k = 0; k < connected; ++k) {
    topo.sinks.push_back(topo.pipeline.Add(
        ops::SinkOperator::Make("s" + std::to_string(k)).MoveValue()));
    topo.head->AddOutput(topo.sinks.back());
  }
  return topo;
}

constexpr std::uint64_t kPartitionPortDigest[4] = {
    7728610833463895768ULL, 15665844995379913116ULL, 8467126206275192731ULL,
    16677880414956209323ULL};

TEST(VectorizedSweepTest, PartitionFanoutMatchesScalarAndPinnedDigest) {
  const auto tuples = MakeWorkloadTuples(kWorkloadTuples);
  PartitionFanout scalar = MakePartitionFanout(4);
  DrivePerTuple(scalar.head, tuples);
  PartitionFanout vectorized = MakePartitionFanout(4);
  DriveBatched(vectorized.head, tuples);
  EXPECT_EQ(vectorized.head->unrouted(), scalar.head->unrouted());
  for (std::size_t k = 0; k < 4; ++k) {
    SCOPED_TRACE("port=" + std::to_string(k));
    const std::uint64_t digest = StreamDigest(vectorized.sinks[k]->tuples());
    EXPECT_EQ(digest, StreamDigest(scalar.sinks[k]->tuples()));
    EXPECT_EQ(digest, kPartitionPortDigest[k]);
  }
}

TEST(VectorizedSweepTest, PartitionCountsDisconnectedPortsUnrouted) {
  const auto tuples = MakeWorkloadTuples(kWorkloadTuples);
  PartitionFanout scalar = MakePartitionFanout(2);
  DrivePerTuple(scalar.head, tuples);
  PartitionFanout vectorized = MakePartitionFanout(2);
  DriveBatched(vectorized.head, tuples);
  EXPECT_GT(vectorized.head->unrouted(), 0u);
  EXPECT_EQ(vectorized.head->unrouted(), scalar.head->unrouted());
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(StreamDigest(vectorized.sinks[k]->tuples()),
              StreamDigest(scalar.sinks[k]->tuples()));
  }
}

// ---------------------------------------------------------------------------
// Union: the membership-mask sweep

constexpr std::uint64_t kUnionDigest = 10422467684188148ULL;

TEST(VectorizedSweepTest, UnionMatchesScalarAndPinnedDigest) {
  const auto tuples = MakeWorkloadTuples(kWorkloadTuples);
  auto make = [] {
    ops::Pipeline pipeline;
    auto* u = pipeline.Add(ops::UnionOperator::Make(
                               "u", {geom::Rect(0, 0, 2, 4),
                                     geom::Rect(2, 0, 4, 4)})
                               .MoveValue());
    auto* sink = pipeline.Add(ops::SinkOperator::Make("sink").MoveValue());
    u->AddOutput(sink);
    return std::make_tuple(std::move(pipeline), u, sink);
  };
  auto [sp, su, ss] = make();
  DrivePerTuple(su, tuples);
  auto [vp, vu, vs] = make();
  DriveBatched(vu, tuples);
  EXPECT_GT(vu->out_of_region(), 0u);
  EXPECT_EQ(vu->out_of_region(), su->out_of_region());
  const std::uint64_t digest = StreamDigest(vs->tuples());
  EXPECT_EQ(digest, StreamDigest(ss->tuples()));
  EXPECT_EQ(digest, kUnionDigest);
}

// ---------------------------------------------------------------------------
// Flatten (kBatch): the per-row-probability Bernoulli sweep, violations
// (p clamped to 1: no draw) included

constexpr std::uint64_t kFlattenDigest = 11833642559818749591ULL;

TEST(VectorizedSweepTest, FlattenBatchMatchesScalarAndPinnedDigest) {
  const auto tuples = MakeWorkloadTuples(kWorkloadTuples);
  auto make = [] {
    ops::Pipeline pipeline;
    ops::FlattenConfig config;
    config.region = geom::Rect(0, 0, 4.5, 4.5);
    config.target_rate = 3.0;  // mid target: draws AND p>1 clamps occur
    config.target_mode = ops::FlattenTargetMode::kRatePerVolume;
    config.batch_size = 96;
    auto* f = pipeline.Add(
        ops::FlattenOperator::Make("f", config, Rng(71)).MoveValue());
    auto* sink = pipeline.Add(ops::SinkOperator::Make("sink").MoveValue());
    f->AddOutput(sink);
    return std::make_tuple(std::move(pipeline), f, sink);
  };
  auto [sp, sf, ss] = make();
  DrivePerTuple(sf, tuples);
  ASSERT_TRUE(sf->Flush().ok());
  auto [vp, vf, vs] = make();
  DriveBatched(vf, tuples);
  ASSERT_TRUE(vf->Flush().ok());
  EXPECT_EQ(vf->last_report().retained, sf->last_report().retained);
  EXPECT_EQ(vf->last_report().violations, sf->last_report().violations);
  const std::uint64_t digest = StreamDigest(vs->tuples());
  EXPECT_EQ(digest, StreamDigest(ss->tuples()));
  EXPECT_EQ(digest, kFlattenDigest);
}

// ---------------------------------------------------------------------------
// Full churn workload through the engine, shards {1,2,4} x depths {1,2}

sensing::CrowdWorld MakeChurnWorld(std::size_t sensors) {
  sensing::PopulationConfig pc;
  pc.region = geom::Rect(0, 0, 6, 6);
  pc.num_sensors = sensors;
  pc.responsiveness_sigma = 0.2;
  Rng rng(5);
  auto population = sensing::SensorPopulation::Make(pc, &rng).MoveValue();
  auto world =
      sensing::CrowdWorld::Make(std::move(population), rng.Fork()).MoveValue();
  sensing::TemperatureField::Params tp;
  const sensing::ResponseBehavior device =
      sensing::ResponseModel::DeviceBehavior();
  EXPECT_TRUE(world
                  .RegisterAttribute(
                      "temp", false,
                      sensing::TemperatureField::Make(tp).MoveValue(), device)
                  .ok());
  sensing::RainCell cell;
  cell.x0 = 3.0;
  cell.y0 = 3.0;
  cell.radius = 2.0;
  sensing::ResponseBehavior human = sensing::ResponseModel::HumanBehavior();
  human.base_logit = 2.0;
  human.delay_mu = -1.0;
  EXPECT_TRUE(world
                  .RegisterAttribute("rain", true,
                                     sensing::RainField::Make({cell}).MoveValue(),
                                     human)
                  .ok());
  return world;
}

struct ChurnDigests {
  std::uint64_t rain = 0;
  std::uint64_t temp = 0;
};

void RunChurnWorkload(std::size_t num_shards, std::size_t pipeline_depth,
                      ChurnDigests* out) {
  engine::EngineConfig config;
  config.grid_h = 9;
  config.step_dt = 1.0;
  config.fabric.flatten_batch_size = 32;
  config.budget.initial = 24.0;
  config.budget.delta = 8.0;
  config.budget.max = 32.0;  // saturate fast so incentives engage
  config.enable_incentives = true;
  config.incentive.max = 8.0;
  config.num_shards = num_shards;
  config.pipeline_depth = pipeline_depth;
  auto engine =
      engine::CraqrEngine::Make(MakeChurnWorld(80), config).MoveValue();
  const auto rain = engine->SubmitText(
      "ACQUIRE rain FROM REGION(0, 0, 6, 6) RATE 20 PER KM2 PER MIN");
  const auto temp1 = engine->SubmitText(
      "ACQUIRE temp FROM REGION(0, 0, 4, 4) RATE 0.5 PER KM2 PER MIN");
  ASSERT_TRUE(rain.ok());
  ASSERT_TRUE(temp1.ok());
  ASSERT_TRUE(engine->RunFor(12.0).ok());
  ASSERT_TRUE(engine->Cancel(temp1->id).ok());
  ASSERT_TRUE(engine->RunFor(6.0).ok());
  const auto temp2 = engine->SubmitText(
      "ACQUIRE temp FROM REGION(1, 1, 5, 5) RATE 0.4 PER KM2 PER MIN");
  ASSERT_TRUE(temp2.ok());
  ASSERT_TRUE(engine->RunFor(12.0).ok());
  ASSERT_GT(rain->sink->total_received(), 0u);
  ASSERT_GT(temp2->sink->total_received(), 0u);
  out->rain = StreamDigest(rain->sink->tuples());
  out->temp = StreamDigest(temp2->sink->tuples());
}

constexpr std::uint64_t kChurnRainDigest[2] = {
    2045424154292704630ULL, 16683548660543586759ULL};  // depths {1, 2}
constexpr std::uint64_t kChurnTempDigest[2] = {
    6270273867009908985ULL, 12692121609131728161ULL};

TEST(VectorizedSweepTest, ChurnWorkloadPinnedAcrossShardsAndDepths) {
  const std::size_t depths[2] = {1, 2};
  for (int d = 0; d < 2; ++d) {
    SCOPED_TRACE("depth=" + std::to_string(depths[d]));
    ChurnDigests reference;
    RunChurnWorkload(1, depths[d], &reference);
    EXPECT_EQ(reference.rain, kChurnRainDigest[d]);
    EXPECT_EQ(reference.temp, kChurnTempDigest[d]);
    for (const std::size_t shards : {2u, 4u}) {
      SCOPED_TRACE("num_shards=" + std::to_string(shards));
      ChurnDigests sharded;
      RunChurnWorkload(shards, depths[d], &sharded);
      EXPECT_EQ(sharded.rain, reference.rain);
      EXPECT_EQ(sharded.temp, reference.temp);
    }
  }
}

}  // namespace
}  // namespace craqr
