#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cost.h"
#include "core/engine.h"
#include "core/naive.h"

namespace craqr {
namespace engine {
namespace {

const geom::Rect kRegion(0, 0, 6, 6);

sensing::CrowdWorld MakeWorld(std::uint64_t seed) {
  sensing::PopulationConfig pc;
  pc.region = kRegion;
  pc.num_sensors = 400;
  Rng rng(seed);
  auto population = sensing::SensorPopulation::Make(pc, &rng);
  EXPECT_TRUE(population.ok());
  auto world =
      sensing::CrowdWorld::Make(population.MoveValue(), rng.Fork()).MoveValue();
  sensing::TemperatureField::Params tp;
  EXPECT_TRUE(world
                  .RegisterAttribute(
                      "temp", false,
                      sensing::TemperatureField::Make(tp).MoveValue(),
                      sensing::ResponseModel::DeviceBehavior())
                  .ok());
  return world;
}

EngineConfig TestConfig() {
  EngineConfig config;
  config.grid_h = 9;
  config.fabric.flatten_batch_size = 32;
  config.budget.initial = 16.0;
  return config;
}

query::AcquisitionQuery TempQuery(const geom::Rect& region, double rate) {
  query::AcquisitionQuery q;
  q.attribute = "temp";
  q.region = region;
  q.rate = rate;
  return q;
}

TEST(NaiveEngineTest, SubmitAndCancel) {
  auto naive = NaiveEngine::Make(MakeWorld(1), TestConfig()).MoveValue();
  const auto stream = naive->Submit(TempQuery(geom::Rect(0, 0, 4, 4), 0.5));
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(naive->NumQueries(), 1u);
  ASSERT_TRUE(naive->RunFor(10.0).ok());
  EXPECT_GT(stream->sink->total_received(), 0u);
  ASSERT_TRUE(naive->Cancel(stream->id).ok());
  EXPECT_EQ(naive->NumQueries(), 0u);
  EXPECT_EQ(naive->Cancel(stream->id).code(), StatusCode::kNotFound);
}

TEST(NaiveEngineTest, DuplicatesAcquisitionForOverlappingQueries) {
  // Three identical queries. Shared CrAQR sends requests once per cell;
  // naive sends them per query — the paper's "not cost effective" claim.
  const geom::Rect region(0, 0, 6, 6);
  const double rate = 0.5;

  auto shared = CraqrEngine::Make(MakeWorld(2), TestConfig()).MoveValue();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(shared->Submit(TempQuery(region, rate)).ok());
  }
  ASSERT_TRUE(shared->RunFor(20.0).ok());
  const auto shared_requests = shared->world().total_requests_sent();

  auto naive = NaiveEngine::Make(MakeWorld(2), TestConfig()).MoveValue();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(naive->Submit(TempQuery(region, rate)).ok());
  }
  ASSERT_TRUE(naive->RunFor(20.0).ok());
  const auto naive_requests = naive->world().total_requests_sent();

  EXPECT_GT(naive_requests, 2 * shared_requests);
  EXPECT_GT(naive->TotalOperators(), shared->fabricator().TotalOperators());
}

TEST(NaiveEngineTest, IndependentStacksStillDeliver) {
  auto naive = NaiveEngine::Make(MakeWorld(3), TestConfig()).MoveValue();
  const auto s1 = naive->Submit(TempQuery(geom::Rect(0, 0, 4, 4), 0.5));
  const auto s2 = naive->Submit(TempQuery(geom::Rect(2, 2, 6, 6), 0.3));
  ASSERT_TRUE(s1.ok() && s2.ok());
  ASSERT_TRUE(naive->RunFor(20.0).ok());
  EXPECT_GT(s1->sink->total_received(), 0u);
  EXPECT_GT(s2->sink->total_received(), 0u);
  EXPECT_GT(naive->TotalRequestsSent(), 0u);
  EXPECT_GT(naive->TotalOperatorEvaluations(), 0u);
}

TEST(CostModelTest, PricesObservedEvaluations) {
  auto shared = CraqrEngine::Make(MakeWorld(4), TestConfig()).MoveValue();
  ASSERT_TRUE(shared->Submit(TempQuery(geom::Rect(0, 0, 6, 6), 0.5)).ok());
  ASSERT_TRUE(shared->RunFor(15.0).ok());
  const TopologyCostReport report = EstimateCost(shared->fabricator());
  EXPECT_GT(report.total_cost, 0.0);
  EXPECT_GT(report.evaluations, 0u);
  EXPECT_GT(report.operators, 0u);
  // F operators dominate per-evaluation cost; they must appear.
  EXPECT_TRUE(report.evaluations_by_kind.count("F"));
  EXPECT_TRUE(report.evaluations_by_kind.count("T"));
  EXPECT_NE(report.ToString().find("cost="), std::string::npos);
}

TEST(CostModelTest, KindCostsAreDistinct) {
  const OperatorCosts costs;
  EXPECT_GT(costs.CostOf(ops::OperatorKind::kFlatten),
            costs.CostOf(ops::OperatorKind::kThin));
  EXPECT_GT(costs.CostOf(ops::OperatorKind::kThin),
            costs.CostOf(ops::OperatorKind::kPassThrough));
}

TEST(CostModelTest, SharedTopologyCostsLessThanNaive) {
  const geom::Rect region(0, 0, 6, 6);
  auto shared = CraqrEngine::Make(MakeWorld(5), TestConfig()).MoveValue();
  auto naive = NaiveEngine::Make(MakeWorld(5), TestConfig()).MoveValue();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(shared->Submit(TempQuery(region, 0.4)).ok());
    ASSERT_TRUE(naive->Submit(TempQuery(region, 0.4)).ok());
  }
  ASSERT_TRUE(shared->RunFor(15.0).ok());
  ASSERT_TRUE(naive->RunFor(15.0).ok());
  EXPECT_LT(shared->fabricator().TotalOperatorEvaluations(),
            naive->TotalOperatorEvaluations());
}

}  // namespace
}  // namespace engine
}  // namespace craqr
