#include <gtest/gtest.h>

#include <cmath>

#include "common/math.h"
#include "common/rng.h"
#include "fabric/fabricator.h"
#include "pointprocess/simulate.h"

namespace craqr {
namespace fabric {
namespace {

constexpr ops::AttributeId kRain = 0;
constexpr ops::AttributeId kTemp = 1;

geom::Grid TestGrid() {
  return geom::Grid::Make(geom::Rect(0, 0, 3, 3), 9).MoveValue();
}

std::unique_ptr<StreamFabricator> MakeFabricator(
    FabricConfig config = FabricConfig()) {
  return StreamFabricator::Make(TestGrid(), config).MoveValue();
}

ops::Tuple TupleAt(double t, double x, double y,
                   ops::AttributeId attribute = kRain) {
  ops::Tuple tuple;
  tuple.point = geom::SpaceTimePoint{t, x, y};
  tuple.attribute = attribute;
  return tuple;
}

TEST(FabricatorTest, MakeValidatesConfig) {
  FabricConfig bad;
  bad.headroom = 1.0;
  EXPECT_FALSE(StreamFabricator::Make(TestGrid(), bad).ok());
  bad = FabricConfig();
  bad.flatten_batch_size = 1;
  EXPECT_FALSE(StreamFabricator::Make(TestGrid(), bad).ok());
  bad = FabricConfig();
  bad.monitor_window = 0.0;
  EXPECT_FALSE(StreamFabricator::Make(TestGrid(), bad).ok());
  bad = FabricConfig();
  bad.sink_capacity = 0;
  EXPECT_FALSE(StreamFabricator::Make(TestGrid(), bad).ok());
}

TEST(FabricatorTest, InsertValidatesQuery) {
  auto fabricator = MakeFabricator();
  // Rate must be positive.
  EXPECT_FALSE(fabricator->InsertQuery(kRain, geom::Rect(0, 0, 1, 1), 0.0).ok());
  // Region below one cell area rejected.
  EXPECT_FALSE(
      fabricator->InsertQuery(kRain, geom::Rect(0, 0, 0.5, 0.5), 1.0).ok());
  // Region outside the grid rejected.
  EXPECT_FALSE(
      fabricator->InsertQuery(kRain, geom::Rect(10, 10, 12, 12), 1.0).ok());
}

TEST(FabricatorTest, SingleCellQueryMaterializesOneCell) {
  auto fabricator = MakeFabricator();
  const auto stream =
      fabricator->InsertQuery(kRain, geom::Rect(1, 1, 2, 2), 4.0);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(fabricator->NumMaterializedCells(), 1u);
  EXPECT_EQ(fabricator->NumQueries(), 1u);
  const auto cells = fabricator->QueryCells(stream->id);
  ASSERT_TRUE(cells.ok());
  ASSERT_EQ(cells->size(), 1u);
  EXPECT_EQ((*cells)[0], (geom::CellIndex{1, 1}));
  // Topology: F + T in the cell; merge head + monitor + sink for the query.
  const std::string description = fabricator->DescribeTopology();
  EXPECT_NE(description.find("F(out=5"), std::string::npos);  // 1.25 * 4
  EXPECT_NE(description.find("T(->4)"), std::string::npos);
}

TEST(FabricatorTest, OnlyTouchedCellsAreMaterialized) {
  auto fabricator = MakeFabricator();
  // 2x1-cell region: exactly 2 of 9 cells materialize.
  ASSERT_TRUE(fabricator->InsertQuery(kRain, geom::Rect(0, 0, 2, 1), 2.0).ok());
  EXPECT_EQ(fabricator->NumMaterializedCells(), 2u);
}

TEST(FabricatorTest, SharedFOperatorAcrossQueries) {
  auto fabricator = MakeFabricator();
  // Two queries on the same cell and attribute, different rates: one F,
  // a two-T descending chain.
  ASSERT_TRUE(fabricator->InsertQuery(kRain, geom::Rect(0, 0, 1, 1), 8.0).ok());
  ASSERT_TRUE(fabricator->InsertQuery(kRain, geom::Rect(0, 0, 1, 1), 2.0).ok());
  EXPECT_EQ(fabricator->NumMaterializedCells(), 1u);
  const std::string description = fabricator->DescribeTopology();
  // One F only.
  EXPECT_EQ(description.find("F(out="), description.rfind("F(out="));
  // Chain sorted descending: T(->8) before T(->2).
  const auto pos_high = description.find("T(->8)");
  const auto pos_low = description.find("T(->2)");
  ASSERT_NE(pos_high, std::string::npos);
  ASSERT_NE(pos_low, std::string::npos);
  EXPECT_LT(pos_high, pos_low);
}

TEST(FabricatorTest, EqualRateQueriesShareOneThin) {
  auto fabricator = MakeFabricator();
  const auto s1 = fabricator->InsertQuery(kRain, geom::Rect(0, 0, 1, 1), 5.0);
  const auto s2 = fabricator->InsertQuery(kRain, geom::Rect(0, 0, 1, 1), 5.0);
  ASSERT_TRUE(s1.ok() && s2.ok());
  const std::string description = fabricator->DescribeTopology();
  // A single T with both taps.
  EXPECT_EQ(description.find("T(->5)"), description.rfind("T(->5)"));
  EXPECT_NE(description.find("Q" + std::to_string(s1->id)),
            std::string::npos);
  EXPECT_NE(description.find("Q" + std::to_string(s2->id)),
            std::string::npos);
}

TEST(FabricatorTest, HigherRateInsertionRaisesFTarget) {
  auto fabricator = MakeFabricator();
  ASSERT_TRUE(fabricator->InsertQuery(kRain, geom::Rect(0, 0, 1, 1), 2.0).ok());
  // F target = 2.5 now. Insert a faster query: F must rise above 10.
  ASSERT_TRUE(fabricator->InsertQuery(kRain, geom::Rect(0, 0, 1, 1), 10.0).ok());
  const std::string description = fabricator->DescribeTopology();
  EXPECT_NE(description.find("F(out=12.5)"), std::string::npos);
  // New T(->10) must precede the old T(->2).
  EXPECT_LT(description.find("T(->10)"), description.find("T(->2)"));
}

TEST(FabricatorTest, DifferentAttributesGetSeparateChains) {
  auto fabricator = MakeFabricator();
  ASSERT_TRUE(fabricator->InsertQuery(kRain, geom::Rect(0, 0, 1, 1), 2.0).ok());
  ASSERT_TRUE(fabricator->InsertQuery(kTemp, geom::Rect(0, 0, 1, 1), 3.0).ok());
  EXPECT_EQ(fabricator->NumMaterializedCells(), 1u);
  const std::string description = fabricator->DescribeTopology();
  EXPECT_NE(description.find("A<0>"), std::string::npos);
  EXPECT_NE(description.find("A<1>"), std::string::npos);
}

TEST(FabricatorTest, PartialOverlapCreatesPartition) {
  auto fabricator = MakeFabricator();
  // Region covering cell (0,0) fully and half of cell (1,0): the paper's
  // "P-operators are required only for [the partially overlapping] query".
  const auto stream =
      fabricator->InsertQuery(kRain, geom::Rect(0, 0, 1.5, 1), 2.0);
  ASSERT_TRUE(stream.ok());
  std::size_t partitions = 0;
  fabricator->VisitOperators([&partitions](const ops::Operator& op) {
    partitions += op.kind() == ops::OperatorKind::kPartition ? 1 : 0;
  });
  EXPECT_EQ(partitions, 1u);
}

TEST(FabricatorTest, ProcessTupleRoutesOnlyMaterializedCells) {
  auto fabricator = MakeFabricator();
  ASSERT_TRUE(fabricator->InsertQuery(kRain, geom::Rect(1, 1, 2, 2), 2.0).ok());
  // In the materialized cell, right attribute.
  ASSERT_TRUE(fabricator->ProcessTuple(TupleAt(0.0, 1.5, 1.5, kRain)).ok());
  EXPECT_EQ(fabricator->tuples_routed(), 1u);
  // Wrong attribute: dropped.
  ASSERT_TRUE(fabricator->ProcessTuple(TupleAt(0.0, 1.5, 1.5, kTemp)).ok());
  // Unmaterialized cell: dropped.
  ASSERT_TRUE(fabricator->ProcessTuple(TupleAt(0.0, 0.5, 0.5, kRain)).ok());
  // Outside the grid: dropped.
  ASSERT_TRUE(fabricator->ProcessTuple(TupleAt(0.0, 50.0, 50.0, kRain)).ok());
  EXPECT_EQ(fabricator->tuples_unrouted(), 3u);
}

TEST(FabricatorTest, FabricatedStreamApproximatesRequestedRate) {
  FabricConfig config;
  config.flatten_batch_size = 64;
  auto fabricator = MakeFabricator(config);
  const double requested = 2.0;
  const auto stream =
      fabricator->InsertQuery(kRain, geom::Rect(0, 0, 3, 3), requested);
  ASSERT_TRUE(stream.ok());

  // Feed a homogeneous 20 /km2/min supply over the whole grid for 40 min.
  Rng rng(71);
  const pp::SpaceTimeWindow w{0.0, 40.0, geom::Rect(0, 0, 3, 3)};
  const auto supply = pp::SimulateHomogeneous(&rng, 20.0, w);
  ASSERT_TRUE(supply.ok());
  std::vector<ops::Tuple> batch;
  for (const auto& p : *supply) {
    batch.push_back(TupleAt(p.t, p.x, p.y, kRain));
  }
  ASSERT_TRUE(fabricator->ProcessBatch(batch).ok());

  const double delivered =
      static_cast<double>(stream->sink->total_received()) / w.Volume();
  EXPECT_NEAR(delivered, requested, 0.4);
}

TEST(FabricatorTest, RemoveQueryCleansUpCompletely) {
  auto fabricator = MakeFabricator();
  const auto stream =
      fabricator->InsertQuery(kRain, geom::Rect(0, 0, 2, 2), 3.0);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(fabricator->NumMaterializedCells(), 4u);
  ASSERT_TRUE(fabricator->RemoveQuery(stream->id).ok());
  // "until all the streams and the key in the hashmap are deleted".
  EXPECT_EQ(fabricator->NumMaterializedCells(), 0u);
  EXPECT_EQ(fabricator->NumQueries(), 0u);
  EXPECT_EQ(fabricator->TotalOperators(), 0u);
  EXPECT_EQ(fabricator->RemoveQuery(stream->id).code(),
            StatusCode::kNotFound);
}

TEST(FabricatorTest, RemoveMiddleQueryMergesThins) {
  auto fabricator = MakeFabricator();
  const auto fast = fabricator->InsertQuery(kRain, geom::Rect(0, 0, 1, 1), 9.0);
  const auto mid = fabricator->InsertQuery(kRain, geom::Rect(0, 0, 1, 1), 6.0);
  const auto slow = fabricator->InsertQuery(kRain, geom::Rect(0, 0, 1, 1), 3.0);
  ASSERT_TRUE(fast.ok() && mid.ok() && slow.ok());
  ASSERT_TRUE(fabricator->RemoveQuery(mid->id).ok());
  const std::string description = fabricator->DescribeTopology();
  // The T(->6) merged away; the survivors remain in order.
  EXPECT_EQ(description.find("T(->6)"), std::string::npos);
  EXPECT_LT(description.find("T(->9)"), description.find("T(->3)"));
  // The other two queries keep flowing end to end.
  std::vector<ops::Tuple> batch;
  Rng rng(72);
  const pp::SpaceTimeWindow w{0.0, 30.0, geom::Rect(0, 0, 1, 1)};
  const auto supply = pp::SimulateHomogeneous(&rng, 40.0, w);
  ASSERT_TRUE(supply.ok());
  for (const auto& p : *supply) {
    batch.push_back(TupleAt(p.t, p.x, p.y, kRain));
  }
  ASSERT_TRUE(fabricator->ProcessBatch(batch).ok());
  EXPECT_GT(fast->sink->total_received(), 0u);
  EXPECT_GT(slow->sink->total_received(), 0u);
}

TEST(FabricatorTest, RemoveSharedTapKeepsThinForOtherQuery) {
  auto fabricator = MakeFabricator();
  const auto s1 = fabricator->InsertQuery(kRain, geom::Rect(0, 0, 1, 1), 5.0);
  const auto s2 = fabricator->InsertQuery(kRain, geom::Rect(0, 0, 1, 1), 5.0);
  ASSERT_TRUE(s1.ok() && s2.ok());
  ASSERT_TRUE(fabricator->RemoveQuery(s1->id).ok());
  const std::string description = fabricator->DescribeTopology();
  EXPECT_NE(description.find("T(->5)"), std::string::npos);
  EXPECT_EQ(fabricator->NumMaterializedCells(), 1u);
  ASSERT_TRUE(fabricator->RemoveQuery(s2->id).ok());
  EXPECT_EQ(fabricator->NumMaterializedCells(), 0u);
}

TEST(FabricatorTest, ViolationCallbackFires) {
  FabricConfig config;
  config.flatten_batch_size = 32;
  auto fabricator = MakeFabricator(config);
  // Demand far above supply.
  ASSERT_TRUE(
      fabricator->InsertQuery(kRain, geom::Rect(0, 0, 1, 1), 1000.0).ok());
  int callbacks = 0;
  fabricator->SetViolationCallback(
      [&callbacks](ops::AttributeId attribute, const geom::CellIndex& cell,
                   const ops::FlattenBatchReport& report) {
        EXPECT_EQ(attribute, kRain);
        EXPECT_EQ(cell, (geom::CellIndex{0, 0}));
        EXPECT_GT(report.violation_percent, 50.0);
        ++callbacks;
      });
  std::vector<ops::Tuple> batch;
  Rng rng(73);
  for (int i = 0; i < 64; ++i) {
    batch.push_back(TupleAt(i * 0.1, rng.Uniform(0.0, 1.0),
                            rng.Uniform(0.0, 1.0), kRain));
  }
  ASSERT_TRUE(fabricator->ProcessBatch(batch).ok());
  EXPECT_GT(callbacks, 0);
}

TEST(FabricatorTest, GetStreamAndQueryCellsValidateIds) {
  auto fabricator = MakeFabricator();
  EXPECT_EQ(fabricator->GetStream(42).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(fabricator->QueryCells(42).status().code(),
            StatusCode::kNotFound);
}

TEST(FabricatorTest, Figure2ScenarioTopologyShape) {
  // The paper's worked example: 3x3 grid; Q1<rain> on R1, Q2<temp> on R2,
  // Q3<temp> on R3, with lambda1 > lambda2 > lambda3. R1 and R2 perfectly
  // overlap grid cells, R3 partially overlaps.
  auto fabricator = MakeFabricator();
  const geom::Rect r1(1, 1, 3, 3);     // 4 cells, top-right block
  const geom::Rect r2(0, 0, 2, 1);     // 2 cells, bottom strip
  const geom::Rect r3(0, 1, 1.5, 2.5); // partial: cells (0,1),(0,2),(1,1),(1,2)
  const auto q1 = fabricator->InsertQuery(kRain, r1, 12.0);
  const auto q2 = fabricator->InsertQuery(kTemp, r2, 8.0);
  const auto q3 = fabricator->InsertQuery(kTemp, r3, 4.0);
  ASSERT_TRUE(q1.ok() && q2.ok() && q3.ok());

  // Q1 and Q2 perfectly overlap cells: no P operators for them. Q3 carves
  // partial cells: P operators appear.
  std::size_t partitions = 0;
  std::size_t flattens = 0;
  std::size_t unions = 0;
  fabricator->VisitOperators([&](const ops::Operator& op) {
    switch (op.kind()) {
      case ops::OperatorKind::kPartition:
        ++partitions;
        break;
      case ops::OperatorKind::kFlatten:
        ++flattens;
        break;
      case ops::OperatorKind::kUnion:
        ++unions;
        break;
      default:
        break;
    }
  });
  // Q3's region: x in [0,1.5] covers cell column 0 fully (width 1) and
  // half of column 1; y in [1,2.5] covers row 1 fully and half of row 2.
  // Partial overlaps: (0,2) half, (1,1) half, (1,2) quarter -> 3 P ops.
  EXPECT_EQ(partitions, 3u);
  // One F per (cell, attribute) chain: Q1 touches 4 rain cells; Q2 2 temp
  // cells; Q3 4 temp cells, none shared with Q2 -> 4 + 2 + 4 = 10.
  EXPECT_EQ(flattens, 10u);
  // Each multi-cell query gets one U merge.
  EXPECT_EQ(unions, 3u);
  EXPECT_EQ(fabricator->NumMaterializedCells(), 8u);
}

}  // namespace
}  // namespace fabric
}  // namespace craqr
