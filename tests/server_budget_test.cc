#include <gtest/gtest.h>

#include "server/budget.h"

namespace craqr {
namespace server {
namespace {

BudgetConfig SmallConfig() {
  BudgetConfig config;
  config.initial = 10.0;
  config.delta = 2.0;
  config.min = 2.0;
  config.max = 20.0;
  config.violation_threshold = 5.0;
  // Memoryless decreases for crisp unit-level behaviour; the patience
  // mechanism is tested separately.
  config.decrease_patience = 1;
  return config;
}

const BudgetKey kKey{0, geom::CellIndex{1, 2}};

TEST(BudgetManagerTest, Validation) {
  BudgetConfig bad = SmallConfig();
  bad.min = 0.0;
  EXPECT_FALSE(BudgetManager::Make(bad).ok());
  bad = SmallConfig();
  bad.initial = 100.0;  // above max
  EXPECT_FALSE(BudgetManager::Make(bad).ok());
  bad = SmallConfig();
  bad.delta = 0.0;
  EXPECT_FALSE(BudgetManager::Make(bad).ok());
  bad = SmallConfig();
  bad.violation_threshold = 150.0;
  EXPECT_FALSE(BudgetManager::Make(bad).ok());
  EXPECT_TRUE(BudgetManager::Make(SmallConfig()).ok());
}

TEST(BudgetManagerTest, DefaultsToInitial) {
  auto manager = BudgetManager::Make(SmallConfig()).MoveValue();
  EXPECT_DOUBLE_EQ(manager.GetBudget(kKey), 10.0);
}

TEST(BudgetManagerTest, IncreasesOnHighViolation) {
  auto manager = BudgetManager::Make(SmallConfig()).MoveValue();
  // N_v = 30% > 5% threshold -> budget += delta.
  EXPECT_DOUBLE_EQ(manager.ReportViolation(kKey, 30.0), 12.0);
  EXPECT_DOUBLE_EQ(manager.ReportViolation(kKey, 30.0), 14.0);
  EXPECT_EQ(manager.increases(), 2u);
}

TEST(BudgetManagerTest, DecreasesOnLowViolation) {
  auto manager = BudgetManager::Make(SmallConfig()).MoveValue();
  EXPECT_DOUBLE_EQ(manager.ReportViolation(kKey, 0.0), 8.0);
  EXPECT_DOUBLE_EQ(manager.ReportViolation(kKey, 0.5), 6.0);
  EXPECT_EQ(manager.decreases(), 2u);
}

TEST(BudgetManagerTest, HoldsInsideHysteresisBand) {
  // Between decrease_threshold (1%) and violation_threshold (5%) the
  // budget holds steady instead of oscillating.
  auto manager = BudgetManager::Make(SmallConfig()).MoveValue();
  EXPECT_DOUBLE_EQ(manager.ReportViolation(kKey, 3.0), 10.0);
  EXPECT_DOUBLE_EQ(manager.ReportViolation(kKey, 4.9), 10.0);
  EXPECT_EQ(manager.increases(), 0u);
  EXPECT_EQ(manager.decreases(), 0u);
}

TEST(BudgetManagerTest, PaperLiteralSymmetricRule) {
  // decrease_threshold == violation_threshold recovers the paper's exact
  // rule: any N_v at or below the threshold lowers the budget.
  BudgetConfig config = SmallConfig();
  config.decrease_threshold = config.violation_threshold;
  auto manager = BudgetManager::Make(config).MoveValue();
  EXPECT_DOUBLE_EQ(manager.ReportViolation(kKey, 4.9), 8.0);
  EXPECT_EQ(manager.decreases(), 1u);
}

TEST(BudgetManagerTest, DecreasePatienceRequiresAStreak) {
  BudgetConfig config = SmallConfig();
  config.decrease_patience = 3;
  auto manager = BudgetManager::Make(config).MoveValue();
  EXPECT_DOUBLE_EQ(manager.ReportViolation(kKey, 0.0), 10.0);  // streak 1
  EXPECT_DOUBLE_EQ(manager.ReportViolation(kKey, 0.0), 10.0);  // streak 2
  EXPECT_DOUBLE_EQ(manager.ReportViolation(kKey, 0.0), 8.0);   // streak 3
  // A violation resets the streak.
  EXPECT_DOUBLE_EQ(manager.ReportViolation(kKey, 50.0), 10.0);
  EXPECT_DOUBLE_EQ(manager.ReportViolation(kKey, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(manager.ReportViolation(kKey, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(manager.ReportViolation(kKey, 0.0), 8.0);
}

TEST(BudgetManagerTest, LowSupplyRatioBlocksDecrease) {
  auto manager = BudgetManager::Make(SmallConfig()).MoveValue();
  // Healthy N_v but the batch barely covered its target: hold.
  EXPECT_DOUBLE_EQ(manager.ReportBatch(kKey, 0.0, 1.2), 10.0);
  // Ample supply: decrease.
  EXPECT_DOUBLE_EQ(manager.ReportBatch(kKey, 0.0, 5.0), 8.0);
}

TEST(BudgetManagerTest, DecreaseThresholdValidated) {
  BudgetConfig config = SmallConfig();
  config.decrease_threshold = config.violation_threshold + 1.0;
  EXPECT_FALSE(BudgetManager::Make(config).ok());
  config.decrease_threshold = -0.1;
  EXPECT_FALSE(BudgetManager::Make(config).ok());
}

TEST(BudgetManagerTest, ClampsAtFloor) {
  auto manager = BudgetManager::Make(SmallConfig()).MoveValue();
  for (int i = 0; i < 20; ++i) {
    manager.ReportViolation(kKey, 0.0);
  }
  EXPECT_DOUBLE_EQ(manager.GetBudget(kKey), 2.0);
}

TEST(BudgetManagerTest, SaturatesAtCeilingAndFiresCallback) {
  auto manager = BudgetManager::Make(SmallConfig()).MoveValue();
  int infeasible_calls = 0;
  manager.SetInfeasibleCallback(
      [&infeasible_calls](const BudgetKey& key, double budget) {
        EXPECT_EQ(key, kKey);
        EXPECT_DOUBLE_EQ(budget, 20.0);
        ++infeasible_calls;
      });
  // 5 increases reach the ceiling of 20; further violations fire the
  // "accept the feasible rate or pay more" callback.
  for (int i = 0; i < 8; ++i) {
    manager.ReportViolation(kKey, 50.0);
  }
  EXPECT_TRUE(manager.IsSaturated(kKey));
  EXPECT_DOUBLE_EQ(manager.GetBudget(kKey), 20.0);
  EXPECT_EQ(infeasible_calls, 3);
  EXPECT_EQ(manager.infeasible_events(), 3u);
}

TEST(BudgetManagerTest, RecoversAfterSaturation) {
  auto manager = BudgetManager::Make(SmallConfig()).MoveValue();
  for (int i = 0; i < 8; ++i) {
    manager.ReportViolation(kKey, 50.0);
  }
  EXPECT_TRUE(manager.IsSaturated(kKey));
  manager.ReportViolation(kKey, 0.0);
  EXPECT_FALSE(manager.IsSaturated(kKey));
  EXPECT_DOUBLE_EQ(manager.GetBudget(kKey), 18.0);
}

TEST(BudgetManagerTest, KeysAreIndependent) {
  auto manager = BudgetManager::Make(SmallConfig()).MoveValue();
  const BudgetKey other{1, geom::CellIndex{1, 2}};
  manager.ReportViolation(kKey, 50.0);
  EXPECT_DOUBLE_EQ(manager.GetBudget(kKey), 12.0);
  EXPECT_DOUBLE_EQ(manager.GetBudget(other), 10.0);
  const BudgetKey other_cell{0, geom::CellIndex{2, 1}};
  EXPECT_DOUBLE_EQ(manager.GetBudget(other_cell), 10.0);
}

TEST(BudgetManagerTest, ForgetResetsToInitial) {
  auto manager = BudgetManager::Make(SmallConfig()).MoveValue();
  manager.ReportViolation(kKey, 50.0);
  EXPECT_DOUBLE_EQ(manager.GetBudget(kKey), 12.0);
  manager.Forget(kKey);
  EXPECT_DOUBLE_EQ(manager.GetBudget(kKey), 10.0);
}

TEST(BudgetKeyTest, HashDistinguishesComponents) {
  const BudgetKeyHash hash;
  EXPECT_NE(hash(BudgetKey{0, geom::CellIndex{1, 2}}),
            hash(BudgetKey{0, geom::CellIndex{2, 1}}));
  EXPECT_NE(hash(BudgetKey{0, geom::CellIndex{1, 2}}),
            hash(BudgetKey{1, geom::CellIndex{1, 2}}));
}

}  // namespace
}  // namespace server
}  // namespace craqr
