#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/task_queue.h"

namespace craqr {
namespace runtime {
namespace {

TEST(TaskQueueTest, FifoOrder) {
  BoundedTaskQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(queue.Push(i));
  }
  EXPECT_EQ(queue.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    auto item = queue.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(TaskQueueTest, CapacityIsEnforcedWithBackPressure) {
  BoundedTaskQueue<int> queue(2);
  EXPECT_EQ(queue.capacity(), 2u);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));

  // A third push must block until the consumer makes room.
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(3));
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(queue.Pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_EQ(queue.Pop().value(), 3);
}

TEST(TaskQueueTest, ZeroCapacityIsClampedToOne) {
  BoundedTaskQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.Push(7));
  EXPECT_EQ(queue.Pop().value(), 7);
}

TEST(TaskQueueTest, CloseDrainsPendingThenSignalsEnd) {
  BoundedTaskQueue<int> queue(8);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  queue.Close();
  EXPECT_FALSE(queue.Push(3));  // rejected after close
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_FALSE(queue.Pop().has_value());  // closed and drained
}

TEST(TaskQueueTest, CloseWakesBlockedConsumer) {
  BoundedTaskQueue<int> queue(4);
  std::thread consumer([&] { EXPECT_FALSE(queue.Pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Close();
  consumer.join();
}

TEST(TaskQueueTest, MultipleProducersAllItemsArrive) {
  BoundedTaskQueue<int> queue(4);
  constexpr int kPerProducer = 200;
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }
  std::vector<bool> seen(kProducers * kPerProducer, false);
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    auto item = queue.Pop();
    ASSERT_TRUE(item.has_value());
    ASSERT_GE(*item, 0);
    ASSERT_LT(*item, kProducers * kPerProducer);
    EXPECT_FALSE(seen[*item]);
    seen[*item] = true;
  }
  for (auto& producer : producers) {
    producer.join();
  }
}

}  // namespace
}  // namespace runtime
}  // namespace craqr
