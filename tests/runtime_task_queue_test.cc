#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/task_queue.h"

namespace craqr {
namespace runtime {
namespace {

TEST(TaskQueueTest, FifoOrder) {
  BoundedTaskQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(queue.Push(i));
  }
  EXPECT_EQ(queue.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    auto item = queue.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(TaskQueueTest, CapacityIsEnforcedWithBackPressure) {
  BoundedTaskQueue<int> queue(2);
  EXPECT_EQ(queue.capacity(), 2u);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));

  // A third push must block until the consumer makes room.
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(3));
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(queue.Pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_EQ(queue.Pop().value(), 3);
}

TEST(TaskQueueTest, ZeroCapacityIsClampedToOne) {
  BoundedTaskQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.Push(7));
  EXPECT_EQ(queue.Pop().value(), 7);
}

TEST(TaskQueueTest, CloseDrainsPendingThenSignalsEnd) {
  BoundedTaskQueue<int> queue(8);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  queue.Close();
  EXPECT_FALSE(queue.Push(3));  // rejected after close
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_FALSE(queue.Pop().has_value());  // closed and drained
}

TEST(TaskQueueTest, CloseWakesBlockedConsumer) {
  BoundedTaskQueue<int> queue(4);
  std::thread consumer([&] { EXPECT_FALSE(queue.Pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.Close();
  consumer.join();
}

TEST(TaskQueueTest, TryPushNeverBlocks) {
  BoundedTaskQueue<int> queue(2);
  using PushResult = BoundedTaskQueue<int>::PushResult;
  EXPECT_EQ(queue.TryPush(1), PushResult::kAccepted);
  EXPECT_EQ(queue.TryPush(2), PushResult::kAccepted);
  EXPECT_EQ(queue.TryPush(3), PushResult::kFull);  // immediate, no wait
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.TryPush(4), PushResult::kAccepted);
  queue.Close();
  EXPECT_EQ(queue.TryPush(5), PushResult::kClosed);
  EXPECT_EQ(queue.Pop().value(), 2);
  EXPECT_EQ(queue.Pop().value(), 4);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(TaskQueueTest, PushForTimesOutOnAFullQueueThenSucceeds) {
  BoundedTaskQueue<int> queue(1);
  using PushResult = BoundedTaskQueue<int>::PushResult;
  EXPECT_EQ(queue.PushFor(1, std::chrono::milliseconds(5)),
            PushResult::kAccepted);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(queue.PushFor(2, std::chrono::milliseconds(30)),
            PushResult::kFull);
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(waited, std::chrono::milliseconds(25));  // it really waited
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_EQ(queue.PushFor(3, std::chrono::milliseconds(5)),
            PushResult::kAccepted);
  EXPECT_EQ(queue.Pop().value(), 3);
}

TEST(TaskQueueTest, PushForWakesWhenConsumerMakesRoom) {
  BoundedTaskQueue<int> queue(1);
  using PushResult = BoundedTaskQueue<int>::PushResult;
  ASSERT_EQ(queue.TryPush(1), PushResult::kAccepted);
  std::thread producer([&] {
    // Far longer than the test runs: only the Pop below can unblock this.
    EXPECT_EQ(queue.PushFor(2, std::chrono::seconds(30)),
              PushResult::kAccepted);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(queue.Pop().value(), 1);
  producer.join();
  EXPECT_EQ(queue.Pop().value(), 2);
}

TEST(TaskQueueTest, CloseWhileFullWakesTimedProducerWithClosed) {
  BoundedTaskQueue<int> queue(1);
  using PushResult = BoundedTaskQueue<int>::PushResult;
  ASSERT_EQ(queue.TryPush(1), PushResult::kAccepted);
  std::thread producer([&] {
    EXPECT_EQ(queue.PushFor(2, std::chrono::seconds(30)),
              PushResult::kClosed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  producer.join();
  // The closed queue still drains its accepted item.
  EXPECT_EQ(queue.Pop().value(), 1);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(TaskQueueTest, CloseWhileFullRaceNeverLosesAcceptedItems) {
  // Hammer TryPush/PushFor against a concurrent Close on a tiny queue:
  // every item reported kAccepted must be popped exactly once, and every
  // post-close attempt must report kClosed — no other outcome.
  using PushResult = BoundedTaskQueue<int>::PushResult;
  for (int round = 0; round < 20; ++round) {
    BoundedTaskQueue<int> queue(1);
    std::atomic<int> accepted{0};
    constexpr int kProducers = 4;
    constexpr int kAttempts = 50;
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&queue, &accepted, p] {
        for (int i = 0; i < kAttempts; ++i) {
          const int item = p * kAttempts + i;
          const PushResult result =
              (i % 2 == 0)
                  ? queue.TryPush(item)
                  : queue.PushFor(item, std::chrono::microseconds(200));
          if (result == PushResult::kAccepted) {
            accepted.fetch_add(1);
          } else if (result == PushResult::kClosed) {
            break;  // stays closed; later attempts cannot succeed
          }
        }
      });
    }
    std::atomic<int> popped{0};
    std::thread consumer([&queue, &popped] {
      while (queue.Pop().has_value()) {
        popped.fetch_add(1);
      }
    });
    std::this_thread::sleep_for(std::chrono::microseconds(500 * round));
    queue.Close();
    for (auto& producer : producers) {
      producer.join();
    }
    consumer.join();
    EXPECT_EQ(accepted.load(), popped.load());
  }
}

TEST(TaskQueueTest, MultipleProducersAllItemsArrive) {
  BoundedTaskQueue<int> queue(4);
  constexpr int kPerProducer = 200;
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }
  std::vector<bool> seen(kProducers * kPerProducer, false);
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    auto item = queue.Pop();
    ASSERT_TRUE(item.has_value());
    ASSERT_GE(*item, 0);
    ASSERT_LT(*item, kProducers * kPerProducer);
    EXPECT_FALSE(seen[*item]);
    seen[*item] = true;
  }
  for (auto& producer : producers) {
    producer.join();
  }
}

}  // namespace
}  // namespace runtime
}  // namespace craqr
