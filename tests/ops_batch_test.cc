#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "fabric/fabricator.h"
#include "ops/extras.h"
#include "ops/flatten.h"
#include "ops/partition.h"
#include "ops/thin.h"
#include "ops/tuple_batch.h"
#include "ops/union_op.h"
#include "runtime/sharded_fabricator.h"

/// \file ops_batch_test.cc
/// \brief Batch execution equivalence: every operator — and the whole
/// fabricator / sharded runtime stack — must deliver byte-for-byte the
/// same streams through PushBatch as through the per-tuple Push path,
/// with identical OperatorStats accounting, identical Flush-at-boundary
/// semantics, and identical (time-sorted) violation-report replay.

namespace craqr {
namespace ops {
namespace {

constexpr AttributeId kRain = 0;
constexpr AttributeId kTemp = 1;

bool SameTuple(const Tuple& a, const Tuple& b) {
  return a.id == b.id && a.attribute == b.attribute && a.point == b.point &&
         a.value == b.value && a.sensor_id == b.sensor_id;
}

void ExpectSameTuples(const std::vector<Tuple>& a,
                      const std::vector<Tuple>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(SameTuple(a[i], b[i])) << "tuple " << i << " differs";
  }
}

/// Deterministic stream of `n` tuples with monotone times, mixed
/// attributes and non-trivial values.
std::vector<Tuple> MakeStream(std::size_t n, double span = 4.0) {
  Rng rng(4242);
  std::vector<Tuple> tuples;
  tuples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Tuple t;
    t.id = i + 1;
    t.attribute = (i % 3 == 0) ? kTemp : kRain;
    t.sensor_id = 100 + (i % 17);
    t.point = geom::SpaceTimePoint{static_cast<double>(i) * 0.01,
                                   rng.Uniform(0.0, span),
                                   rng.Uniform(0.0, span)};
    t.value = (i % 2 == 0) ? AttributeValue{static_cast<double>(i) * 0.5}
                           : AttributeValue{i % 4 == 1};
    tuples.push_back(t);
  }
  return tuples;
}

/// Drives `head` with the whole stream tuple-at-a-time.
void DrivePerTuple(Operator* head, const std::vector<Tuple>& stream) {
  for (const Tuple& t : stream) {
    ASSERT_TRUE(head->Push(t).ok());
  }
}

/// Drives `head` with the same stream as batches of varying sizes
/// (exercising batch boundaries that do not line up with anything).
void DriveBatched(Operator* head, const std::vector<Tuple>& stream) {
  const std::size_t sizes[] = {1, 7, 64, 3, 129, 31};
  std::size_t offset = 0;
  std::size_t s = 0;
  TupleBatch batch;
  while (offset < stream.size()) {
    const std::size_t take =
        std::min(sizes[s++ % 6], stream.size() - offset);
    batch.Clear();
    for (std::size_t i = 0; i < take; ++i) {
      batch.Append(stream[offset + i]);
    }
    offset += take;
    ASSERT_TRUE(head->PushBatch(batch).ok());
  }
}

void ExpectSameStats(const Operator& a, const Operator& b) {
  EXPECT_EQ(a.stats().tuples_in, b.stats().tuples_in) << a.name();
  EXPECT_EQ(a.stats().tuples_out, b.stats().tuples_out) << a.name();
}

// ---------------------------------------------------------------------------
// TupleBatch container behavior

TEST(TupleBatchTest, ClearRecyclesCapacityAndSwapIsCheap) {
  TupleBatch batch;
  batch.Reserve(256);
  for (const Tuple& t : MakeStream(200)) {
    batch.Append(t);
  }
  const std::size_t capacity = batch.Capacity();
  EXPECT_GE(capacity, 256u);
  batch.Clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.Capacity(), capacity);

  TupleBatch other;
  other.Append(MakeStream(1)[0]);
  batch.Swap(other);
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_TRUE(other.empty());
  EXPECT_EQ(other.Capacity(), capacity);
}

TEST(TupleBatchTest, ColumnViewsGatherHotFields) {
  const auto stream = MakeStream(50);
  TupleBatch batch(stream);
  std::vector<std::uint64_t> ids, sensors;
  std::vector<AttributeId> attributes;
  std::vector<geom::SpaceTimePoint> points;
  batch.CollectIds(&ids);
  batch.CollectAttributes(&attributes);
  batch.CollectPoints(&points);
  batch.CollectSensorIds(&sensors);
  ASSERT_EQ(ids.size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(ids[i], stream[i].id);
    EXPECT_EQ(attributes[i], stream[i].attribute);
    EXPECT_TRUE(points[i] == stream[i].point);
    EXPECT_EQ(sensors[i], stream[i].sensor_id);
  }
  // On a plain batch the spans are zero-copy windows over the columns.
  ASSERT_EQ(batch.Points().size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_TRUE(batch.Points()[i] == stream[i].point);
    EXPECT_EQ(batch.Ids()[i], stream[i].id);
    EXPECT_TRUE(batch.Values()[i] == stream[i].value);
  }
}

// ---------------------------------------------------------------------------
// Per-operator equivalence: batch vs per-tuple, byte-exact

TEST(BatchEquivalenceTest, Thin) {
  auto a = ThinOperator::Make("a", 10.0, 4.0, Rng(7)).MoveValue();
  auto b = ThinOperator::Make("b", 10.0, 4.0, Rng(7)).MoveValue();
  auto sa = SinkOperator::Make("sa").MoveValue();
  auto sb = SinkOperator::Make("sb").MoveValue();
  a->AddOutput(sa.get());
  b->AddOutput(sb.get());
  const auto stream = MakeStream(700);
  DrivePerTuple(a.get(), stream);
  DriveBatched(b.get(), stream);
  ExpectSameTuples(sa->tuples(), sb->tuples());
  ExpectSameStats(*a, *b);
  ExpectSameStats(*sa, *sb);
}

TEST(BatchEquivalenceTest, FilterAndMap) {
  const auto predicate = [](const Tuple& t) { return t.point.x < 2.0; };
  const auto transform = [](const Tuple& t) {
    Tuple out = t;
    out.sensor_id = 0;  // anonymise
    return out;
  };
  auto fa = FilterOperator::Make("fa", predicate).MoveValue();
  auto fb = FilterOperator::Make("fb", predicate).MoveValue();
  auto ma = MapOperator::Make("ma", transform).MoveValue();
  auto mb = MapOperator::Make("mb", transform).MoveValue();
  auto sa = SinkOperator::Make("sa").MoveValue();
  auto sb = SinkOperator::Make("sb").MoveValue();
  fa->AddOutput(ma.get());
  ma->AddOutput(sa.get());
  fb->AddOutput(mb.get());
  mb->AddOutput(sb.get());
  const auto stream = MakeStream(500);
  DrivePerTuple(fa.get(), stream);
  DriveBatched(fb.get(), stream);
  ExpectSameTuples(sa->tuples(), sb->tuples());
  ExpectSameStats(*fa, *fb);
  ExpectSameStats(*ma, *mb);
}

TEST(BatchEquivalenceTest, PartitionRoutesAndCountsUnrouted) {
  // Three regions; only two connected, so the third's tuples count as
  // unrouted on both paths.
  const std::vector<geom::Rect> regions = {geom::Rect(0, 0, 1.5, 4),
                                           geom::Rect(1.5, 0, 3, 4),
                                           geom::Rect(3, 0, 4, 4)};
  auto a = PartitionOperator::Make("a", regions).MoveValue();
  auto b = PartitionOperator::Make("b", regions).MoveValue();
  std::vector<std::unique_ptr<SinkOperator>> sinks;
  for (int i = 0; i < 4; ++i) {
    sinks.push_back(
        SinkOperator::Make("s" + std::to_string(i)).MoveValue());
  }
  a->AddOutput(sinks[0].get());
  a->AddOutput(sinks[1].get());
  b->AddOutput(sinks[2].get());
  b->AddOutput(sinks[3].get());
  const auto stream = MakeStream(600);
  DrivePerTuple(a.get(), stream);
  DriveBatched(b.get(), stream);
  ExpectSameTuples(sinks[0]->tuples(), sinks[2]->tuples());
  ExpectSameTuples(sinks[1]->tuples(), sinks[3]->tuples());
  ExpectSameStats(*a, *b);
  EXPECT_EQ(a->unrouted(), b->unrouted());
  EXPECT_GT(a->unrouted(), 0u);
}

TEST(BatchEquivalenceTest, UnionSuperposePassThroughBroadcast) {
  auto ua = UnionOperator::Make(
                "ua", {geom::Rect(0, 0, 2, 4), geom::Rect(2, 0, 4, 4)})
                .MoveValue();
  auto ub = UnionOperator::Make(
                "ub", {geom::Rect(0, 0, 2, 4), geom::Rect(2, 0, 4, 4)})
                .MoveValue();
  auto pa = PassThroughOperator::Make("pa").MoveValue();
  auto pb = PassThroughOperator::Make("pb").MoveValue();
  auto xa = SuperposeOperator::Make("xa").MoveValue();
  auto xb = SuperposeOperator::Make("xb").MoveValue();
  // Branching point: the pass-through broadcasts to two outputs, so the
  // batch path must copy for the first and may move only for the last.
  auto s1a = SinkOperator::Make("s1a").MoveValue();
  auto s2a = SinkOperator::Make("s2a").MoveValue();
  auto s1b = SinkOperator::Make("s1b").MoveValue();
  auto s2b = SinkOperator::Make("s2b").MoveValue();
  ua->AddOutput(pa.get());
  pa->AddOutput(s1a.get());
  pa->AddOutput(xa.get());
  xa->AddOutput(s2a.get());
  ub->AddOutput(pb.get());
  pb->AddOutput(s1b.get());
  pb->AddOutput(xb.get());
  xb->AddOutput(s2b.get());
  const auto stream = MakeStream(400);
  DrivePerTuple(ua.get(), stream);
  DriveBatched(ub.get(), stream);
  ExpectSameTuples(s1a->tuples(), s1b->tuples());
  ExpectSameTuples(s2a->tuples(), s2b->tuples());
  ExpectSameStats(*ua, *ub);
  ExpectSameStats(*pa, *pb);
  ExpectSameStats(*xa, *xb);
  EXPECT_EQ(ua->out_of_region(), ub->out_of_region());
}

TEST(BatchEquivalenceTest, RateMonitorWindows) {
  auto a = RateMonitorOperator::Make("a", 0.5, 16.0).MoveValue();
  auto b = RateMonitorOperator::Make("b", 0.5, 16.0).MoveValue();
  auto sa = SinkOperator::Make("sa").MoveValue();
  auto sb = SinkOperator::Make("sb").MoveValue();
  a->AddOutput(sa.get());
  b->AddOutput(sb.get());
  const auto stream = MakeStream(500);
  DrivePerTuple(a.get(), stream);
  DriveBatched(b.get(), stream);
  ExpectSameTuples(sa->tuples(), sb->tuples());
  ExpectSameStats(*a, *b);
  EXPECT_EQ(a->window_rates().count(), b->window_rates().count());
  EXPECT_DOUBLE_EQ(a->MeanRate(), b->MeanRate());
}

TEST(BatchEquivalenceTest, SinkEvictionBoundaries) {
  // A tiny capacity makes eviction fire repeatedly; the retained window
  // must be identical on both paths.
  auto a = SinkOperator::Make("a", 37).MoveValue();
  auto b = SinkOperator::Make("b", 37).MoveValue();
  const auto stream = MakeStream(400);
  DrivePerTuple(a.get(), stream);
  DriveBatched(b.get(), stream);
  ExpectSameTuples(a->tuples(), b->tuples());
  ExpectSameStats(*a, *b);
  EXPECT_EQ(a->total_received(), b->total_received());
}

TEST(BatchEquivalenceTest, FlattenBatchModeWithDiscardSideOutput) {
  FlattenConfig config;
  config.region = geom::Rect(0, 0, 4, 4);
  config.target_rate = 20.0;
  config.batch_size = 96;  // does not divide any driver batch size
  auto a = FlattenOperator::Make("a", config, Rng(11)).MoveValue();
  auto b = FlattenOperator::Make("b", config, Rng(11)).MoveValue();
  auto sa = SinkOperator::Make("sa").MoveValue();
  auto sb = SinkOperator::Make("sb").MoveValue();
  auto da = SinkOperator::Make("da").MoveValue();
  auto db = SinkOperator::Make("db").MoveValue();
  a->AddOutput(sa.get());
  b->AddOutput(sb.get());
  a->SetDiscardedOutput(da.get());
  b->SetDiscardedOutput(db.get());
  std::vector<FlattenBatchReport> reports_a, reports_b;
  a->SetReportCallback(
      [&reports_a](const FlattenBatchReport& r) { reports_a.push_back(r); });
  b->SetReportCallback(
      [&reports_b](const FlattenBatchReport& r) { reports_b.push_back(r); });

  const auto stream = MakeStream(700);
  DrivePerTuple(a.get(), stream);
  DriveBatched(b.get(), stream);
  ASSERT_TRUE(a->Flush().ok());
  ASSERT_TRUE(b->Flush().ok());

  ExpectSameTuples(sa->tuples(), sb->tuples());
  ExpectSameTuples(da->tuples(), db->tuples());
  ExpectSameStats(*a, *b);
  // Every retained or discarded tuple is accounted for; nothing vanishes.
  EXPECT_EQ(sa->total_received() + da->total_received(), stream.size());
  ASSERT_EQ(reports_a.size(), reports_b.size());
  ASSERT_GT(reports_a.size(), 0u);
  for (std::size_t i = 0; i < reports_a.size(); ++i) {
    EXPECT_EQ(reports_a[i].n, reports_b[i].n);
    EXPECT_EQ(reports_a[i].retained, reports_b[i].retained);
    EXPECT_EQ(reports_a[i].violations, reports_b[i].violations);
    EXPECT_DOUBLE_EQ(reports_a[i].completed_at, reports_b[i].completed_at);
    // The stamp is the batch's completing tuple time (monotone stream).
    EXPECT_GT(reports_a[i].completed_at, 0.0);
    if (i > 0) {
      EXPECT_GE(reports_a[i].completed_at, reports_a[i - 1].completed_at);
    }
  }
}

TEST(BatchEquivalenceTest, FlattenOnlineMode) {
  FlattenConfig config;
  config.region = geom::Rect(0, 0, 4, 4);
  config.target_rate = 30.0;
  config.mode = FlattenMode::kOnline;
  config.violation_window = 128;
  auto a = FlattenOperator::Make("a", config, Rng(13)).MoveValue();
  auto b = FlattenOperator::Make("b", config, Rng(13)).MoveValue();
  auto sa = SinkOperator::Make("sa").MoveValue();
  auto sb = SinkOperator::Make("sb").MoveValue();
  a->AddOutput(sa.get());
  b->AddOutput(sb.get());
  const auto stream = MakeStream(600);
  DrivePerTuple(a.get(), stream);
  DriveBatched(b.get(), stream);
  ExpectSameTuples(sa->tuples(), sb->tuples());
  ExpectSameStats(*a, *b);
  EXPECT_DOUBLE_EQ(a->last_violation_percent(), b->last_violation_percent());
}

// ---------------------------------------------------------------------------
// Flush-at-batch-boundary semantics for buffering operators

TEST(BatchFlushTest, FlattenReleasesPartialBufferOnFlushOnly) {
  FlattenConfig config;
  config.region = geom::Rect(0, 0, 4, 4);
  config.target_rate = 1000.0;  // retain ~everything
  config.batch_size = 64;
  auto op = FlattenOperator::Make("f", config, Rng(3)).MoveValue();
  auto sink = SinkOperator::Make("s").MoveValue();
  op->AddOutput(sink.get());

  // 100 tuples in one batch: one firing at 64, 36 stay buffered.
  const auto stream = MakeStream(100);
  TupleBatch batch(stream);
  ASSERT_TRUE(op->PushBatch(batch).ok());
  EXPECT_EQ(op->stats().tuples_in, 100u);
  EXPECT_LE(sink->total_received(), 64u);
  EXPECT_GT(sink->total_received(), 0u);

  ASSERT_TRUE(op->Flush().ok());
  const auto after_flush = sink->total_received();
  EXPECT_GT(after_flush, 64u - 1u);  // the partial 36 were released
  // A second flush finds an empty buffer and emits nothing.
  ASSERT_TRUE(op->Flush().ok());
  EXPECT_EQ(sink->total_received(), after_flush);
  // Conservation after the flush: in == out (target rate retains all).
  EXPECT_EQ(op->stats().tuples_out, sink->total_received());
}

TEST(BatchFlushTest, RoutingScratchesNeverBufferAcrossBatches) {
  // Partition's per-port scratches (and Thin's in-place compaction) must
  // drain within PushBatch: a following Flush adds nothing.
  const std::vector<geom::Rect> regions = {geom::Rect(0, 0, 2, 4),
                                           geom::Rect(2, 0, 4, 4)};
  auto partition = PartitionOperator::Make("p", regions).MoveValue();
  auto thin = ThinOperator::Make("t", 10.0, 9.0, Rng(1)).MoveValue();
  auto s0 = SinkOperator::Make("s0").MoveValue();
  auto s1 = SinkOperator::Make("s1").MoveValue();
  thin->AddOutput(partition.get());
  partition->AddOutput(s0.get());
  partition->AddOutput(s1.get());

  TupleBatch batch(MakeStream(300));
  ASSERT_TRUE(thin->PushBatch(batch).ok());
  const auto received = s0->total_received() + s1->total_received();
  EXPECT_EQ(received, partition->stats().tuples_out);
  ASSERT_TRUE(thin->Flush().ok());
  ASSERT_TRUE(partition->Flush().ok());
  EXPECT_EQ(s0->total_received() + s1->total_received(), received);
  // Conservation: everything the partition took in was routed or counted.
  EXPECT_EQ(partition->stats().tuples_in,
            partition->stats().tuples_out + partition->unrouted());
}

// ---------------------------------------------------------------------------
// Whole-stack equivalence: per-tuple reference vs batch path vs shards

geom::Grid TestGrid() {
  return geom::Grid::Make(geom::Rect(0, 0, 4, 4), 16).MoveValue();
}

fabric::FabricConfig TestFabricConfig() {
  fabric::FabricConfig config;
  config.flatten_batch_size = 32;
  config.seed = 0xBA7C4;
  return config;
}

std::vector<Tuple> MakeGridBatch(Rng* rng, double* t, std::size_t n,
                                 std::uint64_t first_id) {
  std::vector<Tuple> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Tuple tuple;
    tuple.id = first_id + i;
    tuple.attribute = (i % 3 == 0) ? kTemp : kRain;
    *t += 0.002;
    tuple.point = geom::SpaceTimePoint{*t, rng->Uniform(0.0, 4.0),
                                       rng->Uniform(0.0, 4.0)};
    batch.push_back(tuple);
  }
  return batch;
}

/// Per-query delivered stream in canonical (t, id) order plus the
/// aggregate counters; "byte-exact" compares full tuple contents.
struct DeliveredStreams {
  std::uint64_t tuples_routed = 0;
  std::uint64_t tuples_unrouted = 0;
  std::uint64_t operator_evaluations = 0;
  std::map<query::QueryId, std::vector<Tuple>> delivered;
};

void ExpectSameDelivery(const DeliveredStreams& a,
                        const DeliveredStreams& b) {
  EXPECT_EQ(a.tuples_routed, b.tuples_routed);
  EXPECT_EQ(a.tuples_unrouted, b.tuples_unrouted);
  ASSERT_EQ(a.delivered.size(), b.delivered.size());
  for (const auto& [id, tuples] : a.delivered) {
    const auto it = b.delivered.find(id);
    ASSERT_NE(it, b.delivered.end()) << "query " << id << " missing";
    ExpectSameTuples(tuples, it->second);
  }
}

/// Runs the churn workload against any fabricator-shaped object. The
/// `pump` argument chooses per-tuple or batch driving.
template <typename Fab, typename Pump>
void RunChurnWorkload(Fab* fab, Pump pump, DeliveredStreams* result) {
  Rng rng(99);
  double t = 0.0;
  std::uint64_t next_id = 1;
  auto pump_batches = [&](std::size_t batches) {
    for (std::size_t i = 0; i < batches; ++i) {
      auto batch = MakeGridBatch(&rng, &t, 96, next_id);
      next_id += batch.size();
      pump(fab, batch);
    }
  };

  const auto q1 = fab->InsertQuery(kRain, geom::Rect(0, 0, 4, 4), 6.0);
  ASSERT_TRUE(q1.ok());
  const auto q2 = fab->InsertQuery(kRain, geom::Rect(1, 1, 3, 3), 3.0);
  ASSERT_TRUE(q2.ok());
  const auto q3 = fab->InsertQuery(kTemp, geom::Rect(0, 0, 2, 4), 4.0);
  ASSERT_TRUE(q3.ok());
  pump_batches(5);
  ASSERT_TRUE(fab->ValidateInvariants().ok());
  ASSERT_TRUE(fab->RemoveQuery(q2->id).ok());
  pump_batches(3);
  const auto q4 = fab->InsertQuery(kRain, geom::Rect(2, 0, 4, 3), 2.0);
  ASSERT_TRUE(q4.ok());
  pump_batches(4);
  ASSERT_TRUE(fab->ValidateInvariants().ok());

  result->tuples_routed = fab->tuples_routed();
  result->tuples_unrouted = fab->tuples_unrouted();
  result->operator_evaluations = fab->TotalOperatorEvaluations();
  for (const auto id : {q1->id, q3->id, q4->id}) {
    const auto stream = fab->GetStream(id);
    ASSERT_TRUE(stream.ok());
    std::vector<Tuple> tuples = stream->sink->tuples();
    std::sort(tuples.begin(), tuples.end(),
              [](const Tuple& a, const Tuple& b) {
                return std::make_pair(a.point.t, a.id) <
                       std::make_pair(b.point.t, b.id);
              });
    result->delivered[id] = std::move(tuples);
  }
}

DeliveredStreams RunPerTupleReference() {
  auto fab = fabric::StreamFabricator::Make(TestGrid(), TestFabricConfig())
                 .MoveValue();
  DeliveredStreams result;
  RunChurnWorkload(
      fab.get(),
      [](fabric::StreamFabricator* f, const std::vector<Tuple>& batch) {
        // The tuple-at-a-time reference path: Push all the way down.
        for (const Tuple& tuple : batch) {
          ASSERT_TRUE(f->ProcessTuple(tuple).ok());
        }
        ASSERT_TRUE(f->FlushAll().ok());
      },
      &result);
  return result;
}

DeliveredStreams RunBatchSingle() {
  auto fab = fabric::StreamFabricator::Make(TestGrid(), TestFabricConfig())
                 .MoveValue();
  DeliveredStreams result;
  RunChurnWorkload(
      fab.get(),
      [](fabric::StreamFabricator* f, const std::vector<Tuple>& batch) {
        TupleBatch tuple_batch(batch);
        ASSERT_TRUE(f->ProcessBatch(tuple_batch).ok());
      },
      &result);
  return result;
}

DeliveredStreams RunBatchSharded(std::size_t num_shards) {
  runtime::ShardedConfig config;
  config.num_shards = num_shards;
  config.fabric = TestFabricConfig();
  auto fab = runtime::ShardedFabricator::Make(TestGrid(), config).MoveValue();
  DeliveredStreams result;
  RunChurnWorkload(
      fab.get(),
      [](runtime::ShardedFabricator* f, const std::vector<Tuple>& batch) {
        TupleBatch tuple_batch(batch);
        ASSERT_TRUE(f->ProcessBatch(tuple_batch).ok());
      },
      &result);
  return result;
}

TEST(BatchPipelineEquivalenceTest, BatchPathMatchesPerTupleUnderChurn) {
  const DeliveredStreams reference = RunPerTupleReference();
  std::uint64_t total = 0;
  for (const auto& [id, tuples] : reference.delivered) {
    (void)id;
    total += tuples.size();
  }
  ASSERT_GT(total, 0u) << "workload delivered nothing; test is vacuous";

  const DeliveredStreams batched = RunBatchSingle();
  ExpectSameDelivery(reference, batched);
  // Satellite: OperatorStats on the batch path match the per-tuple path
  // exactly — the summed evaluations are one number covering every
  // operator's tuples_in.
  EXPECT_EQ(reference.operator_evaluations, batched.operator_evaluations);
}

TEST(BatchPipelineEquivalenceTest, ShardedBatchPathMatchesPerTuple) {
  const DeliveredStreams reference = RunPerTupleReference();
  for (const std::size_t shards : {1u, 4u}) {
    SCOPED_TRACE("num_shards=" + std::to_string(shards));
    ExpectSameDelivery(reference, RunBatchSharded(shards));
  }
}

// ---------------------------------------------------------------------------
// Violation-report replay: canonical completion-time order on every path

struct ReplayedReport {
  AttributeId attribute = 0;
  std::uint32_t q = 0;
  std::uint32_t r = 0;
  double completed_at = 0.0;
  std::size_t n = 0;

  bool operator==(const ReplayedReport& o) const {
    return attribute == o.attribute && q == o.q && r == o.r &&
           completed_at == o.completed_at && n == o.n;
  }
};

template <typename Fab>
std::vector<ReplayedReport> PumpAndRecordReports(Fab* fab) {
  std::vector<ReplayedReport> reports;
  fab->SetViolationCallback(
      [&reports](AttributeId attribute, const geom::CellIndex& cell,
                 const FlattenBatchReport& report) {
        reports.push_back({attribute, cell.q, cell.r, report.completed_at,
                           report.n});
      });
  EXPECT_TRUE(fab->InsertQuery(kRain, geom::Rect(0, 0, 4, 4), 6.0).ok());
  EXPECT_TRUE(fab->InsertQuery(kTemp, geom::Rect(0, 0, 3, 4), 4.0).ok());
  Rng rng(55);
  double t = 0.0;
  std::uint64_t next_id = 1;
  for (int b = 0; b < 8; ++b) {
    auto batch = MakeGridBatch(&rng, &t, 128, next_id);
    next_id += batch.size();
    EXPECT_TRUE(fab->ProcessBatch(batch).ok());
  }
  return reports;
}

TEST(ViolationReplayTest, CompletionTimeOrderIsShardCountIndependent) {
  auto single = fabric::StreamFabricator::Make(TestGrid(), TestFabricConfig())
                    .MoveValue();
  const std::vector<ReplayedReport> reference =
      PumpAndRecordReports(single.get());
  ASSERT_GT(reference.size(), 1u) << "no reports fired; test is vacuous";
  // The replay is sorted by completion time within each batch boundary.
  for (std::size_t i = 1; i < reference.size(); ++i) {
    if (reference[i - 1].completed_at > reference[i].completed_at) {
      // Only allowed across batch boundaries, where time restarts rising;
      // completed_at itself never decreases across boundaries because the
      // driving stream is time-monotone.
      ADD_FAILURE() << "reports replayed out of completion-time order at "
                    << i;
    }
  }
  for (const std::size_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE("num_shards=" + std::to_string(shards));
    runtime::ShardedConfig config;
    config.num_shards = shards;
    config.fabric = TestFabricConfig();
    auto fab =
        runtime::ShardedFabricator::Make(TestGrid(), config).MoveValue();
    const std::vector<ReplayedReport> sharded =
        PumpAndRecordReports(fab.get());
    ASSERT_EQ(sharded.size(), reference.size());
    for (std::size_t i = 0; i < sharded.size(); ++i) {
      EXPECT_TRUE(sharded[i] == reference[i]) << "report " << i
                                              << " diverged";
    }
  }
}

}  // namespace
}  // namespace ops
}  // namespace craqr
