#include <gtest/gtest.h>

#include <sstream>

#include "common/macros.h"
#include "common/result.h"
#include "common/status.h"

namespace craqr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryProducesMatchingCode) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status status = Status::InvalidArgument("rate must be > 0");
  EXPECT_EQ(status.ToString(), "Invalid argument: rate must be > 0");
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::NotFound("q7");
  EXPECT_EQ(os.str(), "Not found: q7");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "Resource exhausted");
}

TEST(ResultTest, HoldsValue) {
  const Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  const Result<int> result(Status::NotFound("nope"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveValueTransfersOwnership) {
  Result<std::string> result(std::string("payload"));
  const std::string moved = result.MoveValue();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

namespace helpers {

Status FailWhenNegative(int v) {
  if (v < 0) {
    return Status::InvalidArgument("negative");
  }
  return Status::OK();
}

Result<int> DoubleIfPositive(int v) {
  if (v <= 0) {
    return Status::OutOfRange("not positive");
  }
  return 2 * v;
}

Status Chain(int v) {
  CRAQR_RETURN_NOT_OK(FailWhenNegative(v));
  CRAQR_ASSIGN_OR_RETURN(const int doubled, DoubleIfPositive(v));
  if (doubled > 100) {
    return Status::OutOfRange("too big");
  }
  return Status::OK();
}

}  // namespace helpers

TEST(MacroTest, ReturnNotOkPropagates) {
  EXPECT_EQ(helpers::Chain(-1).code(), StatusCode::kInvalidArgument);
}

TEST(MacroTest, AssignOrReturnPropagates) {
  EXPECT_EQ(helpers::Chain(0).code(), StatusCode::kOutOfRange);
}

TEST(MacroTest, AssignOrReturnAssigns) {
  EXPECT_TRUE(helpers::Chain(10).ok());
  EXPECT_EQ(helpers::Chain(60).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace craqr
