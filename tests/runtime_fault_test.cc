#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "runtime/faultpoint.h"
#include "runtime/sharded_fabricator.h"

namespace craqr {
namespace runtime {
namespace {

constexpr ops::AttributeId kRain = 0;

geom::Grid TestGrid() {
  return geom::Grid::Make(geom::Rect(0, 0, 4, 4), 16).MoveValue();
}

fabric::FabricConfig TestFabricConfig() {
  fabric::FabricConfig config;
  config.flatten_batch_size = 32;
  config.seed = 0xC0FFEE;
  return config;
}

std::vector<ops::Tuple> MakeBatch(Rng* rng, double* t, std::size_t n,
                                  std::uint64_t first_id) {
  std::vector<ops::Tuple> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ops::Tuple tuple;
    tuple.id = first_id + i;
    tuple.attribute = kRain;
    *t += 0.002;
    tuple.point = geom::SpaceTimePoint{*t, rng->Uniform(0.0, 4.0),
                                       rng->Uniform(0.0, 4.0)};
    batch.push_back(tuple);
  }
  return batch;
}

/// Every test disarms the process-wide registry on the way out so a
/// failing assertion can't leak an armed fault into its neighbours. CI
/// exports a randomized CRAQR_FAULT_SEED (logged next to the run) that
/// reseeds the probabilistic firing hash, so the suite explores a fresh
/// schedule each run yet any failure replays exactly from the logged
/// seed; tests asserting an exact schedule use at_hits or p in {0, 1},
/// which are seed-independent.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (const char* seed = std::getenv("CRAQR_FAULT_SEED")) {
      FaultRegistry::Global().Seed(std::strtoull(seed, nullptr, 0));
    }
  }
  void TearDown() override { FaultRegistry::Global().Reset(); }
};

// ---------------------------------------------------------------------------
// Registry semantics

TEST_F(FaultTest, DisarmedRegistryNeverFires) {
  auto& reg = FaultRegistry::Global();
  EXPECT_FALSE(reg.AnyArmed());
  EXPECT_FALSE(CRAQR_FAULT_FIRE("runtime.queue_full", nullptr));
  EXPECT_EQ(reg.hits("runtime.queue_full"), 0u);
}

TEST_F(FaultTest, ProbabilisticFiringIsDeterministicUnderASeed) {
  auto& reg = FaultRegistry::Global();
  auto run = [&reg](std::uint64_t seed) {
    reg.Reset();
    reg.Seed(seed);
    FaultSpec spec;
    spec.probability = 0.5;
    reg.Arm("test.site", spec);
    std::vector<bool> pattern;
    for (int i = 0; i < 200; ++i) {
      pattern.push_back(reg.Fire("test.site"));
    }
    return pattern;
  };
  const auto first = run(123);
  const auto replay = run(123);
  EXPECT_EQ(first, replay) << "same seed must replay the same schedule";
  EXPECT_NE(first, run(456)) << "different seeds must diverge";
  // Sanity: p=0.5 actually fired some and skipped some.
  const auto fired =
      std::count(first.begin(), first.end(), true);
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 200);
}

TEST_F(FaultTest, AtHitsScheduleFiresExactlyWhereArmed) {
  auto& reg = FaultRegistry::Global();
  FaultSpec spec;
  spec.at_hits = {3, 5};
  reg.Arm("test.site", spec);
  std::vector<std::uint64_t> fired_at;
  for (std::uint64_t hit = 1; hit <= 10; ++hit) {
    if (reg.Fire("test.site")) {
      fired_at.push_back(hit);
    }
  }
  EXPECT_EQ(fired_at, (std::vector<std::uint64_t>{3, 5}));
  EXPECT_EQ(reg.hits("test.site"), 10u);
  EXPECT_EQ(reg.fires("test.site"), 2u);
}

TEST_F(FaultTest, MaxFiresCapsAndParamIsDelivered) {
  auto& reg = FaultRegistry::Global();
  FaultSpec spec;
  spec.probability = 1.0;
  spec.max_fires = 2;
  spec.param = 42;
  reg.Arm("test.site", spec);
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    std::uint64_t param = 0;
    if (reg.Fire("test.site", &param)) {
      ++fired;
      EXPECT_EQ(param, 42u);
    }
  }
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(reg.fires("test.site"), 2u);

  // Disarm keeps the counters for post-mortem inspection; Reset clears.
  reg.Disarm("test.site");
  EXPECT_FALSE(reg.AnyArmed());
  EXPECT_EQ(reg.hits("test.site"), 5u);
  reg.Reset();
  EXPECT_EQ(reg.hits("test.site"), 0u);
}

// ---------------------------------------------------------------------------
// Worker hardening: a throwing worker latches a Status with shard and
// epoch context instead of taking the process down, and the runtime still
// tears down cleanly afterwards (parked but drainable).

TEST_F(FaultTest, WorkerThrowLatchesShardAndEpochContext) {
  ShardedConfig config;
  config.num_shards = 2;
  config.fabric = TestFabricConfig();
  auto fab = ShardedFabricator::Make(TestGrid(), config).MoveValue();
  ASSERT_TRUE(fab->InsertQuery(kRain, geom::Rect(0, 0, 4, 4), 6.0).ok());

  FaultSpec spec;
  spec.at_hits = {1};
  FaultRegistry::Global().Arm("runtime.worker_throw", spec);

  Rng rng(3);
  double t = 0.0;
  auto batch = MakeBatch(&rng, &t, 96, 1);
  const Status status = fab->ProcessBatch(batch);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.ToString().find("worker threw"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.ToString().find("epoch"), std::string::npos)
      << status.ToString();
  // The latched failure is sticky and keeps surfacing...
  auto again = MakeBatch(&rng, &t, 32, 1000);
  EXPECT_FALSE(fab->ProcessBatch(again).ok());
  // ...and the destructor below must still drain and join the workers
  // without hanging (the test would time out if it didn't).
}

// ---------------------------------------------------------------------------
// Queue-full shedding: a forced-full push drops exactly that shard's
// sub-batch and counts it; the producer is never wedged and the runtime
// keeps flowing afterwards.

TEST_F(FaultTest, ForcedQueueFullShedsTheSubBatch) {
  ShardedConfig config;
  config.num_shards = 1;  // one sub-batch per ProcessBatch = one hit each
  config.fabric = TestFabricConfig();
  auto fab = ShardedFabricator::Make(TestGrid(), config).MoveValue();
  ASSERT_TRUE(fab->InsertQuery(kRain, geom::Rect(0, 0, 4, 4), 6.0).ok());

  const std::uint64_t rejects_before =
      obs::GetCounter("craqr.admission.queue_rejects")->value();
  FaultSpec spec;
  spec.at_hits = {2};  // shed exactly the second batch
  FaultRegistry::Global().Arm("runtime.queue_full", spec);

  Rng rng(17);
  double t = 0.0;
  std::uint64_t next_id = 1;
  for (std::size_t b = 0; b < 4; ++b) {
    auto batch = MakeBatch(&rng, &t, 64, next_id);
    next_id += batch.size();
    ASSERT_TRUE(fab->ProcessBatch(batch).ok()) << "shedding must not error";
  }
  EXPECT_EQ(fab->tuples_routed(), 3u * 64u) << "exactly one batch shed";
  EXPECT_EQ(obs::GetCounter("craqr.admission.queue_rejects")->value(),
            rejects_before + 1);
}

// ---------------------------------------------------------------------------
// Credit-based delivery shedding per policy. One slow subscriber sheds per
// its policy; restoring credits re-delivers spooled epochs in order.

struct CreditHarness {
  std::unique_ptr<ShardedFabricator> fab;
  std::unique_ptr<ShardedFabricator> twin;  // uncredited reference
  query::QueryId id = 0;
  query::QueryId twin_id = 0;
  Rng rng_a{29};
  Rng rng_b{29};
  double t_a = 0.0, t_b = 0.0;
  std::uint64_t id_a = 1, id_b = 1;

  void Pump(std::size_t batches) {
    for (std::size_t b = 0; b < batches; ++b) {
      auto a = MakeBatch(&rng_a, &t_a, 96, id_a);
      auto c = MakeBatch(&rng_b, &t_b, 96, id_b);
      id_a += a.size();
      id_b += c.size();
      ASSERT_TRUE(fab->ProcessBatch(a).ok());
      ASSERT_TRUE(twin->ProcessBatch(c).ok());
    }
  }

  std::vector<std::uint64_t> Ids(ShardedFabricator* f, query::QueryId q) {
    std::vector<std::uint64_t> ids;
    const auto stream = f->GetStream(q);
    EXPECT_TRUE(stream.ok());
    if (stream.ok()) {
      for (const auto& tuple : stream->sink->tuples()) {
        ids.push_back(tuple.id);
      }
    }
    return ids;
  }
};

void MakeCreditHarness(ShedPolicy policy, std::size_t spool_limit,
                       CreditHarness* h) {
  ShardedConfig config;
  config.num_shards = 2;
  config.fabric = TestFabricConfig();
  config.admission.shed_policy = policy;
  config.admission.spool_limit_epochs = spool_limit;
  h->fab = ShardedFabricator::Make(TestGrid(), config).MoveValue();
  h->twin = ShardedFabricator::Make(TestGrid(), config).MoveValue();
  const auto q = h->fab->InsertQuery(kRain, geom::Rect(0, 0, 4, 4), 8.0);
  const auto p = h->twin->InsertQuery(kRain, geom::Rect(0, 0, 4, 4), 8.0);
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(p.ok());
  h->id = q->id;
  h->twin_id = p->id;
}

TEST_F(FaultTest, SpoolPolicyHoldsEpochsUntilCreditsReturn) {
  CreditHarness h;
  MakeCreditHarness(ShedPolicy::kSpool, 64, &h);
  const std::uint64_t spooled_before =
      obs::GetCounter("craqr.admission.spooled")->value();
  EXPECT_EQ(h.fab->SetDeliveryCredits(999, 1).code(), StatusCode::kNotFound);
  ASSERT_TRUE(h.fab->SetDeliveryCredits(h.id, 0).ok());

  h.Pump(4);
  const auto spooled = h.fab->SpooledEpochs(h.id);
  ASSERT_TRUE(spooled.ok());
  EXPECT_GT(*spooled, 0u) << "nothing spooled; the policy never engaged";
  EXPECT_TRUE(h.Ids(h.fab.get(), h.id).empty())
      << "credit-less query must not receive deliveries";
  EXPECT_GT(obs::GetCounter("craqr.admission.spooled")->value(),
            spooled_before);

  // One credit drains exactly one spooled epoch (oldest first)...
  const std::uint64_t redelivered_before =
      obs::GetCounter("craqr.admission.delivered_spooled")->value();
  ASSERT_TRUE(h.fab->AddDeliveryCredits(h.id, 1).ok());
  EXPECT_EQ(*h.fab->SpooledEpochs(h.id), *spooled - 1);
  EXPECT_EQ(obs::GetCounter("craqr.admission.delivered_spooled")->value(),
            redelivered_before + 1);

  // ...and lifting the budget replays the rest in order: the delivered
  // stream ends up identical to the never-throttled twin's.
  ASSERT_TRUE(
      h.fab->SetDeliveryCredits(h.id, ShardedFabricator::kUnlimitedCredits)
          .ok());
  EXPECT_EQ(*h.fab->SpooledEpochs(h.id), 0u);
  ASSERT_TRUE(h.fab->Drain().ok());
  ASSERT_TRUE(h.twin->Drain().ok());
  const auto ids = h.Ids(h.fab.get(), h.id);
  EXPECT_FALSE(ids.empty());
  EXPECT_EQ(ids, h.Ids(h.twin.get(), h.twin_id));
}

TEST_F(FaultTest, RejectPolicyDropsImmediately) {
  CreditHarness h;
  MakeCreditHarness(ShedPolicy::kReject, 64, &h);
  const std::uint64_t rejected_before =
      obs::GetCounter("craqr.admission.rejected")->value();
  ASSERT_TRUE(h.fab->SetDeliveryCredits(h.id, 0).ok());
  h.Pump(4);
  EXPECT_EQ(*h.fab->SpooledEpochs(h.id), 0u) << "kReject must never spool";
  EXPECT_TRUE(h.Ids(h.fab.get(), h.id).empty());
  EXPECT_GT(obs::GetCounter("craqr.admission.rejected")->value(),
            rejected_before);

  // Rejected epochs are gone for good: after credits return, the slow
  // subscriber has a strict suffix of the twin's stream.
  ASSERT_TRUE(
      h.fab->SetDeliveryCredits(h.id, ShardedFabricator::kUnlimitedCredits)
          .ok());
  h.Pump(2);
  ASSERT_TRUE(h.fab->Drain().ok());
  ASSERT_TRUE(h.twin->Drain().ok());
  const auto ids = h.Ids(h.fab.get(), h.id);
  const auto full = h.Ids(h.twin.get(), h.twin_id);
  EXPECT_FALSE(ids.empty());
  ASSERT_LT(ids.size(), full.size());
  EXPECT_TRUE(std::equal(ids.rbegin(), ids.rend(), full.rbegin()))
      << "post-recovery deliveries must match the reference suffix";
}

TEST_F(FaultTest, DropOldestPolicyEvictsTheOldestSpooledEpoch) {
  CreditHarness h;
  MakeCreditHarness(ShedPolicy::kDropOldest, 2, &h);
  const std::uint64_t dropped_before =
      obs::GetCounter("craqr.admission.dropped")->value();
  ASSERT_TRUE(h.fab->SetDeliveryCredits(h.id, 0).ok());
  h.Pump(5);
  const auto spooled = h.fab->SpooledEpochs(h.id);
  ASSERT_TRUE(spooled.ok());
  EXPECT_LE(*spooled, 2u) << "spool must respect spool_limit_epochs";
  EXPECT_GT(*spooled, 0u);
  EXPECT_GT(obs::GetCounter("craqr.admission.dropped")->value(),
            dropped_before)
      << "five epochs through a two-epoch spool must evict";

  // What survives is the *newest* epochs; they deliver in order and match
  // the tail of the reference stream.
  ASSERT_TRUE(
      h.fab->SetDeliveryCredits(h.id, ShardedFabricator::kUnlimitedCredits)
          .ok());
  ASSERT_TRUE(h.fab->Drain().ok());
  ASSERT_TRUE(h.twin->Drain().ok());
  const auto ids = h.Ids(h.fab.get(), h.id);
  const auto full = h.Ids(h.twin.get(), h.twin_id);
  EXPECT_FALSE(ids.empty());
  ASSERT_LT(ids.size(), full.size());
  EXPECT_TRUE(std::equal(ids.rbegin(), ids.rend(), full.rbegin()));
}

// ---------------------------------------------------------------------------
// Watchdog: a stalled worker (injected) flips the runtime into degraded
// mode; recovery clears it.

TEST_F(FaultTest, WatchdogDetectsAStalledWorkerAndRecovers) {
  ShardedConfig config;
  config.num_shards = 1;
  config.fabric = TestFabricConfig();
  config.admission.watchdog_interval_ms = 5;
  config.admission.watchdog_stall_ticks = 2;
  auto fab = ShardedFabricator::Make(TestGrid(), config).MoveValue();
  ASSERT_TRUE(fab->InsertQuery(kRain, geom::Rect(0, 0, 4, 4), 6.0).ok());
  EXPECT_FALSE(fab->degraded());

  const std::uint64_t stalls_before =
      obs::GetCounter("craqr.fault.worker_stalls")->value();
  FaultSpec spec;
  spec.probability = 1.0;
  spec.max_fires = 1;
  spec.param = 400;  // ms the worker sleeps on the first batch
  FaultRegistry::Global().Arm("runtime.worker_stall", spec);

  // Three pipelined batches: the worker sleeps on the first while the
  // other two sit in the queue — a non-empty queue with no completions,
  // which is exactly the stall signature the watchdog samples for.
  Rng rng(41);
  double t = 0.0;
  std::uint64_t next_id = 1;
  for (std::size_t b = 0; b < 3; ++b) {
    auto batch = MakeBatch(&rng, &t, 64, next_id);
    next_id += batch.size();
    ASSERT_TRUE(fab->EnqueueBatch(batch).ok());
  }
  bool saw_degraded = false;
  for (int i = 0; i < 60 && !saw_degraded; ++i) {
    saw_degraded = fab->degraded();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(saw_degraded) << "watchdog never flagged the stalled worker";
  EXPECT_GT(obs::GetCounter("craqr.fault.worker_stalls")->value(),
            stalls_before);

  // Once the stall passes and the queue drains, degraded mode clears.
  ASSERT_TRUE(fab->Drain().ok());
  bool cleared = false;
  for (int i = 0; i < 60 && !cleared; ++i) {
    cleared = !fab->degraded();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(cleared) << "degraded mode never cleared after recovery";
}

// ---------------------------------------------------------------------------
// Allocation-failure site: a failing checkpoint surfaces ResourceExhausted
// and the next attempt (fault passed) succeeds.

TEST_F(FaultTest, AllocFailureFailsTheCheckpointOnce) {
  ShardedConfig config;
  config.num_shards = 2;
  config.fabric = TestFabricConfig();
  config.checkpoint.enabled = true;
  auto fab = ShardedFabricator::Make(TestGrid(), config).MoveValue();
  ASSERT_TRUE(fab->InsertQuery(kRain, geom::Rect(0, 0, 4, 4), 6.0).ok());

  // Armed only now — Make and the insert's auto-refresh already took
  // their checkpoints cleanly.
  FaultSpec spec;
  spec.probability = 1.0;
  spec.max_fires = 1;
  FaultRegistry::Global().Arm("runtime.alloc_fail", spec);
  EXPECT_EQ(fab->Checkpoint().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(fab->HasCheckpoint()) << "the old snapshot must survive";
  ASSERT_TRUE(fab->Checkpoint().ok()) << "fault spent; retry must succeed";
}

}  // namespace
}  // namespace runtime
}  // namespace craqr
