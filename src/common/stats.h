#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

/// \file stats.h
/// \brief Small statistics accumulators used throughout the library.

namespace craqr {

/// \brief Numerically stable single-pass accumulator (Welford) for mean,
/// variance, min and max.
class RunningStats {
 public:
  /// Adds an observation.
  void Add(double x);

  /// Number of observations so far.
  std::uint64_t count() const { return count_; }

  /// Sample mean; 0 when empty.
  double Mean() const { return count_ == 0 ? 0.0 : mean_; }

  /// Unbiased sample variance; 0 for fewer than two observations.
  double Variance() const;

  /// Square root of Variance().
  double Stddev() const;

  /// Coefficient of variation (stddev / mean); 0 when the mean is 0.
  double CoefficientOfVariation() const;

  /// Smallest observation; +inf when empty.
  double Min() const { return min_; }

  /// Largest observation; -inf when empty.
  double Max() const { return max_; }

  /// Sum of all observations.
  double Sum() const { return sum_; }

  /// Adds `n` identical observations of `x` in O(1) (Chan's merge with a
  /// synthetic zero-variance accumulator). Used by the observability
  /// layer to fold histogram buckets into mean/variance without replaying
  /// per-event inserts; AddWeighted(x, 1) is exactly Add(x).
  void AddWeighted(double x, std::uint64_t n);

  /// Resets to the empty state.
  void Reset();

  /// Merges another accumulator into this one (Chan's parallel formula).
  void Merge(const RunningStats& other);

  /// \brief Raw accumulator state for checkpoint/restore; round-tripping
  /// through Save/Restore is byte-exact (no re-accumulation).
  struct State {
    std::uint64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  State Save() const { return {count_, mean_, m2_, sum_, min_, max_}; }

  void Restore(const State& st) {
    count_ = st.count;
    mean_ = st.mean;
    m2_ = st.m2;
    sum_ = st.sum;
    min_ = st.min;
    max_ = st.max;
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// \brief Fixed-capacity sliding window of doubles supporting O(1) mean and
/// fraction-above-threshold queries; used for windowed rate-violation
/// tracking in the online Flatten mode.
class SlidingWindow {
 public:
  /// Creates a window holding at most `capacity` recent values
  /// (capacity >= 1).
  explicit SlidingWindow(std::size_t capacity);

  /// Appends a value, evicting the oldest when full.
  void Push(double x);

  /// Number of values currently held.
  std::size_t size() const { return values_.size(); }

  /// True when no values are held.
  bool empty() const { return values_.empty(); }

  /// Mean of held values; 0 when empty.
  double Mean() const;

  /// Fraction of held values strictly greater than `threshold`; 0 when
  /// empty.
  double FractionAbove(double threshold) const;

  /// Sum of held values.
  double Sum() const { return sum_; }

  /// Removes all values.
  void Clear();

  /// Held values, oldest first (checkpoint/restore).
  const std::deque<double>& values() const { return values_; }

  /// Replaces the held values (oldest first), recomputing the cached sum.
  /// Values beyond the capacity are evicted oldest-first, exactly as if
  /// pushed one at a time.
  void RestoreValues(const std::deque<double>& values) {
    values_ = values;
    while (values_.size() > capacity_) {
      values_.pop_front();
    }
    sum_ = 0.0;
    for (const double v : values_) {
      sum_ += v;
    }
  }

 private:
  std::size_t capacity_;
  std::deque<double> values_;
  double sum_ = 0.0;
};

/// \brief Equi-width histogram over [lo, hi); out-of-range values are
/// clamped into the edge bins. Used for empirical intensity summaries.
class Histogram {
 public:
  /// Creates `bins` equal-width bins over [lo, hi). Requires bins >= 1 and
  /// lo < hi.
  Histogram(double lo, double hi, std::size_t bins);

  /// Adds an observation.
  void Add(double x);

  /// Count in bin `i`.
  std::uint64_t BinCount(std::size_t i) const { return counts_[i]; }

  /// Number of bins.
  std::size_t NumBins() const { return counts_.size(); }

  /// Total observations.
  std::uint64_t TotalCount() const { return total_; }

  /// Left edge of bin `i`.
  double BinLeft(std::size_t i) const;

  /// Width of each bin.
  double BinWidth() const { return width_; }

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// \brief One-sample Kolmogorov-Smirnov test of `sorted_samples` (ascending)
/// against the Uniform[0,1] distribution. Returns the KS statistic D;
/// `*p_value` (optional) receives the asymptotic p-value.
double KsTestUniform(const std::vector<double>& sorted_samples,
                     double* p_value);

}  // namespace craqr
