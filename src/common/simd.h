#pragma once

#include <cstddef>
#include <cstdint>

#include "common/span.h"

/// \file simd.h
/// \brief Branch-free selection-kernel primitives for the vectorized
/// column sweeps.
///
/// The batch data plane expresses every hot decision as a byte mask over a
/// contiguous column (one `std::uint8_t` per row, 0 = drop / 1 = keep)
/// followed by one of the compaction kernels below. The point of the split
/// is twofold:
///
///  - **branch-free inner loops**: the mask-producing sweeps
///    (`Rng::FillBernoulliMask`, `Rect::ContainsMask`) and the compaction
///    kernels here contain no data-dependent branches, so random
///    keep/drop decisions cost no mispredicts and `-O3` can
///    auto-vectorize the compares (the compaction's `out += mask` pattern
///    if-converts to a conditional move);
///  - **one contract**: every kernel consumes masks the same way —
///    nonzero byte = selected — so operators compose them freely
///    (Partition intersects a containment mask with the batch's active
///    selection; Thin feeds a Bernoulli mask straight to
///    `TupleBatch::RetainFromMask`).
///
/// All kernels are deliberately plain scalar C++ (no intrinsics): the
/// loops are written in the shape GCC/Clang vectorize on their own, which
/// keeps them portable across x86/ARM containers. Measured speedups live
/// in `bench_operator_throughput` (`BM_ThinSweep*`, `BM_PartitionSweep*`).

namespace craqr {
namespace simd {

/// \brief Writes the indices `i` in `[0, mask.size())` with `mask[i] != 0`
/// to `out`, ascending, and returns how many were written. `out` must
/// have room for `mask.size()` entries. Branch-free: one store + masked
/// increment per row.
inline std::size_t MaskCompact(Span<const std::uint8_t> mask,
                               std::uint32_t* out) {
  std::size_t count = 0;
  const std::size_t n = mask.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[count] = static_cast<std::uint32_t>(i);
    count += (mask[i] != 0);
  }
  return count;
}

/// \brief Gathering variant: writes `values[i]` (instead of `i`) for every
/// set mask byte. Used to intersect a row mask with an existing selection
/// vector: `values` holds the active raw indices and `mask[i]` is the
/// decision for the i-th *active* row. `out` may alias `values` (the
/// in-place rewrite `RetainFromMask` performs): writes land at or before
/// the read cursor.
inline std::size_t MaskCompactGather(Span<const std::uint8_t> mask,
                                     const std::uint32_t* values,
                                     std::uint32_t* out) {
  std::size_t count = 0;
  const std::size_t n = mask.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[count] = values[i];
    count += (mask[i] != 0);
  }
  return count;
}

/// \brief Number of set bytes in `mask` (reduction; auto-vectorizes).
inline std::size_t MaskCount(Span<const std::uint8_t> mask) {
  std::size_t count = 0;
  for (const std::uint8_t m : mask) {
    count += (m != 0);
  }
  return count;
}

/// \brief Gathers `lookup[keys[i]]` for every row — the per-row
/// bucket-resolution pass of the histogram routers (flat cell id ->
/// shard / chain bucket). Sentinel keys must already be mapped inside
/// `lookup`, so the loop body stays a single unconditional load.
inline void GatherU32(Span<const std::uint32_t> keys,
                      Span<const std::uint32_t> lookup, std::uint32_t* out) {
  const std::size_t n = keys.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = lookup[keys[i]];
  }
}

/// \brief Counts key occurrences into `counts` (caller zeroes), then
/// exclusive-prefix-sums `counts` in place so `counts[k]` becomes the
/// first output slot of bucket `k`, and finally scatters each row index
/// into `grouped` — rows of equal key end up contiguous, original order
/// preserved within a bucket (the scatter walks rows in order and each
/// bucket's cursor only grows). This is the single-pass
/// count -> prefix-sum -> scatter histogram partition the routers use in
/// place of per-row branchy dispatch.
///
/// On return `counts[k]` has been advanced to one past bucket `k`'s last
/// slot (i.e. the *end* offset); callers that need the start offsets
/// should note bucket k occupies `[end[k-1], end[k])` with `end[-1] = 0`.
/// `grouped` must have room for `keys.size()` entries; every key must be
/// `< counts.size()`.
inline void HistogramGroup(Span<const std::uint32_t> keys,
                           Span<std::uint32_t> counts, std::uint32_t* grouped) {
  const std::size_t n = keys.size();
  for (std::size_t i = 0; i < n; ++i) {
    ++counts[keys[i]];
  }
  std::uint32_t running = 0;
  const std::size_t buckets = counts.size();
  for (std::size_t k = 0; k < buckets; ++k) {
    const std::uint32_t c = counts[k];
    counts[k] = running;
    running += c;
  }
  for (std::size_t i = 0; i < n; ++i) {
    grouped[counts[keys[i]]++] = static_cast<std::uint32_t>(i);
  }
}

}  // namespace simd
}  // namespace craqr
