#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math.h"

namespace craqr {

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::Variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::Stddev() const { return std::sqrt(Variance()); }

double RunningStats::CoefficientOfVariation() const {
  const double mean = Mean();
  if (mean == 0.0) {
    return 0.0;
  }
  return Stddev() / mean;
}

void RunningStats::AddWeighted(double x, std::uint64_t n) {
  if (n == 0) {
    return;
  }
  // Merge with a synthetic accumulator {count = n, mean = x, m2 = 0}.
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(n);
  const double delta = x - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += delta * delta * n1 * n2 / total;
  count_ += n;
  sum_ += x * n2;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Reset() { *this = RunningStats(); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

SlidingWindow::SlidingWindow(std::size_t capacity) : capacity_(capacity) {
  assert(capacity_ >= 1);
}

void SlidingWindow::Push(double x) {
  values_.push_back(x);
  sum_ += x;
  if (values_.size() > capacity_) {
    sum_ -= values_.front();
    values_.pop_front();
  }
}

double SlidingWindow::Mean() const {
  if (values_.empty()) {
    return 0.0;
  }
  return sum_ / static_cast<double>(values_.size());
}

double SlidingWindow::FractionAbove(double threshold) const {
  if (values_.empty()) {
    return 0.0;
  }
  const auto above = std::count_if(
      values_.begin(), values_.end(),
      [threshold](double v) { return v > threshold; });
  return static_cast<double>(above) / static_cast<double>(values_.size());
}

void SlidingWindow::Clear() {
  values_.clear();
  sum_ = 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins) {
  assert(bins >= 1);
  assert(lo < hi);
}

void Histogram::Add(double x) {
  auto bin = static_cast<std::int64_t>(std::floor((x - lo_) / width_));
  bin = std::clamp<std::int64_t>(bin, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::BinLeft(std::size_t i) const {
  return lo_ + static_cast<double>(i) * width_;
}

double KsTestUniform(const std::vector<double>& sorted_samples,
                     double* p_value) {
  const std::size_t n = sorted_samples.size();
  if (n == 0) {
    if (p_value != nullptr) {
      *p_value = 1.0;
    }
    return 0.0;
  }
  double d = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double cdf = std::clamp(sorted_samples[i], 0.0, 1.0);
    const double upper = static_cast<double>(i + 1) / static_cast<double>(n);
    const double lower = static_cast<double>(i) / static_cast<double>(n);
    d = std::max(d, std::max(upper - cdf, cdf - lower));
  }
  if (p_value != nullptr) {
    const double sqrt_n = std::sqrt(static_cast<double>(n));
    // Stephens' small-sample correction.
    const double lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    *p_value = KolmogorovSurvival(lambda);
  }
  return d;
}

}  // namespace craqr
