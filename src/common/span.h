#pragma once

#include <cstddef>

/// \file span.h
/// \brief A minimal non-owning view over a contiguous array (C++17 stand-in
/// for std::span).
///
/// Used by the columnar tuple layout: `ops::TupleBatch` hands out zero-copy
/// `Span`s over its struct-of-arrays columns, and consumers (the F
/// operator's MLE fit, benchmarks, tests) read them without gathering.

namespace craqr {

/// \brief Pointer + length view; never owns, never allocates.
template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(T* data, std::size_t size) : data_(data), size_(size) {}

  constexpr T* data() const { return data_; }
  constexpr std::size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  constexpr T* begin() const { return data_; }
  constexpr T* end() const { return data_ + size_; }

  constexpr T& operator[](std::size_t i) const { return data_[i]; }
  constexpr T& front() const { return data_[0]; }
  constexpr T& back() const { return data_[size_ - 1]; }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace craqr
