#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>

/// \file status.h
/// \brief Arrow/RocksDB-style error propagation without exceptions.
///
/// All fallible public CrAQR APIs return either a `craqr::Status` or a
/// `craqr::Result<T>` (see result.h).  Exceptions are never thrown across
/// library boundaries.

namespace craqr {

/// \brief Machine-readable category of a Status.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kUnimplemented = 7,
  kInternal = 8,
};

/// \brief Returns a stable human-readable name for a StatusCode
/// (e.g. "Invalid argument").
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// `Status` is cheap to copy in the OK case (no allocation) and is marked
/// `[[nodiscard]]` so silently dropped errors fail the build.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message);

  /// Returns an OK status.
  static Status OK() { return Status(); }

  /// \name Error factories
  /// One per non-OK StatusCode.
  ///@{
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  ///@}

  /// True iff the status carries no error.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// \brief Returns "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Two statuses are equal when code and message both match.
  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Streams `status.ToString()`.
std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace craqr
