#pragma once

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>

/// \file logging.h
/// \brief Minimal leveled logging with a process-wide severity threshold.
///
/// Usage: `CRAQR_LOG(INFO) << "inserted query " << id;`
/// Messages below the threshold are compiled into a no-op stream.
///
/// Thread-safety: the severity threshold is a relaxed atomic, so
/// SetLogLevel/GetLogLevel are safe from any thread (shard workers read it
/// on every CRAQR_LOG). For warnings inside hot loops use
/// `CRAQR_LOG_EVERY_N(WARNING, 1000) << ...`, which emits the 1st,
/// 1001st, ... occurrence of that statement (per call site, counted
/// across threads) and swallows the rest.

namespace craqr {

/// \brief Log severity levels, ordered.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// \brief Sets the process-wide minimum severity that is emitted.
void SetLogLevel(LogLevel level);

/// \brief Returns the current minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// \brief Accumulates one log line and flushes it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  /// The accumulating stream.
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// \brief Swallows a disabled log statement.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// \brief True on the 1st, (n+1)th, (2n+1)th ... call with this counter
/// (occurrences are counted whether or not the severity is enabled, like
/// glog's LOG_EVERY_N). n <= 1 always fires.
inline bool ShouldLogEveryN(std::atomic<std::uint64_t>& counter,
                            std::uint64_t n) {
  if (n <= 1) {
    return true;
  }
  return counter.fetch_add(1, std::memory_order_relaxed) % n == 0;
}

}  // namespace internal
}  // namespace craqr

#define CRAQR_LOG_LEVEL_DEBUG ::craqr::LogLevel::kDebug
#define CRAQR_LOG_LEVEL_INFO ::craqr::LogLevel::kInfo
#define CRAQR_LOG_LEVEL_WARNING ::craqr::LogLevel::kWarning
#define CRAQR_LOG_LEVEL_ERROR ::craqr::LogLevel::kError

/// Emits one log line at the given severity when enabled.
#define CRAQR_LOG(severity)                                         \
  if (CRAQR_LOG_LEVEL_##severity < ::craqr::GetLogLevel()) {        \
  } else                                                            \
    ::craqr::internal::LogMessage(CRAQR_LOG_LEVEL_##severity,       \
                                  __FILE__, __LINE__)               \
        .stream()

/// Rate-limited CRAQR_LOG: emits the 1st, (n+1)th, (2n+1)th ...
/// occurrence of this statement (per call site, thread-safe). For
/// hot-path warnings that would otherwise flood stderr.
#define CRAQR_LOG_EVERY_N(severity, n)                                      \
  if (![]() -> bool {                                                       \
        static ::std::atomic<::std::uint64_t> craqr_log_every_counter{0};   \
        return ::craqr::internal::ShouldLogEveryN(craqr_log_every_counter,  \
                                                  (n));                     \
      }()) {                                                                \
  } else                                                                    \
    CRAQR_LOG(severity)
