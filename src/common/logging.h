#pragma once

#include <sstream>
#include <string>

/// \file logging.h
/// \brief Minimal leveled logging with a process-wide severity threshold.
///
/// Usage: `CRAQR_LOG(INFO) << "inserted query " << id;`
/// Messages below the threshold are compiled into a no-op stream.

namespace craqr {

/// \brief Log severity levels, ordered.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// \brief Sets the process-wide minimum severity that is emitted.
void SetLogLevel(LogLevel level);

/// \brief Returns the current minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// \brief Accumulates one log line and flushes it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  /// The accumulating stream.
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// \brief Swallows a disabled log statement.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace craqr

#define CRAQR_LOG_LEVEL_DEBUG ::craqr::LogLevel::kDebug
#define CRAQR_LOG_LEVEL_INFO ::craqr::LogLevel::kInfo
#define CRAQR_LOG_LEVEL_WARNING ::craqr::LogLevel::kWarning
#define CRAQR_LOG_LEVEL_ERROR ::craqr::LogLevel::kError

/// Emits one log line at the given severity when enabled.
#define CRAQR_LOG(severity)                                         \
  if (CRAQR_LOG_LEVEL_##severity < ::craqr::GetLogLevel()) {        \
  } else                                                            \
    ::craqr::internal::LogMessage(CRAQR_LOG_LEVEL_##severity,       \
                                  __FILE__, __LINE__)               \
        .stream()
