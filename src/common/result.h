#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

/// \file result.h
/// \brief `Result<T>`: value-or-Status, in the style of arrow::Result.

namespace craqr {

/// \brief Holds either a successfully produced `T` or an error `Status`.
///
/// Use with the `CRAQR_ASSIGN_OR_RETURN` macro (macros.h) for terse
/// propagation:
/// \code
///   CRAQR_ASSIGN_OR_RETURN(auto grid, Grid::Make(region, h));
/// \endcode
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a Result holding a value (implicit by design, mirroring
  /// arrow::Result, so `return value;` works in functions returning
  /// Result<T>).
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error. `status.ok()` must be false.
  Result(Status status)  // NOLINT(runtime/explicit)
      : storage_(std::move(status)) {
    assert(!std::get<Status>(storage_).ok() &&
           "Result constructed from OK status");
  }

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(storage_); }

  /// The status: OK when a value is present, the error otherwise.
  Status status() const {
    if (ok()) {
      return Status::OK();
    }
    return std::get<Status>(storage_);
  }

  /// \name Value accessors
  /// Must only be called when `ok()`.
  ///@{
  const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }
  /// Moves the value out of the Result.
  T MoveValue() {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }
  ///@}

 private:
  std::variant<Status, T> storage_;
};

}  // namespace craqr
