#pragma once

#include <cstdint>
#include <vector>

/// \file rng.h
/// \brief Deterministic, seedable random number generation.
///
/// Every stochastic component in CrAQR (operators, simulators, estimators)
/// draws from an `Rng` passed in by the caller, so entire simulations and
/// benchmarks are reproducible from a single seed.

namespace craqr {

/// \brief SplitMix64 finalizer: mixes one word into a well-distributed
/// 64-bit value. The single source of truth for seed-derivation chains
/// (Rng seeding, StreamFabricator::OperatorSeed).
std::uint64_t SplitMix64(std::uint64_t z);

/// \brief Counter-free 64-bit PRNG (xoshiro256**), seeded via SplitMix64.
///
/// Not thread-safe; use one Rng per thread or component.  The generator is
/// hand-rolled (rather than std::mt19937_64) so that streams are identical
/// across standard libraries and platforms.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed. Equal seeds yield equal
  /// streams on all platforms.
  explicit Rng(std::uint64_t seed = 0xC0FFEE123456789ULL);

  /// Returns the next raw 64-bit word. Inline: one draw per tuple is the
  /// innermost cost of the batch-native Thin/Flatten sweeps.
  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Returns a double uniformly distributed in [0, 1).
  double Uniform() {
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Returns a double uniformly distributed in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Returns an integer uniformly distributed in [0, n). Requires n > 0.
  std::uint64_t UniformInt(std::uint64_t n);

  /// Returns true with probability p (clamped to [0, 1]). Degenerate
  /// probabilities decide without consuming a draw.
  bool Bernoulli(double p) {
    if (p <= 0.0) {
      return false;
    }
    if (p >= 1.0) {
      return true;
    }
    return Uniform() < p;
  }

  /// Returns a Poisson-distributed count with the given mean >= 0.
  /// Uses Knuth multiplication for small means and the PTRS transformed
  /// rejection method for large means.
  std::uint64_t Poisson(double mean);

  /// Returns an Exponential(rate) variate. Requires rate > 0.
  double Exponential(double rate);

  /// Returns a standard normal variate (Box-Muller with caching).
  double Normal();

  /// Returns a Normal(mean, stddev) variate. Requires stddev >= 0.
  double Normal(double mean, double stddev);

  /// Returns a LogNormal variate whose logarithm is Normal(mu, sigma).
  double LogNormal(double mu, double sigma);

  /// Returns a Pareto(scale, alpha) variate, used for Levy-flight step
  /// lengths. Requires scale > 0 and alpha > 0.
  double Pareto(double scale, double alpha);

  /// \brief Samples k distinct indices from [0, n) without replacement
  /// (Floyd's algorithm). Requires k <= n.
  std::vector<std::uint64_t> SampleWithoutReplacement(std::uint64_t n,
                                                      std::uint64_t k);

  /// \brief Samples k indices from [0, n) with replacement.
  std::vector<std::uint64_t> SampleWithReplacement(std::uint64_t n,
                                                   std::uint64_t k);

  /// \brief Derives an independent child generator; used to give each
  /// component its own stream from a master seed.
  Rng Fork();

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace craqr
