#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/span.h"

/// \file rng.h
/// \brief Deterministic, seedable random number generation.
///
/// Every stochastic component in CrAQR (operators, simulators, estimators)
/// draws from an `Rng` passed in by the caller, so entire simulations and
/// benchmarks are reproducible from a single seed.

namespace craqr {

/// \brief SplitMix64 finalizer: mixes one word into a well-distributed
/// 64-bit value. The single source of truth for seed-derivation chains
/// (Rng seeding, StreamFabricator::OperatorSeed).
std::uint64_t SplitMix64(std::uint64_t z);

/// \brief Counter-free 64-bit PRNG (xoshiro256**), seeded via SplitMix64.
///
/// Not thread-safe; use one Rng per thread or component.  The generator is
/// hand-rolled (rather than std::mt19937_64) so that streams are identical
/// across standard libraries and platforms.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed. Equal seeds yield equal
  /// streams on all platforms.
  explicit Rng(std::uint64_t seed = 0xC0FFEE123456789ULL);

  /// Returns the next raw 64-bit word. Inline: one draw per tuple is the
  /// innermost cost of the batch-native Thin/Flatten sweeps.
  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Returns a double uniformly distributed in [0, 1).
  double Uniform() {
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Returns a double uniformly distributed in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Returns an integer uniformly distributed in [0, n). Requires n > 0.
  std::uint64_t UniformInt(std::uint64_t n);

  /// \brief The raw-word acceptance threshold of a Bernoulli(p) draw with
  /// 0 < p < 1: `NextU64() < BernoulliThreshold(p)` decides exactly like
  /// the historical `Uniform() < p`.
  ///
  /// Why they are identical: `Uniform()` is `k * 2^-53` with
  /// `k = NextU64() >> 11`, and `k * 2^-53` is exact (k < 2^53 fits a
  /// double mantissa), so `Uniform() < p  <=>  k < p * 2^53  <=>
  /// k < ceil(p * 2^53)` (k integral; `p * 2^53` is itself exact — a pure
  /// exponent shift). Shifting that integer bound back by the 11 discarded
  /// low bits gives a threshold comparable against the raw word:
  /// `k < K  <=>  NextU64() < (K << 11)`. Both the scalar Bernoulli and
  /// the batch FillBernoulliMask sweeps compare through this one
  /// function, so the scalar and vector paths consume the stream — and
  /// decide — identically *by construction* (pinned in
  /// tests/ops_vectorized_test.cc).
  static std::uint64_t BernoulliThreshold(double p) {
    // 2^53 = 9007199254740992; p in (0, 1) keeps K <= 2^53 - 1, so the
    // shift cannot overflow.
    const double bound = std::ceil(p * 9007199254740992.0);
    if (std::isnan(bound)) {
      // NaN p slips past both degenerate guards; casting NaN would be UB.
      // A zero threshold never accepts while the caller still consumes
      // its draw — exactly the historical `Uniform() < NaN` behaviour.
      return 0;
    }
    return static_cast<std::uint64_t>(bound) << 11;
  }

  /// Returns true with probability p (clamped to [0, 1]). Degenerate
  /// probabilities decide without consuming a draw.
  bool Bernoulli(double p) {
    if (p <= 0.0) {
      return false;
    }
    if (p >= 1.0) {
      return true;
    }
    return NextU64() < BernoulliThreshold(p);
  }

  /// \brief Fills `out` with successive `Uniform()` draws — one batch
  /// call in place of a per-row generator call in the hot sweeps. Draw
  /// order is exactly the scalar loop's.
  void FillUniform(Span<double> out);

  /// \brief Fills `mask` with successive Bernoulli(p) decisions
  /// (1 = success), consuming draws exactly as the equivalent scalar loop
  /// would: one `NextU64()` per row for 0 < p < 1, and *zero* draws when
  /// p is degenerate (<= 0 fills zeros, >= 1 fills ones) — matching
  /// `Bernoulli`'s no-draw fast paths row for row. The non-degenerate
  /// sweep is branch-free: one raw word against one precomputed
  /// threshold per row.
  void FillBernoulliMask(double p, Span<std::uint8_t> mask);

  /// \brief Per-row-probability variant: `mask[i]` decides with
  /// `probs[i]`, again consuming draws exactly like a scalar
  /// `Bernoulli(probs[i])` loop (degenerate rows draw nothing). This is
  /// the F operator's batch sweep, where clamped violation rows
  /// (p == 1) must not advance the stream. Requires
  /// `probs.size() == mask.size()`.
  void FillBernoulliMask(Span<const double> probs, Span<std::uint8_t> mask);

  /// Returns a Poisson-distributed count with the given mean >= 0.
  /// Uses Knuth multiplication for small means and the PTRS transformed
  /// rejection method for large means.
  std::uint64_t Poisson(double mean);

  /// Returns an Exponential(rate) variate. Requires rate > 0.
  double Exponential(double rate);

  /// Returns a standard normal variate (Box-Muller with caching).
  double Normal();

  /// Returns a Normal(mean, stddev) variate. Requires stddev >= 0.
  double Normal(double mean, double stddev);

  /// Returns a LogNormal variate whose logarithm is Normal(mu, sigma).
  double LogNormal(double mu, double sigma);

  /// Returns a Pareto(scale, alpha) variate, used for Levy-flight step
  /// lengths. Requires scale > 0 and alpha > 0.
  double Pareto(double scale, double alpha);

  /// \brief Samples k distinct indices from [0, n) without replacement
  /// (Floyd's algorithm). Requires k <= n.
  std::vector<std::uint64_t> SampleWithoutReplacement(std::uint64_t n,
                                                      std::uint64_t k);

  /// \brief Samples k indices from [0, n) with replacement.
  std::vector<std::uint64_t> SampleWithReplacement(std::uint64_t n,
                                                   std::uint64_t k);

  /// \brief Derives an independent child generator; used to give each
  /// component its own stream from a master seed.
  Rng Fork();

  /// \brief The generator's complete mutable state — the four xoshiro
  /// words plus the Box-Muller normal cache. Saving and restoring this
  /// struct resumes the stream exactly where it left off (checkpoint /
  /// restore of live operators).
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };

  /// Captures the current state.
  State Save() const {
    State st;
    st.s[0] = state_[0];
    st.s[1] = state_[1];
    st.s[2] = state_[2];
    st.s[3] = state_[3];
    st.cached_normal = cached_normal_;
    st.has_cached_normal = has_cached_normal_;
    return st;
  }

  /// Overwrites the generator with a previously saved state.
  void Restore(const State& st) {
    state_[0] = st.s[0];
    state_[1] = st.s[1];
    state_[2] = st.s[2];
    state_[3] = st.s[3];
    cached_normal_ = st.cached_normal;
    has_cached_normal_ = st.has_cached_normal;
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace craqr
