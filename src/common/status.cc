#include "common/status.h"

#include <ostream>

namespace craqr {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kFailedPrecondition:
      return "Failed precondition";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message)
    : code_(code), message_(std::move(message)) {}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace craqr
