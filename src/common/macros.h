#pragma once

/// \file macros.h
/// \brief Error-propagation helper macros (Arrow idiom).

#define CRAQR_CONCAT_IMPL(x, y) x##y
#define CRAQR_CONCAT(x, y) CRAQR_CONCAT_IMPL(x, y)

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define CRAQR_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::craqr::Status _craqr_status = (expr);  \
    if (!_craqr_status.ok()) {               \
      return _craqr_status;                  \
    }                                        \
  } while (false)

#define CRAQR_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                \
  if (!result_name.ok()) {                                   \
    return result_name.status();                             \
  }                                                          \
  lhs = result_name.MoveValue()

/// Evaluates `rexpr` (a Result<T> expression); on success assigns the value
/// to `lhs` (which may declare a new variable), on error returns the Status
/// from the enclosing function.
#define CRAQR_ASSIGN_OR_RETURN(lhs, rexpr) \
  CRAQR_ASSIGN_OR_RETURN_IMPL(             \
      CRAQR_CONCAT(_craqr_result_, __LINE__), lhs, rexpr)
