#pragma once

#include <cstddef>

/// \file math.h
/// \brief Hand-coded special functions needed by point-process estimation
/// and goodness-of-fit testing (no external math library dependencies).

namespace craqr {

/// \brief Regularized lower incomplete gamma function P(a, x), a > 0, x >= 0.
///
/// Computed by series expansion for x < a + 1 and by continued fraction
/// otherwise (Numerical Recipes gammp/gammq construction), accurate to about
/// 1e-12 relative error.
double RegularizedGammaP(double a, double x);

/// \brief Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// \brief Survival function of the chi-square distribution with `dof`
/// degrees of freedom evaluated at `x` (i.e. the p-value of a chi-square
/// statistic).
double ChiSquareSurvival(double x, double dof);

/// \brief Survival function of the Kolmogorov distribution,
/// `Q_KS(lambda) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2)`.
///
/// Used to convert a scaled Kolmogorov-Smirnov statistic into a p-value.
double KolmogorovSurvival(double lambda);

/// \brief Standard normal cumulative distribution function.
double NormalCdf(double x);

/// \brief Survival function of the Poisson distribution: P[X >= k] for
/// X ~ Poisson(mean). Exact via the regularized incomplete gamma identity.
double PoissonSurvival(double mean, double k);

/// \brief log(n!) via lgamma.
double LogFactorial(double n);

/// \brief Two-sided p-value for an exact Poisson rate test: observed count
/// `n` against expected mean `mean` (used to sanity-check Thin output
/// rates). Returns min(1, 2 * min(P[X <= n], P[X >= n])).
double PoissonTwoSidedPValue(double mean, double n);

}  // namespace craqr
