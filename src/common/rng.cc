#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

namespace craqr {

std::uint64_t SplitMix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  // Bit-identical to the classic stateful SplitMix64 loop: each word mixes
  // seed + k * golden-gamma.
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
    sm += 0x9E3779B97F4A7C15ULL;
  }
}

void Rng::FillUniform(Span<double> out) {
  for (double& v : out) {
    v = Uniform();
  }
}

void Rng::FillBernoulliMask(double p, Span<std::uint8_t> mask) {
  if (p <= 0.0) {
    for (std::uint8_t& m : mask) {
      m = 0;
    }
    return;
  }
  if (p >= 1.0) {
    for (std::uint8_t& m : mask) {
      m = 1;
    }
    return;
  }
  const std::uint64_t threshold = BernoulliThreshold(p);
  for (std::uint8_t& m : mask) {
    m = static_cast<std::uint8_t>(NextU64() < threshold);
  }
}

void Rng::FillBernoulliMask(Span<const double> probs,
                            Span<std::uint8_t> mask) {
  assert(probs.size() == mask.size());
  const std::size_t n = mask.size();
  for (std::size_t i = 0; i < n; ++i) {
    // The branches mirror the scalar Bernoulli's no-draw fast paths: a
    // degenerate row must not advance the stream or the remaining rows
    // would all decide with shifted draws.
    const double p = probs[i];
    if (p <= 0.0) {
      mask[i] = 0;
    } else if (p >= 1.0) {
      mask[i] = 1;
    } else {
      mask[i] = static_cast<std::uint8_t>(NextU64() < BernoulliThreshold(p));
    }
  }
}

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  assert(n > 0);
  // Rejection to remove modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t v = NextU64();
  while (v >= limit) {
    v = NextU64();
  }
  return v % n;
}

std::uint64_t Rng::Poisson(double mean) {
  assert(mean >= 0.0);
  if (mean <= 0.0) {
    return 0;
  }
  if (mean < 30.0) {
    // Knuth multiplication method.
    const double threshold = std::exp(-mean);
    std::uint64_t k = 0;
    double product = Uniform();
    while (product > threshold) {
      ++k;
      product *= Uniform();
    }
    return k;
  }
  // PTRS transformed-rejection (Hoermann 1993).
  const double b = 0.931 + 2.53 * std::sqrt(mean);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  while (true) {
    const double u = Uniform() - 0.5;
    const double v = Uniform();
    const double us = 0.5 - std::fabs(u);
    const double k = std::floor((2.0 * a / us + b) * u + mean + 0.43);
    if (us >= 0.07 && v <= v_r) {
      return static_cast<std::uint64_t>(k);
    }
    if (k < 0.0 || (us < 0.013 && v > us)) {
      continue;
    }
    if (std::log(v * inv_alpha / (a / (us * us) + b)) <=
        k * std::log(mean) - mean - std::lgamma(k + 1.0)) {
      return static_cast<std::uint64_t>(k);
    }
  }
}

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  double u = Uniform();
  // Uniform() can return 0; avoid log(0).
  while (u <= 0.0) {
    u = Uniform();
  }
  return -std::log(u) / rate;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = Uniform();
  while (u1 <= 0.0) {
    u1 = Uniform();
  }
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  assert(stddev >= 0.0);
  return mean + stddev * Normal();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::Pareto(double scale, double alpha) {
  assert(scale > 0.0 && alpha > 0.0);
  double u = Uniform();
  while (u <= 0.0) {
    u = Uniform();
  }
  return scale / std::pow(u, 1.0 / alpha);
}

std::vector<std::uint64_t> Rng::SampleWithoutReplacement(std::uint64_t n,
                                                         std::uint64_t k) {
  assert(k <= n);
  // Floyd's algorithm: O(k) expected draws, O(k) memory.
  std::unordered_set<std::uint64_t> chosen;
  std::vector<std::uint64_t> out;
  out.reserve(k);
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = UniformInt(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

std::vector<std::uint64_t> Rng::SampleWithReplacement(std::uint64_t n,
                                                      std::uint64_t k) {
  assert(n > 0);
  std::vector<std::uint64_t> out;
  out.reserve(k);
  for (std::uint64_t i = 0; i < k; ++i) {
    out.push_back(UniformInt(n));
  }
  return out;
}

Rng Rng::Fork() {
  return Rng(NextU64());
}

}  // namespace craqr
