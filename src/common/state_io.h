#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "common/macros.h"
#include "common/status.h"

/// \file state_io.h
/// \brief Minimal bounds-checked byte serialization for operator-state
/// checkpoints (runtime::ShardedFabricator::Checkpoint).
///
/// The format is deliberately dumb: little-endian fixed-width integers,
/// IEEE doubles by bit pattern, and length-prefixed strings appended to a
/// growing std::string. Every reader call is bounds-checked and returns a
/// Status instead of reading past the end, so a truncated or corrupted
/// snapshot surfaces as OutOfRange rather than undefined behaviour.
///
/// Writer and reader optionally carry the `ops::ValuePool` the serialized
/// state's string payloads live in (set_value_pool). Batch serde
/// (ops/state_serde.h) uses it to write interned strings by value and
/// re-intern on read, making snapshots process-independent and safe across
/// pool generation retirement; a null pool means ValuePool::Global().

namespace craqr {

namespace ops {
class ValuePool;
}  // namespace ops

/// \brief Appends fixed-width scalars and length-prefixed blobs to an
/// in-memory byte string.
class StateWriter {
 public:
  void WriteU8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }

  void WriteU32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
    }
  }

  void WriteU64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
    }
  }

  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  void WriteDouble(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    WriteU64(bits);
  }

  void WriteString(const std::string& s) {
    WriteU64(s.size());
    bytes_.append(s);
  }

  const std::string& bytes() const { return bytes_; }
  std::string TakeBytes() { return std::move(bytes_); }

  /// Pool the serialized string payloads resolve in (null = Global()).
  void set_value_pool(ops::ValuePool* pool) { value_pool_ = pool; }
  ops::ValuePool* value_pool() const { return value_pool_; }

 private:
  std::string bytes_;
  ops::ValuePool* value_pool_ = nullptr;
};

/// \brief Bounds-checked reader over a byte string written by StateWriter.
class StateReader {
 public:
  explicit StateReader(const std::string& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  StateReader(const char* data, std::size_t size)
      : data_(data), size_(size) {}

  Status ReadU8(std::uint8_t* out) {
    CRAQR_RETURN_NOT_OK(Need(1));
    *out = static_cast<std::uint8_t>(data_[pos_++]);
    return Status::OK();
  }

  Status ReadU32(std::uint32_t* out) {
    CRAQR_RETURN_NOT_OK(Need(4));
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  Status ReadU64(std::uint64_t* out) {
    CRAQR_RETURN_NOT_OK(Need(8));
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return Status::OK();
  }

  Status ReadBool(bool* out) {
    std::uint8_t v = 0;
    CRAQR_RETURN_NOT_OK(ReadU8(&v));
    *out = v != 0;
    return Status::OK();
  }

  Status ReadDouble(double* out) {
    std::uint64_t bits = 0;
    CRAQR_RETURN_NOT_OK(ReadU64(&bits));
    std::memcpy(out, &bits, sizeof(*out));
    return Status::OK();
  }

  Status ReadString(std::string* out) {
    std::uint64_t n = 0;
    CRAQR_RETURN_NOT_OK(ReadU64(&n));
    CRAQR_RETURN_NOT_OK(Need(n));
    out->assign(data_ + pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return Status::OK();
  }

  /// Bytes not yet consumed.
  std::size_t remaining() const { return size_ - pos_; }

  /// Pool to re-intern string payloads into (null = Global()).
  void set_value_pool(ops::ValuePool* pool) { value_pool_ = pool; }
  ops::ValuePool* value_pool() const { return value_pool_; }

 private:
  Status Need(std::uint64_t n) {
    if (n > size_ - pos_) {
      return Status::OutOfRange("checkpoint truncated: need " +
                                std::to_string(n) + " bytes, have " +
                                std::to_string(size_ - pos_));
    }
    return Status::OK();
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  ops::ValuePool* value_pool_ = nullptr;
};

}  // namespace craqr
