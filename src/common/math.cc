#include "common/math.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace craqr {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-14;
constexpr double kTiny = 1e-300;

// Series representation of P(a, x); converges quickly for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double term = sum;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) {
      break;
    }
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued-fraction representation of Q(a, x); converges for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) {
      d = kTiny;
    }
    c = b + an / c;
    if (std::fabs(c) < kTiny) {
      c = kTiny;
    }
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) {
      break;
    }
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  assert(a > 0.0);
  if (x <= 0.0) {
    return 0.0;
  }
  if (x < a + 1.0) {
    return GammaPSeries(a, x);
  }
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  assert(a > 0.0);
  if (x <= 0.0) {
    return 1.0;
  }
  if (x < a + 1.0) {
    return 1.0 - GammaPSeries(a, x);
  }
  return GammaQContinuedFraction(a, x);
}

double ChiSquareSurvival(double x, double dof) {
  assert(dof > 0.0);
  if (x <= 0.0) {
    return 1.0;
  }
  return RegularizedGammaQ(dof / 2.0, x / 2.0);
}

double KolmogorovSurvival(double lambda) {
  if (lambda <= 0.0) {
    return 1.0;
  }
  double sum = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += sign * term;
    if (term < 1e-16) {
      break;
    }
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

double NormalCdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double PoissonSurvival(double mean, double k) {
  if (k <= 0.0) {
    return 1.0;
  }
  if (mean <= 0.0) {
    return 0.0;
  }
  // P[X >= k] = P(k, mean) for integer k >= 1 (regularized lower gamma).
  return RegularizedGammaP(k, mean);
}

double LogFactorial(double n) {
  assert(n >= 0.0);
  return std::lgamma(n + 1.0);
}

double PoissonTwoSidedPValue(double mean, double n) {
  if (mean <= 0.0) {
    return n <= 0.0 ? 1.0 : 0.0;
  }
  // P[X <= n] = Q(n + 1, mean); P[X >= n] = P(n, mean) for n >= 1.
  const double lower = RegularizedGammaQ(n + 1.0, mean);
  const double upper = n <= 0.0 ? 1.0 : RegularizedGammaP(n, mean);
  return std::min(1.0, 2.0 * std::min(lower, upper));
}

}  // namespace craqr
