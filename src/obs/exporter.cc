#include "obs/exporter.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/macros.h"
#include "obs/metrics.h"

namespace craqr {
namespace obs {

namespace {

Status WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open metrics output file " + path);
  }
  const std::size_t written =
      std::fwrite(contents.data(), 1, contents.size(), f);
  std::fclose(f);
  if (written != contents.size()) {
    return Status::Internal("short write to metrics output file " + path);
  }
  return Status::OK();
}

/// Live-exporter registry backing MetricsExporter::FlushAll. Leaky
/// function-local statics: FlushAll may run during process teardown
/// (terminate handlers), after file-scope destructors.
std::mutex& LiveExportersMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

std::vector<MetricsExporter*>& LiveExporters() {
  static std::vector<MetricsExporter*>* live =
      new std::vector<MetricsExporter*>;
  return *live;
}

void RegisterLiveExporter(MetricsExporter* exporter) {
  std::lock_guard<std::mutex> lock(LiveExportersMutex());
  LiveExporters().push_back(exporter);
}

void UnregisterLiveExporter(MetricsExporter* exporter) {
  std::lock_guard<std::mutex> lock(LiveExportersMutex());
  auto& live = LiveExporters();
  live.erase(std::remove(live.begin(), live.end(), exporter), live.end());
}

}  // namespace

Result<std::unique_ptr<MetricsExporter>> MetricsExporter::Start(
    ExporterOptions options) {
  if (options.json_path.empty() && options.prometheus_path.empty()) {
    return Status::InvalidArgument(
        "exporter needs a json_path or a prometheus_path");
  }
  if (!(options.interval_seconds > 0.0)) {
    return Status::InvalidArgument("exporter interval must be > 0");
  }
  auto exporter = std::unique_ptr<MetricsExporter>(
      new MetricsExporter(std::move(options)));
  // Fail fast on an unwritable path before spawning the thread.
  CRAQR_RETURN_NOT_OK(exporter->WriteCycle());
  {
    std::lock_guard<std::mutex> lock(exporter->mu_);
    exporter->written_ = 1;
  }
  MetricsExporter* raw = exporter.get();
  RegisterLiveExporter(raw);
  exporter->sampler_ = std::thread([raw] { raw->Loop(); });
  return exporter;
}

MetricsExporter::~MetricsExporter() { Stop(); }

void MetricsExporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return;
    }
    stop_ = true;
  }
  // Out of FlushAll's reach before the join: a flusher must never touch an
  // exporter whose destructor is already unwinding.
  UnregisterLiveExporter(this);
  cv_.notify_all();
  if (sampler_.joinable()) {
    sampler_.join();
  }
  // Final snapshot so the files reflect the run's end state even when the
  // last interval tick never fired.
  if (WriteCycle().ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++written_;
  }
}

std::uint64_t MetricsExporter::snapshots_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return written_;
}

void MetricsExporter::FlushAll() {
  std::lock_guard<std::mutex> registry_lock(LiveExportersMutex());
  for (MetricsExporter* exporter : LiveExporters()) {
    if (exporter->WriteCycle().ok()) {
      std::lock_guard<std::mutex> lock(exporter->mu_);
      ++exporter->written_;
    }
  }
}

Status MetricsExporter::WriteJsonSnapshot(const std::string& path,
                                          std::size_t bank_top_k) {
  return WriteFile(path, SnapshotJson(bank_top_k));
}

Status MetricsExporter::WritePrometheusSnapshot(const std::string& path,
                                                std::size_t bank_top_k) {
  return WriteFile(path, SnapshotPrometheus(bank_top_k));
}

Status MetricsExporter::WriteCycle() {
  std::lock_guard<std::mutex> lock(write_mu_);
  if (!options_.json_path.empty()) {
    CRAQR_RETURN_NOT_OK(
        WriteFile(options_.json_path, SnapshotJson(options_.bank_top_k)));
  }
  if (!options_.prometheus_path.empty()) {
    CRAQR_RETURN_NOT_OK(WriteFile(options_.prometheus_path,
                                  SnapshotPrometheus(options_.bank_top_k)));
  }
  return Status::OK();
}

void MetricsExporter::Loop() {
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(options_.interval_seconds));
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, interval, [this] { return stop_; })) {
      return;  // Stop() writes the final snapshot after the join
    }
    lock.unlock();
    const bool ok = WriteCycle().ok();
    lock.lock();
    if (ok) {
      ++written_;
    }
  }
}

}  // namespace obs
}  // namespace craqr
