#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"

/// \file metrics.h
/// \brief Process-wide observability registry: lock-free counters, gauges,
/// log-scale latency histograms and dense per-cell counter banks.
///
/// Design goals, in order:
///   1. **Hot-path cost.** A write is one relaxed atomic add (two for a
///      histogram: bucket + sum), no lock, no allocation, no branch beyond
///      the enable check. Metric objects are looked up once (at
///      construction / first touch) and cached as raw pointers; the
///      registry guarantees pointer stability for the process lifetime
///      (entries live in deques and are never destroyed or moved).
///   2. **Observation only.** Nothing in this subsystem feeds back into
///      execution: disabling it (runtime SetEnabled(false) or compile-time
///      -DCRAQR_OBS_DISABLED) must leave every delivered stream
///      byte-identical. Timestamps come from the steady clock and never
///      influence control flow.
///   3. **One source of truth.** The runtime's functional load counters
///      (ShardLoadStats) read the same registry counters the exporter
///      snapshots, so the two can never disagree.
///
/// Naming scheme (dotted, lowercase; Prometheus export substitutes '_'):
///   craqr.ops.<Kind>.{evaluations,tuples_in}    per-operator-kind counters
///   craqr.ops.<Kind>.batch_size                 per-dispatch batch sizes
///   craqr.rt<id>.shard<i>.{tuples,batches}_{enqueued,processed}
///   craqr.rt<id>.shard<i>.{queue_wait_ns,process_ns,batch_latency_ns}
///   craqr.rt<id>.router.{enqueue_ns,drain_wait_ns}
///   craqr.engine.phase.{world,handler,drain,dispatch}_ns
///   craqr.fabric.cell_routed.h<num_cells>       per-flat-cell counter bank
/// `rt<id>` is a per-runtime instance scope (monotone id) so several
/// runtimes in one process never alias each other's load counters.

namespace craqr {
namespace obs {

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// \brief Runtime enable switch for the *gated* instrumentation (per-kind
/// operator metrics, latency histograms, per-cell bank, trace rings).
/// Functional counters that feed ShardLoadStats are never gated. Defaults
/// to enabled. With -DCRAQR_OBS_DISABLED the gated paths compile out and
/// IsEnabled() is constant false.
#ifdef CRAQR_OBS_DISABLED
inline bool IsEnabled() { return false; }
inline void SetEnabled(bool) {}
#else
inline bool IsEnabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
inline void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}
#endif

/// Steady-clock timestamp in nanoseconds (monotone within the process).
inline std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// \brief Monotone event counter. Writes are one relaxed fetch_add;
/// cache-line aligned so unrelated counters never false-share.
class Counter {
 public:
  void Add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  alignas(64) std::atomic<std::uint64_t> value_{0};
};

/// \brief Last-write-wins signed level (queue depths, byte footprints).
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  alignas(64) std::atomic<std::int64_t> value_{0};
};

/// \brief Point-in-time view of a LogHistogram with derived statistics.
struct HistogramSnapshot {
  static constexpr std::size_t kNumBuckets = 65;

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  /// Exact largest recorded value (0 when empty).
  std::uint64_t max = 0;
  std::array<std::uint64_t, kNumBuckets> buckets{};

  /// Exact mean (sum / count); 0 when empty.
  double Mean() const;
  /// Quantile estimate from the cumulative bucket walk: the upper bound of
  /// the bucket containing rank ceil(q * count), clamped to the exact max
  /// (so Quantile(1.0) == max). 0 when empty. `q` in [0, 1].
  double Quantile(double q) const;
  /// Folds the buckets into a RunningStats (one weighted insert per
  /// non-empty bucket at its representative value) for mean/variance in
  /// the common/stats.h vocabulary. Bucket-resolution approximation.
  RunningStats ToRunningStats() const;
};

/// \brief Fixed-bucket log2-scale histogram for latency-style values.
///
/// Bucket 0 holds the exact value 0; bucket i >= 1 holds [2^(i-1), 2^i).
/// 65 buckets cover the full uint64 range, so Record never clamps. A
/// record is two relaxed adds (bucket + sum) plus a CAS loop that almost
/// always short-circuits (running max). p50/p95/p99 derive from the
/// buckets at snapshot time; mean is exact (sum / count).
class LogHistogram {
 public:
  static constexpr std::size_t kNumBuckets = HistogramSnapshot::kNumBuckets;

  /// Bucket index for a value: 0 for 0, otherwise bit_width(value).
  static std::size_t BucketFor(std::uint64_t value) {
    if (value == 0) {
      return 0;
    }
    return static_cast<std::size_t>(64 - __builtin_clzll(value));
  }

  /// Largest value bucket `i` can hold (inclusive).
  static std::uint64_t BucketUpperBound(std::size_t i) {
    if (i == 0) {
      return 0;
    }
    if (i >= 64) {
      return ~static_cast<std::uint64_t>(0);
    }
    return (static_cast<std::uint64_t>(1) << i) - 1;
  }

  void Record(std::uint64_t value) {
    buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (value > prev && !max_.compare_exchange_weak(
                               prev, value, std::memory_order_relaxed)) {
    }
  }

  /// Coherent-enough view for reporting: buckets are read individually
  /// (relaxed), so a snapshot taken while writers are active may be off by
  /// the writes in flight; taken at a quiescent point it is exact.
  HistogramSnapshot Snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  alignas(64) std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// \brief A dense indexed array of counters under one name — the per-cell
/// hot-spot signal (one slot per flat grid cell). Out-of-range indices are
/// ignored (the router's sentinel bucket).
class CounterBank {
 public:
  CounterBank(std::string name, std::size_t size)
      : name_(std::move(name)), slots_(size) {}

  void Add(std::size_t index, std::uint64_t n) {
    if (index < slots_.size()) {
      slots_[index].fetch_add(n, std::memory_order_relaxed);
    }
  }

  std::size_t size() const { return slots_.size(); }
  const std::string& name() const { return name_; }
  std::uint64_t value(std::size_t index) const {
    return index < slots_.size()
               ? slots_[index].load(std::memory_order_relaxed)
               : 0;
  }
  std::uint64_t Total() const;
  /// The `k` largest slots as (index, count), descending by count then
  /// ascending by index; empty slots excluded.
  std::vector<std::pair<std::size_t, std::uint64_t>> TopK(
      std::size_t k) const;

 private:
  std::string name_;
  std::vector<std::atomic<std::uint64_t>> slots_;
};

/// \brief Process-wide get-or-create metric registry.
///
/// Entries are owned by deques and never destroyed, so the returned raw
/// pointers stay valid for the process lifetime — instrumented objects
/// (shards, operators) cache them once and write lock-free forever after.
/// Lookups take a mutex; do them at construction, not per event.
class Registry {
 public:
  static Registry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LogHistogram* GetHistogram(const std::string& name);
  /// Get-or-create a bank with at least `size` slots. A pre-existing
  /// smaller bank under the same name is replaced (the old storage stays
  /// alive for pointer stability; its counts are not carried over).
  CounterBank* GetCounterBank(const std::string& name, std::size_t size);

  /// Monotone per-process instance ids for runtime metric scoping
  /// ("craqr.rt<id>"); see the file comment.
  std::uint64_t NextInstanceId() {
    return next_instance_.fetch_add(1, std::memory_order_relaxed);
  }

  /// \brief One JSON object over everything registered, sorted by name:
  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  /// sum, mean, stddev, p50, p95, p99, max, buckets: [[le, n], ...]}},
  /// "banks": {name: {size, total, top: [[index, n], ...]}}}. `bank_top_k`
  /// bounds the per-bank top list.
  std::string SnapshotJson(std::size_t bank_top_k = 16) const;

  /// \brief Prometheus-style text exposition ('.' -> '_' in names):
  /// counters/gauges one line each, histograms as <name>_bucket{le="..."}
  /// cumulative lines plus _sum/_count, banks as <name>_total plus the
  /// top-k slots labelled {cell="<index>"}.
  std::string SnapshotPrometheus(std::size_t bank_top_k = 16) const;

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::deque<Counter> counters_;
  std::map<std::string, Counter*> counters_by_name_;
  std::deque<Gauge> gauges_;
  std::map<std::string, Gauge*> gauges_by_name_;
  std::deque<LogHistogram> histograms_;
  std::map<std::string, LogHistogram*> histograms_by_name_;
  std::deque<CounterBank> banks_;
  std::map<std::string, CounterBank*> banks_by_name_;
  std::atomic<std::uint64_t> next_instance_{0};
};

/// Convenience forwarders to Registry::Global().
inline Counter* GetCounter(const std::string& name) {
  return Registry::Global().GetCounter(name);
}
inline Gauge* GetGauge(const std::string& name) {
  return Registry::Global().GetGauge(name);
}
inline LogHistogram* GetHistogram(const std::string& name) {
  return Registry::Global().GetHistogram(name);
}
inline CounterBank* GetCounterBank(const std::string& name,
                                   std::size_t size) {
  return Registry::Global().GetCounterBank(name, size);
}

/// Registry::Global().SnapshotJson() — the one-call export surface.
std::string SnapshotJson(std::size_t bank_top_k = 16);

/// Registry::Global().SnapshotPrometheus().
std::string SnapshotPrometheus(std::size_t bank_top_k = 16);

}  // namespace obs
}  // namespace craqr
