#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"

/// \file trace.h
/// \brief Bounded span-event trace rings with Chrome-tracing export.
///
/// A TraceRing holds the most recent `capacity` span events (epoch, phase,
/// start, end, tuples) for one timeline — one ring per shard worker, one
/// for the router, one for the engine step loop. Recording is a mutex push
/// into a preallocated ring slot (per-batch / per-phase frequency, never
/// per-tuple), and old events are overwritten when the ring wraps, so a
/// long run keeps a bounded tail of its recent history.
///
/// Rings are created through Tracer::Global() and, like registry metrics,
/// live for the process lifetime (stable pointers). Creation is gated by
/// EngineConfig::trace_capacity / ShardedConfig::trace_capacity (0 = no
/// ring, zero cost); recording additionally honours obs::IsEnabled().
///
/// Tracer::DumpChromeTrace emits the JSON-array flavour of the Chrome
/// tracing format (one "X" complete event per span, microsecond units,
/// one tid per ring named via "M" metadata events) — loadable in
/// chrome://tracing and Perfetto.

namespace craqr {
namespace obs {

/// \brief One span: a phase executed during an epoch.
struct TraceEvent {
  const char* phase = "";  ///< static-storage label ("process", "drain"...)
  std::uint64_t epoch = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t tuples = 0;
};

/// \brief Fixed-capacity ring of TraceEvents for one timeline.
class TraceRing {
 public:
  TraceRing(std::string name, std::size_t capacity)
      : name_(std::move(name)), events_(capacity) {}

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Appends a span, overwriting the oldest when full. No-op when the
  /// runtime switch is off (obs::SetEnabled(false)).
  void Record(const char* phase, std::uint64_t epoch, std::uint64_t start_ns,
              std::uint64_t end_ns, std::uint64_t tuples);

  /// The retained events, oldest first.
  std::vector<TraceEvent> SnapshotOrdered() const;

  const std::string& name() const { return name_; }
  std::size_t capacity() const { return events_.size(); }
  /// Events ever recorded (>= capacity() means the ring has wrapped).
  std::uint64_t recorded() const;

 private:
  std::string name_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::uint64_t recorded_ = 0;
};

/// \brief Process-wide owner of every trace ring.
class Tracer {
 public:
  static Tracer& Global();

  /// Creates a ring (names may repeat across runtime instances; each ring
  /// gets its own trace tid). Returns nullptr when capacity == 0 — the
  /// "tracing off" value callers store and test before recording.
  TraceRing* CreateRing(const std::string& name, std::size_t capacity);

  /// All events from all rings as one Chrome-tracing JSON array.
  std::string ChromeTraceJson() const;

  /// Writes ChromeTraceJson() to `path`.
  Status DumpChromeTrace(const std::string& path) const;

 private:
  Tracer() = default;

  mutable std::mutex mu_;
  std::deque<TraceRing> rings_;
};

}  // namespace obs
}  // namespace craqr
