#include "obs/trace.h"

#include <cstdio>
#include <sstream>

#include "obs/metrics.h"

namespace craqr {
namespace obs {

void TraceRing::Record(const char* phase, std::uint64_t epoch,
                       std::uint64_t start_ns, std::uint64_t end_ns,
                       std::uint64_t tuples) {
  if (events_.empty() || !IsEnabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent& slot = events_[recorded_ % events_.size()];
  slot.phase = phase;
  slot.epoch = epoch;
  slot.start_ns = start_ns;
  slot.end_ns = end_ns;
  slot.tuples = tuples;
  ++recorded_;
}

std::vector<TraceEvent> TraceRing::SnapshotOrdered() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  if (events_.empty()) {
    return out;
  }
  const std::uint64_t held =
      recorded_ < events_.size() ? recorded_ : events_.size();
  out.reserve(held);
  // Oldest retained event sits at recorded_ % capacity once wrapped.
  const std::uint64_t begin = recorded_ - held;
  for (std::uint64_t i = 0; i < held; ++i) {
    out.push_back(events_[(begin + i) % events_.size()]);
  }
  return out;
}

std::uint64_t TraceRing::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // never destroyed
  return *tracer;
}

TraceRing* Tracer::CreateRing(const std::string& name,
                              std::size_t capacity) {
  if (capacity == 0) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mu_);
  rings_.emplace_back(name, capacity);
  return &rings_.back();
}

std::string Tracer::ChromeTraceJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "[\n";
  bool first = true;
  std::size_t tid = 0;
  for (const TraceRing& ring : rings_) {
    // Thread-name metadata event so each ring shows up as its own named
    // track in chrome://tracing / Perfetto.
    os << (first ? "" : ",\n")
       << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
          "\"tid\": "
       << tid << ", \"args\": {\"name\": \"" << ring.name() << "\"}}";
    first = false;
    for (const TraceEvent& e : ring.SnapshotOrdered()) {
      // Complete ("X") events; timestamps and durations in microseconds.
      os << ",\n  {\"name\": \"" << e.phase
         << "\", \"ph\": \"X\", \"pid\": 0, \"tid\": " << tid
         << ", \"ts\": " << static_cast<double>(e.start_ns) / 1000.0
         << ", \"dur\": "
         << static_cast<double>(e.end_ns - e.start_ns) / 1000.0
         << ", \"args\": {\"epoch\": " << e.epoch
         << ", \"tuples\": " << e.tuples << "}}";
    }
    ++tid;
  }
  os << "\n]\n";
  return os.str();
}

Status Tracer::DumpChromeTrace(const std::string& path) const {
  const std::string json = ChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace output file " + path);
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal("short write to trace output file " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace craqr
