#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/result.h"

/// \file exporter.h
/// \brief Periodic file export of the metrics registry.
///
/// A MetricsExporter runs one low-priority sampler thread that wakes on an
/// interval, snapshots obs::Registry::Global() and rewrites the configured
/// output files (JSON and/or Prometheus text exposition). The sampler only
/// reads relaxed atomics — it never blocks or perturbs the instrumented
/// threads. Stop() (and the destructor) writes one final snapshot so the
/// files always reflect the end state of the run.
///
/// One-shot exports without a thread: WriteJsonSnapshot /
/// WritePrometheusSnapshot.

namespace craqr {
namespace obs {

/// \brief Exporter parameters; at least one path must be set.
struct ExporterOptions {
  /// Destination for obs::SnapshotJson(); empty = skip.
  std::string json_path;
  /// Destination for obs::SnapshotPrometheus(); empty = skip.
  std::string prometheus_path;
  /// Seconds between snapshots (> 0).
  double interval_seconds = 1.0;
  /// Per-CounterBank top-K bound in both formats.
  std::size_t bank_top_k = 16;
};

/// \brief Background sampler writing periodic registry snapshots to files.
class MetricsExporter {
 public:
  /// Starts the sampler thread (one immediate snapshot, then one per
  /// interval).
  static Result<std::unique_ptr<MetricsExporter>> Start(
      ExporterOptions options);

  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Joins the sampler after one final snapshot; idempotent.
  void Stop();

  /// Snapshots written so far (across both formats a cycle counts once).
  std::uint64_t snapshots_written() const;

  /// \brief Writes one final snapshot for every live exporter in the
  /// process without stopping any of them — the abnormal-teardown escape
  /// hatch. A run that dies on an engine error (or a fault-injection
  /// crash) may never unwind to the exporter's destructor; the engine's
  /// failure paths call this so the output files still reflect the
  /// registry at the moment of death instead of the last interval tick.
  /// Safe from any thread; exporters mid-Stop() are skipped.
  static void FlushAll();

  /// One-shot: write the current registry JSON snapshot to `path`.
  static Status WriteJsonSnapshot(const std::string& path,
                                  std::size_t bank_top_k = 16);

  /// One-shot: write the current Prometheus exposition to `path`.
  static Status WritePrometheusSnapshot(const std::string& path,
                                        std::size_t bank_top_k = 16);

 private:
  explicit MetricsExporter(ExporterOptions options)
      : options_(std::move(options)) {}

  Status WriteCycle();
  void Loop();

  ExporterOptions options_;
  std::thread sampler_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::uint64_t written_ = 0;
  /// Serializes file writes: the sampler thread and FlushAll() may race,
  /// and two interleaved rewrites of the same file would corrupt it.
  std::mutex write_mu_;
};

}  // namespace obs
}  // namespace craqr
