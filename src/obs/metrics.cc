#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace craqr {
namespace obs {

namespace internal {
std::atomic<bool> g_enabled{true};
}  // namespace internal

double HistogramSnapshot::Mean() const {
  return count == 0 ? 0.0
                    : static_cast<double>(sum) / static_cast<double>(count);
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) {
    return 0.0;
  }
  q = std::min(1.0, std::max(0.0, q));
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      const std::uint64_t ub = LogHistogram::BucketUpperBound(i);
      return static_cast<double>(std::min(ub, max));
    }
  }
  return static_cast<double>(max);
}

RunningStats HistogramSnapshot::ToRunningStats() const {
  RunningStats stats;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets[i] == 0) {
      continue;
    }
    // Representative value: 0 for the zero bucket, otherwise the bucket
    // midpoint (lower + upper) / 2 — a bucket-resolution approximation.
    double rep = 0.0;
    if (i > 0) {
      const double lo = static_cast<double>(
          static_cast<std::uint64_t>(1) << (i - 1));
      const double hi =
          static_cast<double>(LogHistogram::BucketUpperBound(i));
      rep = (lo + hi) / 2.0;
    }
    stats.AddWeighted(rep, buckets[i]);
  }
  return stats;
}

HistogramSnapshot LogHistogram::Snapshot() const {
  HistogramSnapshot snap;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

std::uint64_t CounterBank::Total() const {
  std::uint64_t total = 0;
  for (const auto& slot : slots_) {
    total += slot.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<std::pair<std::size_t, std::uint64_t>> CounterBank::TopK(
    std::size_t k) const {
  std::vector<std::pair<std::size_t, std::uint64_t>> nonzero;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const std::uint64_t v = slots_[i].load(std::memory_order_relaxed);
    if (v > 0) {
      nonzero.emplace_back(i, v);
    }
  }
  const std::size_t take = std::min(k, nonzero.size());
  std::partial_sort(nonzero.begin(), nonzero.begin() + take, nonzero.end(),
                    [](const auto& a, const auto& b) {
                      if (a.second != b.second) {
                        return a.second > b.second;
                      }
                      return a.first < b.first;
                    });
  nonzero.resize(take);
  return nonzero;
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // never destroyed
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_by_name_.find(name);
  if (it == counters_by_name_.end()) {
    counters_.emplace_back();
    it = counters_by_name_.emplace(name, &counters_.back()).first;
  }
  return it->second;
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_by_name_.find(name);
  if (it == gauges_by_name_.end()) {
    gauges_.emplace_back();
    it = gauges_by_name_.emplace(name, &gauges_.back()).first;
  }
  return it->second;
}

LogHistogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_by_name_.find(name);
  if (it == histograms_by_name_.end()) {
    histograms_.emplace_back();
    it = histograms_by_name_.emplace(name, &histograms_.back()).first;
  }
  return it->second;
}

CounterBank* Registry::GetCounterBank(const std::string& name,
                                      std::size_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = banks_by_name_.find(name);
  if (it != banks_by_name_.end() && it->second->size() >= size) {
    return it->second;
  }
  banks_.emplace_back(name, size);
  CounterBank* bank = &banks_.back();
  banks_by_name_[name] = bank;  // old (smaller) bank stays alive unlisted
  return bank;
}

namespace {

// Formats a double for JSON: finite, shortest-ish representation.
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) {
    return "0";
  }
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

// Prometheus metric names allow [a-zA-Z0-9_:] only.
std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) {
      c = '_';
    }
  }
  return out;
}

void AppendHistogramJson(std::ostringstream& os, const std::string& name,
                         const HistogramSnapshot& snap) {
  const RunningStats approx = snap.ToRunningStats();
  os << "\"" << name << "\": {\"count\": " << snap.count
     << ", \"sum\": " << snap.sum
     << ", \"mean\": " << JsonNumber(snap.Mean())
     << ", \"stddev\": " << JsonNumber(approx.Stddev())
     << ", \"p50\": " << JsonNumber(snap.Quantile(0.5))
     << ", \"p95\": " << JsonNumber(snap.Quantile(0.95))
     << ", \"p99\": " << JsonNumber(snap.Quantile(0.99))
     << ", \"max\": " << snap.max << ", \"buckets\": [";
  bool first = true;
  for (std::size_t i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
    if (snap.buckets[i] == 0) {
      continue;
    }
    if (!first) {
      os << ", ";
    }
    first = false;
    os << "[" << LogHistogram::BucketUpperBound(i) << ", "
       << snap.buckets[i] << "]";
  }
  os << "]}";
}

}  // namespace

std::string Registry::SnapshotJson(std::size_t bank_top_k) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_by_name_) {
    os << (first ? "" : ", ") << "\"" << name << "\": " << counter->value();
    first = false;
  }
  os << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_by_name_) {
    os << (first ? "" : ", ") << "\"" << name << "\": " << gauge->value();
    first = false;
  }
  os << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_by_name_) {
    os << (first ? "" : ",") << "\n    ";
    AppendHistogramJson(os, name, histogram->Snapshot());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"banks\": {";
  first = true;
  for (const auto& [name, bank] : banks_by_name_) {
    os << (first ? "" : ",") << "\n    \"" << name
       << "\": {\"size\": " << bank->size()
       << ", \"total\": " << bank->Total() << ", \"top\": [";
    const auto top = bank->TopK(bank_top_k);
    for (std::size_t i = 0; i < top.size(); ++i) {
      os << (i == 0 ? "" : ", ") << "[" << top[i].first << ", "
         << top[i].second << "]";
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

std::string Registry::SnapshotPrometheus(std::size_t bank_top_k) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, counter] : counters_by_name_) {
    const std::string pname = PromName(name);
    os << "# TYPE " << pname << " counter\n"
       << pname << " " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_by_name_) {
    const std::string pname = PromName(name);
    os << "# TYPE " << pname << " gauge\n"
       << pname << " " << gauge->value() << "\n";
  }
  for (const auto& [name, histogram] : histograms_by_name_) {
    const std::string pname = PromName(name);
    const HistogramSnapshot snap = histogram->Snapshot();
    os << "# TYPE " << pname << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < HistogramSnapshot::kNumBuckets; ++i) {
      if (snap.buckets[i] == 0) {
        continue;
      }
      cumulative += snap.buckets[i];
      os << pname << "_bucket{le=\"" << LogHistogram::BucketUpperBound(i)
         << "\"} " << cumulative << "\n";
    }
    os << pname << "_bucket{le=\"+Inf\"} " << snap.count << "\n"
       << pname << "_sum " << snap.sum << "\n"
       << pname << "_count " << snap.count << "\n";
  }
  for (const auto& [name, bank] : banks_by_name_) {
    const std::string pname = PromName(name);
    os << "# TYPE " << pname << " counter\n"
       << pname << "_total " << bank->Total() << "\n";
    for (const auto& [index, value] : bank->TopK(bank_top_k)) {
      os << pname << "{cell=\"" << index << "\"} " << value << "\n";
    }
  }
  return os.str();
}

std::string SnapshotJson(std::size_t bank_top_k) {
  return Registry::Global().SnapshotJson(bank_top_k);
}

std::string SnapshotPrometheus(std::size_t bank_top_k) {
  return Registry::Global().SnapshotPrometheus(bank_top_k);
}

}  // namespace obs
}  // namespace craqr
