#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "fabric/fabricator.h"
#include "ops/operator.h"

/// \file cost.h
/// \brief Operator cost model — the paper's "Query optimization" extension
/// (Section VI): "We should define the cost of processing a single query,
/// and prepare an execution topology that minimizes this cost."
///
/// Costs are abstract units per tuple evaluation, differentiated by
/// operator kind (an F evaluation runs estimation work; a T evaluation is
/// one coin toss). The report prices an entire fabricator topology from
/// its observed per-operator evaluation counters, enabling apples-to-
/// apples comparison of alternative topologies (e.g. shared vs naive).

namespace craqr {
namespace engine {

/// \brief Per-evaluation cost of each operator kind (abstract units).
struct OperatorCosts {
  double flatten = 8.0;      ///< estimation + retaining-probability work
  double thin = 1.0;         ///< one Bernoulli draw
  double partition = 1.5;    ///< region lookups
  double union_merge = 0.5;  ///< pass-through with region check
  double superpose = 0.5;
  double filter = 1.0;
  double map = 1.0;
  double monitor = 0.5;
  double sink = 0.5;
  double pass_through = 0.25;

  /// Cost for one evaluation of an operator of `kind`.
  double CostOf(ops::OperatorKind kind) const;
};

/// \brief Priced summary of a topology.
struct TopologyCostReport {
  /// Sum over operators of evaluations * per-kind cost.
  double total_cost = 0.0;
  /// Total operator evaluations.
  std::uint64_t evaluations = 0;
  /// Number of operators.
  std::size_t operators = 0;
  /// Evaluations per operator kind (keyed by the kind's block label).
  std::map<std::string, std::uint64_t> evaluations_by_kind;

  /// One-line rendering.
  std::string ToString() const;
};

/// \brief Prices every operator in a fabricator from its observed
/// evaluation counters.
TopologyCostReport EstimateCost(const fabric::StreamFabricator& fabricator,
                                const OperatorCosts& costs = OperatorCosts());

}  // namespace engine
}  // namespace craqr
