#pragma once

#include <cstdint>
#include <cstdlib>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/result.h"
#include "fabric/fabricator.h"
#include "geometry/grid.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/query.h"
#include "runtime/sharded_fabricator.h"
#include "sensing/world.h"
#include "server/budget.h"
#include "server/handler.h"
#include "server/incentive.h"

/// \file engine.h
/// \brief CrAQR: the complete system of paper Figure 1.
///
/// The engine owns the crowd world (mobile sensors), the request/response
/// handler with its budget manager (and optionally the incentive
/// controller of Section VI), and the crowdsensed stream fabricator.  A
/// stepped simulation loop drives them: sensors move, acquisition requests
/// go out per budget, delayed responses come back, batches flow through
/// the per-cell PMAT topologies, and every live query's sink receives its
/// fabricated MCDS at (approximately) the requested spatio-temporal rate.
///
/// On the sharded runtime the loop is **pipelined**: each step's batch is
/// enqueued to the shard workers and the next step's world simulation and
/// handler dispatch run while they chew, with an epoch-tagged partial
/// drain as the only per-step synchronization. The closed budget/incentive
/// feedback loop follows a fixed epoch contract (see
/// EngineConfig::pipeline_depth) applied identically on the synchronous
/// path, so delivered streams and violation-replay order are byte-exact
/// across shard counts and execution modes.

namespace craqr {
namespace engine {

/// \brief Engine construction parameters.
struct EngineConfig {
  /// Grid granularity h (perfect square; paper Section IV).
  std::uint32_t grid_h = 9;
  /// Minutes advanced per Step().
  double step_dt = 1.0;
  /// Stream-fabricator parameters.
  fabric::FabricConfig fabric;
  /// Budget-tuning parameters.
  server::BudgetConfig budget;
  /// Request/response handler parameters.
  server::HandlerConfig handler;
  /// Section-VI extension: raise incentives once budgets saturate.
  bool enable_incentives = false;
  /// Incentive-policy parameters (used when enable_incentives).
  server::IncentiveConfig incentive;
  /// \brief Execution shards. 1 (the default) keeps today's in-process
  /// single-threaded StreamFabricator; >= 2 routes batches through the
  /// sharded runtime (runtime::ShardedFabricator), one worker thread per
  /// shard. Cell-local operator seeding makes the delivered streams
  /// identical either way for a fixed master seed, and violation reports
  /// replay in completion-time order on both paths, so even the
  /// order-sensitive enable_incentives feedback evolves identically
  /// across shard counts (see sharded_fabricator.h).
  std::size_t num_shards = 1;
  /// Sub-batches each shard queue buffers before back-pressure (used when
  /// num_shards >= 2).
  std::size_t shard_queue_capacity = 64;
  /// \brief Pipeline depth D (>= 1): the engine's step/feedback contract.
  ///
  /// D defines when the closed-loop feedback from step e's batch (F-operator
  /// violation reports driving budgets and incentives) is applied: at step
  /// e + D - 1, after that step's handler dispatch and before that step's
  /// batch is submitted. D = 1 is the classic fully synchronous loop
  /// (feedback applies within its own step, exactly the pre-pipelining
  /// semantics). D >= 2 introduces a fixed (D-1)-step feedback latency —
  /// and, when num_shards >= 2, buys the overlap: Step() enqueues tick t
  /// without waiting and simulates tick t+1 (world advance + handler
  /// dispatch into the next recycled batch of a D-deep ring) while the
  /// shard workers chew, draining only through epoch t-D+2 before each
  /// enqueue and fully at observation points (Stats(), query churn,
  /// RunFor() return, DrainPipeline()).
  ///
  /// The contract is applied on every execution path — the single-threaded
  /// engine emulates the same lag with an internal buffer — so for a fixed
  /// D the delivered streams and the violation-replay order are byte-exact
  /// across num_shards (1 included) and across synchronous vs pipelined
  /// execution. Raising D hides more shard latency per step but delays
  /// budget reactions by D-1 steps; 2 (the default) already overlaps a full
  /// step of world simulation with shard processing.
  std::size_t pipeline_depth = 2;
  /// \brief Span-trace ring capacity (events per ring); 0 (the default)
  /// disables tracing. When > 0 the engine keeps a bounded ring of
  /// per-step phase spans (world / handler / drain / dispatch) and each
  /// shard worker and the router keep rings of their own; dump them all
  /// with obs::Tracer::Global().DumpChromeTrace(path) and load the file
  /// in chrome://tracing or Perfetto. Observation-only: tracing does not
  /// change delivered streams.
  std::size_t trace_capacity = 0;
  /// \brief Load-aware cell rebalancing cadence (sharded path only,
  /// num_shards >= 2): every N steps the engine runs
  /// runtime::ShardedFabricator::Rebalance() at the step's epoch boundary,
  /// migrating hot cells' live topologies to underloaded shards. Cell-local
  /// operator seeding keeps delivered streams byte-exact whether and
  /// whenever rebalancing fires. 0 (the default) disables it.
  std::uint64_t rebalance_every_steps = 0;
  /// Planner hysteresis knobs (used when rebalance_every_steps > 0).
  runtime::RebalanceConfig rebalance;
  /// \brief Work stealing across shard workers (num_shards >= 2): idle
  /// workers claim chain-group jobs from the busiest peer's in-flight
  /// batch. Complements rebalancing — stealing absorbs transient bursts
  /// within a batch, rebalancing fixes sustained skew across epochs.
  bool enable_work_stealing = false;
  /// Credit-based admission / overload-shedding knobs (sharded path only):
  /// shard-queue push policy and the shed policy for credit-exhausted
  /// query subscribers. See runtime::AdmissionConfig.
  runtime::AdmissionConfig admission;
  /// Epoch-barrier checkpoint/restore knobs (sharded path only). Enabling
  /// records per-shard replay logs and lets a crashed shard be rebuilt
  /// byte-exactly. See runtime::CheckpointConfig.
  runtime::CheckpointConfig checkpoint;
  /// \brief Checkpoint cadence (sharded path, implies checkpoint.enabled):
  /// every N steps the engine refreshes the runtime checkpoint at the
  /// step's epoch boundary, bounding both replay-log growth and crash
  /// recovery time. 0 (the default) keeps only the automatic checkpoints
  /// (construction + topology changes).
  std::uint64_t checkpoint_every_steps = 0;
  /// \brief Bounded-memory endurance budget in bytes across the string
  /// pool, recycled batch arenas and shard queues. 0 (the default)
  /// disables memory governance. With a budget set, the governed pool
  /// (fabric.value_pool, or the process-wide pool) switches into
  /// generational mode and the engine polls the memory governor once per
  /// step: crossing the soft watermark triggers value-preserving
  /// reclamation (string re-intern + generation retirement + arena/
  /// scratch trims — delivered streams stay byte-exact), crossing the
  /// hard watermark additionally sheds deliveries and queue pushes
  /// instead of OOMing (sharded path; the single-fabricator path reclaims
  /// but has no shed machinery). See runtime/memory_governor.h.
  std::size_t memory_budget_bytes = 0;
  /// Watermark / hard-shed fine-tuning; its budget_bytes is overridden by
  /// memory_budget_bytes whenever that is non-zero.
  runtime::MemoryGovernorConfig memory;
};

/// \brief The CrAQR engine.
class CraqrEngine {
 public:
  /// Creates an engine over a crowd world. Attributes must already be
  /// registered on the world. The engine is heap-allocated so internal
  /// cross-component pointers stay stable.
  static Result<std::unique_ptr<CraqrEngine>> Make(sensing::CrowdWorld world,
                                                   const EngineConfig& config);

  CraqrEngine(const CraqrEngine&) = delete;
  CraqrEngine& operator=(const CraqrEngine&) = delete;

  /// \brief Submits an acquisitional query; resolves the attribute name,
  /// inserts it into the fabricator and subscribes the handler on every
  /// overlapped grid cell. Returns the live stream handle.
  Result<fabric::QueryStream> Submit(const query::AcquisitionQuery& q);

  /// Parses the declarative syntax and submits (paper Section III):
  /// `ACQUIRE rain FROM REGION(0,0,2,2) RATE 10 PER KM2 PER MIN`.
  Result<fabric::QueryStream> SubmitText(const std::string& text);

  /// Cancels a live query: unsubscribes its cells and removes its
  /// topology (paper Section V "Query Deletions").
  Status Cancel(query::QueryId id);

  /// \brief Advances the simulation by `config.step_dt` minutes: moves
  /// sensors, dispatches acquisition requests, collects arrived responses
  /// and runs them through the fabricator.
  ///
  /// On the pipelined path (num_shards >= 2 and pipeline_depth >= 2) the
  /// step's batch is *enqueued*, not processed: Step() returns while the
  /// shard workers chew and the next Step() overlaps its world simulation
  /// and handler dispatch with them, waiting only for the epoch the
  /// feedback contract makes due (see EngineConfig::pipeline_depth).
  /// Deliveries reach query sinks at drain points — every observation
  /// accessor drains first, so readers never see a partial stream.
  Status Step();

  /// Runs Step() until at least `minutes` of simulated time have passed,
  /// then drains the pipeline so sinks reflect every step. A failing step
  /// is reported with its step index and simulated time.
  Status RunFor(double minutes);

  /// \brief Waits for all in-flight pipelined work and flushes deliveries
  /// into query sinks (feedback beyond its contracted step stays held).
  /// No-op on the synchronous path. Called implicitly by RunFor() and
  /// Stats(); manual Step() drivers reading sinks directly should call it
  /// first.
  Status DrainPipeline();

  /// Current simulated time (minutes).
  double now() const { return now_; }

  /// \name Component access
  ///@{
  const sensing::CrowdWorld& world() const { return world_; }
  sensing::CrowdWorld& world() { return world_; }
  /// The in-process fabricator; only valid when config.num_shards == 1
  /// (IsSharded() false). Aborts with a diagnostic instead of
  /// dereferencing null when the engine is sharded — use the
  /// execution-path-independent aggregates below for code that must work
  /// either way.
  const fabric::StreamFabricator& fabricator() const {
    if (fabricator_ == nullptr) {
      CRAQR_LOG(ERROR) << "CraqrEngine::fabricator() called on a sharded "
                          "engine (num_shards >= 2); use sharded() or the "
                          "aggregate accessors";
      std::abort();
    }
    return *fabricator_;
  }
  /// The sharded runtime; nullptr when config.num_shards == 1.
  const runtime::ShardedFabricator* sharded() const { return sharded_.get(); }
  const server::BudgetManager& budgets() const { return budgets_; }
  const server::RequestResponseHandler& handler() const { return *handler_; }
  const server::IncentiveController& incentives() const {
    return incentives_;
  }
  const geom::Grid& grid() const { return grid_; }
  ///@}

  /// Queries whose requested rate was flagged infeasible at the current
  /// budget ceiling (cleared when re-tuning succeeds is NOT automatic;
  /// this is a monotone event log).
  const std::vector<server::BudgetKey>& infeasible_log() const {
    return infeasible_log_;
  }

  /// True when batches run through the sharded runtime.
  bool IsSharded() const { return sharded_ != nullptr; }

  /// \name Execution-path-independent aggregates
  /// Dispatch to the in-process fabricator or aggregate across shards.
  /// When sharded, every accessor (and Stats()) costs one cross-shard
  /// barrier — and on the pipelined path a full drain first, so the
  /// numbers are consistent with every step taken so far (an observation
  /// point of the epoch contract). Callers needing several counters
  /// should take one Stats() snapshot instead of chaining the scalar
  /// accessors. Stats() also reports ops::ValuePool::Global() growth
  /// (value_pool_bytes) and, when sharded, per-shard load counters.
  ///@{
  runtime::ShardedStats Stats();
  std::uint64_t TuplesRouted();
  std::uint64_t TuplesUnrouted();
  std::uint64_t TotalOperatorEvaluations();
  std::size_t NumLiveQueries() const;
  /// Structural self-check of the Section-V topology rules on whichever
  /// execution path is active.
  Status ValidateTopology() const;
  ///@}

 private:
  CraqrEngine(sensing::CrowdWorld world, const geom::Grid& grid,
              const EngineConfig& config,
              std::unique_ptr<fabric::StreamFabricator> fabricator,
              std::unique_ptr<runtime::ShardedFabricator> sharded,
              server::BudgetManager budgets,
              server::IncentiveController incentives);

  void OnViolationReport(ops::AttributeId attribute,
                         const geom::CellIndex& cell,
                         const ops::FlattenBatchReport& report);
  /// Feeds one report into the budget manager (and incentives); the
  /// feedback half the epoch contract schedules.
  void ApplyFeedback(ops::AttributeId attribute, const geom::CellIndex& cell,
                     const ops::FlattenBatchReport& report);
  /// Applies every deferred report whose contracted step has arrived
  /// (synchronous-path lag emulation; FIFO preserves replay order).
  void ApplyDueFeedback();
  /// Per-step memory-governance poll on the single-fabricator path
  /// (num_shards == 1): assesses pool + operator-scratch accounting and
  /// runs the value-preserving reclamation pass when a watermark is
  /// crossed. The sharded path delegates to
  /// runtime::ShardedFabricator::GovernMemory instead.
  Status GovernSingle();

  sensing::CrowdWorld world_;
  geom::Grid grid_;
  EngineConfig config_;
  /// Exactly one of fabricator_ / sharded_ is set (num_shards == 1 vs >= 2).
  std::unique_ptr<fabric::StreamFabricator> fabricator_;
  std::unique_ptr<runtime::ShardedFabricator> sharded_;
  server::BudgetManager budgets_;
  server::IncentiveController incentives_;
  /// Single-path memory governor (set when num_shards == 1 and a budget
  /// is configured; the sharded runtime owns its own).
  std::unique_ptr<runtime::MemoryGovernor> governor_;
  std::optional<server::RequestResponseHandler> handler_;
  std::vector<server::BudgetKey> infeasible_log_;
  /// Ring of recycled columnar step batches the handler fills and the
  /// execution path consumes (capacity persists across steps). One entry
  /// on the synchronous path; pipeline_depth entries when pipelined, so a
  /// submitted batch is not rewritten for D-1 further steps. (Today
  /// EnqueueBatch consumes its input before returning, so one buffer
  /// would also work — the ring keeps the engine independent of that
  /// runtime implementation detail, e.g. a future zero-copy handoff.)
  std::vector<ops::TupleBatch> step_batches_;
  std::size_t step_cursor_ = 0;
  /// Steps taken so far — the epoch stamped onto pipelined batches.
  std::uint64_t step_count_ = 0;
  /// num_shards >= 2 && pipeline_depth >= 2: Step() enqueues instead of
  /// processing and the runtime holds feedback to the epoch horizon.
  bool pipelined_ = false;
  /// Synchronous path with pipeline_depth >= 2: the engine itself defers
  /// feedback to the contracted step (the runtime applies no lag there).
  bool defer_feedback_ = false;
  /// One report awaiting its contracted step (synchronous lag emulation).
  struct DeferredFeedback {
    std::uint64_t due_step = 0;
    ops::AttributeId attribute = 0;
    geom::CellIndex cell;
    ops::FlattenBatchReport report;
  };
  std::deque<DeferredFeedback> deferred_feedback_;
  double now_ = 0.0;

  /// \name Step-phase telemetry (registry-backed, observation-only).
  /// Histograms of per-step time inside each phase of the loop: world
  /// simulation, handler dispatch, pipeline drain wait, and batch
  /// dispatch (enqueue when pipelined, full ProcessBatch when
  /// synchronous). Shared across engines in one process (histograms
  /// merge); the optional trace ring records the same phases as spans.
  ///@{
  obs::LogHistogram* phase_world_ns_ = nullptr;
  obs::LogHistogram* phase_handler_ns_ = nullptr;
  obs::LogHistogram* phase_drain_ns_ = nullptr;
  obs::LogHistogram* phase_dispatch_ns_ = nullptr;
  obs::Counter* steps_ = nullptr;
  obs::TraceRing* trace_ = nullptr;
  ///@}
};

}  // namespace engine
}  // namespace craqr
