#pragma once

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/result.h"
#include "fabric/fabricator.h"
#include "geometry/grid.h"
#include "query/query.h"
#include "runtime/sharded_fabricator.h"
#include "sensing/world.h"
#include "server/budget.h"
#include "server/handler.h"
#include "server/incentive.h"

/// \file engine.h
/// \brief CrAQR: the complete system of paper Figure 1.
///
/// The engine owns the crowd world (mobile sensors), the request/response
/// handler with its budget manager (and optionally the incentive
/// controller of Section VI), and the crowdsensed stream fabricator.  A
/// stepped simulation loop drives them: sensors move, acquisition requests
/// go out per budget, delayed responses come back, batches flow through
/// the per-cell PMAT topologies, and every live query's sink receives its
/// fabricated MCDS at (approximately) the requested spatio-temporal rate.

namespace craqr {
namespace engine {

/// \brief Engine construction parameters.
struct EngineConfig {
  /// Grid granularity h (perfect square; paper Section IV).
  std::uint32_t grid_h = 9;
  /// Minutes advanced per Step().
  double step_dt = 1.0;
  /// Stream-fabricator parameters.
  fabric::FabricConfig fabric;
  /// Budget-tuning parameters.
  server::BudgetConfig budget;
  /// Request/response handler parameters.
  server::HandlerConfig handler;
  /// Section-VI extension: raise incentives once budgets saturate.
  bool enable_incentives = false;
  /// Incentive-policy parameters (used when enable_incentives).
  server::IncentiveConfig incentive;
  /// \brief Execution shards. 1 (the default) keeps today's in-process
  /// single-threaded StreamFabricator; >= 2 routes batches through the
  /// sharded runtime (runtime::ShardedFabricator), one worker thread per
  /// shard. Cell-local operator seeding makes the delivered streams
  /// identical either way for a fixed master seed, and violation reports
  /// replay in completion-time order on both paths, so even the
  /// order-sensitive enable_incentives feedback evolves identically
  /// across shard counts (see sharded_fabricator.h).
  std::size_t num_shards = 1;
  /// Sub-batches each shard queue buffers before back-pressure (used when
  /// num_shards >= 2).
  std::size_t shard_queue_capacity = 64;
};

/// \brief The CrAQR engine.
class CraqrEngine {
 public:
  /// Creates an engine over a crowd world. Attributes must already be
  /// registered on the world. The engine is heap-allocated so internal
  /// cross-component pointers stay stable.
  static Result<std::unique_ptr<CraqrEngine>> Make(sensing::CrowdWorld world,
                                                   const EngineConfig& config);

  CraqrEngine(const CraqrEngine&) = delete;
  CraqrEngine& operator=(const CraqrEngine&) = delete;

  /// \brief Submits an acquisitional query; resolves the attribute name,
  /// inserts it into the fabricator and subscribes the handler on every
  /// overlapped grid cell. Returns the live stream handle.
  Result<fabric::QueryStream> Submit(const query::AcquisitionQuery& q);

  /// Parses the declarative syntax and submits (paper Section III):
  /// `ACQUIRE rain FROM REGION(0,0,2,2) RATE 10 PER KM2 PER MIN`.
  Result<fabric::QueryStream> SubmitText(const std::string& text);

  /// Cancels a live query: unsubscribes its cells and removes its
  /// topology (paper Section V "Query Deletions").
  Status Cancel(query::QueryId id);

  /// Advances the simulation by `config.step_dt` minutes: moves sensors,
  /// dispatches acquisition requests, collects arrived responses and runs
  /// them through the fabricator.
  Status Step();

  /// Runs Step() until at least `minutes` of simulated time have passed.
  Status RunFor(double minutes);

  /// Current simulated time (minutes).
  double now() const { return now_; }

  /// \name Component access
  ///@{
  const sensing::CrowdWorld& world() const { return world_; }
  sensing::CrowdWorld& world() { return world_; }
  /// The in-process fabricator; only valid when config.num_shards == 1
  /// (IsSharded() false). Aborts with a diagnostic instead of
  /// dereferencing null when the engine is sharded — use the
  /// execution-path-independent aggregates below for code that must work
  /// either way.
  const fabric::StreamFabricator& fabricator() const {
    if (fabricator_ == nullptr) {
      CRAQR_LOG(ERROR) << "CraqrEngine::fabricator() called on a sharded "
                          "engine (num_shards >= 2); use sharded() or the "
                          "aggregate accessors";
      std::abort();
    }
    return *fabricator_;
  }
  /// The sharded runtime; nullptr when config.num_shards == 1.
  const runtime::ShardedFabricator* sharded() const { return sharded_.get(); }
  const server::BudgetManager& budgets() const { return budgets_; }
  const server::RequestResponseHandler& handler() const { return *handler_; }
  const server::IncentiveController& incentives() const {
    return incentives_;
  }
  const geom::Grid& grid() const { return grid_; }
  ///@}

  /// Queries whose requested rate was flagged infeasible at the current
  /// budget ceiling (cleared when re-tuning succeeds is NOT automatic;
  /// this is a monotone event log).
  const std::vector<server::BudgetKey>& infeasible_log() const {
    return infeasible_log_;
  }

  /// True when batches run through the sharded runtime.
  bool IsSharded() const { return sharded_ != nullptr; }

  /// \name Execution-path-independent aggregates
  /// Dispatch to the in-process fabricator or aggregate across shards.
  /// When sharded, every accessor (and Stats()) costs one cross-shard
  /// barrier — callers needing several counters should take one Stats()
  /// snapshot instead of chaining the scalar accessors.
  ///@{
  runtime::ShardedStats Stats() const;
  std::uint64_t TuplesRouted() const;
  std::uint64_t TuplesUnrouted() const;
  std::uint64_t TotalOperatorEvaluations() const;
  std::size_t NumLiveQueries() const;
  /// Structural self-check of the Section-V topology rules on whichever
  /// execution path is active.
  Status ValidateTopology() const;
  ///@}

 private:
  CraqrEngine(sensing::CrowdWorld world, const geom::Grid& grid,
              const EngineConfig& config,
              std::unique_ptr<fabric::StreamFabricator> fabricator,
              std::unique_ptr<runtime::ShardedFabricator> sharded,
              server::BudgetManager budgets,
              server::IncentiveController incentives);

  void OnViolationReport(ops::AttributeId attribute,
                         const geom::CellIndex& cell,
                         const ops::FlattenBatchReport& report);

  sensing::CrowdWorld world_;
  geom::Grid grid_;
  EngineConfig config_;
  /// Exactly one of fabricator_ / sharded_ is set (num_shards == 1 vs >= 2).
  std::unique_ptr<fabric::StreamFabricator> fabricator_;
  std::unique_ptr<runtime::ShardedFabricator> sharded_;
  server::BudgetManager budgets_;
  server::IncentiveController incentives_;
  std::optional<server::RequestResponseHandler> handler_;
  std::vector<server::BudgetKey> infeasible_log_;
  /// Recycled columnar batch the handler fills and the fabricator drains
  /// every Step() (capacity persists across steps).
  ops::TupleBatch step_batch_;
  double now_ = 0.0;
};

}  // namespace engine
}  // namespace craqr
