#include "core/engine.h"

#include <cmath>
#include <limits>

#include "common/macros.h"
#include "obs/exporter.h"
#include "ops/value_pool.h"

namespace craqr {
namespace engine {

CraqrEngine::CraqrEngine(sensing::CrowdWorld world, const geom::Grid& grid,
                         const EngineConfig& config,
                         std::unique_ptr<fabric::StreamFabricator> fabricator,
                         std::unique_ptr<runtime::ShardedFabricator> sharded,
                         server::BudgetManager budgets,
                         server::IncentiveController incentives)
    : world_(std::move(world)),
      grid_(grid),
      config_(config),
      fabricator_(std::move(fabricator)),
      sharded_(std::move(sharded)),
      budgets_(std::move(budgets)),
      incentives_(std::move(incentives)) {
  pipelined_ = sharded_ != nullptr && config_.pipeline_depth >= 2;
  defer_feedback_ = !pipelined_ && config_.pipeline_depth >= 2;
  step_batches_.resize(pipelined_ ? config_.pipeline_depth : 1);
  // One registry lookup each at construction; Step() then records through
  // the cached pointers.
  phase_world_ns_ = obs::GetHistogram("craqr.engine.phase.world_ns");
  phase_handler_ns_ = obs::GetHistogram("craqr.engine.phase.handler_ns");
  phase_drain_ns_ = obs::GetHistogram("craqr.engine.phase.drain_ns");
  phase_dispatch_ns_ = obs::GetHistogram("craqr.engine.phase.dispatch_ns");
  steps_ = obs::GetCounter("craqr.engine.steps");
  trace_ = obs::Tracer::Global().CreateRing("craqr.engine",
                                            config_.trace_capacity);
  if (pipelined_) {
    // Engage the runtime's epoch horizon before any batch flows: no
    // feedback may leak out before its contracted step, even through an
    // early Stats() / query-churn drain.
    sharded_->SetReplayHorizon(0);
  }
}

Result<std::unique_ptr<CraqrEngine>> CraqrEngine::Make(
    sensing::CrowdWorld world, const EngineConfig& config) {
  if (!(config.step_dt > 0.0)) {
    return Status::InvalidArgument("step_dt must be > 0");
  }
  if (config.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (config.pipeline_depth < 1 || config.pipeline_depth > 1024) {
    return Status::InvalidArgument(
        "pipeline_depth must be in [1, 1024] (got " +
        std::to_string(config.pipeline_depth) + ")");
  }
  CRAQR_ASSIGN_OR_RETURN(
      geom::Grid grid,
      geom::Grid::Make(world.population().region(), config.grid_h));
  // Effective governance knobs: the scalar budget wins over the struct's.
  runtime::MemoryGovernorConfig memory = config.memory;
  if (config.memory_budget_bytes > 0) {
    memory.budget_bytes = config.memory_budget_bytes;
  }
  std::unique_ptr<fabric::StreamFabricator> fabricator;
  std::unique_ptr<runtime::ShardedFabricator> sharded;
  if (config.num_shards == 1) {
    CRAQR_ASSIGN_OR_RETURN(fabricator,
                           fabric::StreamFabricator::Make(grid, config.fabric));
  } else {
    runtime::ShardedConfig sc;
    sc.num_shards = config.num_shards;
    sc.queue_capacity = config.shard_queue_capacity;
    sc.fabric = config.fabric;
    sc.trace_capacity = config.trace_capacity;
    sc.enable_stealing = config.enable_work_stealing;
    sc.enable_rebalancing = config.rebalance_every_steps > 0;
    sc.rebalance = config.rebalance;
    sc.admission = config.admission;
    sc.checkpoint = config.checkpoint;
    if (config.checkpoint_every_steps > 0) {
      sc.checkpoint.enabled = true;  // a cadence without snapshots is moot
    }
    sc.memory = memory;
    CRAQR_ASSIGN_OR_RETURN(sharded, runtime::ShardedFabricator::Make(grid, sc));
  }
  CRAQR_ASSIGN_OR_RETURN(server::BudgetManager budgets,
                         server::BudgetManager::Make(config.budget));
  CRAQR_ASSIGN_OR_RETURN(server::IncentiveController incentives,
                         server::IncentiveController::Make(config.incentive));

  auto engine = std::unique_ptr<CraqrEngine>(
      new CraqrEngine(std::move(world), grid, config, std::move(fabricator),
                      std::move(sharded), std::move(budgets),
                      std::move(incentives)));

  if (engine->fabricator_ != nullptr && memory.budget_bytes > 0) {
    // Single-fabricator governance: the engine owns the governor (the
    // sharded runtime builds its own in ShardedFabricator::Make) and the
    // governed pool runs generational so reclamation can retire one-shot
    // strings wholesale.
    engine->governor_ = std::make_unique<runtime::MemoryGovernor>(memory);
    ops::ValuePool& pool = config.fabric.value_pool != nullptr
                               ? *config.fabric.value_pool
                               : ops::ValuePool::Global();
    pool.EnableGenerations();
  }

  // The handler needs stable pointers into the engine, so it is built
  // after the engine object exists.
  CRAQR_ASSIGN_OR_RETURN(
      server::RequestResponseHandler handler,
      server::RequestResponseHandler::Make(&engine->world_, &engine->budgets_,
                                           grid, config.handler));
  engine->handler_.emplace(std::move(handler));

  // Budget tuning (paper Section V): every F-operator batch report feeds
  // N_v into the budget manager; optionally incentives react once budgets
  // saturate (Section VI extension).
  CraqrEngine* raw = engine.get();
  const fabric::ViolationCallback on_violation =
      [raw](ops::AttributeId attribute, const geom::CellIndex& cell,
            const ops::FlattenBatchReport& report) {
        raw->OnViolationReport(attribute, cell, report);
      };
  if (engine->fabricator_ != nullptr) {
    engine->fabricator_->SetViolationCallback(on_violation);
  } else {
    // Shard workers buffer reports; the runtime replays them on the
    // engine's thread at batch boundaries, so this stays single-threaded.
    engine->sharded_->SetViolationCallback(on_violation);
  }
  engine->budgets_.SetInfeasibleCallback(
      [raw](const server::BudgetKey& key, double budget) {
        (void)budget;
        raw->infeasible_log_.push_back(key);
      });
  return engine;
}

void CraqrEngine::OnViolationReport(ops::AttributeId attribute,
                                    const geom::CellIndex& cell,
                                    const ops::FlattenBatchReport& report) {
  if (defer_feedback_) {
    // Synchronous path with pipeline_depth D >= 2: the fabricator replays
    // this report during step e's processing, but the epoch contract says
    // it takes effect at step e + D - 1 — park it until then. (On the
    // pipelined path the runtime's epoch horizon does the parking and
    // reports arrive here exactly when due.)
    deferred_feedback_.push_back(
        {step_count_ + config_.pipeline_depth - 1, attribute, cell, report});
    return;
  }
  ApplyFeedback(attribute, cell, report);
}

void CraqrEngine::ApplyFeedback(ops::AttributeId attribute,
                                const geom::CellIndex& cell,
                                const ops::FlattenBatchReport& report) {
  const server::BudgetKey key{attribute, cell};
  const double supply_ratio =
      report.target_count > 0.0
          ? static_cast<double>(report.n) / report.target_count
          : std::numeric_limits<double>::infinity();
  budgets_.ReportBatch(key, report.violation_percent, supply_ratio);
  if (config_.enable_incentives) {
    const double incentive = incentives_.Update(
        attribute, report.violation_percent, budgets_.IsSaturated(key));
    handler_->SetIncentive(attribute, incentive);
  }
}

void CraqrEngine::ApplyDueFeedback() {
  while (!deferred_feedback_.empty() &&
         deferred_feedback_.front().due_step <= step_count_) {
    const DeferredFeedback& due = deferred_feedback_.front();
    ApplyFeedback(due.attribute, due.cell, due.report);
    deferred_feedback_.pop_front();
  }
}

Result<fabric::QueryStream> CraqrEngine::Submit(
    const query::AcquisitionQuery& q) {
  CRAQR_RETURN_NOT_OK(q.Validate());
  CRAQR_ASSIGN_OR_RETURN(const ops::AttributeId attribute,
                         world_.AttributeIdByName(q.attribute));
  fabric::QueryStream stream;
  std::vector<geom::CellIndex> cells;
  if (sharded_ != nullptr) {
    CRAQR_ASSIGN_OR_RETURN(stream,
                           sharded_->InsertQuery(attribute, q.region, q.rate));
    CRAQR_ASSIGN_OR_RETURN(cells, sharded_->QueryCells(stream.id));
  } else {
    CRAQR_ASSIGN_OR_RETURN(
        stream, fabricator_->InsertQuery(attribute, q.region, q.rate));
    CRAQR_ASSIGN_OR_RETURN(cells, fabricator_->QueryCells(stream.id));
  }
  for (const auto& cell : cells) {
    CRAQR_RETURN_NOT_OK(handler_->Subscribe(attribute, cell));
  }
  return stream;
}

Result<fabric::QueryStream> CraqrEngine::SubmitText(const std::string& text) {
  CRAQR_ASSIGN_OR_RETURN(const query::AcquisitionQuery parsed,
                         query::ParseQuery(text));
  return Submit(parsed);
}

Status CraqrEngine::Cancel(query::QueryId id) {
  fabric::QueryStream stream;
  std::vector<geom::CellIndex> cells;
  if (sharded_ != nullptr) {
    CRAQR_ASSIGN_OR_RETURN(stream, sharded_->GetStream(id));
    CRAQR_ASSIGN_OR_RETURN(cells, sharded_->QueryCells(id));
    CRAQR_RETURN_NOT_OK(sharded_->RemoveQuery(id));
  } else {
    CRAQR_ASSIGN_OR_RETURN(stream, fabricator_->GetStream(id));
    CRAQR_ASSIGN_OR_RETURN(cells, fabricator_->QueryCells(id));
    CRAQR_RETURN_NOT_OK(fabricator_->RemoveQuery(id));
  }
  for (const auto& cell : cells) {
    CRAQR_RETURN_NOT_OK(handler_->Unsubscribe(stream.attribute, cell));
  }
  return Status::OK();
}

Status CraqrEngine::Step() {
  ++step_count_;
  steps_->Increment();
  // Phase edges cost one clock read each when observability is on, none
  // when it is off; everything recorded here is observation-only.
  const bool timed = obs::IsEnabled();
  const std::uint64_t t_begin = timed ? obs::NowNs() : 0;
  // On the pipelined path everything from here through the handler
  // dispatch overlaps with the shard workers still chewing the previous
  // step's batch — the overlap this loop exists for.
  now_ += config_.step_dt;
  world_.Advance(config_.step_dt);
  const std::uint64_t t_world = timed ? obs::NowNs() : 0;
  // The handler scatters its responses straight into the recycled batch's
  // columns; the execution path consumes it row-by-row into per-chain /
  // per-shard batches. No intermediate tuple vector exists on this path.
  // The ring keeps each submitted batch untouched for D-1 further steps —
  // EnqueueBatch happens to consume its input synchronously today, but
  // the engine does not depend on that runtime implementation detail.
  ops::TupleBatch& batch = step_batches_[step_cursor_];
  step_cursor_ = (step_cursor_ + 1) % step_batches_.size();
  CRAQR_RETURN_NOT_OK(handler_->Step(now_, &batch));
  const std::uint64_t t_handler = timed ? obs::NowNs() : 0;
  // Captured before dispatch consumes the batch.
  const auto batch_tuples = static_cast<std::uint64_t>(batch.size());
  if (timed) {
    phase_world_ns_->Record(t_world - t_begin);
    phase_handler_ns_->Record(t_handler - t_world);
    if (trace_ != nullptr) {
      trace_->Record("world", step_count_, t_begin, t_world, 0);
      trace_->Record("handler", step_count_, t_world, t_handler, batch_tuples);
    }
  }
  if (pipelined_) {
    // Feedback epoch contract: before submitting step s, wait for epoch
    // s - (D - 1) and release exactly its reports — after this step's
    // dispatch (which must not see them yet), before the next one (which
    // must). The drain also flushes completed deliveries to sinks.
    const std::uint64_t depth = config_.pipeline_depth;
    if (step_count_ >= depth) {
      CRAQR_RETURN_NOT_OK(sharded_->DrainThrough(step_count_ - (depth - 1)));
    }
    // Rebalance at the epoch boundary the drain just established — before
    // this step's batch is routed, so the batch already flows through the
    // updated table. Barriers internally; feedback held past the horizon
    // stays held (byte-exactness does not depend on when this fires).
    if (config_.rebalance_every_steps > 0 &&
        step_count_ % config_.rebalance_every_steps == 0) {
      CRAQR_RETURN_NOT_OK(sharded_->Rebalance().status());
    }
    // Checkpoint cadence at the same boundary: bounds the replay log a
    // crash must re-run (byte-exactness is likewise independent of when
    // this fires — the snapshot is taken at a full barrier).
    if (config_.checkpoint_every_steps > 0 &&
        step_count_ % config_.checkpoint_every_steps == 0) {
      CRAQR_RETURN_NOT_OK(sharded_->Checkpoint());
    }
    // Memory-governance poll at the same boundary (inert without a
    // budget): reclamation barriers like a checkpoint, degradation sheds
    // — neither changes delivered bytes below the hard watermark.
    CRAQR_RETURN_NOT_OK(sharded_->GovernMemory());
    const std::uint64_t t_drain = timed ? obs::NowNs() : 0;
    const Status dispatched = sharded_->EnqueueBatch(batch, step_count_);
    if (timed) {
      const std::uint64_t t_end = obs::NowNs();
      phase_drain_ns_->Record(t_drain - t_handler);
      phase_dispatch_ns_->Record(t_end - t_drain);
      if (trace_ != nullptr) {
        trace_->Record("drain", step_count_, t_handler, t_drain, 0);
        trace_->Record("dispatch", step_count_, t_drain, t_end, batch_tuples);
      }
    }
    return dispatched;
  }
  // Synchronous path: apply the reports whose contracted step arrived at
  // the same relative point (post-dispatch, pre-processing).
  ApplyDueFeedback();
  const std::uint64_t t_feedback = timed ? obs::NowNs() : 0;
  const Status processed = sharded_ != nullptr
                               ? sharded_->ProcessBatch(batch)
                               : fabricator_->ProcessBatch(batch);
  // Rebalance between batches, same cadence as the pipelined path (the
  // exact boundary it fires at does not affect delivered streams).
  if (processed.ok() && sharded_ != nullptr &&
      config_.rebalance_every_steps > 0 &&
      step_count_ % config_.rebalance_every_steps == 0) {
    CRAQR_RETURN_NOT_OK(sharded_->Rebalance().status());
  }
  if (processed.ok() && sharded_ != nullptr &&
      config_.checkpoint_every_steps > 0 &&
      step_count_ % config_.checkpoint_every_steps == 0) {
    CRAQR_RETURN_NOT_OK(sharded_->Checkpoint());
  }
  // Per-step governance poll, synchronous flavours (inert without a
  // budget): the sharded runtime governs itself; the single-fabricator
  // path runs the engine-owned reclamation pass.
  if (processed.ok()) {
    CRAQR_RETURN_NOT_OK(sharded_ != nullptr ? sharded_->GovernMemory()
                                            : GovernSingle());
  }
  if (timed) {
    const std::uint64_t t_end = obs::NowNs();
    // No separate drain phase here; ProcessBatch is the whole dispatch.
    phase_dispatch_ns_->Record(t_end - t_feedback);
    if (trace_ != nullptr) {
      trace_->Record("dispatch", step_count_, t_feedback, t_end, batch_tuples);
    }
  }
  return processed;
}

Status CraqrEngine::DrainPipeline() {
  if (!pipelined_) {
    return Status::OK();
  }
  return sharded_->Drain();
}

Status CraqrEngine::GovernSingle() {
  if (governor_ == nullptr || !governor_->enabled()) {
    return Status::OK();
  }
  ops::ValuePool& pool = config_.fabric.value_pool != nullptr
                             ? *config_.fabric.value_pool
                             : ops::ValuePool::Global();
  runtime::MemoryGovernor::Usage usage;
  usage.pool_bytes = pool.ApproxBytes();
  usage.queue_bytes = fabricator_->BatchMemoryBytes();
  const runtime::MemoryPressure pressure = governor_->Assess(usage);
  if (pressure == runtime::MemoryPressure::kNone) {
    return Status::OK();
  }
  // Value-preserving reclamation between steps (the fabricator is idle
  // here, so no barrier is needed). The single path has no shed machinery
  // — hard pressure reclaims identically; graceful degradation is a
  // sharded-runtime feature.
  // Rotate first so evacuated strings land in the fresh generation as
  // first sights (re-interning into the old current generation would
  // promote every live string into the persistent tier — a permanent
  // leak).
  pool.RotateGeneration();
  fabricator_->ReinternStrings(pool);
  const std::uint64_t retired_before = pool.generations_retired();
  const std::size_t reclaimed =
      pool.RetireGenerationsBelow(pool.current_generation());
  fabricator_->TrimMemory();
  governor_->RecordRetirement(pool.generations_retired() - retired_before);
  governor_->RecordReclaim(reclaimed);
  usage.pool_bytes = pool.ApproxBytes();
  usage.queue_bytes = fabricator_->BatchMemoryBytes();
  governor_->Assess(usage);
  return Status::OK();
}

runtime::ShardedStats CraqrEngine::Stats() {
  if (sharded_ != nullptr) {
    // Observation point: flush in-flight pipelined work first so the
    // merge-stage and sink counters cover every step taken. Feedback
    // beyond its contracted step stays held by the runtime's horizon.
    const Status drained = DrainPipeline();
    if (!drained.ok()) {
      CRAQR_LOG(ERROR) << "Stats() pipeline drain failed: "
                       << drained.ToString();
    }
    return sharded_->Snapshot();
  }
  runtime::ShardedStats stats;
  stats.tuples_routed = fabricator_->tuples_routed();
  stats.tuples_unrouted = fabricator_->tuples_unrouted();
  stats.total_operator_evaluations = fabricator_->TotalOperatorEvaluations();
  stats.total_operators = fabricator_->TotalOperators();
  stats.materialized_cells = fabricator_->NumMaterializedCells();
  stats.live_queries = fabricator_->NumQueries();
  // The engine's actual pool, not a Global() hardcode — instance-pool
  // embedders read their own growth here.
  ops::ValuePool& pool = config_.fabric.value_pool != nullptr
                             ? *config_.fabric.value_pool
                             : ops::ValuePool::Global();
  stats.value_pool_bytes = pool.ApproxBytes();
  stats.pool_generations_retired = pool.generations_retired();
  stats.memory_pressure =
      governor_ != nullptr ? static_cast<int>(governor_->pressure()) : 0;
  stats.shared_prefix_hits = fabricator_->shared_prefix_hits();
  stats.taps_detached = fabricator_->taps_detached();
  stats.stages_shared = fabricator_->SharedStagesLive();
  stats.shared_stage_census = fabricator_->SharedStageCensus();
  return stats;
}

std::uint64_t CraqrEngine::TuplesRouted() { return Stats().tuples_routed; }

std::uint64_t CraqrEngine::TuplesUnrouted() { return Stats().tuples_unrouted; }

std::uint64_t CraqrEngine::TotalOperatorEvaluations() {
  return Stats().total_operator_evaluations;
}

std::size_t CraqrEngine::NumLiveQueries() const {
  return sharded_ != nullptr ? sharded_->NumQueries()
                             : fabricator_->NumQueries();
}

Status CraqrEngine::ValidateTopology() const {
  return sharded_ != nullptr ? sharded_->ValidateInvariants()
                             : fabricator_->ValidateInvariants();
}

Status CraqrEngine::RunFor(double minutes) {
  if (!(minutes >= 0.0)) {
    return Status::InvalidArgument("minutes must be >= 0");
  }
  const double deadline = now_ + minutes;
  std::uint64_t steps_this_run = 0;
  while (now_ + 1e-12 < deadline) {
    ++steps_this_run;
    const Status status = Step();
    if (!status.ok()) {
      // Abnormal teardown: the caller likely bails without ever unwinding
      // a MetricsExporter, so flush final snapshots here — the files then
      // show the registry at the moment of death, which is what a
      // post-mortem needs.
      obs::MetricsExporter::FlushAll();
      // A bare error from a 10k-step run is undebuggable; say *when* the
      // tick failed, in both run-local and engine-lifetime step numbers.
      return Status(status.code(),
                    "step " + std::to_string(steps_this_run) + " of this run" +
                        " (engine step " + std::to_string(step_count_) +
                        ", t=" + std::to_string(now_) +
                        " min) failed: " + status.message());
    }
  }
  // Observation boundary: control returns to the caller, who may read
  // sinks directly — flush the pipeline so they reflect every step.
  const Status drained = DrainPipeline();
  if (!drained.ok()) {
    obs::MetricsExporter::FlushAll();  // same abnormal-teardown flush
    return Status(drained.code(),
                  "pipeline drain after " + std::to_string(steps_this_run) +
                      " step(s) (engine step " + std::to_string(step_count_) +
                      ", t=" + std::to_string(now_) +
                      " min) failed: " + drained.message());
  }
  return Status::OK();
}

}  // namespace engine
}  // namespace craqr
