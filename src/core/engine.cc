#include "core/engine.h"

#include <cmath>
#include <limits>

#include "common/macros.h"

namespace craqr {
namespace engine {

CraqrEngine::CraqrEngine(sensing::CrowdWorld world, const geom::Grid& grid,
                         const EngineConfig& config,
                         std::unique_ptr<fabric::StreamFabricator> fabricator,
                         server::BudgetManager budgets,
                         server::IncentiveController incentives)
    : world_(std::move(world)),
      grid_(grid),
      config_(config),
      fabricator_(std::move(fabricator)),
      budgets_(std::move(budgets)),
      incentives_(std::move(incentives)) {}

Result<std::unique_ptr<CraqrEngine>> CraqrEngine::Make(
    sensing::CrowdWorld world, const EngineConfig& config) {
  if (!(config.step_dt > 0.0)) {
    return Status::InvalidArgument("step_dt must be > 0");
  }
  CRAQR_ASSIGN_OR_RETURN(
      geom::Grid grid,
      geom::Grid::Make(world.population().region(), config.grid_h));
  CRAQR_ASSIGN_OR_RETURN(auto fabricator,
                         fabric::StreamFabricator::Make(grid, config.fabric));
  CRAQR_ASSIGN_OR_RETURN(server::BudgetManager budgets,
                         server::BudgetManager::Make(config.budget));
  CRAQR_ASSIGN_OR_RETURN(server::IncentiveController incentives,
                         server::IncentiveController::Make(config.incentive));

  auto engine = std::unique_ptr<CraqrEngine>(
      new CraqrEngine(std::move(world), grid, config, std::move(fabricator),
                      std::move(budgets), std::move(incentives)));

  // The handler needs stable pointers into the engine, so it is built
  // after the engine object exists.
  CRAQR_ASSIGN_OR_RETURN(
      server::RequestResponseHandler handler,
      server::RequestResponseHandler::Make(&engine->world_, &engine->budgets_,
                                           grid, config.handler));
  engine->handler_.emplace(std::move(handler));

  // Budget tuning (paper Section V): every F-operator batch report feeds
  // N_v into the budget manager; optionally incentives react once budgets
  // saturate (Section VI extension).
  CraqrEngine* raw = engine.get();
  engine->fabricator_->SetViolationCallback(
      [raw](ops::AttributeId attribute, const geom::CellIndex& cell,
            const ops::FlattenBatchReport& report) {
        raw->OnViolationReport(attribute, cell, report);
      });
  engine->budgets_.SetInfeasibleCallback(
      [raw](const server::BudgetKey& key, double budget) {
        (void)budget;
        raw->infeasible_log_.push_back(key);
      });
  return engine;
}

void CraqrEngine::OnViolationReport(ops::AttributeId attribute,
                                    const geom::CellIndex& cell,
                                    const ops::FlattenBatchReport& report) {
  const server::BudgetKey key{attribute, cell};
  const double supply_ratio =
      report.target_count > 0.0
          ? static_cast<double>(report.n) / report.target_count
          : std::numeric_limits<double>::infinity();
  budgets_.ReportBatch(key, report.violation_percent, supply_ratio);
  if (config_.enable_incentives) {
    const double incentive = incentives_.Update(
        attribute, report.violation_percent, budgets_.IsSaturated(key));
    handler_->SetIncentive(attribute, incentive);
  }
}

Result<fabric::QueryStream> CraqrEngine::Submit(
    const query::AcquisitionQuery& q) {
  CRAQR_RETURN_NOT_OK(q.Validate());
  CRAQR_ASSIGN_OR_RETURN(const ops::AttributeId attribute,
                         world_.AttributeIdByName(q.attribute));
  CRAQR_ASSIGN_OR_RETURN(fabric::QueryStream stream,
                         fabricator_->InsertQuery(attribute, q.region,
                                                  q.rate));
  CRAQR_ASSIGN_OR_RETURN(std::vector<geom::CellIndex> cells,
                         fabricator_->QueryCells(stream.id));
  for (const auto& cell : cells) {
    CRAQR_RETURN_NOT_OK(handler_->Subscribe(attribute, cell));
  }
  return stream;
}

Result<fabric::QueryStream> CraqrEngine::SubmitText(const std::string& text) {
  CRAQR_ASSIGN_OR_RETURN(const query::AcquisitionQuery parsed,
                         query::ParseQuery(text));
  return Submit(parsed);
}

Status CraqrEngine::Cancel(query::QueryId id) {
  CRAQR_ASSIGN_OR_RETURN(const fabric::QueryStream stream,
                         fabricator_->GetStream(id));
  CRAQR_ASSIGN_OR_RETURN(std::vector<geom::CellIndex> cells,
                         fabricator_->QueryCells(id));
  CRAQR_RETURN_NOT_OK(fabricator_->RemoveQuery(id));
  for (const auto& cell : cells) {
    CRAQR_RETURN_NOT_OK(handler_->Unsubscribe(stream.attribute, cell));
  }
  return Status::OK();
}

Status CraqrEngine::Step() {
  now_ += config_.step_dt;
  world_.Advance(config_.step_dt);
  CRAQR_ASSIGN_OR_RETURN(std::vector<ops::Tuple> batch, handler_->Step(now_));
  return fabricator_->ProcessBatch(batch);
}

Status CraqrEngine::RunFor(double minutes) {
  if (!(minutes >= 0.0)) {
    return Status::InvalidArgument("minutes must be >= 0");
  }
  const double deadline = now_ + minutes;
  while (now_ + 1e-12 < deadline) {
    CRAQR_RETURN_NOT_OK(Step());
  }
  return Status::OK();
}

}  // namespace engine
}  // namespace craqr
