#include "core/engine.h"

#include <cmath>
#include <limits>

#include "common/macros.h"

namespace craqr {
namespace engine {

CraqrEngine::CraqrEngine(sensing::CrowdWorld world, const geom::Grid& grid,
                         const EngineConfig& config,
                         std::unique_ptr<fabric::StreamFabricator> fabricator,
                         std::unique_ptr<runtime::ShardedFabricator> sharded,
                         server::BudgetManager budgets,
                         server::IncentiveController incentives)
    : world_(std::move(world)),
      grid_(grid),
      config_(config),
      fabricator_(std::move(fabricator)),
      sharded_(std::move(sharded)),
      budgets_(std::move(budgets)),
      incentives_(std::move(incentives)) {}

Result<std::unique_ptr<CraqrEngine>> CraqrEngine::Make(
    sensing::CrowdWorld world, const EngineConfig& config) {
  if (!(config.step_dt > 0.0)) {
    return Status::InvalidArgument("step_dt must be > 0");
  }
  if (config.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  CRAQR_ASSIGN_OR_RETURN(
      geom::Grid grid,
      geom::Grid::Make(world.population().region(), config.grid_h));
  std::unique_ptr<fabric::StreamFabricator> fabricator;
  std::unique_ptr<runtime::ShardedFabricator> sharded;
  if (config.num_shards == 1) {
    CRAQR_ASSIGN_OR_RETURN(fabricator,
                           fabric::StreamFabricator::Make(grid, config.fabric));
  } else {
    runtime::ShardedConfig sc;
    sc.num_shards = config.num_shards;
    sc.queue_capacity = config.shard_queue_capacity;
    sc.fabric = config.fabric;
    CRAQR_ASSIGN_OR_RETURN(sharded, runtime::ShardedFabricator::Make(grid, sc));
  }
  CRAQR_ASSIGN_OR_RETURN(server::BudgetManager budgets,
                         server::BudgetManager::Make(config.budget));
  CRAQR_ASSIGN_OR_RETURN(server::IncentiveController incentives,
                         server::IncentiveController::Make(config.incentive));

  auto engine = std::unique_ptr<CraqrEngine>(
      new CraqrEngine(std::move(world), grid, config, std::move(fabricator),
                      std::move(sharded), std::move(budgets),
                      std::move(incentives)));

  // The handler needs stable pointers into the engine, so it is built
  // after the engine object exists.
  CRAQR_ASSIGN_OR_RETURN(
      server::RequestResponseHandler handler,
      server::RequestResponseHandler::Make(&engine->world_, &engine->budgets_,
                                           grid, config.handler));
  engine->handler_.emplace(std::move(handler));

  // Budget tuning (paper Section V): every F-operator batch report feeds
  // N_v into the budget manager; optionally incentives react once budgets
  // saturate (Section VI extension).
  CraqrEngine* raw = engine.get();
  const fabric::ViolationCallback on_violation =
      [raw](ops::AttributeId attribute, const geom::CellIndex& cell,
            const ops::FlattenBatchReport& report) {
        raw->OnViolationReport(attribute, cell, report);
      };
  if (engine->fabricator_ != nullptr) {
    engine->fabricator_->SetViolationCallback(on_violation);
  } else {
    // Shard workers buffer reports; the runtime replays them on the
    // engine's thread at batch boundaries, so this stays single-threaded.
    engine->sharded_->SetViolationCallback(on_violation);
  }
  engine->budgets_.SetInfeasibleCallback(
      [raw](const server::BudgetKey& key, double budget) {
        (void)budget;
        raw->infeasible_log_.push_back(key);
      });
  return engine;
}

void CraqrEngine::OnViolationReport(ops::AttributeId attribute,
                                    const geom::CellIndex& cell,
                                    const ops::FlattenBatchReport& report) {
  const server::BudgetKey key{attribute, cell};
  const double supply_ratio =
      report.target_count > 0.0
          ? static_cast<double>(report.n) / report.target_count
          : std::numeric_limits<double>::infinity();
  budgets_.ReportBatch(key, report.violation_percent, supply_ratio);
  if (config_.enable_incentives) {
    const double incentive = incentives_.Update(
        attribute, report.violation_percent, budgets_.IsSaturated(key));
    handler_->SetIncentive(attribute, incentive);
  }
}

Result<fabric::QueryStream> CraqrEngine::Submit(
    const query::AcquisitionQuery& q) {
  CRAQR_RETURN_NOT_OK(q.Validate());
  CRAQR_ASSIGN_OR_RETURN(const ops::AttributeId attribute,
                         world_.AttributeIdByName(q.attribute));
  fabric::QueryStream stream;
  std::vector<geom::CellIndex> cells;
  if (sharded_ != nullptr) {
    CRAQR_ASSIGN_OR_RETURN(stream,
                           sharded_->InsertQuery(attribute, q.region, q.rate));
    CRAQR_ASSIGN_OR_RETURN(cells, sharded_->QueryCells(stream.id));
  } else {
    CRAQR_ASSIGN_OR_RETURN(
        stream, fabricator_->InsertQuery(attribute, q.region, q.rate));
    CRAQR_ASSIGN_OR_RETURN(cells, fabricator_->QueryCells(stream.id));
  }
  for (const auto& cell : cells) {
    CRAQR_RETURN_NOT_OK(handler_->Subscribe(attribute, cell));
  }
  return stream;
}

Result<fabric::QueryStream> CraqrEngine::SubmitText(const std::string& text) {
  CRAQR_ASSIGN_OR_RETURN(const query::AcquisitionQuery parsed,
                         query::ParseQuery(text));
  return Submit(parsed);
}

Status CraqrEngine::Cancel(query::QueryId id) {
  fabric::QueryStream stream;
  std::vector<geom::CellIndex> cells;
  if (sharded_ != nullptr) {
    CRAQR_ASSIGN_OR_RETURN(stream, sharded_->GetStream(id));
    CRAQR_ASSIGN_OR_RETURN(cells, sharded_->QueryCells(id));
    CRAQR_RETURN_NOT_OK(sharded_->RemoveQuery(id));
  } else {
    CRAQR_ASSIGN_OR_RETURN(stream, fabricator_->GetStream(id));
    CRAQR_ASSIGN_OR_RETURN(cells, fabricator_->QueryCells(id));
    CRAQR_RETURN_NOT_OK(fabricator_->RemoveQuery(id));
  }
  for (const auto& cell : cells) {
    CRAQR_RETURN_NOT_OK(handler_->Unsubscribe(stream.attribute, cell));
  }
  return Status::OK();
}

Status CraqrEngine::Step() {
  now_ += config_.step_dt;
  world_.Advance(config_.step_dt);
  // The handler scatters its responses straight into the recycled batch's
  // columns; the fabricators consume it row-by-row into per-chain /
  // per-shard batches. No intermediate tuple vector exists on this path.
  CRAQR_RETURN_NOT_OK(handler_->Step(now_, &step_batch_));
  return sharded_ != nullptr ? sharded_->ProcessBatch(step_batch_)
                             : fabricator_->ProcessBatch(step_batch_);
}

runtime::ShardedStats CraqrEngine::Stats() const {
  if (sharded_ != nullptr) {
    return sharded_->Snapshot();
  }
  runtime::ShardedStats stats;
  stats.tuples_routed = fabricator_->tuples_routed();
  stats.tuples_unrouted = fabricator_->tuples_unrouted();
  stats.total_operator_evaluations = fabricator_->TotalOperatorEvaluations();
  stats.total_operators = fabricator_->TotalOperators();
  stats.materialized_cells = fabricator_->NumMaterializedCells();
  stats.live_queries = fabricator_->NumQueries();
  return stats;
}

std::uint64_t CraqrEngine::TuplesRouted() const {
  return Stats().tuples_routed;
}

std::uint64_t CraqrEngine::TuplesUnrouted() const {
  return Stats().tuples_unrouted;
}

std::uint64_t CraqrEngine::TotalOperatorEvaluations() const {
  return Stats().total_operator_evaluations;
}

std::size_t CraqrEngine::NumLiveQueries() const {
  return sharded_ != nullptr ? sharded_->NumQueries()
                             : fabricator_->NumQueries();
}

Status CraqrEngine::ValidateTopology() const {
  return sharded_ != nullptr ? sharded_->ValidateInvariants()
                             : fabricator_->ValidateInvariants();
}

Status CraqrEngine::RunFor(double minutes) {
  if (!(minutes >= 0.0)) {
    return Status::InvalidArgument("minutes must be >= 0");
  }
  const double deadline = now_ + minutes;
  while (now_ + 1e-12 < deadline) {
    CRAQR_RETURN_NOT_OK(Step());
  }
  return Status::OK();
}

}  // namespace engine
}  // namespace craqr
