#include "core/naive.h"

#include "common/macros.h"

namespace craqr {
namespace engine {

Result<std::unique_ptr<NaiveEngine>> NaiveEngine::Make(
    sensing::CrowdWorld world, const EngineConfig& config) {
  if (!(config.step_dt > 0.0)) {
    return Status::InvalidArgument("step_dt must be > 0");
  }
  CRAQR_ASSIGN_OR_RETURN(
      geom::Grid grid,
      geom::Grid::Make(world.population().region(), config.grid_h));
  return std::unique_ptr<NaiveEngine>(
      new NaiveEngine(std::move(world), grid, config));
}

Result<fabric::QueryStream> NaiveEngine::Submit(
    const query::AcquisitionQuery& q) {
  CRAQR_RETURN_NOT_OK(q.Validate());
  CRAQR_ASSIGN_OR_RETURN(const ops::AttributeId attribute,
                         world_.AttributeIdByName(q.attribute));

  CRAQR_ASSIGN_OR_RETURN(server::BudgetManager budgets,
                         server::BudgetManager::Make(config_.budget));
  auto slot = std::make_unique<Slot>(std::move(budgets));
  CRAQR_ASSIGN_OR_RETURN(slot->fabricator,
                         fabric::StreamFabricator::Make(grid_, config_.fabric));
  CRAQR_ASSIGN_OR_RETURN(
      server::RequestResponseHandler handler,
      server::RequestResponseHandler::Make(&world_, &slot->budgets, grid_,
                                           config_.handler));
  slot->handler.emplace(std::move(handler));

  // Private budget tuning loop, one per query — nothing is shared.
  server::BudgetManager* slot_budgets = &slot->budgets;
  slot->fabricator->SetViolationCallback(
      [slot_budgets](ops::AttributeId attr, const geom::CellIndex& cell,
                     const ops::FlattenBatchReport& report) {
        slot_budgets->ReportViolation(server::BudgetKey{attr, cell},
                                      report.violation_percent);
      });

  CRAQR_ASSIGN_OR_RETURN(
      fabric::QueryStream stream,
      slot->fabricator->InsertQuery(attribute, q.region, q.rate));
  slot->local_id = stream.id;
  CRAQR_ASSIGN_OR_RETURN(std::vector<geom::CellIndex> cells,
                         slot->fabricator->QueryCells(stream.id));
  for (const auto& cell : cells) {
    CRAQR_RETURN_NOT_OK(slot->handler->Subscribe(attribute, cell));
  }

  const query::QueryId id = next_id_++;
  stream.id = id;  // expose the engine-level id
  slot->stream = stream;
  slots_.emplace(id, std::move(slot));
  return stream;
}

Status NaiveEngine::Cancel(query::QueryId id) {
  auto it = slots_.find(id);
  if (it == slots_.end()) {
    return Status::NotFound("query " + std::to_string(id) + " is not live");
  }
  slots_.erase(it);  // the whole private stack disappears with the slot
  return Status::OK();
}

Status NaiveEngine::Step() {
  now_ += config_.step_dt;
  world_.Advance(config_.step_dt);
  for (auto& [id, slot] : slots_) {
    (void)id;
    CRAQR_ASSIGN_OR_RETURN(std::vector<ops::Tuple> batch,
                           slot->handler->Step(now_));
    CRAQR_RETURN_NOT_OK(slot->fabricator->ProcessBatch(batch));
  }
  return Status::OK();
}

Status NaiveEngine::RunFor(double minutes) {
  if (!(minutes >= 0.0)) {
    return Status::InvalidArgument("minutes must be >= 0");
  }
  const double deadline = now_ + minutes;
  while (now_ + 1e-12 < deadline) {
    CRAQR_RETURN_NOT_OK(Step());
  }
  return Status::OK();
}

std::uint64_t NaiveEngine::TotalRequestsSent() const {
  std::uint64_t total = 0;
  for (const auto& [id, slot] : slots_) {
    (void)id;
    total += slot->handler->requests_sent();
  }
  return total;
}

std::uint64_t NaiveEngine::TotalOperatorEvaluations() const {
  std::uint64_t total = 0;
  for (const auto& [id, slot] : slots_) {
    (void)id;
    total += slot->fabricator->TotalOperatorEvaluations();
  }
  return total;
}

std::size_t NaiveEngine::TotalOperators() const {
  std::size_t total = 0;
  for (const auto& [id, slot] : slots_) {
    (void)id;
    total += slot->fabricator->TotalOperators();
  }
  return total;
}

}  // namespace engine
}  // namespace craqr
