#include "core/cost.h"

#include <sstream>

namespace craqr {
namespace engine {

double OperatorCosts::CostOf(ops::OperatorKind kind) const {
  switch (kind) {
    case ops::OperatorKind::kFlatten:
      return flatten;
    case ops::OperatorKind::kThin:
      return thin;
    case ops::OperatorKind::kPartition:
      return partition;
    case ops::OperatorKind::kUnion:
      return union_merge;
    case ops::OperatorKind::kSuperpose:
      return superpose;
    case ops::OperatorKind::kFilter:
      return filter;
    case ops::OperatorKind::kMap:
      return map;
    case ops::OperatorKind::kRateMonitor:
      return monitor;
    case ops::OperatorKind::kSink:
      return sink;
    case ops::OperatorKind::kPassThrough:
      return pass_through;
  }
  return 1.0;
}

std::string TopologyCostReport::ToString() const {
  std::ostringstream os;
  os << "cost=" << total_cost << " evaluations=" << evaluations
     << " operators=" << operators << " by_kind={";
  bool first = true;
  for (const auto& [kind, count] : evaluations_by_kind) {
    os << (first ? "" : ", ") << kind << ":" << count;
    first = false;
  }
  os << "}";
  return os.str();
}

TopologyCostReport EstimateCost(const fabric::StreamFabricator& fabricator,
                                const OperatorCosts& costs) {
  TopologyCostReport report;
  fabricator.VisitOperators([&](const ops::Operator& op) {
    const std::uint64_t evaluations = op.stats().tuples_in;
    report.total_cost +=
        static_cast<double>(evaluations) * costs.CostOf(op.kind());
    report.evaluations += evaluations;
    ++report.operators;
    report.evaluations_by_kind[ops::OperatorKindLabel(op.kind())] +=
        evaluations;
  });
  return report;
}

}  // namespace engine
}  // namespace craqr
