#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/engine.h"

/// \file naive.h
/// \brief The naive per-query baseline (paper Section III).
///
/// "The naive strategy of processing each query from scratch (i.e.,
/// individually), is not cost effective especially for the human-sensed
/// attributes. This is because the data acquired for a particular
/// attribute will not be re-used across queries."
///
/// NaiveEngine implements exactly that strategy: every query gets its own
/// private fabricator, budget manager and request/response handler, all
/// asking the same crowd — so acquisition requests and operator work are
/// duplicated instead of shared. Experiment E7 compares its cost against
/// CraqrEngine's shared topologies.

namespace craqr {
namespace engine {

/// \brief Per-query (non-sharing) acquisition engine.
class NaiveEngine {
 public:
  /// Creates a naive engine over a crowd world (attributes already
  /// registered).
  static Result<std::unique_ptr<NaiveEngine>> Make(sensing::CrowdWorld world,
                                                   const EngineConfig& config);

  NaiveEngine(const NaiveEngine&) = delete;
  NaiveEngine& operator=(const NaiveEngine&) = delete;

  /// Submits a query with its own private acquisition stack.
  Result<fabric::QueryStream> Submit(const query::AcquisitionQuery& q);

  /// Cancels a query and tears down its private stack.
  Status Cancel(query::QueryId id);

  /// Advances the simulation one step (every private handler dispatches
  /// its own requests — the duplicated cost this baseline demonstrates).
  Status Step();

  /// Runs Step() until `minutes` of simulated time have passed.
  Status RunFor(double minutes);

  /// Current simulated time (minutes).
  double now() const { return now_; }

  /// The shared crowd.
  const sensing::CrowdWorld& world() const { return world_; }

  /// Total acquisition requests across all private handlers.
  std::uint64_t TotalRequestsSent() const;

  /// Total operator evaluations across all private fabricators.
  std::uint64_t TotalOperatorEvaluations() const;

  /// Total operators across all private fabricators.
  std::size_t TotalOperators() const;

  /// Number of live queries.
  std::size_t NumQueries() const { return slots_.size(); }

 private:
  /// One query's private acquisition stack.
  struct Slot {
    std::unique_ptr<fabric::StreamFabricator> fabricator;
    server::BudgetManager budgets;
    std::optional<server::RequestResponseHandler> handler;
    query::QueryId local_id = 0;
    fabric::QueryStream stream;

    explicit Slot(server::BudgetManager b) : budgets(std::move(b)) {}
  };

  NaiveEngine(sensing::CrowdWorld world, const geom::Grid& grid,
              const EngineConfig& config)
      : world_(std::move(world)), grid_(grid), config_(config) {}

  sensing::CrowdWorld world_;
  geom::Grid grid_;
  EngineConfig config_;
  std::unordered_map<query::QueryId, std::unique_ptr<Slot>> slots_;
  query::QueryId next_id_ = 1;
  double now_ = 0.0;
};

}  // namespace engine
}  // namespace craqr
