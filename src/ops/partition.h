#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "geometry/rect.h"
#include "ops/operator.h"
#include "ops/state_serde.h"

/// \file partition.h
/// \brief The P (Partition) PMAT operator (paper Section IV-B-1).
///
/// Partitions a point process P(lambda, R*) into point processes of the
/// same rate lambda on pairwise-disjoint sub-regions: each incoming tuple
/// is routed to the output branch whose region contains it. Partitioning a
/// Poisson process by location preserves the rate on each piece, so every
/// branch carries P(lambda, R*_k).
///
/// The paper draws P with two outputs and notes it "can be easily extended
/// to partition processes into multiple regions"; this implementation is
/// k-way.

namespace craqr {
namespace ops {

/// \brief Region-routing operator. Output port k corresponds to
/// `regions()[k]`; connect branches with AddOutput in region order.
class PartitionOperator final : public Operator {
 public:
  /// Validating factory: requires >= 2 pairwise-disjoint regions of
  /// positive area.
  static Result<std::unique_ptr<PartitionOperator>> Make(
      std::string name, std::vector<geom::Rect> regions);

  Status Push(const Tuple& tuple) override;

  /// Batch-native: one branch-free containment mask per connected region
  /// (Rect::ContainsMask over the raw point column) and one mask-compact
  /// pass per port build the per-port index lists, then every non-empty
  /// port receives the same batch storage with its list adopted as the
  /// selection — tuples are never moved and the per-row region-dispatch
  /// branch is gone. The lists and masks are recycled members and the
  /// lists are always drained before returning, so Partition never
  /// buffers across batch boundaries.
  Status PushBatch(TupleBatch& batch) override;

  OperatorKind kind() const override { return OperatorKind::kPartition; }

  /// The branch regions, in output-port order.
  const std::vector<geom::Rect>& regions() const { return regions_; }

  /// Tuples that fell in none of the branch regions (dropped).
  std::uint64_t unrouted() const { return unrouted_; }

  /// \name Checkpoint support
  /// Mutable state is the base counters plus the unrouted diagnostic; the
  /// regions are construction inputs and the per-port scratch never
  /// survives a batch.
  ///@{
  void SaveState(StateWriter& w) const {
    WriteOperatorCounters(w, *this);
    w.WriteU64(unrouted_);
  }
  Status RestoreState(StateReader& r) {
    CRAQR_RETURN_NOT_OK(ReadOperatorCounters(r, this));
    return r.ReadU64(&unrouted_);
  }
  ///@}

 private:
  PartitionOperator(std::string name, std::vector<geom::Rect> regions)
      : Operator(std::move(name)), regions_(std::move(regions)) {}

  std::vector<geom::Rect> regions_;
  std::uint64_t unrouted_ = 0;
  /// Per-output-port routed index lists, recycled across batches.
  std::vector<std::vector<std::uint32_t>> port_selection_;
  /// Per-region containment masks over the raw rows, recycled likewise.
  std::vector<std::vector<std::uint8_t>> region_masks_;
};

}  // namespace ops
}  // namespace craqr
