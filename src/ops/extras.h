#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "ops/operator.h"

/// \file extras.h
/// \brief Extension PMAT operators beyond the paper's four.
///
/// The paper notes "we have researched many more operators than presented
/// below, but due to space constraints ... we only discuss four".  This
/// header provides the natural complements used by the fabricator, the
/// benchmarks and downstream applications: Superpose, Filter, Map,
/// RateMonitor, Sink and PassThrough.

namespace craqr {
namespace ops {

/// \brief S: superposes co-located point processes.  The superposition of
/// independent Poisson processes on the same region is Poisson with the
/// summed rate, so wiring two P(lambda_i, R*) streams into one Superpose
/// yields P(lambda_1 + lambda_2, R*).
class SuperposeOperator final : public Operator {
 public:
  /// Creates a superpose operator.
  static Result<std::unique_ptr<SuperposeOperator>> Make(std::string name);

  Status Push(const Tuple& tuple) override;
  Status PushBatch(TupleBatch& batch) override;
  OperatorKind kind() const override { return OperatorKind::kSuperpose; }

 private:
  explicit SuperposeOperator(std::string name) : Operator(std::move(name)) {}
};

/// \brief Sel: retains tuples satisfying a predicate (e.g. value filters on
/// the acquired attribute). Deterministic — unlike Thin it does not change
/// the process's law unless the predicate correlates with position.
class FilterOperator final : public Operator {
 public:
  using Predicate = std::function<bool(const Tuple&)>;

  /// Creates a filter; requires a callable predicate.
  static Result<std::unique_ptr<FilterOperator>> Make(std::string name,
                                                      Predicate predicate);

  Status Push(const Tuple& tuple) override;

  /// Batch-native: in-place compaction of the tuples satisfying the
  /// predicate, then one downstream emit.
  Status PushBatch(TupleBatch& batch) override;

  OperatorKind kind() const override { return OperatorKind::kFilter; }

 private:
  FilterOperator(std::string name, Predicate predicate)
      : Operator(std::move(name)), predicate_(std::move(predicate)) {}

  Predicate predicate_;
};

/// \brief Map: applies a transform to each tuple (unit conversion,
/// calibration, anonymisation of sensor ids, ...).
class MapOperator final : public Operator {
 public:
  using Transform = std::function<Tuple(const Tuple&)>;

  /// Creates a map; requires a callable transform.
  static Result<std::unique_ptr<MapOperator>> Make(std::string name,
                                                   Transform transform);

  Status Push(const Tuple& tuple) override;

  /// Batch-native: transforms every tuple in place, then one emit.
  Status PushBatch(TupleBatch& batch) override;

  OperatorKind kind() const override { return OperatorKind::kMap; }

 private:
  MapOperator(std::string name, Transform transform)
      : Operator(std::move(name)), transform_(std::move(transform)) {}

  Transform transform_;
};

/// \brief Mon: windowed empirical-rate probe.
///
/// Forwards every tuple unchanged while recording the tuple count of each
/// fixed-duration time window; per-window counts divided by
/// `window_duration * area` estimate the stream's spatio-temporal rate.
/// Used by tests and benches to verify delivered rates against requested
/// rates.
class RateMonitorOperator final : public Operator {
 public:
  /// Creates a monitor with a window of `window_duration` minutes over a
  /// stream whose spatial extent has `area` km^2. Both must be positive.
  static Result<std::unique_ptr<RateMonitorOperator>> Make(
      std::string name, double window_duration, double area);

  Status Push(const Tuple& tuple) override;

  /// Batch-native: one sweep advancing the window accounting (identical
  /// per-tuple window transitions), then the batch is forwarded whole.
  Status PushBatch(TupleBatch& batch) override;

  OperatorKind kind() const override { return OperatorKind::kRateMonitor; }

  /// \brief Closes the currently open (partial) window and records it.
  /// Windows otherwise close on event time only — batch-boundary Flush()
  /// deliberately does NOT close them, since a flush happens every
  /// processing step, not every window.
  void CloseCurrentWindow();

  /// Statistics over closed windows' empirical rates (tuples/km^2/min).
  const RunningStats& window_rates() const { return window_rates_; }

  /// Mean empirical rate over all closed windows.
  double MeanRate() const { return window_rates_.Mean(); }

 private:
  RateMonitorOperator(std::string name, double window_duration, double area)
      : Operator(std::move(name)),
        window_duration_(window_duration),
        area_(area) {}

  /// Advances the window accounting by one arrival at time `t`; shared by
  /// the per-tuple and batch paths so they cannot drift.
  void Observe(double t);

  void CloseWindowsUpTo(double t);

  double window_duration_;
  double area_;
  bool window_open_ = false;
  double window_end_ = 0.0;
  std::uint64_t window_count_ = 0;
  RunningStats window_rates_;
};

/// \brief Sink: the endpoint of a fabricated crowdsensed data stream.
///
/// Collects tuples into an in-memory buffer and/or forwards them to a
/// callback. The buffer is capped; once full, the oldest tuples are
/// evicted (the stream is a stream, not a table).
///
/// Two delivery shapes exist: the per-tuple `Callback` (plus the capped
/// buffer), and the whole-batch `BatchCallback` used by delivery-only
/// sinks (MakeBatched) — e.g. the sharded runtime's partial streams, which
/// splice each delivered batch into the shard outbox under one mutex
/// acquisition instead of one per tuple. Batched sinks do not retain
/// tuples in the buffer (they exist to forward, not to store); counters
/// account arrivals identically either way.
class SinkOperator final : public Operator {
 public:
  using Callback = std::function<void(const Tuple&)>;
  /// Receives each delivered batch; active tuples only, arrival order.
  /// The batch is the caller's storage — copy out, never restructure.
  using BatchCallback = std::function<void(const TupleBatch&)>;

  /// Creates a sink retaining up to `capacity` most-recent tuples
  /// (capacity >= 1); `callback` may be null.
  static Result<std::unique_ptr<SinkOperator>> Make(
      std::string name, std::size_t capacity = 1 << 20,
      Callback callback = nullptr);

  /// Creates a delivery-only sink: every pushed tuple/batch reaches
  /// `callback` as a batch; nothing is buffered.
  static Result<std::unique_ptr<SinkOperator>> MakeBatched(
      std::string name, BatchCallback callback);

  Status Push(const Tuple& tuple) override;

  /// Batch-native: one batch-callback invocation (batched sinks) or one
  /// storing sweep with the same eviction points the per-tuple path
  /// produces.
  Status PushBatch(TupleBatch& batch) override;

  OperatorKind kind() const override { return OperatorKind::kSink; }

  /// Retained tuples, oldest first.
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Total tuples ever received (including evicted ones).
  std::uint64_t total_received() const { return stats().tuples_in; }

  /// Clears the buffer (counters are preserved).
  void Clear() { tuples_.clear(); }

  /// Evacuates retained tuples' string payloads before pool generation
  /// retirement (memory governor) — the sink buffer stores delivered
  /// streams for arbitrarily long.
  void ReinternStrings(ValuePool& pool) override {
    for (Tuple& t : tuples_) {
      if (t.value.kind() == PayloadKind::kString) {
        t.value = PayloadRef::InternedString(pool.ReinternHandle(
            pool.Get(t.value.string_id(), t.value.string_generation())));
      }
    }
  }

 private:
  SinkOperator(std::string name, std::size_t capacity, Callback callback,
               BatchCallback batch_callback)
      : Operator(std::move(name)),
        capacity_(capacity),
        callback_(std::move(callback)),
        batch_callback_(std::move(batch_callback)) {}

  /// Delivers one tuple (callback + capped buffer append with eviction);
  /// shared by the per-tuple and batch paths so they cannot drift.
  void Store(const Tuple& tuple);

  std::size_t capacity_;
  Callback callback_;
  BatchCallback batch_callback_;
  std::vector<Tuple> tuples_;
  /// Recycled single-row wrapper for Push on a batched sink.
  TupleBatch push_scratch_;
};

/// \brief Id: forwards tuples unchanged. Used as an explicit branching
/// point and as a neutral connector in topology surgery.
class PassThroughOperator final : public Operator {
 public:
  /// Creates a pass-through operator.
  static Result<std::unique_ptr<PassThroughOperator>> Make(std::string name);

  Status Push(const Tuple& tuple) override;
  Status PushBatch(TupleBatch& batch) override;
  OperatorKind kind() const override { return OperatorKind::kPassThrough; }

 private:
  explicit PassThroughOperator(std::string name) : Operator(std::move(name)) {}
};

}  // namespace ops
}  // namespace craqr
