#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "ops/tuple.h"

/// \file operator.h
/// \brief Base class of PMAT (point-process transformation) operators.
///
/// PMAT operators are push-based streaming operators over crowdsensed
/// tuples (paper Section IV-B).  Operators are wired into an execution
/// topology: each operator forwards accepted tuples to its downstream
/// outputs.  An operator with more than one output is a *branching point*
/// in the paper's terminology; the Partition operator routes each tuple to
/// exactly one branch while every other operator broadcasts.

namespace craqr {
namespace ops {

/// \brief Discriminates operator kinds; mirrors the paper's block labels.
enum class OperatorKind {
  kFlatten,    ///< F: inhomogeneous -> approximately homogeneous
  kThin,       ///< T: rate reduction
  kPartition,  ///< P: spatial split
  kUnion,      ///< U: spatial merge
  kSuperpose,  ///< extension: merge co-located processes (rates add)
  kFilter,     ///< extension: predicate filter
  kMap,        ///< extension: tuple transform
  kRateMonitor,///< extension: windowed empirical-rate probe
  kSink,       ///< stream endpoint collecting the fabricated MCDS
  kPassThrough ///< no-op connector / explicit branching point
};

/// Short block label for an operator kind ("F", "T", ...).
const char* OperatorKindLabel(OperatorKind kind);

/// \brief Throughput counters every operator maintains.
struct OperatorStats {
  std::uint64_t tuples_in = 0;
  std::uint64_t tuples_out = 0;
};

/// \brief Base class for all PMAT operators.
///
/// Not thread-safe: a topology is driven by a single thread (the
/// fabricator), matching the paper's per-grid-cell execution model.
class Operator {
 public:
  /// Constructs an operator with a diagnostic name.
  explicit Operator(std::string name) : name_(std::move(name)) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  /// Processes one incoming tuple, possibly emitting to outputs.
  virtual Status Push(const Tuple& tuple) = 0;

  /// \brief Signals a batch boundary (request/response handler batches,
  /// paper Section V "Stream Fabrication"). Buffering operators release
  /// retained tuples here; the default implementation does nothing.
  virtual Status Flush() { return Status::OK(); }

  /// The operator's kind.
  virtual OperatorKind kind() const = 0;

  /// Diagnostic name.
  const std::string& name() const { return name_; }

  /// Adds a downstream operator; returns the output-port index.
  std::size_t AddOutput(Operator* output);

  /// Removes the first edge to `output`; returns true when an edge was
  /// removed. Used by the fabricator's topology surgery (query insertion
  /// and deletion re-wire T-chains).
  bool RemoveOutput(Operator* output);

  /// Downstream operators in port order.
  const std::vector<Operator*>& outputs() const { return outputs_; }

  /// True when this operator has more than one output (the paper's
  /// "branching point").
  bool IsBranchingPoint() const { return outputs_.size() > 1; }

  /// Throughput counters.
  const OperatorStats& stats() const { return stats_; }

  /// Resets throughput counters.
  void ResetStats() { stats_ = OperatorStats(); }

 protected:
  /// Records an arrival; subclasses call this at the top of Push.
  void CountIn() { ++stats_.tuples_in; }

  /// Broadcasts a tuple to all outputs (counting it once as emitted).
  Status Emit(const Tuple& tuple);

  /// Sends a tuple to one output port only (Partition-style routing).
  Status EmitTo(std::size_t port, const Tuple& tuple);

 private:
  std::string name_;
  std::vector<Operator*> outputs_;
  OperatorStats stats_;
};

}  // namespace ops
}  // namespace craqr
