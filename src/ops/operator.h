#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ops/tuple.h"
#include "ops/tuple_batch.h"

/// \file operator.h
/// \brief Base class of PMAT (point-process transformation) operators.
///
/// PMAT operators are push-based streaming operators over crowdsensed
/// tuples (paper Section IV-B).  Operators are wired into an execution
/// topology: each operator forwards accepted tuples to its downstream
/// outputs.  An operator with more than one output is a *branching point*
/// in the paper's terminology; the Partition operator routes each tuple to
/// exactly one branch while every other operator broadcasts.
///
/// Execution is batch-at-a-time on the hot path: the fabricator drives
/// each cell topology through `PushBatch`, and batch-native operators
/// forward whole `TupleBatch`es downstream (moving the batch when a single
/// output consumes it). The tuple-at-a-time `Push` remains both as the
/// fallback the base `PushBatch` uses — so operators opt in one at a time
/// — and as the reference semantics: a batch-driven topology must deliver
/// exactly the streams the per-tuple path delivers.

namespace craqr {
namespace ops {

/// \brief Discriminates operator kinds; mirrors the paper's block labels.
enum class OperatorKind {
  kFlatten,    ///< F: inhomogeneous -> approximately homogeneous
  kThin,       ///< T: rate reduction
  kPartition,  ///< P: spatial split
  kUnion,      ///< U: spatial merge
  kSuperpose,  ///< extension: merge co-located processes (rates add)
  kFilter,     ///< extension: predicate filter
  kMap,        ///< extension: tuple transform
  kRateMonitor,///< extension: windowed empirical-rate probe
  kSink,       ///< stream endpoint collecting the fabricated MCDS
  kPassThrough,///< no-op connector / explicit branching point
  kReorder     ///< merge-stage buffer restoring canonical (t, id) order
};

/// Number of OperatorKind values (dense, 0-based) — sizes the per-kind
/// observability metric tables.
inline constexpr std::size_t kNumOperatorKinds =
    static_cast<std::size_t>(OperatorKind::kReorder) + 1;

/// Short block label for an operator kind ("F", "T", ...).
const char* OperatorKindLabel(OperatorKind kind);

/// \brief Throughput counters every operator maintains.
struct OperatorStats {
  std::uint64_t tuples_in = 0;
  std::uint64_t tuples_out = 0;
};

/// \brief Base class for all PMAT operators.
///
/// Not thread-safe: a topology is driven by a single thread (the
/// fabricator), matching the paper's per-grid-cell execution model.
class Operator {
 public:
  /// Constructs an operator with a diagnostic name.
  explicit Operator(std::string name) : name_(std::move(name)) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  /// Processes one incoming tuple, possibly emitting to outputs.
  virtual Status Push(const Tuple& tuple) = 0;

  /// \brief Processes a whole batch of tuples (the vectorized hot path).
  ///
  /// Contract:
  ///  - **consumption**: `batch` is consumed. The callee may deselect
  ///    tuples (selection vector), transform active rows in place
  ///    (StoreRowAt), and copy active rows out — but must never
  ///    restructure the caller's storage (no
  ///    Clear/Swap/Materialize/SortByTimeThenId/Append): the storage may
  ///    be shared across a Partition's output ports. The owner treats the
  ///    contents as unspecified afterwards and Clear()s before reuse
  ///    (capacity is retained — recycling). Rows are 56-byte flat values
  ///    (columnar storage, pool-backed string payloads), so "moving" a
  ///    tuple out is an ordinary copy with no heap traffic.
  ///  - **ordering**: active tuples arrive in stream order and
  ///    implementations process them — and in particular draw randomness
  ///    — in that order, so batch execution delivers byte-for-byte the
  ///    per-tuple stream along every downstream edge. When one operator
  ///    consumes several upstream edges (two Partition branches, or a
  ///    multi-cell query's merge head fed by several cell chains), the
  ///    interleaving *across* edges is batch-grouped rather than
  ///    per-tuple-interleaved: the consumer sees the same per-edge
  ///    subsequences, so delivered tuple content is path-independent,
  ///    but cross-edge order (and order-sensitive probes like the rate
  ///    monitor's windows) can differ slightly between execution paths.
  ///  - **counters**: implementations account `OperatorStats` exactly as
  ///    the per-tuple path would (`CountIn(batch.size())` on entry; batch
  ///    `Emit`/`EmitTo` add the emitted batch size to `tuples_out`).
  ///  - **opt-in**: the base implementation falls back to per-tuple
  ///    `Push`, so mixed chains of batch-native and per-tuple operators
  ///    stay correct.
  virtual Status PushBatch(TupleBatch& batch);

  /// \brief Signals a batch boundary (request/response handler batches,
  /// paper Section V "Stream Fabrication"). Buffering operators release
  /// retained tuples here; the default implementation does nothing.
  virtual Status Flush() { return Status::OK(); }

  /// \brief Re-interns every string payload the operator retains across
  /// batch boundaries (buffers, stored tuples) into `pool`'s current tier
  /// — the evacuation step the memory governor runs at an epoch barrier
  /// before retiring older pool generations (see value_pool.h). Values
  /// are untouched, only handles move. The default implementation does
  /// nothing; operators with tuple-holding state override it.
  virtual void ReinternStrings(ValuePool& pool) { (void)pool; }

  /// The operator's kind.
  virtual OperatorKind kind() const = 0;

  /// Diagnostic name.
  const std::string& name() const { return name_; }

  /// Adds a downstream operator; returns the output-port index.
  std::size_t AddOutput(Operator* output);

  /// Removes the first edge to `output`; returns true when an edge was
  /// removed. Used by the fabricator's topology surgery (query insertion
  /// and deletion re-wire T-chains).
  bool RemoveOutput(Operator* output);

  /// Downstream operators in port order.
  const std::vector<Operator*>& outputs() const { return outputs_; }

  /// True when this operator has more than one output (the paper's
  /// "branching point").
  bool IsBranchingPoint() const { return outputs_.size() > 1; }

  /// Throughput counters.
  const OperatorStats& stats() const { return stats_; }

  /// Resets throughput counters.
  void ResetStats() { stats_ = OperatorStats(); }

  /// Overwrites throughput counters from a checkpoint. The per-operator
  /// conservation validators compare these across edges, so a restored
  /// topology must resume with its exact pre-crash counters.
  void RestoreStats(const OperatorStats& stats) { stats_ = stats; }

 protected:
  /// Records an arrival; subclasses call this at the top of Push. Also
  /// feeds the process-wide per-operator-kind dispatch metrics
  /// (craqr.ops.<Kind>.*) unless observability is compiled out
  /// (-DCRAQR_OBS_DISABLED) or disabled at runtime (obs::SetEnabled).
  void CountIn() {
    ++stats_.tuples_in;
#ifndef CRAQR_OBS_DISABLED
    RecordDispatch(1);
#endif
  }

  /// Records `n` arrivals; batch-native subclasses call this at the top
  /// of PushBatch.
  void CountIn(std::size_t n) {
    stats_.tuples_in += n;
#ifndef CRAQR_OBS_DISABLED
    RecordDispatch(n);
#endif
  }

  /// Broadcasts a tuple to all outputs (counting it once as emitted).
  Status Emit(const Tuple& tuple);

  /// Sends a tuple to one output port only (Partition-style routing).
  Status EmitTo(std::size_t port, const Tuple& tuple);

  /// \brief Broadcasts a batch to all outputs, counting `batch.size()`
  /// emitted tuples. Outputs are fed in port order; all but the last
  /// receive a copy (via a recycled scratch batch) and the last consumes
  /// the batch itself — so the common single-output edge moves, never
  /// copies. The batch is consumed either way.
  Status Emit(TupleBatch& batch);

  /// Sends a batch to one output port only, counting `batch.size()`
  /// emitted tuples; the downstream operator consumes the batch (move).
  Status EmitTo(std::size_t port, TupleBatch& batch);

 private:
  /// Per-kind dispatch telemetry (evaluation count, tuple count, batch
  /// size histogram); out-of-line so the header needs no obs dependency.
  /// Cheap: three relaxed atomic adds behind one enabled check.
  void RecordDispatch(std::size_t n);

  std::string name_;
  std::vector<Operator*> outputs_;
  OperatorStats stats_;
  /// Recycled copy target for multi-output batch broadcasts; allocated
  /// lazily on the first broadcast so the many single-output operators
  /// (sinks, monitors, untapped chain links) don't carry it.
  std::unique_ptr<TupleBatch> broadcast_scratch_;
};

/// \brief Per-operator throughput-counter conservation check, used by the
/// fabricator invariant validators to assert the batch path accounts
/// `tuples_in`/`tuples_out` exactly like the per-tuple path: forwarding
/// operators (U, S, Id, Map, Mon) emit everything they receive, Partition
/// emits everything it does not count unrouted, a Sink emits nothing, and
/// buffering or dropping operators (F, T, Sel, Ord) never emit more than
/// they received (Ord holds tuples only between a push and the flush that
/// ends the processing step, so validation at step boundaries sees
/// equality).
Status ValidateStatsConservation(const Operator& op);

}  // namespace ops
}  // namespace craqr
