#pragma once

#include <memory>

#include "common/result.h"
#include "common/rng.h"
#include "ops/operator.h"
#include "ops/state_serde.h"

/// \file thin.h
/// \brief The T (Thin) PMAT operator (paper Section IV-B-1).
///
/// Converts a homogeneous MDPP P(lambda1, R*) into P(lambda2, R*) with
/// lambda2 < lambda1 by independent Bernoulli(lambda2/lambda1) retention —
/// "a biased coin toss with bias p".  Independent thinning of a Poisson
/// process with probability p yields a Poisson process of rate p*lambda, so
/// the output has exactly the desired rate in expectation.

namespace craqr {
namespace ops {

/// \brief Bernoulli rate-reduction operator.
class ThinOperator final : public Operator {
 public:
  /// Creates a thin from `input_rate` down to `output_rate`.
  /// Requires 0 < output_rate < input_rate (the paper's "strictly less"
  /// precondition) and a non-null rng.
  static Result<std::unique_ptr<ThinOperator>> Make(std::string name,
                                                    double input_rate,
                                                    double output_rate,
                                                    Rng rng);

  Status Push(const Tuple& tuple) override;

  /// Batch-native: one branch-free Bernoulli mask fill
  /// (Rng::FillBernoulliMask) plus one mask-compact selection rewrite
  /// (TupleBatch::RetainFromMask) — no tuple is moved, no per-row branch
  /// is taken — then a single downstream emit. Draw order equals the
  /// per-tuple path's by construction (both compare raw words against
  /// Rng::BernoulliThreshold).
  Status PushBatch(TupleBatch& batch) override;

  OperatorKind kind() const override { return OperatorKind::kThin; }

  /// The assumed input rate lambda1.
  double input_rate() const { return input_rate_; }

  /// The target output rate lambda2.
  double output_rate() const { return output_rate_; }

  /// Retention probability lambda2 / lambda1.
  double retain_probability() const { return output_rate_ / input_rate_; }

  /// \brief Re-points the operator at new rates; used by the fabricator
  /// when T-chains are re-sorted or merged (paper Section V, rules 1-2).
  /// Same preconditions as Make.
  Status UpdateRates(double input_rate, double output_rate);

  /// \name Checkpoint support
  /// The operator's mutable state is the RNG phase plus the base
  /// throughput counters; the rates and name are construction inputs
  /// re-supplied by the checkpoint's topology record.
  ///@{
  void SaveState(StateWriter& w) const {
    WriteOperatorCounters(w, *this);
    WriteRngState(w, rng_);
  }
  Status RestoreState(StateReader& r) {
    CRAQR_RETURN_NOT_OK(ReadOperatorCounters(r, this));
    return ReadRngState(r, &rng_);
  }
  ///@}

 private:
  ThinOperator(std::string name, double input_rate, double output_rate,
               Rng rng)
      : Operator(std::move(name)),
        input_rate_(input_rate),
        output_rate_(output_rate),
        rng_(rng) {}

  double input_rate_;
  double output_rate_;
  Rng rng_;
  /// Recycled Bernoulli-mask buffer for the batch sweep.
  std::vector<std::uint8_t> mask_;
};

}  // namespace ops
}  // namespace craqr
