#include "ops/union_op.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace craqr {
namespace ops {

Result<std::unique_ptr<UnionOperator>> UnionOperator::Make(
    std::string name, std::vector<geom::Rect> input_regions) {
  if (input_regions.size() < 2) {
    return Status::InvalidArgument("union requires at least two regions");
  }
  double total_area = 0.0;
  geom::Rect bbox = input_regions.front();
  for (std::size_t i = 0; i < input_regions.size(); ++i) {
    const auto& region = input_regions[i];
    if (region.IsEmpty()) {
      return Status::InvalidArgument("union region " + std::to_string(i) +
                                     " must have positive area");
    }
    total_area += region.Area();
    bbox = geom::Rect(std::min(bbox.x_min(), region.x_min()),
                      std::min(bbox.y_min(), region.y_min()),
                      std::max(bbox.x_max(), region.x_max()),
                      std::max(bbox.y_max(), region.y_max()));
    for (std::size_t j = i + 1; j < input_regions.size(); ++j) {
      if (!region.IsDisjoint(input_regions[j])) {
        std::ostringstream msg;
        msg << "union input regions must be disjoint; " << region.ToString()
            << " overlaps " << input_regions[j].ToString();
        return Status::FailedPrecondition(msg.str());
      }
    }
  }
  // The disjoint pieces must tile a rectangle — the k-way generalisation of
  // the paper's "adjacent with a common side of equal length" rule.
  const double area_gap = std::fabs(bbox.Area() - total_area);
  if (area_gap > 1e-9 * std::max(1.0, bbox.Area())) {
    std::ostringstream msg;
    msg << "union input regions must tile a rectangle (adjacent with common "
           "sides); pieces cover "
        << total_area << " of bounding box " << bbox.ToString() << " area "
        << bbox.Area();
    return Status::FailedPrecondition(msg.str());
  }
  return std::unique_ptr<UnionOperator>(
      new UnionOperator(std::move(name), std::move(input_regions), bbox));
}

Status UnionOperator::Push(const Tuple& tuple) {
  CountIn();
  bool inside = false;
  for (const auto& region : input_regions_) {
    if (region.Contains(tuple.point.x, tuple.point.y)) {
      inside = true;
      break;
    }
  }
  if (!inside) {
    ++out_of_region_;
  }
  return Emit(tuple);
}

Status UnionOperator::PushBatch(TupleBatch& batch) {
  const std::size_t active = batch.size();
  CountIn(active);
  // Branch-free membership sweep: OR the per-region containment masks
  // over the raw point column into one "inside any input region" mask,
  // then count the active rows left outside — no per-row region loop, no
  // early-exit branch. Husk rows are masked too but never counted.
  const Span<const geom::SpaceTimePoint> points = batch.RawPoints();
  const std::size_t raw_n = batch.raw_size();
  inside_mask_.assign(raw_n, 0);
  for (const auto& region : input_regions_) {
    region.ContainsMaskOr(points, inside_mask_.data());
  }
  out_of_region_ +=
      active - batch.CountActiveWhere({inside_mask_.data(), raw_n});
  return Emit(batch);
}

}  // namespace ops
}  // namespace craqr
