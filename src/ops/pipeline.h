#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ops/operator.h"

/// \file pipeline.h
/// \brief Ownership and wiring helper for execution topologies.
///
/// The fabricator builds per-grid-cell execution topologies out of PMAT
/// operators (paper Section V). A Pipeline owns the operators, preserves
/// insertion order (upstream-first, the order builders naturally use), and
/// offers whole-topology flush and statistics.

namespace craqr {
namespace ops {

/// \brief An owning container of a connected operator topology.
class Pipeline {
 public:
  Pipeline() = default;
  Pipeline(Pipeline&&) = default;
  Pipeline& operator=(Pipeline&&) = default;

  /// Transfers ownership of an operator into the pipeline and returns the
  /// raw pointer for wiring. Operators must be added upstream-first if
  /// FlushAll is to release buffered tuples in a single pass.
  template <typename T>
  T* Add(std::unique_ptr<T> op) {
    T* raw = op.get();
    operators_.push_back(std::move(op));
    return raw;
  }

  /// Connects `from` -> `to` and returns `from`'s output-port index.
  static std::size_t Connect(Operator* from, Operator* to) {
    return from->AddOutput(to);
  }

  /// Destroys an owned operator. The caller must already have removed all
  /// edges pointing at it; returns true when the operator was owned here.
  bool Remove(Operator* op);

  /// Flushes every operator in insertion (upstream-first) order.
  Status FlushAll();

  /// All owned operators in insertion order.
  const std::vector<std::unique_ptr<Operator>>& operators() const {
    return operators_;
  }

  /// Number of owned operators.
  std::size_t size() const { return operators_.size(); }

  /// Sum of tuples_in over all operators — the total operator evaluations,
  /// the multi-query cost metric of experiment E7.
  std::uint64_t TotalOperatorEvaluations() const;

  /// Renders the topology as an indented tree per source operator (an
  /// operator no other operator feeds), for debugging and the Fig-2 bench.
  std::string ToDot() const;

 private:
  std::vector<std::unique_ptr<Operator>> operators_;
};

}  // namespace ops
}  // namespace craqr
