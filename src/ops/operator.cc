#include "ops/operator.h"

#include <array>
#include <string>

#include "common/macros.h"
#include "obs/metrics.h"
#include "ops/partition.h"

namespace craqr {
namespace ops {

namespace {

/// Per-kind dispatch metrics, resolved once (thread-safe magic static)
/// and cached as stable registry pointers.
struct KindMetrics {
  obs::Counter* evaluations = nullptr;
  obs::Counter* tuples_in = nullptr;
  obs::LogHistogram* batch_size = nullptr;
};

const std::array<KindMetrics, kNumOperatorKinds>& DispatchMetrics() {
  static const std::array<KindMetrics, kNumOperatorKinds> metrics = [] {
    std::array<KindMetrics, kNumOperatorKinds> m{};
    for (std::size_t k = 0; k < kNumOperatorKinds; ++k) {
      const std::string base =
          std::string("craqr.ops.") +
          OperatorKindLabel(static_cast<OperatorKind>(k));
      m[k].evaluations = obs::GetCounter(base + ".evaluations");
      m[k].tuples_in = obs::GetCounter(base + ".tuples_in");
      m[k].batch_size = obs::GetHistogram(base + ".batch_size");
    }
    return m;
  }();
  return metrics;
}

}  // namespace

void Operator::RecordDispatch(std::size_t n) {
  if (!obs::IsEnabled()) {
    return;
  }
  const KindMetrics& m =
      DispatchMetrics()[static_cast<std::size_t>(kind())];
  m.evaluations->Increment();
  m.tuples_in->Add(n);
  m.batch_size->Record(n);
}

const char* OperatorKindLabel(OperatorKind kind) {
  switch (kind) {
    case OperatorKind::kFlatten:
      return "F";
    case OperatorKind::kThin:
      return "T";
    case OperatorKind::kPartition:
      return "P";
    case OperatorKind::kUnion:
      return "U";
    case OperatorKind::kSuperpose:
      return "S";
    case OperatorKind::kFilter:
      return "Sel";
    case OperatorKind::kMap:
      return "Map";
    case OperatorKind::kRateMonitor:
      return "Mon";
    case OperatorKind::kSink:
      return "Sink";
    case OperatorKind::kPassThrough:
      return "Id";
    case OperatorKind::kReorder:
      return "Ord";
  }
  return "?";
}

std::size_t Operator::AddOutput(Operator* output) {
  outputs_.push_back(output);
  return outputs_.size() - 1;
}

bool Operator::RemoveOutput(Operator* output) {
  for (auto it = outputs_.begin(); it != outputs_.end(); ++it) {
    if (*it == output) {
      outputs_.erase(it);
      return true;
    }
  }
  return false;
}

Status Operator::Emit(const Tuple& tuple) {
  ++stats_.tuples_out;
  for (Operator* out : outputs_) {
    CRAQR_RETURN_NOT_OK(out->Push(tuple));
  }
  return Status::OK();
}

Status Operator::EmitTo(std::size_t port, const Tuple& tuple) {
  if (port >= outputs_.size()) {
    return Status::OutOfRange("no operator connected to output port " +
                              std::to_string(port) + " of " + name_);
  }
  ++stats_.tuples_out;
  return outputs_[port]->Push(tuple);
}

Status Operator::PushBatch(TupleBatch& batch) {
  // Fallback for operators that have not opted into batch execution: the
  // per-tuple path, tuple by tuple in arrival order.
  Status status = Status::OK();
  batch.ForEach([this, &status](const Tuple& tuple) {
    if (status.ok()) {
      status = Push(tuple);
    }
  });
  return status;
}

Status Operator::Emit(TupleBatch& batch) {
  stats_.tuples_out += batch.size();
  if (batch.empty() || outputs_.empty()) {
    return Status::OK();
  }
  // Port order matches the per-tuple Emit; all but the last output
  // receive a materialized copy, the last consumes the batch in place.
  if (outputs_.size() > 1 && broadcast_scratch_ == nullptr) {
    broadcast_scratch_ = std::make_unique<TupleBatch>();
  }
  for (std::size_t i = 0; i + 1 < outputs_.size(); ++i) {
    broadcast_scratch_->CopyFrom(batch);
    CRAQR_RETURN_NOT_OK(outputs_[i]->PushBatch(*broadcast_scratch_));
    broadcast_scratch_->Clear();
  }
  return outputs_.back()->PushBatch(batch);
}

Status Operator::EmitTo(std::size_t port, TupleBatch& batch) {
  if (port >= outputs_.size()) {
    return Status::OutOfRange("no operator connected to output port " +
                              std::to_string(port) + " of " + name_);
  }
  stats_.tuples_out += batch.size();
  return outputs_[port]->PushBatch(batch);
}

Status ValidateStatsConservation(const Operator& op) {
  const OperatorStats& s = op.stats();
  const auto fail = [&op](const std::string& what) {
    return Status::Internal("operator stats conservation violated: " +
                            op.name() + " " + what);
  };
  switch (op.kind()) {
    case OperatorKind::kUnion:
    case OperatorKind::kSuperpose:
    case OperatorKind::kMap:
    case OperatorKind::kRateMonitor:
    case OperatorKind::kPassThrough:
      if (s.tuples_out != s.tuples_in) {
        return fail("forwards all tuples but out=" +
                    std::to_string(s.tuples_out) + " != in=" +
                    std::to_string(s.tuples_in));
      }
      break;
    case OperatorKind::kPartition: {
      const auto& partition = static_cast<const PartitionOperator&>(op);
      if (s.tuples_out + partition.unrouted() != s.tuples_in) {
        return fail("out=" + std::to_string(s.tuples_out) + " + unrouted=" +
                    std::to_string(partition.unrouted()) + " != in=" +
                    std::to_string(s.tuples_in));
      }
      break;
    }
    case OperatorKind::kSink:
      if (s.tuples_out != 0) {
        return fail("sink emitted " + std::to_string(s.tuples_out) +
                    " tuples");
      }
      break;
    case OperatorKind::kFlatten:  // may buffer and discard
    case OperatorKind::kThin:
    case OperatorKind::kFilter:
    case OperatorKind::kReorder:  // buffers between push and flush
      if (s.tuples_out > s.tuples_in) {
        return fail("emitted more than received: out=" +
                    std::to_string(s.tuples_out) + " > in=" +
                    std::to_string(s.tuples_in));
      }
      break;
  }
  return Status::OK();
}

}  // namespace ops
}  // namespace craqr
