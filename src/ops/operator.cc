#include "ops/operator.h"

#include "common/macros.h"

namespace craqr {
namespace ops {

const char* OperatorKindLabel(OperatorKind kind) {
  switch (kind) {
    case OperatorKind::kFlatten:
      return "F";
    case OperatorKind::kThin:
      return "T";
    case OperatorKind::kPartition:
      return "P";
    case OperatorKind::kUnion:
      return "U";
    case OperatorKind::kSuperpose:
      return "S";
    case OperatorKind::kFilter:
      return "Sel";
    case OperatorKind::kMap:
      return "Map";
    case OperatorKind::kRateMonitor:
      return "Mon";
    case OperatorKind::kSink:
      return "Sink";
    case OperatorKind::kPassThrough:
      return "Id";
  }
  return "?";
}

std::size_t Operator::AddOutput(Operator* output) {
  outputs_.push_back(output);
  return outputs_.size() - 1;
}

bool Operator::RemoveOutput(Operator* output) {
  for (auto it = outputs_.begin(); it != outputs_.end(); ++it) {
    if (*it == output) {
      outputs_.erase(it);
      return true;
    }
  }
  return false;
}

Status Operator::Emit(const Tuple& tuple) {
  ++stats_.tuples_out;
  for (Operator* out : outputs_) {
    CRAQR_RETURN_NOT_OK(out->Push(tuple));
  }
  return Status::OK();
}

Status Operator::EmitTo(std::size_t port, const Tuple& tuple) {
  if (port >= outputs_.size()) {
    return Status::OutOfRange("no operator connected to output port " +
                              std::to_string(port) + " of " + name_);
  }
  ++stats_.tuples_out;
  return outputs_[port]->Push(tuple);
}

}  // namespace ops
}  // namespace craqr
