#include "ops/extras.h"

#include <cmath>
#include <utility>

namespace craqr {
namespace ops {

// ---------------------------------------------------------------------------
// SuperposeOperator

Result<std::unique_ptr<SuperposeOperator>> SuperposeOperator::Make(
    std::string name) {
  return std::unique_ptr<SuperposeOperator>(
      new SuperposeOperator(std::move(name)));
}

Status SuperposeOperator::Push(const Tuple& tuple) {
  CountIn();
  return Emit(tuple);
}

Status SuperposeOperator::PushBatch(TupleBatch& batch) {
  CountIn(batch.size());
  return Emit(batch);
}

// ---------------------------------------------------------------------------
// FilterOperator

Result<std::unique_ptr<FilterOperator>> FilterOperator::Make(
    std::string name, Predicate predicate) {
  if (!predicate) {
    return Status::InvalidArgument("filter requires a predicate");
  }
  return std::unique_ptr<FilterOperator>(
      new FilterOperator(std::move(name), std::move(predicate)));
}

Status FilterOperator::Push(const Tuple& tuple) {
  CountIn();
  if (predicate_(tuple)) {
    return Emit(tuple);
  }
  return Status::OK();
}

Status FilterOperator::PushBatch(TupleBatch& batch) {
  CountIn(batch.size());
  batch.Retain([this](const Tuple& tuple) { return predicate_(tuple); });
  return Emit(batch);
}

// ---------------------------------------------------------------------------
// MapOperator

Result<std::unique_ptr<MapOperator>> MapOperator::Make(std::string name,
                                                       Transform transform) {
  if (!transform) {
    return Status::InvalidArgument("map requires a transform");
  }
  return std::unique_ptr<MapOperator>(
      new MapOperator(std::move(name), std::move(transform)));
}

Status MapOperator::Push(const Tuple& tuple) {
  CountIn();
  return Emit(transform_(tuple));
}

Status MapOperator::PushBatch(TupleBatch& batch) {
  CountIn(batch.size());
  // Gather row -> user transform -> scatter back: Map is the one operator
  // whose contract is expressed over whole tuples, so it pays the 56-byte
  // row round-trip per active tuple.
  batch.ForEachRaw([this, &batch](std::uint32_t raw) {
    batch.StoreRowAt(raw, transform_(batch.RowAt(raw)));
  });
  return Emit(batch);
}

// ---------------------------------------------------------------------------
// RateMonitorOperator

Result<std::unique_ptr<RateMonitorOperator>> RateMonitorOperator::Make(
    std::string name, double window_duration, double area) {
  if (!(window_duration > 0.0) || !std::isfinite(window_duration)) {
    return Status::InvalidArgument("monitor window duration must be > 0");
  }
  if (!(area > 0.0) || !std::isfinite(area)) {
    return Status::InvalidArgument("monitor area must be > 0");
  }
  return std::unique_ptr<RateMonitorOperator>(
      new RateMonitorOperator(std::move(name), window_duration, area));
}

void RateMonitorOperator::CloseWindowsUpTo(double t) {
  while (window_open_ && t >= window_end_) {
    window_rates_.Add(static_cast<double>(window_count_) /
                      (window_duration_ * area_));
    window_count_ = 0;
    window_end_ += window_duration_;
  }
}

void RateMonitorOperator::Observe(double t) {
  if (!window_open_) {
    window_open_ = true;
    window_end_ = t + window_duration_;
  } else {
    CloseWindowsUpTo(t);
  }
  ++window_count_;
}

Status RateMonitorOperator::Push(const Tuple& tuple) {
  CountIn();
  Observe(tuple.point.t);
  return Emit(tuple);
}

Status RateMonitorOperator::PushBatch(TupleBatch& batch) {
  CountIn(batch.size());
  // Window accounting reads only the time column.
  batch.ForEachRaw(
      [this, &batch](std::uint32_t raw) { Observe(batch.point_at(raw).t); });
  return Emit(batch);
}

void RateMonitorOperator::CloseCurrentWindow() {
  if (window_open_) {
    window_rates_.Add(static_cast<double>(window_count_) /
                      (window_duration_ * area_));
    window_count_ = 0;
    window_open_ = false;
  }
}

// ---------------------------------------------------------------------------
// SinkOperator

Result<std::unique_ptr<SinkOperator>> SinkOperator::Make(std::string name,
                                                         std::size_t capacity,
                                                         Callback callback) {
  if (capacity < 1) {
    return Status::InvalidArgument("sink capacity must be >= 1");
  }
  return std::unique_ptr<SinkOperator>(new SinkOperator(
      std::move(name), capacity, std::move(callback), nullptr));
}

Result<std::unique_ptr<SinkOperator>> SinkOperator::MakeBatched(
    std::string name, BatchCallback callback) {
  if (!callback) {
    return Status::InvalidArgument("batched sink requires a callback");
  }
  return std::unique_ptr<SinkOperator>(
      new SinkOperator(std::move(name), 1, nullptr, std::move(callback)));
}

void SinkOperator::Store(const Tuple& tuple) {
  if (callback_) {
    callback_(tuple);
  }
  if (tuples_.size() >= capacity_) {
    // Evict the oldest half in one move to amortise the erase cost.
    tuples_.erase(tuples_.begin(),
                  tuples_.begin() + static_cast<std::ptrdiff_t>(capacity_ / 2 + 1));
  }
  tuples_.push_back(tuple);
}

Status SinkOperator::Push(const Tuple& tuple) {
  CountIn();
  if (batch_callback_) {
    // Row-at-a-time reference path of a delivery-only sink: wrap the tuple
    // in a recycled single-row batch so consumers see one shape.
    push_scratch_.Clear();
    push_scratch_.Append(tuple);
    batch_callback_(push_scratch_);
    return Status::OK();
  }
  Store(tuple);
  return Status::OK();
}

Status SinkOperator::PushBatch(TupleBatch& batch) {
  CountIn(batch.size());
  if (batch_callback_) {
    // One delivery per batch — the consumer (shard outbox) copies the
    // active rows out under a single lock acquisition.
    batch_callback_(batch);
    return Status::OK();
  }
  // Copying out of the active slots is allowed; restructuring the
  // caller's (possibly port-shared) storage is not.
  batch.ForEach([this](const Tuple& tuple) { Store(tuple); });
  return Status::OK();
}

// ---------------------------------------------------------------------------
// PassThroughOperator

Result<std::unique_ptr<PassThroughOperator>> PassThroughOperator::Make(
    std::string name) {
  return std::unique_ptr<PassThroughOperator>(
      new PassThroughOperator(std::move(name)));
}

Status PassThroughOperator::Push(const Tuple& tuple) {
  CountIn();
  return Emit(tuple);
}

Status PassThroughOperator::PushBatch(TupleBatch& batch) {
  CountIn(batch.size());
  return Emit(batch);
}

}  // namespace ops
}  // namespace craqr
