#include "ops/extras.h"

#include <cmath>
#include <utility>

namespace craqr {
namespace ops {

// ---------------------------------------------------------------------------
// SuperposeOperator

Result<std::unique_ptr<SuperposeOperator>> SuperposeOperator::Make(
    std::string name) {
  return std::unique_ptr<SuperposeOperator>(
      new SuperposeOperator(std::move(name)));
}

Status SuperposeOperator::Push(const Tuple& tuple) {
  CountIn();
  return Emit(tuple);
}

Status SuperposeOperator::PushBatch(TupleBatch& batch) {
  CountIn(batch.size());
  return Emit(batch);
}

// ---------------------------------------------------------------------------
// FilterOperator

Result<std::unique_ptr<FilterOperator>> FilterOperator::Make(
    std::string name, Predicate predicate) {
  if (!predicate) {
    return Status::InvalidArgument("filter requires a predicate");
  }
  return std::unique_ptr<FilterOperator>(
      new FilterOperator(std::move(name), std::move(predicate)));
}

Status FilterOperator::Push(const Tuple& tuple) {
  CountIn();
  if (predicate_(tuple)) {
    return Emit(tuple);
  }
  return Status::OK();
}

Status FilterOperator::PushBatch(TupleBatch& batch) {
  CountIn(batch.size());
  batch.Retain([this](const Tuple& tuple) { return predicate_(tuple); });
  return Emit(batch);
}

// ---------------------------------------------------------------------------
// MapOperator

Result<std::unique_ptr<MapOperator>> MapOperator::Make(std::string name,
                                                       Transform transform) {
  if (!transform) {
    return Status::InvalidArgument("map requires a transform");
  }
  return std::unique_ptr<MapOperator>(
      new MapOperator(std::move(name), std::move(transform)));
}

Status MapOperator::Push(const Tuple& tuple) {
  CountIn();
  return Emit(transform_(tuple));
}

Status MapOperator::PushBatch(TupleBatch& batch) {
  CountIn(batch.size());
  batch.ForEach([this](Tuple& tuple) { tuple = transform_(tuple); });
  return Emit(batch);
}

// ---------------------------------------------------------------------------
// RateMonitorOperator

Result<std::unique_ptr<RateMonitorOperator>> RateMonitorOperator::Make(
    std::string name, double window_duration, double area) {
  if (!(window_duration > 0.0) || !std::isfinite(window_duration)) {
    return Status::InvalidArgument("monitor window duration must be > 0");
  }
  if (!(area > 0.0) || !std::isfinite(area)) {
    return Status::InvalidArgument("monitor area must be > 0");
  }
  return std::unique_ptr<RateMonitorOperator>(
      new RateMonitorOperator(std::move(name), window_duration, area));
}

void RateMonitorOperator::CloseWindowsUpTo(double t) {
  while (window_open_ && t >= window_end_) {
    window_rates_.Add(static_cast<double>(window_count_) /
                      (window_duration_ * area_));
    window_count_ = 0;
    window_end_ += window_duration_;
  }
}

void RateMonitorOperator::Observe(double t) {
  if (!window_open_) {
    window_open_ = true;
    window_end_ = t + window_duration_;
  } else {
    CloseWindowsUpTo(t);
  }
  ++window_count_;
}

Status RateMonitorOperator::Push(const Tuple& tuple) {
  CountIn();
  Observe(tuple.point.t);
  return Emit(tuple);
}

Status RateMonitorOperator::PushBatch(TupleBatch& batch) {
  CountIn(batch.size());
  batch.ForEach([this](const Tuple& tuple) { Observe(tuple.point.t); });
  return Emit(batch);
}

void RateMonitorOperator::CloseCurrentWindow() {
  if (window_open_) {
    window_rates_.Add(static_cast<double>(window_count_) /
                      (window_duration_ * area_));
    window_count_ = 0;
    window_open_ = false;
  }
}

// ---------------------------------------------------------------------------
// SinkOperator

Result<std::unique_ptr<SinkOperator>> SinkOperator::Make(std::string name,
                                                         std::size_t capacity,
                                                         Callback callback) {
  if (capacity < 1) {
    return Status::InvalidArgument("sink capacity must be >= 1");
  }
  return std::unique_ptr<SinkOperator>(
      new SinkOperator(std::move(name), capacity, std::move(callback)));
}

void SinkOperator::Store(Tuple tuple) {
  if (callback_) {
    callback_(tuple);
  }
  if (tuples_.size() >= capacity_) {
    // Evict the oldest half in one move to amortise the erase cost.
    tuples_.erase(tuples_.begin(),
                  tuples_.begin() + static_cast<std::ptrdiff_t>(capacity_ / 2 + 1));
  }
  tuples_.push_back(std::move(tuple));
}

Status SinkOperator::Push(const Tuple& tuple) {
  CountIn();
  Store(tuple);
  return Status::OK();
}

Status SinkOperator::PushBatch(TupleBatch& batch) {
  CountIn(batch.size());
  // Moving out of the active slots is allowed; restructuring the
  // caller's (possibly port-shared) storage is not.
  batch.ForEach([this](Tuple& tuple) { Store(std::move(tuple)); });
  return Status::OK();
}

// ---------------------------------------------------------------------------
// PassThroughOperator

Result<std::unique_ptr<PassThroughOperator>> PassThroughOperator::Make(
    std::string name) {
  return std::unique_ptr<PassThroughOperator>(
      new PassThroughOperator(std::move(name)));
}

Status PassThroughOperator::Push(const Tuple& tuple) {
  CountIn();
  return Emit(tuple);
}

Status PassThroughOperator::PushBatch(TupleBatch& batch) {
  CountIn(batch.size());
  return Emit(batch);
}

}  // namespace ops
}  // namespace craqr
