#pragma once

#include <cstdint>
#include <deque>

#include "common/rng.h"
#include "common/state_io.h"
#include "common/stats.h"
#include "geometry/rect.h"
#include "ops/operator.h"
#include "ops/tuple_batch.h"

/// \file state_serde.h
/// \brief Shared serialization helpers for operator checkpoint state
/// (common/state_io.h primitives applied to the recurring shapes: RNG
/// state, statistics accumulators, rectangles, tuple rows, throughput
/// counters). Used by the per-operator SaveState/RestoreState methods and
/// by the fabric checkpoint serializer (fabric/checkpoint.cc).
///
/// String payloads are serialized **by value** and re-interned on read
/// (into the pool carried by the StateWriter/StateReader, Global() when
/// unset), so a snapshot is process-independent and stays byte-exact
/// across pool generation retirement — the restored handles may differ
/// from the saved ones, but the strings they resolve to are identical.

namespace craqr {
namespace ops {

inline void WriteRngState(StateWriter& w, const Rng& rng) {
  const Rng::State st = rng.Save();
  for (int i = 0; i < 4; ++i) {
    w.WriteU64(st.s[i]);
  }
  w.WriteDouble(st.cached_normal);
  w.WriteBool(st.has_cached_normal);
}

inline Status ReadRngState(StateReader& r, Rng* rng) {
  Rng::State st;
  for (int i = 0; i < 4; ++i) {
    CRAQR_RETURN_NOT_OK(r.ReadU64(&st.s[i]));
  }
  CRAQR_RETURN_NOT_OK(r.ReadDouble(&st.cached_normal));
  CRAQR_RETURN_NOT_OK(r.ReadBool(&st.has_cached_normal));
  rng->Restore(st);
  return Status::OK();
}

inline void WriteRunningStats(StateWriter& w, const RunningStats& s) {
  const RunningStats::State st = s.Save();
  w.WriteU64(st.count);
  w.WriteDouble(st.mean);
  w.WriteDouble(st.m2);
  w.WriteDouble(st.sum);
  w.WriteDouble(st.min);
  w.WriteDouble(st.max);
}

inline Status ReadRunningStats(StateReader& r, RunningStats* s) {
  RunningStats::State st;
  CRAQR_RETURN_NOT_OK(r.ReadU64(&st.count));
  CRAQR_RETURN_NOT_OK(r.ReadDouble(&st.mean));
  CRAQR_RETURN_NOT_OK(r.ReadDouble(&st.m2));
  CRAQR_RETURN_NOT_OK(r.ReadDouble(&st.sum));
  CRAQR_RETURN_NOT_OK(r.ReadDouble(&st.min));
  CRAQR_RETURN_NOT_OK(r.ReadDouble(&st.max));
  s->Restore(st);
  return Status::OK();
}

inline void WriteSlidingWindow(StateWriter& w, const SlidingWindow& s) {
  w.WriteU64(s.values().size());
  for (const double v : s.values()) {
    w.WriteDouble(v);
  }
}

inline Status ReadSlidingWindow(StateReader& r, SlidingWindow* s) {
  std::uint64_t n = 0;
  CRAQR_RETURN_NOT_OK(r.ReadU64(&n));
  std::deque<double> values;
  for (std::uint64_t i = 0; i < n; ++i) {
    double v = 0.0;
    CRAQR_RETURN_NOT_OK(r.ReadDouble(&v));
    values.push_back(v);
  }
  s->RestoreValues(values);
  return Status::OK();
}

inline void WriteRect(StateWriter& w, const geom::Rect& rect) {
  w.WriteDouble(rect.x_min());
  w.WriteDouble(rect.y_min());
  w.WriteDouble(rect.x_max());
  w.WriteDouble(rect.y_max());
}

inline Status ReadRect(StateReader& r, geom::Rect* out) {
  double x_min = 0.0, y_min = 0.0, x_max = 0.0, y_max = 0.0;
  CRAQR_RETURN_NOT_OK(r.ReadDouble(&x_min));
  CRAQR_RETURN_NOT_OK(r.ReadDouble(&y_min));
  CRAQR_RETURN_NOT_OK(r.ReadDouble(&x_max));
  CRAQR_RETURN_NOT_OK(r.ReadDouble(&y_max));
  *out = geom::Rect(x_min, y_min, x_max, y_max);
  return Status::OK();
}

/// Serializes the base-class throughput counters. Restored topologies must
/// resume with their exact pre-crash counters or the per-edge conservation
/// validators (ValidateStatsConservation) reject the restored fabricator.
inline void WriteOperatorCounters(StateWriter& w, const Operator& op) {
  w.WriteU64(op.stats().tuples_in);
  w.WriteU64(op.stats().tuples_out);
}

inline Status ReadOperatorCounters(StateReader& r, Operator* op) {
  OperatorStats stats;
  CRAQR_RETURN_NOT_OK(r.ReadU64(&stats.tuples_in));
  CRAQR_RETURN_NOT_OK(r.ReadU64(&stats.tuples_out));
  op->RestoreStats(stats);
  return Status::OK();
}

/// Serializes the *active* rows of a batch (arrival order). Payload values
/// are written by kind: inline scalars by bit pattern, strings by value
/// (resolved through the writer's pool; see file comment).
inline void WriteBatchRows(StateWriter& w, const TupleBatch& batch) {
  ValuePool& pool =
      w.value_pool() != nullptr ? *w.value_pool() : ValuePool::Global();
  w.WriteU64(batch.size());
  batch.ForEach([&w, &pool](const Tuple& t) {
    w.WriteU64(t.id);
    w.WriteU32(t.attribute);
    w.WriteDouble(t.point.t);
    w.WriteDouble(t.point.x);
    w.WriteDouble(t.point.y);
    w.WriteU64(t.sensor_id);
    w.WriteU8(static_cast<std::uint8_t>(t.value.kind()));
    switch (t.value.kind()) {
      case PayloadKind::kNull:
        break;
      case PayloadKind::kBool:
        w.WriteU8(t.value.AsBool() ? 1 : 0);
        break;
      case PayloadKind::kInt64:
        w.WriteU64(static_cast<std::uint64_t>(t.value.AsInt64()));
        break;
      case PayloadKind::kDouble:
        w.WriteDouble(t.value.AsDouble());
        break;
      case PayloadKind::kString:
        w.WriteString(t.value.AsString(pool));
        break;
    }
  });
}

/// Appends the serialized rows to `batch` (which must be plain — no
/// selection). The inverse of WriteBatchRows.
inline Status ReadBatchRows(StateReader& r, TupleBatch* batch) {
  ValuePool& pool =
      r.value_pool() != nullptr ? *r.value_pool() : ValuePool::Global();
  std::uint64_t n = 0;
  CRAQR_RETURN_NOT_OK(r.ReadU64(&n));
  for (std::uint64_t i = 0; i < n; ++i) {
    Tuple t;
    CRAQR_RETURN_NOT_OK(r.ReadU64(&t.id));
    CRAQR_RETURN_NOT_OK(r.ReadU32(&t.attribute));
    CRAQR_RETURN_NOT_OK(r.ReadDouble(&t.point.t));
    CRAQR_RETURN_NOT_OK(r.ReadDouble(&t.point.x));
    CRAQR_RETURN_NOT_OK(r.ReadDouble(&t.point.y));
    CRAQR_RETURN_NOT_OK(r.ReadU64(&t.sensor_id));
    std::uint8_t kind = 0;
    CRAQR_RETURN_NOT_OK(r.ReadU8(&kind));
    switch (static_cast<PayloadKind>(kind)) {
      case PayloadKind::kNull:
        t.value = PayloadRef::Null();
        break;
      case PayloadKind::kBool: {
        std::uint8_t v = 0;
        CRAQR_RETURN_NOT_OK(r.ReadU8(&v));
        t.value = PayloadRef::Bool(v != 0);
        break;
      }
      case PayloadKind::kInt64: {
        std::uint64_t v = 0;
        CRAQR_RETURN_NOT_OK(r.ReadU64(&v));
        t.value = PayloadRef::Int64(static_cast<std::int64_t>(v));
        break;
      }
      case PayloadKind::kDouble: {
        double v = 0.0;
        CRAQR_RETURN_NOT_OK(r.ReadDouble(&v));
        t.value = PayloadRef::Double(v);
        break;
      }
      case PayloadKind::kString: {
        std::string s;
        CRAQR_RETURN_NOT_OK(r.ReadString(&s));
        t.value = PayloadRef::String(s, pool);
        break;
      }
      default:
        return Status::OutOfRange("checkpoint: unknown payload kind " +
                                  std::to_string(kind));
    }
    batch->Append(t);
  }
  return Status::OK();
}

}  // namespace ops
}  // namespace craqr
