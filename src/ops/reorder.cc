#include "ops/reorder.h"

#include <utility>

namespace craqr {
namespace ops {

Result<std::unique_ptr<ReorderOperator>> ReorderOperator::Make(
    std::string name) {
  return std::unique_ptr<ReorderOperator>(new ReorderOperator(std::move(name)));
}

Status ReorderOperator::Push(const Tuple& tuple) {
  CountIn();
  buffer_.Append(tuple);
  return Status::OK();
}

Status ReorderOperator::PushBatch(TupleBatch& batch) {
  CountIn(batch.size());
  buffer_.AppendActiveFrom(batch);
  return Status::OK();
}

Status ReorderOperator::Flush() {
  if (buffer_.empty()) {
    return Status::OK();
  }
  buffer_.SortByTimeThenId();
  const Status status = Emit(buffer_);
  // Drained even on error so no tuple leaks into the next step.
  buffer_.Clear();
  return status;
}

}  // namespace ops
}  // namespace craqr
