#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "geometry/rect.h"
#include "ops/operator.h"
#include "ops/state_serde.h"

/// \file union_op.h
/// \brief The U (Union) PMAT operator (paper Section IV-B-1).
///
/// Unions MDPPs P(lambda, R*_1) and P(lambda, R*_2) into P(lambda, R*_3)
/// with R*_3 = R*_1 union R*_2. The paper requires "the rectangles should
/// be adjacent and with a common side of equal length" and notes the
/// operator "can be easily extended to union multiple MDPPs at once": this
/// implementation accepts k >= 2 disjoint rectangles whose union is itself
/// a rectangle (the k-way generalisation of the pairwise adjacency rule),
/// validated at construction.

namespace craqr {
namespace ops {

/// \brief Stream-merging operator over adjacent regions.
///
/// All upstream operators push into the same UnionOperator; tuples are
/// forwarded unchanged, so the output is the superposition of the input
/// processes — which, for equal-rate processes on disjoint adjacent
/// regions, is exactly P(lambda, union of regions).
class UnionOperator final : public Operator {
 public:
  /// Validating factory; see the class comment for the region rule.
  static Result<std::unique_ptr<UnionOperator>> Make(
      std::string name, std::vector<geom::Rect> input_regions);

  Status Push(const Tuple& tuple) override;

  /// Batch-native: branch-free membership sweep (ORed
  /// Rect::ContainsMask passes over the raw point column) for the
  /// out-of-region diagnostic, then the whole batch is forwarded in a
  /// single emit.
  Status PushBatch(TupleBatch& batch) override;

  OperatorKind kind() const override { return OperatorKind::kUnion; }

  /// The merged output region R*_3.
  const geom::Rect& output_region() const { return output_region_; }

  /// The input regions.
  const std::vector<geom::Rect>& input_regions() const {
    return input_regions_;
  }

  /// Tuples that arrived outside every input region (still forwarded, but
  /// counted as a topology diagnostic).
  std::uint64_t out_of_region() const { return out_of_region_; }

  /// \name Checkpoint support
  /// Mutable state is the base counters plus the out-of-region
  /// diagnostic; the regions are construction inputs.
  ///@{
  void SaveState(StateWriter& w) const {
    WriteOperatorCounters(w, *this);
    w.WriteU64(out_of_region_);
  }
  Status RestoreState(StateReader& r) {
    CRAQR_RETURN_NOT_OK(ReadOperatorCounters(r, this));
    return r.ReadU64(&out_of_region_);
  }
  ///@}

 private:
  UnionOperator(std::string name, std::vector<geom::Rect> input_regions,
                const geom::Rect& output_region)
      : Operator(std::move(name)),
        input_regions_(std::move(input_regions)),
        output_region_(output_region) {}

  std::vector<geom::Rect> input_regions_;
  geom::Rect output_region_;
  std::uint64_t out_of_region_ = 0;
  /// Recycled "inside any input region" mask of the batch sweep.
  std::vector<std::uint8_t> inside_mask_;
};

}  // namespace ops
}  // namespace craqr
