#include "ops/tuple_batch.h"

namespace craqr {
namespace ops {

void TupleBatch::CollectIds(std::vector<std::uint64_t>* ids) const {
  ids->clear();
  ids->reserve(size());
  ForEach([ids](const Tuple& tuple) { ids->push_back(tuple.id); });
}

void TupleBatch::CollectAttributes(std::vector<AttributeId>* attributes) const {
  attributes->clear();
  attributes->reserve(size());
  ForEach([attributes](const Tuple& tuple) {
    attributes->push_back(tuple.attribute);
  });
}

void TupleBatch::CollectPoints(
    std::vector<geom::SpaceTimePoint>* points) const {
  points->clear();
  points->reserve(size());
  ForEach([points](const Tuple& tuple) { points->push_back(tuple.point); });
}

void TupleBatch::CollectSensorIds(std::vector<std::uint64_t>* sensor_ids) const {
  sensor_ids->clear();
  sensor_ids->reserve(size());
  ForEach([sensor_ids](const Tuple& tuple) {
    sensor_ids->push_back(tuple.sensor_id);
  });
}

}  // namespace ops
}  // namespace craqr
