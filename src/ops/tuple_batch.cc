#include "ops/tuple_batch.h"

#include <algorithm>
#include <numeric>

namespace craqr {
namespace ops {

void TupleBatch::AppendActiveFrom(const TupleBatch& other) {
  assert(!has_selection_ &&
         "AppendActiveFrom on a batch with an active selection");
  if (!other.has_selection_) {
    // Plain source: one contiguous range insert per column.
    ids_.insert(ids_.end(), other.ids_.begin(), other.ids_.end());
    attributes_.insert(attributes_.end(), other.attributes_.begin(),
                       other.attributes_.end());
    points_.insert(points_.end(), other.points_.begin(), other.points_.end());
    values_.insert(values_.end(), other.values_.begin(), other.values_.end());
    sensor_ids_.insert(sensor_ids_.end(), other.sensor_ids_.begin(),
                       other.sensor_ids_.end());
    return;
  }
  Reserve(raw_size() + other.selection_.size());
  for (const std::uint32_t idx : other.selection_) {
    AppendRow(other, idx);
  }
}

void TupleBatch::AppendRows(const TupleBatch& src,
                            Span<const std::uint32_t> raws) {
  assert(!has_selection_ && "AppendRows on a batch with an active selection");
  Reserve(raw_size() + raws.size());
  for (const std::uint32_t raw : raws) {
    ids_.push_back(src.ids_[raw]);
  }
  for (const std::uint32_t raw : raws) {
    attributes_.push_back(src.attributes_[raw]);
  }
  for (const std::uint32_t raw : raws) {
    points_.push_back(src.points_[raw]);
  }
  for (const std::uint32_t raw : raws) {
    values_.push_back(src.values_[raw]);
  }
  for (const std::uint32_t raw : raws) {
    sensor_ids_.push_back(src.sensor_ids_[raw]);
  }
}

void TupleBatch::Materialize() {
  if (!has_selection_) {
    return;
  }
  std::size_t out = 0;
  for (const std::uint32_t idx : selection_) {
    assert(idx >= out && "selection must be ascending for in-place compaction");
    if (idx != out) {
      ids_[out] = ids_[idx];
      attributes_[out] = attributes_[idx];
      points_[out] = points_[idx];
      values_[out] = values_[idx];
      sensor_ids_[out] = sensor_ids_[idx];
    }
    ++out;
  }
  ids_.resize(out);
  attributes_.resize(out);
  points_.resize(out);
  values_.resize(out);
  sensor_ids_.resize(out);
  selection_.clear();
  has_selection_ = false;
}

void TupleBatch::SortByTimeThenId() {
  const std::size_t n = size();
  if (n <= 1) {
    Materialize();
    return;
  }
  // Sort a permutation of the active raw indices, then gather every column
  // through it. Gather-into-scratch (rather than in-place cycle chasing)
  // also compacts away deselected husks in the same pass. The scratch
  // columns are thread-local and swap storage with the batch, so the
  // steady-state reorder path (one sort per multi-cell query per step)
  // allocates nothing: this call's discarded columns become the next
  // call's gather targets. Batches are single-thread-owned while sorted,
  // so thread-locality is exactly the right scope.
  struct SortScratch {
    std::vector<std::uint32_t> order;
    std::vector<std::uint64_t> ids;
    std::vector<AttributeId> attributes;
    std::vector<geom::SpaceTimePoint> points;
    std::vector<PayloadRef> values;
    std::vector<std::uint64_t> sensor_ids;
  };
  thread_local SortScratch scratch;
  std::vector<std::uint32_t>& order = scratch.order;
  if (has_selection_) {
    order = selection_;
  } else {
    order.resize(n);
    std::iota(order.begin(), order.end(), 0u);
  }
  std::stable_sort(order.begin(), order.end(),
                   [this](std::uint32_t a, std::uint32_t b) {
                     if (points_[a].t != points_[b].t) {
                       return points_[a].t < points_[b].t;
                     }
                     return ids_[a] < ids_[b];
                   });
  GatherColumn(ids_, order, &scratch.ids);
  GatherColumn(attributes_, order, &scratch.attributes);
  GatherColumn(points_, order, &scratch.points);
  GatherColumn(values_, order, &scratch.values);
  GatherColumn(sensor_ids_, order, &scratch.sensor_ids);
  ids_.swap(scratch.ids);
  attributes_.swap(scratch.attributes);
  points_.swap(scratch.points);
  values_.swap(scratch.values);
  sensor_ids_.swap(scratch.sensor_ids);
  selection_.clear();
  has_selection_ = false;
}

std::vector<Tuple> TupleBatch::ToTuples() const {
  std::vector<Tuple> tuples;
  tuples.reserve(ActiveCount());
  ForEachRaw([this, &tuples](std::uint32_t raw) {
    tuples.push_back(RowAt(raw));
  });
  return tuples;
}

void TupleBatch::CollectIds(std::vector<std::uint64_t>* ids) const {
  ids->clear();
  ids->reserve(ActiveCount());
  ForEachRaw([this, ids](std::uint32_t raw) { ids->push_back(ids_[raw]); });
}

void TupleBatch::CollectAttributes(std::vector<AttributeId>* attributes) const {
  attributes->clear();
  attributes->reserve(ActiveCount());
  ForEachRaw([this, attributes](std::uint32_t raw) {
    attributes->push_back(attributes_[raw]);
  });
}

void TupleBatch::CollectPoints(
    std::vector<geom::SpaceTimePoint>* points) const {
  points->clear();
  points->reserve(ActiveCount());
  ForEachRaw([this, points](std::uint32_t raw) {
    points->push_back(points_[raw]);
  });
}

void TupleBatch::CollectSensorIds(std::vector<std::uint64_t>* sensor_ids) const {
  sensor_ids->clear();
  sensor_ids->reserve(ActiveCount());
  ForEachRaw([this, sensor_ids](std::uint32_t raw) {
    sensor_ids->push_back(sensor_ids_[raw]);
  });
}

}  // namespace ops
}  // namespace craqr
