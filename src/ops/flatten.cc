#include "ops/flatten.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/simd.h"
#include "pointprocess/window.h"

namespace craqr {
namespace ops {

namespace {

Status ValidateConfig(const FlattenConfig& config) {
  if (config.region.IsEmpty()) {
    return Status::InvalidArgument("flatten region must have positive area");
  }
  if (!(config.target_rate > 0.0) || !std::isfinite(config.target_rate)) {
    return Status::InvalidArgument("flatten target rate must be > 0");
  }
  if (!(config.min_rate > 0.0)) {
    return Status::InvalidArgument("flatten min_rate must be > 0");
  }
  if (config.mode == FlattenMode::kBatch && config.batch_size < 2) {
    return Status::InvalidArgument(
        "flatten batch size must be >= 2 (theta estimation needs data)");
  }
  if (config.mode == FlattenMode::kOnline &&
      config.target_mode == FlattenTargetMode::kCountPerBatch) {
    return Status::InvalidArgument(
        "online flatten requires a per-volume target rate (kRatePerVolume)");
  }
  if (config.mode == FlattenMode::kOnline && config.violation_window < 1) {
    return Status::InvalidArgument("violation window must be >= 1");
  }
  return Status::OK();
}

}  // namespace

FlattenOperator::FlattenOperator(std::string name, const FlattenConfig& config,
                                 Rng rng)
    : Operator(std::move(name)),
      config_(config),
      rng_(rng),
      online_probs_(std::max<std::size_t>(config.violation_window, 1)) {}

Result<std::unique_ptr<FlattenOperator>> FlattenOperator::Make(
    std::string name, const FlattenConfig& config, Rng rng) {
  CRAQR_RETURN_NOT_OK(ValidateConfig(config));
  auto op = std::unique_ptr<FlattenOperator>(
      new FlattenOperator(std::move(name), config, rng));
  if (config.mode == FlattenMode::kBatch) {
    op->buffer_.Reserve(config.batch_size);
  }
  return op;
}

Status FlattenOperator::SetTargetRate(double target_rate) {
  if (!(target_rate > 0.0) || !std::isfinite(target_rate)) {
    return Status::InvalidArgument("flatten target rate must be > 0");
  }
  config_.target_rate = target_rate;
  return Status::OK();
}

Status FlattenOperator::Push(const Tuple& tuple) {
  CountIn();
  if (config_.mode == FlattenMode::kOnline) {
    return PushOnline(tuple);
  }
  buffer_.Append(tuple);
  if (buffer_.size() >= config_.batch_size) {
    return ProcessBufferedBatch();
  }
  return Status::OK();
}

Status FlattenOperator::PushBatch(TupleBatch& batch) {
  CountIn(batch.size());
  if (config_.mode == FlattenMode::kOnline) {
    return PushOnlineBatch(batch);
  }
  // Column-copy the active rows into the estimation buffer, firing at
  // exactly the buffer boundaries the per-tuple path fires at. The
  // caller's storage is left in place (it may be shared across Partition
  // ports).
  Status status = Status::OK();
  batch.ForEachRaw([this, &status, &batch](std::uint32_t raw) {
    if (!status.ok()) {
      return;
    }
    buffer_.AppendRow(batch, raw);
    if (buffer_.size() >= config_.batch_size) {
      status = ProcessBufferedBatch();
    }
  });
  return status;
}

Status FlattenOperator::Flush() {
  if (config_.mode == FlattenMode::kBatch && !buffer_.empty()) {
    return ProcessBufferedBatch();
  }
  return Status::OK();
}

Status FlattenOperator::Discard(const Tuple& tuple) {
  if (discarded_ != nullptr) {
    return discarded_->Push(tuple);
  }
  return Status::OK();
}

void FlattenOperator::PublishReport(const FlattenBatchReport& report) {
  last_report_ = report;
  violation_history_.Add(report.violation_percent);
  if (report_callback_) {
    report_callback_(report);
  }
}

Status FlattenOperator::ProcessBufferedBatch() {
  const std::size_t n = buffer_.size();
  if (n == 0) {
    return Status::OK();
  }

  // The buffer is plain (built by appends), so its point column is a
  // zero-copy span — the MLE fit and the rate sweep below read it in
  // place; no per-tuple gather, no variant in sight.
  const Span<const geom::SpaceTimePoint> points = buffer_.Points();

  // The batch's space-time window: the configured region R* over the time
  // covered since the previous batch. Using full coverage (rather than the
  // tuple span) keeps the per-volume target honest on sparse streams.
  double t_min = std::numeric_limits<double>::infinity();
  double t_max = -std::numeric_limits<double>::infinity();
  for (const auto& point : points) {
    t_min = std::min(t_min, point.t);
    t_max = std::max(t_max, point.t);
  }
  if (!std::isnan(coverage_start_) && coverage_start_ < t_min) {
    t_min = coverage_start_;
  }
  if (!(t_max > t_min)) {
    t_max = t_min + 1e-6;  // degenerate single-instant batch
  }
  coverage_start_ = t_max;
  const pp::SpaceTimeWindow window{t_min, t_max, config_.region};

  // Estimate the conditional rate lambda~(.; theta) of the batch (Eq. 1)
  // by exact maximum likelihood over the batch's point column. On
  // pathological batches the MLE can fail (e.g. all points identical);
  // fall back to the homogeneous estimate so the operator degrades to
  // plain thinning.
  std::array<double, 4> theta{static_cast<double>(n) / window.Volume(), 0.0,
                              0.0, 0.0};
  if (n >= config_.min_batch_for_estimation) {
    auto fit = pp::FitLinearMle(points, window);
    if (fit.ok()) {
      theta = fit->theta;
    }
  }

  const auto rate_at = [&](const geom::SpaceTimePoint& p) {
    const double linear =
        theta[0] + theta[1] * p.t + theta[2] * p.x + theta[3] * p.y;
    return std::max(linear, config_.min_rate);
  };

  // lambda_c = sum_i 1 / lambda~(p_i; theta)  (constant over the batch).
  double lambda_c = 0.0;
  rates_scratch_.clear();
  rates_scratch_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    rates_scratch_.push_back(rate_at(points[i]));
    lambda_c += 1.0 / rates_scratch_[i];
  }

  const double target_count =
      config_.target_mode == FlattenTargetMode::kCountPerBatch
          ? config_.target_rate
          : config_.target_rate * window.Volume();

  FlattenBatchReport report;
  report.completed_at = t_max;
  report.n = n;
  report.theta = theta;
  report.lambda_c = lambda_c;
  report.target_count = target_count;

  // Eq. (3): p_i = lambda-bar / (lambda~_i * lambda_c), rounded down to 1
  // on rate violations. Vectorized as three column passes over the
  // buffer: (1) clamp the probabilities and count violations
  // (branch-free), (2) one batch Bernoulli mask fill in arrival order —
  // clamped rows (p == 1) consume no draw, exactly like the scalar
  // Bernoulli — and (3) one mask-compact selection rewrite. The buffer
  // itself then leaves as the retained batch — no tuple moves on the
  // retain path. Discards move to the side batch only when a discard
  // output is connected.
  probs_scratch_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double p = target_count / (rates_scratch_[i] * lambda_c);
    report.violations += (p > 1.0);
    probs_scratch_[i] = std::min(p, 1.0);
  }
  mask_scratch_.resize(n);
  rng_.FillBernoulliMask({probs_scratch_.data(), n}, {mask_scratch_.data(), n});
  report.retained = simd::MaskCount({mask_scratch_.data(), n});
  buffer_.RetainFromMask({mask_scratch_.data(), n},
                         discarded_ != nullptr ? &discard_scratch_ : nullptr);
  report.violation_percent =
      100.0 * static_cast<double>(report.violations) / static_cast<double>(n);

  Status status = Emit(buffer_);
  buffer_.Clear();
  if (status.ok() && discarded_ != nullptr && !discard_scratch_.empty()) {
    status = discarded_->PushBatch(discard_scratch_);
  }
  discard_scratch_.Clear();
  CRAQR_RETURN_NOT_OK(status);
  PublishReport(report);
  return Status::OK();
}

Result<bool> FlattenOperator::OnlineStep(const geom::SpaceTimePoint& point) {
  if (!sgd_.has_value()) {
    // Lazily bind the estimation domain at the first tuple so the
    // normalised time frame starts at the stream's own epoch.
    const pp::SpaceTimeWindow domain{point.t, point.t + 1.0, config_.region};
    pp::SgdOptions sgd_options = config_.sgd;
    // A global time trend is not identifiable on an unbounded stream; the
    // online estimator tracks level drift through theta0 instead.
    sgd_options.use_time_feature = false;
    auto estimator = pp::SgdEstimator::Make(domain, sgd_options);
    if (!estimator.ok()) {
      return estimator.status();
    }
    sgd_.emplace(estimator.MoveValue());
  }
  sgd_->Update(point);
  ++online_seen_;

  if (online_seen_ <= config_.online_warmup) {
    return true;  // warm-up: forward unthinned
  }

  const double rate = sgd_->RateAt(point);
  double p = config_.target_rate / rate;
  const bool violation = p > 1.0;
  p = std::min(p, 1.0);
  online_probs_.Push(violation ? 1.0 : 0.0);

  if (online_seen_ % std::max<std::size_t>(config_.violation_window, 1) == 0) {
    FlattenBatchReport report;
    report.completed_at = point.t;
    report.n = online_probs_.size();
    report.violations =
        static_cast<std::size_t>(std::llround(online_probs_.Sum()));
    report.violation_percent = 100.0 * online_probs_.Mean();
    report.theta = sgd_->theta();
    report.target_count = config_.target_rate;
    PublishReport(report);
  }

  return rng_.Bernoulli(p);
}

Status FlattenOperator::PushOnline(const Tuple& tuple) {
  CRAQR_ASSIGN_OR_RETURN(const bool keep, OnlineStep(tuple.point));
  if (keep) {
    return Emit(tuple);
  }
  return Discard(tuple);
}

void FlattenOperator::SaveState(StateWriter& w) const {
  WriteOperatorCounters(w, *this);
  w.WriteDouble(config_.target_rate);
  WriteRngState(w, rng_);
  WriteBatchRows(w, buffer_);
  w.WriteDouble(coverage_start_);
  w.WriteBool(sgd_.has_value());
  if (sgd_.has_value()) {
    // Domain times only: the spatial region is config_.region by
    // construction (OnlineStep's lazy bind), which the restoring side
    // re-supplies.
    w.WriteDouble(sgd_->domain().t_begin);
    w.WriteDouble(sgd_->domain().t_end);
    const pp::SgdEstimator::State st = sgd_->Save();
    for (const double a : st.a) {
      w.WriteDouble(a);
    }
    w.WriteDouble(st.last_t);
    w.WriteU64(st.updates);
  }
  WriteSlidingWindow(w, online_probs_);
  w.WriteU64(online_seen_);
  w.WriteDouble(last_report_.completed_at);
  w.WriteU64(last_report_.n);
  w.WriteU64(last_report_.violations);
  w.WriteDouble(last_report_.violation_percent);
  for (const double t : last_report_.theta) {
    w.WriteDouble(t);
  }
  w.WriteDouble(last_report_.lambda_c);
  w.WriteDouble(last_report_.target_count);
  w.WriteU64(last_report_.retained);
  WriteRunningStats(w, violation_history_);
}

Status FlattenOperator::RestoreState(StateReader& r) {
  CRAQR_RETURN_NOT_OK(ReadOperatorCounters(r, this));
  CRAQR_RETURN_NOT_OK(r.ReadDouble(&config_.target_rate));
  CRAQR_RETURN_NOT_OK(ReadRngState(r, &rng_));
  buffer_.Clear();
  CRAQR_RETURN_NOT_OK(ReadBatchRows(r, &buffer_));
  CRAQR_RETURN_NOT_OK(r.ReadDouble(&coverage_start_));
  bool has_sgd = false;
  CRAQR_RETURN_NOT_OK(r.ReadBool(&has_sgd));
  sgd_.reset();
  if (has_sgd) {
    double t_begin = 0.0;
    double t_end = 0.0;
    CRAQR_RETURN_NOT_OK(r.ReadDouble(&t_begin));
    CRAQR_RETURN_NOT_OK(r.ReadDouble(&t_end));
    pp::SgdEstimator::State st;
    for (double& a : st.a) {
      CRAQR_RETURN_NOT_OK(r.ReadDouble(&a));
    }
    CRAQR_RETURN_NOT_OK(r.ReadDouble(&st.last_t));
    CRAQR_RETURN_NOT_OK(r.ReadU64(&st.updates));
    // Rebuild over the same domain (regenerating the derived
    // normalisation scales), then apply the saved parameters.
    const pp::SpaceTimeWindow domain{t_begin, t_end, config_.region};
    pp::SgdOptions sgd_options = config_.sgd;
    sgd_options.use_time_feature = false;
    auto estimator = pp::SgdEstimator::Make(domain, sgd_options);
    if (!estimator.ok()) {
      return estimator.status();
    }
    sgd_.emplace(estimator.MoveValue());
    sgd_->Restore(st);
  }
  CRAQR_RETURN_NOT_OK(ReadSlidingWindow(r, &online_probs_));
  std::uint64_t online_seen = 0;
  CRAQR_RETURN_NOT_OK(r.ReadU64(&online_seen));
  online_seen_ = static_cast<std::size_t>(online_seen);
  FlattenBatchReport report;
  CRAQR_RETURN_NOT_OK(r.ReadDouble(&report.completed_at));
  std::uint64_t n = 0;
  CRAQR_RETURN_NOT_OK(r.ReadU64(&n));
  report.n = static_cast<std::size_t>(n);
  std::uint64_t violations = 0;
  CRAQR_RETURN_NOT_OK(r.ReadU64(&violations));
  report.violations = static_cast<std::size_t>(violations);
  CRAQR_RETURN_NOT_OK(r.ReadDouble(&report.violation_percent));
  for (double& t : report.theta) {
    CRAQR_RETURN_NOT_OK(r.ReadDouble(&t));
  }
  CRAQR_RETURN_NOT_OK(r.ReadDouble(&report.lambda_c));
  CRAQR_RETURN_NOT_OK(r.ReadDouble(&report.target_count));
  std::uint64_t retained = 0;
  CRAQR_RETURN_NOT_OK(r.ReadU64(&retained));
  report.retained = static_cast<std::size_t>(retained);
  last_report_ = report;
  return ReadRunningStats(r, &violation_history_);
}

Status FlattenOperator::PushOnlineBatch(TupleBatch& batch) {
  // One estimator/RNG sweep in arrival order; dropped tuples are
  // deselected (or moved to the discard side batch), survivors stay put.
  Status first = Status::OK();
  batch.RetainRaw(
      [this, &first, &batch](std::uint32_t raw) {
        if (!first.ok()) {
          return false;  // already failed; decisions no longer matter
        }
        auto keep = OnlineStep(batch.point_at(raw));
        if (!keep.ok()) {
          first = keep.status();
          return false;
        }
        return *keep;
      },
      discarded_ != nullptr ? &discard_scratch_ : nullptr);
  if (!first.ok()) {
    discard_scratch_.Clear();
    return first;
  }
  Status status = Emit(batch);
  if (status.ok() && discarded_ != nullptr && !discard_scratch_.empty()) {
    status = discarded_->PushBatch(discard_scratch_);
  }
  discard_scratch_.Clear();
  return status;
}

}  // namespace ops
}  // namespace craqr
