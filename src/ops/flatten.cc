#include "ops/flatten.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"
#include "pointprocess/window.h"

namespace craqr {
namespace ops {

namespace {

Status ValidateConfig(const FlattenConfig& config) {
  if (config.region.IsEmpty()) {
    return Status::InvalidArgument("flatten region must have positive area");
  }
  if (!(config.target_rate > 0.0) || !std::isfinite(config.target_rate)) {
    return Status::InvalidArgument("flatten target rate must be > 0");
  }
  if (!(config.min_rate > 0.0)) {
    return Status::InvalidArgument("flatten min_rate must be > 0");
  }
  if (config.mode == FlattenMode::kBatch && config.batch_size < 2) {
    return Status::InvalidArgument(
        "flatten batch size must be >= 2 (theta estimation needs data)");
  }
  if (config.mode == FlattenMode::kOnline &&
      config.target_mode == FlattenTargetMode::kCountPerBatch) {
    return Status::InvalidArgument(
        "online flatten requires a per-volume target rate (kRatePerVolume)");
  }
  if (config.mode == FlattenMode::kOnline && config.violation_window < 1) {
    return Status::InvalidArgument("violation window must be >= 1");
  }
  return Status::OK();
}

}  // namespace

FlattenOperator::FlattenOperator(std::string name, const FlattenConfig& config,
                                 Rng rng)
    : Operator(std::move(name)),
      config_(config),
      rng_(rng),
      online_probs_(std::max<std::size_t>(config.violation_window, 1)) {}

Result<std::unique_ptr<FlattenOperator>> FlattenOperator::Make(
    std::string name, const FlattenConfig& config, Rng rng) {
  CRAQR_RETURN_NOT_OK(ValidateConfig(config));
  auto op = std::unique_ptr<FlattenOperator>(
      new FlattenOperator(std::move(name), config, rng));
  if (config.mode == FlattenMode::kBatch) {
    op->buffer_.reserve(config.batch_size);
  }
  return op;
}

Status FlattenOperator::SetTargetRate(double target_rate) {
  if (!(target_rate > 0.0) || !std::isfinite(target_rate)) {
    return Status::InvalidArgument("flatten target rate must be > 0");
  }
  config_.target_rate = target_rate;
  return Status::OK();
}

Status FlattenOperator::Push(const Tuple& tuple) {
  CountIn();
  if (config_.mode == FlattenMode::kOnline) {
    return PushOnline(tuple);
  }
  buffer_.push_back(tuple);
  if (buffer_.size() >= config_.batch_size) {
    return ProcessBatch();
  }
  return Status::OK();
}

Status FlattenOperator::Flush() {
  if (config_.mode == FlattenMode::kBatch && !buffer_.empty()) {
    return ProcessBatch();
  }
  return Status::OK();
}

Status FlattenOperator::Discard(const Tuple& tuple) {
  if (discarded_ != nullptr) {
    return discarded_->Push(tuple);
  }
  return Status::OK();
}

void FlattenOperator::PublishReport(const FlattenBatchReport& report) {
  last_report_ = report;
  violation_history_.Add(report.violation_percent);
  if (report_callback_) {
    report_callback_(report);
  }
}

Status FlattenOperator::ProcessBatch() {
  const std::size_t n = buffer_.size();
  if (n == 0) {
    return Status::OK();
  }

  // The batch's space-time window: the configured region R* over the time
  // covered since the previous batch. Using full coverage (rather than the
  // tuple span) keeps the per-volume target honest on sparse streams.
  double t_min = std::numeric_limits<double>::infinity();
  double t_max = -std::numeric_limits<double>::infinity();
  for (const auto& tuple : buffer_) {
    t_min = std::min(t_min, tuple.point.t);
    t_max = std::max(t_max, tuple.point.t);
  }
  if (!std::isnan(coverage_start_) && coverage_start_ < t_min) {
    t_min = coverage_start_;
  }
  if (!(t_max > t_min)) {
    t_max = t_min + 1e-6;  // degenerate single-instant batch
  }
  coverage_start_ = t_max;
  const pp::SpaceTimeWindow window{t_min, t_max, config_.region};

  // Estimate the conditional rate lambda~(.; theta) of the batch (Eq. 1)
  // by exact maximum likelihood. On pathological batches the MLE can fail
  // (e.g. all points identical); fall back to the homogeneous estimate so
  // the operator degrades to plain thinning.
  std::vector<geom::SpaceTimePoint> points;
  points.reserve(n);
  for (const auto& tuple : buffer_) {
    points.push_back(tuple.point);
  }
  std::array<double, 4> theta{static_cast<double>(n) / window.Volume(), 0.0,
                              0.0, 0.0};
  if (n >= config_.min_batch_for_estimation) {
    auto fit = pp::FitLinearMle(points, window);
    if (fit.ok()) {
      theta = fit->theta;
    }
  }

  const auto rate_at = [&](const geom::SpaceTimePoint& p) {
    const double linear =
        theta[0] + theta[1] * p.t + theta[2] * p.x + theta[3] * p.y;
    return std::max(linear, config_.min_rate);
  };

  // lambda_c = sum_i 1 / lambda~(p_i; theta)  (constant over the batch).
  double lambda_c = 0.0;
  std::vector<double> rates(n);
  for (std::size_t i = 0; i < n; ++i) {
    rates[i] = rate_at(buffer_[i].point);
    lambda_c += 1.0 / rates[i];
  }

  const double target_count =
      config_.target_mode == FlattenTargetMode::kCountPerBatch
          ? config_.target_rate
          : config_.target_rate * window.Volume();

  FlattenBatchReport report;
  report.n = n;
  report.theta = theta;
  report.lambda_c = lambda_c;
  report.target_count = target_count;

  // Eq. (3): p_i = lambda-bar / (lambda~_i * lambda_c), rounded down to 1
  // on rate violations.
  Status status = Status::OK();
  for (std::size_t i = 0; i < n; ++i) {
    double p = target_count / (rates[i] * lambda_c);
    if (p > 1.0) {
      ++report.violations;
      p = 1.0;
    }
    if (rng_.Bernoulli(p)) {
      ++report.retained;
      status = Emit(buffer_[i]);
    } else {
      status = Discard(buffer_[i]);
    }
    if (!status.ok()) {
      buffer_.clear();
      return status;
    }
  }
  report.violation_percent =
      100.0 * static_cast<double>(report.violations) / static_cast<double>(n);
  buffer_.clear();
  PublishReport(report);
  return Status::OK();
}

Status FlattenOperator::PushOnline(const Tuple& tuple) {
  if (!sgd_.has_value()) {
    // Lazily bind the estimation domain at the first tuple so the
    // normalised time frame starts at the stream's own epoch.
    const pp::SpaceTimeWindow domain{tuple.point.t, tuple.point.t + 1.0,
                                     config_.region};
    pp::SgdOptions sgd_options = config_.sgd;
    // A global time trend is not identifiable on an unbounded stream; the
    // online estimator tracks level drift through theta0 instead.
    sgd_options.use_time_feature = false;
    auto estimator = pp::SgdEstimator::Make(domain, sgd_options);
    if (!estimator.ok()) {
      return estimator.status();
    }
    sgd_.emplace(estimator.MoveValue());
  }
  sgd_->Update(tuple.point);
  ++online_seen_;

  if (online_seen_ <= config_.online_warmup) {
    return Emit(tuple);  // warm-up: forward unthinned
  }

  const double rate = sgd_->RateAt(tuple.point);
  double p = config_.target_rate / rate;
  const bool violation = p > 1.0;
  p = std::min(p, 1.0);
  online_probs_.Push(violation ? 1.0 : 0.0);

  if (online_seen_ % std::max<std::size_t>(config_.violation_window, 1) == 0) {
    FlattenBatchReport report;
    report.n = online_probs_.size();
    report.violations =
        static_cast<std::size_t>(std::llround(online_probs_.Sum()));
    report.violation_percent = 100.0 * online_probs_.Mean();
    report.theta = sgd_->theta();
    report.target_count = config_.target_rate;
    PublishReport(report);
  }

  if (rng_.Bernoulli(p)) {
    return Emit(tuple);
  }
  return Discard(tuple);
}

}  // namespace ops
}  // namespace craqr
