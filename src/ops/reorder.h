#pragma once

#include <memory>
#include <string>

#include "common/result.h"
#include "ops/operator.h"
#include "ops/state_serde.h"

/// \file reorder.h
/// \brief Ord: canonical delivery-order restoration for merge stages.
///
/// A multi-cell query's merge stage is fed by several upstream cell chains
/// (possibly living on several shards). Within one processing step each
/// chain delivers a time-ordered subsequence, but the interleaving *across*
/// chains depends on dispatch order — historically chain-grouped in the
/// in-process fabricator and time-sorted in the sharded runtime's
/// collector. ReorderOperator removes that divergence at the source: it
/// buffers everything pushed during a processing step and, at the
/// step-boundary Flush(), emits one batch sorted by (point.t, id) — the
/// canonical delivery order. Both execution paths build their merge stages
/// through fabric::BuildMergeStage, so delivery order (not just content)
/// is identical for every shard count, num_shards == 1 included.
///
/// Tuple ids are unique, so (t, id) is a total order and the sort is
/// deterministic; the stable sort additionally preserves arrival order on
/// (impossible in practice) full ties.

namespace craqr {
namespace ops {

/// \brief Buffers a processing step's deliveries and flushes them in
/// canonical (t, id) order.
class ReorderOperator final : public Operator {
 public:
  /// Creates a reorder buffer.
  static Result<std::unique_ptr<ReorderOperator>> Make(std::string name);

  Status Push(const Tuple& tuple) override;

  /// Batch-native: column-appends the active tuples to the step buffer.
  Status PushBatch(TupleBatch& batch) override;

  /// Sorts the buffered step by (t, id) and emits it as one batch.
  Status Flush() override;

  OperatorKind kind() const override { return OperatorKind::kReorder; }

  /// Tuples currently buffered (between a push and the next Flush).
  std::size_t buffered() const { return buffer_.size(); }

  /// Evacuates buffered string payloads before pool generation
  /// retirement (memory governor).
  void ReinternStrings(ValuePool& pool) override {
    buffer_.ReinternStrings(pool);
  }

  /// \name Checkpoint support
  /// Serializes the base counters and any buffered step (checkpoints are
  /// taken at step boundaries, where the buffer has been flushed, but the
  /// format covers a mid-step capture too).
  ///@{
  void SaveState(StateWriter& w) const {
    WriteOperatorCounters(w, *this);
    WriteBatchRows(w, buffer_);
  }
  Status RestoreState(StateReader& r) {
    CRAQR_RETURN_NOT_OK(ReadOperatorCounters(r, this));
    buffer_.Clear();
    return ReadBatchRows(r, &buffer_);
  }
  ///@}

 private:
  explicit ReorderOperator(std::string name) : Operator(std::move(name)) {}

  /// Recycled step buffer; always drained by Flush().
  TupleBatch buffer_;
};

}  // namespace ops
}  // namespace craqr
