#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "geometry/point.h"
#include "ops/tuple.h"

/// \file tuple_batch.h
/// \brief The unit of batch-at-a-time PMAT execution.
///
/// A TupleBatch is a reusable, move-friendly container of tuples flowing
/// through `Operator::PushBatch`. It exists to amortise the per-tuple
/// costs that dominate the tuple-at-a-time path — one virtual call and one
/// downstream `Emit` fan-out per observation — into one call per batch:
///
///  - **recycling**: `Clear()` keeps the underlying capacity (tuple
///    storage and selection alike) and `Swap()` exchanges storage in
///    O(1), so operators keep scratch batches as members and never
///    reallocate on the steady-state hot path;
///  - **selection vector**: dropping operators (T, Sel, online F) retire
///    tuples by *deselecting* them — one 32-bit index write — instead of
///    physically moving ~90-byte tuples. A whole selected batch flows
///    down a single-output edge untouched; only operators that must
///    materialise (Partition's per-port routing, Sink storage, broadcast
///    copies) compact;
///  - **move discipline**: copying is deleted; accidental per-batch
///    copies are exactly the cost this type removes, so the only copy is
///    the explicit `CopyFrom` used by multi-output broadcasts;
///  - **column views**: `CollectIds` / `CollectAttributes` /
///    `CollectPoints` / `CollectSensorIds` gather the numeric hot fields
///    of the *active* tuples into caller-owned scratch columns (also
///    recycled) — e.g. Flatten's MLE fit reads the point column without
///    touching the `AttributeValue` variants.
///
/// Active-tuple order inside a batch is arrival order and is semantically
/// significant: operators draw their randomness per tuple in this order,
/// which is what keeps batch-driven topologies delivering exactly the
/// streams the per-tuple path delivers.

namespace craqr {
namespace ops {

/// \brief A reusable batch of crowdsensed tuples (see file comment).
class TupleBatch {
 public:
  TupleBatch() = default;
  /// Wraps an existing tuple vector (takes ownership; no copy).
  explicit TupleBatch(std::vector<Tuple> tuples) : tuples_(std::move(tuples)) {}

  TupleBatch(TupleBatch&&) = default;
  TupleBatch& operator=(TupleBatch&&) = default;

  /// Copying is explicit (CopyFrom): an accidental batch copy is the
  /// per-tuple cost this type exists to remove.
  TupleBatch(const TupleBatch&) = delete;
  TupleBatch& operator=(const TupleBatch&) = delete;

  /// Number of *active* tuples.
  std::size_t size() const {
    return has_selection_ ? selection_.size() : tuples_.size();
  }

  /// True when no tuple is active.
  bool empty() const { return size() == 0; }

  /// Pre-allocates room for `n` tuples.
  void Reserve(std::size_t n) { tuples_.reserve(n); }

  /// Drops all tuples and the selection but keeps both capacities
  /// (scratch recycling).
  void Clear() {
    tuples_.clear();
    selection_.clear();
    has_selection_ = false;
  }

  /// O(1) storage exchange.
  void Swap(TupleBatch& other) {
    tuples_.swap(other.tuples_);
    selection_.swap(other.selection_);
    std::swap(has_selection_, other.has_selection_);
  }

  /// Appends one tuple (pass by value; move at the call site). Only valid
  /// while no selection is active — producers fill plain batches;
  /// selections appear as the batch flows through dropping operators.
  void Append(Tuple tuple) {
    assert(!has_selection_ && "Append on a batch with an active selection");
    tuples_.push_back(std::move(tuple));
  }

  /// Replaces this batch's contents with a copy of `other`'s *active*
  /// tuples, reusing the existing capacity. The one sanctioned copy path
  /// (multi-output broadcast in Operator::Emit).
  void CopyFrom(const TupleBatch& other) {
    Clear();
    tuples_.reserve(other.size());
    other.ForEach([this](const Tuple& tuple) { tuples_.push_back(tuple); });
  }

  /// Invokes `fn(Tuple&)` on every active tuple in arrival order.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    if (!has_selection_) {
      for (Tuple& tuple : tuples_) {
        fn(tuple);
      }
    } else {
      for (const std::uint32_t idx : selection_) {
        fn(tuples_[idx]);
      }
    }
  }

  /// Const overload of ForEach.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (!has_selection_) {
      for (const Tuple& tuple : tuples_) {
        fn(tuple);
      }
    } else {
      for (const std::uint32_t idx : selection_) {
        fn(tuples_[idx]);
      }
    }
  }

  /// Invokes `fn(raw_index, Tuple&)` on every active tuple in arrival
  /// order; `raw_index` indexes the underlying storage and is valid for
  /// AdoptSelection index lists.
  template <typename Fn>
  void ForEachIndexed(Fn&& fn) {
    if (!has_selection_) {
      for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(tuples_.size());
           ++i) {
        fn(i, tuples_[i]);
      }
    } else {
      for (const std::uint32_t idx : selection_) {
        fn(idx, tuples_[idx]);
      }
    }
  }

  /// \brief Replaces the selection by swapping in `indices` (ascending
  /// raw-storage indices; the previous selection lands in `indices`).
  /// This is how Partition shares one batch's storage across output
  /// ports: route once, then adopt each port's index list in turn — no
  /// tuple is moved.
  void AdoptSelection(std::vector<std::uint32_t>* indices) {
    selection_.swap(*indices);
    has_selection_ = true;
  }

  /// \brief The vectorized drop primitive: keeps the active tuples for
  /// which `fn(Tuple&)` returns true, in order, by rewriting the
  /// selection — no tuple is moved. `fn` is invoked exactly once per
  /// active tuple in arrival order (operators draw randomness inside it).
  /// When `dropped` is non-null, dropped tuples are move-appended to it
  /// (the Flatten discard side output); their storage slots stay behind
  /// as inactive husks until Clear().
  template <typename Fn>
  void Retain(Fn&& fn, TupleBatch* dropped = nullptr) {
    if (!has_selection_) {
      // Indexed writes into a pre-sized selection (recycled capacity)
      // instead of per-element push_back: this loop is the innermost cost
      // of every Thin/Filter sweep.
      const auto n = static_cast<std::uint32_t>(tuples_.size());
      selection_.resize(n);
      std::size_t out = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (fn(tuples_[i])) {
          selection_[out++] = i;
        } else if (dropped != nullptr) {
          dropped->Append(std::move(tuples_[i]));
        }
      }
      selection_.resize(out);
      has_selection_ = true;
    } else {
      std::size_t out = 0;
      for (const std::uint32_t idx : selection_) {
        if (fn(tuples_[idx])) {
          selection_[out++] = idx;
        } else if (dropped != nullptr) {
          dropped->Append(std::move(tuples_[idx]));
        }
      }
      selection_.resize(out);
    }
  }

  /// Physically compacts the storage down to the active tuples and drops
  /// the selection. No-op on a plain batch. Call before touching
  /// `tuples()` / `TakeTuples()` on a batch that may carry a selection.
  void Materialize() {
    if (!has_selection_) {
      return;
    }
    std::size_t out = 0;
    for (const std::uint32_t idx : selection_) {
      if (idx != out) {
        tuples_[out] = std::move(tuples_[idx]);
      }
      ++out;
    }
    tuples_.resize(out);
    selection_.clear();
    has_selection_ = false;
  }

  /// True when a selection is active (size() < raw storage size is then
  /// possible).
  bool has_selection() const { return has_selection_; }

  /// Direct access to the underlying storage. With an active selection
  /// this includes inactive slots — Materialize() first unless the batch
  /// is known plain.
  std::vector<Tuple>& tuples() { return tuples_; }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Materializes and moves the storage out, leaving the batch empty.
  std::vector<Tuple> TakeTuples() {
    Materialize();
    return std::move(tuples_);
  }

  /// \name Column views
  /// Gather one numeric hot field of the active tuples into a
  /// caller-owned scratch column (cleared first, capacity recycled).
  ///@{
  void CollectIds(std::vector<std::uint64_t>* ids) const;
  void CollectAttributes(std::vector<AttributeId>* attributes) const;
  void CollectPoints(std::vector<geom::SpaceTimePoint>* points) const;
  void CollectSensorIds(std::vector<std::uint64_t>* sensor_ids) const;
  ///@}

 private:
  std::vector<Tuple> tuples_;
  /// Indices of the active tuples, ascending; meaningful only while
  /// has_selection_ is true.
  std::vector<std::uint32_t> selection_;
  bool has_selection_ = false;
};

}  // namespace ops
}  // namespace craqr
