#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/simd.h"
#include "common/span.h"
#include "geometry/point.h"
#include "ops/tuple.h"

/// \file tuple_batch.h
/// \brief The unit of batch-at-a-time PMAT execution, stored columnar.
///
/// A TupleBatch is a reusable, move-friendly container of tuples flowing
/// through `Operator::PushBatch`. Storage is struct-of-arrays: five
/// parallel columns (ids, attributes, points, values, sensor_ids) instead
/// of an array of ~90-byte structs, so
///
///  - **column views are zero-copy**: `Ids()` / `Attributes()` /
///    `Points()` / `Values()` / `SensorIds()` return `Span`s straight over
///    the columns of a plain (selection-free) batch — e.g. Flatten's MLE
///    fit reads the point column in place; the gathering `Collect*`
///    variants remain for selected batches;
///  - **moves shrink**: `Materialize` / `Emit` / outbox appends copy
///    24–32 bytes per tuple column-wise (string payloads are 12-byte
///    `PayloadRef` handles into the ValuePool, never `std::string`s);
///  - **recycling**: `Clear()` keeps every column's capacity and `Swap()`
///    exchanges storage in O(1), so operators keep scratch batches as
///    members and never reallocate on the steady-state hot path;
///  - **selection vector**: dropping operators (T, Sel, online F) retire
///    tuples by *deselecting* them — one 32-bit index write. A whole
///    selected batch flows down a single-output edge untouched; only
///    operators that must materialise (Sink storage, broadcast copies)
///    compact;
///  - **move discipline**: copying is deleted; the only copy paths are the
///    explicit `CopyFrom` / `AppendActiveFrom` used by multi-output
///    broadcasts and the batched shard outbox.
///
/// Active-tuple order inside a batch is arrival order and is semantically
/// significant: operators draw their randomness per tuple in this order,
/// which is what keeps batch-driven topologies delivering exactly the
/// streams the per-tuple path delivers.
///
/// `ops::Tuple` remains the materialized exchange struct for row-at-a-time
/// boundaries (the per-tuple reference path, sinks, trace I/O): `RowAt`
/// gathers one row, `Append`/`StoreRowAt` scatter one back.

namespace craqr {
namespace ops {

/// \brief A reusable columnar batch of crowdsensed tuples (see file
/// comment).
class TupleBatch {
 public:
  TupleBatch() = default;

  /// Scatters an existing tuple vector into fresh columns (one pass;
  /// convenience for producers, tests and benches).
  explicit TupleBatch(const std::vector<Tuple>& tuples) { Assign(tuples); }

  TupleBatch(TupleBatch&&) = default;
  TupleBatch& operator=(TupleBatch&&) = default;

  /// Copying is explicit (CopyFrom): an accidental batch copy is the
  /// per-tuple cost this type exists to remove.
  TupleBatch(const TupleBatch&) = delete;
  TupleBatch& operator=(const TupleBatch&) = delete;

  /// Number of *active* tuples.
  std::size_t size() const {
    return has_selection_ ? selection_.size() : ids_.size();
  }

  /// Named alias of size(): the count the gathering sweeps (Collect*,
  /// ToTuples) reserve for before their per-row appends.
  std::size_t ActiveCount() const { return size(); }

  /// True when no tuple is active.
  bool empty() const { return size() == 0; }

  /// Underlying storage rows (includes deselected husks).
  std::size_t raw_size() const { return ids_.size(); }

  /// Storage capacity in rows (recycling diagnostics).
  std::size_t Capacity() const { return ids_.capacity(); }

  /// Pre-allocates room for `n` tuples in every column.
  void Reserve(std::size_t n) {
    ids_.reserve(n);
    attributes_.reserve(n);
    points_.reserve(n);
    values_.reserve(n);
    sensor_ids_.reserve(n);
  }

  /// Drops all tuples and the selection but keeps every column's capacity
  /// (scratch recycling).
  void Clear() {
    ids_.clear();
    attributes_.clear();
    points_.clear();
    values_.clear();
    sensor_ids_.clear();
    selection_.clear();
    has_selection_ = false;
  }

  /// O(1) storage exchange.
  void Swap(TupleBatch& other) {
    ids_.swap(other.ids_);
    attributes_.swap(other.attributes_);
    points_.swap(other.points_);
    values_.swap(other.values_);
    sensor_ids_.swap(other.sensor_ids_);
    selection_.swap(other.selection_);
    std::swap(has_selection_, other.has_selection_);
  }

  /// Replaces the contents with a scatter of `tuples` (capacity recycled).
  void Assign(const std::vector<Tuple>& tuples) {
    Clear();
    Reserve(tuples.size());
    for (const Tuple& tuple : tuples) {
      Append(tuple);
    }
  }

  /// Appends one tuple, scattered across the columns. Only valid while no
  /// selection is active — producers fill plain batches; selections appear
  /// as the batch flows through dropping operators.
  void Append(const Tuple& tuple) {
    assert(!has_selection_ && "Append on a batch with an active selection");
    ids_.push_back(tuple.id);
    attributes_.push_back(tuple.attribute);
    points_.push_back(tuple.point);
    values_.push_back(tuple.value);
    sensor_ids_.push_back(tuple.sensor_id);
  }

  /// Column-native append (producers that never build a Tuple struct).
  void Append(std::uint64_t id, AttributeId attribute,
              const geom::SpaceTimePoint& point, PayloadRef value,
              std::uint64_t sensor_id) {
    assert(!has_selection_ && "Append on a batch with an active selection");
    ids_.push_back(id);
    attributes_.push_back(attribute);
    points_.push_back(point);
    values_.push_back(value);
    sensor_ids_.push_back(sensor_id);
  }

  /// Appends raw row `raw` of `src` (column-wise, 56 flat bytes). The
  /// routing primitive: fabricator inboxes and shard sub-batches are built
  /// row by row from the incoming batch.
  void AppendRow(const TupleBatch& src, std::uint32_t raw) {
    assert(!has_selection_ && "AppendRow on a batch with an active selection");
    ids_.push_back(src.ids_[raw]);
    attributes_.push_back(src.attributes_[raw]);
    points_.push_back(src.points_[raw]);
    values_.push_back(src.values_[raw]);
    sensor_ids_.push_back(src.sensor_ids_[raw]);
  }

  /// Appends every *active* tuple of `other` (column-wise bulk copy when
  /// `other` is plain, gather otherwise). The batched-outbox primitive.
  void AppendActiveFrom(const TupleBatch& other);

  /// \brief Appends the raw rows `raws` of `src`, column by column — the
  /// grouped-copy half of the histogram routers: after the
  /// count -> prefix-sum -> scatter pass groups a batch's rows by
  /// destination, each destination inbox receives its whole group with
  /// five tight gather loops instead of `raws.size()` interleaved
  /// `AppendRow` calls.
  void AppendRows(const TupleBatch& src, Span<const std::uint32_t> raws);

  /// Replaces this batch's contents with a copy of `other`'s *active*
  /// tuples, reusing the existing capacity. The one sanctioned whole-batch
  /// copy path (multi-output broadcast in Operator::Emit).
  void CopyFrom(const TupleBatch& other) {
    Clear();
    AppendActiveFrom(other);
  }

  /// \name Raw row access
  /// `raw` indexes the underlying columns (valid with or without a
  /// selection; ForEachRaw / Retain hand out raw indices).
  ///@{
  std::uint64_t id_at(std::uint32_t raw) const { return ids_[raw]; }
  AttributeId attribute_at(std::uint32_t raw) const {
    return attributes_[raw];
  }
  const geom::SpaceTimePoint& point_at(std::uint32_t raw) const {
    return points_[raw];
  }
  const PayloadRef& value_at(std::uint32_t raw) const { return values_[raw]; }
  std::uint64_t sensor_id_at(std::uint32_t raw) const {
    return sensor_ids_[raw];
  }

  /// Gathers raw row `raw` into a materialized exchange struct.
  Tuple RowAt(std::uint32_t raw) const {
    Tuple t;
    t.id = ids_[raw];
    t.attribute = attributes_[raw];
    t.point = points_[raw];
    t.value = values_[raw];
    t.sensor_id = sensor_ids_[raw];
    return t;
  }

  /// Scatters `tuple` back into raw row `raw` (Map's in-place transform).
  void StoreRowAt(std::uint32_t raw, const Tuple& tuple) {
    ids_[raw] = tuple.id;
    attributes_[raw] = tuple.attribute;
    points_[raw] = tuple.point;
    values_[raw] = tuple.value;
    sensor_ids_[raw] = tuple.sensor_id;
  }
  ///@}

  /// Invokes `fn(raw_index)` on every active tuple in arrival order — the
  /// preferred hot sweep: consumers read only the columns they need.
  template <typename Fn>
  void ForEachRaw(Fn&& fn) const {
    if (!has_selection_) {
      const auto n = static_cast<std::uint32_t>(ids_.size());
      for (std::uint32_t i = 0; i < n; ++i) {
        fn(i);
      }
    } else {
      for (const std::uint32_t idx : selection_) {
        fn(idx);
      }
    }
  }

  /// Invokes `fn(const Tuple&)` on every active tuple in arrival order,
  /// materializing each row (56 flat bytes). Row-at-a-time boundaries
  /// (base-class Push fallback, sink storage, user predicates) only.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    ForEachRaw([this, &fn](std::uint32_t raw) {
      const Tuple tuple = RowAt(raw);
      fn(tuple);
    });
  }

  /// \brief Replaces the selection by swapping in `indices` (ascending
  /// raw-storage indices; the previous selection lands in `indices`).
  /// This is how Partition shares one batch's storage across output
  /// ports: route once, then adopt each port's index list in turn — no
  /// tuple is moved.
  void AdoptSelection(std::vector<std::uint32_t>* indices) {
    selection_.swap(*indices);
    has_selection_ = true;
  }

  /// \brief The vectorized drop primitive: keeps the active tuples for
  /// which `fn(raw_index)` returns true, in order, by rewriting the
  /// selection — no tuple is moved. `fn` is invoked exactly once per
  /// active tuple in arrival order (operators draw randomness inside it).
  /// When `dropped` is non-null, dropped tuples are column-copied into it
  /// (the Flatten discard side output); their storage slots stay behind
  /// as inactive husks until Clear().
  template <typename Fn>
  void RetainRaw(Fn&& fn, TupleBatch* dropped = nullptr) {
    if (!has_selection_) {
      // Indexed writes into a pre-sized selection (recycled capacity)
      // instead of per-element push_back: this loop is the innermost cost
      // of every Thin/Filter sweep.
      const auto n = static_cast<std::uint32_t>(ids_.size());
      selection_.resize(n);
      std::size_t out = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (fn(i)) {
          selection_[out++] = i;
        } else if (dropped != nullptr) {
          dropped->AppendRow(*this, i);
        }
      }
      selection_.resize(out);
      has_selection_ = true;
    } else {
      std::size_t out = 0;
      for (const std::uint32_t idx : selection_) {
        if (fn(idx)) {
          selection_[out++] = idx;
        } else if (dropped != nullptr) {
          dropped->AppendRow(*this, idx);
        }
      }
      selection_.resize(out);
    }
  }

  /// \brief Mask-aware Retain: keeps the j-th active tuple iff
  /// `mask[j] != 0`, rewriting the selection with a branch-free compact
  /// pass. `mask` is indexed by *active position* in arrival order —
  /// exactly the order batch RNG sweeps (`Rng::FillBernoulliMask`) fill
  /// it in — and must hold `size()` bytes. Equivalent to
  /// `RetainRaw([&](raw) { return mask[j++]; }, dropped)` but with no
  /// per-row branch on the keep decision. When `dropped` is non-null the
  /// dropped rows are column-copied into it (in order), which requires
  /// the branchy fallback sweep.
  void RetainFromMask(Span<const std::uint8_t> mask,
                      TupleBatch* dropped = nullptr) {
    assert(mask.size() == size());
    if (dropped != nullptr) {
      std::size_t j = 0;
      RetainRaw([&mask, &j](std::uint32_t) { return mask[j++] != 0; },
                dropped);
      return;
    }
    if (!has_selection_) {
      selection_.resize(ids_.size());
      selection_.resize(simd::MaskCompact(mask, selection_.data()));
      has_selection_ = true;
    } else {
      // In-place gather: writes land at or before the read cursor.
      selection_.resize(
          simd::MaskCompactGather(mask, selection_.data(), selection_.data()));
    }
  }

  /// \brief Mask-aware selection from the *raw* rows: keeps the active
  /// tuples whose raw storage index `raw` has `raw_mask[raw] != 0`
  /// (branch-free compact). `raw_mask` is indexed by raw storage row —
  /// the layout containment sweeps (`Rect::ContainsMask` over
  /// `RawPoints()`) produce, husk rows included — and must hold
  /// `raw_size()` bytes. Already-deselected rows stay deselected.
  void SelectFromMask(Span<const std::uint8_t> raw_mask) {
    assert(raw_mask.size() == raw_size());
    if (!has_selection_) {
      selection_.resize(ids_.size());
      selection_.resize(simd::MaskCompact(raw_mask, selection_.data()));
      has_selection_ = true;
    } else {
      std::size_t out = 0;
      for (const std::uint32_t idx : selection_) {
        selection_[out] = idx;
        out += (raw_mask[idx] != 0);
      }
      selection_.resize(out);
    }
  }

  /// \brief Appends the active raw indices whose `raw_mask` byte is set
  /// to `out` (cleared first; capacity recycled), preserving arrival
  /// order — Partition's per-port list builder: one branch-free compact
  /// per output port, all ports sharing this batch's storage through
  /// AdoptSelection afterwards. `raw_mask` is raw-indexed as in
  /// SelectFromMask.
  void GatherActiveWhere(Span<const std::uint8_t> raw_mask,
                         std::vector<std::uint32_t>* out) const {
    assert(raw_mask.size() == raw_size());
    // Compact into a never-shrinking thread-local scratch, then copy the
    // survivors out: `out->resize(size())` would value-initialize (i.e.
    // memset) the whole vector on every batch, which costs more than the
    // compact itself. Batches are single-thread-owned, so thread_local is
    // exactly the right scratch scope (as in SortByTimeThenId).
    thread_local std::vector<std::uint32_t> scratch;
    if (scratch.size() < size()) {
      scratch.resize(size());
    }
    std::size_t count = 0;
    if (!has_selection_) {
      count = simd::MaskCompact(raw_mask, scratch.data());
    } else {
      std::uint32_t* dst = scratch.data();
      for (const std::uint32_t idx : selection_) {
        dst[count] = idx;
        count += (raw_mask[idx] != 0);
      }
    }
    out->assign(scratch.data(), scratch.data() + count);
  }

  /// \brief Number of active tuples whose raw-indexed mask byte is set
  /// (branch-free reduction) — Union's out-of-region accounting.
  std::size_t CountActiveWhere(Span<const std::uint8_t> raw_mask) const {
    assert(raw_mask.size() == raw_size());
    if (!has_selection_) {
      return simd::MaskCount(raw_mask);
    }
    std::size_t count = 0;
    for (const std::uint32_t idx : selection_) {
      count += (raw_mask[idx] != 0);
    }
    return count;
  }

  /// Row-materializing Retain for user predicates over whole tuples.
  template <typename Fn>
  void Retain(Fn&& fn, TupleBatch* dropped = nullptr) {
    RetainRaw(
        [this, &fn](std::uint32_t raw) {
          const Tuple tuple = RowAt(raw);
          return fn(tuple);
        },
        dropped);
  }

  /// Physically compacts every column down to the active tuples and drops
  /// the selection. No-op on a plain batch.
  void Materialize();

  /// \brief Physically sorts the active tuples by (point.t, id) — the
  /// canonical delivery order of merge stages — compacting away husks and
  /// dropping the selection. Stable, though (t, id) is already unique for
  /// real streams.
  void SortByTimeThenId();

  /// True when a selection is active (size() < raw storage size is then
  /// possible).
  bool has_selection() const { return has_selection_; }

  /// Gathers the active tuples into materialized exchange structs
  /// (tests, trace I/O; not a hot path).
  std::vector<Tuple> ToTuples() const;

  /// Approximate heap footprint of the columns + selection (capacity, not
  /// size) — memory-governor accounting input.
  std::size_t ApproxBytes() const {
    return ids_.capacity() * sizeof(std::uint64_t) +
           attributes_.capacity() * sizeof(AttributeId) +
           points_.capacity() * sizeof(geom::SpaceTimePoint) +
           values_.capacity() * sizeof(PayloadRef) +
           sensor_ids_.capacity() * sizeof(std::uint64_t) +
           selection_.capacity() * sizeof(std::uint32_t);
  }

  /// Releases recycled slack: shrinks every column's capacity to its live
  /// size (memory-governor trim; undoes Clear()'s capacity retention).
  void ShrinkToFit() {
    ids_.shrink_to_fit();
    attributes_.shrink_to_fit();
    points_.shrink_to_fit();
    values_.shrink_to_fit();
    sensor_ids_.shrink_to_fit();
    selection_.shrink_to_fit();
  }

  /// Re-interns every *active* string payload into `pool`'s current tier
  /// (generation-retirement evacuation). Deselected husk rows are left
  /// untouched on purpose: re-interning dropped one-shot strings would
  /// resurrect them in the new generation and defeat reclamation.
  void ReinternStrings(ValuePool& pool) {
    ForEachRaw([this, &pool](std::uint32_t raw) {
      PayloadRef& v = values_[raw];
      if (v.kind() == PayloadKind::kString) {
        v = PayloadRef::InternedString(pool.ReinternHandle(
            pool.Get(v.string_id(), v.string_generation())));
      }
    });
  }

  /// \name Zero-copy column views
  /// Spans straight over the columns; valid only while the batch is plain
  /// (no selection — asserted) and until the next mutation.
  ///@{
  Span<const std::uint64_t> Ids() const {
    assert(!has_selection_ && "column span on a selected batch");
    return {ids_.data(), ids_.size()};
  }
  Span<const AttributeId> Attributes() const {
    assert(!has_selection_ && "column span on a selected batch");
    return {attributes_.data(), attributes_.size()};
  }
  Span<const geom::SpaceTimePoint> Points() const {
    assert(!has_selection_ && "column span on a selected batch");
    return {points_.data(), points_.size()};
  }
  Span<const PayloadRef> Values() const {
    assert(!has_selection_ && "column span on a selected batch");
    return {values_.data(), values_.size()};
  }
  Span<const std::uint64_t> SensorIds() const {
    assert(!has_selection_ && "column span on a selected batch");
    return {sensor_ids_.data(), sensor_ids_.size()};
  }
  ///@}

  /// \brief The point column over *all* raw storage rows, deselected
  /// husks included — the input of the branch-free containment sweeps,
  /// which compute masks for every raw row (husk results are simply
  /// never read) rather than gather the active subset first. Valid until
  /// the next mutation.
  Span<const geom::SpaceTimePoint> RawPoints() const {
    return {points_.data(), points_.size()};
  }

  /// \name Gathering column views
  /// Copy one column of the *active* tuples into a caller-owned scratch
  /// column (cleared first, capacity recycled). Work with any selection;
  /// prefer the zero-copy spans on plain batches.
  ///@{
  void CollectIds(std::vector<std::uint64_t>* ids) const;
  void CollectAttributes(std::vector<AttributeId>* attributes) const;
  void CollectPoints(std::vector<geom::SpaceTimePoint>* points) const;
  void CollectSensorIds(std::vector<std::uint64_t>* sensor_ids) const;
  ///@}

 private:
  template <typename T>
  static void GatherColumn(const std::vector<T>& src,
                           const std::vector<std::uint32_t>& order,
                           std::vector<T>* dst) {
    dst->clear();
    dst->reserve(order.size());
    for (const std::uint32_t idx : order) {
      dst->push_back(src[idx]);
    }
  }

  /// Struct-of-arrays columns; parallel by construction.
  std::vector<std::uint64_t> ids_;
  std::vector<AttributeId> attributes_;
  std::vector<geom::SpaceTimePoint> points_;
  std::vector<PayloadRef> values_;
  std::vector<std::uint64_t> sensor_ids_;
  /// Indices of the active tuples, ascending; meaningful only while
  /// has_selection_ is true.
  std::vector<std::uint32_t> selection_;
  bool has_selection_ = false;
};

}  // namespace ops
}  // namespace craqr
