#include "ops/thin.h"

#include <cmath>
#include <sstream>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace craqr {
namespace ops {

namespace {

Status ValidateRates(double input_rate, double output_rate) {
  if (!(input_rate > 0.0) || !std::isfinite(input_rate)) {
    return Status::InvalidArgument("thin input rate must be > 0");
  }
  if (!(output_rate > 0.0) || !std::isfinite(output_rate)) {
    return Status::InvalidArgument("thin output rate must be > 0");
  }
  if (!(output_rate < input_rate)) {
    std::ostringstream msg;
    msg << "thin requires output rate < input rate, got " << output_rate
        << " >= " << input_rate
        << " (the T operator's rate is strictly less than the original MDPP)";
    return Status::InvalidArgument(msg.str());
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<ThinOperator>> ThinOperator::Make(std::string name,
                                                         double input_rate,
                                                         double output_rate,
                                                         Rng rng) {
  CRAQR_RETURN_NOT_OK(ValidateRates(input_rate, output_rate));
  return std::unique_ptr<ThinOperator>(
      new ThinOperator(std::move(name), input_rate, output_rate, rng));
}

Status ThinOperator::Push(const Tuple& tuple) {
  CountIn();
  if (rng_.Bernoulli(retain_probability())) {
    return Emit(tuple);
  }
  return Status::OK();
}

Status ThinOperator::PushBatch(TupleBatch& batch) {
  const std::size_t n = batch.size();
  CountIn(n);
  // Branch-free Bernoulli sweep: one batch mask fill (raw word vs the
  // shared precomputed threshold, no per-row branch) and one mask-compact
  // selection rewrite. Draw order equals the per-tuple path's — both
  // compare through Rng::BernoulliThreshold — so survivors are identical
  // tuple for tuple. The mask buffer is recycled across batches.
  mask_.resize(n);
  rng_.FillBernoulliMask(retain_probability(), {mask_.data(), n});
  batch.RetainFromMask({mask_.data(), n});
  return Emit(batch);
}

Status ThinOperator::UpdateRates(double input_rate, double output_rate) {
  CRAQR_RETURN_NOT_OK(ValidateRates(input_rate, output_rate));
  input_rate_ = input_rate;
  output_rate_ = output_rate;
  return Status::OK();
}

}  // namespace ops
}  // namespace craqr
