#include "ops/pipeline.h"

#include <sstream>
#include <unordered_set>

#include "common/macros.h"

namespace craqr {
namespace ops {

bool Pipeline::Remove(Operator* op) {
  for (auto it = operators_.begin(); it != operators_.end(); ++it) {
    if (it->get() == op) {
      operators_.erase(it);
      return true;
    }
  }
  return false;
}

Status Pipeline::FlushAll() {
  for (const auto& op : operators_) {
    CRAQR_RETURN_NOT_OK(op->Flush());
  }
  return Status::OK();
}

std::uint64_t Pipeline::TotalOperatorEvaluations() const {
  std::uint64_t total = 0;
  for (const auto& op : operators_) {
    total += op->stats().tuples_in;
  }
  return total;
}

std::string Pipeline::ToDot() const {
  std::ostringstream os;
  os << "digraph topology {\n";
  std::unordered_set<const Operator*> owned;
  for (const auto& op : operators_) {
    owned.insert(op.get());
  }
  for (const auto& op : operators_) {
    os << "  \"" << op->name() << "\" [label=\""
       << OperatorKindLabel(op->kind()) << ": " << op->name() << "\"];\n";
    for (const Operator* out : op->outputs()) {
      os << "  \"" << op->name() << "\" -> \"" << out->name() << "\";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace ops
}  // namespace craqr
