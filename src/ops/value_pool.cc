#include "ops/value_pool.h"

#include <limits>
#include <mutex>
#include <stdexcept>

namespace craqr {
namespace ops {

ValueId ValuePool::Intern(std::string_view value) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = index_.find(value);
    if (it != index_.end()) {
      return it->second;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Double-check: another thread may have interned between the locks.
  const auto it = index_.find(value);
  if (it != index_.end()) {
    return it->second;
  }
  if (values_.size() >= std::numeric_limits<ValueId>::max()) {
    throw std::length_error("ValuePool exhausted 2^32 distinct strings");
  }
  values_.emplace_back(value);
  const auto id = static_cast<ValueId>(values_.size() - 1);
  index_.emplace(std::string_view(values_.back()), id);
  bytes_ += values_.back().capacity() + sizeof(std::string);
  return id;
}

const std::string& ValuePool::Get(ValueId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  // Deque elements are stable and immutable after insertion, so the
  // reference stays valid after the lock is released.
  return values_.at(id);
}

std::size_t ValuePool::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return values_.size();
}

std::size_t ValuePool::ApproxBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return bytes_;
}

ValuePool& ValuePool::Global() {
  static ValuePool* pool = new ValuePool();  // never destroyed: handles in
                                             // static sinks may outlive main
  return *pool;
}

}  // namespace ops
}  // namespace craqr
