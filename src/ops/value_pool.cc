#include "ops/value_pool.h"

#include <limits>
#include <mutex>
#include <stdexcept>

namespace craqr {
namespace ops {

namespace {

/// libstdc++ deque geometry: 512-byte blocks (one block holds
/// 512 / sizeof(T) elements) plus the block-pointer map.
constexpr std::size_t kDequeBlockBytes = 512;

std::size_t DequeFootprint(std::size_t n, std::size_t elem_size) {
  if (n == 0) return 0;
  const std::size_t per_block =
      elem_size >= kDequeBlockBytes ? 1 : kDequeBlockBytes / elem_size;
  const std::size_t blocks = (n + per_block - 1) / per_block;
  return blocks * (per_block * elem_size) + blocks * sizeof(void*);
}

}  // namespace

std::size_t ValuePool::TierBytesLocked(const Tier& tier) {
  // string_bytes already charges sizeof(std::string) per entry for the
  // control block; add index node + bucket overhead and the deque's block
  // rounding + block-pointer map on top.
  std::size_t bytes = tier.string_bytes;
  bytes += tier.index.size() * kIndexNodeBytes;
  bytes += tier.index.bucket_count() * sizeof(void*);
  if (!tier.values.empty()) {
    bytes += DequeFootprint(tier.values.size(), sizeof(std::string)) -
             tier.values.size() * sizeof(std::string);
  }
  return bytes;
}

StringHandle ValuePool::InternIntoLocked(Tier* tier, std::uint32_t generation,
                                         std::string_view value) {
  const auto it = tier->index.find(value);
  if (it != tier->index.end()) {
    return StringHandle{it->second, generation};
  }
  if (tier->values.size() >= std::numeric_limits<ValueId>::max()) {
    throw std::length_error("ValuePool exhausted 2^32 distinct strings");
  }
  tier->values.emplace_back(value);
  const auto id = static_cast<ValueId>(tier->values.size() - 1);
  tier->index.emplace(std::string_view(tier->values.back()), id);
  tier->string_bytes += tier->values.back().capacity() + sizeof(std::string);
  return StringHandle{id, generation};
}

StringHandle ValuePool::InternHandle(std::string_view value) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = persistent_.index.find(value);
    if (it != persistent_.index.end()) {
      return StringHandle{it->second, 0};
    }
    // A current-generation hit still needs the writer lock (it triggers
    // promotion), so only the persistent tier gets a lock-free-ish path.
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Double-check: another thread may have interned or promoted in between.
  const auto it = persistent_.index.find(value);
  if (it != persistent_.index.end()) {
    return StringHandle{it->second, 0};
  }
  if (current_generation_ == 0) {
    return InternIntoLocked(&persistent_, 0, value);
  }
  Tier& current = *rotating_.rbegin()->second;
  if (current.index.find(value) != current.index.end()) {
    // Second sight within this generation: promote into the persistent
    // tier so categorical values survive retirement and allocate at most
    // twice, ever. The rotating copy stays behind — handles to it remain
    // valid until its generation retires.
    return InternIntoLocked(&persistent_, 0, value);
  }
  return InternIntoLocked(&current, current_generation_, value);
}

StringHandle ValuePool::ReinternHandle(std::string_view value) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = persistent_.index.find(value);
    if (it != persistent_.index.end()) {
      return StringHandle{it->second, 0};
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto it = persistent_.index.find(value);
  if (it != persistent_.index.end()) {
    return StringHandle{it->second, 0};
  }
  if (current_generation_ == 0) {
    return InternIntoLocked(&persistent_, 0, value);
  }
  // No promotion on a current-generation hit (InternIntoLocked returns
  // the existing handle): see the header comment.
  return InternIntoLocked(rotating_.rbegin()->second.get(),
                          current_generation_, value);
}

ValueId ValuePool::Intern(std::string_view value) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    const auto it = persistent_.index.find(value);
    if (it != persistent_.index.end()) {
      return it->second;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  return InternIntoLocked(&persistent_, 0, value).id;
}

const std::string& ValuePool::Get(ValueId id) const { return Get(id, 0); }

const std::string& ValuePool::Get(ValueId id,
                                  std::uint32_t generation) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const Tier* tier = nullptr;
  if (generation == 0) {
    tier = &persistent_;
  } else {
    const auto it = rotating_.find(generation);
    if (it == rotating_.end()) {
      throw std::out_of_range("ValuePool::Get: generation retired or unknown");
    }
    tier = it->second.get();
  }
  // Deque elements are stable and immutable after insertion, so the
  // reference stays valid after the lock is released (until the handle's
  // generation is retired).
  if (id >= tier->values.size()) {
    throw std::out_of_range("ValuePool::Get: unknown ValueId");
  }
  return tier->values[id];
}

void ValuePool::EnableGenerations() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (current_generation_ != 0) return;
  current_generation_ = 1;
  rotating_.emplace(current_generation_, std::make_unique<Tier>());
}

bool ValuePool::generations_enabled() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return current_generation_ != 0;
}

std::uint32_t ValuePool::current_generation() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return current_generation_;
}

std::uint32_t ValuePool::RotateGeneration() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  ++current_generation_;
  rotating_.emplace(current_generation_, std::make_unique<Tier>());
  return current_generation_;
}

std::size_t ValuePool::RetireGenerationsBelow(std::uint32_t generation) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::size_t freed = 0;
  auto it = rotating_.begin();
  while (it != rotating_.end() && it->first < generation) {
    freed += TierBytesLocked(*it->second);
    it = rotating_.erase(it);
    ++generations_retired_;
  }
  retired_bytes_ += freed;
  return freed;
}

std::uint64_t ValuePool::generations_retired() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return generations_retired_;
}

std::size_t ValuePool::retired_bytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return retired_bytes_;
}

std::size_t ValuePool::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::size_t n = persistent_.values.size();
  for (const auto& entry : rotating_) {
    n += entry.second->values.size();
  }
  return n;
}

std::size_t ValuePool::ApproxBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::size_t bytes = TierBytesLocked(persistent_);
  for (const auto& entry : rotating_) {
    bytes += TierBytesLocked(*entry.second);
  }
  return bytes;
}

ValuePool& ValuePool::Global() {
  static ValuePool* pool = new ValuePool();  // never destroyed: handles in
                                             // static sinks may outlive main
  return *pool;
}

}  // namespace ops
}  // namespace craqr
