#include "ops/partition.h"

#include <sstream>
#include <utility>

namespace craqr {
namespace ops {

Result<std::unique_ptr<PartitionOperator>> PartitionOperator::Make(
    std::string name, std::vector<geom::Rect> regions) {
  if (regions.size() < 2) {
    return Status::InvalidArgument(
        "partition requires at least two output regions");
  }
  for (std::size_t i = 0; i < regions.size(); ++i) {
    if (regions[i].IsEmpty()) {
      return Status::InvalidArgument("partition region " + std::to_string(i) +
                                     " must have positive area");
    }
    for (std::size_t j = i + 1; j < regions.size(); ++j) {
      if (!regions[i].IsDisjoint(regions[j])) {
        std::ostringstream msg;
        msg << "partition regions must be pairwise disjoint; "
            << regions[i].ToString() << " overlaps " << regions[j].ToString();
        return Status::InvalidArgument(msg.str());
      }
    }
  }
  return std::unique_ptr<PartitionOperator>(
      new PartitionOperator(std::move(name), std::move(regions)));
}

Status PartitionOperator::Push(const Tuple& tuple) {
  CountIn();
  for (std::size_t k = 0; k < regions_.size(); ++k) {
    if (regions_[k].Contains(tuple.point.x, tuple.point.y)) {
      if (k >= outputs().size()) {
        // Branch not connected: the tuple's sub-region has no consumer.
        ++unrouted_;
        return Status::OK();
      }
      return EmitTo(k, tuple);
    }
  }
  ++unrouted_;
  return Status::OK();
}

Status PartitionOperator::PushBatch(TupleBatch& batch) {
  const std::size_t active = batch.size();
  CountIn(active);
  if (port_selection_.size() < regions_.size()) {
    port_selection_.resize(regions_.size());
  }
  if (region_masks_.size() < regions_.size()) {
    region_masks_.resize(regions_.size());
  }
  const std::size_t connected = outputs().size();
  // Branch-free containment sweeps over the raw point column — one 0/1
  // byte mask per region (husk rows are masked too; they are never
  // gathered) — then one mask-compact pass per connected port builds the
  // per-port index lists. The ports share the batch's storage through
  // adopted selections: no tuple is moved (or even materialized), and the
  // per-row region-dispatch branch of the scalar path is gone. Regions
  // are pairwise disjoint, so a tuple lands in at most one port list and
  // everything not claimed by a connected port — outside every region, or
  // inside a region whose branch has no consumer — is unrouted.
  const Span<const geom::SpaceTimePoint> points = batch.RawPoints();
  const std::size_t raw_n = batch.raw_size();
  std::size_t routed = 0;
  for (std::size_t k = 0; k < regions_.size(); ++k) {
    if (k >= connected) {
      break;  // trailing regions have no consumer; their tuples stay put
    }
    region_masks_[k].resize(raw_n);
    regions_[k].ContainsMask(points, region_masks_[k].data());
    batch.GatherActiveWhere({region_masks_[k].data(), raw_n},
                            &port_selection_[k]);
    routed += port_selection_[k].size();
  }
  unrouted_ += active - routed;
  // Every routed port is emitted even after a downstream error (first
  // error latched): EmitTo's tuples_out accounting must cover every
  // routed tuple or the kPartition conservation invariant
  // (in == out + unrouted) breaks permanently.
  Status status = Status::OK();
  for (std::size_t k = 0; k < port_selection_.size(); ++k) {
    if (port_selection_[k].empty()) {
      continue;
    }
    batch.AdoptSelection(&port_selection_[k]);
    Status port_status = EmitTo(k, batch);
    if (status.ok() && !port_status.ok()) {
      status = std::move(port_status);
    }
    // Drained unconditionally so no index leaks into the next batch.
    port_selection_[k].clear();
  }
  return status;
}

}  // namespace ops
}  // namespace craqr
