#include "ops/partition.h"

#include <sstream>
#include <utility>

namespace craqr {
namespace ops {

Result<std::unique_ptr<PartitionOperator>> PartitionOperator::Make(
    std::string name, std::vector<geom::Rect> regions) {
  if (regions.size() < 2) {
    return Status::InvalidArgument(
        "partition requires at least two output regions");
  }
  for (std::size_t i = 0; i < regions.size(); ++i) {
    if (regions[i].IsEmpty()) {
      return Status::InvalidArgument("partition region " + std::to_string(i) +
                                     " must have positive area");
    }
    for (std::size_t j = i + 1; j < regions.size(); ++j) {
      if (!regions[i].IsDisjoint(regions[j])) {
        std::ostringstream msg;
        msg << "partition regions must be pairwise disjoint; "
            << regions[i].ToString() << " overlaps " << regions[j].ToString();
        return Status::InvalidArgument(msg.str());
      }
    }
  }
  return std::unique_ptr<PartitionOperator>(
      new PartitionOperator(std::move(name), std::move(regions)));
}

Status PartitionOperator::Push(const Tuple& tuple) {
  CountIn();
  for (std::size_t k = 0; k < regions_.size(); ++k) {
    if (regions_[k].Contains(tuple.point.x, tuple.point.y)) {
      if (k >= outputs().size()) {
        // Branch not connected: the tuple's sub-region has no consumer.
        ++unrouted_;
        return Status::OK();
      }
      return EmitTo(k, tuple);
    }
  }
  ++unrouted_;
  return Status::OK();
}

Status PartitionOperator::PushBatch(TupleBatch& batch) {
  CountIn(batch.size());
  if (port_selection_.size() < regions_.size()) {
    port_selection_.resize(regions_.size());
  }
  const std::size_t connected = outputs().size();
  // One routing pass over the point column builds per-port index lists;
  // the ports then share the batch's storage through adopted selections —
  // no tuple is moved (or even materialized).
  batch.ForEachRaw([this, connected, &batch](std::uint32_t idx) {
    const geom::SpaceTimePoint& p = batch.point_at(idx);
    for (std::size_t k = 0; k < regions_.size(); ++k) {
      if (regions_[k].Contains(p.x, p.y)) {
        if (k >= connected) {
          ++unrouted_;  // branch not connected
        } else {
          port_selection_[k].push_back(idx);
        }
        return;
      }
    }
    ++unrouted_;
  });
  // Every routed port is emitted even after a downstream error (first
  // error latched): EmitTo's tuples_out accounting must cover every
  // routed tuple or the kPartition conservation invariant
  // (in == out + unrouted) breaks permanently.
  Status status = Status::OK();
  for (std::size_t k = 0; k < port_selection_.size(); ++k) {
    if (port_selection_[k].empty()) {
      continue;
    }
    batch.AdoptSelection(&port_selection_[k]);
    Status port_status = EmitTo(k, batch);
    if (status.ok() && !port_status.ok()) {
      status = std::move(port_status);
    }
    // Drained unconditionally so no index leaks into the next batch.
    port_selection_[k].clear();
  }
  return status;
}

}  // namespace ops
}  // namespace craqr
