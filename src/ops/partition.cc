#include "ops/partition.h"

#include <sstream>

namespace craqr {
namespace ops {

Result<std::unique_ptr<PartitionOperator>> PartitionOperator::Make(
    std::string name, std::vector<geom::Rect> regions) {
  if (regions.size() < 2) {
    return Status::InvalidArgument(
        "partition requires at least two output regions");
  }
  for (std::size_t i = 0; i < regions.size(); ++i) {
    if (regions[i].IsEmpty()) {
      return Status::InvalidArgument("partition region " + std::to_string(i) +
                                     " must have positive area");
    }
    for (std::size_t j = i + 1; j < regions.size(); ++j) {
      if (!regions[i].IsDisjoint(regions[j])) {
        std::ostringstream msg;
        msg << "partition regions must be pairwise disjoint; "
            << regions[i].ToString() << " overlaps " << regions[j].ToString();
        return Status::InvalidArgument(msg.str());
      }
    }
  }
  return std::unique_ptr<PartitionOperator>(
      new PartitionOperator(std::move(name), std::move(regions)));
}

Status PartitionOperator::Push(const Tuple& tuple) {
  CountIn();
  for (std::size_t k = 0; k < regions_.size(); ++k) {
    if (regions_[k].Contains(tuple.point.x, tuple.point.y)) {
      if (k >= outputs().size()) {
        // Branch not connected: the tuple's sub-region has no consumer.
        ++unrouted_;
        return Status::OK();
      }
      return EmitTo(k, tuple);
    }
  }
  ++unrouted_;
  return Status::OK();
}

}  // namespace ops
}  // namespace craqr
