#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

/// \file value_pool.h
/// \brief Thread-safe generational string interning for columnar tuple
/// payloads.
///
/// The columnar tuple layout stores every string-valued observation as a
/// compact handle into a ValuePool instead of an inline `std::string`; the
/// 12-byte tagged `PayloadRef` (see tuple.h) carries the handle as a
/// (generation, id) pair. Pool semantics:
///
///  - **two tiers**: generation 0 is the *persistent* tier — append-only,
///    never retired, exactly the pre-generational pool. When generations
///    are enabled (EnableGenerations / the memory governor), new strings
///    land in the *current rotating generation* instead; a string seen a
///    second time within its generation is **promoted** into the
///    persistent tier (categorical payloads like "rain" cost at most two
///    allocations ever), while one-shot unique strings stay in their
///    rotating generation and are reclaimed wholesale when the runtime
///    retires it (RetireGenerationsBelow) at an epoch barrier.
///  - **deduplicating**: Intern()/InternHandle() return the existing
///    handle for an already-seen string within the tiers they search
///    (persistent always; plus the current generation when enabled), so
///    equal handles imply equal strings. Two handles for the *same* string
///    may differ across generations (pre- vs post-promotion); the data
///    plane never relies on the converse.
///  - **lifetime**: a `const std::string&` returned by Get() — and the
///    handle itself — stays valid until the handle's generation is
///    retired; persistent-tier handles (generation 0) are valid for the
///    pool's lifetime. With generations disabled (the default) every
///    handle is persistent and the pre-generational lifetime rules hold
///    unchanged. Retirement safety is the runtime's job: it re-interns
///    every long-lived holder (operator buffers, spools, replay logs —
///    see Operator::ReinternStrings) at a full epoch barrier before
///    retiring the generations below the current one.
///  - **thread-safe**: interning takes a writer lock only on first sight
///    of a string; lookups and Get() take reader locks. Rotation and
///    retirement take the writer lock.
///
/// Production code uses the process-wide `ValuePool::Global()` pool by
/// default; embedders that want isolated lifetimes (or bounded-memory
/// governance without process-wide effects) pass an instance pool through
/// `FabricConfig::value_pool` (reachable as `EngineConfig::fabric` /
/// `ShardedConfig::fabric`).

namespace craqr {
namespace ops {

/// Handle of an interned string value (index into one tier of its
/// ValuePool).
using ValueId = std::uint32_t;

/// \brief A (generation, id) string handle. Generation 0 is the
/// persistent tier; rotating generations start at 1.
struct StringHandle {
  ValueId id = 0;
  std::uint32_t generation = 0;
};

/// \brief Generational deduplicating string pool (see file comment).
class ValuePool {
 public:
  ValuePool() = default;

  ValuePool(const ValuePool&) = delete;
  ValuePool& operator=(const ValuePool&) = delete;

  /// Returns the (generation, id) handle of `value`, interning it on
  /// first sight — into the persistent tier when generations are
  /// disabled, into the current rotating generation otherwise (with
  /// promotion to persistent on the second sight within a generation).
  /// Thread-safe.
  StringHandle InternHandle(std::string_view value);

  /// Evacuation intern used by Operator::ReinternStrings before a
  /// generation retirement: like InternHandle but a current-generation
  /// hit NEVER promotes — re-interning is lifetime bookkeeping, not a
  /// popularity signal, and promoting here would leak every string held
  /// by two live buffers (e.g. a tuple delivered to two overlapping
  /// queries' sinks) into the never-retired persistent tier.
  StringHandle ReinternHandle(std::string_view value);

  /// Back-compat persistent intern: always lands `value` in the
  /// persistent tier (generation 0), regardless of generational mode, so
  /// the returned ValueId follows the pre-generational lifetime rules.
  ValueId Intern(std::string_view value);

  /// The interned string for a persistent-tier id (back-compat overload).
  /// Throws std::out_of_range on an id not handed out by this pool.
  const std::string& Get(ValueId id) const;

  /// The interned string for a (generation, id) handle. The reference is
  /// stable until the handle's generation is retired (forever for
  /// generation 0). Throws std::out_of_range for an unknown id or a
  /// retired generation — a handle/pool mix-up or a missed re-intern is a
  /// programming error.
  const std::string& Get(ValueId id, std::uint32_t generation) const;

  /// \name Generational lifecycle (memory governance)
  ///@{
  /// Switches the pool into generational mode: subsequent first-sight
  /// interns land in rotating generation 1 (or the current one if already
  /// enabled). Idempotent. Enabling the process-wide Global() pool is
  /// legal but affects every producer in the process — bounded-memory
  /// embedders normally enable an instance pool instead.
  void EnableGenerations();

  /// True once EnableGenerations() has been called.
  bool generations_enabled() const;

  /// The current rotating generation (0 while generations are disabled).
  std::uint32_t current_generation() const;

  /// Opens the next rotating generation and makes it current; new strings
  /// intern there. Enables generational mode if not already enabled.
  /// Returns the new current generation.
  std::uint32_t RotateGeneration();

  /// Frees every rotating generation strictly below `generation` (the
  /// persistent tier never retires). All handles into the freed
  /// generations become invalid — the caller must have re-interned every
  /// still-live holder first (see file comment). Returns the approximate
  /// bytes reclaimed.
  std::size_t RetireGenerationsBelow(std::uint32_t generation);

  /// Generations retired so far (monotone).
  std::uint64_t generations_retired() const;

  /// Approximate bytes reclaimed by retirement so far (monotone).
  std::size_t retired_bytes() const;
  ///@}

  /// Number of distinct strings interned across all live tiers.
  std::size_t size() const;

  /// \brief Approximate heap footprint of the pool: interned string
  /// storage (capacity + control block) plus the dedup index's node and
  /// bucket-array overhead and the deque block overhead — the governor's
  /// budget-accounting input, sized to track real RSS contribution rather
  /// than just payload bytes.
  std::size_t ApproxBytes() const;

  /// The process-wide pool used by default for every tuple payload.
  static ValuePool& Global();

 private:
  /// One interning tier: append-only within its lifetime.
  struct Tier {
    /// Deque, not vector: growth never relocates elements, so Get() can
    /// return references without copy and index keys (views into the
    /// stored strings) never dangle.
    std::deque<std::string> values;
    std::unordered_map<std::string_view, ValueId> index;
    /// Payload bytes: sum of capacity + sizeof(std::string) per entry.
    std::size_t string_bytes = 0;
  };

  /// Per-index-entry overhead of the unordered_map node (pointer + cached
  /// hash + the key/value pair) — the part of the footprint the
  /// pre-generational ApproxBytes undercounted.
  static constexpr std::size_t kIndexNodeBytes =
      sizeof(void*) + sizeof(std::size_t) +
      sizeof(std::pair<std::string_view, ValueId>);

  /// Approximate heap footprint of one tier (strings + index nodes +
  /// bucket array + deque block overhead). Caller holds mu_.
  static std::size_t TierBytesLocked(const Tier& tier);

  StringHandle InternIntoLocked(Tier* tier, std::uint32_t generation,
                                std::string_view value);

  mutable std::shared_mutex mu_;
  /// Generation 0 — never retired.
  Tier persistent_;
  /// Live rotating generations, keyed by generation number (>= 1),
  /// ascending. Only the highest (current) one accepts new interns.
  std::map<std::uint32_t, std::unique_ptr<Tier>> rotating_;
  /// 0 while generations are disabled; otherwise the current rotating
  /// generation number.
  std::uint32_t current_generation_ = 0;
  std::uint64_t generations_retired_ = 0;
  std::size_t retired_bytes_ = 0;
};

}  // namespace ops
}  // namespace craqr
