#pragma once

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

/// \file value_pool.h
/// \brief Thread-safe string interning for columnar tuple payloads.
///
/// The columnar tuple layout stores every string-valued observation as a
/// 32-bit `ValueId` handle into a ValuePool instead of an inline
/// `std::string`; the 12-byte tagged `PayloadRef` (see tuple.h) carries the
/// handle. Pool semantics:
///
///  - **append-only**: interned strings are never mutated, moved or freed,
///    so a `const std::string&` returned by Get() — and any ValueId — stays
///    valid for the pool's lifetime. Handles therefore cross threads
///    freely: a tuple produced on the world thread can be read on a shard
///    worker and delivered on the collector with no lifetime protocol.
///  - **deduplicating**: Intern() returns the existing id for an
///    already-seen string, so categorical payloads ("rain", "heavy") cost
///    one allocation ever and equal ids imply equal strings *within one
///    pool*. Free-form text grows the pool monotonically; embedders
///    streaming unbounded unique strings should monitor ApproxBytes().
///  - **thread-safe**: Intern() takes a writer lock only on first sight of
///    a string; lookups and Get() take reader locks.
///
/// Production code uses the process-wide `ValuePool::Global()` pool —
/// owned by the batch/fabricator layer in the sense that tuple producers
/// (the crowd world, trace replay) intern on entry and every layer below
/// moves 12-byte handles. Instance pools exist for tests and for embedders
/// that want isolated lifetimes.

namespace craqr {
namespace ops {

/// Handle of an interned string value (index into its ValuePool).
using ValueId = std::uint32_t;

/// \brief Append-only deduplicating string pool (see file comment).
class ValuePool {
 public:
  ValuePool() = default;

  ValuePool(const ValuePool&) = delete;
  ValuePool& operator=(const ValuePool&) = delete;

  /// Returns the id of `value`, interning it on first sight. Thread-safe.
  ValueId Intern(std::string_view value);

  /// The interned string for `id`. The reference is stable for the pool's
  /// lifetime (append-only storage). Throws std::out_of_range on an id not
  /// handed out by this pool — a handle/pool mix-up is a programming error.
  const std::string& Get(ValueId id) const;

  /// Number of distinct strings interned.
  std::size_t size() const;

  /// Approximate heap footprint of the interned strings (monitoring hook
  /// for unbounded free-form payloads).
  std::size_t ApproxBytes() const;

  /// The process-wide pool used by default for every tuple payload.
  static ValuePool& Global();

 private:
  mutable std::shared_mutex mu_;
  /// Deque, not vector: growth never relocates elements, so Get() can
  /// return references without copy and index_ keys (views into the
  /// stored strings) never dangle.
  std::deque<std::string> values_;
  std::unordered_map<std::string_view, ValueId> index_;
  std::size_t bytes_ = 0;
};

}  // namespace ops
}  // namespace craqr
