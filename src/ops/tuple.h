#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <variant>

#include "geometry/point.h"
#include "ops/value_pool.h"

/// \file tuple.h
/// \brief The crowdsensed tuple model (paper Section II), columnar edition.
///
/// A tuple of attribute A<j> is `(t, x, y, a)` where the first three entries
/// are space-time coordinates and `a` is the attribute value; `id` is a
/// unique tuple identifier across sensors.
///
/// The value payload is a compact tagged `PayloadRef`: bool/int64/double
/// inline, strings as `ValueId` handles into a `ValuePool` (see
/// value_pool.h). This keeps `Tuple` a 56-byte trivially-copyable exchange
/// struct — down from ~90 bytes when the value was a
/// `std::variant<..., std::string>` — so every remaining tuple move
/// (Flatten buffers, Sink storage, shard outboxes, broadcasts) is a small
/// flat copy, and `ops::TupleBatch` can store tuples as struct-of-arrays
/// columns. The `AttributeValue` variant survives as the rich boundary
/// type (phenomenon fields, trace parsing, debug rendering) with explicit
/// bridges in both directions.

namespace craqr {
namespace ops {

/// Identifier of a registered attribute A<j>.
using AttributeId = std::uint32_t;

/// \brief The boundary representation of a tuple's value payload.
///
/// Boolean for human-sensed yes/no attributes (e.g. `rain`), double for
/// sensor-sensed measurements (e.g. `temp`), int64 for counts, string for
/// free-form human responses; monostate for coordinate-only tuples. Used
/// where values are produced or serialized; inside the data plane values
/// travel as `PayloadRef`.
using AttributeValue =
    std::variant<std::monostate, bool, std::int64_t, double, std::string>;

/// Renders an AttributeValue for logs and debug output.
std::string AttributeValueToString(const AttributeValue& value);

/// \brief Discriminates the payload kinds a PayloadRef can carry. The
/// numeric values match the corresponding AttributeValue variant index.
enum class PayloadKind : std::uint32_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
};

/// \brief Compact tagged value payload: 8 payload bytes + a 4-byte tag.
///
/// bool/int64/double are stored inline (doubles and int64s by bit
/// pattern); strings are (generation, id) `StringHandle`s interned in a
/// ValuePool — by default the process-wide `ValuePool::Global()`. The
/// generation rides in the hi 4 payload bytes (unused by string handles
/// before the generational pool) and is 0 for persistent-tier strings, so
/// with generations disabled the layout and every stored bit are identical
/// to the pre-generational encoding. Handles are freely copyable across
/// threads and shards; a handle into a rotating generation is valid until
/// the runtime retires that generation (see value_pool.h). The payload
/// bytes are split into two 4-byte halves so the struct is 4-byte aligned
/// and `Tuple` packs to 56 bytes.
///
/// Equality is bitwise (tag + payload). For strings interned in the same
/// pool, deduplication makes handle equality imply string equality; the
/// converse can fail across generations (pre- vs post-promotion copies),
/// and comparing handles from different pools is meaningless — don't.
class PayloadRef {
 public:
  /// Null payload (coordinate-only tuple).
  constexpr PayloadRef() = default;

  /// Implicit bridge from the boundary variant; string values intern into
  /// the global pool. Convenience for producers and tests — hot paths use
  /// the typed factories below.
  PayloadRef(const AttributeValue& value);  // NOLINT(runtime/explicit)

  static constexpr PayloadRef Null() { return PayloadRef(); }

  static PayloadRef Bool(bool v) {
    PayloadRef r;
    r.kind_ = PayloadKind::kBool;
    r.lo_ = v ? 1u : 0u;
    return r;
  }

  static PayloadRef Int64(std::int64_t v) {
    PayloadRef r;
    r.kind_ = PayloadKind::kInt64;
    r.SetBits(static_cast<std::uint64_t>(v));
    return r;
  }

  static PayloadRef Double(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    PayloadRef r;
    r.kind_ = PayloadKind::kDouble;
    r.SetBits(bits);
    return r;
  }

  /// Interns `v` (deduplicating) and returns the handle payload. With
  /// generations disabled on `pool` the handle is persistent (generation
  /// 0); otherwise it may land in the current rotating generation.
  static PayloadRef String(std::string_view v,
                           ValuePool& pool = ValuePool::Global()) {
    return InternedString(pool.InternHandle(v));
  }

  /// Wraps an already-interned persistent-tier id (generation 0).
  static PayloadRef InternedString(ValueId id) {
    PayloadRef r;
    r.kind_ = PayloadKind::kString;
    r.lo_ = id;
    return r;
  }

  /// Wraps an already-interned (generation, id) handle.
  static PayloadRef InternedString(StringHandle handle) {
    PayloadRef r;
    r.kind_ = PayloadKind::kString;
    r.lo_ = handle.id;
    r.hi_ = handle.generation;
    return r;
  }

  PayloadKind kind() const { return kind_; }
  bool is_null() const { return kind_ == PayloadKind::kNull; }

  /// \name Typed accessors
  /// Valid only for the matching kind() (unchecked: misuse reads the raw
  /// payload bits of another kind).
  ///@{
  bool AsBool() const { return lo_ != 0; }
  std::int64_t AsInt64() const { return static_cast<std::int64_t>(Bits()); }
  double AsDouble() const {
    const std::uint64_t bits = Bits();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  ValueId string_id() const { return lo_; }
  std::uint32_t string_generation() const { return hi_; }
  StringHandle string_handle() const { return StringHandle{lo_, hi_}; }
  const std::string& AsString(const ValuePool& pool = ValuePool::Global()) const {
    return pool.Get(lo_, hi_);
  }
  ///@}

  friend bool operator==(const PayloadRef& a, const PayloadRef& b) {
    return a.kind_ == b.kind_ && a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }
  friend bool operator!=(const PayloadRef& a, const PayloadRef& b) {
    return !(a == b);
  }

 private:
  std::uint64_t Bits() const {
    return (static_cast<std::uint64_t>(hi_) << 32) | lo_;
  }
  void SetBits(std::uint64_t bits) {
    lo_ = static_cast<std::uint32_t>(bits);
    hi_ = static_cast<std::uint32_t>(bits >> 32);
  }

  std::uint32_t lo_ = 0;
  std::uint32_t hi_ = 0;
  PayloadKind kind_ = PayloadKind::kNull;
};

static_assert(sizeof(PayloadRef) == 12 && alignof(PayloadRef) == 4,
              "PayloadRef must stay a 12-byte 4-byte-aligned tagged value "
              "so Tuple packs to 56 bytes");
static_assert(std::is_trivially_copyable<PayloadRef>::value,
              "PayloadRef must be a flat copyable value");

/// Converts a boundary variant into a payload, interning strings in `pool`.
PayloadRef MakePayload(const AttributeValue& value,
                       ValuePool& pool = ValuePool::Global());

/// Materializes a payload back into the boundary variant (string copy).
AttributeValue ToAttributeValue(const PayloadRef& value,
                                const ValuePool& pool = ValuePool::Global());

/// Renders a payload for logs and debug output (same format as
/// AttributeValueToString).
std::string PayloadToString(const PayloadRef& value,
                            const ValuePool& pool = ValuePool::Global());

/// \brief One crowdsensed observation flowing through PMAT operators — the
/// materialized exchange struct of the columnar data plane (TupleBatch
/// stores the same five fields as struct-of-arrays columns).
struct Tuple {
  /// Unique tuple identifier across sensors.
  std::uint64_t id = 0;
  /// Space-time coordinates (t in minutes, x/y in km).
  geom::SpaceTimePoint point;
  /// Identifier of the mobile sensor that produced the tuple.
  std::uint64_t sensor_id = 0;
  /// Which attribute A<j> this tuple observes.
  AttributeId attribute = 0;
  /// Observed value (compact payload; strings live in the ValuePool).
  PayloadRef value;
};

static_assert(sizeof(Tuple) <= 56,
              "Tuple is the per-tuple exchange struct; the columnar "
              "refactor budgets it at 56 bytes (down from ~90 with the "
              "variant payload)");
static_assert(std::is_trivially_copyable<Tuple>::value,
              "Tuple moves must be flat copies (no heap parts)");

}  // namespace ops
}  // namespace craqr
