#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "geometry/point.h"

/// \file tuple.h
/// \brief The crowdsensed tuple model (paper Section II).
///
/// A tuple of attribute A<j> is `(t, x, y, a)` where the first three entries
/// are space-time coordinates and `a` is the attribute value; `id` is a
/// unique tuple identifier across sensors.

namespace craqr {
namespace ops {

/// Identifier of a registered attribute A<j>.
using AttributeId = std::uint32_t;

/// \brief The value payload of a crowdsensed tuple.
///
/// Boolean for human-sensed yes/no attributes (e.g. `rain`), double for
/// sensor-sensed measurements (e.g. `temp`), int64 for counts, string for
/// free-form human responses; monostate for coordinate-only tuples.
using AttributeValue =
    std::variant<std::monostate, bool, std::int64_t, double, std::string>;

/// Renders an AttributeValue for logs and debug output.
std::string AttributeValueToString(const AttributeValue& value);

/// \brief One crowdsensed observation flowing through PMAT operators.
struct Tuple {
  /// Unique tuple identifier across sensors.
  std::uint64_t id = 0;
  /// Which attribute A<j> this tuple observes.
  AttributeId attribute = 0;
  /// Space-time coordinates (t in minutes, x/y in km).
  geom::SpaceTimePoint point;
  /// Observed value.
  AttributeValue value;
  /// Identifier of the mobile sensor that produced the tuple.
  std::uint64_t sensor_id = 0;
};

}  // namespace ops
}  // namespace craqr
