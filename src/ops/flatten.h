#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "geometry/rect.h"
#include "ops/operator.h"
#include "ops/state_serde.h"
#include "pointprocess/estimate.h"

/// \file flatten.h
/// \brief The F (Flatten) PMAT operator (paper Section IV-B-1, Eq. 3).
///
/// Flatten converts a single-attribute *inhomogeneous* MDPP
/// P~(lambda~, R*) into an approximately *homogeneous* process
/// P(lambda-bar, R*): it estimates the conditional rate lambda~(t,x,y;theta)
/// from the incoming tuples (batch MLE, or online SGD over sliding
/// windows), then retains each tuple i with the paper's retaining
/// probability
///
///   p_i = lambda-bar / (lambda~(p_i; theta) * lambda_c),
///   lambda_c = sum_i 1 / lambda~(p_i; theta),
///
/// so that more tuples survive in areas of low rate and fewer in areas of
/// high rate. Tuples whose retaining probability exceeds 1 are *rate
/// violations*: their probability is rounded down to 1 and the operator
/// reports the percent rate violation N_v of the batch, which the
/// request/response handler uses to tune its acquisition budget
/// (paper Section V "Budget Tuning").

namespace craqr {
namespace ops {

/// \brief How FlattenConfig::target_rate is interpreted.
enum class FlattenTargetMode {
  /// `target_rate` is lambda-bar as an expected *count of retained tuples
  /// per batch* — the literal reading of Eq. (3), whose retaining
  /// probabilities sum to lambda-bar.
  kCountPerBatch,
  /// `target_rate` is a rate per unit volume (tuples/km^2/min); each batch
  /// converts it to an expected count via `rate * Volume(batch window)`.
  /// This is the mode used for acquisitional queries.
  kRatePerVolume,
};

/// \brief Estimation strategy of the F operator.
enum class FlattenMode {
  /// Buffer `batch_size` tuples, fit theta by exact MLE, flatten the batch
  /// (the paper's primary formulation).
  kBatch,
  /// Per-tuple online SGD estimation over a sliding window (the paper's
  /// "the flattening operation can also be performed over sliding windows
  /// ... using online parameter estimation algorithms like stochastic
  /// gradient descent").
  kOnline,
};

/// \brief Configuration of a Flatten operator.
struct FlattenConfig {
  /// The operator's region R*.
  geom::Rect region;
  /// Desired output rate lambda-bar; see `target_mode`.
  double target_rate = 1.0;
  /// Interpretation of `target_rate`.
  FlattenTargetMode target_mode = FlattenTargetMode::kRatePerVolume;
  /// Batch vs online estimation.
  FlattenMode mode = FlattenMode::kBatch;
  /// Batch size n (kBatch mode).
  std::size_t batch_size = 256;
  /// Batches smaller than this skip the MLE and use the homogeneous
  /// estimate (uniform retaining probability target/n). Four-parameter
  /// estimation on a handful of points is noise; the noise inflates some
  /// p_i beyond 1 where they clamp, silently biasing the delivered rate
  /// low. Below this size Flatten degrades gracefully to plain thinning.
  std::size_t min_batch_for_estimation = 8;
  /// Intensity lower clamp used in retaining probabilities.
  double min_rate = 1e-9;
  /// Sliding-window length for online violation tracking (kOnline mode).
  std::size_t violation_window = 512;
  /// Tuples consumed before the online estimate is trusted (kOnline mode);
  /// tuples during warm-up are forwarded unthinned.
  std::size_t online_warmup = 32;
  /// Online estimator step-size schedule (kOnline mode).
  pp::SgdOptions sgd;
};

/// \brief Per-batch diagnostics reported by the F operator.
struct FlattenBatchReport {
  /// \brief Simulation time (minutes) at which the batch completed: the
  /// latest tuple time the batch covers (its completing tuple's time, for
  /// the time-monotone streams the handler produces). Lets feedback
  /// consumers replay reports from many cells — or many shards — in one
  /// canonical time order (see StreamFabricator / ShardedFabricator).
  double completed_at = 0.0;
  /// Batch size n.
  std::size_t n = 0;
  /// Number of tuples with retaining probability > 1.
  std::size_t violations = 0;
  /// Percent rate violation N_v in [0, 100].
  double violation_percent = 0.0;
  /// Estimated theta of Eq. (1) for this batch.
  std::array<double, 4> theta{};
  /// The batch normalising constant lambda_c.
  double lambda_c = 0.0;
  /// Expected retained count (lambda-bar expressed as a count).
  double target_count = 0.0;
  /// Tuples actually forwarded downstream.
  std::size_t retained = 0;
};

/// \brief The Flatten operator.
class FlattenOperator final : public Operator {
 public:
  /// Invoked after every processed batch (kBatch) or every
  /// `violation_window` tuples (kOnline) with fresh diagnostics; wired to
  /// the budget tuner by the fabricator.
  using ReportCallback = std::function<void(const FlattenBatchReport&)>;

  /// Validating factory. Requires a region with positive area, a positive
  /// target rate, batch_size >= 2 in batch mode, and kRatePerVolume in
  /// online mode (a per-batch count is meaningless without batches).
  static Result<std::unique_ptr<FlattenOperator>> Make(std::string name,
                                                       const FlattenConfig& config,
                                                       Rng rng);

  Status Push(const Tuple& tuple) override;

  /// Batch-native: accumulates the incoming batch into the estimation
  /// buffer with exactly the per-tuple firing boundaries (kBatch), or
  /// runs one estimator/RNG sweep deselecting dropped tuples (kOnline).
  /// Retained tuples leave as whole (selected) batches without being
  /// moved; discarded tuples reach the side output as one batch per
  /// firing.
  Status PushBatch(TupleBatch& batch) override;

  /// Processes any buffered partial batch (kBatch mode).
  Status Flush() override;

  OperatorKind kind() const override { return OperatorKind::kFlatten; }

  /// The operator's region R*.
  const geom::Rect& region() const { return config_.region; }

  /// Current target rate lambda-bar.
  double target_rate() const { return config_.target_rate; }

  /// \brief Raises or lowers the output rate; used by the fabricator when
  /// query insertion requires "the output rate of the F-operator [to be]
  /// changed to a value greater than the output rate of the first
  /// T-operator" (paper Section V rule 3).
  Status SetTargetRate(double target_rate);

  /// N_v of the most recent batch / window, in percent.
  double last_violation_percent() const { return last_report_.violation_percent; }

  /// Full diagnostics of the most recent batch / window.
  const FlattenBatchReport& last_report() const { return last_report_; }

  /// Running history of per-batch N_v values.
  const RunningStats& violation_history() const { return violation_history_; }

  /// Registers the diagnostics callback (at most one).
  void SetReportCallback(ReportCallback callback) {
    report_callback_ = std::move(callback);
  }

  /// \brief Optional side output for discarded tuples ("if necessary, the
  /// discarded tuples can be stored separately").
  void SetDiscardedOutput(Operator* discarded) { discarded_ = discarded; }

  /// \name Checkpoint support
  /// Serializes every mutable field — the current target rate, the RNG
  /// phase, the estimation buffer, the time-coverage cursor, the online
  /// estimator (domain + parameters), the violation window and counters —
  /// so a restored operator resumes mid-batch/mid-window byte-exactly.
  /// RestoreState must be applied to an operator built by Make with the
  /// same configuration (the region, mode and sizes are construction
  /// inputs re-supplied by the checkpoint's topology record).
  ///@{
  void SaveState(StateWriter& w) const;
  Status RestoreState(StateReader& r);
  ///@}

  /// Evacuates the estimation buffer's string payloads before pool
  /// generation retirement (memory governor) — the F buffer is the one
  /// cell-topology store that spans epochs mid-batch.
  void ReinternStrings(ValuePool& pool) override {
    buffer_.ReinternStrings(pool);
  }

 private:
  FlattenOperator(std::string name, const FlattenConfig& config, Rng rng);

  Status ProcessBufferedBatch();
  Status PushOnline(const Tuple& tuple);
  Status PushOnlineBatch(TupleBatch& batch);
  /// Advances the online estimator with one observation point (warm-up,
  /// window report, retention draw) and returns whether the tuple is
  /// retained. Shared by the per-tuple and batch paths so both draw
  /// identically; takes only the point — the estimator never touches the
  /// other columns.
  Result<bool> OnlineStep(const geom::SpaceTimePoint& point);
  Status Discard(const Tuple& tuple);
  void PublishReport(const FlattenBatchReport& report);

  FlattenConfig config_;
  Rng rng_;
  /// Estimation buffer; always plain (built by appends), so the MLE fit
  /// reads its point column as a zero-copy span. After a firing's retain
  /// sweep it IS the retained batch (selection active) and leaves through
  /// Emit without any moves.
  TupleBatch buffer_;
  /// Recycled per-firing scratch: discarded tuples (when a side output is
  /// connected) and the per-tuple rate column of the estimation batch.
  TupleBatch discard_scratch_;
  std::vector<double> rates_scratch_;
  /// Recycled clamped per-row retention probabilities and Bernoulli mask
  /// of the vectorized batch sweep.
  std::vector<double> probs_scratch_;
  std::vector<std::uint8_t> mask_scratch_;
  /// Start of the next batch's time coverage: batches are priced over the
  /// full elapsed interval since the previous batch (quiet gaps included),
  /// not just the tuple span — otherwise a starved stream reports a
  /// near-zero window volume, the target count collapses and N_v can never
  /// signal under-supply to the budget tuner.
  double coverage_start_ = std::numeric_limits<double>::quiet_NaN();
  std::optional<pp::SgdEstimator> sgd_;
  SlidingWindow online_probs_;
  std::size_t online_seen_ = 0;
  FlattenBatchReport last_report_;
  RunningStats violation_history_;
  ReportCallback report_callback_;
  Operator* discarded_ = nullptr;
};

}  // namespace ops
}  // namespace craqr
