#include "ops/tuple.h"

#include <sstream>

namespace craqr {
namespace ops {

std::string AttributeValueToString(const AttributeValue& value) {
  std::ostringstream os;
  std::visit(
      [&os](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          os << "null";
        } else if constexpr (std::is_same_v<T, bool>) {
          os << (v ? "true" : "false");
        } else if constexpr (std::is_same_v<T, std::string>) {
          os << '"' << v << '"';
        } else {
          os << v;
        }
      },
      value);
  return os.str();
}

}  // namespace ops
}  // namespace craqr
