#include "ops/tuple.h"

#include <sstream>

namespace craqr {
namespace ops {

std::string AttributeValueToString(const AttributeValue& value) {
  std::ostringstream os;
  std::visit(
      [&os](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          os << "null";
        } else if constexpr (std::is_same_v<T, bool>) {
          os << (v ? "true" : "false");
        } else if constexpr (std::is_same_v<T, std::string>) {
          os << '"' << v << '"';
        } else {
          os << v;
        }
      },
      value);
  return os.str();
}

PayloadRef::PayloadRef(const AttributeValue& value) {
  *this = MakePayload(value);
}

PayloadRef MakePayload(const AttributeValue& value, ValuePool& pool) {
  switch (value.index()) {
    case 0:
      return PayloadRef::Null();
    case 1:
      return PayloadRef::Bool(std::get<bool>(value));
    case 2:
      return PayloadRef::Int64(std::get<std::int64_t>(value));
    case 3:
      return PayloadRef::Double(std::get<double>(value));
    case 4:
      return PayloadRef::String(std::get<std::string>(value), pool);
  }
  return PayloadRef::Null();
}

AttributeValue ToAttributeValue(const PayloadRef& value,
                                const ValuePool& pool) {
  switch (value.kind()) {
    case PayloadKind::kNull:
      return AttributeValue{};
    case PayloadKind::kBool:
      return AttributeValue{value.AsBool()};
    case PayloadKind::kInt64:
      return AttributeValue{value.AsInt64()};
    case PayloadKind::kDouble:
      return AttributeValue{value.AsDouble()};
    case PayloadKind::kString:
      return AttributeValue{value.AsString(pool)};
  }
  return AttributeValue{};
}

std::string PayloadToString(const PayloadRef& value, const ValuePool& pool) {
  switch (value.kind()) {
    case PayloadKind::kNull:
      return "null";
    case PayloadKind::kBool:
      return value.AsBool() ? "true" : "false";
    case PayloadKind::kInt64:
      return std::to_string(value.AsInt64());
    case PayloadKind::kDouble: {
      std::ostringstream os;
      os << value.AsDouble();
      return os.str();
    }
    case PayloadKind::kString:
      return '"' + value.AsString(pool) + '"';
  }
  return "null";
}

}  // namespace ops
}  // namespace craqr
