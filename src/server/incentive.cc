#include "server/incentive.h"

#include <algorithm>

namespace craqr {
namespace server {

Result<IncentiveController> IncentiveController::Make(
    const IncentiveConfig& config) {
  if (!(config.min <= config.initial) || !(config.initial <= config.max)) {
    return Status::InvalidArgument(
        "incentive config requires min <= initial <= max");
  }
  if (!(config.raise_step > 0.0)) {
    return Status::InvalidArgument("incentive raise step must be > 0");
  }
  if (!(config.decay_factor > 0.0) || !(config.decay_factor <= 1.0)) {
    return Status::InvalidArgument("decay factor must be in (0, 1]");
  }
  if (!(config.violation_threshold >= 0.0) ||
      !(config.violation_threshold <= 100.0)) {
    return Status::InvalidArgument(
        "violation threshold must be a percentage in [0, 100]");
  }
  return IncentiveController(config);
}

double IncentiveController::GetIncentive(ops::AttributeId attribute) const {
  const auto it = incentives_.find(attribute);
  return it == incentives_.end() ? config_.initial : it->second;
}

double IncentiveController::Update(ops::AttributeId attribute,
                                   double violation_percent,
                                   bool budget_saturated) {
  double incentive = GetIncentive(attribute);
  if (violation_percent > config_.violation_threshold) {
    if (budget_saturated) {
      const double raised =
          std::min(incentive + config_.raise_step, config_.max);
      if (raised > incentive) {
        ++raises_;
      }
      incentive = raised;
    }
    // Budget not yet saturated: let budget tuning do its job first.
  } else {
    incentive = std::max(incentive * config_.decay_factor, config_.min);
  }
  incentives_[attribute] = incentive;
  return incentive;
}

}  // namespace server
}  // namespace craqr
