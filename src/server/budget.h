#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/result.h"
#include "geometry/grid.h"
#include "ops/tuple.h"

/// \file budget.h
/// \brief Per-attribute, per-cell acquisition budgets and the N_v-driven
/// tuning rule (paper Sections IV-A and V).
///
/// "Budget is defined as the number of acquisitional requests per attribute
/// and per grid cell that can be sent in a given duration of time. ... The
/// budget specification does not need a spatial component, as all the grid
/// cells are of equal size."  Tuning: "If N_v exceeds the threshold, then
/// the budget beta<j>_(q,r) is increased by Delta-beta, otherwise it is
/// decreased by the same amount. If the budget cannot be increased beyond a
/// limit, then the user is requested to either accept the feasible rate or
/// pay more to obtain the required rate."

namespace craqr {
namespace server {

/// \brief Identifies one budget beta<j>_(q,r).
struct BudgetKey {
  ops::AttributeId attribute = 0;
  geom::CellIndex cell;

  bool operator==(const BudgetKey& o) const {
    return attribute == o.attribute && cell == o.cell;
  }
};

/// \brief Hash for BudgetKey.
struct BudgetKeyHash {
  std::size_t operator()(const BudgetKey& key) const {
    const std::size_t h1 = std::hash<std::uint64_t>{}(key.attribute);
    const std::size_t h2 = geom::CellIndexHash{}(key.cell);
    return h1 ^ (h2 + 0x9E3779B97F4A7C15ULL + (h1 << 6) + (h1 >> 2));
  }
};

/// \brief Budget-tuning parameters.
struct BudgetConfig {
  /// Starting budget (requests per cell per dispatch round).
  double initial = 16.0;
  /// Delta-beta: the tuning step.
  double delta = 4.0;
  /// Floor (never stop asking entirely while subscribed).
  double min = 1.0;
  /// Ceiling; reaching it triggers the infeasibility callback.
  double max = 512.0;
  /// N_v threshold (percent) above which the budget is raised.
  double violation_threshold = 5.0;
  /// Hysteresis: the budget is only lowered when N_v falls below this
  /// (percent); between the two thresholds it holds. The paper's rule is
  /// symmetric ("otherwise it is decreased by the same amount"), which
  /// makes the loop oscillate right at the violation threshold and
  /// under-deliver by the violation mass; a small dead band keeps the
  /// equilibrium budget just above the required supply. Set equal to
  /// violation_threshold for the paper-literal rule.
  double decrease_threshold = 1.0;
  /// Minimum supply margin (batch size / target count) required before a
  /// decrease is applied. Near the supply edge, estimation noise on small
  /// batches clamps many retaining probabilities at 1 and silently eats
  /// delivered rate even while N_v looks healthy; requiring a ~2x margin
  /// keeps the equilibrium in the regime where Eq. (3) is unbiased. Set
  /// to 0 to disable (paper-literal behaviour).
  double decrease_supply_ratio = 2.0;
  /// Number of consecutive decrease-eligible batches required before a
  /// decrease is applied (increases always apply immediately). Per-batch
  /// N_v on small batches is nearly Bernoulli noise; symmetric reactions
  /// make the budget random-walk below the required supply. Patience makes
  /// decreases deliberate while starvation is still corrected instantly.
  /// Set to 1 for the paper-literal (memoryless) rule.
  std::uint32_t decrease_patience = 6;
};

/// \brief Tracks and tunes acquisition budgets.
class BudgetManager {
 public:
  /// Invoked when a budget saturates at its ceiling while violations
  /// persist — the paper's "accept the feasible rate or pay more" moment.
  using InfeasibleCallback =
      std::function<void(const BudgetKey& key, double budget)>;

  /// Validating factory: requires 0 < min <= initial <= max, delta > 0 and
  /// a threshold in [0, 100].
  static Result<BudgetManager> Make(const BudgetConfig& config);

  /// Current budget for a key (initial if never tuned).
  double GetBudget(const BudgetKey& key) const;

  /// \brief Applies the paper's tuning rule given a fresh percent rate
  /// violation N_v from the key's F-operator. Returns the new budget.
  /// Equivalent to ReportBatch with an infinite supply ratio.
  double ReportViolation(const BudgetKey& key, double violation_percent);

  /// \brief Full tuning rule: raise when N_v exceeds the violation
  /// threshold; lower only when N_v is under the decrease threshold AND
  /// the batch had at least `decrease_supply_ratio` times more tuples than
  /// its target count; hold otherwise. Returns the new budget.
  double ReportBatch(const BudgetKey& key, double violation_percent,
                     double supply_ratio);

  /// True when the key's budget sits at the ceiling.
  bool IsSaturated(const BudgetKey& key) const;

  /// Drops tuning state for a key (query deletion).
  void Forget(const BudgetKey& key);

  /// Registers the infeasibility callback (at most one).
  void SetInfeasibleCallback(InfeasibleCallback callback) {
    infeasible_callback_ = std::move(callback);
  }

  /// The configuration.
  const BudgetConfig& config() const { return config_; }

  /// Number of budget increases applied.
  std::uint64_t increases() const { return increases_; }

  /// Number of budget decreases applied.
  std::uint64_t decreases() const { return decreases_; }

  /// Number of infeasibility events raised.
  std::uint64_t infeasible_events() const { return infeasible_events_; }

 private:
  explicit BudgetManager(const BudgetConfig& config) : config_(config) {}

  BudgetConfig config_;
  std::unordered_map<BudgetKey, double, BudgetKeyHash> budgets_;
  /// Consecutive decrease-eligible batches seen per key.
  std::unordered_map<BudgetKey, std::uint32_t, BudgetKeyHash> streaks_;
  InfeasibleCallback infeasible_callback_;
  std::uint64_t increases_ = 0;
  std::uint64_t decreases_ = 0;
  std::uint64_t infeasible_events_ = 0;
};

}  // namespace server
}  // namespace craqr
