#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/result.h"
#include "ops/tuple.h"

/// \file incentive.h
/// \brief Incentive controller — the paper's first planned extension
/// (Section VI "Including incentives").
///
/// "Currently, if there are significant rate violations then the
/// request/response handler, in the hope of reducing violations, increases
/// its rate of sending acquisition requests. Another alternative is to
/// offer more incentive to the mobile sensors to respond."
///
/// This controller raises the incentive for an attribute when its budget
/// has saturated yet violations persist, and decays it multiplicatively
/// when violations stay under control — a bounded additive-increase /
/// multiplicative-decrease policy.

namespace craqr {
namespace server {

/// \brief Incentive policy parameters.
struct IncentiveConfig {
  /// Incentive offered before any adjustment.
  double initial = 1.0;
  /// Additive raise applied when the budget is saturated and N_v is above
  /// the threshold.
  double raise_step = 0.5;
  /// Multiplicative decay applied when N_v is under the threshold.
  double decay_factor = 0.98;
  /// Hard ceiling (the user's willingness to pay).
  double max = 10.0;
  /// Hard floor.
  double min = 0.0;
  /// N_v threshold (percent), usually mirroring the budget threshold.
  double violation_threshold = 5.0;
};

/// \brief Per-attribute incentive state machine.
class IncentiveController {
 public:
  /// Validating factory: requires min <= initial <= max, raise_step > 0
  /// and decay_factor in (0, 1].
  static Result<IncentiveController> Make(const IncentiveConfig& config);

  /// Current incentive for an attribute.
  double GetIncentive(ops::AttributeId attribute) const;

  /// \brief Feeds one tuning observation and returns the updated
  /// incentive. `budget_saturated` comes from
  /// BudgetManager::IsSaturated — incentives only rise once budget
  /// increases alone can no longer help.
  double Update(ops::AttributeId attribute, double violation_percent,
                bool budget_saturated);

  /// Number of raises applied.
  std::uint64_t raises() const { return raises_; }

  /// The configuration.
  const IncentiveConfig& config() const { return config_; }

 private:
  explicit IncentiveController(const IncentiveConfig& config)
      : config_(config) {}

  IncentiveConfig config_;
  std::unordered_map<ops::AttributeId, double> incentives_;
  std::uint64_t raises_ = 0;
};

}  // namespace server
}  // namespace craqr
