#include "server/budget.h"

#include <algorithm>
#include <limits>

namespace craqr {
namespace server {

Result<BudgetManager> BudgetManager::Make(const BudgetConfig& config) {
  if (!(config.min > 0.0) || !(config.min <= config.initial) ||
      !(config.initial <= config.max)) {
    return Status::InvalidArgument(
        "budget config requires 0 < min <= initial <= max");
  }
  if (!(config.delta > 0.0)) {
    return Status::InvalidArgument("budget delta must be > 0");
  }
  if (!(config.violation_threshold >= 0.0) ||
      !(config.violation_threshold <= 100.0)) {
    return Status::InvalidArgument(
        "violation threshold must be a percentage in [0, 100]");
  }
  if (!(config.decrease_threshold >= 0.0) ||
      !(config.decrease_threshold <= config.violation_threshold)) {
    return Status::InvalidArgument(
        "decrease threshold must be in [0, violation_threshold]");
  }
  if (config.decrease_patience < 1) {
    return Status::InvalidArgument("decrease patience must be >= 1");
  }
  return BudgetManager(config);
}

double BudgetManager::GetBudget(const BudgetKey& key) const {
  const auto it = budgets_.find(key);
  return it == budgets_.end() ? config_.initial : it->second;
}

double BudgetManager::ReportViolation(const BudgetKey& key,
                                      double violation_percent) {
  return ReportBatch(key, violation_percent,
                     std::numeric_limits<double>::infinity());
}

double BudgetManager::ReportBatch(const BudgetKey& key,
                                  double violation_percent,
                                  double supply_ratio) {
  double budget = GetBudget(key);
  if (violation_percent > config_.violation_threshold) {
    streaks_[key] = 0;
    if (budget >= config_.max) {
      // "If the budget cannot be increased beyond a limit, then the user is
      // requested to either accept the feasible rate or pay more."
      ++infeasible_events_;
      if (infeasible_callback_) {
        infeasible_callback_(key, budget);
      }
    } else {
      budget = std::min(budget + config_.delta, config_.max);
      ++increases_;
    }
  } else if (violation_percent < config_.decrease_threshold &&
             supply_ratio >= config_.decrease_supply_ratio) {
    if (++streaks_[key] >= config_.decrease_patience) {
      streaks_[key] = 0;
      const double lowered = std::max(budget - config_.delta, config_.min);
      if (lowered < budget) {
        ++decreases_;
      }
      budget = lowered;
    }
  } else {
    // Dead band [decrease_threshold, violation_threshold]: hold and reset
    // the decrease streak.
    streaks_[key] = 0;
  }
  budgets_[key] = budget;
  return budget;
}

bool BudgetManager::IsSaturated(const BudgetKey& key) const {
  return GetBudget(key) >= config_.max;
}

void BudgetManager::Forget(const BudgetKey& key) {
  budgets_.erase(key);
  streaks_.erase(key);
}

}  // namespace server
}  // namespace craqr
