#pragma once

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "geometry/grid.h"
#include "ops/tuple.h"
#include "ops/tuple_batch.h"
#include "sensing/world.h"
#include "server/budget.h"

/// \file handler.h
/// \brief The request/response handler (paper Section IV-A, Fig. 1).
///
/// "The request/response handler has the task of sending data acquisition
/// requests to mobile sensors and collecting their responses."  One
/// subscription exists per (attribute, grid cell) that at least one query
/// touches; each dispatch round sends `budget` requests per subscription
/// and collects the (delayed) responses into time-ordered batches for the
/// stream fabricator.

namespace craqr {
namespace server {

/// \brief Handler parameters.
struct HandlerConfig {
  /// Minutes between dispatch rounds.
  double dispatch_interval = 1.0;
  /// Incentive offered per request (extension hook; see
  /// IncentiveController).
  double default_incentive = 1.0;
};

/// \brief Sends acquisition requests per subscription and delivers arrived
/// responses in time order.
class RequestResponseHandler {
 public:
  /// Creates a handler over a sensor network and a budget manager; both
  /// pointers must outlive the handler.
  static Result<RequestResponseHandler> Make(
      sensing::MobileSensorNetwork* network, BudgetManager* budgets,
      const geom::Grid& grid, const HandlerConfig& config = HandlerConfig());

  /// Activates acquisition for (attribute, cell); idempotent via
  /// reference counting — overlapping queries on the same cell share one
  /// subscription (multi-query sharing).
  Status Subscribe(ops::AttributeId attribute, const geom::CellIndex& cell);

  /// Releases one reference; acquisition stops when the count hits zero.
  Status Unsubscribe(ops::AttributeId attribute, const geom::CellIndex& cell);

  /// Number of live subscriptions.
  std::size_t NumSubscriptions() const { return subscriptions_.size(); }

  /// \brief Runs dispatch rounds up to `now` and appends every response
  /// whose arrival time is <= `now`, in arrival-time order, to `out` — the
  /// batch the fabricator consumes ("when the request/response handler
  /// sends a batch of tuples for attribute A<j> ..."). The batch columns
  /// are built directly (no intermediate tuple vector); `out` is cleared
  /// first and its capacity recycles across steps.
  ///
  /// Pipelining contract: the handler writes only into the caller-owned
  /// `out` and holds no reference to it (or to any previous step's batch)
  /// after returning, so the engine may hand a different recycled batch
  /// each step while earlier ones are still referenced by in-flight shard
  /// work. Dispatch reads the budget/incentive state as of the call — the
  /// engine's epoch contract guarantees that state is identical across
  /// execution modes at every dispatch point.
  Status Step(double now, ops::TupleBatch* out);

  /// Row-vector convenience overload (tests, trace tooling).
  Result<std::vector<ops::Tuple>> Step(double now);

  /// Sets the incentive offered on future requests for one attribute
  /// (Section VI incentive extension).
  void SetIncentive(ops::AttributeId attribute, double incentive);

  /// Incentive currently offered for an attribute.
  double GetIncentive(ops::AttributeId attribute) const;

  /// Total acquisition requests sent so far.
  std::uint64_t requests_sent() const { return requests_sent_; }

  /// Total tuples delivered to the fabricator so far.
  std::uint64_t tuples_delivered() const { return tuples_delivered_; }

  /// Responses still in flight (arrival time in the future).
  std::size_t pending_responses() const { return pending_.size(); }

 private:
  RequestResponseHandler(sensing::MobileSensorNetwork* network,
                         BudgetManager* budgets, const geom::Grid& grid,
                         const HandlerConfig& config)
      : network_(network), budgets_(budgets), grid_(grid), config_(config) {}

  struct ArrivalLater {
    bool operator()(const ops::Tuple& a, const ops::Tuple& b) const {
      return a.point.t > b.point.t;  // min-heap on arrival time
    }
  };

  sensing::MobileSensorNetwork* network_;
  BudgetManager* budgets_;
  geom::Grid grid_;
  HandlerConfig config_;
  std::unordered_map<BudgetKey, std::uint32_t, BudgetKeyHash> subscriptions_;
  std::unordered_map<ops::AttributeId, double> incentives_;
  std::priority_queue<ops::Tuple, std::vector<ops::Tuple>, ArrivalLater>
      pending_;
  double next_dispatch_ = 0.0;
  bool dispatched_once_ = false;
  std::uint64_t requests_sent_ = 0;
  std::uint64_t tuples_delivered_ = 0;
};

}  // namespace server
}  // namespace craqr
