#include "server/handler.h"

#include <cmath>

#include "common/macros.h"

namespace craqr {
namespace server {

Result<RequestResponseHandler> RequestResponseHandler::Make(
    sensing::MobileSensorNetwork* network, BudgetManager* budgets,
    const geom::Grid& grid, const HandlerConfig& config) {
  if (network == nullptr) {
    return Status::InvalidArgument("handler requires a sensor network");
  }
  if (budgets == nullptr) {
    return Status::InvalidArgument("handler requires a budget manager");
  }
  if (!(config.dispatch_interval > 0.0)) {
    return Status::InvalidArgument("dispatch interval must be > 0");
  }
  return RequestResponseHandler(network, budgets, grid, config);
}

Status RequestResponseHandler::Subscribe(ops::AttributeId attribute,
                                         const geom::CellIndex& cell) {
  if (cell.q >= grid_.CellsPerSide() || cell.r >= grid_.CellsPerSide()) {
    return Status::OutOfRange("cell " + cell.ToString() +
                              " outside the grid");
  }
  ++subscriptions_[BudgetKey{attribute, cell}];
  return Status::OK();
}

Status RequestResponseHandler::Unsubscribe(ops::AttributeId attribute,
                                           const geom::CellIndex& cell) {
  const BudgetKey key{attribute, cell};
  auto it = subscriptions_.find(key);
  if (it == subscriptions_.end()) {
    return Status::NotFound("no subscription for attribute " +
                            std::to_string(attribute) + " on cell " +
                            cell.ToString());
  }
  if (--it->second == 0) {
    subscriptions_.erase(it);
    budgets_->Forget(key);
  }
  return Status::OK();
}

void RequestResponseHandler::SetIncentive(ops::AttributeId attribute,
                                          double incentive) {
  incentives_[attribute] = incentive;
}

double RequestResponseHandler::GetIncentive(ops::AttributeId attribute) const {
  const auto it = incentives_.find(attribute);
  return it == incentives_.end() ? config_.default_incentive : it->second;
}

Status RequestResponseHandler::Step(double now, ops::TupleBatch* out) {
  // Only `out` is touched; all carried state (pending_ and the dispatch
  // clock) is internal, so this call may overlap shard processing of any
  // previously produced batch (see the pipelining contract in handler.h).
  out->Clear();
  if (!dispatched_once_) {
    next_dispatch_ = now;
    dispatched_once_ = true;
  }
  // Run every dispatch round due by `now`.
  while (next_dispatch_ <= now) {
    for (const auto& [key, refcount] : subscriptions_) {
      (void)refcount;
      const double budget = budgets_->GetBudget(key);
      const auto count = static_cast<std::size_t>(std::llround(budget));
      if (count == 0) {
        continue;
      }
      sensing::AcquisitionRequest request;
      request.attribute = key.attribute;
      request.region = grid_.CellRect(key.cell);
      request.count = count;
      request.incentive = GetIncentive(key.attribute);
      request.now = next_dispatch_;
      request.response_spread = config_.dispatch_interval;
      CRAQR_ASSIGN_OR_RETURN(std::vector<ops::Tuple> responses,
                             network_->SendRequests(request));
      requests_sent_ += count;
      for (auto& tuple : responses) {
        pending_.push(tuple);
      }
    }
    next_dispatch_ += config_.dispatch_interval;
  }
  // Deliver everything that has arrived by `now`, in arrival order,
  // scattering straight into the batch columns.
  while (!pending_.empty() && pending_.top().point.t <= now) {
    out->Append(pending_.top());
    pending_.pop();
  }
  tuples_delivered_ += out->size();
  return Status::OK();
}

Result<std::vector<ops::Tuple>> RequestResponseHandler::Step(double now) {
  ops::TupleBatch batch;
  CRAQR_RETURN_NOT_OK(Step(now, &batch));
  return batch.ToTuples();
}

}  // namespace server
}  // namespace craqr
