#include "sensing/mobility.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace craqr {
namespace sensing {

geom::SpacePoint ReflectIntoRect(geom::SpacePoint p,
                                 const geom::Rect& region) {
  const auto reflect = [](double v, double lo, double hi) {
    const double span = hi - lo;
    if (span <= 0.0) {
      return lo;
    }
    // Fold the coordinate into a period of 2*span, then mirror.
    double offset = std::fmod(v - lo, 2.0 * span);
    if (offset < 0.0) {
      offset += 2.0 * span;
    }
    if (offset > span) {
      offset = 2.0 * span - offset;
    }
    // Keep strictly inside the half-open rect.
    const double reflected = lo + offset;
    return std::min(reflected, std::nexttoward(hi, lo));
  };
  return geom::SpacePoint{
      reflect(p.x, region.x_min(), region.x_max()),
      reflect(p.y, region.y_min(), region.y_max())};
}

// ---------------------------------------------------------------------------
// StaticMobility

geom::SpacePoint StaticMobility::Step(Rng* rng,
                                      const geom::SpacePoint& position,
                                      double dt, const geom::Rect& region) {
  (void)rng;
  (void)dt;
  return ReflectIntoRect(position, region);
}

std::unique_ptr<MobilityModel> StaticMobility::Clone() const {
  return std::make_unique<StaticMobility>(*this);
}

// ---------------------------------------------------------------------------
// GaussianWalkMobility

Result<std::unique_ptr<MobilityModel>> GaussianWalkMobility::Make(
    double sigma) {
  if (!(sigma >= 0.0) || !std::isfinite(sigma)) {
    return Status::InvalidArgument("gaussian walk sigma must be >= 0");
  }
  return std::unique_ptr<MobilityModel>(new GaussianWalkMobility(sigma));
}

geom::SpacePoint GaussianWalkMobility::Step(Rng* rng,
                                            const geom::SpacePoint& position,
                                            double dt,
                                            const geom::Rect& region) {
  const double scale = sigma_ * std::sqrt(std::max(dt, 0.0));
  const geom::SpacePoint moved{position.x + rng->Normal(0.0, scale),
                               position.y + rng->Normal(0.0, scale)};
  return ReflectIntoRect(moved, region);
}

std::unique_ptr<MobilityModel> GaussianWalkMobility::Clone() const {
  return std::unique_ptr<MobilityModel>(new GaussianWalkMobility(*this));
}

std::string GaussianWalkMobility::ToString() const {
  std::ostringstream os;
  os << "GaussianWalk(sigma=" << sigma_ << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// RandomWaypointMobility

Result<std::unique_ptr<MobilityModel>> RandomWaypointMobility::Make(
    double v_min, double v_max) {
  if (!(v_min > 0.0) || !(v_max >= v_min) || !std::isfinite(v_max)) {
    return Status::InvalidArgument(
        "random waypoint requires 0 < v_min <= v_max");
  }
  return std::unique_ptr<MobilityModel>(
      new RandomWaypointMobility(v_min, v_max));
}

geom::SpacePoint RandomWaypointMobility::Step(
    Rng* rng, const geom::SpacePoint& position, double dt,
    const geom::Rect& region) {
  geom::SpacePoint current = ReflectIntoRect(position, region);
  double remaining = std::max(dt, 0.0);
  while (remaining > 0.0) {
    if (!has_target_) {
      target_ = geom::SpacePoint{
          rng->Uniform(region.x_min(), region.x_max()),
          rng->Uniform(region.y_min(), region.y_max())};
      speed_ = rng->Uniform(v_min_, v_max_);
      has_target_ = true;
    }
    const double dx = target_.x - current.x;
    const double dy = target_.y - current.y;
    const double distance = std::hypot(dx, dy);
    const double reachable = speed_ * remaining;
    if (reachable >= distance || distance < 1e-12) {
      // Arrive and pick a new waypoint with the leftover time.
      current = target_;
      has_target_ = false;
      remaining -= distance / std::max(speed_, 1e-12);
      if (distance < 1e-12) {
        break;  // degenerate: already at the target
      }
    } else {
      const double f = reachable / distance;
      current = geom::SpacePoint{current.x + f * dx, current.y + f * dy};
      remaining = 0.0;
    }
  }
  return ReflectIntoRect(current, region);
}

std::unique_ptr<MobilityModel> RandomWaypointMobility::Clone() const {
  auto copy =
      std::unique_ptr<RandomWaypointMobility>(new RandomWaypointMobility(*this));
  copy->has_target_ = false;  // fresh state for the new sensor
  return copy;
}

std::string RandomWaypointMobility::ToString() const {
  std::ostringstream os;
  os << "RandomWaypoint(v=" << v_min_ << ".." << v_max_ << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// LevyFlightMobility

Result<std::unique_ptr<MobilityModel>> LevyFlightMobility::Make(
    double scale, double alpha, double max_step) {
  if (!(scale > 0.0) || !(alpha > 0.0) || !(max_step >= scale)) {
    return Status::InvalidArgument(
        "levy flight requires scale > 0, alpha > 0, max_step >= scale");
  }
  return std::unique_ptr<MobilityModel>(
      new LevyFlightMobility(scale, alpha, max_step));
}

geom::SpacePoint LevyFlightMobility::Step(Rng* rng,
                                          const geom::SpacePoint& position,
                                          double dt,
                                          const geom::Rect& region) {
  const double raw = rng->Pareto(scale_, alpha_);
  const double length = std::min(raw, max_step_) * std::max(dt, 0.0);
  const double angle = rng->Uniform(0.0, 2.0 * M_PI);
  const geom::SpacePoint moved{position.x + length * std::cos(angle),
                               position.y + length * std::sin(angle)};
  return ReflectIntoRect(moved, region);
}

std::unique_ptr<MobilityModel> LevyFlightMobility::Clone() const {
  return std::unique_ptr<MobilityModel>(new LevyFlightMobility(*this));
}

std::string LevyFlightMobility::ToString() const {
  std::ostringstream os;
  os << "LevyFlight(scale=" << scale_ << ", alpha=" << alpha_ << ")";
  return os.str();
}

}  // namespace sensing
}  // namespace craqr
