#pragma once

#include <memory>
#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "geometry/point.h"
#include "geometry/rect.h"

/// \file mobility.h
/// \brief Mobility models for mobile sensors.
///
/// The paper's premise is that "sensors are mobile and not stationary" with
/// "uncontrollable mobility", which is what makes crowdsensed arrivals
/// spatio-temporally skewed. Each sensor owns a MobilityModel instance
/// (models may be stateful, e.g. random waypoint keeps its current
/// destination); prototypes are cloned per sensor.

namespace craqr {
namespace sensing {

/// \brief Per-sensor movement policy. Stateful; clone one instance per
/// sensor.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Advances a sensor at `position` by `dt` minutes and returns its new
  /// position, kept inside `region` (implementations reflect or re-target
  /// at the boundary).
  virtual geom::SpacePoint Step(Rng* rng, const geom::SpacePoint& position,
                                double dt, const geom::Rect& region) = 0;

  /// Deep copy with independent state.
  virtual std::unique_ptr<MobilityModel> Clone() const = 0;

  /// Model name for diagnostics.
  virtual std::string ToString() const = 0;
};

/// \brief A sensor that never moves (e.g. a parked vehicle) — the WSN
/// degenerate case the paper contrasts against.
class StaticMobility final : public MobilityModel {
 public:
  geom::SpacePoint Step(Rng* rng, const geom::SpacePoint& position, double dt,
                        const geom::Rect& region) override;
  std::unique_ptr<MobilityModel> Clone() const override;
  std::string ToString() const override { return "Static"; }
};

/// \brief Gaussian random walk: displacement ~ N(0, sigma^2 * dt) per axis,
/// reflected at the region boundary. `sigma` is in km per sqrt(minute).
class GaussianWalkMobility final : public MobilityModel {
 public:
  /// Validating factory; requires sigma >= 0.
  static Result<std::unique_ptr<MobilityModel>> Make(double sigma);

  geom::SpacePoint Step(Rng* rng, const geom::SpacePoint& position, double dt,
                        const geom::Rect& region) override;
  std::unique_ptr<MobilityModel> Clone() const override;
  std::string ToString() const override;

 private:
  explicit GaussianWalkMobility(double sigma) : sigma_(sigma) {}
  double sigma_;
};

/// \brief Random waypoint: pick a uniform destination in the region and a
/// speed in [v_min, v_max] km/min, travel in a straight line, repeat.
/// The classic pedestrian/vehicle model for crowdsensing studies.
class RandomWaypointMobility final : public MobilityModel {
 public:
  /// Validating factory; requires 0 < v_min <= v_max.
  static Result<std::unique_ptr<MobilityModel>> Make(double v_min,
                                                     double v_max);

  geom::SpacePoint Step(Rng* rng, const geom::SpacePoint& position, double dt,
                        const geom::Rect& region) override;
  std::unique_ptr<MobilityModel> Clone() const override;
  std::string ToString() const override;

 private:
  RandomWaypointMobility(double v_min, double v_max)
      : v_min_(v_min), v_max_(v_max) {}

  double v_min_;
  double v_max_;
  bool has_target_ = false;
  geom::SpacePoint target_;
  double speed_ = 0.0;
};

/// \brief Levy flight: heavy-tailed (Pareto) step lengths in uniform
/// directions, reflected at the boundary — models humans alternating many
/// short moves with occasional long relocations.
class LevyFlightMobility final : public MobilityModel {
 public:
  /// Validating factory; requires scale > 0, alpha > 0 and max_step >=
  /// scale (steps are truncated at max_step km per minute of dt).
  static Result<std::unique_ptr<MobilityModel>> Make(double scale,
                                                     double alpha,
                                                     double max_step);

  geom::SpacePoint Step(Rng* rng, const geom::SpacePoint& position, double dt,
                        const geom::Rect& region) override;
  std::unique_ptr<MobilityModel> Clone() const override;
  std::string ToString() const override;

 private:
  LevyFlightMobility(double scale, double alpha, double max_step)
      : scale_(scale), alpha_(alpha), max_step_(max_step) {}

  double scale_;
  double alpha_;
  double max_step_;
};

/// \brief Reflects a point into the region (helper shared by models and
/// tests).
geom::SpacePoint ReflectIntoRect(geom::SpacePoint p, const geom::Rect& region);

}  // namespace sensing
}  // namespace craqr
