#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "geometry/rect.h"
#include "ops/tuple.h"
#include "sensing/phenomena.h"
#include "sensing/population.h"
#include "sensing/response.h"

/// \file world.h
/// \brief The crowd of mobile sensors the request/response handler talks
/// to, plus the attribute registry A<1>..A<k> (paper Section II).
///
/// The paper assumes "mobile sensors have agreed to share all the
/// information required for processing queries with a central server".
/// `CrowdWorld` simulates that central server's view: it owns the sensor
/// population, the registered attributes with their phenomena fields and
/// response behaviours, and answers acquisition requests with (possibly
/// delayed, possibly missing) crowdsensed tuples.

namespace craqr {
namespace sensing {

/// \brief A registered attribute A<j>.
struct AttributeSpec {
  ops::AttributeId id = 0;
  std::string name;
  /// Human-sensed attributes ("is it raining?") are slow and incentive-
  /// sensitive; sensor-sensed attributes ("temperature") are fast and
  /// near-certain.
  bool human_sensed = false;
  FieldPtr field;
  ResponseBehavior behavior;
};

/// \brief One acquisition request from the request/response handler: ask
/// `count` randomly selected sensors inside `region` to observe
/// `attribute`, offering `incentive` per response, at time `now`.
struct AcquisitionRequest {
  ops::AttributeId attribute = 0;
  geom::Rect region;
  std::size_t count = 0;
  double incentive = 0.0;
  double now = 0.0;
  /// Requests are staggered uniformly over [now, now + response_spread):
  /// the handler spaces its per-round requests across the dispatch
  /// interval instead of firing them all in one instant.
  double response_spread = 0.0;
};

/// \brief Abstract mobile-sensor network (the "crowd side" of paper
/// Fig. 1). The simulator implements it; a deployment would put a real
/// device fleet behind the same interface.
class MobileSensorNetwork {
 public:
  virtual ~MobileSensorNetwork() = default;

  /// Dispatches one acquisition request and returns the responses that
  /// will eventually arrive. Each tuple's time coordinate is its *arrival*
  /// time `now + response delay`; the caller is responsible for not
  /// consuming tuples before they arrive. Fewer tuples than `count` may be
  /// returned (non-response).
  virtual Result<std::vector<ops::Tuple>> SendRequests(
      const AcquisitionRequest& request) = 0;

  /// Number of sensors currently inside `region` (the handler uses this to
  /// decide sampling with vs without replacement).
  virtual std::size_t AvailableSensors(const geom::Rect& region) const = 0;
};

/// \brief Simulated crowd: population + attributes + response draws.
class CrowdWorld final : public MobileSensorNetwork {
 public:
  /// Creates a world over a population; `rng` seeds the world's private
  /// stream.
  static Result<CrowdWorld> Make(SensorPopulation population, Rng rng);

  /// Registers an attribute and returns its id. Names must be unique.
  Result<ops::AttributeId> RegisterAttribute(std::string name,
                                             bool human_sensed,
                                             FieldPtr field,
                                             const ResponseBehavior& behavior);

  /// Looks up an attribute id by name.
  Result<ops::AttributeId> AttributeIdByName(const std::string& name) const;

  /// Attribute metadata; id must be registered.
  Result<AttributeSpec> GetAttribute(ops::AttributeId id) const;

  /// Number of registered attributes.
  std::size_t NumAttributes() const { return attributes_.size(); }

  // MobileSensorNetwork:
  Result<std::vector<ops::Tuple>> SendRequests(
      const AcquisitionRequest& request) override;
  std::size_t AvailableSensors(const geom::Rect& region) const override;

  /// Moves the crowd forward by `dt` minutes.
  void Advance(double dt) { population_.Advance(&rng_, dt); }

  /// The sensor population.
  const SensorPopulation& population() const { return population_; }

  /// Total acquisition requests dispatched (cost metric of experiment E7).
  std::uint64_t total_requests_sent() const { return total_requests_sent_; }

  /// Total responses produced.
  std::uint64_t total_responses() const { return total_responses_; }

 private:
  CrowdWorld(SensorPopulation population, Rng rng)
      : population_(std::move(population)), rng_(rng) {}

  SensorPopulation population_;
  Rng rng_;
  std::vector<AttributeSpec> attributes_;
  std::uint64_t next_tuple_id_ = 0;
  std::uint64_t total_requests_sent_ = 0;
  std::uint64_t total_responses_ = 0;
};

}  // namespace sensing
}  // namespace craqr
