#include "sensing/world.h"

#include <cmath>

#include "common/macros.h"

namespace craqr {
namespace sensing {

Result<CrowdWorld> CrowdWorld::Make(SensorPopulation population, Rng rng) {
  return CrowdWorld(std::move(population), rng);
}

Result<ops::AttributeId> CrowdWorld::RegisterAttribute(
    std::string name, bool human_sensed, FieldPtr field,
    const ResponseBehavior& behavior) {
  if (name.empty()) {
    return Status::InvalidArgument("attribute name must not be empty");
  }
  if (field == nullptr) {
    return Status::InvalidArgument("attribute requires a phenomenon field");
  }
  for (const auto& existing : attributes_) {
    if (existing.name == name) {
      return Status::AlreadyExists("attribute '" + name +
                                   "' is already registered");
    }
  }
  // Validate the behaviour once, at registration.
  CRAQR_ASSIGN_OR_RETURN(ResponseModel model, ResponseModel::Make(behavior));
  (void)model;

  AttributeSpec spec;
  spec.id = static_cast<ops::AttributeId>(attributes_.size());
  spec.name = std::move(name);
  spec.human_sensed = human_sensed;
  spec.field = std::move(field);
  spec.behavior = behavior;
  attributes_.push_back(std::move(spec));
  return attributes_.back().id;
}

Result<ops::AttributeId> CrowdWorld::AttributeIdByName(
    const std::string& name) const {
  for (const auto& spec : attributes_) {
    if (spec.name == name) {
      return spec.id;
    }
  }
  return Status::NotFound("attribute '" + name + "' is not registered");
}

Result<AttributeSpec> CrowdWorld::GetAttribute(ops::AttributeId id) const {
  if (id >= attributes_.size()) {
    return Status::NotFound("attribute id " + std::to_string(id) +
                            " is not registered");
  }
  return attributes_[id];
}

std::size_t CrowdWorld::AvailableSensors(const geom::Rect& region) const {
  return population_.CountIn(region);
}

Result<std::vector<ops::Tuple>> CrowdWorld::SendRequests(
    const AcquisitionRequest& request) {
  if (request.attribute >= attributes_.size()) {
    return Status::NotFound("attribute id " +
                            std::to_string(request.attribute) +
                            " is not registered");
  }
  const AttributeSpec& spec = attributes_[request.attribute];
  CRAQR_ASSIGN_OR_RETURN(ResponseModel model,
                         ResponseModel::Make(spec.behavior));

  std::vector<ops::Tuple> responses;
  if (request.count == 0) {
    return responses;
  }
  const std::vector<std::size_t> candidates =
      population_.SensorsIn(request.region);
  if (candidates.empty()) {
    return responses;  // nobody around to ask
  }

  // Paper Section IV-A: "Mobile sensors are sampled with or without
  // replacement, depending on the number of mobile sensors available."
  std::vector<std::uint64_t> picks;
  if (request.count <= candidates.size()) {
    picks = rng_.SampleWithoutReplacement(candidates.size(), request.count);
  } else {
    picks = rng_.SampleWithReplacement(candidates.size(), request.count);
  }
  total_requests_sent_ += picks.size();

  responses.reserve(picks.size());
  for (std::uint64_t pick : picks) {
    const Sensor& sensor =
        population_.sensor(candidates[static_cast<std::size_t>(pick)]);
    if (!model.WillRespond(&rng_, request.incentive,
                           sensor.responsiveness_bias)) {
      continue;  // declined / ignored the request
    }
    const double delay = model.ResponseDelay(&rng_);
    const double stagger = request.response_spread > 0.0
                               ? rng_.Uniform(0.0, request.response_spread)
                               : 0.0;
    const double arrival = request.now + stagger + delay;
    // The sensor may drift a little between request and response; jitter
    // its reported position accordingly and keep it inside the region R.
    const double drift_sigma = 0.02 * std::sqrt(delay);
    geom::SpacePoint reported{
        sensor.position.x + rng_.Normal(0.0, drift_sigma),
        sensor.position.y + rng_.Normal(0.0, drift_sigma)};
    reported = ReflectIntoRect(reported, population_.region());

    ops::Tuple tuple;
    tuple.id = next_tuple_id_++;
    tuple.attribute = spec.id;
    tuple.point = geom::SpaceTimePoint{arrival, reported.x, reported.y};
    // Convert the field's boundary variant into the compact payload at the
    // production edge: string observations intern into the global
    // ValuePool once, and everything downstream moves 12-byte handles.
    tuple.value = ops::MakePayload(spec.field->Observe(
        &rng_, geom::SpaceTimePoint{arrival, reported.x, reported.y}));
    tuple.sensor_id = sensor.id;
    responses.push_back(tuple);
    ++total_responses_;
  }
  return responses;
}

}  // namespace sensing
}  // namespace craqr
