#include "sensing/phenomena.h"

#include <cmath>
#include <sstream>

namespace craqr {
namespace sensing {

// ---------------------------------------------------------------------------
// RainField

Result<FieldPtr> RainField::Make(std::vector<RainCell> cells,
                                 double misreport_prob) {
  for (const auto& cell : cells) {
    if (!(cell.radius > 0.0)) {
      return Status::InvalidArgument("rain cell radius must be > 0");
    }
    if (!(cell.t_end > cell.t_start)) {
      return Status::InvalidArgument("rain cell must end after it starts");
    }
  }
  if (!(misreport_prob >= 0.0) || !(misreport_prob < 1.0)) {
    return Status::InvalidArgument("misreport probability must be in [0, 1)");
  }
  return FieldPtr(new RainField(std::move(cells), misreport_prob));
}

bool RainField::IsRaining(const geom::SpaceTimePoint& p) const {
  for (const auto& cell : cells_) {
    if (p.t < cell.t_start || p.t >= cell.t_end) {
      continue;
    }
    const double cx = cell.x0 + cell.vx * p.t;
    const double cy = cell.y0 + cell.vy * p.t;
    const double dx = p.x - cx;
    const double dy = p.y - cy;
    if (dx * dx + dy * dy <= cell.radius * cell.radius) {
      return true;
    }
  }
  return false;
}

ops::AttributeValue RainField::GroundTruth(
    const geom::SpaceTimePoint& p) const {
  return IsRaining(p);
}

ops::AttributeValue RainField::Observe(Rng* rng,
                                       const geom::SpaceTimePoint& p) const {
  bool raining = IsRaining(p);
  if (rng->Bernoulli(misreport_prob_)) {
    raining = !raining;  // human judgment error
  }
  return raining;
}

std::string RainField::ToString() const {
  std::ostringstream os;
  os << "RainField(cells=" << cells_.size()
     << ", misreport=" << misreport_prob_ << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// TemperatureField

Result<FieldPtr> TemperatureField::Make(const Params& params) {
  if (!(params.diurnal_period > 0.0)) {
    return Status::InvalidArgument("diurnal period must be > 0");
  }
  if (!(params.noise_sigma >= 0.0)) {
    return Status::InvalidArgument("noise sigma must be >= 0");
  }
  return FieldPtr(new TemperatureField(params));
}

double TemperatureField::TemperatureAt(const geom::SpaceTimePoint& p) const {
  const double diurnal =
      params_.diurnal_amplitude *
      std::sin(2.0 * M_PI * p.t / params_.diurnal_period);
  return params_.base + params_.grad_x * p.x + params_.grad_y * p.y + diurnal;
}

ops::AttributeValue TemperatureField::GroundTruth(
    const geom::SpaceTimePoint& p) const {
  return TemperatureAt(p);
}

ops::AttributeValue TemperatureField::Observe(
    Rng* rng, const geom::SpaceTimePoint& p) const {
  return TemperatureAt(p) + rng->Normal(0.0, params_.noise_sigma);
}

std::string TemperatureField::ToString() const {
  std::ostringstream os;
  os << "TemperatureField(base=" << params_.base << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// AirQualityField

Result<FieldPtr> AirQualityField::Make(double background,
                                       std::vector<Source> sources,
                                       double noise_sigma) {
  if (!(background >= 0.0)) {
    return Status::InvalidArgument("background AQI must be >= 0");
  }
  for (const auto& source : sources) {
    if (!(source.spread > 0.0) || !(source.strength >= 0.0)) {
      return Status::InvalidArgument(
          "AQI sources require spread > 0 and strength >= 0");
    }
  }
  if (!(noise_sigma >= 0.0)) {
    return Status::InvalidArgument("noise sigma must be >= 0");
  }
  return FieldPtr(
      new AirQualityField(background, std::move(sources), noise_sigma));
}

double AirQualityField::AqiAt(const geom::SpaceTimePoint& p) const {
  double aqi = background_;
  for (const auto& source : sources_) {
    const double dx = p.x - source.x;
    const double dy = p.y - source.y;
    aqi += source.strength *
           std::exp(-(dx * dx + dy * dy) / (2.0 * source.spread * source.spread));
  }
  return aqi;
}

ops::AttributeValue AirQualityField::GroundTruth(
    const geom::SpaceTimePoint& p) const {
  return AqiAt(p);
}

ops::AttributeValue AirQualityField::Observe(
    Rng* rng, const geom::SpaceTimePoint& p) const {
  return AqiAt(p) * rng->LogNormal(0.0, noise_sigma_);
}

std::string AirQualityField::ToString() const {
  std::ostringstream os;
  os << "AirQualityField(background=" << background_
     << ", sources=" << sources_.size() << ")";
  return os.str();
}

}  // namespace sensing
}  // namespace craqr
