#include "sensing/population.h"

#include <cmath>

namespace craqr {
namespace sensing {

namespace {

Result<geom::SpacePoint> SamplePlacement(const PopulationConfig& config,
                                         Rng* rng) {
  const geom::Rect& region = config.region;
  if (config.placement == PlacementKind::kUniform) {
    return geom::SpacePoint{rng->Uniform(region.x_min(), region.x_max()),
                            rng->Uniform(region.y_min(), region.y_max())};
  }
  // Rejection sampling against the placement intensity at t = 0.
  const pp::SpaceTimeWindow window{0.0, 1.0, region};
  const double bound = config.placement_intensity->UpperBound(window);
  if (!(bound > 0.0) || !std::isfinite(bound)) {
    return Status::InvalidArgument(
        "placement intensity must have a positive finite upper bound");
  }
  for (int attempt = 0; attempt < 100000; ++attempt) {
    const geom::SpacePoint candidate{
        rng->Uniform(region.x_min(), region.x_max()),
        rng->Uniform(region.y_min(), region.y_max())};
    const double rate = config.placement_intensity->Rate(
        geom::SpaceTimePoint{0.0, candidate.x, candidate.y});
    if (rng->Bernoulli(rate / bound)) {
      return candidate;
    }
  }
  return Status::Internal(
      "placement rejection sampling failed to accept after 1e5 attempts "
      "(intensity nearly zero everywhere?)");
}

}  // namespace

Result<SensorPopulation> SensorPopulation::Make(const PopulationConfig& config,
                                                Rng* rng) {
  if (rng == nullptr) {
    return Status::InvalidArgument("rng must not be null");
  }
  if (config.region.IsEmpty()) {
    return Status::InvalidArgument("population region must have positive area");
  }
  if (config.num_sensors == 0) {
    return Status::InvalidArgument("population requires at least one sensor");
  }
  if (config.placement == PlacementKind::kIntensity &&
      config.placement_intensity == nullptr) {
    return Status::InvalidArgument(
        "intensity placement requires a placement_intensity");
  }
  if (!(config.responsiveness_sigma >= 0.0)) {
    return Status::InvalidArgument("responsiveness sigma must be >= 0");
  }

  std::vector<Sensor> sensors;
  sensors.reserve(config.num_sensors);
  for (std::size_t i = 0; i < config.num_sensors; ++i) {
    Sensor sensor;
    sensor.id = i;
    auto position = SamplePlacement(config, rng);
    if (!position.ok()) {
      return position.status();
    }
    sensor.position = position.MoveValue();
    sensor.responsiveness_bias =
        rng->Normal(0.0, config.responsiveness_sigma);
    if (config.mobility_prototype != nullptr) {
      sensor.mobility = config.mobility_prototype->Clone();
    }
    sensors.push_back(std::move(sensor));
  }
  return SensorPopulation(config.region, std::move(sensors));
}

void SensorPopulation::Advance(Rng* rng, double dt) {
  for (auto& sensor : sensors_) {
    if (sensor.mobility != nullptr) {
      sensor.position = sensor.mobility->Step(rng, sensor.position, dt, region_);
    }
  }
}

std::vector<std::size_t> SensorPopulation::SensorsIn(
    const geom::Rect& rect) const {
  std::vector<std::size_t> indices;
  for (std::size_t i = 0; i < sensors_.size(); ++i) {
    if (rect.Contains(sensors_[i].position)) {
      indices.push_back(i);
    }
  }
  return indices;
}

std::size_t SensorPopulation::CountIn(const geom::Rect& rect) const {
  std::size_t count = 0;
  for (const auto& sensor : sensors_) {
    if (rect.Contains(sensor.position)) {
      ++count;
    }
  }
  return count;
}

}  // namespace sensing
}  // namespace craqr
