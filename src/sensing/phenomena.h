#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "geometry/point.h"
#include "ops/tuple.h"

/// \file phenomena.h
/// \brief Synthetic ground-truth phenomena the crowd observes.
///
/// The paper's running examples are `rain` (a human-sensed boolean) and
/// `temp` (a sensor-sensed real value). These fields provide deterministic,
/// seedable ground truth so acquired tuple values have realistic
/// spatio-temporal structure; observation noise models sensor inaccuracy
/// and human judgment errors (paper Section VI "Handling errors").

namespace craqr {
namespace sensing {

/// \brief A spatio-temporal field an observer samples at its location.
class PhenomenonField {
 public:
  virtual ~PhenomenonField() = default;

  /// The noiseless ground truth at a space-time point.
  virtual ops::AttributeValue GroundTruth(
      const geom::SpaceTimePoint& p) const = 0;

  /// One noisy observation (what a sensor/human reports).
  virtual ops::AttributeValue Observe(Rng* rng,
                                      const geom::SpaceTimePoint& p) const = 0;

  /// Field name for diagnostics.
  virtual std::string ToString() const = 0;
};

/// Shared immutable field handle.
using FieldPtr = std::shared_ptr<const PhenomenonField>;

/// \brief One circular rain cell drifting across the region.
struct RainCell {
  /// Centre at t = 0.
  double x0 = 0.0;
  double y0 = 0.0;
  /// Radius (km).
  double radius = 1.0;
  /// Drift velocity (km/min).
  double vx = 0.0;
  double vy = 0.0;
  /// Minute the cell starts raining.
  double t_start = 0.0;
  /// Minute the cell dissipates (inf = never).
  double t_end = 1e18;
};

/// \brief Boolean rain field: it rains at (t, x, y) iff the point lies in
/// an active rain cell. Observations flip with probability
/// `misreport_prob` (human judgment error).
class RainField final : public PhenomenonField {
 public:
  /// Validating factory; requires cells with positive radius and
  /// misreport_prob in [0, 1).
  static Result<FieldPtr> Make(std::vector<RainCell> cells,
                               double misreport_prob = 0.02);

  ops::AttributeValue GroundTruth(
      const geom::SpaceTimePoint& p) const override;
  ops::AttributeValue Observe(Rng* rng,
                              const geom::SpaceTimePoint& p) const override;
  std::string ToString() const override;

  /// Typed ground-truth accessor.
  bool IsRaining(const geom::SpaceTimePoint& p) const;

 private:
  RainField(std::vector<RainCell> cells, double misreport_prob)
      : cells_(std::move(cells)), misreport_prob_(misreport_prob) {}

  std::vector<RainCell> cells_;
  double misreport_prob_;
};

/// \brief Real-valued ambient temperature: a base level plus a linear
/// spatial gradient plus a diurnal sine, observed with Gaussian sensor
/// noise.
class TemperatureField final : public PhenomenonField {
 public:
  /// \brief Field parameters.
  struct Params {
    /// Mean temperature (deg C).
    double base = 20.0;
    /// Spatial gradient (deg C per km).
    double grad_x = 0.1;
    double grad_y = -0.05;
    /// Diurnal amplitude (deg C) and period (minutes; 1440 = 24 h).
    double diurnal_amplitude = 5.0;
    double diurnal_period = 1440.0;
    /// Observation noise stddev (deg C).
    double noise_sigma = 0.3;
  };

  /// Validating factory; requires diurnal_period > 0 and noise_sigma >= 0.
  static Result<FieldPtr> Make(const Params& params);

  ops::AttributeValue GroundTruth(
      const geom::SpaceTimePoint& p) const override;
  ops::AttributeValue Observe(Rng* rng,
                              const geom::SpaceTimePoint& p) const override;
  std::string ToString() const override;

  /// Typed ground-truth accessor.
  double TemperatureAt(const geom::SpaceTimePoint& p) const;

 private:
  explicit TemperatureField(const Params& params) : params_(params) {}
  Params params_;
};

/// \brief Real-valued air-quality index: background plus Gaussian pollution
/// plumes decaying from point sources, observed with multiplicative
/// log-normal noise. The third domain scenario (OpenSense-style monitoring,
/// paper reference [1]).
class AirQualityField final : public PhenomenonField {
 public:
  /// \brief One pollution source.
  struct Source {
    double x = 0.0;
    double y = 0.0;
    /// Peak AQI contribution at the source.
    double strength = 50.0;
    /// Plume spread (km).
    double spread = 0.8;
  };

  /// Validating factory; requires background >= 0, positive spreads, and
  /// noise_sigma >= 0 (log-scale sigma).
  static Result<FieldPtr> Make(double background, std::vector<Source> sources,
                               double noise_sigma = 0.05);

  ops::AttributeValue GroundTruth(
      const geom::SpaceTimePoint& p) const override;
  ops::AttributeValue Observe(Rng* rng,
                              const geom::SpaceTimePoint& p) const override;
  std::string ToString() const override;

  /// Typed ground-truth accessor.
  double AqiAt(const geom::SpaceTimePoint& p) const;

 private:
  AirQualityField(double background, std::vector<Source> sources,
                  double noise_sigma)
      : background_(background),
        sources_(std::move(sources)),
        noise_sigma_(noise_sigma) {}

  double background_;
  std::vector<Source> sources_;
  double noise_sigma_;
};

}  // namespace sensing
}  // namespace craqr
