#include "sensing/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "common/macros.h"

namespace craqr {
namespace sensing {

namespace {

char TypeTag(const ops::PayloadRef& value) {
  switch (value.kind()) {
    case ops::PayloadKind::kNull:
      return 'n';
    case ops::PayloadKind::kBool:
      return 'b';
    case ops::PayloadKind::kInt64:
      return 'i';
    case ops::PayloadKind::kDouble:
      return 'd';
    case ops::PayloadKind::kString:
      return 's';
  }
  return 'n';
}

std::string ValueField(const ops::PayloadRef& value) {
  std::ostringstream os;
  os.precision(17);
  switch (value.kind()) {
    case ops::PayloadKind::kNull:
      break;
    case ops::PayloadKind::kBool:
      os << (value.AsBool() ? 1 : 0);
      break;
    case ops::PayloadKind::kInt64:
      os << value.AsInt64();
      break;
    case ops::PayloadKind::kDouble:
      os << value.AsDouble();
      break;
    case ops::PayloadKind::kString:
      os << value.AsString();  // resolved through the global ValuePool
      break;
  }
  return os.str();
}

Result<ops::PayloadRef> ParseValue(char tag, const std::string& field) {
  switch (tag) {
    case 'n':
      return ops::PayloadRef::Null();
    case 'b':
      if (field == "1") {
        return ops::PayloadRef::Bool(true);
      }
      if (field == "0") {
        return ops::PayloadRef::Bool(false);
      }
      return Status::InvalidArgument("bool trace value must be 0 or 1, got '" +
                                     field + "'");
    case 'i':
      try {
        return ops::PayloadRef::Int64(
            static_cast<std::int64_t>(std::stoll(field)));
      } catch (...) {
        return Status::InvalidArgument("bad int64 trace value '" + field +
                                       "'");
      }
    case 'd':
      try {
        return ops::PayloadRef::Double(std::stod(field));
      } catch (...) {
        return Status::InvalidArgument("bad double trace value '" + field +
                                       "'");
      }
    case 's':
      // Interns into the global pool (deduplicating: replaying a trace of
      // categorical strings allocates each distinct value once).
      return ops::PayloadRef::String(field);
    default:
      return Status::InvalidArgument(std::string("unknown value type tag '") +
                                     tag + "'");
  }
}

Result<std::vector<std::string>> SplitFields(const std::string& line,
                                             std::size_t expected) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(current);
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  fields.push_back(current);
  if (fields.size() != expected) {
    return Status::InvalidArgument(
        "trace line has " + std::to_string(fields.size()) +
        " fields, expected " + std::to_string(expected) + ": '" + line + "'");
  }
  return fields;
}

}  // namespace

Status WriteTrace(const std::vector<ops::Tuple>& tuples, std::ostream* os) {
  if (os == nullptr) {
    return Status::InvalidArgument("output stream must not be null");
  }
  (*os) << "id,attribute,t,x,y,sensor_id,type,value\n";
  os->precision(17);
  for (const auto& tuple : tuples) {
    const std::string value = ValueField(tuple.value);
    if (value.find(',') != std::string::npos ||
        value.find('\n') != std::string::npos) {
      return Status::InvalidArgument(
          "string trace values must not contain commas or newlines: '" +
          value + "'");
    }
    (*os) << tuple.id << ',' << tuple.attribute << ',' << tuple.point.t << ','
          << tuple.point.x << ',' << tuple.point.y << ',' << tuple.sensor_id
          << ',' << TypeTag(tuple.value) << ',' << value << '\n';
  }
  if (!os->good()) {
    return Status::Internal("trace write failed");
  }
  return Status::OK();
}

Result<std::vector<ops::Tuple>> ReadTrace(std::istream* is) {
  if (is == nullptr) {
    return Status::InvalidArgument("input stream must not be null");
  }
  std::vector<ops::Tuple> tuples;
  std::string line;
  bool first = true;
  while (std::getline(*is, line)) {
    if (line.empty()) {
      continue;
    }
    if (first && line.rfind("id,", 0) == 0) {
      first = false;
      continue;  // header
    }
    first = false;
    CRAQR_ASSIGN_OR_RETURN(const std::vector<std::string> fields,
                           SplitFields(line, 8));
    ops::Tuple tuple;
    try {
      tuple.id = std::stoull(fields[0]);
      tuple.attribute = static_cast<ops::AttributeId>(std::stoul(fields[1]));
      tuple.point.t = std::stod(fields[2]);
      tuple.point.x = std::stod(fields[3]);
      tuple.point.y = std::stod(fields[4]);
      tuple.sensor_id = std::stoull(fields[5]);
    } catch (...) {
      return Status::InvalidArgument("malformed trace line: '" + line + "'");
    }
    if (fields[6].size() != 1) {
      return Status::InvalidArgument("bad type tag in trace line: '" + line +
                                     "'");
    }
    CRAQR_ASSIGN_OR_RETURN(tuple.value, ParseValue(fields[6][0], fields[7]));
    tuples.push_back(std::move(tuple));
  }
  return tuples;
}

Status WriteTraceFile(const std::vector<ops::Tuple>& tuples,
                      const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::InvalidArgument("cannot open trace file for writing: " +
                                   path);
  }
  return WriteTrace(tuples, &file);
}

Result<std::vector<ops::Tuple>> ReadTraceFile(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("cannot open trace file: " + path);
  }
  return ReadTrace(&file);
}

// ---------------------------------------------------------------------------
// TraceReplayNetwork

TraceReplayNetwork::TraceReplayNetwork(std::vector<ops::Tuple> trace,
                                       const geom::Rect& region,
                                       const Options& options)
    : trace_(std::move(trace)),
      consumed_(trace_.size(), false),
      region_(region),
      options_(options),
      remaining_(trace_.size()) {}

Result<TraceReplayNetwork> TraceReplayNetwork::Make(
    std::vector<ops::Tuple> trace, const geom::Rect& region,
    const Options& options) {
  if (region.IsEmpty()) {
    return Status::InvalidArgument("replay region must have positive area");
  }
  if (!(options.horizon >= 0.0)) {
    return Status::InvalidArgument("replay horizon must be >= 0");
  }
  std::sort(trace.begin(), trace.end(),
            [](const ops::Tuple& a, const ops::Tuple& b) {
              return a.point.t < b.point.t;
            });
  return TraceReplayNetwork(std::move(trace), region, options);
}

Result<std::vector<ops::Tuple>> TraceReplayNetwork::SendRequests(
    const AcquisitionRequest& request) {
  std::vector<ops::Tuple> responses;
  if (request.count == 0 || trace_.empty()) {
    return responses;
  }
  const double window_end =
      request.now + request.response_spread + options_.horizon;
  // Binary search the first tuple past `now`, then scan the latency window.
  const auto begin = std::lower_bound(
      trace_.begin(), trace_.end(), request.now,
      [](const ops::Tuple& tuple, double t) { return tuple.point.t <= t; });
  for (auto it = begin;
       it != trace_.end() && it->point.t <= window_end &&
       responses.size() < request.count;
       ++it) {
    const auto index = static_cast<std::size_t>(it - trace_.begin());
    if (consumed_[index] || it->attribute != request.attribute ||
        !request.region.Contains(it->point.x, it->point.y)) {
      continue;
    }
    consumed_[index] = true;
    --remaining_;
    ++served_;
    responses.push_back(*it);
  }
  return responses;
}

std::size_t TraceReplayNetwork::AvailableSensors(
    const geom::Rect& region) const {
  std::unordered_set<std::uint64_t> sensors;
  for (std::size_t i = 0; i < trace_.size(); ++i) {
    if (!consumed_[i] && region.Contains(trace_[i].point.x,
                                         trace_[i].point.y)) {
      sensors.insert(trace_[i].sensor_id);
    }
  }
  return sensors.size();
}

}  // namespace sensing
}  // namespace craqr
